# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench bench-skyline bench-smoke bench-check bench-sweep bench-sweep-smoke cover fuzz fuzz-smoke lint lint-fast lint-eps e2e e2e-smoke experiments examples clean

# The longitudinal benchmark history: every `make bench` / `make
# bench-skyline` run appends its report here (with git SHA, cores,
# workers, and latency quantiles), and `make bench-check` gates on the
# trajectory — the latest run of each configuration vs the median of its
# predecessors. See docs/OBSERVABILITY.md.
TRAJECTORY := results/BENCH_trajectory.jsonl
GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)

all: build lint test

build:
	go build ./...

# go vet plus the project lint suite (cmd/mldcslint): epsilon policy,
# float equality, angle normalization, obs-sink, dropped skyline errors,
# and the concurrency/hot-path analyzers (scratchescape, snapshotmut,
# atomicfield, hotpathalloc). See docs/STATIC_ANALYSIS.md.
lint:
	go vet ./...
	go run ./cmd/mldcslint ./...

# lint-fast: vet + mldcslint on only the packages whose Go files changed
# since the merge-base with origin/main (falling back to HEAD~1; full run
# when no base exists). Cross-package facts still load the dependencies
# of the changed packages, so analyzer results match the full run for
# those packages. Developer loop only — CI runs the full `make lint`.
lint-fast:
	@base=$$(git merge-base origin/main HEAD 2>/dev/null || git rev-parse HEAD~1 2>/dev/null || true); \
	if [ -z "$$base" ]; then echo "lint-fast: no diff base; running full lint" >&2; $(MAKE) lint; exit $$?; fi; \
	files=$$( (git diff --name-only "$$base" -- '*.go'; git ls-files --others --exclude-standard -- '*.go') | grep -v '/testdata/' | sort -u ); \
	dirs=$$(for f in $$files; do [ -f "$$f" ] && dirname "$$f"; done | sort -u | sed 's|^|./|'); \
	if [ -z "$$dirs" ]; then echo "lint-fast: no changed Go packages since $$base"; exit 0; fi; \
	echo "lint-fast: $$dirs"; \
	go vet $$dirs && go run ./cmd/mldcslint $$dirs

# Deprecated alias: the grep-based scripts/lint-eps.sh became the
# AST-aware epspolicy analyzer inside `make lint`.
lint-eps:
	@echo "make lint-eps is deprecated; running make lint (go vet + mldcslint)." >&2
	@$(MAKE) lint

test:
	go test ./...

race:
	go test -race ./...

# The engine report runs twice: once at the default worker count
# (GOMAXPROCS — the multi-core configuration this machine actually
# serves) and once pinned to one worker (the sequential baseline every
# speedup is measured against). Both land in the trajectory; benchdiff
# keys on the worker count, so each configuration is gated against its
# own history. On a single-core machine the two runs share a key — the
# gate then just sees two samples of the same configuration.
bench:
	go test -bench=. -benchmem ./...
	ENGINE_BENCH_OUT=$(CURDIR)/BENCH_engine.json go test -run=TestEngineBenchReport -count=1 ./internal/engine/
	ENGINE_BENCH_OUT=$(CURDIR)/BENCH_engine_w1.json ENGINE_BENCH_WORKERS=1 go test -run=TestEngineBenchReport -count=1 ./internal/engine/
	go run ./cmd/benchdiff -append -engine BENCH_engine.json -trajectory $(TRAJECTORY) -sha $(GIT_SHA)
	go run ./cmd/benchdiff -append -engine BENCH_engine_w1.json -trajectory $(TRAJECTORY) -sha $(GIT_SHA)
	go run ./cmd/benchdiff -check -trajectory $(TRAJECTORY)

# Skyline kernel microbenchmarks + the machine-readable BENCH_skyline.json
# report (ns/op, allocs/op, mean arc count per input size).
bench-skyline:
	go test -bench='^(BenchmarkCompute|BenchmarkComputeInto)$$' -benchmem ./internal/skyline/
	SKYLINE_BENCH_OUT=$(CURDIR)/BENCH_skyline.json go test -run=TestSkylineBenchReport -count=1 -v ./internal/skyline/
	go run ./cmd/benchdiff -append -skyline BENCH_skyline.json -trajectory $(TRAJECTORY) -sha $(GIT_SHA)
	go run ./cmd/benchdiff -check -trajectory $(TRAJECTORY)

# Regression gate over the committed trajectory (no fresh timing, so it is
# deterministic in CI): latest run of each configuration vs the median of
# its predecessors.
bench-check:
	go run ./cmd/benchdiff -check -trajectory $(TRAJECTORY)

# Contention-aware scaling sweep (cmd/mldcsbench): one in-process run per
# (cores × workers × workload × contention) cell with tick latency
# quantiles and worker-imbalance stats, appended to the trajectory and
# gated per cell like every other benchmark source.
bench-sweep:
	go run ./cmd/mldcsbench -out $(CURDIR)/BENCH_sweep.json
	go run ./cmd/benchdiff -append -sweep BENCH_sweep.json -trajectory $(TRAJECTORY) -sha $(GIT_SHA)
	go run ./cmd/benchdiff -check -trajectory $(TRAJECTORY)

# CI budget: tiny matrix, short ticks, one repetition — exercises every
# sweep cell shape (multi-core, multi-worker, uniform and contended) and
# the benchdiff sweep gate without real timing cost.
bench-sweep-smoke:
	go run ./cmd/mldcsbench -out $(CURDIR)/results/bench_sweep_smoke.json \
		-cores 1,2 -workers 1,2 -workloads uniform,zipf -contention 1.2 \
		-nodes 800 -ticks 5 -benchtime 1x
	go run ./cmd/benchdiff -append -sweep results/bench_sweep_smoke.json -trajectory $(TRAJECTORY) -sha $(GIT_SHA)
	go run ./cmd/benchdiff -check -trajectory $(TRAJECTORY)

# CI smoke: every skyline, engine, and obs microbenchmark compiles and
# runs once (-benchtime=1x; build + sanity, not timing), the allocation
# regression tests hold under the race detector, and a small instrumented
# engine run dumps its metrics (with latency quantiles) for the CI
# artifact upload.
bench-smoke:
	go test -run='^$$' -bench=. -benchtime=1x ./internal/skyline/ ./internal/engine/ ./internal/obs/
	go test -race -run='Allocs' -count=1 ./internal/skyline/ ./internal/engine/
	ENGINE_BENCH_OUT=$(CURDIR)/results/bench_smoke_metrics.json ENGINE_BENCH_N=2000 \
		go test -run=TestEngineBenchReport -count=1 ./internal/engine/
	ENGINE_BENCH_OUT=$(CURDIR)/results/bench_smoke_metrics_w1.json ENGINE_BENCH_N=2000 ENGINE_BENCH_WORKERS=1 \
		go test -run=TestEngineBenchReport -count=1 ./internal/engine/

cover:
	go test -coverprofile=cover.out ./internal/... .
	go tool cover -func=cover.out | tail -1

fuzz:
	go test -fuzz=FuzzSkylineInvariants -fuzztime=60s ./internal/skyline/
	go test -fuzz=FuzzMergeAgainstNaive -fuzztime=60s ./internal/skyline/
	go test -fuzz=FuzzKineticRepair -fuzztime=60s ./internal/skyline/
	go test -fuzz=FuzzSelectorInvariants -fuzztime=60s ./internal/forwarding/
	go test -fuzz=FuzzEngineVsSequential -fuzztime=60s ./internal/engine/

# Short fuzz pass over every target — the CI smoke step.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzSkylineInvariants -fuzztime=10s ./internal/skyline/
	go test -run='^$$' -fuzz=FuzzMergeAgainstNaive -fuzztime=10s ./internal/skyline/
	go test -run='^$$' -fuzz=FuzzKineticRepair -fuzztime=10s ./internal/skyline/
	go test -run='^$$' -fuzz=FuzzSelectorInvariants -fuzztime=10s ./internal/forwarding/
	go test -run='^$$' -fuzz=FuzzEngineVsSequential -fuzztime=10s ./internal/engine/

# Chaos e2e harness for the mldcsd service: seeded action streams against
# a live server, drained and checked byte-for-byte against the sequential
# oracle, plus the banked-regression-seed replay and the mutation
# sensitivity gate. See docs/TESTING.md ("Chaos e2e harness").
e2e:
	scripts/e2e/harness.sh full

# CI budget: fewer/shorter fresh seeds, same bank replay and mutation gate.
e2e-smoke:
	scripts/e2e/harness.sh smoke

# Full paper reproduction (the 200-replication suite) + extensions.
experiments:
	go run ./cmd/mldcsim -scenario scenarios/paper.json -report report/paper
	go run ./cmd/mldcsim -scenario scenarios/extensions.json -report report/extensions

examples:
	go run ./examples/quickstart
	go run ./examples/heterogeneous
	go run ./examples/broadcaststorm
	go run ./examples/routediscovery
	go run ./examples/backbone
	go run ./examples/dynamictopology
	go run ./examples/skylineviz .

clean:
	rm -f cover.out
	rm -rf report
