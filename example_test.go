package mldcs_test

import (
	"fmt"
	"math"

	"repro"
)

// The core operation: given a node's own disk and its neighbors' disks,
// compute the minimum local disk cover set and the forwarding set.
func ExampleForwardingSet() {
	hub := mldcs.NewDisk(0, 0, 1)
	neighbors := []mldcs.Disk{
		mldcs.NewDisk(0.9, 0, 1.5),  // pokes out east — needed
		mldcs.NewDisk(-0.9, 0, 1.5), // pokes out west — needed
		mldcs.NewDisk(0.1, 0, 0.5),  // buried inside the others — redundant
	}
	fwd, err := mldcs.ForwardingSet(hub, neighbors)
	if err != nil {
		panic(err)
	}
	fmt.Println(fwd)
	// Output: [0 1]
}

// The skyline is the boundary of the union of the disks: a cyclic list of
// arcs, each owned by one disk.
func ExampleComputeSkyline() {
	disks := []mldcs.Disk{
		mldcs.NewDisk(0.5, 0, 1),  // right disk
		mldcs.NewDisk(-0.5, 0, 1), // left disk
	}
	sl, err := mldcs.ComputeSkyline(mldcs.Pt(0, 0), disks)
	if err != nil {
		panic(err)
	}
	// By symmetry the breakpoints are exactly π/2 and 3π/2.
	for _, a := range sl {
		fmt.Printf("disk %d: %.4f..%.4f\n", a.Disk, a.Start, a.End)
	}
	fmt.Println("set:", sl.Set())
	// Output:
	// disk 0: 0.0000..1.5708
	// disk 1: 1.5708..4.7124
	// disk 0: 4.7124..6.2832
	// set: [0 1]
}

// UnionArea is exact (closed form per skyline arc), not sampled.
func ExampleUnionArea() {
	// One disk: the union area is πr².
	area, err := mldcs.UnionArea(mldcs.Pt(0, 0), []mldcs.Disk{mldcs.NewDisk(0.2, 0.1, 2)})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.9f\n", area/(math.Pi*4))
	// Output: 1.000000000
}

// Building a network and simulating a broadcast with skyline forwarding.
func ExampleBroadcast() {
	// A 5-node chain; radius 1.2 links consecutive nodes only.
	var nodes []mldcs.Node
	for i := 0; i < 5; i++ {
		nodes = append(nodes, mldcs.Node{ID: i, Pos: mldcs.Pt(float64(i), 0), Radius: 1.2})
	}
	g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
	if err != nil {
		panic(err)
	}
	sel, err := mldcs.SelectorByName("skyline")
	if err != nil {
		panic(err)
	}
	res, err := mldcs.Broadcast(g, 0, sel)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d/%d in %d hops\n", res.Delivered, res.Reachable, res.MaxHop)
	// Output: delivered 4/4 in 4 hops
}

// The Figure 5.6 drawback: a dominating disk whose owner cannot be heard
// back by the far nodes it covers.
func ExampleTwoHopCoverage() {
	nodes := []mldcs.Node{
		{ID: 0, Pos: mldcs.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: mldcs.Pt(0.8, 0.3), Radius: 1},
		{ID: 2, Pos: mldcs.Pt(0.8, -0.3), Radius: 1},
		{ID: 3, Pos: mldcs.Pt(0.5, 0), Radius: 2.5},
		{ID: 4, Pos: mldcs.Pt(1.7, 0.3), Radius: 0.95},
		{ID: 5, Pos: mldcs.Pt(1.7, -0.3), Radius: 0.95},
	}
	g, err := mldcs.BuildNetwork(nodes, mldcs.Bidirectional)
	if err != nil {
		panic(err)
	}
	sky, _ := mldcs.SelectorByName("skyline")
	set, err := mldcs.SelectForwarders(g, 0, sky)
	if err != nil {
		panic(err)
	}
	fmt.Println("skyline set:", set)
	fmt.Println("2-hop coverage:", mldcs.TwoHopCoverage(g, 0, set))
	fmt.Println("stranded:", mldcs.UncoveredTwoHop(g, 0, set))
	// Output:
	// skyline set: [3]
	// 2-hop coverage: 0
	// stranded: [4 5]
}
