#!/bin/sh
# lint-eps: forbid raw epsilon comparisons outside the predicates layer.
#
# Every tolerance comparison must go through internal/geom/predicates.go
# (docs/NUMERICS.md). This script greps non-test Go files outside
# internal/geom for the patterns the migration removed:
#
#   - arithmetic with Eps / geom.Eps / AngleEps / geom.AngleEps /
#     RhoEps / geom.RhoEps inside a comparison (e.g. `d <= r+geom.Eps`,
#     `x > geom.AngleEps`)
#   - any resurrection of the old private tieEps constant
#
# Mentioning the constants is fine (passing geom.Eps as a jitter
# magnitude, widening a scan window); *comparing* with them is not.
# Exits 1 and lists offending lines if any are found.

set -eu

cd "$(dirname "$0")/.."

pattern='(<=?|>=?|==|!=)[^,;]*\b(geom\.)?(Eps|AngleEps|RhoEps)\b|\b(geom\.)?(Eps|AngleEps|RhoEps)\b[^,;)]*(<=?|>=?|==|!=)|\btieEps\b'

files=$(find . -name '*.go' ! -name '*_test.go' \
    ! -path './internal/geom/*' ! -path './.git/*')

# Strip line comments before matching so prose about the policy
# (e.g. "accepts points with d <= r+Eps") does not trip the linter.
bad=0
for f in $files; do
    hits=$(sed 's|//.*||' "$f" | grep -nE "$pattern" | sed "s|^|$f:|" || true)
    if [ -n "$hits" ]; then
        echo "$hits"
        bad=1
    fi
done

if [ "$bad" -ne 0 ]; then
    echo >&2
    echo "lint-eps: raw epsilon comparison outside internal/geom." >&2
    echo "Use the predicates in internal/geom/predicates.go instead" >&2
    echo "(LinkWithin, LinkWithin2, Reaches, LengthEq, ZeroLength," >&2
    echo "RhoCmp, RhoCovers, AngleSliver). See docs/NUMERICS.md." >&2
    exit 1
fi
echo "lint-eps: ok"
