# Shared helpers for the chaos e2e drivers. Sourced by harness.sh; keep
# POSIX-sh compatible (CI images differ on /bin/sh).
#
# Conventions:
#   E2E_LOG_DIR   where JSONL action logs land (default results/e2e-logs)
#   E2E_SEEDS     fresh seeds per chaos run
#   E2E_ACTIONS   driver actions per seed
#   E2E_NODES     initial network size
#   E2E_BASE_SEED first fresh seed value

# Absolute path: `go test ./internal/e2e/` resolves relative paths
# against the package directory, which would scatter logs into the tree.
: "${E2E_LOG_DIR:=$PWD/results/e2e-logs}"
export E2E_LOG_DIR

e2e_prepare_logs() {
    mkdir -p "$E2E_LOG_DIR"
}

# e2e_run_seeds <seeds> <actions> — fresh-seed chaos run, both stream
# shapes (mixed churn and the pure-mobility kinetic-repair profile).
# Failing seeds are auto-banked into
# internal/e2e/testdata/regression_seeds.json; the driver prints a
# reminder to commit the bank when that happens.
e2e_run_seeds() {
    seeds="$1"
    actions="$2"
    echo "chaos: $seeds seeds x $actions actions (logs: $E2E_LOG_DIR)"
    if ! E2E_SEEDS="$seeds" E2E_ACTIONS="$actions" \
        go test -count=1 -run 'TestChaosSeeds|TestChaosMobilitySeeds' ./internal/e2e/; then
        echo "chaos: FAILED — check $E2E_LOG_DIR and commit any new entries in" >&2
        echo "chaos:          internal/e2e/testdata/regression_seeds.json" >&2
        return 1
    fi
}

# e2e_replay_bank — replay every banked regression seed.
e2e_replay_bank() {
    echo "chaos: replaying banked regression seeds"
    go test -count=1 -run TestRegressionSeeds -v ./internal/e2e/ | grep -E '^(=== RUN|--- (PASS|FAIL|SKIP)|ok|FAIL)' || return 1
}

# e2e_mutation_gate — rebuild with the engine mutation injected and
# require the harness to catch it. Proves the oracle comparison has teeth.
e2e_mutation_gate() {
    echo "chaos: mutation gate (build tag mldcsmutate)"
    go test -count=1 -tags mldcsmutate -run TestMutationCaught ./internal/e2e/
}
