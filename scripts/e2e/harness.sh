#!/bin/sh
# Chaos e2e driver for the mldcsd service. See docs/TESTING.md ("Chaos
# e2e harness") for the seed format and how to reproduce a banked seed.
#
# Usage:
#   scripts/e2e/harness.sh smoke      # CI budget: few seeds + bank replay + mutation gate
#   scripts/e2e/harness.sh full       # local soak: 25 seeds + bank replay + mutation gate
#   scripts/e2e/harness.sh replay     # banked regression seeds only
#   scripts/e2e/harness.sh mutation   # mutation sensitivity gate only
#   E2E_SEEDS=100 scripts/e2e/harness.sh full   # env knobs pass through

set -eu
cd "$(dirname "$0")/../.."
. scripts/e2e/chaos_lib.sh

mode="${1:-smoke}"
e2e_prepare_logs

case "$mode" in
smoke)
    e2e_run_seeds "${E2E_SEEDS:-6}" "${E2E_ACTIONS:-120}"
    e2e_replay_bank
    e2e_mutation_gate
    ;;
full)
    e2e_run_seeds "${E2E_SEEDS:-25}" "${E2E_ACTIONS:-160}"
    e2e_replay_bank
    e2e_mutation_gate
    ;;
replay)
    e2e_replay_bank
    ;;
mutation)
    e2e_mutation_gate
    ;;
*)
    echo "usage: $0 [smoke|full|replay|mutation]" >&2
    exit 2
    ;;
esac
echo "chaos: $mode OK"
