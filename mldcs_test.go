package mldcs

import (
	"math/rand"
	"strings"
	"testing"
)

func TestComputeSkylineFacade(t *testing.T) {
	hub := Pt(3, 3)
	disks := []Disk{
		NewDisk(3.5, 3, 1.5),
		NewDisk(2.5, 3, 1.5),
		NewDisk(3, 3, 0.6), // buried
	}
	sl, err := ComputeSkyline(hub, disks)
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.Validate(len(disks)); err != nil {
		t.Fatal(err)
	}
	set, err := SkylineSet(hub, disks)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0] != 0 || set[1] != 1 {
		t.Errorf("SkylineSet = %v, want [0 1]", set)
	}
}

func TestCoverAndForwardingSetFacade(t *testing.T) {
	hub := NewDisk(0, 0, 1)
	neighbors := []Disk{
		NewDisk(0.9, 0, 1.5),  // pokes out east
		NewDisk(-0.9, 0, 1.5), // pokes out west
		NewDisk(0.1, 0, 1),    // buried? covers north/south a bit; keep generic
	}
	cover, err := CoverSet(hub, neighbors)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) == 0 {
		t.Fatal("cover must not be empty")
	}
	fwd, err := ForwardingSet(hub, neighbors)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range fwd {
		if i < 0 || i >= len(neighbors) {
			t.Errorf("forwarding index %d out of range", i)
		}
	}
	// ForwardingSet must be CoverSet minus the hub, shifted down by one.
	want := make(map[int]bool)
	for _, i := range cover {
		if i > 0 {
			want[i-1] = true
		}
	}
	if len(want) != len(fwd) {
		t.Errorf("ForwardingSet %v does not match CoverSet %v", fwd, cover)
	}
}

func TestNetworkAndBroadcastFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nodes, err := PaperDeployment("heterogeneous", 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildNetwork(nodes, Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectorByName("greedy")
	if err != nil {
		t.Fatal(err)
	}
	set, err := SelectForwarders(g, 0, sel)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range set {
		if !g.IsNeighbor(0, w) {
			t.Errorf("forwarder %d is not a neighbor of the source", w)
		}
	}
	res, err := Broadcast(g, 0, sel)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio() != 1 {
		t.Errorf("greedy broadcast delivery = %v", res.DeliveryRatio())
	}
	if _, err := PaperDeployment("nope", 8, rng); err == nil {
		t.Error("unknown model must fail")
	}
	if _, err := SelectorByName("nope"); err == nil {
		t.Error("unknown selector must fail")
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	cfg := ExperimentConfig{Replications: 4, Seed: 2, Workers: 2, Degrees: []float64{6}}
	for _, id := range ExperimentIDs() {
		if id == "scaling" || id == "engine-scaling" {
			continue // exercised separately with small sizes via internal API
		}
		fig, err := RunExperiment(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if fig.ID == "" || len(fig.Series) == 0 {
			t.Errorf("%s: empty figure", id)
		}
	}
	if _, err := RunExperiment("nope", cfg); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestCDSFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nodes, err := PaperDeployment("heterogeneous", 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildNetwork(nodes, Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"wuli", "mis"} {
		set, err := ConnectedDominatingSet(g, method, 0)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		res, err := BroadcastBackbone(g, 0, set)
		if err != nil {
			t.Fatal(err)
		}
		if res.DeliveryRatio() != 1 {
			t.Errorf("%s backbone broadcast delivery = %v", method, res.DeliveryRatio())
		}
	}
	if _, err := ConnectedDominatingSet(g, "nope", 0); err == nil {
		t.Error("unknown CDS method must fail")
	}
}

func TestRouteFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	nodes, err := PaperDeployment("homogeneous", 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildNetwork(nodes, Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	r, err := DiscoverRoute(g, 0, g.Len()-1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Found {
		if err := r.Validate(g, 0, g.Len()-1); err != nil {
			t.Fatal(err)
		}
		if r.Hops() != r.Optimal {
			t.Errorf("flooding route %d hops, optimal %d", r.Hops(), r.Optimal)
		}
	}
}

func TestDeploymentTraceFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nodes, err := PaperDeployment("homogeneous", 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteDeployment(&buf, nodes); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeployment(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(nodes) || got[3] != nodes[3] {
		t.Error("trace round trip lost data")
	}
}

func TestRunScenarioFacade(t *testing.T) {
	data := []byte(`{"name": "t", "replications": 3, "seed": 4, "degrees": [6],
		"experiments": [{"id": "fig5.1"}, {"id": "repair"}]}`)
	figs, err := RunScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[0].ID != "fig5.1" || figs[1].ID != "fig5.6" {
		t.Errorf("scenario figures: %v, %v", figs[0].ID, figs[1].ID)
	}
	if _, err := RunScenario([]byte(`{"experiments": [{"id": "bogus"}]}`)); err == nil {
		t.Error("unknown experiment in scenario must fail")
	}
	if _, err := RunScenario([]byte("{broken")); err == nil {
		t.Error("broken scenario JSON must fail")
	}
}

func TestRenderFigureAndTreeSVG(t *testing.T) {
	fig, err := RunExperiment("fig5.4", ExperimentConfig{
		Replications: 3, Seed: 6, Workers: 2, Degrees: []float64{6, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	svg := RenderFigureSVG(fig)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "<polyline") {
		t.Error("figure SVG missing chart elements")
	}

	rng := rand.New(rand.NewSource(14))
	nodes, err := PaperDeployment("homogeneous", 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildNetwork(nodes, Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := RenderBroadcastTreeSVG(g, 0, res)
	if !strings.Contains(tree, "<svg") || !strings.Contains(tree, "<line") {
		t.Error("tree SVG missing elements")
	}
}

func TestDefaultExperimentConfig(t *testing.T) {
	cfg := DefaultExperimentConfig()
	if cfg.Replications != 200 {
		t.Errorf("Replications = %d", cfg.Replications)
	}
}

func TestRenderFacades(t *testing.T) {
	hub := Pt(1, 1)
	disks := []Disk{NewDisk(1.2, 1, 1), NewDisk(0.8, 1, 1)}
	sl, err := ComputeSkyline(hub, disks)
	if err != nil {
		t.Fatal(err)
	}
	svg := RenderLocalSetSVG(hub, disks, sl)
	if !strings.Contains(svg, "<svg") {
		t.Error("local-set SVG missing document element")
	}
	rng := rand.New(rand.NewSource(5))
	nodes, _ := PaperDeployment("homogeneous", 6, rng)
	g, _ := BuildNetwork(nodes, Bidirectional)
	svg = RenderNetworkSVG(g, 0, nil)
	if !strings.Contains(svg, "<svg") {
		t.Error("network SVG missing document element")
	}
}
