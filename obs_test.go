package mldcs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// TestLemma8RuntimeCheckFacade feeds adversarial local sets through the
// public ComputeSkyline with instrumentation enabled and asserts the
// observed max-arcs metric never exceeds the Lemma 8 bound 2n: the
// per-instance arc-bound ratio gauge stays ≤ 1 and the violation counter
// stays 0. Unlike the in-package test this one also exercises hub
// translation (hubs away from the origin).
func TestLemma8RuntimeCheckFacade(t *testing.T) {
	reg := NewMetricsRegistry()
	Instrument(reg, nil)
	defer Instrument(nil, nil)

	rng := rand.New(rand.NewSource(77))
	hub := Pt(12.5, -3)

	// §4.1-style construction around a distant hub: k unit disks ringed at
	// distance 1/2 plus a central disk sized to split into k arcs.
	for _, k := range []int{4, 9, 25} {
		disks := make([]Disk, 0, k+1)
		for i := 0; i < k; i++ {
			theta := 2 * math.Pi * float64(i) / float64(k)
			disks = append(disks, NewDisk(hub.X+0.5*math.Cos(theta), hub.Y+0.5*math.Sin(theta), 1))
		}
		op := 0.5*math.Cos(math.Pi/float64(k)) +
			math.Sqrt(1-math.Pow(0.5*math.Sin(math.Pi/float64(k)), 2))
		disks = append(disks, NewDisk(hub.X, hub.Y, (op+1.5)/2))
		if _, err := ComputeSkyline(hub, disks); err != nil {
			t.Fatalf("section41 k=%d: %v", k, err)
		}
	}
	// Random heterogeneous neighborhoods around the hub.
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(120)
		disks := make([]Disk, n)
		for i := range disks {
			r := 1 + rng.Float64()
			dist := rng.Float64() * r * 0.999
			theta := rng.Float64() * 2 * math.Pi
			disks[i] = NewDisk(hub.X+dist*math.Cos(theta), hub.Y+dist*math.Sin(theta), r)
		}
		if _, err := ComputeSkyline(hub, disks); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}

	snap := reg.Snapshot()
	if snap.Counters["skyline_compute_total"] == 0 {
		t.Fatal("no computes recorded through the facade")
	}
	if v := snap.Counters["skyline_arc_bound_violations_total"]; v != 0 {
		t.Fatalf("skyline_arc_bound_violations_total = %d, want 0 (Lemma 8)", v)
	}
	ratio := snap.Gauges["skyline_arc_bound_ratio"]
	if ratio <= 0 || ratio > 1 {
		t.Fatalf("skyline_arc_bound_ratio = %g, want in (0, 1]", ratio)
	}
	if snap.Gauges["skyline_max_arcs"] > snap.Gauges["skyline_max_arc_bound"] {
		t.Fatalf("max arcs %g exceeds the largest 2n bound %g",
			snap.Gauges["skyline_max_arcs"], snap.Gauges["skyline_max_arc_bound"])
	}
}

// TestInstrumentEndToEnd runs an experiment and a broadcast through the
// instrumented facade and checks every layer reported: skyline merge
// statistics, broadcast rounds and per-round trace events, and the
// experiment summary embedded in the figure.
func TestInstrumentEndToEnd(t *testing.T) {
	reg := NewMetricsRegistry()
	var trace bytes.Buffer
	sink := NewEventSink(&trace)
	Instrument(reg, sink)
	defer Instrument(nil, nil)

	cfg := DefaultExperimentConfig()
	cfg.Replications = 4
	cfg.Degrees = []float64{8}
	fig, err := RunExperiment("fig5.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Obs == nil {
		t.Fatal("instrumented figure must embed the observability summary")
	}
	if fig.Obs.Replications != 4 || fig.Obs.WallSeconds <= 0 || fig.Obs.RepsPerSecond <= 0 {
		t.Errorf("figure summary = %+v", fig.Obs)
	}
	if fig.Obs.Metrics == nil || fig.Obs.Metrics.Counters["skyline_compute_total"] == 0 {
		t.Error("figure snapshot must carry nonzero skyline counters")
	}
	data, err := fig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("skyline_merge_case1_total")) {
		t.Error("figure JSON must embed the metrics snapshot")
	}

	// A broadcast to exercise the simulator's round instrumentation.
	rng := rand.New(rand.NewSource(5))
	nodes, err := PaperDeployment("heterogeneous", 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildNetwork(nodes, Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectorByName("skyline")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(g, 0, sel)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters["broadcast_runs_total"] == 0 || snap.Counters["broadcast_rounds_total"] == 0 {
		t.Errorf("broadcast counters missing: %v", snap.Counters)
	}
	if got := snap.Counters["broadcast_transmissions_total"]; got != int64(res.Transmissions) {
		t.Errorf("broadcast_transmissions_total = %d, result says %d", got, res.Transmissions)
	}
	if got := snap.Counters["broadcast_redundant_total"]; got != int64(res.Redundant) {
		t.Errorf("broadcast_redundant_total = %d, result says %d", got, res.Redundant)
	}

	// The trace must hold experiment events plus one round event per
	// broadcast hop round, in strict seq order.
	var rounds, dones, expDone int
	var lastSeq uint64
	sc := bufio.NewScanner(&trace)
	for sc.Scan() {
		var ev struct {
			Seq    uint64         `json:"seq"`
			Type   string         `json:"type"`
			Fields map[string]any `json:"fields"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("trace seq jumped from %d to %d", lastSeq, ev.Seq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case "broadcast_round":
			rounds++
		case "broadcast_done":
			dones++
		case "experiment_done":
			expDone++
		}
	}
	if dones != 1 || expDone != 1 {
		t.Errorf("trace has %d broadcast_done and %d experiment_done events, want 1 and 1", dones, expDone)
	}
	if rounds == 0 {
		t.Error("trace has no broadcast_round events")
	}

	// Disabling must stop collection.
	Instrument(nil, nil)
	before := reg.Snapshot().Counters["broadcast_runs_total"]
	if _, err := Broadcast(g, 0, sel); err != nil {
		t.Fatal(err)
	}
	if after := reg.Snapshot().Counters["broadcast_runs_total"]; after != before {
		t.Error("metrics still collected after Instrument(nil, nil)")
	}
}
