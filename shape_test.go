package mldcs_test

// Shape tests: the qualitative claims of the paper's figures, asserted as
// code so a regression in any layer (deployment, graph, selector) that
// bends a curve the wrong way fails CI. These are the checks EXPERIMENTS.md
// reports, at reduced replication counts.

import (
	"testing"

	"repro"
)

func runFig(t *testing.T, id string, reps int, degrees []float64) map[string][]float64 {
	t.Helper()
	fig, err := mldcs.RunExperiment(id, mldcs.ExperimentConfig{
		Replications: reps, Seed: 77, Workers: 4, Degrees: degrees,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]float64, len(fig.Series))
	for _, s := range fig.Series {
		out[s.Label] = s.Y
	}
	return out
}

// Figure 5.1's shape: ordering at every degree, flooding tracking the
// degree, skyline saturating (its growth from degree 8→24 is far below
// flooding's).
func TestFig51Shape(t *testing.T) {
	degrees := []float64{8, 16, 24}
	y := runFig(t, "fig5.1", 60, degrees)
	for i := range degrees {
		if !(y["flooding"][i] >= y["skyline"][i] &&
			y["skyline"][i] >= y["calinescu"][i] &&
			y["calinescu"][i] >= y["optimal"][i] &&
			y["greedy"][i] >= y["optimal"][i]) {
			t.Fatalf("degree %g: ordering violated: flooding %v skyline %v calinescu %v greedy %v optimal %v",
				degrees[i], y["flooding"][i], y["skyline"][i], y["calinescu"][i],
				y["greedy"][i], y["optimal"][i])
		}
	}
	// Flooding ≈ degree (within sampling noise of the central node).
	for i, d := range degrees {
		if diff := y["flooding"][i] - d; diff > 0.2*d || diff < -0.2*d {
			t.Errorf("flooding at degree %g measured %v — should track the degree", d, y["flooding"][i])
		}
	}
	// Saturation: flooding triples from 8→24; skyline must grow far less.
	floodGrowth := y["flooding"][2] / y["flooding"][0]
	skyGrowth := y["skyline"][2] / y["skyline"][0]
	if skyGrowth > 0.75*floodGrowth {
		t.Errorf("skyline growth %v not clearly sublinear vs flooding %v", skyGrowth, floodGrowth)
	}
}

// Figure 5.4's shape: same ordering without Călinescu, plus the
// heterogeneity effect — the skyline curve sits lower than its homogeneous
// counterpart because large disks dominate small ones.
func TestFig54Shape(t *testing.T) {
	degrees := []float64{8, 16, 24}
	het := runFig(t, "fig5.4", 60, degrees)
	hom := runFig(t, "fig5.1", 60, degrees)
	for i := range degrees {
		if !(het["flooding"][i] >= het["skyline"][i] && het["skyline"][i] >= het["greedy"][i] &&
			het["greedy"][i] >= het["optimal"][i]) {
			t.Fatalf("degree %g: heterogeneous ordering violated", degrees[i])
		}
	}
	// Heterogeneity helps the skyline: lower at the top degree.
	if het["skyline"][2] >= hom["skyline"][2] {
		t.Errorf("heterogeneous skyline %v should undercut homogeneous %v at degree 24",
			het["skyline"][2], hom["skyline"][2])
	}
}

// The §5.1.2 drawback trends: the fraction of point sets where the skyline
// set misses a 2-hop neighbor grows with density, while the mean coverage
// stays high (> 0.95).
func TestFig56Shape(t *testing.T) {
	degrees := []float64{6, 18}
	y := runFig(t, "fig5.6", 80, degrees)
	cov := y["skyline 2-hop coverage"]
	miss := y["point sets with a miss"]
	for i := range degrees {
		if cov[i] < 0.95 || cov[i] > 1 {
			t.Errorf("coverage at degree %g = %v, want high but ≤ 1", degrees[i], cov[i])
		}
	}
	if miss[1] <= miss[0] {
		t.Errorf("miss rate should grow with density: %v", miss)
	}
}
