// Package mldcs is the public API of this repository: a Go implementation
// of "Minimum Local Disk Cover Sets for Broadcasting in Heterogeneous
// Wireless Ad Hoc Networks" (ICPP 2007).
//
// The package exposes four layers:
//
//   - Geometry and the skyline algorithm: ComputeSkyline computes the
//     boundary of the union of disks that share a hub point in
//     O(n log n), via the paper's divide-and-conquer Merge.
//   - The MLDCS problem: CoverSet and ForwardingSet solve the minimum
//     local disk cover set problem of §3.2 (Theorem 3: the cover equals
//     the skyline set).
//   - Networks: BuildNetwork constructs heterogeneous disk graphs, and
//     SelectorByName provides every forwarding-set algorithm from the
//     paper's evaluation (flooding, skyline, greedy, optimal, calinescu)
//     plus the future-work repair extension. Broadcast simulates
//     network-wide dissemination.
//   - Experiments: RunExperiment regenerates any of the paper's figures.
//
// See the examples directory for runnable walk-throughs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for paper-versus-measured results.
package mldcs

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/broadcast"
	"repro/internal/cds"
	"repro/internal/deploy"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/forwarding"
	"repro/internal/geom"
	imldcs "repro/internal/mldcs"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/skyline"
	"repro/internal/viz"
)

// Observability types. The registry is a named collection of atomic
// counters, gauges, timers, and fixed-bucket histograms; the event sink
// writes a structured JSONL trace. See docs/OBSERVABILITY.md for the
// exported metric names and a worked example.
type (
	// MetricsRegistry collects the engine's runtime metrics.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time, deterministic export of a
	// registry (JSON-serializable).
	MetricsSnapshot = obs.Snapshot
	// EventSink writes structured events as JSON Lines.
	EventSink = obs.EventSink
	// ExperimentObs is the per-experiment observability summary embedded
	// in instrumented figures.
	ExperimentObs = experiments.RunObs
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventSink returns an event sink writing JSONL to w. Call Flush before
// closing the underlying writer.
func NewEventSink(w io.Writer) *EventSink { return obs.NewEventSink(w) }

// Instrument threads the observability layer through the skyline engine,
// the broadcast simulator, and the experiment harness: per-Compute merge
// statistics and Lemma 8 arc-bound accounting, per-round broadcast
// counters and trace events, and per-experiment wall time with embedded
// metric snapshots. Either argument may be nil; Instrument(nil, nil)
// disables instrumentation, restoring the zero-cost fast path. The hook is
// process-wide and not intended to be toggled concurrently with running
// computations (installs are atomic, so readers never observe a torn
// state — but metrics from in-flight operations may be split across
// registries).
func Instrument(reg *MetricsRegistry, events *EventSink) {
	skyline.Instrument(reg)
	broadcast.Instrument(reg, events)
	experiments.Instrument(reg, events)
	engine.Instrument(reg, events)
}

// Whole-network engine types. The engine computes every node's forwarding
// set in one batched pass — spatial-grid neighbor discovery, a worker pool
// sharded over grid cells, an optional skyline cache, and an incremental
// recompute path for mobility deltas. Its output is element-identical to
// running ForwardingSet per node; see docs/TESTING.md for the harness that
// proves it.
type (
	// Engine is the batched whole-network MLDCS engine.
	Engine = engine.Engine
	// EngineConfig parameterizes an Engine (workers, cache, grid cell).
	EngineConfig = engine.Config
	// EngineResult is a per-node snapshot of forwarding sets, hub-cover
	// flags, neighborhoods, and pass statistics.
	EngineResult = engine.Result
	// EngineStats summarizes one engine pass.
	EngineStats = engine.Stats
)

// NewEngine returns a whole-network MLDCS engine. Compute solves the full
// network; Update consumes movement deltas and recomputes only the dirtied
// neighborhoods.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// Geometry types.
type (
	// Point is a point in the plane.
	Point = geom.Point
	// Disk is a closed disk: a center and a radius. A node's coverage.
	Disk = geom.Disk
	// Arc is one skyline arc: the paper's (α_i, u_j, r_j, α_{i+1}) tuple
	// with the disk referenced by index.
	Arc = skyline.Arc
	// Skyline is the boundary of a local disk set's union: contiguous
	// arcs tiling [0, 2π) around the hub.
	Skyline = skyline.Skyline
	// LocalSet is an MLDCS problem instance: the hub's disk plus its
	// 1-hop neighbors' disks.
	LocalSet = imldcs.LocalSet
)

// Network types.
type (
	// Node is a wireless node with a position and transmission radius.
	Node = network.Node
	// Graph is a disk graph over a node set.
	Graph = network.Graph
	// LinkModel selects bidirectional (the paper's) or unidirectional
	// (physical reception) links.
	LinkModel = network.LinkModel
	// Selector is a forwarding-set algorithm.
	Selector = forwarding.Selector
	// BroadcastResult summarizes a simulated broadcast.
	BroadcastResult = broadcast.Result
)

// Link models.
const (
	// Bidirectional links require mutual reachability (the paper's model).
	Bidirectional = network.Bidirectional
	// Unidirectional links are one-way reception edges.
	Unidirectional = network.Unidirectional
)

// Experiment types.
type (
	// ExperimentConfig controls replications, seeding, parallelism, and
	// the degree axis of an experiment.
	ExperimentConfig = experiments.Config
	// Figure is a reproduced paper figure: labeled series plus notes.
	Figure = experiments.Figure
	// DeployConfig describes a random deployment (region, density,
	// radius model).
	DeployConfig = deploy.Config
)

// Pt returns the point (x, y).
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewDisk returns the disk with center (x, y) and radius r.
func NewDisk(x, y, r float64) Disk { return geom.NewDisk(x, y, r) }

// ComputeSkyline computes the skyline — the boundary of the union — of
// disks that all contain the hub point, using the paper's O(n log n)
// divide-and-conquer algorithm. Arc angles are measured at the hub;
// Arc.Disk indexes into the input slice.
func ComputeSkyline(hub Point, disks []Disk) (Skyline, error) {
	translated := make([]Disk, len(disks))
	for i, d := range disks {
		translated[i] = d.Translate(hub)
	}
	return skyline.Compute(translated)
}

// SkylineSet returns the indices of the disks contributing arcs to the
// skyline around hub — by Theorem 3, the minimum subset of disks whose
// union equals the union of all of them.
func SkylineSet(hub Point, disks []Disk) ([]int, error) {
	sl, err := ComputeSkyline(hub, disks)
	if err != nil {
		return nil, err
	}
	return sl.Set(), nil
}

// UnionArea returns the exact area of the union of disks that all contain
// hub, computed in closed form from the skyline (one triangle plus one
// circular segment per arc) — no sampling.
func UnionArea(hub Point, disks []Disk) (float64, error) {
	translated := make([]Disk, len(disks))
	for i, d := range disks {
		translated[i] = d.Translate(hub)
	}
	sl, err := skyline.Compute(translated)
	if err != nil {
		return 0, err
	}
	return sl.Area(translated), nil
}

// CoverSet solves the MLDCS problem for a hub disk and its neighbors'
// disks: the returned indices select the minimum local disk cover set from
// the combined list where 0 is the hub and i ≥ 1 is neighbors[i−1].
func CoverSet(hub Disk, neighbors []Disk) ([]int, error) {
	r, err := imldcs.Solve(imldcs.LocalSet{Hub: hub, Neighbors: neighbors})
	if err != nil {
		return nil, err
	}
	return r.Cover, nil
}

// ForwardingSet returns the paper's forwarding set for a node: the
// neighbors (as indices into neighbors) whose disks contribute arcs to the
// skyline of the local disk set. The hub's own arcs are covered by its
// original transmission and are excluded.
func ForwardingSet(hub Disk, neighbors []Disk) ([]int, error) {
	r, err := imldcs.Solve(imldcs.LocalSet{Hub: hub, Neighbors: neighbors})
	if err != nil {
		return nil, err
	}
	return r.NeighborCover(), nil
}

// BuildNetwork constructs a disk graph over the nodes (IDs must equal
// slice positions) under the given link model.
func BuildNetwork(nodes []Node, model LinkModel) (*Graph, error) {
	return network.Build(nodes, model)
}

// SelectorByName returns a forwarding-set algorithm by name: "flooding",
// "skyline", "greedy", "optimal", "calinescu", or "repair".
func SelectorByName(name string) (Selector, error) {
	return forwarding.ByName(name)
}

// SelectForwarders runs a selector for node u of g.
func SelectForwarders(g *Graph, u int, sel Selector) ([]int, error) {
	return sel.Select(g, u)
}

// TwoHopCoverage returns the fraction of u's 2-hop neighbors adjacent to
// at least one member of the forwarding set (1 when u has none). A value
// below 1 for the skyline selector is the paper's §5.2 drawback.
func TwoHopCoverage(g *Graph, u int, set []int) float64 {
	return forwarding.CoverageRatio(g, u, set)
}

// UncoveredTwoHop returns u's 2-hop neighbors that no member of the
// forwarding set can reach, sorted.
func UncoveredTwoHop(g *Graph, u int, set []int) []int {
	return forwarding.Uncovered(g, u, set)
}

// Broadcast simulates a network-wide broadcast from source. A nil selector
// means blind flooding; otherwise relaying follows multipoint-relay
// semantics with the selector's forwarding sets.
func Broadcast(g *Graph, source int, sel Selector) (BroadcastResult, error) {
	return broadcast.Run(g, source, sel)
}

// ConnectedDominatingSet builds a broadcast backbone over g with the
// requested method: "wuli" (the Wu–Li marking process with pruning Rules
// 1 and 2) or "mis" (layered maximal-independent-set dominators connected
// through shared neighbors, rooted at node root; root is ignored by
// "wuli"). BroadcastBackbone relays only through the returned set.
func ConnectedDominatingSet(g *Graph, method string, root int) ([]int, error) {
	switch method {
	case "wuli":
		return cds.WuLi(g), nil
	case "mis":
		return cds.MISConnect(g, root)
	default:
		return nil, fmt.Errorf("mldcs: unknown CDS method %q (want wuli or mis)", method)
	}
}

// BroadcastBackbone simulates a broadcast in which only backbone members
// relay (see ConnectedDominatingSet).
func BroadcastBackbone(g *Graph, source int, backbone []int) (BroadcastResult, error) {
	return broadcast.RunWithBackbone(g, source, backbone)
}

// Route is the outcome of an on-demand route discovery.
type Route = routing.Route

// DiscoverRoute floods a route request from source under the given
// relaying policy (nil = blind flooding) and returns the route to dest
// extracted from the reverse-path tree, together with the discovery cost
// in transmissions. This is the paper's motivating use of broadcasting
// ("find routing paths").
func DiscoverRoute(g *Graph, source, dest int, policy Selector) (Route, error) {
	return routing.Discover(g, source, dest, policy)
}

// PaperDeployment generates one of the paper's random point sets:
// model is "homogeneous" (r = 1) or "heterogeneous" (r ∈ U[1, 2]), over a
// 12.5 × 12.5 square with the source node (ID 0) at the center, with node
// density calibrated to the requested mean 1-hop degree.
func PaperDeployment(model string, meanDegree float64, rng *rand.Rand) ([]Node, error) {
	var m deploy.RadiusModel
	switch model {
	case "homogeneous":
		m = deploy.Homogeneous
	case "heterogeneous":
		m = deploy.Heterogeneous
	default:
		return nil, fmt.Errorf("mldcs: unknown deployment model %q", model)
	}
	return deploy.Generate(deploy.PaperConfig(m, meanDegree), rng)
}

// WriteDeployment archives a deployment in the plain-text trace format
// ("id x y radius" per line) so it can be replayed or fed from external
// tools; ReadDeployment parses it back.
func WriteDeployment(w io.Writer, nodes []Node) error {
	return deploy.WriteNodes(w, nodes)
}

// ReadDeployment parses a deployment trace written by WriteDeployment.
func ReadDeployment(r io.Reader) ([]Node, error) {
	return deploy.ReadNodes(r)
}

// DefaultExperimentConfig returns the paper's experiment configuration:
// 200 replications per data point, mean degrees 4..24.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// RunExperiment regenerates one of the paper's figures (or an extension
// experiment). Valid IDs: "fig5.1", "fig5.2", "fig5.3", "fig5.4",
// "fig5.5", "fig5.6", "scaling", "engine-scaling", "storm-homogeneous",
// "storm-heterogeneous", "mobility", "collision-homogeneous",
// "collision-heterogeneous", "protocols-homogeneous",
// "protocols-heterogeneous", "energy-homogeneous",
// "energy-heterogeneous".
func RunExperiment(id string, cfg ExperimentConfig) (Figure, error) {
	return experiments.Observe(id, func() (Figure, error) {
		return runExperiment(id, cfg)
	})
}

func runExperiment(id string, cfg ExperimentConfig) (Figure, error) {
	switch id {
	case "fig5.1":
		return experiments.Fig51(cfg)
	case "fig5.2":
		return experiments.Fig52(cfg)
	case "fig5.3":
		return experiments.Fig53(cfg)
	case "fig5.4":
		return experiments.Fig54(cfg)
	case "fig5.5":
		return experiments.Fig55(cfg)
	case "fig5.6", "repair":
		return experiments.Fig56(cfg)
	case "scaling":
		return experiments.Scaling(cfg, nil, 0)
	case "engine-scaling":
		return experiments.EngineScaling(cfg, nil)
	case "storm-homogeneous":
		return experiments.Storm(cfg, deploy.Homogeneous)
	case "storm-heterogeneous":
		return experiments.Storm(cfg, deploy.Heterogeneous)
	case "mobility":
		return experiments.Mobility(cfg, nil)
	case "collision-homogeneous":
		return experiments.Collision(cfg, deploy.Homogeneous)
	case "collision-heterogeneous":
		return experiments.Collision(cfg, deploy.Heterogeneous)
	case "protocols-homogeneous":
		return experiments.Protocols(cfg, deploy.Homogeneous)
	case "protocols-heterogeneous":
		return experiments.Protocols(cfg, deploy.Heterogeneous)
	case "energy-homogeneous":
		return experiments.Energy(cfg, deploy.Homogeneous)
	case "energy-heterogeneous":
		return experiments.Energy(cfg, deploy.Heterogeneous)
	case "overhead-homogeneous":
		return experiments.Overhead(cfg, deploy.Homogeneous)
	case "overhead-heterogeneous":
		return experiments.Overhead(cfg, deploy.Heterogeneous)
	case "allnodes-homogeneous":
		return experiments.AllNodes(cfg, deploy.Homogeneous)
	case "allnodes-heterogeneous":
		return experiments.AllNodes(cfg, deploy.Heterogeneous)
	case "lossy-homogeneous":
		return experiments.Lossy(cfg, deploy.Homogeneous, nil)
	case "lossy-heterogeneous":
		return experiments.Lossy(cfg, deploy.Heterogeneous, nil)
	default:
		return Figure{}, fmt.Errorf("mldcs: unknown experiment %q (see ExperimentIDs)", id)
	}
}

// RunScenario parses a JSON scenario document (see experiments.Scenario
// for the schema) and executes its experiment suite in order, returning
// the figures.
func RunScenario(data []byte) ([]Figure, error) {
	known := make(map[string]bool)
	for _, id := range ExperimentIDs() {
		known[id] = true
	}
	known["repair"] = true // alias of fig5.6
	sc, err := experiments.ParseScenario(data, func(id string) bool { return known[id] })
	if err != nil {
		return nil, err
	}
	return sc.Run(RunExperiment)
}

// WriteReport materializes figures (typically from RunScenario) into a
// directory: per-figure JSON, CSV, and SVG chart plus an index.md with
// the rendered tables.
func WriteReport(dir string, figs []Figure) error {
	return experiments.WriteReport(dir, figs, RenderFigureSVG)
}

// ExperimentIDs lists the experiment identifiers RunExperiment accepts, in
// presentation order.
func ExperimentIDs() []string {
	return []string{
		"fig5.1", "fig5.2", "fig5.3", "fig5.4", "fig5.5", "fig5.6",
		"scaling", "engine-scaling", "storm-homogeneous", "storm-heterogeneous", "mobility",
		"collision-homogeneous", "collision-heterogeneous",
		"protocols-homogeneous", "protocols-heterogeneous",
		"energy-homogeneous", "energy-heterogeneous",
		"overhead-homogeneous", "overhead-heterogeneous",
		"allnodes-homogeneous", "allnodes-heterogeneous",
		"lossy-homogeneous", "lossy-heterogeneous",
	}
}

// RenderFigureSVG renders an experiment figure as an SVG line chart with
// axes, error bars (where the experiment recorded them), and a legend.
func RenderFigureSVG(fig Figure) string {
	series := make([]viz.ChartSeries, len(fig.Series))
	for i, s := range fig.Series {
		series[i] = viz.ChartSeries{Label: s.Label, X: s.X, Y: s.Y, Err: s.Err}
	}
	return viz.LineChart(fig.Title, fig.XLabel, fig.YLabel, series, 0, 0)
}

// RenderLocalSetSVG renders a local disk set and its skyline (as returned
// by ComputeSkyline with the same hub) to an SVG document. The disks are
// drawn in the hub frame.
func RenderLocalSetSVG(hub Point, disks []Disk, sl Skyline) string {
	translated := make([]Disk, len(disks))
	for i, d := range disks {
		translated[i] = d.Translate(hub)
	}
	return viz.RenderLocalSet(translated, sl)
}

// RenderNetworkSVG renders a network, highlighting the source and a
// forwarding set, to an SVG document.
func RenderNetworkSVG(g *Graph, source int, fwdSet []int) string {
	return viz.RenderNetwork(g, source, fwdSet)
}

// RenderBroadcastTreeSVG renders the reverse-path tree of a broadcast
// result (its Parent and Transmitted fields) as an SVG document: blue
// source, red transmitters, green leaves, gray unreached nodes.
func RenderBroadcastTreeSVG(g *Graph, source int, res BroadcastResult) string {
	return viz.RenderBroadcastTree(g, source, res.Parent, res.Transmitted)
}
