package forwarding

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/skyline"
)

// Calinescu implements the selecting-forwarding-set algorithm of Călinescu,
// Mandoiu, Wan, and Zelikovsky (MONET 2004) for homogeneous networks, the
// third comparator in the paper's Figure 5.1. Following the published
// structure:
//
//  1. Compute the skyline of the 1-hop neighbors' (unit) disks and number
//     the skyline disks in counterclockwise order. In homogeneous networks
//     every 2-hop neighbor is covered by some skyline disk, and the
//     skyline disks covering it are consecutive in that order.
//  2. Represent each 2-hop neighbor by its (circular) interval of covering
//     skyline-disk positions.
//  3. Pick a minimum set of positions stabbing every interval (the
//     published algorithm does this greedily per quadrant; we solve the
//     circular interval-stabbing problem exactly, which matches its
//     behaviour on quadrant-confined instances and is never worse).
//
// The algorithm needs 1-hop and 2-hop information and is defined only for
// homogeneous networks; Select returns ErrHeterogeneous otherwise (§5.1.2:
// "the selecting forwarding set algorithm doesn't work for heterogeneous
// networks").
type Calinescu struct{}

// Name implements Selector.
func (Calinescu) Name() string { return "calinescu" }

// Select implements Selector.
func (Calinescu) Select(g *network.Graph, u int) ([]int, error) {
	if g.Model() != network.Bidirectional {
		return nil, ErrNeedsBidirectional
	}
	if !homogeneous(g) {
		return nil, ErrHeterogeneous
	}
	neighbors := g.Neighbors(u)
	twoHop := g.TwoHop(u)
	if len(twoHop) == 0 {
		return nil, nil
	}

	// Skyline of the neighbors' disks in the hub frame (the hub's own disk
	// is excluded: 2-hop neighbors are outside it by definition).
	hub := g.Node(u).Pos
	disks := make([]geom.Disk, len(neighbors))
	for i, w := range neighbors {
		disks[i] = g.Node(w).Disk().Translate(hub)
	}
	sl, err := skyline.Compute(disks)
	if err != nil {
		return nil, err
	}

	// Number skyline disks counterclockwise by the start of their first
	// arc (a wrap-around arc's start is the start of its non-zero piece).
	order := skylineDiskOrder(sl)
	pos := make(map[int]int, len(order)) // disk index → ccw position
	for p, d := range order {
		pos[d] = p
	}
	m := len(order)

	// Build the covering interval of every 2-hop neighbor. In the
	// homogeneous bidirectional model, "disk covers t" coincides with
	// graph adjacency.
	intervals := make([]interval, 0, len(twoHop))
	var leftovers []int // 2-hop nodes with non-contiguous covering sets (numeric edge cases)
	for _, t := range twoHop {
		var covering []int
		for p, d := range order {
			if g.IsNeighbor(neighbors[d], t) {
				covering = append(covering, p)
			}
		}
		if len(covering) == 0 {
			// Should not happen in homogeneous networks (every 2-hop
			// neighbor is covered by a skyline disk); fall back to greedy.
			leftovers = append(leftovers, t)
			continue
		}
		iv, ok := contiguousInterval(covering, m)
		if !ok {
			leftovers = append(leftovers, t)
			continue
		}
		intervals = append(intervals, iv)
	}

	chosen := circularStab(intervals, m)
	set := make(map[int]bool, len(chosen))
	for _, p := range chosen {
		set[neighbors[order[p]]] = true
	}

	// Cover any leftovers greedily with arbitrary adjacent neighbors.
	for _, t := range leftovers {
		covered := false
		for w := range set {
			if g.IsNeighbor(w, t) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		for _, w := range neighbors {
			if g.IsNeighbor(w, t) {
				set[w] = true
				break
			}
		}
	}

	out := make([]int, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	return sortedCopy(out), nil
}

func homogeneous(g *network.Graph) bool {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return true
	}
	r := nodes[0].Radius
	for _, n := range nodes[1:] {
		if !geom.LengthEq(n.Radius, r) {
			return false
		}
	}
	return true
}

// skylineDiskOrder returns the distinct skyline disks ordered
// counterclockwise by the start angle of their first arc, with a
// wrap-around arc (same disk first and last) anchored at its late start.
func skylineDiskOrder(sl skyline.Skyline) []int {
	type first struct {
		disk  int
		start float64
	}
	seen := make(map[int]bool, len(sl))
	var firsts []first
	wrap := len(sl) > 1 && sl[0].Disk == sl[len(sl)-1].Disk
	for i, a := range sl {
		if seen[a.Disk] {
			continue
		}
		start := a.Start
		if i == 0 && wrap {
			start = sl[len(sl)-1].Start
		}
		seen[a.Disk] = true
		firsts = append(firsts, first{a.Disk, start})
	}
	sort.Slice(firsts, func(a, b int) bool { return firsts[a].start < firsts[b].start })
	out := make([]int, len(firsts))
	for i, f := range firsts {
		out[i] = f.disk
	}
	return out
}

// interval is a circular interval of positions [Lo .. Hi] modulo m
// (inclusive; Lo > Hi means it wraps through 0).
type interval struct{ Lo, Hi int }

// len returns the number of positions the interval covers on a cycle of m.
func (iv interval) len(m int) int {
	if iv.Lo <= iv.Hi {
		return iv.Hi - iv.Lo + 1
	}
	return m - iv.Lo + iv.Hi + 1
}

// contains reports whether position p is in the interval on a cycle of m.
func (iv interval) contains(p int) bool {
	if iv.Lo <= iv.Hi {
		return p >= iv.Lo && p <= iv.Hi
	}
	return p >= iv.Lo || p <= iv.Hi
}

// contiguousInterval converts a sorted position set into a circular
// interval, reporting ok=false if the set is not circularly contiguous.
func contiguousInterval(pts []int, m int) (interval, bool) {
	if len(pts) == m {
		return interval{0, m - 1}, true
	}
	// Find the single circular gap.
	gapAt := -1
	for i := 0; i < len(pts); i++ {
		next := pts[(i+1)%len(pts)]
		cur := pts[i]
		step := next - cur
		if step < 0 {
			step += m
		}
		if step != 1 {
			if gapAt >= 0 {
				return interval{}, false // more than one gap
			}
			gapAt = i
		}
	}
	if gapAt < 0 {
		// Only possible when len(pts) == m, handled above; a single point
		// wraps onto itself with step 0 → gapAt set. Defensive fallback:
		return interval{pts[0], pts[len(pts)-1]}, true
	}
	lo := pts[(gapAt+1)%len(pts)]
	hi := pts[gapAt]
	return interval{lo, hi}, true
}

// circularStab returns a minimum set of positions on a cycle of m that
// stabs every interval: for the candidate first stab it tries each
// position of a shortest interval, then greedily stabs the remaining
// intervals (sorted by right endpoint) on the unrolled line.
func circularStab(intervals []interval, m int) []int {
	if len(intervals) == 0 || m == 0 {
		return nil
	}
	// Shortest interval: any solution must stab it.
	short := intervals[0]
	for _, iv := range intervals[1:] {
		if iv.len(m) < short.len(m) {
			short = iv
		}
	}
	if short.len(m) == m {
		// All intervals cover everything; any single position works
		// unless some other interval is narrower (it isn't, by choice).
		return []int{0}
	}
	var best []int
	for off := 0; off < short.len(m); off++ {
		p := (short.Lo + off) % m
		sol := []int{p}
		// Unroll the circle starting after p; no remaining interval may
		// wrap across p since intervals containing p are already stabbed.
		type lin struct{ lo, hi int }
		var rest []lin
		for _, iv := range intervals {
			if iv.contains(p) {
				continue
			}
			lo := (iv.Lo - p - 1 + 2*m) % m
			hi := (iv.Hi - p - 1 + 2*m) % m
			rest = append(rest, lin{lo, hi})
		}
		sort.Slice(rest, func(a, b int) bool { return rest[a].hi < rest[b].hi })
		last := -1
		feasible := true
		for _, iv := range rest {
			if iv.lo <= last && last <= iv.hi {
				continue
			}
			if iv.hi < iv.lo {
				feasible = false // cannot happen after unrolling; defensive
				break
			}
			last = iv.hi
			sol = append(sol, (p+1+last)%m)
		}
		if feasible && (best == nil || len(sol) < len(best)) {
			best = sol
		}
	}
	sort.Ints(best)
	return best
}
