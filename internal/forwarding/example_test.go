package forwarding_test

import (
	"fmt"

	"repro/internal/forwarding"
	"repro/internal/geom"
	"repro/internal/network"
)

// fig56Nodes is the paper's Figure 5.6 construction: u3's disk dominates
// the source's neighborhood, but the 2-hop nodes u4/u5 cannot hear u3
// back.
func fig56Nodes() []network.Node {
	return []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(0.8, 0.3), Radius: 1},
		{ID: 2, Pos: geom.Pt(0.8, -0.3), Radius: 1},
		{ID: 3, Pos: geom.Pt(0.5, 0), Radius: 2.5},
		{ID: 4, Pos: geom.Pt(1.7, 0.3), Radius: 0.95},
		{ID: 5, Pos: geom.Pt(1.7, -0.3), Radius: 0.95},
	}
}

// The skyline selector needs only 1-hop information; on the Figure 5.6
// topology it picks the single dominating disk — and misses both 2-hop
// nodes, which the optimal (2-hop-informed) selector covers.
func ExampleSkyline_Select() {
	g, err := network.Build(fig56Nodes(), network.Bidirectional)
	if err != nil {
		panic(err)
	}
	sky, _ := forwarding.Skyline{}.Select(g, 0)
	opt, _ := forwarding.Optimal{}.Select(g, 0)
	fmt.Println("skyline:", sky, "covers", forwarding.CoverageRatio(g, 0, sky))
	fmt.Println("optimal:", opt, "covers", forwarding.CoverageRatio(g, 0, opt))
	// Output:
	// skyline: [3] covers 0
	// optimal: [1 2] covers 1
}

// The repair extension keeps the skyline base and patches the misses.
func ExampleSkylineRepair_Select() {
	g, err := network.Build(fig56Nodes(), network.Bidirectional)
	if err != nil {
		panic(err)
	}
	set, _ := forwarding.SkylineRepair{}.Select(g, 0)
	fmt.Println(set, forwarding.Covers(g, 0, set))
	// Output: [1 2 3] true
}
