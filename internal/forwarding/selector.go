// Package forwarding implements every forwarding-set selection algorithm
// compared in the paper's evaluation (§5.1):
//
//   - Flooding: all 1-hop neighbors relay (the baseline that causes the
//     broadcast storm problem).
//   - Skyline: the paper's contribution — the minimum local disk cover set
//     computed from 1-hop information only.
//   - Greedy: Chvátal-style greedy set cover over the 2-hop neighborhood,
//     the multipoint-relay heuristic of Qayyum et al.
//   - Optimal: exact minimum forwarding set by branch-and-bound (the
//     paper's brute-force reference).
//   - Călinescu: the selecting-forwarding-set algorithm of Călinescu et
//     al. for homogeneous networks (quadrant/skyline/interval structure).
//   - SkylineRepair: the paper's §5.2 future-work extension — the skyline
//     set patched with greedily chosen extras until 2-hop coverage is
//     guaranteed under bidirectional links.
//
// All selectors return forwarding sets as sorted node IDs that are 1-hop
// neighbors of the queried node.
package forwarding

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/network"
)

// Selector computes the forwarding set of a node.
type Selector interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Select returns the forwarding set of node u in g as sorted node IDs.
	Select(g *network.Graph, u int) ([]int, error)
}

// ErrNeedsBidirectional is returned by selectors that require the paper's
// bidirectional link model.
var ErrNeedsBidirectional = errors.New("forwarding: selector requires the bidirectional link model")

// ErrHeterogeneous is returned by the Călinescu selector when radii are not
// all equal; the published algorithm is defined only for homogeneous
// networks (§5.1.2).
var ErrHeterogeneous = errors.New("forwarding: selector requires a homogeneous network")

// ByName returns the selector registered under the given name. Valid names
// are "flooding", "skyline", "greedy", "optimal", "calinescu",
// "calinescu-quadrant", and "repair".
func ByName(name string) (Selector, error) {
	switch name {
	case "flooding":
		return Flooding{}, nil
	case "skyline":
		return Skyline{}, nil
	case "greedy":
		return Greedy{}, nil
	case "optimal":
		return Optimal{}, nil
	case "calinescu":
		return Calinescu{}, nil
	case "calinescu-quadrant":
		return CalinescuQuadrant{}, nil
	case "repair":
		return SkylineRepair{}, nil
	default:
		return nil, fmt.Errorf("forwarding: unknown selector %q", name)
	}
}

// coverage is the 2-hop cover structure of a node: the 2-hop neighbor IDs
// (the universe) and, for every 1-hop neighbor, the bitset of 2-hop
// neighbors adjacent to it under the graph's link model.
type coverage struct {
	neighbors []int         // 1-hop neighbor IDs, sorted
	twoHop    []int         // 2-hop neighbor IDs, sorted (universe)
	masks     []*bitset.Set // masks[i] = 2-hop nodes covered by neighbors[i]
	bitOf     map[int]int   // node ID → universe bit
}

func buildCoverage(g *network.Graph, u int) coverage {
	c := coverage{
		neighbors: g.Neighbors(u),
		twoHop:    g.TwoHop(u),
	}
	c.bitOf = make(map[int]int, len(c.twoHop))
	for b, id := range c.twoHop {
		c.bitOf[id] = b
	}
	c.masks = make([]*bitset.Set, len(c.neighbors))
	for i, w := range c.neighbors {
		m := bitset.New(len(c.twoHop))
		for _, t := range g.Neighbors(w) {
			if b, ok := c.bitOf[t]; ok {
				m.Add(b)
			}
		}
		c.masks[i] = m
	}
	return c
}

// Covers reports whether the forwarding set (node IDs, all 1-hop neighbors
// of u) covers every 2-hop neighbor of u, i.e. each 2-hop neighbor is
// adjacent to some member.
func Covers(g *network.Graph, u int, set []int) bool {
	return len(Uncovered(g, u, set)) == 0
}

// Uncovered returns the 2-hop neighbors of u not adjacent to any member of
// the forwarding set, sorted.
func Uncovered(g *network.Graph, u int, set []int) []int {
	var out []int
	for _, t := range g.TwoHop(u) {
		covered := false
		for _, w := range set {
			if g.IsNeighbor(w, t) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, t)
		}
	}
	return out
}

// CoverageRatio returns the fraction of 2-hop neighbors of u covered by
// the forwarding set; 1 when u has no 2-hop neighbors.
func CoverageRatio(g *network.Graph, u int, set []int) float64 {
	two := g.TwoHop(u)
	if len(two) == 0 {
		return 1
	}
	return 1 - float64(len(Uncovered(g, u, set)))/float64(len(two))
}

// Flooding is the blind-flooding baseline: every 1-hop neighbor relays.
type Flooding struct{}

// Name implements Selector.
func (Flooding) Name() string { return "flooding" }

// Select implements Selector.
func (Flooding) Select(g *network.Graph, u int) ([]int, error) {
	return append([]int(nil), g.Neighbors(u)...), nil
}

// sortedCopy returns a sorted copy of ids.
func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}
