package forwarding

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/network"
)

// Optimal computes an exact minimum forwarding set: the smallest subset of
// 1-hop neighbors adjacent to every 2-hop neighbor. The paper uses a brute
// force for this reference curve because the complexity of the minimum
// forwarding set problem on disk graphs is open; we sharpen the brute
// force into branch-and-bound over candidates sorted by coverage, with the
// greedy solution as the initial upper bound and a packing lower bound for
// pruning. Exponential in the worst case but fast at the paper's scales
// (a few dozen neighbors).
type Optimal struct{}

// Name implements Selector.
func (Optimal) Name() string { return "optimal" }

// Select implements Selector.
func (Optimal) Select(g *network.Graph, u int) ([]int, error) {
	cov := buildCoverage(g, u)
	if len(cov.twoHop) == 0 {
		return nil, nil
	}
	// Upper bound from greedy.
	upper, err := (Greedy{}).Select(g, u)
	if err != nil {
		return nil, err
	}

	// Candidates: neighbors with non-empty masks, in decreasing coverage
	// order. Drop neighbors whose mask is a subset of another's
	// (dominated): any solution using a dominated neighbor stays feasible
	// when it is swapped for its dominator, so an optimum over the reduced
	// candidate set exists.
	type cand struct {
		id   int
		mask *bitset.Set
	}
	var cands []cand
	for i, w := range cov.neighbors {
		if !cov.masks[i].Empty() {
			cands = append(cands, cand{w, cov.masks[i]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a].mask.Count(), cands[b].mask.Count()
		if ca != cb {
			return ca > cb
		}
		return cands[a].id < cands[b].id
	})
	dominated := make([]bool, len(cands))
	for a := range cands {
		if dominated[a] {
			continue
		}
		for b := a + 1; b < len(cands); b++ {
			if !dominated[b] && cands[b].mask.IsSubset(cands[a].mask) {
				dominated[b] = true
			}
		}
	}
	kept := cands[:0]
	for i, c := range cands {
		if !dominated[i] {
			kept = append(kept, c)
		}
	}
	cands = kept

	// Suffix maxima of mask sizes for the packing lower bound.
	suffixMax := make([]int, len(cands)+1)
	for i := len(cands) - 1; i >= 0; i-- {
		suffixMax[i] = suffixMax[i+1]
		if c := cands[i].mask.Count(); c > suffixMax[i] {
			suffixMax[i] = c
		}
	}

	best := append([]int(nil), upper...)
	uncovered := bitset.New(len(cov.twoHop))
	uncovered.Fill()
	var chosen []int

	var dfs func(from int)
	dfs = func(from int) {
		if uncovered.Empty() {
			if len(chosen) < len(best) {
				best = append(best[:0], chosen...)
			}
			return
		}
		if from >= len(cands) || suffixMax[from] == 0 {
			return
		}
		// Packing bound: even covering suffixMax[from] new nodes per pick
		// cannot beat the incumbent.
		need := (uncovered.Count() + suffixMax[from] - 1) / suffixMax[from]
		if len(chosen)+need >= len(best) {
			return
		}
		for j := from; j < len(cands); j++ {
			gain := cands[j].mask.Count() - cands[j].mask.CountAndNot(uncovered)
			if gain == 0 {
				continue
			}
			saved := uncovered.Clone()
			uncovered.AndNotWith(cands[j].mask)
			chosen = append(chosen, cands[j].id)
			dfs(j + 1)
			chosen = chosen[:len(chosen)-1]
			uncovered = saved
		}
	}
	dfs(0)
	return sortedCopy(best), nil
}
