package forwarding

import (
	"repro/internal/mldcs"
	"repro/internal/network"
)

// Skyline is the paper's forwarding-set algorithm: the minimum local disk
// cover set of the node's 1-hop neighborhood (Theorem 3: the skyline set),
// computed from 1-hop information only in O(n log n). The hub's own disk
// participates in the skyline — its arcs are covered by the node's original
// transmission — but is excluded from the returned forwarding set.
type Skyline struct{}

// Name implements Selector.
func (Skyline) Name() string { return "skyline" }

// Select implements Selector.
func (Skyline) Select(g *network.Graph, u int) ([]int, error) {
	if g.Model() != network.Bidirectional {
		return nil, ErrNeedsBidirectional
	}
	ls, ids, err := g.LocalSet(u)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, nil
	}
	r, err := mldcs.Solve(ls)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(r.Cover))
	for _, i := range r.NeighborCover() {
		out = append(out, ids[i])
	}
	return sortedCopy(out), nil
}

// SkylineRepair is the paper's §5.2 future-work extension. In
// heterogeneous networks with bidirectional links, the skyline set alone
// cannot guarantee 2-hop coverage (the Figure 5.6 drawback): a 1-hop
// neighbor whose disk geometrically covers a 2-hop node may still not be
// its graph neighbor, because the 2-hop node's own radius is too small to
// reach back. SkylineRepair keeps the skyline set as the base — preserving
// its full-coverage geometry — and, using 2-hop information, greedily adds
// the fewest extra 1-hop neighbors needed to cover the 2-hop nodes the
// skyline set misses.
type SkylineRepair struct{}

// Name implements Selector.
func (SkylineRepair) Name() string { return "repair" }

// Select implements Selector.
func (SkylineRepair) Select(g *network.Graph, u int) ([]int, error) {
	base, err := (Skyline{}).Select(g, u)
	if err != nil {
		return nil, err
	}
	missing := Uncovered(g, u, base)
	if len(missing) == 0 {
		return base, nil
	}
	cov := buildCoverage(g, u)
	uncovered := make(map[int]bool, len(missing))
	for _, t := range missing {
		uncovered[t] = true
	}
	inSet := make(map[int]bool, len(base))
	for _, w := range base {
		inSet[w] = true
	}
	// Greedy: repeatedly add the 1-hop neighbor covering the most
	// still-uncovered 2-hop nodes.
	for len(uncovered) > 0 {
		bestGain, bestID := 0, -1
		for i, w := range cov.neighbors {
			if inSet[w] {
				continue
			}
			gain := 0
			for _, b := range cov.masks[i].Members() {
				if uncovered[cov.twoHop[b]] {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && (bestID < 0 || w < bestID)) {
				bestGain, bestID = gain, w
			}
		}
		if bestID < 0 {
			// No neighbor can cover the rest — impossible by the
			// definition of 2-hop neighbors, but guard against it.
			break
		}
		inSet[bestID] = true
		base = append(base, bestID)
		for i, w := range cov.neighbors {
			if w != bestID {
				continue
			}
			for _, b := range cov.masks[i].Members() {
				delete(uncovered, cov.twoHop[b])
			}
		}
	}
	return sortedCopy(base), nil
}
