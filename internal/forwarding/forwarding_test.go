package forwarding

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/network"
)

// buildRandom deploys a paper-style network and returns the graph. The
// source (node 0) sits at the center.
func buildRandom(t *testing.T, model deploy.RadiusModel, degree float64, seed int64) *network.Graph {
	t.Helper()
	cfg := deploy.PaperConfig(model, degree)
	nodes, err := deploy.Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestByName(t *testing.T) {
	for _, name := range []string{"flooding", "skyline", "greedy", "optimal", "calinescu", "repair"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown selector must fail")
	}
}

func TestFloodingReturnsAllNeighbors(t *testing.T) {
	g := buildRandom(t, deploy.Homogeneous, 8, 1)
	set, err := (Flooding{}).Select(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != g.Degree(0) {
		t.Errorf("flooding set size %d != degree %d", len(set), g.Degree(0))
	}
}

// All cover-guaranteeing selectors must actually cover every 2-hop
// neighbor, and the optimal must be no larger than any of them.
func TestCoverageAndOrderingHomogeneous(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := buildRandom(t, deploy.Homogeneous, 10, 100+seed)
		sizes := map[string]int{}
		for _, sel := range []Selector{Skyline{}, Greedy{}, Optimal{}, Calinescu{}, SkylineRepair{}} {
			set, err := sel.Select(g, 0)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, sel.Name(), err)
			}
			for _, w := range set {
				if !g.IsNeighbor(0, w) {
					t.Fatalf("seed %d %s: %d not a neighbor of source", seed, sel.Name(), w)
				}
			}
			if !Covers(g, 0, set) {
				t.Fatalf("seed %d %s: set %v misses 2-hop neighbors %v",
					seed, sel.Name(), set, Uncovered(g, 0, set))
			}
			sizes[sel.Name()] = len(set)
		}
		opt := sizes["optimal"]
		for name, size := range sizes {
			if size < opt {
				t.Fatalf("seed %d: %s produced %d < optimal %d", seed, name, size, opt)
			}
		}
		if sizes["greedy"] > sizes["skyline"]+2 && sizes["skyline"] > 0 {
			// Greedy (2-hop info) is expected to be ≤ skyline on average;
			// allow slack per instance but catch gross inversions.
			t.Logf("seed %d: greedy %d vs skyline %d", seed, sizes["greedy"], sizes["skyline"])
		}
	}
}

// In heterogeneous networks the skyline set may miss 2-hop neighbors (the
// Figure 5.6 drawback) but greedy/optimal/repair must still cover.
func TestCoverageHeterogeneous(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := buildRandom(t, deploy.Heterogeneous, 10, 200+seed)
		for _, sel := range []Selector{Greedy{}, Optimal{}, SkylineRepair{}} {
			set, err := sel.Select(g, 0)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, sel.Name(), err)
			}
			if !Covers(g, 0, set) {
				t.Fatalf("seed %d %s: set %v misses %v", seed, sel.Name(), set, Uncovered(g, 0, set))
			}
		}
		// The optimal is a lower bound for greedy and repair.
		opt, _ := (Optimal{}).Select(g, 0)
		grd, _ := (Greedy{}).Select(g, 0)
		if len(grd) < len(opt) {
			t.Fatalf("seed %d: greedy %d below optimal %d", seed, len(grd), len(opt))
		}
	}
}

// Exhaustive check of Optimal on small instances: enumerate every subset
// of the source's neighbors and confirm no smaller cover exists.
func TestOptimalIsExhaustivelyMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		// Small sparse networks so the neighbor count stays enumerable.
		nodes := make([]network.Node, 12)
		for i := range nodes {
			nodes[i] = network.Node{
				ID:     i,
				Pos:    geom.Pt(rng.Float64()*5, rng.Float64()*5),
				Radius: 1 + rng.Float64(),
			}
		}
		g, err := network.Build(nodes, network.Bidirectional)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := (Optimal{}).Select(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !Covers(g, 0, opt) {
			t.Fatalf("trial %d: optimal set does not cover", trial)
		}
		nbrs := g.Neighbors(0)
		if len(nbrs) > 16 {
			continue
		}
		bestSize := len(nbrs) + 1
		for mask := 0; mask < 1<<len(nbrs); mask++ {
			var set []int
			for i, w := range nbrs {
				if mask&(1<<i) != 0 {
					set = append(set, w)
				}
			}
			if len(set) >= bestSize {
				continue
			}
			if Covers(g, 0, set) {
				bestSize = len(set)
			}
		}
		if len(opt) != bestSize {
			t.Fatalf("trial %d: Optimal returned %d, exhaustive minimum is %d",
				trial, len(opt), bestSize)
		}
	}
}

// In homogeneous networks the skyline set always covers the 2-hop
// neighborhood (the drawback is specific to heterogeneous radii): since
// every 2-hop neighbor lies in the union of the 1-hop disks and coverage
// equals adjacency when radii are equal.
func TestSkylineCoversInHomogeneous(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := buildRandom(t, deploy.Homogeneous, 12, 300+seed)
		for u := 0; u < g.Len(); u += 50 {
			set, err := (Skyline{}).Select(g, u)
			if err != nil {
				t.Fatal(err)
			}
			if !Covers(g, u, set) {
				t.Fatalf("seed %d node %d: homogeneous skyline set %v misses %v",
					seed, u, set, Uncovered(g, u, set))
			}
		}
	}
}

// The paper's Figure 5.6 construction: the skyline set is {u3}, whose
// transmissions cover u4 and u5 geometrically, but u4/u5 cannot reach back
// so they are not u3's neighbors and stay unreached; the optimal
// forwarding set is {u1, u2}.
func fig56Graph(t *testing.T) *network.Graph {
	t.Helper()
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},         // u
		{ID: 1, Pos: geom.Pt(0.8, 0.3), Radius: 1},     // u1
		{ID: 2, Pos: geom.Pt(0.8, -0.3), Radius: 1},    // u2
		{ID: 3, Pos: geom.Pt(0.5, 0), Radius: 2.5},     // u3: huge disk, covers everything
		{ID: 4, Pos: geom.Pt(1.7, 0.3), Radius: 0.95},  // u4: 2-hop via u1
		{ID: 5, Pos: geom.Pt(1.7, -0.3), Radius: 0.95}, // u5: 2-hop via u2
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFigure56SpecialCase(t *testing.T) {
	g := fig56Graph(t)
	// Sanity: adjacency as in the figure.
	if got := g.Neighbors(0); len(got) != 3 {
		t.Fatalf("source neighbors = %v, want u1,u2,u3", got)
	}
	if got := g.TwoHop(0); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("TwoHop = %v, want [4 5]", got)
	}
	if g.IsNeighbor(3, 4) || g.IsNeighbor(3, 5) {
		t.Fatal("u3 must not be adjacent to u4/u5 (they cannot reach back)")
	}

	sky, err := (Skyline{}).Select(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) != 1 || sky[0] != 3 {
		t.Fatalf("skyline set = %v, want [3] (u3 dominates the union)", sky)
	}
	if got := CoverageRatio(g, 0, sky); got != 0 {
		t.Errorf("skyline 2-hop coverage = %v, want 0 (the drawback)", got)
	}

	opt, err := (Optimal{}).Select(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) != 2 || opt[0] != 1 || opt[1] != 2 {
		t.Fatalf("optimal = %v, want [1 2]", opt)
	}

	rep, err := (SkylineRepair{}).Select(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Covers(g, 0, rep) {
		t.Fatalf("repair set %v must cover", rep)
	}
	// Repair keeps the skyline base.
	found := false
	for _, w := range rep {
		if w == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("repair set %v must contain the skyline disk u3", rep)
	}
}

func TestCalinescuRejectsHeterogeneous(t *testing.T) {
	g := buildRandom(t, deploy.Heterogeneous, 8, 5)
	if _, err := (Calinescu{}).Select(g, 0); !errors.Is(err, ErrHeterogeneous) {
		t.Errorf("expected ErrHeterogeneous, got %v", err)
	}
}

func TestSelectorsOnIsolatedNode(t *testing.T) {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(10, 10), Radius: 1},
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []Selector{Flooding{}, Skyline{}, Greedy{}, Optimal{}, Calinescu{}, SkylineRepair{}} {
		set, err := sel.Select(g, 0)
		if err != nil {
			t.Fatalf("%s on isolated node: %v", sel.Name(), err)
		}
		if len(set) != 0 {
			t.Errorf("%s on isolated node = %v, want empty", sel.Name(), set)
		}
	}
}

// A node whose neighbors have no 2-hop extension: greedy/optimal return
// empty sets, skyline still returns the cover set.
func TestNoTwoHopNeighbors(t *testing.T) {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(0.5, 0), Radius: 1},
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []Selector{Greedy{}, Optimal{}, Calinescu{}} {
		set, err := sel.Select(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != 0 {
			t.Errorf("%s with no 2-hop neighbors = %v, want empty", sel.Name(), set)
		}
	}
	sky, err := (Skyline{}).Select(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) != 1 {
		t.Errorf("skyline = %v, want the single neighbor (its disk pokes out)", sky)
	}
}

func TestBidirectionalRequired(t *testing.T) {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(0.5, 0), Radius: 1},
	}
	g, err := network.Build(nodes, network.Unidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Skyline{}).Select(g, 0); !errors.Is(err, ErrNeedsBidirectional) {
		t.Errorf("skyline on unidirectional graph: %v", err)
	}
	if _, err := (Calinescu{}).Select(g, 0); !errors.Is(err, ErrNeedsBidirectional) {
		t.Errorf("calinescu on unidirectional graph: %v", err)
	}
}

func TestCoverageHelpers(t *testing.T) {
	g := fig56Graph(t)
	if got := Uncovered(g, 0, []int{1}); len(got) != 1 || got[0] != 5 {
		t.Errorf("Uncovered({u1}) = %v, want [5]", got)
	}
	if !Covers(g, 0, []int{1, 2}) {
		t.Error("{u1, u2} covers")
	}
	if got := CoverageRatio(g, 0, []int{1}); got != 0.5 {
		t.Errorf("CoverageRatio({u1}) = %v, want 0.5", got)
	}
	// Node with no 2-hop neighbors has ratio 1.
	if got := CoverageRatio(g, 0, nil); got != 0 {
		t.Errorf("CoverageRatio(nil) = %v, want 0", got)
	}
	if got := CoverageRatio(g, 4, nil); got != 1 {
		// u4's 2-hop set via u1/u5... compute: ensure ratio 1 only when empty.
		if len(g.TwoHop(4)) != 0 {
			t.Logf("u4 has 2-hop neighbors %v; ratio %v", g.TwoHop(4), got)
		}
	}
}
