package forwarding

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/network"
)

// Greedy is the multipoint-relay heuristic (Qayyum et al., adapted from
// Chvátal's greedy set cover): iteratively pick the 1-hop neighbor that
// covers the most not-yet-covered 2-hop neighbors until every 2-hop
// neighbor is covered. Approximation ratio O(log Δ). Requires 2-hop
// information.
type Greedy struct{}

// Name implements Selector.
func (Greedy) Name() string { return "greedy" }

// Select implements Selector.
func (Greedy) Select(g *network.Graph, u int) ([]int, error) {
	cov := buildCoverage(g, u)
	if len(cov.twoHop) == 0 {
		return nil, nil
	}
	uncovered := bitset.New(len(cov.twoHop))
	uncovered.Fill()
	var out []int
	for !uncovered.Empty() {
		bestGain, best := 0, -1
		for i := range cov.neighbors {
			gain := cov.masks[i].Count() - cov.masks[i].CountAndNot(uncovered)
			if gain > bestGain {
				bestGain, best = gain, i
			}
		}
		if best < 0 {
			// Every 2-hop neighbor is adjacent to some 1-hop neighbor by
			// definition, so this indicates an inconsistent graph.
			return nil, fmt.Errorf("forwarding: node %d has uncoverable 2-hop neighbors", u)
		}
		out = append(out, cov.neighbors[best])
		uncovered.AndNotWith(cov.masks[best])
	}
	return sortedCopy(out), nil
}
