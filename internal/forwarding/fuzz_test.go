package forwarding

import (
	"encoding/binary"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
)

// nodesFromBytes decodes a byte string into a small valid node set: each
// 6-byte chunk becomes one node with a position in a 8×8 square and a
// radius in [1, 2].
func nodesFromBytes(data []byte) []network.Node {
	var nodes []network.Node
	for len(data) >= 6 && len(nodes) < 40 {
		chunk := data[:6]
		data = data[6:]
		x := float64(binary.LittleEndian.Uint16(chunk[0:2])) / 65535 * 8
		y := float64(binary.LittleEndian.Uint16(chunk[2:4])) / 65535 * 8
		r := 1 + float64(binary.LittleEndian.Uint16(chunk[4:6]))/65535
		nodes = append(nodes, network.Node{ID: len(nodes), Pos: geom.Pt(x, y), Radius: r})
	}
	if len(nodes) == 0 {
		nodes = []network.Node{{ID: 0, Pos: geom.Pt(0, 0), Radius: 1}}
	}
	return nodes
}

// FuzzSelectorInvariants drives every selector over fuzzed topologies and
// checks the cross-selector invariants: forwarding sets are sorted subsets
// of the neighborhood; greedy, optimal, and repair cover every 2-hop
// neighbor; and |optimal| ≤ |greedy| and |optimal| ≤ |repair|.
func FuzzSelectorInvariants(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 6*20)
	for i := range seed {
		seed[i] = byte(i * 13)
	}
	f.Add(seed)
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		nodes := nodesFromBytes(data)
		g, err := network.Build(nodes, network.Bidirectional)
		if err != nil {
			t.Fatalf("valid-by-construction nodes rejected: %v", err)
		}
		u := 0
		sizes := map[string]int{}
		for _, sel := range []Selector{Flooding{}, Skyline{}, Greedy{}, Optimal{}, SkylineRepair{}} {
			set, err := sel.Select(g, u)
			if err != nil {
				t.Fatalf("%s: %v", sel.Name(), err)
			}
			for i, w := range set {
				if !g.IsNeighbor(u, w) {
					t.Fatalf("%s: %d not a neighbor", sel.Name(), w)
				}
				if i > 0 && set[i-1] >= w {
					t.Fatalf("%s: set not sorted/unique: %v", sel.Name(), set)
				}
			}
			sizes[sel.Name()] = len(set)
			switch sel.(type) {
			case Greedy, Optimal, SkylineRepair:
				if !Covers(g, u, set) {
					t.Fatalf("%s: set %v misses %v", sel.Name(), set, Uncovered(g, u, set))
				}
			}
		}
		if sizes["optimal"] > sizes["greedy"] {
			t.Fatalf("optimal %d > greedy %d", sizes["optimal"], sizes["greedy"])
		}
		if sizes["optimal"] > sizes["repair"] {
			t.Fatalf("optimal %d > repair %d", sizes["optimal"], sizes["repair"])
		}
		if sizes["skyline"] > sizes["flooding"] {
			t.Fatalf("skyline %d > flooding %d", sizes["skyline"], sizes["flooding"])
		}
	})
}
