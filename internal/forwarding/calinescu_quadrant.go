package forwarding

import (
	"math"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/skyline"
)

// CalinescuQuadrant is the published form of the Călinescu et al.
// algorithm: the plane around the source is partitioned into four
// quadrants, the interval-cover step runs independently per quadrant (the
// contiguity lemma they prove holds for 2-hop neighbors confined to one
// quadrant), and the final forwarding set is the union of the per-quadrant
// selections. This is their 2-approximation per quadrant, hence ≤ 8·OPT
// overall in the worst case; the Calinescu selector in this repository
// solves the circular stabbing globally and exactly instead. Keeping both
// makes the published/exact gap measurable.
type CalinescuQuadrant struct{}

// Name implements Selector.
func (CalinescuQuadrant) Name() string { return "calinescu-quadrant" }

// Select implements Selector.
func (CalinescuQuadrant) Select(g *network.Graph, u int) ([]int, error) {
	if g.Model() != network.Bidirectional {
		return nil, ErrNeedsBidirectional
	}
	if !homogeneous(g) {
		return nil, ErrHeterogeneous
	}
	neighbors := g.Neighbors(u)
	twoHop := g.TwoHop(u)
	if len(twoHop) == 0 {
		return nil, nil
	}
	hub := g.Node(u).Pos
	disks := make([]geom.Disk, len(neighbors))
	for i, w := range neighbors {
		disks[i] = g.Node(w).Disk().Translate(hub)
	}
	sl, err := skyline.Compute(disks)
	if err != nil {
		return nil, err
	}
	order := skylineDiskOrder(sl)
	m := len(order)

	// Partition 2-hop neighbors by the quadrant of their direction from
	// the hub.
	quadrants := make([][]int, 4)
	for _, t := range twoHop {
		q := int(g.Node(t).Pos.Sub(hub).Angle() / (math.Pi / 2))
		if q > 3 {
			q = 3
		}
		quadrants[q] = append(quadrants[q], t)
	}

	set := make(map[int]bool)
	for _, targets := range quadrants {
		if len(targets) == 0 {
			continue
		}
		var intervals []interval
		var leftovers []int
		for _, t := range targets {
			var covering []int
			for p, d := range order {
				if g.IsNeighbor(neighbors[d], t) {
					covering = append(covering, p)
				}
			}
			if len(covering) == 0 {
				leftovers = append(leftovers, t)
				continue
			}
			iv, ok := contiguousInterval(covering, m)
			if !ok {
				leftovers = append(leftovers, t)
				continue
			}
			intervals = append(intervals, iv)
		}
		for _, p := range circularStab(intervals, m) {
			set[neighbors[order[p]]] = true
		}
		for _, t := range leftovers {
			covered := false
			for w := range set {
				if g.IsNeighbor(w, t) {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			for _, w := range neighbors {
				if g.IsNeighbor(w, t) {
					set[w] = true
					break
				}
			}
		}
	}
	out := make([]int, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	return sortedCopy(out), nil
}
