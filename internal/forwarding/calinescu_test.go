package forwarding

import (
	"math/rand"
	"testing"

	"repro/internal/deploy"
)

func TestIntervalLenAndContains(t *testing.T) {
	m := 10
	plain := interval{2, 5}
	if plain.len(m) != 4 {
		t.Errorf("len([2,5]) = %d, want 4", plain.len(m))
	}
	for _, p := range []int{2, 3, 5} {
		if !plain.contains(p) {
			t.Errorf("[2,5] must contain %d", p)
		}
	}
	for _, p := range []int{1, 6, 9} {
		if plain.contains(p) {
			t.Errorf("[2,5] must not contain %d", p)
		}
	}
	wrap := interval{8, 1}
	if wrap.len(m) != 4 {
		t.Errorf("len([8..1]) = %d, want 4", wrap.len(m))
	}
	for _, p := range []int{8, 9, 0, 1} {
		if !wrap.contains(p) {
			t.Errorf("[8..1] must contain %d", p)
		}
	}
	for _, p := range []int{2, 7} {
		if wrap.contains(p) {
			t.Errorf("[8..1] must not contain %d", p)
		}
	}
}

func TestContiguousInterval(t *testing.T) {
	m := 8
	if iv, ok := contiguousInterval([]int{2, 3, 4}, m); !ok || iv != (interval{2, 4}) {
		t.Errorf("contiguous [2,3,4] = %v, %v", iv, ok)
	}
	if iv, ok := contiguousInterval([]int{0, 1, 7}, m); !ok || iv != (interval{7, 1}) {
		t.Errorf("wrapping [0,1,7] = %v, %v", iv, ok)
	}
	if iv, ok := contiguousInterval([]int{3}, m); !ok || iv != (interval{3, 3}) {
		t.Errorf("singleton = %v, %v", iv, ok)
	}
	if _, ok := contiguousInterval([]int{0, 2, 4}, m); ok {
		t.Error("scattered set must not be contiguous")
	}
	if iv, ok := contiguousInterval([]int{0, 1, 2, 3, 4, 5, 6, 7}, m); !ok || iv != (interval{0, 7}) {
		t.Errorf("full circle = %v, %v", iv, ok)
	}
}

func TestCircularStab(t *testing.T) {
	m := 10
	// Disjoint intervals need one stab each.
	got := circularStab([]interval{{0, 1}, {4, 5}, {8, 9}}, m)
	if len(got) != 3 {
		t.Errorf("3 disjoint intervals stabbed with %v", got)
	}
	// Nested/overlapping intervals share a stab.
	got = circularStab([]interval{{2, 6}, {3, 4}, {4, 8}}, m)
	if len(got) != 1 {
		t.Errorf("overlapping intervals stabbed with %v, want 1 point", got)
	}
	if len(got) == 1 && !(interval{3, 4}).contains(got[0]) {
		t.Errorf("stab %v must hit the innermost interval [3,4]", got)
	}
	// A wrapping interval plus a plain one.
	got = circularStab([]interval{{8, 1}, {0, 3}}, m)
	if len(got) != 1 {
		t.Errorf("wrap-overlap stabbed with %v, want 1 point", got)
	}
	// Empty input.
	if got := circularStab(nil, m); got != nil {
		t.Errorf("no intervals → no stabs, got %v", got)
	}
	// Full-circle intervals.
	got = circularStab([]interval{{0, 9}, {0, 9}}, m)
	if len(got) != 1 {
		t.Errorf("full-circle intervals stabbed with %v", got)
	}
}

// Verify circularStab is minimal by brute force on random instances.
func TestCircularStabMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(8)
		k := 1 + rng.Intn(5)
		intervals := make([]interval, k)
		for i := range intervals {
			lo := rng.Intn(m)
			length := 1 + rng.Intn(m)
			intervals[i] = interval{lo, (lo + length - 1) % m}
		}
		got := circularStab(intervals, m)
		// Check feasibility.
		for _, iv := range intervals {
			hit := false
			for _, p := range got {
				if iv.contains(p) {
					hit = true
					break
				}
			}
			if !hit {
				t.Fatalf("trial %d: stab %v misses %v (m=%d, %v)", trial, got, iv, m, intervals)
			}
		}
		// Brute-force minimum by subset enumeration over positions.
		best := m + 1
		for mask := 0; mask < 1<<m; mask++ {
			cnt := 0
			var pts []int
			for p := 0; p < m; p++ {
				if mask&(1<<p) != 0 {
					cnt++
					pts = append(pts, p)
				}
			}
			if cnt >= best {
				continue
			}
			ok := true
			for _, iv := range intervals {
				hit := false
				for _, p := range pts {
					if iv.contains(p) {
						hit = true
						break
					}
				}
				if !hit {
					ok = false
					break
				}
			}
			if ok {
				best = cnt
			}
		}
		if len(got) != best {
			t.Fatalf("trial %d: circularStab used %d points, optimum is %d (m=%d, %v)",
				trial, len(got), best, m, intervals)
		}
	}
}

// The published quadrant variant must cover like the exact one, never
// beat the optimal, and on aggregate use at least as many forwarders as
// the globally-exact circular stabbing (its per-quadrant decomposition
// cannot gain anything).
func TestCalinescuQuadrantVariant(t *testing.T) {
	sumExact, sumQuad, sumOpt := 0, 0, 0
	for seed := int64(0); seed < 20; seed++ {
		g := buildRandom(t, deploy.Homogeneous, 10, 450+seed)
		quad, err := (CalinescuQuadrant{}).Select(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !Covers(g, 0, quad) {
			t.Fatalf("seed %d: quadrant set %v misses %v", seed, quad, Uncovered(g, 0, quad))
		}
		exact, err := (Calinescu{}).Select(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := (Optimal{}).Select(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(quad) < len(opt) {
			t.Fatalf("seed %d: quadrant %d below optimal %d", seed, len(quad), len(opt))
		}
		sumExact += len(exact)
		sumQuad += len(quad)
		sumOpt += len(opt)
	}
	if sumQuad < sumExact {
		t.Errorf("quadrant total %d beats exact stabbing %d — impossible on average",
			sumQuad, sumExact)
	}
	t.Logf("totals over 20 runs: optimal %d, exact %d, quadrant %d", sumOpt, sumExact, sumQuad)
}

func TestCalinescuQuadrantRejects(t *testing.T) {
	g := buildRandom(t, deploy.Heterogeneous, 8, 470)
	if _, err := (CalinescuQuadrant{}).Select(g, 0); err == nil {
		t.Error("heterogeneous network must be rejected")
	}
	sel, err := ByName("calinescu-quadrant")
	if err != nil || sel.Name() != "calinescu-quadrant" {
		t.Errorf("ByName registration broken: %v, %v", sel, err)
	}
}

// On the paper's homogeneous workloads Călinescu must sit between optimal
// and skyline on average (Figure 5.1 ordering).
func TestCalinescuBetweenOptimalAndSkyline(t *testing.T) {
	sumCal, sumSky, sumOpt := 0, 0, 0
	for seed := int64(0); seed < 20; seed++ {
		g := buildRandom(t, deploy.Homogeneous, 10, 400+seed)
		cal, err := (Calinescu{}).Select(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !Covers(g, 0, cal) {
			t.Fatalf("seed %d: calinescu set %v misses %v", seed, cal, Uncovered(g, 0, cal))
		}
		sky, _ := (Skyline{}).Select(g, 0)
		opt, _ := (Optimal{}).Select(g, 0)
		sumCal += len(cal)
		sumSky += len(sky)
		sumOpt += len(opt)
		if len(cal) < len(opt) {
			t.Fatalf("seed %d: calinescu %d below optimal %d", seed, len(cal), len(opt))
		}
	}
	if !(sumOpt <= sumCal && sumCal <= sumSky) {
		t.Errorf("Figure 5.1 ordering violated on average: optimal %d, calinescu %d, skyline %d",
			sumOpt, sumCal, sumSky)
	}
}
