package mobility

import (
	"fmt"
	"math/rand"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/network"
)

// This file provides the contention-skewed workload used to stress the
// engine's worker pool: node placement concentrated in zipf-weighted
// hotspot clusters (so a few grid cells hold most of the network) and a
// mover process that draws from the same skew (so the dirty set of every
// Update tick lands in the hot cells too). Contention = 0 is defined to be
// byte-for-byte the existing uniform workload — same deployment draws,
// same mover draws — so sweeps can treat the knob as a pure skew dial.

// HotspotConfig parameterizes a zipf-skewed hotspot workload.
type HotspotConfig struct {
	Deploy deploy.Config
	// Hotspots is the number of cluster centers (ignored when
	// Contention == 0).
	Hotspots int
	// Contention is the zipf exponent s skewing both placement and mover
	// selection across hotspots: 0 = uniform (no hotspots at all), larger
	// values concentrate more of the network — and more of the movement —
	// in the top-ranked clusters.
	Contention float64
	// Spread is the Gaussian radius of each cluster, in region units
	// (ignored when Contention == 0).
	Spread float64
	// MoveFrac is the per-move drift bound as a fraction of the moving
	// node's radius (the uniform workload's small-move step).
	MoveFrac float64
}

// Validate checks the configuration.
func (c HotspotConfig) Validate() error {
	if err := c.Deploy.Validate(); err != nil {
		return err
	}
	if c.Contention < 0 {
		return fmt.Errorf("mobility: contention %g must be ≥ 0", c.Contention)
	}
	if c.Contention > 0 {
		if c.Hotspots < 1 {
			return fmt.Errorf("mobility: hotspots %d must be ≥ 1 when contention > 0", c.Hotspots)
		}
		if !(c.Spread > 0) {
			return fmt.Errorf("mobility: spread %g must be positive when contention > 0", c.Spread)
		}
	}
	if !(c.MoveFrac > 0) {
		return fmt.Errorf("mobility: move fraction %g must be positive", c.MoveFrac)
	}
	return nil
}

// HotspotWorkload is a generated hotspot deployment plus its skewed mover
// process. All randomness flows through the rng handed to each method, so
// a fixed seed reproduces the whole workload exactly.
type HotspotWorkload struct {
	cfg     HotspotConfig
	nodes   []network.Node
	zipf    *Zipf   // nil when Contention == 0
	members [][]int // node indices per hotspot rank (rank 0 hottest)
}

// NewHotspotWorkload generates the deployment. At Contention == 0 it
// delegates to deploy.Generate, consuming the rng identically — the
// contention-zero table test pins that byte-for-byte.
func NewHotspotWorkload(cfg HotspotConfig, rng *rand.Rand) (*HotspotWorkload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &HotspotWorkload{cfg: cfg}
	//mldcslint:allow floatcmp mode switch, not geometry: exactly 0 selects the uniform generator, any positive value the zipf path
	if cfg.Contention == 0 {
		nodes, err := deploy.Generate(cfg.Deploy, rng)
		if err != nil {
			return nil, err
		}
		w.nodes = nodes
		return w, nil
	}
	z, err := NewZipf(cfg.Hotspots, cfg.Contention)
	if err != nil {
		return nil, err
	}
	w.zipf = z
	centers := make([]geom.Point, cfg.Hotspots)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*cfg.Deploy.Side, rng.Float64()*cfg.Deploy.Side)
	}
	side := cfg.Deploy.Side
	count := cfg.Deploy.NodeCount()
	w.nodes = make([]network.Node, count)
	w.members = make([][]int, cfg.Hotspots)
	for i := range w.nodes {
		var pos geom.Point
		var rank int
		if i == 0 && cfg.Deploy.SourceAtCenter {
			// The pinned source joins the hottest cluster's mover pool so
			// every node stays eligible to move.
			pos = geom.Pt(side/2, side/2)
		} else {
			rank = z.Rank(rng)
			c := centers[rank]
			pos = geom.Pt(
				clampTo(c.X+rng.NormFloat64()*cfg.Spread, 0, side),
				clampTo(c.Y+rng.NormFloat64()*cfg.Spread, 0, side),
			)
		}
		w.members[rank] = append(w.members[rank], i)
		w.nodes[i] = network.Node{ID: i, Pos: pos, Radius: drawRadius(cfg.Deploy, rng)}
	}
	return w, nil
}

// drawRadius mirrors deploy's radius draw (one Float64 for heterogeneous,
// none for homogeneous) so hotspot and uniform deployments consume the rng
// the same way per node.
func drawRadius(c deploy.Config, rng *rand.Rand) float64 {
	if c.Radius == deploy.Homogeneous {
		return c.RadiusMin
	}
	return c.RadiusMin + rng.Float64()*(c.RadiusMax-c.RadiusMin)
}

// Nodes returns the workload's current node states. The slice is live —
// Step mutates it in place — so callers that need a stable snapshot must
// copy it. engine.Update copies what it needs and is safe to feed directly.
func (w *HotspotWorkload) Nodes() []network.Node { return w.nodes }

// PickMover draws the next node to move. At contention 0 this is one
// rng.Intn(n) — exactly the uniform workload's draw. Otherwise a hotspot
// rank is drawn from the zipf (one Float64) and a uniform member of that
// cluster moves, so hot clusters churn proportionally to their mass.
func (w *HotspotWorkload) PickMover(rng *rand.Rand) int {
	if w.zipf == nil {
		return rng.Intn(len(w.nodes))
	}
	for {
		m := w.members[w.zipf.Rank(rng)]
		if len(m) > 0 {
			return m[rng.Intn(len(m))]
		}
	}
}

// Step moves `movers` nodes in place: each move is one PickMover draw
// followed by one SmallMoveStep. At contention 0 the whole tick consumes
// the rng exactly like the uniform small-move workload.
func (w *HotspotWorkload) Step(movers int, rng *rand.Rand) {
	for i := 0; i < movers; i++ {
		SmallMoveStep(w.nodes, w.PickMover(rng), w.cfg.MoveFrac, rng)
	}
}

// SmallMoveStep perturbs node u in place by a drift uniform in
// [-frac·R_u, +frac·R_u] per axis — the canonical small-move used by the
// kinetic benchmarks (two Float64 draws, X then Y).
func SmallMoveStep(nodes []network.Node, u int, frac float64, rng *rand.Rand) {
	step := frac * nodes[u].Radius
	nodes[u].Pos.X += (rng.Float64()*2 - 1) * step
	nodes[u].Pos.Y += (rng.Float64()*2 - 1) * step
}

// clampTo clamps x into [lo, hi].
func clampTo(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
