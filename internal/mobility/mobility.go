// Package mobility adds node movement to the network model. The paper
// motivates 1-hop-information algorithms by maintenance cost under
// mobility (§5.1.1): "if nodes have mobility, more efforts are needed to
// maintain 2-hop information". This package makes that claim measurable:
// it implements the random-waypoint model, tracks how neighborhoods churn
// as nodes move, and accounts the HELLO traffic needed to keep 1-hop
// versus 2-hop tables fresh.
package mobility

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/network"
)

// WaypointConfig parameterizes the random-waypoint model.
type WaypointConfig struct {
	Side     float64 // side of the square region nodes roam in
	SpeedMin float64 // minimum speed (distance units per time unit)
	SpeedMax float64 // maximum speed
	PauseMax float64 // maximum pause time at each waypoint
}

// Validate checks the configuration.
func (c WaypointConfig) Validate() error {
	if !(c.Side > 0) {
		return fmt.Errorf("mobility: side %g must be positive", c.Side)
	}
	if !(c.SpeedMin > 0) || c.SpeedMax < c.SpeedMin {
		return fmt.Errorf("mobility: speed range [%g, %g] invalid", c.SpeedMin, c.SpeedMax)
	}
	if c.PauseMax < 0 {
		return fmt.Errorf("mobility: pause %g must be non-negative", c.PauseMax)
	}
	return nil
}

// Model is a random-waypoint mobility state over a node population.
type Model struct {
	cfg   WaypointConfig
	rng   *rand.Rand
	nodes []network.Node
	dest  []geom.Point
	speed []float64
	pause []float64
}

// NewModel starts a random-waypoint process over the given nodes (their
// initial positions are kept). The nodes slice is copied.
func NewModel(cfg WaypointConfig, nodes []network.Node, rng *rand.Rand) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cfg:   cfg,
		rng:   rng,
		nodes: append([]network.Node(nil), nodes...),
		dest:  make([]geom.Point, len(nodes)),
		speed: make([]float64, len(nodes)),
		pause: make([]float64, len(nodes)),
	}
	for i := range m.nodes {
		m.pickWaypoint(i)
	}
	return m, nil
}

func (m *Model) pickWaypoint(i int) {
	m.dest[i] = geom.Pt(m.rng.Float64()*m.cfg.Side, m.rng.Float64()*m.cfg.Side)
	m.speed[i] = m.cfg.SpeedMin + m.rng.Float64()*(m.cfg.SpeedMax-m.cfg.SpeedMin)
	m.pause[i] = m.rng.Float64() * m.cfg.PauseMax
}

// Nodes returns a snapshot of the current node states. The caller owns the
// returned slice.
func (m *Model) Nodes() []network.Node {
	return append([]network.Node(nil), m.nodes...)
}

// Step advances every node by dt time units: a paused node consumes its
// pause first; a moving node heads toward its waypoint at its speed and
// picks a new waypoint (plus pause) on arrival.
func (m *Model) Step(dt float64) {
	for i := range m.nodes {
		remaining := dt
		for remaining > 0 {
			if m.pause[i] > 0 {
				if m.pause[i] >= remaining {
					m.pause[i] -= remaining
					remaining = 0
					break
				}
				remaining -= m.pause[i]
				m.pause[i] = 0
			}
			pos := m.nodes[i].Pos
			toGo := m.dest[i].Sub(pos)
			dist := toGo.Norm()
			stride := m.speed[i] * remaining
			if stride < dist {
				m.nodes[i].Pos = pos.Add(toGo.Scale(stride / dist))
				remaining = 0
				break
			}
			// Arrive, then re-plan.
			m.nodes[i].Pos = m.dest[i]
			if m.speed[i] > 0 {
				remaining -= dist / m.speed[i]
			} else {
				remaining = 0
			}
			m.pickWaypoint(i)
		}
	}
}

// Graph builds the disk graph of the current positions.
func (m *Model) Graph(model network.LinkModel) (*network.Graph, error) {
	return network.Build(m.Nodes(), model)
}

// ChurnReport quantifies neighborhood maintenance between two topology
// snapshots: how many nodes saw their 1-hop set change, how many saw
// their 2-hop set change, and the total entry-level differences. A 2-hop
// table is stale whenever either the node's own neighborhood or any
// neighbor's neighborhood changed, which is why 2-hop maintenance is more
// expensive under mobility.
type ChurnReport struct {
	Nodes           int
	OneHopChanged   int // nodes whose 1-hop set changed
	TwoHopChanged   int // nodes whose 2-hop set changed
	OneHopEntryDiff int // total symmetric-difference size over 1-hop sets
	TwoHopEntryDiff int // total symmetric-difference size over 2-hop sets
}

// Churn compares neighborhoods between two graphs over the same node IDs.
func Churn(before, after *network.Graph) (ChurnReport, error) {
	if before.Len() != after.Len() {
		return ChurnReport{}, fmt.Errorf("mobility: graphs have %d vs %d nodes",
			before.Len(), after.Len())
	}
	r := ChurnReport{Nodes: before.Len()}
	for u := 0; u < before.Len(); u++ {
		d1 := symmetricDiff(before.Neighbors(u), after.Neighbors(u))
		if d1 > 0 {
			r.OneHopChanged++
			r.OneHopEntryDiff += d1
		}
		d2 := symmetricDiff(before.TwoHop(u), after.TwoHop(u))
		if d2 > 0 {
			r.TwoHopChanged++
			r.TwoHopEntryDiff += d2
		}
	}
	return r, nil
}

// symmetricDiff counts elements in exactly one of two sorted slices.
func symmetricDiff(a, b []int) int {
	i, j, d := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			i++
			d++
		default:
			j++
			d++
		}
	}
	return d + (len(a) - i) + (len(b) - j)
}

// MaintenanceCost models the HELLO traffic each table type needs after a
// movement step, in "neighbor entries transmitted": a 1-hop table refresh
// costs each node one beacon (counted as 1 entry, its own identity), while
// a 2-hop table refresh requires each node whose 1-hop set changed to
// re-announce that whole set to its neighbors (|set| entries per
// neighbor). This is the accounting behind the paper's remark that 2-hop
// maintenance "cost[s] a lot of space and time in collecting two-hop
// information".
func MaintenanceCost(before, after *network.Graph) (oneHopEntries, twoHopEntries int, err error) {
	if before.Len() != after.Len() {
		return 0, 0, fmt.Errorf("mobility: graphs have %d vs %d nodes", before.Len(), after.Len())
	}
	for u := 0; u < before.Len(); u++ {
		oneHopEntries++ // periodic beacon regardless of movement
		if symmetricDiff(before.Neighbors(u), after.Neighbors(u)) > 0 {
			// The updated neighbor list is piggybacked to every current
			// neighbor.
			twoHopEntries += len(after.Neighbors(u)) * (1 + len(after.Neighbors(u)))
		}
	}
	twoHopEntries += oneHopEntries // 2-hop maintenance includes the beacons
	return oneHopEntries, twoHopEntries, nil
}
