package mobility

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/deploy"
)

func hotspotConfig(contention float64) HotspotConfig {
	return HotspotConfig{
		Deploy:     deploy.PaperConfig(deploy.Heterogeneous, 8),
		Hotspots:   8,
		Contention: contention,
		Spread:     0.6,
		MoveFrac:   0.02,
	}
}

func TestHotspotConfigValidate(t *testing.T) {
	if err := hotspotConfig(1.2).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := hotspotConfig(0).Validate(); err != nil {
		t.Fatalf("contention-zero config rejected: %v", err)
	}
	bad := []HotspotConfig{
		{Deploy: deploy.PaperConfig(deploy.Homogeneous, 8), Contention: -1, MoveFrac: 0.02},
		{Deploy: deploy.PaperConfig(deploy.Homogeneous, 8), Contention: 1, Hotspots: 0, Spread: 1, MoveFrac: 0.02},
		{Deploy: deploy.PaperConfig(deploy.Homogeneous, 8), Contention: 1, Hotspots: 4, Spread: 0, MoveFrac: 0.02},
		{Deploy: deploy.PaperConfig(deploy.Homogeneous, 8), Contention: 1, Hotspots: 4, Spread: 1, MoveFrac: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewZipf(4, -0.5); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := NewZipf(4, math.NaN()); err == nil {
		t.Error("NaN exponent accepted")
	}
}

// TestZipfTailMass draws a large sample and compares the empirical CDF
// against the analytic zipf CDF at every rank: the skew must be real (rank
// 0 carries the most mass) and match theory within Monte-Carlo noise.
func TestZipfTailMass(t *testing.T) {
	const n, s, draws = 16, 1.2, 200000
	z, err := NewZipf(n, s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	cum := 0
	for k := 0; k < n; k++ {
		cum += counts[k]
		got := float64(cum) / draws
		want := z.CDF(k)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical CDF %.4f, analytic %.4f", k, got, want)
		}
	}
	// Sanity on the analytic side: with s=1.2 over 16 ranks the top rank
	// holds well over the uniform share and the masses decrease.
	if z.CDF(0) < 2.0/n {
		t.Errorf("rank 0 mass %.4f not skewed above uniform %.4f", z.CDF(0), 1.0/n)
	}
	for k := 1; k < n; k++ {
		if z.CDF(k)-z.CDF(k-1) > z.CDF(k-1)-z.CDF(k-2)+1e-15 && k >= 2 {
			t.Errorf("mass not non-increasing at rank %d", k)
		}
	}
}

// TestZipfUniformAtZero pins that exponent 0 is the uniform distribution.
func TestZipfUniformAtZero(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if want := float64(k+1) / 10; math.Abs(z.CDF(k)-want) > 1e-12 {
			t.Errorf("CDF(%d) = %.6f, want %.6f", k, z.CDF(k), want)
		}
	}
}

// TestHotspotDeterminism: a fixed seed reproduces the deployment and the
// whole mover trajectory exactly.
func TestHotspotDeterminism(t *testing.T) {
	for _, contention := range []float64{0, 0.8, 1.5} {
		run := func(seed int64) []float64 {
			w, err := NewHotspotWorkload(hotspotConfig(contention), rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + 1))
			var trace []float64
			for tick := 0; tick < 5; tick++ {
				w.Step(20, rng)
				for _, n := range w.Nodes() {
					trace = append(trace, n.Pos.X, n.Pos.Y, n.Radius)
				}
			}
			return trace
		}
		a, b := run(42), run(42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("contention %g: trajectories diverge at element %d", contention, i)
			}
		}
	}
}

// TestHotspotContentionZeroIsUniform pins the contract the sweep driver
// relies on: contention 0 is the existing uniform workload byte-for-byte —
// identical deployment draws and identical mover draws.
func TestHotspotContentionZeroIsUniform(t *testing.T) {
	const seed = 11
	cfg := hotspotConfig(0)
	w, err := NewHotspotWorkload(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := deploy.Generate(cfg.Deploy, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	got := w.Nodes()
	if len(got) != len(want) {
		t.Fatalf("node count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Mover process: one Intn draw plus one SmallMoveStep per move.
	wr := rand.New(rand.NewSource(seed + 1))
	mr := rand.New(rand.NewSource(seed + 1))
	for tick := 0; tick < 10; tick++ {
		w.Step(15, wr)
		for i := 0; i < 15; i++ {
			SmallMoveStep(want, mr.Intn(len(want)), cfg.MoveFrac, mr)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tick %d: node %d diverged: %+v vs %+v", tick, i, got[i], want[i])
			}
		}
	}
}

// TestHotspotSkewConcentrates checks the placement skew does what the
// sweep needs: with high contention, the hottest cluster holds far more
// than the uniform share of the nodes.
func TestHotspotSkewConcentrates(t *testing.T) {
	cfg := hotspotConfig(1.5)
	w, err := NewHotspotWorkload(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	n := len(w.Nodes())
	top := len(w.members[0])
	if uniform := n / cfg.Hotspots; top < 2*uniform {
		t.Errorf("hottest cluster has %d of %d nodes; want ≥ 2× the uniform share %d", top, n, uniform)
	}
	total := 0
	for _, m := range w.members {
		total += len(m)
	}
	if total != n {
		t.Errorf("cluster membership covers %d of %d nodes", total, n)
	}
}

// TestHotspotMoverSkew checks mover selection concentrates on the hot
// clusters: over many ticks, rank-0 members move far more often than a
// uniform pick would make them.
func TestHotspotMoverSkew(t *testing.T) {
	cfg := hotspotConfig(1.5)
	w, err := NewHotspotWorkload(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	inTop := make([]bool, len(w.Nodes()))
	for _, u := range w.members[0] {
		inTop[u] = true
	}
	rng := rand.New(rand.NewSource(6))
	const draws = 20000
	hits := 0
	for i := 0; i < draws; i++ {
		if inTop[w.PickMover(rng)] {
			hits++
		}
	}
	z, err := NewZipf(cfg.Hotspots, cfg.Contention)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(hits) / draws
	if want := z.CDF(0); math.Abs(got-want) > 0.02 {
		t.Errorf("top-cluster mover share %.4f, want ≈ %.4f", got, want)
	}
}
