package mobility

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/network"
)

func testConfig() WaypointConfig {
	return WaypointConfig{Side: 12.5, SpeedMin: 0.5, SpeedMax: 1.5, PauseMax: 1}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []WaypointConfig{
		{Side: 0, SpeedMin: 1, SpeedMax: 2},
		{Side: 10, SpeedMin: 0, SpeedMax: 2},
		{Side: 10, SpeedMin: 2, SpeedMax: 1},
		{Side: 10, SpeedMin: 1, SpeedMax: 2, PauseMax: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func deployNodes(t *testing.T, seed int64) []network.Node {
	t.Helper()
	nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Heterogeneous, 8),
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestStepKeepsNodesInRegion(t *testing.T) {
	nodes := deployNodes(t, 1)
	m, err := NewModel(testConfig(), nodes, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 50; step++ {
		m.Step(0.7)
		for _, n := range m.Nodes() {
			if n.Pos.X < -geom.Eps || n.Pos.X > 12.5+geom.Eps ||
				n.Pos.Y < -geom.Eps || n.Pos.Y > 12.5+geom.Eps {
				t.Fatalf("step %d: node %d escaped to %v", step, n.ID, n.Pos)
			}
		}
	}
}

func TestStepRespectsSpeedLimit(t *testing.T) {
	nodes := deployNodes(t, 3)
	cfg := testConfig()
	cfg.PauseMax = 0
	m, err := NewModel(cfg, nodes, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.5
	for step := 0; step < 30; step++ {
		before := m.Nodes()
		m.Step(dt)
		after := m.Nodes()
		for i := range before {
			moved := before[i].Pos.Dist(after[i].Pos)
			// A node may turn at a waypoint mid-step; the travelled path is
			// still bounded by SpeedMax·dt, and displacement by the path.
			if moved > cfg.SpeedMax*dt+geom.Eps {
				t.Fatalf("node %d moved %g > max %g", i, moved, cfg.SpeedMax*dt)
			}
		}
	}
}

func TestStepPreservesIdentityAndRadius(t *testing.T) {
	nodes := deployNodes(t, 5)
	m, err := NewModel(testConfig(), nodes, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(3)
	after := m.Nodes()
	for i := range nodes {
		if after[i].ID != nodes[i].ID || after[i].Radius != nodes[i].Radius {
			t.Fatalf("node %d identity or radius changed", i)
		}
	}
}

func TestPausedNodesEventuallyMove(t *testing.T) {
	nodes := deployNodes(t, 7)
	m, err := NewModel(testConfig(), nodes, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	start := m.Nodes()
	total := 0.0
	for total < 20 { // far beyond PauseMax
		m.Step(1)
		total++
	}
	moved := 0
	for i, n := range m.Nodes() {
		if n.Pos.Dist(start[i].Pos) > 0.1 {
			moved++
		}
	}
	if moved < len(nodes)/2 {
		t.Errorf("only %d of %d nodes moved after 20 time units", moved, len(nodes))
	}
}

func TestChurnIdenticalGraphs(t *testing.T) {
	nodes := deployNodes(t, 9)
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Churn(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.OneHopChanged != 0 || r.TwoHopChanged != 0 ||
		r.OneHopEntryDiff != 0 || r.TwoHopEntryDiff != 0 {
		t.Errorf("identical graphs report churn: %+v", r)
	}
}

func TestChurnDetectsChange(t *testing.T) {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1.2},
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 1.2},
		{ID: 2, Pos: geom.Pt(2, 0), Radius: 1.2},
	}
	before, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	moved := append([]network.Node(nil), nodes...)
	moved[2].Pos = geom.Pt(1.0, 0.5) // 2 comes into range of 0 (dist ≈ 1.118 ≤ 1.2)
	after, err := network.Build(moved, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Churn(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if r.OneHopChanged == 0 || r.OneHopEntryDiff == 0 {
		t.Errorf("expected 1-hop churn: %+v", r)
	}
	// Node 1's 1-hop set is unchanged only if 0 and 2 were already its
	// neighbors — they were; but its 2-hop set shrinks (2 was 2-hop of 0).
	if r.TwoHopChanged == 0 {
		t.Errorf("expected 2-hop churn: %+v", r)
	}
	if _, err := Churn(before, mustBuild(t, nodes[:2])); err == nil {
		t.Error("size mismatch must fail")
	}
}

func mustBuild(t *testing.T, nodes []network.Node) *network.Graph {
	t.Helper()
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The central claim (§5.1.1): under movement, keeping 2-hop tables fresh
// costs strictly more HELLO traffic than keeping 1-hop tables fresh.
func TestMaintenanceCostOrdering(t *testing.T) {
	nodes := deployNodes(t, 10)
	m, err := NewModel(testConfig(), nodes, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.Graph(network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	m.Step(2)
	after, err := m.Graph(network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	one, two, err := MaintenanceCost(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if one <= 0 {
		t.Error("1-hop maintenance must cost beacons")
	}
	if two <= one {
		t.Errorf("2-hop maintenance (%d entries) must exceed 1-hop (%d) after movement", two, one)
	}
	if _, _, err := MaintenanceCost(before, mustBuild(t, nodes[:2])); err == nil {
		t.Error("size mismatch must fail")
	}
}

func TestSymmetricDiff(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1, 2}, nil, 2},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 2},
		{[]int{1, 2}, []int{1, 2}, 0},
		{[]int{1}, []int{2}, 2},
	}
	for _, c := range cases {
		if got := symmetricDiff(c.a, c.b); got != c.want {
			t.Errorf("symmetricDiff(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestModelDeterminism(t *testing.T) {
	nodes := deployNodes(t, 12)
	run := func() []network.Node {
		m, err := NewModel(testConfig(), nodes, rand.New(rand.NewSource(13)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			m.Step(0.9)
		}
		return m.Nodes()
	}
	a, b := run(), run()
	for i := range a {
		if math.Abs(a[i].Pos.X-b[i].Pos.X) > 0 || math.Abs(a[i].Pos.Y-b[i].Pos.Y) > 0 {
			t.Fatalf("node %d position differs between identical runs", i)
		}
	}
}
