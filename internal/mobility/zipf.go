package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf is a seeded inverse-CDF sampler over ranks 0..n-1 with weights
// proportional to 1/(k+1)^s. Rank 0 is the heaviest; s = 0 degenerates to
// the uniform distribution. Unlike math/rand's rand.Zipf it exposes the
// analytic CDF (the tests compare tail mass against it) and draws exactly
// one rng.Float64 per sample, which keeps workload generation reproducible
// draw-for-draw across refactors.
type Zipf struct {
	cum []float64 // cum[k] = P(rank ≤ k); cum[n-1] == 1
}

// NewZipf builds the sampler for n ranks with exponent s ≥ 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("mobility: zipf needs ≥ 1 rank, got %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("mobility: zipf exponent %g must be finite and ≥ 0", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	cum[n-1] = 1 // exact upper bound regardless of rounding
	return &Zipf{cum: cum}, nil
}

// Len returns the number of ranks.
func (z *Zipf) Len() int { return len(z.cum) }

// CDF returns P(rank ≤ k), the analytic cumulative mass.
func (z *Zipf) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= len(z.cum) {
		return 1
	}
	return z.cum[k]
}

// Rank draws one rank, consuming exactly one rng.Float64.
func (z *Zipf) Rank(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}
