package geom

import (
	"fmt"
	"math"
)

// Disk is a closed disk B(C, R) = { x : ‖x − C‖ ≤ R }.
type Disk struct {
	C Point   // center
	R float64 // radius, must be > 0 for a valid disk
}

// NewDisk returns the disk with center (x, y) and radius r.
func NewDisk(x, y, r float64) Disk { return Disk{Point{x, y}, r} }

// Contains reports whether point p lies in the closed disk, within Eps.
func (d Disk) Contains(p Point) bool {
	return d.C.Dist(p) <= d.R+Eps
}

// ContainsStrict reports whether p lies in the open disk by more than Eps.
func (d Disk) ContainsStrict(p Point) bool {
	return d.C.Dist(p) < d.R-Eps
}

// OnBoundary reports whether p lies on the circle ∂B(C, R) within Eps.
func (d Disk) OnBoundary(p Point) bool {
	return math.Abs(d.C.Dist(p)-d.R) <= Eps
}

// ContainsOrigin reports whether the disk contains the origin. Every disk
// of a local disk set must contain the hub, which callers translate to the
// origin before invoking the skyline machinery.
func (d Disk) ContainsOrigin() bool { return d.C.Norm() <= d.R+Eps }

// ContainsDisk reports whether d fully contains e (within Eps):
// ‖C_d − C_e‖ + R_e ≤ R_d.
func (d Disk) ContainsDisk(e Disk) bool {
	return d.C.Dist(e.C)+e.R <= d.R+Eps
}

// Eq reports whether two disks coincide within Eps.
func (d Disk) Eq(e Disk) bool {
	return d.C.Eq(e.C) && math.Abs(d.R-e.R) <= Eps
}

// Area returns the disk area πR².
func (d Disk) Area() float64 { return math.Pi * d.R * d.R }

// Translate returns the disk shifted by −origin, i.e. expressed in a frame
// where origin is (0, 0).
func (d Disk) Translate(origin Point) Disk {
	return Disk{d.C.Sub(origin), d.R}
}

// String implements fmt.Stringer.
func (d Disk) String() string {
	return fmt.Sprintf("B(%s, %.6g)", d.C, d.R)
}

// PointAt returns the point of ∂B(C, R) at angle theta measured at the
// disk's own center.
func (d Disk) PointAt(theta float64) Point {
	return Point{d.C.X + d.R*math.Cos(theta), d.C.Y + d.R*math.Sin(theta)}
}

// RayDist returns ρ(θ): the distance from the origin to the unique far
// intersection of the ray { t·(cos θ, sin θ) : t ≥ 0 } with the circle
// ∂B(C, R), assuming the disk contains the origin (‖C‖ ≤ R).
//
// Substituting the ray into ‖x − C‖ = R gives t² − 2t(C·e) + ‖C‖² − R² = 0,
// whose roots are (C·e) ± sqrt((C·e)² + R² − ‖C‖²). When ‖C‖ ≤ R the
// discriminant is non-negative for every θ and the product of the roots,
// ‖C‖² − R², is ≤ 0, so exactly one root is ≥ 0: the far one. This is the
// analytic form of Corollary 2 in the paper (each ray from the hub meets
// the skyline exactly once).
//
// If the disk does not contain the origin, RayDist returns the far root
// when the ray hits the circle and NaN otherwise; the skyline code never
// relies on that case, but the geometry tests exercise it.
func (d Disk) RayDist(theta float64) float64 {
	return d.RayDistDir(Unit(theta))
}

// RayDistDir is RayDist along a caller-supplied unit direction
// e = (cos θ, sin θ). Hot loops that evaluate several disks at the same
// angle (the skyline's winner and envelope scans) compute the direction
// once and share it; RayDistDir(Unit(theta)) is bit-identical to
// RayDist(theta).
func (d Disk) RayDistDir(e Point) float64 {
	b := d.C.Dot(e)
	disc := b*b + d.R*d.R - d.C.Norm2()
	if disc < 0 {
		if disc >= -Eps && b >= 0 { // grazing contact, flushed to tangency
			return b
		}
		return math.NaN()
	}
	t := b + math.Sqrt(disc)
	if t < -Eps {
		// Both intersection parameters are negative: the circle lies
		// entirely behind the ray's origin (possible only when the disk
		// does not contain the origin).
		return math.NaN()
	}
	return t
}

// RayDistFrom is RayDist measured from an arbitrary origin o instead of
// (0, 0).
func (d Disk) RayDistFrom(o Point, theta float64) float64 {
	return d.Translate(o).RayDist(theta)
}
