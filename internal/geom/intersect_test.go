package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestCircleIntersectionsTwoPoints(t *testing.T) {
	// Unit circles at (0,0) and (1,0): intersections at (1/2, ±√3/2).
	pts, ok := CircleIntersections(NewDisk(0, 0, 1), NewDisk(1, 0, 1))
	if !ok || len(pts) != 2 {
		t.Fatalf("got %d points, ok=%v; want 2 points", len(pts), ok)
	}
	want := math.Sqrt(3) / 2
	for _, p := range pts {
		if !almostEq(p.X, 0.5, 1e-9) || !almostEq(math.Abs(p.Y), want, 1e-9) {
			t.Errorf("unexpected intersection %v", p)
		}
	}
	if pts[0].Eq(pts[1]) {
		t.Error("the two intersection points must differ")
	}
}

func TestCircleIntersectionsTangent(t *testing.T) {
	// Externally tangent at (1, 0).
	pts, ok := CircleIntersections(NewDisk(0, 0, 1), NewDisk(2, 0, 1))
	if !ok || len(pts) != 1 {
		t.Fatalf("external tangency: got %d points, ok=%v", len(pts), ok)
	}
	if !pts[0].Eq(Pt(1, 0)) {
		t.Errorf("tangent point = %v, want (1, 0)", pts[0])
	}
	// Internally tangent at (2, 0).
	pts, ok = CircleIntersections(NewDisk(0, 0, 2), NewDisk(1, 0, 1))
	if !ok || len(pts) != 1 {
		t.Fatalf("internal tangency: got %d points, ok=%v", len(pts), ok)
	}
	if !pts[0].Eq(Pt(2, 0)) {
		t.Errorf("tangent point = %v, want (2, 0)", pts[0])
	}
}

func TestCircleIntersectionsDisjoint(t *testing.T) {
	pts, ok := CircleIntersections(NewDisk(0, 0, 1), NewDisk(5, 0, 1))
	if !ok || pts != nil {
		t.Errorf("disjoint circles: got %v, ok=%v", pts, ok)
	}
	// One strictly inside the other.
	pts, ok = CircleIntersections(NewDisk(0, 0, 5), NewDisk(1, 0, 1))
	if !ok || pts != nil {
		t.Errorf("nested circles: got %v, ok=%v", pts, ok)
	}
}

func TestCircleIntersectionsCoincident(t *testing.T) {
	d := NewDisk(1, 2, 3)
	if _, ok := CircleIntersections(d, d); ok {
		t.Error("coincident circles must report ok=false")
	}
}

// Property: every returned intersection point lies on both circles, and the
// result is symmetric in its arguments.
func TestCircleIntersectionsOnBothCircles(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 1000; i++ {
		d := Disk{Pt(rng.Float64()*4-2, rng.Float64()*4-2), 0.5 + rng.Float64()*2}
		e := Disk{Pt(rng.Float64()*4-2, rng.Float64()*4-2), 0.5 + rng.Float64()*2}
		pts, ok := CircleIntersections(d, e)
		if !ok {
			continue
		}
		for _, p := range pts {
			if !d.OnBoundary(p) || !e.OnBoundary(p) {
				t.Fatalf("intersection %v not on both circles %v, %v (dists %g, %g)",
					p, d, e, d.C.Dist(p)-d.R, e.C.Dist(p)-e.R)
			}
		}
		rev, _ := CircleIntersections(e, d)
		if len(rev) != len(pts) {
			t.Fatalf("asymmetric intersection count: %d vs %d", len(pts), len(rev))
		}
	}
}

func TestDisksIntersect(t *testing.T) {
	if !DisksIntersect(NewDisk(0, 0, 1), NewDisk(1.5, 0, 1)) {
		t.Error("overlapping disks intersect")
	}
	if !DisksIntersect(NewDisk(0, 0, 1), NewDisk(2, 0, 1)) {
		t.Error("tangent disks intersect (closed disks)")
	}
	if DisksIntersect(NewDisk(0, 0, 1), NewDisk(3, 0, 1)) {
		t.Error("separated disks do not intersect")
	}
}

func TestDistPointSegment(t *testing.T) {
	p, q := Pt(0, 0), Pt(2, 0)
	if got := DistPointSegment(Pt(1, 1), p, q); !almostEq(got, 1, 1e-12) {
		t.Errorf("perpendicular distance = %v, want 1", got)
	}
	if got := DistPointSegment(Pt(-1, 0), p, q); !almostEq(got, 1, 1e-12) {
		t.Errorf("distance to endpoint = %v, want 1", got)
	}
	if got := DistPointSegment(Pt(3, 0), p, q); !almostEq(got, 1, 1e-12) {
		t.Errorf("distance past far endpoint = %v, want 1", got)
	}
	// Degenerate segment.
	if got := DistPointSegment(Pt(1, 0), p, p); !almostEq(got, 1, 1e-12) {
		t.Errorf("degenerate segment distance = %v, want 1", got)
	}
}

func TestSegmentIntersectsDisk(t *testing.T) {
	d := NewDisk(0, 0, 1)
	if !SegmentIntersectsDisk(Pt(-2, 0), Pt(2, 0), d) {
		t.Error("segment through the disk intersects")
	}
	if !SegmentIntersectsDisk(Pt(-2, 1), Pt(2, 1), d) {
		t.Error("tangent segment intersects (closed sets)")
	}
	if SegmentIntersectsDisk(Pt(-2, 2), Pt(2, 2), d) {
		t.Error("distant segment does not intersect")
	}
}
