package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestDiskContains(t *testing.T) {
	d := NewDisk(1, 1, 2)
	if !d.Contains(Pt(1, 1)) {
		t.Error("center must be contained")
	}
	if !d.Contains(Pt(3, 1)) {
		t.Error("boundary point must be contained (closed disk)")
	}
	if d.Contains(Pt(3.1, 1)) {
		t.Error("(3.1, 1) is outside")
	}
	if d.ContainsStrict(Pt(3, 1)) {
		t.Error("boundary point is not strictly inside")
	}
	if !d.OnBoundary(Pt(3, 1)) {
		t.Error("(3, 1) is on the boundary")
	}
}

func TestContainsDisk(t *testing.T) {
	big := NewDisk(0, 0, 5)
	small := NewDisk(1, 0, 2)
	if !big.ContainsDisk(small) {
		t.Error("B((0,0),5) contains B((1,0),2)")
	}
	if small.ContainsDisk(big) {
		t.Error("small disk cannot contain big disk")
	}
	touching := NewDisk(3, 0, 2) // internally tangent to big
	if !big.ContainsDisk(touching) {
		t.Error("internally tangent disk is contained (closed disks)")
	}
	if !big.ContainsDisk(big) {
		t.Error("a disk contains itself")
	}
}

func TestTranslate(t *testing.T) {
	d := NewDisk(3, 4, 2)
	got := d.Translate(Pt(1, 1))
	if got.C != Pt(2, 3) || got.R != 2 {
		t.Errorf("Translate = %v", got)
	}
}

func TestPointAt(t *testing.T) {
	d := NewDisk(1, 2, 3)
	p := d.PointAt(math.Pi / 2)
	if !p.Eq(Pt(1, 5)) {
		t.Errorf("PointAt(π/2) = %v, want (1, 5)", p)
	}
}

// RayDist at angle θ must land exactly on the circle and be the larger of
// the two ray–circle intersection parameters.
func TestRayDistOnBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		d := randomLocalDisk(rng)
		theta := rng.Float64() * TwoPi
		rho := d.RayDist(theta)
		if rho < -Eps {
			t.Fatalf("RayDist negative: %v at θ=%v for %v", rho, theta, d)
		}
		p := Unit(theta).Scale(rho)
		if !d.OnBoundary(p) {
			t.Fatalf("RayDist point %v not on boundary of %v (dist-to-center %v)",
				p, d, d.C.Dist(p))
		}
	}
}

// For a disk containing the origin, any point of the ray beyond RayDist is
// outside the disk and any point before it is inside.
func TestRayDistSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		d := randomLocalDisk(rng)
		theta := rng.Float64() * TwoPi
		rho := d.RayDist(theta)
		inside := Unit(theta).Scale(rho * 0.99)
		outside := Unit(theta).Scale(rho*1.01 + 1e-6)
		if !d.Contains(inside) {
			t.Fatalf("point before RayDist should be inside: %v, %v", d, theta)
		}
		if d.ContainsStrict(outside) {
			t.Fatalf("point after RayDist should be outside: %v, %v", d, theta)
		}
	}
}

// A disk centered at the origin has RayDist == R in every direction.
func TestRayDistCentered(t *testing.T) {
	d := NewDisk(0, 0, 2.5)
	for _, theta := range []float64{0, 1, 2, 3, 4, 5, 6} {
		if got := d.RayDist(theta); !almostEq(got, 2.5, 1e-12) {
			t.Errorf("RayDist(%v) = %v, want 2.5", theta, got)
		}
	}
}

// A disk not containing the origin: rays pointing away miss it (NaN).
func TestRayDistMiss(t *testing.T) {
	d := NewDisk(5, 0, 1)
	if got := d.RayDist(math.Pi); !math.IsNaN(got) {
		t.Errorf("ray pointing away should miss: got %v", got)
	}
	if got := d.RayDist(0); !almostEq(got, 6, 1e-9) {
		t.Errorf("ray toward the disk returns far root: got %v, want 6", got)
	}
}

func TestRayDistFrom(t *testing.T) {
	d := NewDisk(3, 3, 2)
	// From the disk's own center, every direction has distance R.
	if got := d.RayDistFrom(Pt(3, 3), 1.234); !almostEq(got, 2, 1e-12) {
		t.Errorf("RayDistFrom(center) = %v, want 2", got)
	}
}

func TestContainsOrigin(t *testing.T) {
	if !NewDisk(1, 0, 1).ContainsOrigin() {
		t.Error("B((1,0),1) touches the origin (closed disk)")
	}
	if NewDisk(1, 0, 0.5).ContainsOrigin() {
		t.Error("B((1,0),0.5) does not contain the origin")
	}
}

func TestDiskEqAndString(t *testing.T) {
	d := NewDisk(1, 2, 3)
	if !d.Eq(NewDisk(1+Eps/2, 2, 3-Eps/2)) {
		t.Error("Eq must tolerate sub-Eps differences")
	}
	if d.Eq(NewDisk(1.1, 2, 3)) || d.Eq(NewDisk(1, 2, 3.1)) {
		t.Error("Eq must reject real differences")
	}
	if s := d.String(); s == "" || s[0] != 'B' {
		t.Errorf("String = %q", s)
	}
	if s := Pt(1, 2).String(); s != "(1, 2)" {
		t.Errorf("Point.String = %q", s)
	}
}

func TestAngleLess(t *testing.T) {
	if !AngleLess(1, 2) {
		t.Error("1 < 2")
	}
	if AngleLess(2, 1) || AngleLess(1, 1) || AngleLess(1, 1+AngleEps/2) {
		t.Error("AngleLess must be strict beyond tolerance")
	}
}

func TestDiskArea(t *testing.T) {
	if got := NewDisk(0, 0, 2).Area(); !almostEq(got, 4*math.Pi, 1e-12) {
		t.Errorf("Area = %v, want 4π", got)
	}
}

// randomLocalDisk returns a disk that contains the origin, with radius in
// [1, 2], mimicking the paper's heterogeneous radii.
func randomLocalDisk(rng *rand.Rand) Disk {
	r := 1 + rng.Float64()
	dist := rng.Float64() * r * 0.999
	theta := rng.Float64() * TwoPi
	return Disk{Unit(theta).Scale(dist), r}
}
