package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoundingBox(t *testing.T) {
	disks := []Disk{NewDisk(0, 0, 1), NewDisk(3, 1, 2)}
	minX, minY, maxX, maxY, ok := BoundingBox(disks)
	if !ok {
		t.Fatal("bounding box of non-empty set must exist")
	}
	if minX != -1 || minY != -1 || maxX != 5 || maxY != 3 {
		t.Errorf("bbox = (%v,%v)-(%v,%v)", minX, minY, maxX, maxY)
	}
	if _, _, _, _, ok := BoundingBox(nil); ok {
		t.Error("empty set has no bounding box")
	}
}

func TestUnionContains(t *testing.T) {
	disks := []Disk{NewDisk(0, 0, 1), NewDisk(3, 0, 1)}
	if !UnionContains(disks, Pt(0.5, 0)) || !UnionContains(disks, Pt(3, 0.5)) {
		t.Error("points inside either disk are in the union")
	}
	if UnionContains(disks, Pt(1.5, 0.8)) {
		t.Error("(1.5, 0.8) is in neither disk")
	}
}

func TestUnionAreaMCSingleDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	got := UnionAreaMC([]Disk{NewDisk(0, 0, 2)}, 200000, rng)
	want := 4 * math.Pi
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("MC area = %v, want ≈ %v", got, want)
	}
}

func TestUnionAreaMCDisjointDisks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	disks := []Disk{NewDisk(0, 0, 1), NewDisk(10, 0, 1)}
	got := UnionAreaMC(disks, 200000, rng)
	want := 2 * math.Pi
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("MC area = %v, want ≈ %v", got, want)
	}
}

func TestUnionAreaMCEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	if got := UnionAreaMC(nil, 100, rng); got != 0 {
		t.Errorf("empty union area = %v, want 0", got)
	}
}

func TestUnionsEqualMC(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	big := NewDisk(0, 0, 3)
	hidden := NewDisk(0.5, 0, 1) // strictly inside big
	eq, _ := UnionsEqualMC([]Disk{big, hidden}, []Disk{big}, 50000, rng)
	if !eq {
		t.Error("dropping a covered disk must not change the union")
	}
	other := NewDisk(5, 0, 1)
	eq, w := UnionsEqualMC([]Disk{big, other}, []Disk{big}, 50000, rng)
	if eq {
		t.Error("dropping an uncovered disk must change the union")
	} else if !other.Contains(w) || big.Contains(w) {
		t.Errorf("witness %v should be in the dropped disk only", w)
	}
}

func TestUnionsEqualMCEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	if eq, _ := UnionsEqualMC(nil, nil, 100, rng); !eq {
		t.Error("two empty unions are equal")
	}
}
