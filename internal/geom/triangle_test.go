package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestClassifyTriangle(t *testing.T) {
	cases := []struct {
		a, b, c Point
		want    TriangleKind
	}{
		{Pt(0, 0), Pt(1, 0), Pt(0.5, 2), AcuteTriangle},
		{Pt(0, 0), Pt(1, 0), Pt(0, 1), RightTriangle},
		{Pt(0, 0), Pt(4, 0), Pt(3.8, 0.2), ObtuseTriangle},
		{Pt(0, 0), Pt(1, 1), Pt(2, 2), DegenerateTriangle},
	}
	for _, c := range cases {
		if got := ClassifyTriangle(c.a, c.b, c.c); got != c.want {
			t.Errorf("Classify(%v, %v, %v) = %v, want %v", c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestTriangleKindString(t *testing.T) {
	if AcuteTriangle.String() != "acute" || ObtuseTriangle.String() != "obtuse" ||
		RightTriangle.String() != "right" || DegenerateTriangle.String() != "degenerate" {
		t.Error("TriangleKind.String mismatch")
	}
}

func TestCircumcircle(t *testing.T) {
	// Right triangle: circumcenter at hypotenuse midpoint.
	c, r, ok := Circumcircle(Pt(0, 0), Pt(2, 0), Pt(0, 2))
	if !ok {
		t.Fatal("circumcircle of a right triangle must exist")
	}
	if !c.Eq(Pt(1, 1)) || !almostEq(r, math.Sqrt2, 1e-9) {
		t.Errorf("circumcircle = %v r=%v, want (1,1) r=√2", c, r)
	}
	if _, _, ok := Circumcircle(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points have no circumcircle")
	}
}

// Property: the circumcircle passes through all three vertices.
func TestCircumcircleThroughVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		a := Pt(rng.Float64()*10, rng.Float64()*10)
		b := Pt(rng.Float64()*10, rng.Float64()*10)
		c := Pt(rng.Float64()*10, rng.Float64()*10)
		center, r, ok := Circumcircle(a, b, c)
		if !ok {
			continue
		}
		for _, v := range []Point{a, b, c} {
			if !almostEq(center.Dist(v), r, 1e-6*(1+r)) {
				t.Fatalf("vertex %v at distance %v from circumcenter, want %v", v, center.Dist(v), r)
			}
		}
	}
}

// Property: the orthocenter lies on all three altitudes (each line from a
// vertex perpendicular to the opposite side).
func TestOrthocenterOnAltitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 500; i++ {
		a := Pt(rng.Float64()*10, rng.Float64()*10)
		b := Pt(rng.Float64()*10, rng.Float64()*10)
		c := Pt(rng.Float64()*10, rng.Float64()*10)
		h, ok := Orthocenter(a, b, c)
		if !ok {
			continue
		}
		// (h − a)·(b − c) == 0, and cyclic permutations.
		checks := [][3]Point{{a, b, c}, {b, c, a}, {c, a, b}}
		for _, ch := range checks {
			dot := h.Sub(ch[0]).Dot(ch[1].Sub(ch[2]))
			scale := 1 + ch[1].Sub(ch[2]).Norm()*h.Sub(ch[0]).Norm()
			if math.Abs(dot)/scale > 1e-6 {
				t.Fatalf("orthocenter %v not on altitude from %v (dot %v)", h, ch[0], dot)
			}
		}
	}
}

// Lemma 6 of the paper: for an acute triangle, the three circles drawn
// outward on its edges with the circumradius all pass through the
// orthocenter.
func TestLemma6EdgeCirclesMeetAtOrthocenter(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tested := 0
	for tested < 200 {
		a := Pt(rng.Float64()*10, rng.Float64()*10)
		b := Pt(rng.Float64()*10, rng.Float64()*10)
		c := Pt(rng.Float64()*10, rng.Float64()*10)
		if ClassifyTriangle(a, b, c) != AcuteTriangle {
			continue
		}
		tested++
		_, r, ok := Circumcircle(a, b, c)
		if !ok {
			continue
		}
		h, _ := Orthocenter(a, b, c)
		edges := [][3]Point{{a, b, c}, {b, c, a}, {c, a, b}}
		for _, e := range edges {
			circ, ok := EdgeCircleOutside(e[0], e[1], e[2], r)
			if !ok {
				t.Fatalf("edge circle with circumradius must exist (chord ≤ 2R)")
			}
			if !almostEq(circ.C.Dist(h), r, 1e-6*(1+r)) {
				t.Fatalf("edge circle %v misses orthocenter %v: dist %v, r %v",
					circ, h, circ.C.Dist(h), r)
			}
		}
	}
}

// Corollary 7 of the paper: with radii strictly larger than the
// circumradius, the three outward edge circles have no common point. We
// verify the pairwise intersections of each circle pair are never inside
// the third circle.
func TestCorollary7NoCommonIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	tested := 0
	for tested < 200 {
		a := Pt(rng.Float64()*10, rng.Float64()*10)
		b := Pt(rng.Float64()*10, rng.Float64()*10)
		c := Pt(rng.Float64()*10, rng.Float64()*10)
		kind := ClassifyTriangle(a, b, c)
		if kind != AcuteTriangle && kind != RightTriangle {
			continue
		}
		tested++
		_, r, ok := Circumcircle(a, b, c)
		if !ok {
			continue
		}
		bigR := r * (1.05 + rng.Float64())
		var circles []Disk
		for _, e := range [][3]Point{{a, b, c}, {b, c, a}, {c, a, b}} {
			circ, ok := EdgeCircleOutside(e[0], e[1], e[2], bigR)
			if !ok {
				t.Fatal("edge circle must exist for radius > circumradius")
			}
			circles = append(circles, circ)
		}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				pts, _ := CircleIntersections(circles[i], circles[j])
				k := 3 - i - j
				for _, p := range pts {
					if circles[k].ContainsStrict(p) && circles[k].C.Dist(p) < circles[k].R-1e-6 {
						t.Fatalf("triple intersection found at %v for radius %v > circumradius %v",
							p, bigR, r)
					}
				}
			}
		}
	}
}

// Lemma 5 of the paper: let circles ∂B₁, ∂B₂ intersect at a and d, let
// ac′ and ab′ be diameters of B₁ and B₂, and let c (resp. b) lie on the
// arc c′d of ∂B₁ (resp. b′d of ∂B₂) [the arcs away from the other
// circle]. If ∠cab is obtuse then ‖b − c‖ > 2·min(r₁, r₂). We verify the
// inequality on random configurations satisfying the hypotheses.
func TestLemma5ObtuseChordBound(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	checked := 0
	for checked < 300 {
		// Two intersecting circles.
		r1 := 0.5 + rng.Float64()*2
		r2 := 0.5 + rng.Float64()*2
		dist := math.Abs(r1-r2) + 0.05 + rng.Float64()*(r1+r2-math.Abs(r1-r2)-0.1)
		c1 := Pt(0, 0)
		c2 := Pt(dist, 0)
		pts, ok := CircleIntersections(Disk{c1, r1}, Disk{c2, r2})
		if !ok || len(pts) != 2 {
			continue
		}
		a, d := pts[0], pts[1]
		// Diameters from a.
		cPrime := c1.Scale(2).Sub(a) // antipode of a on ∂B₁
		bPrime := c2.Scale(2).Sub(a) // antipode of a on ∂B₂
		// Sample c on the arc of ∂B₁ from c′ to d not containing a, and b
		// on the arc of ∂B₂ from b′ to d not containing a: interpolate the
		// central angle from the antipode toward d on the side away from a.
		sampleArc := func(center Point, r float64, from, to Point) Point {
			af := from.Sub(center).Angle()
			at := to.Sub(center).Angle()
			deltaCCW := CCWDelta(af, at)
			tFrac := rng.Float64()
			var theta float64
			if deltaCCW <= math.Pi {
				theta = af + tFrac*deltaCCW
			} else {
				theta = af - tFrac*(TwoPi-deltaCCW)
			}
			return Pt(center.X+r*math.Cos(theta), center.Y+r*math.Sin(theta))
		}
		c := sampleArc(c1, r1, cPrime, d)
		b := sampleArc(c2, r2, bPrime, d)
		// Hypothesis: ∠cab strictly obtuse (with margin for robustness).
		va := c.Sub(a)
		vb := b.Sub(a)
		cosAngle := va.Dot(vb) / (va.Norm() * vb.Norm())
		if cosAngle > -0.05 {
			continue
		}
		checked++
		if got, want := b.Dist(c), 2*math.Min(r1, r2); got <= want-1e-9 {
			t.Fatalf("Lemma 5 violated: ‖b−c‖ = %v ≤ 2·min(r₁,r₂) = %v\n"+
				"r1=%v r2=%v dist=%v a=%v b=%v c=%v", got, want, r1, r2, dist, a, b, c)
		}
	}
}

func TestEdgeCircleOutside(t *testing.T) {
	p, q, opp := Pt(0, 0), Pt(2, 0), Pt(1, 1)
	d, ok := EdgeCircleOutside(p, q, opp, 1.5)
	if !ok {
		t.Fatal("radius 1.5 > chord/2 = 1, circle must exist")
	}
	if !d.OnBoundary(p) || !d.OnBoundary(q) {
		t.Errorf("chord endpoints must be on the circle: %v", d)
	}
	if d.C.Y >= 0 {
		t.Errorf("center must be on the side away from opp: %v", d.C)
	}
	if _, ok := EdgeCircleOutside(p, q, opp, 0.5); ok {
		t.Error("radius below half the chord must fail")
	}
}
