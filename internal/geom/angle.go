package geom

import "math"

// TwoPi is 2π, the full angular range of a skyline.
const TwoPi = 2 * math.Pi

// AngleEps is the tolerance used when comparing angles (radians). Skyline
// breakpoints are derived from atan2 of intersection points, so angular
// noise is on the order of Eps divided by the point's distance from the
// hub; 1e-9 rad is comfortably above that for the paper's workloads.
const AngleEps = 1e-9

// NormalizeAngle maps an angle to the canonical range [0, 2π).
func NormalizeAngle(theta float64) float64 {
	theta = math.Mod(theta, TwoPi)
	if theta < 0 {
		theta += TwoPi
	}
	// math.Mod can return values equal to TwoPi after the correction when
	// theta is a tiny negative number; fold those back to 0.
	if theta >= TwoPi {
		theta -= TwoPi
	}
	return theta
}

// AngleEq reports whether two angles are equal within AngleEps, treating 0
// and 2π as identical.
func AngleEq(a, b float64) bool {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	return d <= AngleEps || TwoPi-d <= AngleEps
}

// AngleLess reports whether a < b − AngleEps (a strictly precedes b with
// tolerance). Both angles are interpreted on the line, not the circle:
// callers that need circular ordering should normalize first.
func AngleLess(a, b float64) bool { return a < b-AngleEps }

// AngleInSpan reports whether angle x lies in the closed linear span
// [a, b] (a ≤ b expected), within AngleEps at the endpoints.
func AngleInSpan(x, a, b float64) bool {
	return x >= a-AngleEps && x <= b+AngleEps
}

// AngleStrictlyInSpan reports whether angle x lies strictly inside the
// linear span (a, b), i.e. more than AngleEps away from both endpoints.
func AngleStrictlyInSpan(x, a, b float64) bool {
	return x > a+AngleEps && x < b-AngleEps
}

// CCWDelta returns the counterclockwise angular distance from a to b in
// [0, 2π).
func CCWDelta(a, b float64) float64 {
	return NormalizeAngle(b - a)
}

// Degrees converts radians to degrees. Used only for human-readable output.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
