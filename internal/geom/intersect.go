package geom

import "math"

// CircleIntersections returns the intersection points of the circles
// ∂B(d.C, d.R) and ∂B(e.C, e.R).
//
// The returned slice has length 0 (disjoint or one circle strictly inside
// the other), 1 (tangency, internal or external), or 2. Coincident circles
// intersect everywhere; they are reported as 0 points and ok == false so
// callers can apply their own tie-breaking.
func CircleIntersections(d, e Disk) (pts []Point, ok bool) {
	var buf [2]Point
	n, ok := IntersectCircles(d, e, &buf)
	if n == 0 {
		return nil, ok
	}
	return append([]Point(nil), buf[:n]...), ok
}

// IntersectCircles is the allocation-free form of CircleIntersections: it
// writes up to two intersection points into buf and returns how many. The
// skyline merge calls this in its innermost loop.
func IntersectCircles(d, e Disk, buf *[2]Point) (n int, ok bool) {
	dist := d.C.Dist(e.C)
	if dist <= Eps && math.Abs(d.R-e.R) <= Eps {
		return 0, false // coincident circles
	}
	sum := d.R + e.R
	diff := math.Abs(d.R - e.R)
	switch {
	case dist > sum+Eps:
		return 0, true // externally disjoint
	case dist < diff-Eps:
		return 0, true // one circle strictly inside the other
	}

	// Standard two-circle intersection: let a be the signed distance from
	// d.C to the chord's foot along the center line.
	a := (dist*dist + d.R*d.R - e.R*e.R) / (2 * dist)
	h2 := d.R*d.R - a*a
	if h2 < 0 {
		h2 = 0 // tangency within tolerance
	}
	h := math.Sqrt(h2)

	ux := (e.C.X - d.C.X) / dist
	uy := (e.C.Y - d.C.Y) / dist
	foot := Point{d.C.X + a*ux, d.C.Y + a*uy}

	if h <= Eps {
		buf[0] = foot
		return 1, true
	}
	buf[0] = Point{foot.X - h*uy, foot.Y + h*ux}
	buf[1] = Point{foot.X + h*uy, foot.Y - h*ux}
	return 2, true
}

// DisksIntersect reports whether the two closed disks share at least one
// point.
func DisksIntersect(d, e Disk) bool {
	return d.C.Dist(e.C) <= d.R+e.R+Eps
}

// SegmentIntersectsDisk reports whether the closed segment pq meets the
// closed disk.
func SegmentIntersectsDisk(p, q Point, d Disk) bool {
	return DistPointSegment(d.C, p, q) <= d.R+Eps
}

// DistPointSegment returns the distance from point x to the closed segment
// pq.
func DistPointSegment(x, p, q Point) float64 {
	v := q.Sub(p)
	l2 := v.Norm2()
	if l2 <= Eps*Eps {
		return x.Dist(p)
	}
	t := x.Sub(p).Dot(v) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return x.Dist(p.Add(v.Scale(t)))
}
