package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{TwoPi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{3 * TwoPi, 0},
		{TwoPi + 1, 1},
		{-TwoPi - 1, TwoPi - 1},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEq(got, c.want, 1e-9) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		got := NormalizeAngle(x)
		return got >= 0 && got < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleEq(t *testing.T) {
	if !AngleEq(0, TwoPi) {
		t.Error("0 and 2π should be equal angles")
	}
	if !AngleEq(1, 1+AngleEps/2) {
		t.Error("angles within AngleEps should be equal")
	}
	if AngleEq(1, 1.001) {
		t.Error("angles 1e-3 apart should differ")
	}
	if !AngleEq(-math.Pi, math.Pi) {
		t.Error("-π and π should be equal angles")
	}
}

func TestAngleSpans(t *testing.T) {
	if !AngleInSpan(1.0, 0.5, 1.5) {
		t.Error("1.0 should be in [0.5, 1.5]")
	}
	if !AngleInSpan(0.5, 0.5, 1.5) {
		t.Error("endpoints are in the closed span")
	}
	if AngleStrictlyInSpan(0.5, 0.5, 1.5) {
		t.Error("endpoints are not strictly inside")
	}
	if !AngleStrictlyInSpan(1.0, 0.5, 1.5) {
		t.Error("1.0 should be strictly inside (0.5, 1.5)")
	}
	if AngleInSpan(2.0, 0.5, 1.5) {
		t.Error("2.0 is outside [0.5, 1.5]")
	}
}

func TestCCWDelta(t *testing.T) {
	if got := CCWDelta(0, math.Pi); !almostEq(got, math.Pi, 1e-12) {
		t.Errorf("CCWDelta(0, π) = %v", got)
	}
	if got := CCWDelta(3*math.Pi/2, math.Pi/2); !almostEq(got, math.Pi, 1e-12) {
		t.Errorf("CCWDelta(3π/2, π/2) = %v, want π (wraps through 0)", got)
	}
	if got := CCWDelta(1, 1); got != 0 {
		t.Errorf("CCWDelta(1, 1) = %v, want 0", got)
	}
}

func TestDegreesRadians(t *testing.T) {
	if got := Degrees(math.Pi); !almostEq(got, 180, 1e-9) {
		t.Errorf("Degrees(π) = %v", got)
	}
	if got := Radians(90); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("Radians(90) = %v", got)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		return almostEq(Degrees(Radians(x)), x, 1e-6*(1+math.Abs(x)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
