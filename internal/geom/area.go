package geom

import "math/rand"

// Area estimation utilities. The skyline/MLDCS invariants are about equality
// of unions of disks; a Monte-Carlo estimator gives an algorithm-independent
// oracle for those invariants in tests and examples.

// UnionContains reports whether p lies in the union of the given disks.
func UnionContains(disks []Disk, p Point) bool {
	for _, d := range disks {
		if d.Contains(p) {
			return true
		}
	}
	return false
}

// BoundingBox returns the axis-aligned bounding box of the disks' union.
// ok is false for an empty input.
func BoundingBox(disks []Disk) (minX, minY, maxX, maxY float64, ok bool) {
	if len(disks) == 0 {
		return 0, 0, 0, 0, false
	}
	minX, minY = disks[0].C.X-disks[0].R, disks[0].C.Y-disks[0].R
	maxX, maxY = disks[0].C.X+disks[0].R, disks[0].C.Y+disks[0].R
	for _, d := range disks[1:] {
		if x := d.C.X - d.R; x < minX {
			minX = x
		}
		if y := d.C.Y - d.R; y < minY {
			minY = y
		}
		if x := d.C.X + d.R; x > maxX {
			maxX = x
		}
		if y := d.C.Y + d.R; y > maxY {
			maxY = y
		}
	}
	return minX, minY, maxX, maxY, true
}

// UnionAreaMC estimates the area of the union of disks by Monte-Carlo
// sampling with the provided source. samples must be > 0.
func UnionAreaMC(disks []Disk, samples int, rng *rand.Rand) float64 {
	minX, minY, maxX, maxY, ok := BoundingBox(disks)
	if !ok {
		return 0
	}
	w, h := maxX-minX, maxY-minY
	hit := 0
	for i := 0; i < samples; i++ {
		p := Point{minX + rng.Float64()*w, minY + rng.Float64()*h}
		if UnionContains(disks, p) {
			hit++
		}
	}
	return float64(hit) / float64(samples) * w * h
}

// UnionsEqualMC tests whether two disk unions cover the same region, by
// sampling points from the bounding box of both unions and checking
// membership agreement. It returns the first witness point on which the two
// unions disagree, if any. This is a probabilistic oracle: agreement on all
// samples does not prove equality, but disagreement disproves it.
func UnionsEqualMC(a, b []Disk, samples int, rng *rand.Rand) (equal bool, witness Point) {
	all := make([]Disk, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	minX, minY, maxX, maxY, ok := BoundingBox(all)
	if !ok {
		return true, Point{}
	}
	w, h := maxX-minX, maxY-minY
	for i := 0; i < samples; i++ {
		p := Point{minX + rng.Float64()*w, minY + rng.Float64()*h}
		if UnionContains(a, p) != UnionContains(b, p) {
			// Ignore disagreements within Eps of some boundary: those are
			// tolerance artifacts, not genuine coverage differences.
			if !nearAnyBoundary(all, p) {
				return false, p
			}
		}
	}
	return true, Point{}
}

func nearAnyBoundary(disks []Disk, p Point) bool {
	const slack = 1e-6
	for _, d := range disks {
		if diff := d.C.Dist(p) - d.R; diff > -slack && diff < slack {
			return true
		}
	}
	return false
}
