package geom

import "math"

// Triangle support used by the paper's Lemmas 5–7 (the geometric core of
// the ≤ 2n arc bound) and by the test suite that validates them.

// TriangleKind classifies a triangle by its largest angle.
type TriangleKind int

// Triangle classifications.
const (
	AcuteTriangle TriangleKind = iota
	RightTriangle
	ObtuseTriangle
	DegenerateTriangle // collinear vertices
)

// String implements fmt.Stringer.
func (k TriangleKind) String() string {
	switch k {
	case AcuteTriangle:
		return "acute"
	case RightTriangle:
		return "right"
	case ObtuseTriangle:
		return "obtuse"
	default:
		return "degenerate"
	}
}

// ClassifyTriangle reports whether triangle abc is acute, right, obtuse, or
// degenerate, using squared side lengths so no angles are ever computed.
func ClassifyTriangle(a, b, c Point) TriangleKind {
	ab := a.Dist2(b)
	bc := b.Dist2(c)
	ca := c.Dist2(a)
	if math.Abs(b.Sub(a).Cross(c.Sub(a))) <= Eps {
		return DegenerateTriangle
	}
	// Sort so that ab is the largest squared side.
	m := math.Max(ab, math.Max(bc, ca))
	rest := ab + bc + ca - m
	switch {
	case math.Abs(m-rest) <= Eps:
		return RightTriangle
	case m > rest:
		return ObtuseTriangle
	default:
		return AcuteTriangle
	}
}

// Circumcircle returns the circle through the three (non-collinear) points.
// ok is false for degenerate (collinear) input.
func Circumcircle(a, b, c Point) (center Point, radius float64, ok bool) {
	d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
	if math.Abs(d) <= Eps {
		return Point{}, 0, false
	}
	a2, b2, c2 := a.Norm2(), b.Norm2(), c.Norm2()
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	center = Point{ux, uy}
	return center, center.Dist(a), true
}

// Orthocenter returns the orthocenter of triangle abc (the common point of
// the three altitudes). ok is false for degenerate input. Lemma 6 of the
// paper states that the three "reflected" circumradius circles drawn
// outward on the triangle's edges all pass through this point.
func Orthocenter(a, b, c Point) (Point, bool) {
	center, _, ok := Circumcircle(a, b, c)
	if !ok {
		return Point{}, false
	}
	// Orthocenter H = A + B + C − 2·O where O is the circumcenter.
	return Point{a.X + b.X + c.X - 2*center.X, a.Y + b.Y + c.Y - 2*center.Y}, true
}

// EdgeCircleOutside returns the circle that has segment pq as a chord, the
// given radius (≥ ‖p−q‖/2), and its center on the opposite side of pq from
// the reference point opp. This is the construction used by Lemma 6 /
// Corollary 7: a circle drawn on a triangle edge with its center outside
// the triangle. ok is false if radius < half the chord length.
func EdgeCircleOutside(p, q, opp Point, radius float64) (Disk, bool) {
	mid := Midpoint(p, q)
	half := p.Dist(q) / 2
	if radius < half-Eps {
		return Disk{}, false
	}
	h2 := radius*radius - half*half
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	v := q.Sub(p)
	n := Point{-v.Y, v.X} // normal to pq
	ln := n.Norm()
	if ln <= Eps {
		return Disk{}, false
	}
	n = n.Scale(1 / ln)
	// Pick the normal direction pointing away from opp.
	if n.Dot(opp.Sub(mid)) > 0 {
		n = n.Scale(-1)
	}
	return Disk{mid.Add(n.Scale(h)), radius}, true
}
