package geom

import "math"

// This file is the repository's single epsilon-comparison layer. Every
// tolerance-bearing comparison outside package geom must go through one of
// these predicates (or the angle predicates in angle.go) rather than
// spelling out a raw `x <= y+Eps`; `make lint-eps` enforces this.
//
// The policy, stated once (see docs/NUMERICS.md for the full discussion):
//
//   - All distance-like quantities — link distances, radii, envelope
//     values ρ(θ) — are compared in LINEAR units with the absolute
//     tolerance Eps. A squared-space comparison must use the squared
//     image of the same acceptance set, (r+Eps)², never r²+Eps: the two
//     differ by 2rEps, which for r > 0.5 makes the squared form stricter
//     and lets two pipelines disagree on a boundary-distance link.
//   - Angles are compared with AngleEps (angle.go).
//   - Envelope-value ties are resolved by RhoCmp with RhoEps, which is
//     deliberately the same magnitude as Eps: ρ values are linear-unit
//     distances like any other, and a divergent tie tolerance would let
//     the skyline algorithms disagree with the link predicates about
//     which disk owns a boundary ray.

// RhoEps is the tolerance for comparing envelope (ray-distance) values
// ρ(θ). ρ accumulates a dot product and a square root of rounding error,
// but both are relative errors on O(1)-to-O(10) linear-unit values, so the
// same absolute tolerance as Eps applies; keeping the two identical is
// what makes the skyline's tie-breaking consistent with the link layer.
const RhoEps = Eps

// LinkWithin is the canonical link predicate: a node at distance dist is
// within transmission radius r, with Eps of tolerance. Every link decision
// in the repository — graph construction, engine neighbor discovery,
// incremental dirty-set discovery, local-set validation — must reduce to
// this comparison so the pipelines cannot disagree on boundary links.
func LinkWithin(dist, r float64) bool { return dist <= r+Eps }

// LinkWithin2 is LinkWithin in squared space: it accepts exactly the
// distances d with d ≤ r+Eps, taking d² instead of d. Use it where the
// squared distance is already at hand (spatial-grid filters) and the sqrt
// would be wasted; the threshold is (r+Eps)², NOT r²+Eps, so the
// acceptance set matches LinkWithin up to one ulp of rounding in the
// squaring.
func LinkWithin2(dist2, r float64) bool {
	t := r + Eps
	return dist2 <= t*t
}

// Reaches reports whether a transmitter at p with radius r reaches a
// receiver at q, via LinkWithin.
func Reaches(p, q Point, r float64) bool { return LinkWithin(p.Dist(q), r) }

// ZeroLength reports whether a non-negative length (a distance or a norm)
// is zero within Eps.
func ZeroLength(d float64) bool { return d <= Eps }

// LengthEq reports whether two linear-unit values (radii, distances,
// envelope values) are equal within Eps.
func LengthEq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// RhoCmp compares two envelope values with RhoEps of tolerance: −1 when
// a < b − RhoEps, +1 when a > b + RhoEps, 0 when they are tied. Callers
// resolve ties with a deterministic rule (the skyline's canonical
// tie-break: larger radius, then lower index), never by raw float order.
func RhoCmp(a, b float64) int {
	switch {
	case a > b+RhoEps:
		return +1
	case a < b-RhoEps:
		return -1
	default:
		return 0
	}
}

// RhoCovers reports whether a point at ray distance d from the hub is
// within the envelope value rho, with RhoEps of tolerance — the radial
// membership predicate behind Skyline.Contains.
func RhoCovers(rho, d float64) bool { return d <= rho+RhoEps }

// AngleSliver reports whether the linear span [a, b] (a ≤ b expected) is
// too narrow to be a real arc — at most AngleEps wide. The skyline
// algorithms drop such spans and extend a neighboring arc over them.
func AngleSliver(a, b float64) bool { return b-a <= AngleEps }

// CoversAngle reports whether an arc spanning [start, end] (linear span,
// normalized, start ≤ end) covers the angle x within AngleEps at the
// endpoints. It is the arc-membership predicate used by the runtime
// invariant checks.
func CoversAngle(x, start, end float64) bool { return AngleInSpan(x, start, end) }
