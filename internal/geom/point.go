// Package geom provides the planar computational-geometry substrate used by
// the minimum-local-disk-cover-set (MLDCS) library: points, angles, disks,
// circle intersections, arcs, and the ray-distance function ρ_i(θ) that the
// skyline algorithm is built on.
//
// All coordinates are float64. Comparisons are epsilon-tolerant; see Eps.
package geom

import (
	"fmt"
	"math"
)

// Eps is the default absolute tolerance for coordinate and distance
// comparisons. Coordinates in the paper's workloads are O(10) and radii are
// O(1), so 1e-9 leaves ~6 decimal digits of slack above float64 noise.
const Eps = 1e-9

// Point is a point (or vector) in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{k * p.X, k * p.Y} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean norm ‖p‖.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean norm ‖p‖².
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance ‖p − q‖.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance ‖p − q‖².
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Angle returns the polar angle of p in [0, 2π).
func (p Point) Angle() float64 { return NormalizeAngle(math.Atan2(p.Y, p.X)) }

// Eq reports whether p and q coincide within Eps in each coordinate.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Unit returns the unit vector at polar angle theta.
func Unit(theta float64) Point { return Point{math.Cos(theta), math.Sin(theta)} }

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }
