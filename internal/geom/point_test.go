package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v, want (2, 6)", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v, want (4, 2)", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v, want (6, 8)", got)
	}
	if got := p.Dot(q); got != 5 {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := p.Cross(q); got != 10 {
		t.Errorf("Cross = %v, want 10", got)
	}
}

func TestNormAndDist(t *testing.T) {
	p := Pt(3, 4)
	if p.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", p.Norm())
	}
	if p.Norm2() != 25 {
		t.Errorf("Norm2 = %v, want 25", p.Norm2())
	}
	q := Pt(0, 0)
	if p.Dist(q) != 5 || p.Dist2(q) != 25 {
		t.Errorf("Dist/Dist2 = %v/%v, want 5/25", p.Dist(q), p.Dist2(q))
	}
}

func TestAngleOfPoint(t *testing.T) {
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 0), 0},
		{Pt(0, 1), math.Pi / 2},
		{Pt(-1, 0), math.Pi},
		{Pt(0, -1), 3 * math.Pi / 2},
		{Pt(1, 1), math.Pi / 4},
	}
	for _, c := range cases {
		if got := c.p.Angle(); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Angle(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestUnitVector(t *testing.T) {
	for _, theta := range []float64{0, 0.5, math.Pi, 5.7} {
		u := Unit(theta)
		if !almostEq(u.Norm(), 1, 1e-12) {
			t.Errorf("Unit(%v) has norm %v", theta, u.Norm())
		}
		if !almostEq(NormalizeAngle(u.Angle()), NormalizeAngle(theta), 1e-12) {
			t.Errorf("Unit(%v).Angle() = %v", theta, u.Angle())
		}
	}
}

func TestMidpoint(t *testing.T) {
	if got := Midpoint(Pt(0, 0), Pt(2, 4)); got != Pt(1, 2) {
		t.Errorf("Midpoint = %v, want (1, 2)", got)
	}
}

func TestEqTolerance(t *testing.T) {
	p := Pt(1, 1)
	if !p.Eq(Pt(1+Eps/2, 1-Eps/2)) {
		t.Error("Eq should tolerate sub-Eps differences")
	}
	if p.Eq(Pt(1+10*Eps, 1)) {
		t.Error("Eq should reject differences above Eps")
	}
}

// Property: ‖p − q‖² == Dist2 and triangle inequality.
func TestDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by)), Pt(clampCoord(cx), clampCoord(cy))
		d2 := a.Dist(b) * a.Dist(b)
		if !almostEq(d2, a.Dist2(b), 1e-6*(1+d2)) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and Cross is antisymmetric.
func TestDotCrossSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by))
		return a.Dot(b) == b.Dot(a) && a.Cross(b) == -b.Cross(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampCoord folds an arbitrary quick-generated float into a well-behaved
// coordinate range so properties are not voided by inf/NaN/overflow.
func clampCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}
