package geom

import (
	"math"
	"testing"
)

// TestLinkWithinBoundary pins the canonical link predicate at the exact
// boundary: distance r and r ± Eps/2 must be accepted, r + 2·Eps rejected,
// for small and large radii alike.
func TestLinkWithinBoundary(t *testing.T) {
	for _, r := range []float64{0.25, 1, 2, 5, 100} {
		for _, tc := range []struct {
			name string
			dist float64
			want bool
		}{
			{"exact-r", r, true},
			{"r-minus-half-eps", r - Eps/2, true},
			{"r-plus-half-eps", r + Eps/2, true},
			{"r-plus-2eps", r + 2*Eps, false},
			{"well-inside", r / 2, true},
			{"well-outside", 2 * r, false},
		} {
			if got := LinkWithin(tc.dist, r); got != tc.want {
				t.Errorf("LinkWithin(%g, %g) [%s] = %v, want %v", tc.dist, r, tc.name, got, tc.want)
			}
		}
	}
}

// TestLinkWithin2MatchesLinear is the heart of the unified policy: the
// squared-space predicate must accept exactly the same distances as the
// linear one. The old grid filter compared d² against r²+Eps, which for
// r > 0.5 is stricter than d ≤ r+Eps by up to (2r−1)·Eps and dropped true
// boundary neighbors.
func TestLinkWithin2MatchesLinear(t *testing.T) {
	for _, r := range []float64{0.25, 0.5, 1, 2, 5, 100} {
		for _, dist := range []float64{
			r, r - Eps/2, r + Eps/2, r + 2*Eps, r - 2*Eps,
			r / 2, 2 * r, 0,
		} {
			if dist < 0 {
				continue
			}
			lin := LinkWithin(dist, r)
			sq := LinkWithin2(dist*dist, r)
			if lin != sq {
				t.Errorf("r=%g dist=%g: LinkWithin=%v but LinkWithin2=%v", r, dist, lin, sq)
			}
		}
	}
}

// TestLinkWithin2RegressionLargeRadius reproduces the pre-fix divergence
// directly: at r = 5, a point at distance r + Eps/2 satisfies the linear
// predicate but fails the old squared comparison d² ≤ r² + Eps.
func TestLinkWithin2RegressionLargeRadius(t *testing.T) {
	const r = 5.0
	dist := r + Eps/2
	if dist*dist <= r*r+Eps {
		t.Fatalf("test premise broken: old-style comparison accepts d=%g at r=%g", dist, r)
	}
	if !LinkWithin(dist, r) {
		t.Fatalf("LinkWithin(%g, %g) = false, want true", dist, r)
	}
	if !LinkWithin2(dist*dist, r) {
		t.Fatalf("LinkWithin2(%g, %g) = false, want true (old squared-space bug)", dist*dist, r)
	}
}

func TestReaches(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4) // distance 5
	if !Reaches(p, q, 5) {
		t.Errorf("Reaches at exact radius = false, want true")
	}
	if Reaches(p, q, 4.999) {
		t.Errorf("Reaches beyond radius = true, want false")
	}
}

func TestZeroLengthAndLengthEq(t *testing.T) {
	if !ZeroLength(0) || !ZeroLength(Eps/2) || ZeroLength(2*Eps) {
		t.Errorf("ZeroLength boundary behavior wrong")
	}
	if !LengthEq(1, 1+Eps/2) || LengthEq(1, 1+2*Eps) || !LengthEq(5, 5) {
		t.Errorf("LengthEq boundary behavior wrong")
	}
}

func TestRhoCmp(t *testing.T) {
	for _, tc := range []struct {
		a, b float64
		want int
	}{
		{1, 1, 0},
		{1 + RhoEps/2, 1, 0},
		{1 - RhoEps/2, 1, 0},
		{1 + 2*RhoEps, 1, +1},
		{1 - 2*RhoEps, 1, -1},
		{2, 1, +1},
		{1, 2, -1},
	} {
		if got := RhoCmp(tc.a, tc.b); got != tc.want {
			t.Errorf("RhoCmp(%g, %g) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRhoCovers(t *testing.T) {
	if !RhoCovers(1, 1) || !RhoCovers(1, 1+RhoEps/2) || RhoCovers(1, 1+2*RhoEps) {
		t.Errorf("RhoCovers boundary behavior wrong")
	}
}

func TestAngleSliver(t *testing.T) {
	if !AngleSliver(1, 1) || !AngleSliver(1, 1+AngleEps/2) || AngleSliver(1, 1+2*AngleEps) {
		t.Errorf("AngleSliver boundary behavior wrong")
	}
}

func TestCoversAngle(t *testing.T) {
	if !CoversAngle(1, 1, 2) || !CoversAngle(2, 1, 2) || !CoversAngle(1.5, 1, 2) {
		t.Errorf("CoversAngle must include endpoints and interior")
	}
	if CoversAngle(2+2*AngleEps, 1, 2) || CoversAngle(1-2*AngleEps, 1, 2) {
		t.Errorf("CoversAngle must reject angles beyond AngleEps outside the span")
	}
}

// TestRhoEpsEqualsEps pins the policy decision of this layer: the envelope
// tie tolerance and the link tolerance are one and the same constant. If
// this ever changes, docs/NUMERICS.md and the tie-break tests in
// internal/skyline must change with it.
func TestRhoEpsEqualsEps(t *testing.T) {
	if RhoEps != Eps {
		t.Fatalf("RhoEps = %g, Eps = %g: the unified policy requires them equal", RhoEps, Eps)
	}
	if math.Abs(AngleEps-1e-9) > 0 {
		t.Fatalf("AngleEps = %g, want 1e-9 (documented in docs/NUMERICS.md)", AngleEps)
	}
}
