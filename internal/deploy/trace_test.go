package deploy

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/network"
)

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nodes, err := Generate(PaperConfig(Heterogeneous, 8), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteNodes(&buf, nodes); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNodes(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(nodes) {
		t.Fatalf("round trip: %d nodes, want %d", len(got), len(nodes))
	}
	for i := range nodes {
		if got[i] != nodes[i] {
			t.Fatalf("node %d differs after round trip: %+v vs %+v", i, got[i], nodes[i])
		}
	}
	// The round-tripped deployment must build the identical graph.
	ga, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := network.Build(got, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < ga.Len(); u++ {
		a, b := ga.Neighbors(u), gb.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d adjacency differs after round trip", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency differs after round trip", u)
			}
		}
	}
}

func TestReadNodesHandWritten(t *testing.T) {
	in := `
# a comment
0 1.5 2.5 1.0

1 3 4 2
`
	nodes, err := ReadNodes(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[1].Pos.X != 3 || nodes[1].Radius != 2 {
		t.Fatalf("parsed %+v", nodes)
	}
}

func TestReadNodesErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"short line", "0 1 2"},
		{"bad id", "x 1 2 3"},
		{"bad coord", "0 a 2 3"},
		{"out-of-order id", "1 0 0 1"},
		{"gap in ids", "0 0 0 1\n2 1 1 1"},
		{"zero radius", "0 1 2 0"},
	}
	for _, c := range cases {
		if _, err := ReadNodes(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	nodes, err := ReadNodes(strings.NewReader("# only comments\n"))
	if err != nil || len(nodes) != 0 {
		t.Errorf("comment-only trace: %v, %v", nodes, err)
	}
}
