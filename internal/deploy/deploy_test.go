package deploy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/network"
)

func TestValidate(t *testing.T) {
	good := PaperConfig(Homogeneous, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper config must validate: %v", err)
	}
	bad := []Config{
		{Side: 0, MeanDegree: 10, RadiusMin: 1},
		{Side: 12.5, MeanDegree: 0, RadiusMin: 1},
		{Side: 12.5, MeanDegree: 10, RadiusMin: 0},
		{Side: 12.5, MeanDegree: 10, Radius: Heterogeneous, RadiusMin: 2, RadiusMax: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d must fail", i)
		}
	}
}

func TestExpectedMinRadiusSq(t *testing.T) {
	hom := PaperConfig(Homogeneous, 10)
	if got := hom.ExpectedMinRadiusSq(); got != 1 {
		t.Errorf("homogeneous E[min²] = %v, want 1", got)
	}
	het := PaperConfig(Heterogeneous, 10)
	if got, want := het.ExpectedMinRadiusSq(), 11.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("heterogeneous E[min²] = %v, want 11/6 = %v", got, want)
	}
	// Degenerate range [a, a] reduces to the homogeneous value.
	deg := Config{Side: 12.5, MeanDegree: 10, Radius: Heterogeneous, RadiusMin: 1.5, RadiusMax: 1.5}
	if got := deg.ExpectedMinRadiusSq(); math.Abs(got-2.25) > 1e-9 {
		t.Errorf("degenerate range E[min²] = %v, want 2.25", got)
	}
}

// Monte-Carlo check of the closed-form E[min(R_i,R_j)²] for a non-paper
// radius range.
func TestExpectedMinRadiusSqMonteCarlo(t *testing.T) {
	c := Config{Side: 10, MeanDegree: 10, Radius: Heterogeneous, RadiusMin: 0.5, RadiusMax: 3}
	rng := rand.New(rand.NewSource(9))
	sum := 0.0
	const trials = 400000
	for i := 0; i < trials; i++ {
		a := c.RadiusMin + rng.Float64()*(c.RadiusMax-c.RadiusMin)
		b := c.RadiusMin + rng.Float64()*(c.RadiusMax-c.RadiusMin)
		m := math.Min(a, b)
		sum += m * m
	}
	mc := sum / trials
	if got := c.ExpectedMinRadiusSq(); math.Abs(got-mc)/mc > 0.01 {
		t.Errorf("closed form %v disagrees with Monte Carlo %v", got, mc)
	}
}

func TestNodeCountPaperFormula(t *testing.T) {
	// Homogeneous: N = side²·n̄/(π·r²) = 156.25·10/π ≈ 497.
	c := PaperConfig(Homogeneous, 10)
	want := int(math.Round(156.25 * 10 / math.Pi))
	if got := c.NodeCount(); got != want {
		t.Errorf("NodeCount = %d, want %d", got, want)
	}
	// Node count grows linearly with mean degree.
	c20 := PaperConfig(Homogeneous, 20)
	if got := c20.NodeCount(); got < 2*c.NodeCount()-2 || got > 2*c.NodeCount()+2 {
		t.Errorf("NodeCount(20) = %d, want ≈ 2 × %d", got, c.NodeCount())
	}
	// Heterogeneous networks need fewer nodes for the same degree because
	// E[min²] > 1.
	het := PaperConfig(Heterogeneous, 10)
	if het.NodeCount() >= c.NodeCount() {
		t.Errorf("heterogeneous count %d should be below homogeneous %d",
			het.NodeCount(), c.NodeCount())
	}
}

func TestGenerateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, model := range []RadiusModel{Homogeneous, Heterogeneous} {
		c := PaperConfig(model, 10)
		nodes, err := Generate(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != c.NodeCount() {
			t.Fatalf("%v: generated %d nodes, want %d", model, len(nodes), c.NodeCount())
		}
		if nodes[0].Pos.X != 6.25 || nodes[0].Pos.Y != 6.25 {
			t.Errorf("%v: source at %v, want center", model, nodes[0].Pos)
		}
		for i, n := range nodes {
			if n.ID != i {
				t.Fatalf("%v: node %d has ID %d", model, i, n.ID)
			}
			if n.Pos.X < 0 || n.Pos.X > c.Side || n.Pos.Y < 0 || n.Pos.Y > c.Side {
				t.Fatalf("%v: node %d outside region: %v", model, i, n.Pos)
			}
			switch model {
			case Homogeneous:
				if n.Radius != 1 {
					t.Fatalf("homogeneous radius = %v", n.Radius)
				}
			case Heterogeneous:
				if n.Radius < 1 || n.Radius > 2 {
					t.Fatalf("heterogeneous radius = %v outside [1, 2]", n.Radius)
				}
			}
		}
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(Config{}, rng); err == nil {
		t.Error("invalid config must fail")
	}
}

// The generated density must actually deliver the requested mean degree
// for interior nodes (within sampling error), validating the calibration —
// including the heterogeneous generalization of the paper's formula.
func TestGeneratedDegreeMatchesTarget(t *testing.T) {
	for _, model := range []RadiusModel{Homogeneous, Heterogeneous} {
		for _, target := range []float64{6, 10, 16} {
			c := PaperConfig(model, target)
			rng := rand.New(rand.NewSource(int64(100*target) + int64(model)))
			sum, count := 0.0, 0
			for rep := 0; rep < 40; rep++ {
				nodes, err := Generate(c, rng)
				if err != nil {
					t.Fatal(err)
				}
				g, err := network.Build(nodes, network.Bidirectional)
				if err != nil {
					t.Fatal(err)
				}
				// Average over interior nodes only (boundary nodes have
				// truncated neighborhoods).
				for u := 0; u < g.Len(); u++ {
					p := g.Node(u).Pos
					margin := 2.0
					if p.X < margin || p.X > c.Side-margin || p.Y < margin || p.Y > c.Side-margin {
						continue
					}
					sum += float64(g.Degree(u))
					count++
				}
			}
			mean := sum / float64(count)
			if math.Abs(mean-target)/target > 0.08 {
				t.Errorf("%v target %g: measured interior mean degree %.3f", model, target, mean)
			}
		}
	}
}

func TestGenerateClustered(t *testing.T) {
	c := PaperConfig(Homogeneous, 10)
	rng := rand.New(rand.NewSource(19))
	nodes, err := GenerateClustered(c, 5, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != c.NodeCount() {
		t.Fatalf("clustered generated %d nodes", len(nodes))
	}
	for _, n := range nodes {
		if n.Pos.X < 0 || n.Pos.X > c.Side || n.Pos.Y < 0 || n.Pos.Y > c.Side {
			t.Fatalf("node outside region: %v", n.Pos)
		}
	}
	if _, err := GenerateClustered(c, 0, 1, rng); err == nil {
		t.Error("zero clusters must fail")
	}
	if _, err := GenerateClustered(c, 3, 0, rng); err == nil {
		t.Error("zero spread must fail")
	}
}

func TestGeneratePerturbedGrid(t *testing.T) {
	c := PaperConfig(Heterogeneous, 8)
	rng := rand.New(rand.NewSource(20))
	nodes, err := GeneratePerturbedGrid(c, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != c.NodeCount() {
		t.Fatalf("grid generated %d nodes", len(nodes))
	}
	if nodes[0].Pos.X != c.Side/2 {
		t.Error("source must stay at center")
	}
	for _, n := range nodes {
		if n.Pos.X < 0 || n.Pos.X > c.Side || n.Pos.Y < 0 || n.Pos.Y > c.Side {
			t.Fatalf("node outside region: %v", n.Pos)
		}
	}
	if _, err := GeneratePerturbedGrid(c, 2, rng); err == nil {
		t.Error("jitter > 1 must fail")
	}
}

func TestRadiusModelString(t *testing.T) {
	if Homogeneous.String() != "homogeneous" || Heterogeneous.String() != "heterogeneous" {
		t.Error("RadiusModel.String mismatch")
	}
}

// Determinism: the same seed produces the same deployment.
func TestGenerateDeterministic(t *testing.T) {
	c := PaperConfig(Heterogeneous, 10)
	a, err := Generate(c, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs between identical seeds", i)
		}
	}
}
