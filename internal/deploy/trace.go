package deploy

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/network"
)

// Trace I/O: deployments can be exported and re-imported as plain text so
// experiments can run on externally produced topologies (testbed traces,
// other simulators) and so specific random deployments can be archived
// and replayed. The format is one node per line — "id x y radius" — with
// '#' comments, matching the disk-list format of cmd/mldcscover extended
// with an ID column.

// WriteNodes writes the nodes in trace format.
func WriteNodes(w io.Writer, nodes []network.Node) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# id x y radius")
	for _, n := range nodes {
		if _, err := fmt.Fprintf(bw, "%d %.17g %.17g %.17g\n", n.ID, n.Pos.X, n.Pos.Y, n.Radius); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNodes parses a trace written by WriteNodes (or by hand). IDs must be
// dense and in order, as network.Build requires.
func ReadNodes(r io.Reader) ([]network.Node, error) {
	var nodes []network.Node
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("deploy: line %d: want \"id x y radius\", got %q", lineNo, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("deploy: line %d: bad id %q: %v", lineNo, fields[0], err)
		}
		var vals [3]float64
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("deploy: line %d: bad number %q: %v", lineNo, f, err)
			}
			vals[i] = v
		}
		if id != len(nodes) {
			return nil, fmt.Errorf("deploy: line %d: id %d out of order (want %d)", lineNo, id, len(nodes))
		}
		if !(vals[2] > 0) {
			return nil, fmt.Errorf("deploy: line %d: radius %g must be positive", lineNo, vals[2])
		}
		nodes = append(nodes, network.Node{ID: id, Pos: geom.Pt(vals[0], vals[1]), Radius: vals[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nodes, nil
}
