// Package deploy generates the paper's simulation workloads (§5.1): nodes
// placed uniformly at random over a square deployment region, with a source
// node at the center, in homogeneous (every radius 1) or heterogeneous
// (radius uniform in [1, 2]) variants. The node count is calibrated so that
// the expected number of bidirectional 1-hop neighbors of a typical
// interior node equals the requested mean degree.
//
// Additional generators (clustered and perturbed-grid deployments) provide
// workloads beyond the paper's for robustness testing.
package deploy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/network"
)

// RadiusModel selects how transmission radii are assigned.
type RadiusModel int

const (
	// Homogeneous gives every node radius RadiusMin (the paper uses 1).
	Homogeneous RadiusModel = iota
	// Heterogeneous draws each radius uniformly from [RadiusMin, RadiusMax]
	// (the paper uses [1, 2]).
	Heterogeneous
)

// String implements fmt.Stringer.
func (m RadiusModel) String() string {
	if m == Homogeneous {
		return "homogeneous"
	}
	return "heterogeneous"
}

// Config describes a deployment.
type Config struct {
	Side       float64     // side length of the square region (paper: 12.5)
	MeanDegree float64     // target average number of 1-hop neighbors n̄
	Radius     RadiusModel // homogeneous or heterogeneous radii
	RadiusMin  float64     // minimum radius (paper: 1)
	RadiusMax  float64     // maximum radius for Heterogeneous (paper: 2)
	// SourceAtCenter places node 0 at the region's center, as the paper
	// does for the measured node u.
	SourceAtCenter bool
}

// PaperConfig returns the paper's §5.1 configuration for the given radius
// model and mean degree: a 12.5 × 12.5 square, radii 1 (homogeneous) or
// U[1, 2] (heterogeneous), and the source at the center.
func PaperConfig(model RadiusModel, meanDegree float64) Config {
	return Config{
		Side:           12.5,
		MeanDegree:     meanDegree,
		Radius:         model,
		RadiusMin:      1,
		RadiusMax:      2,
		SourceAtCenter: true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !(c.Side > 0) {
		return fmt.Errorf("deploy: side %g must be positive", c.Side)
	}
	if !(c.MeanDegree > 0) {
		return fmt.Errorf("deploy: mean degree %g must be positive", c.MeanDegree)
	}
	if !(c.RadiusMin > 0) {
		return fmt.Errorf("deploy: minimum radius %g must be positive", c.RadiusMin)
	}
	if c.Radius == Heterogeneous && c.RadiusMax < c.RadiusMin {
		return fmt.Errorf("deploy: radius range [%g, %g] is empty", c.RadiusMin, c.RadiusMax)
	}
	return nil
}

// ExpectedMinRadiusSq returns E[min(R_i, R_j)²] for two independent radii
// under the configuration's radius model. For a bidirectional disk graph
// with node density λ, the expected degree of an interior node is
// λ·π·E[min(R_i, R_j)²], since u ~ v iff ‖u − v‖ ≤ min(r_u, r_v).
//
// For Homogeneous radii this is simply RadiusMin². For Heterogeneous radii
// uniform on [a, b], P(min > t) = ((b − t)/(b − a))², and integrating
// E[min²] = a² + ∫_a^b 2t ((b − t)/(b − a))² dt in closed form gives the
// expression below (11/6 for the paper's [1, 2]).
func (c Config) ExpectedMinRadiusSq() float64 {
	if c.Radius == Homogeneous {
		return c.RadiusMin * c.RadiusMin
	}
	a, b := c.RadiusMin, c.RadiusMax
	if geom.LengthEq(a, b) {
		return a * a
	}
	// ∫_a^b 2t (b − t)² dt = [b²t² − (4b/3)t³ + t⁴/2]_a^b
	anti := func(t float64) float64 {
		return b*b*t*t - 4*b/3*t*t*t + t*t*t*t/2
	}
	return a*a + (anti(b)-anti(a))/((b-a)*(b-a))
}

// NodeCount returns the number of nodes to deploy so that the expected
// bidirectional degree of an interior node is MeanDegree. This generalizes
// the paper's N = (side²/(πr²))·n̄ formula — which assumes a single radius
// r — to heterogeneous radii via ExpectedMinRadiusSq; see DESIGN.md's
// substitution notes.
func (c Config) NodeCount() int {
	n := c.Side * c.Side * c.MeanDegree / (math.Pi * c.ExpectedMinRadiusSq())
	count := int(math.Round(n))
	if count < 1 {
		count = 1
	}
	return count
}

// Generate places NodeCount nodes uniformly at random over the region. If
// SourceAtCenter, node 0 is pinned to the center (its radius is still
// drawn from the radius model, as in the paper, where "every node may have
// different transmission radius ... including the source node").
func Generate(c Config, rng *rand.Rand) ([]network.Node, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	count := c.NodeCount()
	nodes := make([]network.Node, count)
	for i := range nodes {
		pos := geom.Pt(rng.Float64()*c.Side, rng.Float64()*c.Side)
		if i == 0 && c.SourceAtCenter {
			pos = geom.Pt(c.Side/2, c.Side/2)
		}
		nodes[i] = network.Node{ID: i, Pos: pos, Radius: c.drawRadius(rng)}
	}
	return nodes, nil
}

func (c Config) drawRadius(rng *rand.Rand) float64 {
	if c.Radius == Homogeneous {
		return c.RadiusMin
	}
	return c.RadiusMin + rng.Float64()*(c.RadiusMax-c.RadiusMin)
}

// GenerateClustered places nodes in Gaussian clusters whose centers are
// uniform over the region — a non-uniform workload exercising dense local
// neighborhoods. clusters must be ≥ 1 and spread > 0.
func GenerateClustered(c Config, clusters int, spread float64, rng *rand.Rand) ([]network.Node, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if clusters < 1 {
		return nil, fmt.Errorf("deploy: clusters %d must be ≥ 1", clusters)
	}
	if !(spread > 0) {
		return nil, fmt.Errorf("deploy: spread %g must be positive", spread)
	}
	centers := make([]geom.Point, clusters)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*c.Side, rng.Float64()*c.Side)
	}
	count := c.NodeCount()
	nodes := make([]network.Node, count)
	for i := range nodes {
		pos := geom.Pt(c.Side/2, c.Side/2)
		if !(i == 0 && c.SourceAtCenter) {
			center := centers[rng.Intn(clusters)]
			pos = geom.Pt(
				clampTo(center.X+rng.NormFloat64()*spread, 0, c.Side),
				clampTo(center.Y+rng.NormFloat64()*spread, 0, c.Side),
			)
		}
		nodes[i] = network.Node{ID: i, Pos: pos, Radius: c.drawRadius(rng)}
	}
	return nodes, nil
}

// GeneratePerturbedGrid places nodes on a √N × √N grid jittered by a
// fraction of the grid pitch — a near-regular workload with tightly
// controlled degrees.
func GeneratePerturbedGrid(c Config, jitter float64, rng *rand.Rand) ([]network.Node, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if jitter < 0 || jitter > 1 {
		return nil, fmt.Errorf("deploy: jitter %g must be in [0, 1]", jitter)
	}
	count := c.NodeCount()
	cols := int(math.Ceil(math.Sqrt(float64(count))))
	pitch := c.Side / float64(cols)
	nodes := make([]network.Node, count)
	for i := range nodes {
		pos := geom.Pt(c.Side/2, c.Side/2)
		if !(i == 0 && c.SourceAtCenter) {
			row, col := i/cols, i%cols
			pos = geom.Pt(
				clampTo((float64(col)+0.5+(rng.Float64()*2-1)*jitter)*pitch, 0, c.Side),
				clampTo((float64(row)+0.5+(rng.Float64()*2-1)*jitter)*pitch, 0, c.Side),
			)
		}
		nodes[i] = network.Node{ID: i, Pos: pos, Radius: c.drawRadius(rng)}
	}
	return nodes, nil
}

func clampTo(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
