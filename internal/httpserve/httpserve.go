// Package httpserve is the one way this repo runs an HTTP listener: a
// stdlib http.Server wrapper with fail-fast binding and a blocking
// graceful shutdown. Both mldcsd (the service) and mldcsim (the -pprof
// debug surface) use it, so listen/shutdown semantics cannot drift
// between the two: the listener is opened synchronously (a bad address
// fails before any work starts, and ":0" reports its resolved port),
// serving happens on a background goroutine, and Shutdown waits for
// in-flight requests up to a deadline before forcing the listener closed.
package httpserve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Server is a running HTTP server bound to one listener.
type Server struct {
	srv  *http.Server
	addr string

	mu       sync.Mutex
	done     chan struct{} // closed when Serve returns
	serveErr error         // Serve's terminal error, nil on clean close
	closed   bool
}

// Start binds addr (e.g. "127.0.0.1:0") and serves h on a background
// goroutine. The bind is synchronous: an unusable address errors here,
// never later. The returned server's Addr reports the resolved address.
func Start(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserve: listen %s: %w", addr, err)
	}
	s := &Server{
		srv: &http.Server{
			Addr:              ln.Addr().String(),
			Handler:           h,
			ReadHeaderTimeout: 5 * time.Second,
		},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		err := s.srv.Serve(ln)
		s.mu.Lock()
		if !errors.Is(err, http.ErrServerClosed) {
			s.serveErr = err
		}
		s.mu.Unlock()
		close(s.done)
	}()
	return s, nil
}

// Addr returns the resolved listen address ("127.0.0.1:41873"), useful
// when Start was given ":0".
func (s *Server) Addr() string { return s.addr }

// URL returns the http base URL for the listen address.
func (s *Server) URL() string { return "http://" + s.addr }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests get up to timeout to finish, then the listener is torn down.
// It blocks until Serve has returned and reports the first error from
// either serving or shutting down. Safe to call more than once.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := s.srv.Shutdown(ctx); err != nil {
			// Deadline hit with requests still in flight: force-close them
			// so done is reachable, then report the graceful failure.
			s.srv.Close()
			<-s.done
			return fmt.Errorf("httpserve: shutdown %s: %w", s.addr, err)
		}
	}
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}
