package httpserve

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartServeShutdown(t *testing.T) {
	s, err := Start("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Addr(), ":") || strings.HasSuffix(s.Addr(), ":0") {
		t.Fatalf("Addr not resolved: %q", s.Addr())
	}
	resp, err := http.Get(s.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}
	if err := s.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Idempotent.
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := http.Get(s.URL() + "/"); err == nil {
		t.Fatal("server still reachable after Shutdown")
	}
}

func TestStartBadAddressFailsFast(t *testing.T) {
	if _, err := Start("256.256.256.256:99999", nil); err == nil {
		t.Fatal("want bind error")
	}
}

func TestShutdownWaitsForInflight(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	s, err := Start("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "slow")
	}))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var body string
	go func() {
		defer wg.Done()
		resp, err := http.Get(s.URL() + "/")
		if err != nil {
			t.Errorf("in-flight request failed: %v", err)
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(b)
	}()
	<-entered
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if body != "slow" {
		t.Fatalf("in-flight response = %q, want %q", body, "slow")
	}
}
