package mldcs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// Metamorphic tests at the MLDCS level: rigid motions of the whole local
// set and neighbor relabelings must not change which nodes end up in the
// cover. These complement the skyline-level metamorphic tests by going
// through Solve's hub-frame translation and validation.

func sameCover(t *testing.T, got, want []int, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: cover = %v, want %v", label, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: cover = %v, want %v", label, got, want)
		}
	}
}

// transformLocalSet applies an affine map p → origin + s·Rot(phi)·(p − hub)
// to every disk center and scales radii by s, producing a congruent (up to
// scale) local set anchored at origin.
func transformLocalSet(ls LocalSet, origin geom.Point, phi, s float64) LocalSet {
	c, sn := math.Cos(phi), math.Sin(phi)
	move := func(d geom.Disk) geom.Disk {
		rel := d.C.Sub(ls.Hub.C)
		rot := geom.Pt(c*rel.X-sn*rel.Y, sn*rel.X+c*rel.Y)
		return geom.Disk{C: origin.Add(rot.Scale(s)), R: d.R * s}
	}
	out := LocalSet{Hub: move(ls.Hub)}
	for _, d := range ls.Neighbors {
		out.Neighbors = append(out.Neighbors, move(d))
	}
	return out
}

// TestMetamorphicRigidMotion: translating, rotating, and uniformly scaling
// a local set leaves the cover (as indices) unchanged.
func TestMetamorphicRigidMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		ls := randomLocalSet(rng, 1+rng.Intn(16), trial%2 == 0)
		base, err := Solve(ls)
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			name   string
			origin geom.Point
			phi, s float64
		}{
			{"translate", geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50), 0, 1},
			{"rotate", ls.Hub.C, rng.Float64() * geom.TwoPi, 1},
			{"scale", ls.Hub.C, 0, 0.5 + rng.Float64()*3},
			{"all", geom.Pt(rng.Float64()*20, rng.Float64()*20), rng.Float64() * geom.TwoPi, 0.5 + rng.Float64()*3},
		}
		for _, c := range cases {
			moved := transformLocalSet(ls, c.origin, c.phi, c.s)
			got, err := Solve(moved)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, c.name, err)
			}
			label := fmt.Sprintf("trial %d %s (n=%d)", trial, c.name, len(ls.Neighbors))
			sameCover(t, got.Cover, base.Cover, label)
			if got.ContainsHub() != base.ContainsHub() {
				t.Fatalf("%s: ContainsHub changed", label)
			}
		}
	}
}

// TestMetamorphicNeighborPermutation: shuffling the neighbor list permutes
// the cover indices accordingly (the hub keeps index 0).
func TestMetamorphicNeighborPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		ls := randomLocalSet(rng, 2+rng.Intn(16), trial%2 == 1)
		base, err := Solve(ls)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(len(ls.Neighbors)) // perm[newIdx] = oldIdx
		inv := make([]int, len(perm))
		shuffled := LocalSet{Hub: ls.Hub, Neighbors: make([]geom.Disk, len(perm))}
		for newIdx, oldIdx := range perm {
			shuffled.Neighbors[newIdx] = ls.Neighbors[oldIdx]
			inv[oldIdx] = newIdx
		}
		got, err := Solve(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int, 0, len(base.Cover))
		for _, i := range base.Cover {
			if i == 0 {
				want = append(want, 0)
			} else {
				want = append(want, inv[i-1]+1)
			}
		}
		sort.Ints(want)
		sameCover(t, got.Cover, want, fmt.Sprintf("trial %d (n=%d)", trial, len(ls.Neighbors)))
	}
}

// TestMetamorphicDegenerateLocalSets: duplicate, concentric, and tangent
// neighbor disks keep Solve's output a valid minimal cover, and the cover
// survives the cover-oracle cross-checks.
func TestMetamorphicDegenerateLocalSets(t *testing.T) {
	hub := geom.NewDisk(3, -2, 1.5)
	at := func(dx, dy, r float64) geom.Disk {
		return geom.Disk{C: hub.C.Add(geom.Pt(dx, dy)), R: r}
	}
	cases := []struct {
		name string
		ls   LocalSet
	}{
		{"duplicates", LocalSet{hub, []geom.Disk{at(0.5, 0, 1.2), at(0.5, 0, 1.2), at(0.5, 0, 1.2)}}},
		{"concentric", LocalSet{hub, []geom.Disk{at(0, 0, 1), at(0, 0, 2), at(0, 0, 0.5)}}},
		{"hub-duplicate", LocalSet{hub, []geom.Disk{at(0, 0, hub.R), at(0, 0, hub.R)}}},
		{"tangent", LocalSet{hub, []geom.Disk{at(1.2, 0, 1.2), at(-0.7, 0, 0.7)}}},
		{"cocircular", LocalSet{hub, []geom.Disk{
			at(0.8, 0, 1), at(0, 0.8, 1), at(-0.8, 0, 1), at(0, -0.8, 1),
		}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := Solve(c.ls)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := IsCoverSampled(c.ls, r.Cover, 2048)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("cover %v does not cover the union", r.Cover)
			}
			brute, err := BruteForceCover(c.ls, 512)
			if err != nil {
				t.Fatal(err)
			}
			if len(brute) != len(r.Cover) {
				t.Fatalf("cover %v is not minimum: brute force found %v", r.Cover, brute)
			}
		})
	}
}
