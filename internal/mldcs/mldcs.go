// Package mldcs formulates and solves the Minimum Local Disk Cover Set
// problem of the paper (§3.2): given a local disk set — the hub's own disk
// B(u₀, r₀) plus the disks of its 1-hop neighbors, every one of which
// contains the hub — find the smallest subset whose union equals the union
// of all the disks.
//
// By Theorem 3 the MLDCS is exactly the skyline set of the local disk set,
// and it is unique: every disk contributing an arc to the boundary of the
// union exclusively covers some region, so it belongs to every cover set,
// and the skyline set is itself a cover set. The package exposes both the
// O(n log n) skyline solution and a brute-force oracle used in tests.
package mldcs

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/skyline"
)

// ErrNotLocalSet is returned when the mutual-containment conditions of the
// problem input do not hold (some neighbor is out of the hub's range or
// vice versa).
var ErrNotLocalSet = errors.New("mldcs: input is not a local disk set")

// LocalSet is the input of the MLDCS problem: a hub disk B(u₀, r₀) and the
// disks of the hub's 1-hop neighbors. Validity requires, for every
// neighbor i, ‖u₀ − u_i‖ ≤ min(r₀, r_i): the neighbor is in the hub's
// range and the hub is in the neighbor's range (bidirectional links).
type LocalSet struct {
	Hub       geom.Disk   // the hub's own disk B(u₀, r₀)
	Neighbors []geom.Disk // the 1-hop neighbors' disks
}

// Validate checks the local-set conditions.
func (ls LocalSet) Validate() error {
	if !(ls.Hub.R > 0) {
		return fmt.Errorf("%w: hub radius %g is not positive", ErrNotLocalSet, ls.Hub.R)
	}
	for i, d := range ls.Neighbors {
		if !(d.R > 0) {
			return fmt.Errorf("%w: neighbor %d radius %g is not positive", ErrNotLocalSet, i, d.R)
		}
		dist := ls.Hub.C.Dist(d.C)
		if !geom.LinkWithin(dist, ls.Hub.R) {
			return fmt.Errorf("%w: neighbor %d at distance %g exceeds hub radius %g",
				ErrNotLocalSet, i, dist, ls.Hub.R)
		}
		if !geom.LinkWithin(dist, d.R) {
			return fmt.Errorf("%w: neighbor %d at distance %g exceeds its own radius %g "+
				"(hub not covered; link would be unidirectional)", ErrNotLocalSet, i, dist, d.R)
		}
	}
	return nil
}

// All returns the full local disk set with the hub first (index 0), all
// translated to the hub-at-origin frame used by the skyline package.
func (ls LocalSet) All() []geom.Disk {
	out := make([]geom.Disk, 0, len(ls.Neighbors)+1)
	out = append(out, ls.Hub.Translate(ls.Hub.C))
	for _, d := range ls.Neighbors {
		out = append(out, d.Translate(ls.Hub.C))
	}
	return out
}

// Result is a solved MLDCS instance.
type Result struct {
	// Cover holds the indices of the minimum local disk cover set into the
	// combined disk list: 0 is the hub, i ≥ 1 is Neighbors[i−1]. Sorted.
	Cover []int
	// Skyline is the boundary of the union, in the hub-at-origin frame.
	Skyline skyline.Skyline
}

// ContainsHub reports whether the hub's own disk is part of the cover,
// i.e. contributes arcs to the skyline.
func (r Result) ContainsHub() bool {
	for _, i := range r.Cover {
		if i == 0 {
			return true
		}
	}
	return false
}

// NeighborCover returns the cover restricted to neighbors, as indices into
// LocalSet.Neighbors. This is the forwarding set of the paper: the hub's
// own arcs are covered by its original transmission, so only neighbor
// disks need to relay.
func (r Result) NeighborCover() []int {
	out := make([]int, 0, len(r.Cover))
	for _, i := range r.Cover {
		if i > 0 {
			out = append(out, i-1)
		}
	}
	return out
}

// Solve computes the MLDCS of a local set with the paper's O(n log n)
// divide-and-conquer skyline algorithm.
func Solve(ls LocalSet) (Result, error) {
	return solveWith(ls, skyline.Compute)
}

// SolveParallel is Solve with the skyline recursion spread over the given
// number of workers (≤ 0 selects GOMAXPROCS). Only worthwhile for very
// large neighborhoods.
func SolveParallel(ls LocalSet, workers int) (Result, error) {
	return solveWith(ls, func(d []geom.Disk) (skyline.Skyline, error) {
		return skyline.ComputeParallel(d, workers)
	})
}

func solveWith(ls LocalSet, compute func([]geom.Disk) (skyline.Skyline, error)) (Result, error) {
	if err := ls.Validate(); err != nil {
		return Result{}, err
	}
	disks := ls.All()
	sl, err := compute(disks)
	if err != nil {
		return Result{}, err
	}
	return Result{Cover: sl.Set(), Skyline: sl}, nil
}

// IsCover reports whether the subset (indices into the combined disk list,
// 0 = hub) covers the union of all disks. It applies Theorem 3 exactly:
// every skyline-set disk exclusively covers some region, so a subset is a
// cover if and only if it contains the whole skyline set.
func IsCover(ls LocalSet, subset []int) (bool, error) {
	r, err := Solve(ls)
	if err != nil {
		return false, err
	}
	n := len(ls.Neighbors) + 1
	in := make([]bool, n)
	for _, i := range subset {
		if i < 0 || i >= n {
			return false, fmt.Errorf("mldcs: subset index %d out of range [0, %d)", i, n)
		}
		in[i] = true
	}
	for _, i := range r.Cover {
		if !in[i] {
			return false, nil
		}
	}
	return true, nil
}

// IsCoverSampled is an algorithm-independent coverage test used as a test
// oracle: it checks envelope domination of the subset over the full set at
// a dense battery of angles, plus all pairwise crossing angles between
// subset and full disks. It never consults the skyline algorithms, so it
// can validate them. probes is the size of the uniform angle battery
// (e.g. 2048); higher is stricter.
func IsCoverSampled(ls LocalSet, subset []int, probes int) (bool, error) {
	if err := ls.Validate(); err != nil {
		return false, err
	}
	disks := ls.All()
	in := make([]bool, len(disks))
	for _, i := range subset {
		if i < 0 || i >= len(disks) {
			return false, fmt.Errorf("mldcs: subset index %d out of range [0, %d)", i, len(disks))
		}
		in[i] = true
	}
	sub := make([]geom.Disk, 0, len(subset))
	for i, d := range disks {
		if in[i] {
			sub = append(sub, d)
		}
	}
	if len(sub) == 0 {
		return false, nil
	}
	angles := make([]float64, 0, probes+4*len(disks)*len(sub))
	for k := 0; k < probes; k++ {
		angles = append(angles, float64(k)/float64(probes)*geom.TwoPi)
	}
	// The boundary angles of any "uncovered" region are circle–circle
	// intersection angles between a subset disk and a full-set disk, so
	// probing slightly to each side of all of them makes the test exact up
	// to tolerance.
	for _, d := range disks {
		for _, e := range sub {
			pts, ok := geom.CircleIntersections(d, e)
			if !ok {
				continue
			}
			for _, p := range pts {
				a := p.Angle()
				angles = append(angles, a, a-1e-5, a+1e-5)
			}
		}
	}
	const tol = 1e-7
	for _, theta := range angles {
		want := maxRay(disks, theta)
		got := maxRay(sub, theta)
		if got < want-tol*(1+want) {
			return false, nil
		}
	}
	return true, nil
}

func maxRay(disks []geom.Disk, theta float64) float64 {
	best := 0.0
	for _, d := range disks {
		if r := d.RayDist(theta); r > best {
			best = r
		}
	}
	return best
}

// BruteForceCover finds a minimum cover by exhaustive search over subsets
// in increasing cardinality, using the sampled coverage oracle. It is
// exponential and intended only for validating Solve on small inputs
// (len(Neighbors) ≤ about 16).
func BruteForceCover(ls LocalSet, probes int) ([]int, error) {
	if err := ls.Validate(); err != nil {
		return nil, err
	}
	n := len(ls.Neighbors) + 1
	if n > 22 {
		return nil, fmt.Errorf("mldcs: brute force limited to 21 neighbors, got %d", n-1)
	}
	idx := make([]int, 0, n)
	for size := 1; size <= n; size++ {
		idx = idx[:0]
		found, err := enumerate(ls, probes, idx, 0, size, n)
		if err != nil {
			return nil, err
		}
		if found != nil {
			return found, nil
		}
	}
	return nil, fmt.Errorf("mldcs: no cover found (unreachable for valid input)")
}

func enumerate(ls LocalSet, probes int, chosen []int, from, size, n int) ([]int, error) {
	if len(chosen) == size {
		ok, err := IsCoverSampled(ls, chosen, probes)
		if err != nil {
			return nil, err
		}
		if ok {
			out := make([]int, size)
			copy(out, chosen)
			return out, nil
		}
		return nil, nil
	}
	for i := from; i <= n-(size-len(chosen)); i++ {
		found, err := enumerate(ls, probes, append(chosen, i), i+1, size, n)
		if err != nil || found != nil {
			return found, err
		}
	}
	return nil, nil
}
