package mldcs

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomLocalSet builds a valid LocalSet: a hub at an arbitrary position
// with radius r₀, and n neighbors placed within min(r₀, r_i) of the hub.
func randomLocalSet(rng *rand.Rand, n int, homogeneous bool) LocalSet {
	hubPos := geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
	r0 := 1.0
	if !homogeneous {
		r0 = 1 + rng.Float64()
	}
	ls := LocalSet{Hub: geom.Disk{C: hubPos, R: r0}}
	for i := 0; i < n; i++ {
		ri := 1.0
		if !homogeneous {
			ri = 1 + rng.Float64()
		}
		maxDist := r0
		if ri < maxDist {
			maxDist = ri
		}
		dist := rng.Float64() * maxDist * 0.999
		theta := rng.Float64() * geom.TwoPi
		ls.Neighbors = append(ls.Neighbors, geom.Disk{
			C: hubPos.Add(geom.Unit(theta).Scale(dist)),
			R: ri,
		})
	}
	return ls
}

func TestValidateAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		ls := randomLocalSet(rng, 1+rng.Intn(10), i%2 == 0)
		if err := ls.Validate(); err != nil {
			t.Fatalf("valid local set rejected: %v", err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	hub := geom.NewDisk(0, 0, 1)
	cases := []struct {
		name string
		ls   LocalSet
	}{
		{"neighbor out of hub range", LocalSet{hub, []geom.Disk{geom.NewDisk(2, 0, 5)}}},
		{"hub out of neighbor range", LocalSet{hub, []geom.Disk{geom.NewDisk(0.9, 0, 0.5)}}},
		{"bad hub radius", LocalSet{geom.NewDisk(0, 0, 0), nil}},
		{"bad neighbor radius", LocalSet{hub, []geom.Disk{geom.NewDisk(0, 0, -1)}}},
	}
	for _, c := range cases {
		err := c.ls.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !errors.Is(err, ErrNotLocalSet) {
			t.Errorf("%s: error %v is not ErrNotLocalSet", c.name, err)
		}
	}
}

func TestAllTranslatesToHubFrame(t *testing.T) {
	ls := LocalSet{
		Hub:       geom.NewDisk(3, 4, 2),
		Neighbors: []geom.Disk{geom.NewDisk(4, 4, 1.5)},
	}
	all := ls.All()
	if len(all) != 2 {
		t.Fatalf("All() returned %d disks", len(all))
	}
	if !all[0].C.Eq(geom.Pt(0, 0)) || all[0].R != 2 {
		t.Errorf("hub disk = %v, want centered at origin", all[0])
	}
	if !all[1].C.Eq(geom.Pt(1, 0)) {
		t.Errorf("neighbor disk = %v, want center (1, 0)", all[1])
	}
}

// Theorem 3: Solve's cover (the skyline set) must match the brute-force
// minimum cover computed by the algorithm-independent sampled oracle —
// both in size (minimality) and, because the MLDCS is unique, in content.
func TestTheorem3AgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		ls := randomLocalSet(rng, 1+rng.Intn(8), trial%2 == 0)
		r, err := Solve(ls)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForceCover(ls, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if len(bf) != len(r.Cover) {
			t.Fatalf("trial %d: skyline cover size %d != brute force %d\ncover=%v bf=%v",
				trial, len(r.Cover), len(bf), r.Cover, bf)
		}
		for i := range bf {
			if bf[i] != r.Cover[i] {
				t.Fatalf("trial %d: covers differ: %v vs %v", trial, r.Cover, bf)
			}
		}
	}
}

// The cover returned by Solve must actually cover (per the independent
// sampled oracle), and removing any element must break coverage
// (minimality witness per Theorem 3's exclusive-region argument).
func TestCoverIsMinimalCover(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		ls := randomLocalSet(rng, 1+rng.Intn(12), trial%2 == 0)
		r, err := Solve(ls)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := IsCoverSampled(ls, r.Cover, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: skyline set %v is not a cover", trial, r.Cover)
		}
		for drop := range r.Cover {
			reduced := make([]int, 0, len(r.Cover)-1)
			for i, v := range r.Cover {
				if i != drop {
					reduced = append(reduced, v)
				}
			}
			if len(reduced) == 0 {
				continue
			}
			ok, err := IsCoverSampled(ls, reduced, 2048)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("trial %d: dropping disk %d from cover %v still covers — not minimal",
					trial, r.Cover[drop], r.Cover)
			}
		}
	}
}

func TestIsCoverExact(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		ls := randomLocalSet(rng, 2+rng.Intn(10), trial%2 == 0)
		r, err := Solve(ls)
		if err != nil {
			t.Fatal(err)
		}
		n := len(ls.Neighbors) + 1
		full := make([]int, n)
		for i := range full {
			full[i] = i
		}
		if ok, _ := IsCover(ls, full); !ok {
			t.Fatal("the full set must be a cover")
		}
		if ok, _ := IsCover(ls, r.Cover); !ok {
			t.Fatal("the MLDCS must be a cover")
		}
		if len(r.Cover) > 1 {
			if ok, _ := IsCover(ls, r.Cover[1:]); ok {
				t.Fatal("a proper subset of the MLDCS must not be a cover")
			}
		}
		if ok, _ := IsCover(ls, nil); ok {
			t.Fatal("the empty set is not a cover")
		}
	}
}

func TestIsCoverRejectsBadIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	ls := randomLocalSet(rng, 3, true)
	if _, err := IsCover(ls, []int{99}); err == nil {
		t.Error("out-of-range index must error")
	}
	if _, err := IsCoverSampled(ls, []int{-1}, 64); err == nil {
		t.Error("negative index must error")
	}
}

func TestNeighborCoverAndContainsHub(t *testing.T) {
	// Hub with a huge radius dominates everything: cover = {0}.
	ls := LocalSet{
		Hub:       geom.NewDisk(0, 0, 5),
		Neighbors: []geom.Disk{geom.NewDisk(1, 0, 1.1), geom.NewDisk(0, 1, 1.1)},
	}
	r, err := Solve(ls)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ContainsHub() {
		t.Error("dominating hub must be in the cover")
	}
	if len(r.NeighborCover()) != 0 {
		t.Errorf("no neighbors should be needed, got %v", r.NeighborCover())
	}

	// Far-flung neighbor that pokes out: must appear in NeighborCover with
	// a neighbor-relative index.
	ls2 := LocalSet{
		Hub:       geom.NewDisk(0, 0, 1),
		Neighbors: []geom.Disk{geom.NewDisk(0.9, 0, 1.5)},
	}
	r2, err := Solve(ls2)
	if err != nil {
		t.Fatal(err)
	}
	nc := r2.NeighborCover()
	if len(nc) != 1 || nc[0] != 0 {
		t.Errorf("NeighborCover = %v, want [0]", nc)
	}
}

func TestSolveParallelMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 20; trial++ {
		ls := randomLocalSet(rng, 1+rng.Intn(20), trial%2 == 0)
		a, err := Solve(ls)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveParallel(ls, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Cover) != len(b.Cover) {
			t.Fatalf("parallel cover differs: %v vs %v", a.Cover, b.Cover)
		}
		for i := range a.Cover {
			if a.Cover[i] != b.Cover[i] {
				t.Fatalf("parallel cover differs: %v vs %v", a.Cover, b.Cover)
			}
		}
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	ls := LocalSet{Hub: geom.NewDisk(0, 0, 1), Neighbors: []geom.Disk{geom.NewDisk(9, 0, 1)}}
	if _, err := Solve(ls); err == nil {
		t.Error("invalid local set must fail")
	}
	if _, err := BruteForceCover(ls, 64); err == nil {
		t.Error("brute force on invalid local set must fail")
	}
}

func TestBruteForceSizeGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ls := randomLocalSet(rng, 25, true)
	if _, err := BruteForceCover(ls, 64); err == nil {
		t.Error("brute force must refuse oversized inputs")
	}
}
