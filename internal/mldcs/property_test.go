package mldcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// quickLocal compactly parameterizes a random LocalSet for testing/quick.
type quickLocal struct {
	Seed int64
	N    uint8
	Het  bool
}

func (in quickLocal) set() LocalSet {
	rng := rand.New(rand.NewSource(in.Seed))
	return randomLocalSet(rng, int(in.N)%12+1, !in.Het)
}

// Property: the cover is always a non-empty subset of the local set in
// index order, and the skyline in the result validates.
func TestQuickSolveStructure(t *testing.T) {
	f := func(in quickLocal) bool {
		ls := in.set()
		r, err := Solve(ls)
		if err != nil {
			return false
		}
		if len(r.Cover) == 0 || len(r.Cover) > len(ls.Neighbors)+1 {
			return false
		}
		for i := 1; i < len(r.Cover); i++ {
			if r.Cover[i] <= r.Cover[i-1] {
				return false
			}
		}
		for _, idx := range r.Cover {
			if idx < 0 || idx > len(ls.Neighbors) {
				return false
			}
		}
		return r.Skyline.Validate(len(ls.Neighbors)+1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: IsCover is monotone — any superset of a cover is a cover, and
// any subset missing a cover element is not.
func TestQuickIsCoverMonotone(t *testing.T) {
	f := func(in quickLocal) bool {
		ls := in.set()
		r, err := Solve(ls)
		if err != nil {
			return false
		}
		n := len(ls.Neighbors) + 1
		full := make([]int, n)
		for i := range full {
			full[i] = i
		}
		okFull, err := IsCover(ls, full)
		if err != nil || !okFull {
			return false
		}
		if len(r.Cover) > 0 {
			missing := r.Cover[len(r.Cover)-1]
			var without []int
			for i := 0; i < n; i++ {
				if i != missing {
					without = append(without, i)
				}
			}
			ok, err := IsCover(ls, without)
			if err != nil || ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: growing any neighbor's radius can only keep or shrink the
// relative coverage of other disks — concretely, the new cover's union
// area never decreases (the union grows monotonically with radii).
func TestQuickAreaMonotoneInRadii(t *testing.T) {
	f := func(in quickLocal, which uint8, growRaw uint8) bool {
		ls := in.set()
		if len(ls.Neighbors) == 0 {
			return true
		}
		r, err := Solve(ls)
		if err != nil {
			return false
		}
		before := r.Skyline.Area(ls.All())
		grown := ls
		grown.Neighbors = append([]geom.Disk(nil), ls.Neighbors...)
		i := int(which) % len(grown.Neighbors)
		grown.Neighbors[i].R += 0.01 + float64(growRaw)/255
		r2, err := Solve(grown)
		if err != nil {
			return false
		}
		after := r2.Skyline.Area(grown.All())
		return after >= before-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
