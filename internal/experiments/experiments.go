// Package experiments reproduces the paper's evaluation (§5.1): every
// figure is a driver that generates the paper's workloads, runs the
// forwarding-set algorithms, and emits the same series the paper plots.
// DESIGN.md's per-experiment index maps figures to drivers; EXPERIMENTS.md
// records paper-vs-measured results.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// Config controls an experiment run.
type Config struct {
	// Replications is the number of random point sets per data point (the
	// paper uses 200).
	Replications int
	// Seed makes runs reproducible; replication i uses Seed + i.
	Seed int64
	// Workers bounds the number of concurrent replications; ≤ 0 selects
	// GOMAXPROCS.
	Workers int
	// Degrees is the x-axis for the average-size figures (the mean number
	// of 1-hop neighbors). Defaults to 4..24 step 2.
	Degrees []float64
}

// DefaultConfig returns the paper's configuration: 200 replications and
// mean degrees 4..24.
func DefaultConfig() Config {
	return Config{Replications: 200, Seed: 1, Degrees: defaultDegrees()}
}

func defaultDegrees() []float64 {
	var ds []float64
	for d := 4.0; d <= 24; d += 2 {
		ds = append(ds, d)
	}
	return ds
}

func (c Config) normalized() Config {
	if c.Replications <= 0 {
		c.Replications = 200
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Degrees) == 0 {
		c.Degrees = defaultDegrees()
	}
	return c
}

// Series is one curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	// Err, when non-nil, holds the standard error of each Y value
	// (populated by the average-size experiments; empty for counts and
	// deterministic series).
	Err []float64 `json:",omitempty"`
}

// Figure is the reproduced form of one of the paper's figures: labeled
// series over a common axis plus free-form notes.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
	// Obs carries the per-run observability summary (wall time, reps/sec,
	// metrics snapshot) when instrumentation is enabled; nil — and absent
	// from JSON — otherwise, so golden outputs are unaffected.
	Obs *RunObs `json:",omitempty"`
}

// Table renders the figure as an aligned text table with one row per
// x-value and one column per series. All series must share the X axis of
// the first series; values missing from shorter series render empty.
func (f Figure) Table() *stats.Table {
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	t := stats.NewTable(header...)
	if len(f.Series) == 0 {
		return t
	}
	for i, x := range f.Series[0].X {
		cells := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			switch {
			case i < len(s.Y) && i < len(s.Err):
				cells = append(cells, fmt.Sprintf("%.3f±%.3f", s.Y[i], s.Err[i]))
			case i < len(s.Y):
				cells = append(cells, fmt.Sprintf("%.3f", s.Y[i]))
			default:
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// String renders the figure title, table, and notes.
func (f Figure) String() string {
	out := fmt.Sprintf("%s — %s\n(y = %s)\n%s", f.ID, f.Title, f.YLabel, f.Table().String())
	for _, n := range f.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// forEachReplication runs fn(rep, rng) for every replication index with a
// bounded worker pool. Each replication gets its own deterministic RNG, so
// results are independent of scheduling. The first error wins.
func forEachReplication(cfg Config, fn func(rep int, rng *rand.Rand) error) error {
	// Counter is nil (a no-op) when instrumentation is off.
	repCounter := activeRegistry().Counter(MetricReplicationsTotal)
	sem := make(chan struct{}, cfg.Workers)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	for rep := 0; rep < cfg.Replications; rep++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(rep int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer repCounter.Inc()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			if err := fn(rep, rng); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(rep)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}
