package experiments

import (
	"math/rand"

	"repro/internal/broadcast"
	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/network"
)

// Collision quantifies the third broadcast-storm symptom (collisions,
// §1.2 via Ni et al.) under the slotted collision model: when relays fire
// simultaneously, nodes covered by several of them decode nothing and
// broadcast frames are never retransmitted. The experiment reports, per
// mean degree, the delivery ratio and collision count for flooding versus
// skyline, greedy, and self-pruning relaying in heterogeneous networks.
// Flooding now loses real coverage — the storm damages flooding itself —
// while small forwarding sets keep both collisions and losses low.
func Collision(cfg Config, model deploy.RadiusModel) (Figure, error) {
	cfg = cfg.normalized()
	type proto struct {
		name string
		run  func(g *network.Graph) (broadcast.CollisionResult, error)
	}
	protos := []proto{
		{"flooding", func(g *network.Graph) (broadcast.CollisionResult, error) {
			return broadcast.RunWithCollisions(g, 0, nil)
		}},
		{"skyline", func(g *network.Graph) (broadcast.CollisionResult, error) {
			return broadcast.RunWithCollisions(g, 0, forwarding.Skyline{})
		}},
		{"greedy", func(g *network.Graph) (broadcast.CollisionResult, error) {
			return broadcast.RunWithCollisions(g, 0, forwarding.Greedy{})
		}},
	}
	delivery := make([]Series, len(protos))
	collisions := make([]Series, len(protos))
	for i, p := range protos {
		delivery[i] = Series{Label: p.name + " delivery"}
		collisions[i] = Series{Label: p.name + " collisions"}
	}
	for _, degree := range cfg.Degrees {
		del := make([][]float64, len(protos))
		col := make([][]float64, len(protos))
		for i := range protos {
			del[i] = make([]float64, cfg.Replications)
			col[i] = make([]float64, cfg.Replications)
		}
		dcfg := deploy.PaperConfig(model, degree)
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return err
			}
			g, err := network.Build(nodes, network.Bidirectional)
			if err != nil {
				return err
			}
			for i, p := range protos {
				res, err := p.run(g)
				if err != nil {
					return err
				}
				del[i][rep] = res.DeliveryRatio()
				col[i][rep] = float64(res.Collisions)
			}
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		for i := range protos {
			delivery[i].X = append(delivery[i].X, degree)
			delivery[i].Y = append(delivery[i].Y, mean(del[i]))
			collisions[i].X = append(collisions[i].X, degree)
			collisions[i].Y = append(collisions[i].Y, mean(col[i]))
		}
	}
	series := append(append([]Series{}, delivery...), collisions...)
	return Figure{
		ID:     "collision-" + model.String(),
		Title:  "Broadcast under the slotted collision model (" + model.String() + ")",
		XLabel: "mean 1-hop neighbors",
		YLabel: "delivery ratio / collisions",
		Series: series,
		Notes: []string{
			"collision model: simultaneous same-slot relays jam shared receivers; no retransmission",
			"demonstrates the storm's collision symptom (Ni et al.): flooding loses coverage",
		},
	}, nil
}
