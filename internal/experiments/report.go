package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteReport materializes a set of figures (typically a scenario run)
// into a directory: one JSON + CSV per figure plus an index.md linking
// everything with the rendered tables inline. renderSVG, when non-nil, is
// called per figure to produce a chart (the facade passes its
// RenderFigureSVG); nil skips charts.
func WriteReport(dir string, figs []Figure, renderSVG func(Figure) string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating report dir: %w", err)
	}
	var index strings.Builder
	index.WriteString("# Experiment report\n\n")
	for _, fig := range figs {
		slug := slugify(fig.ID)
		data, err := fig.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, slug+".json"), data, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, slug+".csv"),
			[]byte(fig.Table().CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&index, "## %s — %s\n\n", fig.ID, fig.Title)
		fmt.Fprintf(&index, "```\n%s```\n\n", fig.Table().String())
		for _, n := range fig.Notes {
			fmt.Fprintf(&index, "- %s\n", n)
		}
		fmt.Fprintf(&index, "\nFiles: [%s.json](%s.json), [%s.csv](%s.csv)",
			slug, slug, slug, slug)
		if renderSVG != nil {
			svgName := slug + ".svg"
			if err := os.WriteFile(filepath.Join(dir, svgName),
				[]byte(renderSVG(fig)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(&index, ", [%s](%s)", svgName, svgName)
		}
		index.WriteString("\n\n")
	}
	return os.WriteFile(filepath.Join(dir, "index.md"), []byte(index.String()), 0o644)
}

// slugify turns a figure ID into a safe file stem.
func slugify(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "figure"
	}
	return b.String()
}
