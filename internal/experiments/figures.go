package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/network"
	"repro/internal/stats"
)

// homogeneousSelectors are the five curves of Figure 5.1, top to bottom in
// the paper: blind flooding, skyline, selecting forwarding set
// (Călinescu), greedy, optimal.
func homogeneousSelectors() []forwarding.Selector {
	return []forwarding.Selector{
		forwarding.Flooding{},
		forwarding.Skyline{},
		forwarding.Calinescu{},
		forwarding.Greedy{},
		forwarding.Optimal{},
	}
}

// heterogeneousSelectors are the four curves of Figure 5.4: the Călinescu
// algorithm does not apply to heterogeneous networks (§5.1.2).
func heterogeneousSelectors() []forwarding.Selector {
	return []forwarding.Selector{
		forwarding.Flooding{},
		forwarding.Skyline{},
		forwarding.Greedy{},
		forwarding.Optimal{},
	}
}

// averageSizes measures the mean forwarding-set size of the source node
// over cfg.Replications random point sets, for every selector and every
// mean degree.
func averageSizes(cfg Config, model deploy.RadiusModel, selectors []forwarding.Selector) ([]Series, error) {
	cfg = cfg.normalized()
	series := make([]Series, len(selectors))
	for i, sel := range selectors {
		series[i] = Series{Label: sel.Name()}
	}
	for _, degree := range cfg.Degrees {
		// sizes[selector][replication]
		sizes := make([][]float64, len(selectors))
		for i := range sizes {
			sizes[i] = make([]float64, cfg.Replications)
		}
		dcfg := deploy.PaperConfig(model, degree)
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return err
			}
			g, err := network.Build(nodes, network.Bidirectional)
			if err != nil {
				return err
			}
			for i, sel := range selectors {
				set, err := sel.Select(g, 0)
				if err != nil {
					return fmt.Errorf("%s at degree %g: %w", sel.Name(), degree, err)
				}
				sizes[i][rep] = float64(len(set))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i := range selectors {
			var sum stats.Summary
			for _, v := range sizes[i] {
				sum.Add(v)
			}
			series[i].X = append(series[i].X, degree)
			series[i].Y = append(series[i].Y, sum.Mean())
			series[i].Err = append(series[i].Err, sum.StdErr())
		}
	}
	return series, nil
}

// Fig51 reproduces Figure 5.1: average forwarding-set size versus mean
// 1-hop degree in homogeneous networks, for all five algorithms.
func Fig51(cfg Config) (Figure, error) {
	series, err := averageSizes(cfg, deploy.Homogeneous, homogeneousSelectors())
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5.1",
		Title:  "Average forwarding-set size, homogeneous networks (r = 1)",
		XLabel: "mean 1-hop neighbors",
		YLabel: "average forward nodes",
		Series: series,
		Notes: []string{
			"paper: curves top-to-bottom are flooding, skyline, selecting-forwarding-set, greedy, optimal",
		},
	}, nil
}

// Fig54 reproduces Figure 5.4: the heterogeneous (r ∈ U[1,2]) counterpart
// with four algorithms.
func Fig54(cfg Config) (Figure, error) {
	series, err := averageSizes(cfg, deploy.Heterogeneous, heterogeneousSelectors())
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5.4",
		Title:  "Average forwarding-set size, heterogeneous networks (r ∈ U[1,2])",
		XLabel: "mean 1-hop neighbors",
		YLabel: "average forward nodes",
		Series: series,
		Notes: []string{
			"paper: curves top-to-bottom are flooding, skyline, greedy, optimal",
			"node density calibrated to E[min(Ri,Rj)²] = 11/6; see DESIGN.md",
		},
	}, nil
}

// distribution measures the histogram of forwarding-set sizes of the
// source node at one mean degree — the paper's Figures 5.2, 5.3, and 5.5.
func distribution(cfg Config, model deploy.RadiusModel, degree float64, selectors []forwarding.Selector) ([]Series, error) {
	cfg = cfg.normalized()
	sizes := make([][]int, len(selectors))
	for i := range sizes {
		sizes[i] = make([]int, cfg.Replications)
	}
	dcfg := deploy.PaperConfig(model, degree)
	err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
		nodes, err := deploy.Generate(dcfg, rng)
		if err != nil {
			return err
		}
		g, err := network.Build(nodes, network.Bidirectional)
		if err != nil {
			return err
		}
		for i, sel := range selectors {
			set, err := sel.Select(g, 0)
			if err != nil {
				return err
			}
			sizes[i][rep] = len(set)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Shared support across selectors so the series align.
	maxSize := 0
	for _, ss := range sizes {
		for _, v := range ss {
			if v > maxSize {
				maxSize = v
			}
		}
	}
	series := make([]Series, len(selectors))
	for i, sel := range selectors {
		h := stats.NewHistogram()
		for _, v := range sizes[i] {
			h.Add(v)
		}
		s := Series{Label: sel.Name()}
		for v := 0; v <= maxSize; v++ {
			s.X = append(s.X, float64(v))
			s.Y = append(s.Y, float64(h.Count(v)))
		}
		series[i] = s
	}
	return series, nil
}

// Fig52 reproduces Figure 5.2: the distribution of forwarding-set sizes in
// homogeneous networks with mean degree 10.
func Fig52(cfg Config) (Figure, error) {
	series, err := distribution(cfg, deploy.Homogeneous, 10, homogeneousSelectors())
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5.2",
		Title:  "Forwarding-set size distribution, homogeneous, mean degree 10",
		XLabel: "forward nodes",
		YLabel: "number of point sets",
		Series: series,
	}, nil
}

// Fig53 reproduces Figure 5.3: as Figure 5.2 with mean degree 20.
func Fig53(cfg Config) (Figure, error) {
	series, err := distribution(cfg, deploy.Homogeneous, 20, homogeneousSelectors())
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5.3",
		Title:  "Forwarding-set size distribution, homogeneous, mean degree 20",
		XLabel: "forward nodes",
		YLabel: "number of point sets",
		Series: series,
	}, nil
}

// Fig55 reproduces Figure 5.5: the distribution in heterogeneous networks
// with mean degree 10.
func Fig55(cfg Config) (Figure, error) {
	series, err := distribution(cfg, deploy.Heterogeneous, 10, heterogeneousSelectors())
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5.5",
		Title:  "Forwarding-set size distribution, heterogeneous, mean degree 10",
		XLabel: "forward nodes",
		YLabel: "number of point sets",
		Series: series,
	}, nil
}
