package experiments

import (
	"math/rand"

	"repro/internal/broadcast"
	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/network"
)

// Lossy measures broadcast delivery under edge fading: receptions near the
// limit of a transmitter's range succeed only probabilistically
// (broadcast.FringeLoss). The x-axis is the reliable-core fraction — 1.0
// is the paper's perfect disk model, smaller values fade earlier. The
// experiment exposes the robustness inversion: forwarding sets minimize
// transmissions by eliminating redundancy, but that same redundancy is
// what lets flooding survive losses, so as fading grows the single-path
// schemes' delivery drops fastest. (Mean degree is fixed at 10.)
func Lossy(cfg Config, model deploy.RadiusModel, cores []float64) (Figure, error) {
	cfg = cfg.normalized()
	if len(cores) == 0 {
		cores = []float64{1, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4}
	}
	const edgeProb = 0.1
	type proto struct {
		name string
		sel  forwarding.Selector
	}
	protos := []proto{
		{"flooding", nil},
		{"skyline", forwarding.Skyline{}},
		{"greedy", forwarding.Greedy{}},
		{"repair", forwarding.SkylineRepair{}},
	}
	series := make([]Series, len(protos))
	for i, p := range protos {
		series[i] = Series{Label: p.name + " delivery"}
	}
	dcfg := deploy.PaperConfig(model, 10)
	for _, core := range cores {
		loss := broadcast.FringeLoss(core, edgeProb)
		dels := make([][]float64, len(protos))
		for i := range protos {
			dels[i] = make([]float64, cfg.Replications)
		}
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return err
			}
			g, err := network.Build(nodes, network.Bidirectional)
			if err != nil {
				return err
			}
			for i, p := range protos {
				res, err := broadcast.RunLossy(g, 0, p.sel, loss, rng)
				if err != nil {
					return err
				}
				dels[i][rep] = res.DeliveryRatio()
			}
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		for i := range protos {
			series[i].X = append(series[i].X, core)
			series[i].Y = append(series[i].Y, mean(dels[i]))
		}
	}
	return Figure{
		ID:     "lossy-" + model.String(),
		Title:  "Broadcast delivery under edge fading (" + model.String() + ", degree 10)",
		XLabel: "reliable-core fraction of the radio range",
		YLabel: "delivery ratio",
		Series: series,
		Notes: []string{
			"loss model: receptions within core·r always succeed; success falls linearly to 0.1 at the full radius",
			"redundancy inversion: flooding degrades slowest, single-relay forwarding sets fastest",
		},
	}, nil
}
