package experiments

import (
	"os"
	"strings"
	"testing"
)

const sampleScenario = `{
  "name": "mini",
  "replications": 6,
  "seed": 3,
  "degrees": [6],
  "experiments": [
    {"id": "fig5.1"},
    {"id": "fig5.4", "replications": 4, "degrees": [8]},
    {"id": "fig5.6", "seed": 99}
  ]
}`

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario([]byte(sampleScenario), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "mini" || len(sc.Experiments) != 3 {
		t.Fatalf("parsed %+v", sc)
	}
	cfg := sc.ConfigFor(sc.Experiments[0])
	if cfg.Replications != 6 || cfg.Seed != 3 || len(cfg.Degrees) != 1 || cfg.Degrees[0] != 6 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	cfg = sc.ConfigFor(sc.Experiments[1])
	if cfg.Replications != 4 || cfg.Degrees[0] != 8 || cfg.Seed != 3 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	cfg = sc.ConfigFor(sc.Experiments[2])
	if cfg.Seed != 99 || cfg.Replications != 6 {
		t.Errorf("seed override not applied: %+v", cfg)
	}
}

func TestParseScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"broken json", "{nope"},
		{"no experiments", `{"name": "x", "experiments": []}`},
		{"missing id", `{"experiments": [{}]}`},
		{"negative reps", `{"replications": -1, "experiments": [{"id": "fig5.1"}]}`},
		{"negative entry reps", `{"experiments": [{"id": "fig5.1", "replications": -2}]}`},
	}
	for _, c := range cases {
		if _, err := ParseScenario([]byte(c.in), nil); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// ID validation callback.
	known := func(id string) bool { return id == "fig5.1" }
	if _, err := ParseScenario([]byte(`{"experiments": [{"id": "bogus"}]}`), known); err == nil {
		t.Error("unknown experiment must fail when validated")
	}
	if _, err := ParseScenario([]byte(`{"experiments": [{"id": "fig5.1"}]}`), known); err != nil {
		t.Errorf("known experiment rejected: %v", err)
	}
}

func TestWriteReport(t *testing.T) {
	dir := t.TempDir()
	figs := []Figure{
		{
			ID: "fig5.1", Title: "T1", XLabel: "x", YLabel: "y",
			Series: []Series{{Label: "a", X: []float64{1}, Y: []float64{2}}},
			Notes:  []string{"a note"},
		},
		{ID: "storm-het/odd id", Title: "T2", XLabel: "x", YLabel: "y"},
	}
	rendered := 0
	err := WriteReport(dir, figs, func(Figure) string {
		rendered++
		return "<svg/>"
	})
	if err != nil {
		t.Fatal(err)
	}
	if rendered != 2 {
		t.Errorf("rendered %d charts, want 2", rendered)
	}
	for _, name := range []string{"fig5_1.json", "fig5_1.csv", "fig5_1.svg",
		"storm-het_odd_id.json", "index.md"} {
		if _, err := os.Stat(dir + "/" + name); err != nil {
			t.Errorf("missing report file %s: %v", name, err)
		}
	}
	idx, err := os.ReadFile(dir + "/index.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## fig5.1 — T1", "a note", "fig5_1.csv"} {
		if !strings.Contains(string(idx), want) {
			t.Errorf("index missing %q", want)
		}
	}
	// Nil renderer skips charts without failing.
	if err := WriteReport(t.TempDir(), figs[:1], nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"fig5.1":    "fig5_1",
		"storm-het": "storm-het",
		"weird/$id": "weird__id",
		"":          "figure",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestScenarioRun(t *testing.T) {
	sc, err := ParseScenario([]byte(sampleScenario), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ran []string
	figs, err := sc.Run(func(id string, cfg Config) (Figure, error) {
		ran = append(ran, id)
		return Figure{ID: id}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 || strings.Join(ran, ",") != "fig5.1,fig5.4,fig5.6" {
		t.Errorf("ran %v, figures %d", ran, len(figs))
	}
	// Failure aborts with context.
	_, err = sc.Run(func(id string, cfg Config) (Figure, error) {
		if id == "fig5.4" {
			return Figure{}, errBoom
		}
		return Figure{ID: id}, nil
	})
	if err == nil || !strings.Contains(err.Error(), "fig5.4") {
		t.Errorf("failure not contextualized: %v", err)
	}
}
