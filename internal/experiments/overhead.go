package experiments

import (
	"math/rand"

	"repro/internal/deploy"
	"repro/internal/network"
)

// Overhead quantifies the paper's §5.1 control-traffic remark: 1-hop
// algorithms (skyline) need each node to beacon only its own identity,
// position, and radius, while 2-hop algorithms (greedy, optimal,
// Călinescu) additionally require every HELLO to piggyback the sender's
// full 1-hop neighbor list. The experiment counts, per mean degree, the
// total HELLO payload per beacon round in "entries" (one entry = one
// node's identity+position+radius record):
//
//	1-hop tables:  n nodes × 1 entry
//	2-hop tables:  n nodes × (1 + degree(n)) entries
//
// and reports the ratio, which grows linearly with density — the static
// counterpart of the mobility experiment's churn costs.
func Overhead(cfg Config, model deploy.RadiusModel) (Figure, error) {
	cfg = cfg.normalized()
	oneHop := Series{Label: "1-hop entries/round"}
	twoHop := Series{Label: "2-hop entries/round"}
	ratio := Series{Label: "2-hop / 1-hop"}
	for _, degree := range cfg.Degrees {
		ones := make([]float64, cfg.Replications)
		twos := make([]float64, cfg.Replications)
		dcfg := deploy.PaperConfig(model, degree)
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return err
			}
			g, err := network.Build(nodes, network.Bidirectional)
			if err != nil {
				return err
			}
			one, two := 0, 0
			for u := 0; u < g.Len(); u++ {
				one++
				two += 1 + g.Degree(u)
			}
			ones[rep] = float64(one)
			twos[rep] = float64(two)
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		mOne, mTwo := mean(ones), mean(twos)
		oneHop.X = append(oneHop.X, degree)
		oneHop.Y = append(oneHop.Y, mOne)
		twoHop.X = append(twoHop.X, degree)
		twoHop.Y = append(twoHop.Y, mTwo)
		ratio.X = append(ratio.X, degree)
		ratio.Y = append(ratio.Y, mTwo/mOne)
	}
	return Figure{
		ID:     "overhead-" + model.String(),
		Title:  "HELLO control-traffic overhead per beacon round (" + model.String() + ")",
		XLabel: "mean 1-hop neighbors",
		YLabel: "entries / ratio",
		Series: []Series{oneHop, twoHop, ratio},
		Notes: []string{
			"1-hop info suffices for the skyline algorithm; 2-hop info is needed by greedy/optimal/Călinescu (§5.1)",
			"ratio ≈ 1 + mean degree: the 2-hop tax grows with density",
		},
	}, nil
}

// AllNodes extends the paper's Figure 5.1/5.4 measurement — which samples
// only the central source — to every node of the network, exposing the
// boundary effect: nodes near the region's edge have truncated
// neighborhoods and smaller forwarding sets. The flooding curve then
// reads as the network-wide mean degree.
func AllNodes(cfg Config, model deploy.RadiusModel) (Figure, error) {
	cfg = cfg.normalized()
	selectors := heterogeneousSelectors()[:3] // flooding, skyline, greedy: cheap enough per node
	series := make([]Series, len(selectors))
	for i, sel := range selectors {
		series[i] = Series{Label: sel.Name() + " (all nodes)"}
	}
	for _, degree := range cfg.Degrees {
		sums := make([][]float64, len(selectors))
		for i := range sums {
			sums[i] = make([]float64, cfg.Replications)
		}
		dcfg := deploy.PaperConfig(model, degree)
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return err
			}
			g, err := network.Build(nodes, network.Bidirectional)
			if err != nil {
				return err
			}
			for i, sel := range selectors {
				total := 0
				for u := 0; u < g.Len(); u++ {
					set, err := sel.Select(g, u)
					if err != nil {
						return err
					}
					total += len(set)
				}
				sums[i][rep] = float64(total) / float64(g.Len())
			}
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		for i := range selectors {
			series[i].X = append(series[i].X, degree)
			series[i].Y = append(series[i].Y, mean(sums[i]))
		}
	}
	return Figure{
		ID:     "allnodes-" + model.String(),
		Title:  "Forwarding-set size averaged over every node (" + model.String() + ")",
		XLabel: "mean 1-hop neighbors",
		YLabel: "average forward nodes",
		Series: series,
		Notes: []string{
			"the paper's figures measure only the central source; averaging over all nodes includes boundary effects",
		},
	}, nil
}
