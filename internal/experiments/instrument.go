package experiments

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metric and event names exported by this package (see
// docs/OBSERVABILITY.md).
const (
	MetricRunsTotal         = "experiment_runs_total"
	MetricReplicationsTotal = "experiment_replications_total"
	MetricExperimentSeconds = "experiment_seconds"
	MetricLastRepsPerSec    = "experiment_last_reps_per_second"

	EventExperimentStart = "experiment_start"
	EventExperimentDone  = "experiment_done"
)

// expInstr carries the installed registry and sink. Unlike the skyline and
// broadcast layers this path is cold (once per experiment / replication),
// so handles are looked up as needed.
type expInstr struct {
	reg  *obs.Registry
	sink *obs.EventSink
}

var expInstalled atomic.Pointer[expInstr]

// Instrument installs the observability registry and event sink for this
// package; nil, nil disables.
func Instrument(r *obs.Registry, sink *obs.EventSink) {
	if r == nil && sink == nil {
		expInstalled.Store(nil)
		return
	}
	expInstalled.Store(&expInstr{reg: r, sink: sink})
}

// activeRegistry returns the installed registry, or nil when
// instrumentation is off. A nil *Registry is safe to use directly (it
// hands out nil no-op handles).
func activeRegistry() *obs.Registry {
	if in := expInstalled.Load(); in != nil {
		return in.reg
	}
	return nil
}

// RunObs is the per-experiment observability summary embedded in a
// Figure's JSON report when instrumentation is enabled: wall time,
// replication throughput, and a full registry snapshot. The snapshot is
// cumulative over the process, so in a multi-experiment run each figure
// carries the registry state as of its completion.
type RunObs struct {
	WallSeconds   float64       `json:"wall_seconds"`
	Replications  int64         `json:"replications"`
	RepsPerSecond float64       `json:"reps_per_second"`
	Metrics       *obs.Snapshot `json:"metrics,omitempty"`
}

// Observe wraps one experiment driver invocation. With instrumentation off
// it is a tail call to run; otherwise it times the run, counts the
// replications it performed (via the counter forEachReplication bumps),
// embeds the summary in the returned figure, and emits start/done trace
// events.
func Observe(id string, run func() (Figure, error)) (Figure, error) {
	in := expInstalled.Load()
	if in == nil {
		return run()
	}
	repCounter := in.reg.Counter(MetricReplicationsTotal)
	repsBefore := repCounter.Value()
	in.sink.Emit(EventExperimentStart, map[string]any{"id": id})
	start := time.Now()
	fig, err := run()
	wall := time.Since(start).Seconds()
	if err != nil {
		in.sink.Emit(EventExperimentDone, map[string]any{"id": id, "error": err.Error()})
		return fig, err
	}
	reps := repCounter.Value() - repsBefore
	rps := 0.0
	if wall > 0 {
		rps = float64(reps) / wall
	}
	in.reg.Counter(MetricRunsTotal).Inc()
	in.reg.Timer(MetricExperimentSeconds).Observe(time.Duration(wall * float64(time.Second)))
	in.reg.Gauge(MetricLastRepsPerSec).Set(rps)
	in.sink.Emit(EventExperimentDone, map[string]any{
		"id":              id,
		"wall_seconds":    wall,
		"replications":    reps,
		"reps_per_second": rps,
	})
	if in.reg != nil {
		snap := in.reg.Snapshot()
		fig.Obs = &RunObs{WallSeconds: wall, Replications: reps, RepsPerSecond: rps, Metrics: &snap}
	}
	return fig, nil
}
