package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Golden regression tests: tiny fixed-seed runs of the figure drivers are
// compared byte-for-byte against checked-in JSON. Any change to the
// deployment generator, the graph construction, a selector, or the
// experiment plumbing that alters results shows up as a golden diff.
// Regenerate intentionally with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGolden

func goldenConfig() Config {
	return Config{Replications: 8, Seed: 12345, Workers: 1, Degrees: []float64{6, 10}}
}

func TestGoldenFigures(t *testing.T) {
	cases := []struct {
		name string
		run  func() (Figure, error)
	}{
		{"fig51", func() (Figure, error) { return Fig51(goldenConfig()) }},
		{"fig54", func() (Figure, error) { return Fig54(goldenConfig()) }},
		{"fig56", func() (Figure, error) { return Fig56(goldenConfig()) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fig, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			got, err := fig.JSON()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.name+"_golden.json")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s output changed; if intentional, regenerate with UPDATE_GOLDEN=1.\n got: %s\nwant: %s",
					c.name, truncate(got), truncate(want))
			}
		})
	}
}

func truncate(b []byte) string {
	const max = 600
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}
