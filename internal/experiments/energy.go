package experiments

import (
	"math/rand"

	"repro/internal/broadcast"
	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/network"
)

// Energy addresses the paper's §1.1 design goal ("use the limited energy
// as efficiently as possible") quantitatively: it measures the total
// transmission energy of one network-wide broadcast, with a transmission
// at radius r costing r² (the covered area, the standard disk energy
// model). In heterogeneous networks this exposes a trade-off invisible in
// the transmission counts: the skyline set preferentially relays through
// large-radius nodes (their disks dominate the union), so its energy per
// transmission is above average, while greedy picks by 2-hop coverage
// irrespective of radius.
func Energy(cfg Config, model deploy.RadiusModel) (Figure, error) {
	cfg = cfg.normalized()
	type proto struct {
		name string
		sel  forwarding.Selector
	}
	protos := []proto{
		{"flooding", nil},
		{"skyline", forwarding.Skyline{}},
		{"greedy", forwarding.Greedy{}},
		{"repair", forwarding.SkylineRepair{}},
	}
	energy := make([]Series, len(protos))
	perTx := make([]Series, len(protos))
	for i, p := range protos {
		energy[i] = Series{Label: p.name + " energy"}
		perTx[i] = Series{Label: p.name + " energy/tx"}
	}
	for _, degree := range cfg.Degrees {
		tot := make([][]float64, len(protos))
		per := make([][]float64, len(protos))
		for i := range protos {
			tot[i] = make([]float64, cfg.Replications)
			per[i] = make([]float64, cfg.Replications)
		}
		dcfg := deploy.PaperConfig(model, degree)
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return err
			}
			g, err := network.Build(nodes, network.Bidirectional)
			if err != nil {
				return err
			}
			for i, p := range protos {
				res, err := broadcast.Run(g, 0, p.sel)
				if err != nil {
					return err
				}
				e := res.TxEnergy(g)
				tot[i][rep] = e
				if res.Transmissions > 0 {
					per[i][rep] = e / float64(res.Transmissions)
				}
			}
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		for i := range protos {
			energy[i].X = append(energy[i].X, degree)
			energy[i].Y = append(energy[i].Y, mean(tot[i]))
			perTx[i].X = append(perTx[i].X, degree)
			perTx[i].Y = append(perTx[i].Y, mean(per[i]))
		}
	}
	return Figure{
		ID:     "energy-" + model.String(),
		Title:  "Broadcast transmission energy (" + model.String() + ")",
		XLabel: "mean 1-hop neighbors",
		YLabel: "total energy (Σ r²) / energy per transmission",
		Series: append(append([]Series{}, energy...), perTx...),
		Notes: []string{
			"energy model: one transmission at radius r costs r² (§1.1 motivation)",
			"in heterogeneous networks the skyline set skews toward large-radius relays",
		},
	}, nil
}
