package experiments

import (
	"math/rand"

	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/mobility"
	"repro/internal/network"
)

// Mobility quantifies the paper's §5.1.1 argument for 1-hop-information
// algorithms: under random-waypoint movement, it measures per time step
//
//   - the HELLO traffic (in neighbor entries) needed to keep 1-hop versus
//     2-hop tables fresh;
//   - the fraction of nodes whose 1-hop and 2-hop neighborhoods changed;
//   - the staleness cost of NOT refreshing: how often the skyline
//     forwarding set computed on the previous topology is no longer the
//     skyline set of the current one, versus the same for the 2-hop-based
//     greedy set.
//
// The x-axis is the node speed (region side is 12.5, radii in [1, 2], so
// speed 1 crosses a transmission range per time unit).
func Mobility(cfg Config, speeds []float64) (Figure, error) {
	cfg = cfg.normalized()
	if len(speeds) == 0 {
		speeds = []float64{0.25, 0.5, 1, 2, 4}
	}
	const steps = 10
	oneCost := Series{Label: "1-hop entries/step"}
	twoCost := Series{Label: "2-hop entries/step"}
	oneChurn := Series{Label: "1-hop churn"}
	twoChurn := Series{Label: "2-hop churn"}
	skyStale := Series{Label: "skyline set stale"}
	greedyStale := Series{Label: "greedy set stale"}

	for _, speed := range speeds {
		n := cfg.Replications
		one := make([]float64, n)
		two := make([]float64, n)
		ch1 := make([]float64, n)
		ch2 := make([]float64, n)
		st1 := make([]float64, n)
		st2 := make([]float64, n)
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Heterogeneous, 10), rng)
			if err != nil {
				return err
			}
			m, err := mobility.NewModel(mobility.WaypointConfig{
				Side: 12.5, SpeedMin: speed * 0.5, SpeedMax: speed * 1.5, PauseMax: 0.5,
			}, nodes, rng)
			if err != nil {
				return err
			}
			prev, err := m.Graph(network.Bidirectional)
			if err != nil {
				return err
			}
			var staleSky, staleGreedy, stepsWithSets float64
			for s := 0; s < steps; s++ {
				prevSky, errSky := (forwarding.Skyline{}).Select(prev, 0)
				prevGreedy, errGreedy := (forwarding.Greedy{}).Select(prev, 0)
				m.Step(0.5)
				cur, err := m.Graph(network.Bidirectional)
				if err != nil {
					return err
				}
				o, t, err := mobility.MaintenanceCost(prev, cur)
				if err != nil {
					return err
				}
				one[rep] += float64(o) / steps
				two[rep] += float64(t) / steps
				churn, err := mobility.Churn(prev, cur)
				if err != nil {
					return err
				}
				ch1[rep] += float64(churn.OneHopChanged) / float64(churn.Nodes) / steps
				ch2[rep] += float64(churn.TwoHopChanged) / float64(churn.Nodes) / steps
				if errSky == nil && errGreedy == nil {
					stepsWithSets++
					curSky, err := (forwarding.Skyline{}).Select(cur, 0)
					if err != nil {
						return err
					}
					if !equalSets(prevSky, curSky) {
						staleSky++
					}
					curGreedy, err := (forwarding.Greedy{}).Select(cur, 0)
					if err != nil {
						return err
					}
					if !equalSets(prevGreedy, curGreedy) {
						staleGreedy++
					}
				}
				prev = cur
			}
			if stepsWithSets > 0 {
				st1[rep] = staleSky / stepsWithSets
				st2[rep] = staleGreedy / stepsWithSets
			}
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		oneCost.X = append(oneCost.X, speed)
		oneCost.Y = append(oneCost.Y, mean(one))
		twoCost.X = append(twoCost.X, speed)
		twoCost.Y = append(twoCost.Y, mean(two))
		oneChurn.X = append(oneChurn.X, speed)
		oneChurn.Y = append(oneChurn.Y, mean(ch1))
		twoChurn.X = append(twoChurn.X, speed)
		twoChurn.Y = append(twoChurn.Y, mean(ch2))
		skyStale.X = append(skyStale.X, speed)
		skyStale.Y = append(skyStale.Y, mean(st1))
		greedyStale.X = append(greedyStale.X, speed)
		greedyStale.Y = append(greedyStale.Y, mean(st2))
	}
	return Figure{
		ID:     "mobility",
		Title:  "Neighborhood maintenance under random-waypoint mobility (§5.1.1)",
		XLabel: "node speed",
		YLabel: "entries / fractions",
		Series: []Series{oneCost, twoCost, oneChurn, twoChurn, skyStale, greedyStale},
		Notes: []string{
			"supports the paper's remark that 2-hop information costs more to maintain under mobility",
			"churn = fraction of nodes whose table changed in a 0.5-time-unit step",
			"stale = fraction of steps in which the source's forwarding set changed",
		},
	}, nil
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
