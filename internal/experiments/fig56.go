package experiments

import (
	"math/rand"

	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/stats"
)

// Fig56Graph builds the exact six-node construction of the paper's Figure
// 5.6: a source u with neighbors u1, u2, u3, where u3's large disk
// dominates the local union (so the skyline set is {u3}) but the 2-hop
// nodes u4 and u5 — geometrically inside u3's disk — have radii too small
// to reach back to u3, so they are not u3's neighbors and a u3-only
// forwarding set strands them. The optimal forwarding set is {u1, u2}.
func Fig56Graph() (*network.Graph, error) {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(0.8, 0.3), Radius: 1},
		{ID: 2, Pos: geom.Pt(0.8, -0.3), Radius: 1},
		{ID: 3, Pos: geom.Pt(0.5, 0), Radius: 2.5},
		{ID: 4, Pos: geom.Pt(1.7, 0.3), Radius: 0.95},
		{ID: 5, Pos: geom.Pt(1.7, -0.3), Radius: 0.95},
	}
	return network.Build(nodes, network.Bidirectional)
}

// Fig56 reproduces the paper's §5.1.2 drawback discussion around Figure
// 5.6 quantitatively. It reports, over heterogeneous random networks for
// each mean degree:
//
//   - the average fraction of the source's 2-hop neighbors covered by the
//     skyline forwarding set (1.0 would mean the drawback never occurs);
//   - the fraction of point sets in which the skyline set misses at least
//     one 2-hop neighbor;
//   - the average extra relays the repair extension (X1) adds on top of
//     the skyline set to restore guaranteed coverage.
//
// The deterministic Figure 5.6 construction itself is validated in the
// test suite and demonstrated in examples/heterogeneous.
func Fig56(cfg Config) (Figure, error) {
	cfg = cfg.normalized()
	coverage := Series{Label: "skyline 2-hop coverage"}
	missRate := Series{Label: "point sets with a miss"}
	extras := Series{Label: "repair extra relays"}
	for _, degree := range cfg.Degrees {
		covs := make([]float64, cfg.Replications)
		misses := make([]float64, cfg.Replications)
		extra := make([]float64, cfg.Replications)
		dcfg := deploy.PaperConfig(deploy.Heterogeneous, degree)
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return err
			}
			g, err := network.Build(nodes, network.Bidirectional)
			if err != nil {
				return err
			}
			sky, err := (forwarding.Skyline{}).Select(g, 0)
			if err != nil {
				return err
			}
			cov := forwarding.CoverageRatio(g, 0, sky)
			covs[rep] = cov
			if cov < 1 {
				misses[rep] = 1
			}
			rep2, err := (forwarding.SkylineRepair{}).Select(g, 0)
			if err != nil {
				return err
			}
			extra[rep] = float64(len(rep2) - len(sky))
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		coverage.X = append(coverage.X, degree)
		coverage.Y = append(coverage.Y, mean(covs))
		missRate.X = append(missRate.X, degree)
		missRate.Y = append(missRate.Y, mean(misses))
		extras.X = append(extras.X, degree)
		extras.Y = append(extras.Y, mean(extra))
	}
	return Figure{
		ID:     "fig5.6",
		Title:  "Skyline 2-hop coverage drawback in heterogeneous networks",
		XLabel: "mean 1-hop neighbors",
		YLabel: "ratio / count",
		Series: []Series{coverage, missRate, extras},
		Notes: []string{
			"paper: qualitative only (Figure 5.6 construction); the exact construction is Fig56Graph",
			"repair extra relays is the X1 future-work extension's overhead",
		},
	}, nil
}

func mean(xs []float64) float64 {
	var s stats.Summary
	for _, x := range xs {
		s.Add(x)
	}
	return s.Mean()
}
