package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// JSON renders the figure as an indented JSON document for machine
// consumption (plotting scripts, regression tracking).
func (f Figure) JSON() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// FigureFromJSON parses a figure previously rendered with JSON.
func FigureFromJSON(data []byte) (Figure, error) {
	var f Figure
	if err := json.Unmarshal(data, &f); err != nil {
		return Figure{}, fmt.Errorf("experiments: parsing figure: %w", err)
	}
	return f, nil
}

// Bars renders one series of the figure as a horizontal ASCII bar chart —
// the terminal-friendly form of the paper's distribution figures. width is
// the maximum bar length in characters (≤ 0 selects 50).
func (f Figure) Bars(label string, width int) (string, error) {
	if width <= 0 {
		width = 50
	}
	var s *Series
	for i := range f.Series {
		if f.Series[i].Label == label {
			s = &f.Series[i]
			break
		}
	}
	if s == nil {
		return "", fmt.Errorf("experiments: figure %s has no series %q", f.ID, label)
	}
	maxY := 0.0
	for _, y := range s.Y {
		if y > maxY {
			maxY = y
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, label)
	for i, x := range s.X {
		y := s.Y[i]
		bar := 0
		if maxY > 0 {
			bar = int(math.Round(y / maxY * float64(width)))
		}
		fmt.Fprintf(&b, "%8g | %-*s %g\n", x, width, strings.Repeat("█", bar), y)
	}
	return b.String(), nil
}
