package experiments

import "testing"

func TestEngineScalingSmall(t *testing.T) {
	f, err := EngineScaling(Config{Replications: 2, Seed: 17, Workers: 2}, []int{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "engine-scaling" || len(f.Series) != 4 {
		t.Fatalf("figure shape wrong: id=%q series=%d", f.ID, len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != 2 || len(s.Y) != 2 {
			t.Fatalf("series %q has %d/%d points, want 2/2", s.Label, len(s.X), len(s.Y))
		}
	}
	// EngineScaling fails internally if any replication's forwarding sets
	// diverge, so reaching this point means the differential check passed;
	// the timings just need to be populated.
	for _, s := range f.Series[:2] {
		for i, y := range s.Y {
			if y < 0 {
				t.Fatalf("series %q point %d negative: %v", s.Label, i, y)
			}
		}
	}
}
