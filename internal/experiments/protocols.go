package experiments

import (
	"math/rand"

	"repro/internal/broadcast"
	"repro/internal/cds"
	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/network"
)

// Protocols compares every broadcast scheme in the repository — the
// paper's flooding baseline and skyline forwarding, the greedy MPR
// heuristic, and the related-work comparators the paper cites (self-
// pruning, neighbor elimination, partial and total dominant pruning) — on
// transmissions and delivery ratio per mean degree. All schemes except
// plain skyline (in heterogeneous networks) must deliver everywhere; the
// interesting axis is how few transmissions each needs.
func Protocols(cfg Config, model deploy.RadiusModel) (Figure, error) {
	cfg = cfg.normalized()
	type proto struct {
		name string
		run  func(g *network.Graph) (broadcast.Result, error)
	}
	protos := []proto{
		{"flooding", func(g *network.Graph) (broadcast.Result, error) {
			return broadcast.Run(g, 0, nil)
		}},
		{"skyline", func(g *network.Graph) (broadcast.Result, error) {
			return broadcast.Run(g, 0, forwarding.Skyline{})
		}},
		{"greedy-mpr", func(g *network.Graph) (broadcast.Result, error) {
			return broadcast.Run(g, 0, forwarding.Greedy{})
		}},
		{"self-pruning", func(g *network.Graph) (broadcast.Result, error) {
			return broadcast.RunSelfPruning(g, 0)
		}},
		{"neighbor-elim", func(g *network.Graph) (broadcast.Result, error) {
			return broadcast.RunNeighborElimination(g, 0)
		}},
		{"pdp", func(g *network.Graph) (broadcast.Result, error) {
			return broadcast.RunDominantPruning(g, 0, broadcast.PDP)
		}},
		{"tdp", func(g *network.Graph) (broadcast.Result, error) {
			return broadcast.RunDominantPruning(g, 0, broadcast.TDP)
		}},
		{"wuli-cds", func(g *network.Graph) (broadcast.Result, error) {
			return broadcast.RunWithBackbone(g, 0, cds.WuLi(g))
		}},
		{"mis-cds", func(g *network.Graph) (broadcast.Result, error) {
			set, err := cds.MISConnect(g, 0)
			if err != nil {
				return broadcast.Result{}, err
			}
			return broadcast.RunWithBackbone(g, 0, set)
		}},
	}
	tx := make([]Series, len(protos))
	delivery := make([]Series, len(protos))
	for i, p := range protos {
		tx[i] = Series{Label: p.name + " tx"}
		delivery[i] = Series{Label: p.name + " delivery"}
	}
	for _, degree := range cfg.Degrees {
		txs := make([][]float64, len(protos))
		dels := make([][]float64, len(protos))
		for i := range protos {
			txs[i] = make([]float64, cfg.Replications)
			dels[i] = make([]float64, cfg.Replications)
		}
		dcfg := deploy.PaperConfig(model, degree)
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return err
			}
			g, err := network.Build(nodes, network.Bidirectional)
			if err != nil {
				return err
			}
			for i, p := range protos {
				res, err := p.run(g)
				if err != nil {
					return err
				}
				txs[i][rep] = float64(res.Transmissions)
				dels[i][rep] = res.DeliveryRatio()
			}
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		for i := range protos {
			tx[i].X = append(tx[i].X, degree)
			tx[i].Y = append(tx[i].Y, mean(txs[i]))
			delivery[i].X = append(delivery[i].X, degree)
			delivery[i].Y = append(delivery[i].Y, mean(dels[i]))
		}
	}
	return Figure{
		ID:     "protocols-" + model.String(),
		Title:  "Broadcast protocol comparison (" + model.String() + ")",
		XLabel: "mean 1-hop neighbors",
		YLabel: "transmissions / delivery ratio",
		Series: append(append([]Series{}, tx...), delivery...),
		Notes: []string{
			"self-pruning, neighbor elimination, and PDP/TDP are the related-work schemes the paper cites ([9][10][13][15])",
			"skyline delivery < 1 in heterogeneous networks is the §5.2 drawback; all others guarantee delivery",
		},
	}, nil
}
