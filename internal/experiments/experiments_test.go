package experiments

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

// smallConfig keeps test runtimes modest while exercising every code path.
func smallConfig() Config {
	return Config{Replications: 16, Seed: 7, Workers: 4, Degrees: []float64{6, 10}}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.Replications != 200 {
		t.Errorf("Replications = %d, want the paper's 200", c.Replications)
	}
	if len(c.Degrees) != 11 || c.Degrees[0] != 4 || c.Degrees[10] != 24 {
		t.Errorf("Degrees = %v", c.Degrees)
	}
	n := Config{}.normalized()
	if n.Replications != 200 || n.Workers < 1 || len(n.Degrees) == 0 {
		t.Errorf("normalized zero config = %+v", n)
	}
}

func TestForEachReplicationRunsAll(t *testing.T) {
	var count int64
	cfg := Config{Replications: 57, Workers: 8, Seed: 3}.normalized()
	err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 57 {
		t.Errorf("ran %d replications, want 57", count)
	}
}

func TestForEachReplicationPropagatesError(t *testing.T) {
	cfg := Config{Replications: 20, Workers: 4, Seed: 3}.normalized()
	err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
		if rep == 13 {
			return errBoom
		}
		return nil
	})
	if err != errBoom {
		t.Errorf("error not propagated: %v", err)
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }

// Determinism: the same config yields identical figures regardless of
// worker count.
func TestFig51Deterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Fig51(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := Fig51(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatal("series count differs")
	}
	for i := range a.Series {
		for j := range a.Series[i].Y {
			if a.Series[i].Y[j] != b.Series[i].Y[j] {
				t.Fatalf("series %s differs at %d: %v vs %v",
					a.Series[i].Label, j, a.Series[i].Y[j], b.Series[i].Y[j])
			}
		}
	}
}

// The paper's Figure 5.1 ordering: flooding ≥ skyline ≥ calinescu ≥ greedy
// ≥ optimal (on averages; calinescu/greedy can tie).
func TestFig51Ordering(t *testing.T) {
	f, err := Fig51(Config{Replications: 40, Seed: 11, Workers: 4, Degrees: []float64{10}})
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y[0]
	}
	if !(y["flooding"] >= y["skyline"] && y["skyline"] >= y["greedy"] && y["greedy"] >= y["optimal"]) {
		t.Errorf("ordering violated: %v", y)
	}
	if y["calinescu"] < y["optimal"] || y["calinescu"] > y["flooding"] {
		t.Errorf("calinescu out of range: %v", y)
	}
	if y["optimal"] <= 0 {
		t.Errorf("optimal mean %v must be positive at degree 10", y["optimal"])
	}
}

func TestFig54Ordering(t *testing.T) {
	f, err := Fig54(Config{Replications: 40, Seed: 12, Workers: 4, Degrees: []float64{10}})
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y[0]
	}
	if !(y["flooding"] >= y["skyline"] && y["skyline"] >= y["greedy"] && y["greedy"] >= y["optimal"]) {
		t.Errorf("ordering violated: %v", y)
	}
	if len(f.Series) != 4 {
		t.Errorf("heterogeneous figure must have 4 series, got %d", len(f.Series))
	}
}

func TestDistributionsSumToReplications(t *testing.T) {
	cfg := Config{Replications: 25, Seed: 13, Workers: 4}
	for _, fn := range []func(Config) (Figure, error){Fig52, Fig53, Fig55} {
		f, err := fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range f.Series {
			total := 0.0
			for _, y := range s.Y {
				total += y
			}
			if total != 25 {
				t.Errorf("%s/%s: histogram mass %v, want 25", f.ID, s.Label, total)
			}
		}
	}
}

func TestFig56Metrics(t *testing.T) {
	f, err := Fig56(Config{Replications: 30, Seed: 14, Workers: 4, Degrees: []float64{10}})
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) float64 {
		for _, s := range f.Series {
			if s.Label == label {
				return s.Y[0]
			}
		}
		t.Fatalf("missing series %q", label)
		return 0
	}
	cov := get("skyline 2-hop coverage")
	if cov <= 0 || cov > 1 {
		t.Errorf("coverage %v out of (0, 1]", cov)
	}
	miss := get("point sets with a miss")
	if miss < 0 || miss > 1 {
		t.Errorf("miss rate %v out of [0, 1]", miss)
	}
	if extras := get("repair extra relays"); extras < 0 {
		t.Errorf("negative repair overhead %v", extras)
	}
}

func TestFig56GraphShape(t *testing.T) {
	g, err := Fig56Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 6 || g.Degree(0) != 3 || len(g.TwoHop(0)) != 2 {
		t.Errorf("Fig56Graph shape wrong: n=%d deg=%d twohop=%v",
			g.Len(), g.Degree(0), g.TwoHop(0))
	}
}

func TestScalingSmall(t *testing.T) {
	f, err := Scaling(Config{Replications: 3, Seed: 15}, []int{32, 64}, 64)
	if err != nil {
		t.Fatal(err)
	}
	var arcSeries *Series
	for i := range f.Series {
		if f.Series[i].Label == "arcs / 2n" {
			arcSeries = &f.Series[i]
		}
	}
	if arcSeries == nil {
		t.Fatal("missing arc series")
	}
	for _, r := range arcSeries.Y {
		if r <= 0 || r > 1 {
			t.Errorf("arc ratio %v violates Lemma 8", r)
		}
	}
}

func TestStormSmall(t *testing.T) {
	f, err := Storm(Config{Replications: 8, Seed: 16, Workers: 4, Degrees: []float64{8}}, 1 /* heterogeneous */)
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y[0]
	}
	if y["flooding delivery"] != 1 {
		t.Errorf("flooding delivery %v, want 1", y["flooding delivery"])
	}
	if y["greedy delivery"] != 1 || y["repair delivery"] != 1 {
		t.Errorf("cover-guaranteeing protocols must deliver: %v", y)
	}
	if y["skyline tx"] > y["flooding tx"] {
		t.Errorf("skyline transmissions %v exceed flooding %v", y["skyline tx"], y["flooding tx"])
	}
	if y["flooding redundant"] <= y["greedy redundant"] {
		t.Errorf("flooding redundancy %v should exceed greedy %v",
			y["flooding redundant"], y["greedy redundant"])
	}
}

func TestMobilitySmall(t *testing.T) {
	f, err := Mobility(Config{Replications: 3, Seed: 17, Workers: 2}, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	y := map[string][]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y
	}
	for i := range y["1-hop entries/step"] {
		one := y["1-hop entries/step"][i]
		two := y["2-hop entries/step"][i]
		if one <= 0 {
			t.Errorf("speed point %d: 1-hop cost %v must be positive", i, one)
		}
		if two <= one {
			t.Errorf("speed point %d: 2-hop cost %v must exceed 1-hop %v", i, two, one)
		}
	}
	// Churn and staleness are fractions.
	for _, label := range []string{"1-hop churn", "2-hop churn", "skyline set stale", "greedy set stale"} {
		for i, v := range y[label] {
			if v < 0 || v > 1 {
				t.Errorf("%s[%d] = %v out of [0, 1]", label, i, v)
			}
		}
	}
	// Faster movement must churn 1-hop tables more.
	if y["1-hop churn"][1] < y["1-hop churn"][0] {
		t.Errorf("churn should grow with speed: %v", y["1-hop churn"])
	}
	// 2-hop tables are a superset dependency: they churn at least as often.
	for i := range y["1-hop churn"] {
		if y["2-hop churn"][i] < y["1-hop churn"][i]-1e-9 {
			t.Errorf("2-hop churn %v below 1-hop churn %v at point %d",
				y["2-hop churn"][i], y["1-hop churn"][i], i)
		}
	}
}

func TestCollisionSmall(t *testing.T) {
	f, err := Collision(Config{Replications: 8, Seed: 18, Workers: 4, Degrees: []float64{8}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y[0]
	}
	for _, label := range []string{"flooding delivery", "skyline delivery", "greedy delivery"} {
		if v := y[label]; v <= 0 || v > 1 {
			t.Errorf("%s = %v out of (0, 1]", label, v)
		}
	}
	if y["greedy collisions"] >= y["flooding collisions"] {
		t.Errorf("greedy collisions %v should be below flooding %v",
			y["greedy collisions"], y["flooding collisions"])
	}
}

func TestEnergySmall(t *testing.T) {
	f, err := Energy(Config{Replications: 8, Seed: 19, Workers: 4, Degrees: []float64{8}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y[0]
	}
	if y["flooding energy"] <= y["greedy energy"] {
		t.Errorf("flooding energy %v must exceed greedy %v",
			y["flooding energy"], y["greedy energy"])
	}
	for _, label := range []string{"flooding energy/tx", "skyline energy/tx", "greedy energy/tx"} {
		// Heterogeneous radii are in [1, 2], so energy/tx ∈ [1, 4].
		if v := y[label]; v < 1 || v > 4 {
			t.Errorf("%s = %v outside [1, 4]", label, v)
		}
	}
}

func TestProtocolsSmall(t *testing.T) {
	f, err := Protocols(Config{Replications: 6, Seed: 20, Workers: 4, Degrees: []float64{8}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y[0]
	}
	// Everything except skyline must deliver fully.
	for _, label := range []string{
		"flooding delivery", "greedy-mpr delivery", "self-pruning delivery",
		"neighbor-elim delivery", "pdp delivery", "tdp delivery",
		"wuli-cds delivery", "mis-cds delivery",
	} {
		if y[label] != 1 {
			t.Errorf("%s = %v, want 1", label, y[label])
		}
	}
	// Flooding transmits the most.
	for label, v := range y {
		if len(label) > 3 && label[len(label)-2:] == "tx" && v > y["flooding tx"] {
			t.Errorf("%s = %v exceeds flooding %v", label, v, y["flooding tx"])
		}
	}
}

func TestOverheadSmall(t *testing.T) {
	f, err := Overhead(Config{Replications: 6, Seed: 21, Workers: 2, Degrees: []float64{6, 12}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := map[string][]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y
	}
	for i := range y["1-hop entries/round"] {
		if y["2-hop entries/round"][i] <= y["1-hop entries/round"][i] {
			t.Errorf("2-hop entries must exceed 1-hop at point %d", i)
		}
	}
	// The ratio grows with density (≈ 1 + degree).
	r := y["2-hop / 1-hop"]
	if r[1] <= r[0] {
		t.Errorf("overhead ratio should grow with degree: %v", r)
	}
	if r[0] < 3 || r[0] > 12 {
		t.Errorf("ratio at degree 6 = %v, want ≈ 7", r[0])
	}
}

func TestAllNodesSmall(t *testing.T) {
	f, err := AllNodes(Config{Replications: 4, Seed: 22, Workers: 2, Degrees: []float64{8}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y[0]
	}
	flood := y["flooding (all nodes)"]
	sky := y["skyline (all nodes)"]
	grd := y["greedy (all nodes)"]
	if !(flood >= sky && sky >= grd && grd > 0) {
		t.Errorf("all-nodes ordering violated: flooding %v, skyline %v, greedy %v", flood, sky, grd)
	}
	// Boundary effects pull the all-nodes flooding mean below the target
	// degree 8.
	if flood >= 8 {
		t.Errorf("all-nodes mean degree %v should sit below the interior target 8", flood)
	}
}

func TestLossySmall(t *testing.T) {
	f, err := Lossy(Config{Replications: 6, Seed: 23, Workers: 2}, 1, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	y := map[string][]float64{}
	for _, s := range f.Series {
		y[s.Label] = s.Y
	}
	// At core = 1 (perfect links) greedy delivers fully; at core = 0.5 its
	// delivery must drop below flooding's.
	if y["greedy delivery"][0] != 1 {
		t.Errorf("perfect-channel greedy delivery = %v", y["greedy delivery"][0])
	}
	if y["greedy delivery"][1] >= y["flooding delivery"][1] {
		t.Errorf("under fading, flooding (%v) must beat greedy (%v)",
			y["flooding delivery"][1], y["greedy delivery"][1])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := Figure{
		ID: "rt", Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3.5, 4}}},
		Notes:  []string{"n"},
	}
	data, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FigureFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != f.ID || len(got.Series) != 1 || got.Series[0].Y[0] != 3.5 ||
		got.Notes[0] != "n" {
		t.Errorf("round trip lost data: %+v", got)
	}
	if _, err := FigureFromJSON([]byte("{broken")); err == nil {
		t.Error("broken JSON must fail")
	}
}

func TestBars(t *testing.T) {
	f := Figure{
		ID: "b",
		Series: []Series{
			{Label: "dist", X: []float64{3, 4, 5}, Y: []float64{10, 40, 20}},
		},
	}
	out, err := f.Bars("dist", 20)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("bar chart lines = %d:\n%s", len(lines), out)
	}
	// The largest value gets the full width; half value gets half.
	if !strings.Contains(lines[2], strings.Repeat("█", 20)) {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[3], strings.Repeat("█", 10)) {
		t.Errorf("half bar wrong: %q", lines[3])
	}
	if _, err := f.Bars("nope", 10); err == nil {
		t.Error("unknown series must fail")
	}
	// Degenerate: all-zero series renders without panicking.
	zero := Figure{Series: []Series{{Label: "z", X: []float64{1}, Y: []float64{0}}}}
	if _, err := zero.Bars("z", 10); err != nil {
		t.Fatal(err)
	}
}

func TestFigureRendering(t *testing.T) {
	f := Figure{
		ID: "x", Title: "T", XLabel: "deg", YLabel: "size",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{5}},
		},
		Notes: []string{"hello"},
	}
	out := f.String()
	if !strings.Contains(out, "deg") || !strings.Contains(out, "3.000") ||
		!strings.Contains(out, "note: hello") {
		t.Errorf("rendered figure:\n%s", out)
	}
	empty := Figure{XLabel: "x"}
	if got := empty.Table().String(); !strings.Contains(got, "x") {
		t.Errorf("empty figure table: %q", got)
	}
}
