package experiments

import (
	"math/rand"

	"repro/internal/broadcast"
	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/network"
)

// Storm quantifies the broadcast storm problem of §1.2 end to end: it
// simulates a network-wide broadcast from the center node and reports, per
// mean degree, the average number of transmissions, the delivery ratio,
// and the redundant receptions for blind flooding and for forwarding-set
// relaying with the skyline, greedy, and repair selectors.
//
// The skyline curve exhibits the §5.2 drawback as a delivery ratio below 1
// in heterogeneous networks; repair restores ratio 1 at a small
// transmission premium.
func Storm(cfg Config, model deploy.RadiusModel) (Figure, error) {
	cfg = cfg.normalized()
	type proto struct {
		name string
		sel  forwarding.Selector // nil = blind flooding
	}
	protos := []proto{
		{"flooding", nil},
		{"skyline", forwarding.Skyline{}},
		{"greedy", forwarding.Greedy{}},
		{"repair", forwarding.SkylineRepair{}},
	}
	tx := make([]Series, len(protos))
	ratio := make([]Series, len(protos))
	redundant := make([]Series, len(protos))
	for i, p := range protos {
		tx[i] = Series{Label: p.name + " tx"}
		ratio[i] = Series{Label: p.name + " delivery"}
		redundant[i] = Series{Label: p.name + " redundant"}
	}
	for _, degree := range cfg.Degrees {
		sums := make([][3][]float64, len(protos))
		for i := range sums {
			for k := 0; k < 3; k++ {
				sums[i][k] = make([]float64, cfg.Replications)
			}
		}
		dcfg := deploy.PaperConfig(model, degree)
		err := forEachReplication(cfg, func(rep int, rng *rand.Rand) error {
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return err
			}
			g, err := network.Build(nodes, network.Bidirectional)
			if err != nil {
				return err
			}
			for i, p := range protos {
				res, err := broadcast.Run(g, 0, p.sel)
				if err != nil {
					return err
				}
				sums[i][0][rep] = float64(res.Transmissions)
				sums[i][1][rep] = res.DeliveryRatio()
				sums[i][2][rep] = float64(res.Redundant)
			}
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		for i := range protos {
			tx[i].X = append(tx[i].X, degree)
			tx[i].Y = append(tx[i].Y, mean(sums[i][0]))
			ratio[i].X = append(ratio[i].X, degree)
			ratio[i].Y = append(ratio[i].Y, mean(sums[i][1]))
			redundant[i].X = append(redundant[i].X, degree)
			redundant[i].Y = append(redundant[i].Y, mean(sums[i][2]))
		}
	}
	series := make([]Series, 0, 3*len(protos))
	series = append(series, tx...)
	series = append(series, ratio...)
	series = append(series, redundant...)
	return Figure{
		ID:     "storm-" + model.String(),
		Title:  "Broadcast storm metrics (" + model.String() + " networks)",
		XLabel: "mean 1-hop neighbors",
		YLabel: "transmissions / delivery ratio / redundant receptions",
		Series: series,
		Notes: []string{
			"motivating experiment for §1.2; not a figure in the paper",
			"skyline delivery < 1 in heterogeneous networks is the §5.2 drawback",
		},
	}, nil
}
