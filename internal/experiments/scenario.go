package experiments

import (
	"encoding/json"
	"fmt"
)

// Scenario is a declarative experiment suite: a JSON document listing
// which experiments to run and with what configuration, so a full
// reproduction campaign is a single reviewable file instead of a shell
// script. The CLI's -scenario flag executes one.
//
// Example:
//
//	{
//	  "name": "paper-reproduction",
//	  "replications": 200,
//	  "seed": 1,
//	  "experiments": [
//	    {"id": "fig5.1"},
//	    {"id": "fig5.4", "degrees": [4, 8, 12, 16, 20, 24]},
//	    {"id": "fig5.6", "replications": 500}
//	  ]
//	}
type Scenario struct {
	// Name labels the suite in output.
	Name string `json:"name"`
	// Replications, Seed, Workers, and Degrees are suite-wide defaults;
	// zero values fall back to the paper's defaults.
	Replications int       `json:"replications,omitempty"`
	Seed         int64     `json:"seed,omitempty"`
	Workers      int       `json:"workers,omitempty"`
	Degrees      []float64 `json:"degrees,omitempty"`
	// Experiments lists the runs, in order.
	Experiments []ScenarioExperiment `json:"experiments"`
}

// ScenarioExperiment is one entry of a scenario; per-experiment fields
// override the suite defaults when non-zero.
type ScenarioExperiment struct {
	ID           string    `json:"id"`
	Replications int       `json:"replications,omitempty"`
	Seed         int64     `json:"seed,omitempty"`
	Degrees      []float64 `json:"degrees,omitempty"`
}

// ParseScenario decodes and validates a scenario document. runnable must
// report whether an experiment ID exists (the facade's RunExperiment
// dispatcher decides that); pass nil to skip ID validation.
func ParseScenario(data []byte, runnable func(id string) bool) (Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return Scenario{}, fmt.Errorf("experiments: parsing scenario: %w", err)
	}
	if len(sc.Experiments) == 0 {
		return Scenario{}, fmt.Errorf("experiments: scenario %q lists no experiments", sc.Name)
	}
	if sc.Replications < 0 {
		return Scenario{}, fmt.Errorf("experiments: negative replications")
	}
	for i, e := range sc.Experiments {
		if e.ID == "" {
			return Scenario{}, fmt.Errorf("experiments: scenario entry %d has no id", i)
		}
		if runnable != nil && !runnable(e.ID) {
			return Scenario{}, fmt.Errorf("experiments: scenario entry %d: unknown experiment %q", i, e.ID)
		}
		if e.Replications < 0 {
			return Scenario{}, fmt.Errorf("experiments: entry %d: negative replications", i)
		}
	}
	return sc, nil
}

// ConfigFor materializes the effective Config of one scenario entry.
func (sc Scenario) ConfigFor(e ScenarioExperiment) Config {
	cfg := Config{
		Replications: sc.Replications,
		Seed:         sc.Seed,
		Workers:      sc.Workers,
		Degrees:      sc.Degrees,
	}
	if e.Replications > 0 {
		cfg.Replications = e.Replications
	}
	if e.Seed != 0 {
		cfg.Seed = e.Seed
	}
	if len(e.Degrees) > 0 {
		cfg.Degrees = e.Degrees
	}
	return cfg.normalized()
}

// Run executes every entry with the given runner (typically the facade's
// RunExperiment) and returns the figures in order. The first failure
// aborts the suite.
func (sc Scenario) Run(runner func(id string, cfg Config) (Figure, error)) ([]Figure, error) {
	figs := make([]Figure, 0, len(sc.Experiments))
	for i, e := range sc.Experiments {
		fig, err := runner(e.ID, sc.ConfigFor(e))
		if err != nil {
			return figs, fmt.Errorf("experiments: scenario entry %d (%s): %w", i, e.ID, err)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
