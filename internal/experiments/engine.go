package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/deploy"
	"repro/internal/engine"
	"repro/internal/mldcs"
	"repro/internal/network"
)

// EngineScaling compares the batched whole-network engine against the
// sequential per-node pipeline (network.Build + Graph.LocalSet +
// mldcs.Solve) across network sizes at the paper's heterogeneous density.
// For each size it reports both wall times, the speedup, and the engine's
// cache hit ratio, and it verifies on every replication that the two
// pipelines produce element-identical forwarding sets — the experiment
// doubles as a large-scale differential test.
func EngineScaling(cfg Config, sizes []int) (Figure, error) {
	cfg = cfg.normalized()
	if len(sizes) == 0 {
		sizes = []int{1000, 3000, 10000}
	}
	const degree = 10
	seq := Series{Label: "sequential ms"}
	eng := Series{Label: "engine ms"}
	speedup := Series{Label: "speedup ×"}
	hitRatio := Series{Label: "cache hit %"}

	reps := cfg.Replications
	if reps > 5 {
		reps = 5 // timing runs need far fewer replications than statistics
	}
	for _, n := range sizes {
		dcfg := deploy.PaperConfig(deploy.Heterogeneous, degree)
		// Invert NodeCount: scale the region so the calibrated density
		// yields ≈ n nodes at the target degree.
		dcfg.Side = math.Sqrt(float64(n) * math.Pi * dcfg.ExpectedMinRadiusSq() / degree)
		var tSeq, tEng time.Duration
		var hits, misses int64
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
			nodes, err := deploy.Generate(dcfg, rng)
			if err != nil {
				return Figure{}, err
			}

			start := time.Now()
			fwd, err := sequentialForwardingSets(nodes)
			if err != nil {
				return Figure{}, err
			}
			tSeq += time.Since(start)

			e := engine.New(engine.Config{Workers: cfg.Workers, Cache: true})
			start = time.Now()
			res, err := e.Compute(nodes)
			if err != nil {
				return Figure{}, err
			}
			tEng += time.Since(start)
			hits += res.Stats.CacheHits
			misses += res.Stats.CacheMisses

			for u := range nodes {
				if !intsEqual(res.Forwarding[u], fwd[u]) {
					return Figure{}, fmt.Errorf(
						"engine-scaling: n=%d rep=%d node %d: engine %v != sequential %v",
						n, rep, u, res.Forwarding[u], fwd[u])
				}
			}
		}
		x := float64(n)
		seq.X = append(seq.X, x)
		seq.Y = append(seq.Y, float64(tSeq.Milliseconds())/float64(reps))
		eng.X = append(eng.X, x)
		eng.Y = append(eng.Y, float64(tEng.Milliseconds())/float64(reps))
		speedup.X = append(speedup.X, x)
		if tEng > 0 {
			speedup.Y = append(speedup.Y, float64(tSeq)/float64(tEng))
		} else {
			speedup.Y = append(speedup.Y, 0)
		}
		hitRatio.X = append(hitRatio.X, x)
		if total := hits + misses; total > 0 {
			hitRatio.Y = append(hitRatio.Y, 100*float64(hits)/float64(total))
		} else {
			hitRatio.Y = append(hitRatio.Y, 0)
		}
	}
	return Figure{
		ID:     "engine-scaling",
		Title:  "Whole-network engine vs sequential per-node MLDCS",
		XLabel: "nodes n",
		YLabel: "time / ratio",
		Series: []Series{seq, eng, speedup, hitRatio},
		Notes: []string{
			fmt.Sprintf("engine ran with %d workers; speedup scales with cores (sequential baseline is single-threaded)", cfg.Workers),
			"every replication cross-checked element-identical forwarding sets",
			"cache hit % is near zero on uniform random deployments by design (exact-bit fingerprints); see docs/TESTING.md",
		},
	}, nil
}

// sequentialForwardingSets is the pre-engine reference pipeline, timed as a
// unit: graph construction plus one mldcs.Solve per node.
func sequentialForwardingSets(nodes []network.Node) ([][]int, error) {
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		return nil, err
	}
	fwd := make([][]int, g.Len())
	for u := 0; u < g.Len(); u++ {
		ls, ids, err := g.LocalSet(u)
		if err != nil {
			return nil, err
		}
		r, err := mldcs.Solve(ls)
		if err != nil {
			return nil, err
		}
		set := make([]int, 0, len(r.Cover))
		for _, i := range r.NeighborCover() {
			set = append(set, ids[i])
		}
		fwd[u] = set
	}
	return fwd, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
