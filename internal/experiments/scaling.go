package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/skyline"
)

// Scaling validates Theorem 9 empirically: the divide-and-conquer skyline
// runs in O(n log n). For each input size it times the divide-and-conquer,
// incremental, and (up to a cutoff) naive algorithms on random
// heterogeneous local disk sets, and records the skyline arc count against
// Lemma 8's 2n bound. The reported series are per-run times in
// microseconds and the normalized time t/(n·log₂ n) in nanoseconds, which
// should approach a constant for an O(n log n) algorithm.
func Scaling(cfg Config, sizes []int, naiveCutoff int) (Figure, error) {
	cfg = cfg.normalized()
	if len(sizes) == 0 {
		sizes = []int{64, 128, 256, 512, 1024, 2048, 4096}
	}
	if naiveCutoff <= 0 {
		naiveCutoff = 1024
	}
	dnc := Series{Label: "dnc µs"}
	inc := Series{Label: "incremental µs"}
	naive := Series{Label: "naive µs"}
	norm := Series{Label: "dnc ns/(n·lg n)"}
	arcs := Series{Label: "arcs / 2n"}

	rng := rand.New(rand.NewSource(cfg.Seed))
	reps := cfg.Replications
	if reps > 20 {
		reps = 20 // timing runs need far fewer replications than statistics
	}
	for _, n := range sizes {
		var tDnc, tInc, tNaive time.Duration
		arcRatio := 0.0
		naiveRuns := 0
		for rep := 0; rep < reps; rep++ {
			disks := randomLocalDisks(rng, n)
			start := time.Now()
			sl, err := skyline.Compute(disks)
			if err != nil {
				return Figure{}, err
			}
			tDnc += time.Since(start)
			arcRatio += float64(sl.ArcCount()) / float64(2*n)
			if sl.ArcCount() > 2*n {
				return Figure{}, fmt.Errorf("scaling: Lemma 8 violated at n=%d: %d arcs", n, sl.ArcCount())
			}

			start = time.Now()
			if _, err := skyline.ComputeIncremental(disks); err != nil {
				return Figure{}, err
			}
			tInc += time.Since(start)

			// The naive oracle is O(n² log n); cap both its size and its
			// repetitions so the scaling experiment stays interactive.
			if n <= naiveCutoff && naiveRuns < 3 {
				start = time.Now()
				if _, err := skyline.ComputeNaive(disks); err != nil {
					return Figure{}, err
				}
				tNaive += time.Since(start)
				naiveRuns++
			}
		}
		x := float64(n)
		dnc.X = append(dnc.X, x)
		dnc.Y = append(dnc.Y, float64(tDnc.Microseconds())/float64(reps))
		inc.X = append(inc.X, x)
		inc.Y = append(inc.Y, float64(tInc.Microseconds())/float64(reps))
		if naiveRuns > 0 {
			naive.X = append(naive.X, x)
			naive.Y = append(naive.Y, float64(tNaive.Microseconds())/float64(naiveRuns))
		}
		norm.X = append(norm.X, x)
		norm.Y = append(norm.Y, float64(tDnc.Nanoseconds())/float64(reps)/(x*math.Log2(x)))
		arcs.X = append(arcs.X, x)
		arcs.Y = append(arcs.Y, arcRatio/float64(reps))
	}
	return Figure{
		ID:     "scaling",
		Title:  "Skyline runtime scaling (Theorem 9) and arc bound (Lemma 8)",
		XLabel: "disks n",
		YLabel: "time / ratio",
		Series: []Series{dnc, inc, naive, norm, arcs},
		Notes: []string{
			"dnc ns/(n·lg n) should flatten for an O(n log n) algorithm",
			"arcs/2n stays ≤ 1 per Lemma 8 (typically far below: most disks are buried)",
		},
	}, nil
}

// randomLocalDisks generates n disks containing the origin with radii in
// [1, 2] (the paper's heterogeneous model).
func randomLocalDisks(rng *rand.Rand, n int) []geom.Disk {
	disks := make([]geom.Disk, n)
	for i := range disks {
		r := 1 + rng.Float64()
		dist := rng.Float64() * r * 0.999
		theta := rng.Float64() * geom.TwoPi
		disks[i] = geom.Disk{C: geom.Unit(theta).Scale(dist), R: r}
	}
	return disks
}
