package mldcsd

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/network"
)

// world is the authoritative node membership, keyed by the client-visible
// external node ID. The engine wants dense 0..n−1 IDs; world owns the
// mapping: dense index i ↔ the i-th smallest live external ID. Only the
// applier goroutine touches a world, so it needs no locking.
//
// Apply semantics are total — a batch that decoded cleanly always
// applies, so an accepted (202) ingest can never fail later:
//
//   - join   upserts: absent nodes appear, present nodes take the new
//     position and radius (a client re-announcing after a server restart
//     is a join storm; upsert makes that idempotent);
//   - move / radius on an absent node are ignored and counted (the node
//     left under a racing batch — last-writer-wins, not an error);
//   - leave of an absent node is ignored and counted.
//
// The offline oracle (internal/e2e) replays the same rules; any drift
// between this file and the oracle is exactly what the chaos harness
// exists to catch.
type world struct {
	nodes map[int64]nodeState
	// ids is the sorted live external-ID list, the dense mapping. Rebuilt
	// only when membership changes.
	ids      []int64
	idsStale bool
}

type nodeState struct {
	x, y, r float64
}

func newWorld() *world {
	return &world{nodes: make(map[int64]nodeState)}
}

// apply folds one decoded batch into the world. It reports whether
// membership changed (forcing a full engine Compute instead of an
// incremental Update) and how many deltas were ignored.
func (w *world) apply(b Batch) (membershipChanged bool, ignored int) {
	for _, d := range b.Deltas {
		switch d.Op {
		case OpJoin:
			if _, ok := w.nodes[d.Node]; !ok {
				membershipChanged = true
				w.idsStale = true
			}
			w.nodes[d.Node] = nodeState{x: *d.X, y: *d.Y, r: *d.R}
		case OpMove:
			st, ok := w.nodes[d.Node]
			if !ok {
				ignored++
				continue
			}
			st.x, st.y = *d.X, *d.Y
			w.nodes[d.Node] = st
		case OpRadius:
			st, ok := w.nodes[d.Node]
			if !ok {
				ignored++
				continue
			}
			st.r = *d.R
			w.nodes[d.Node] = st
		case OpLeave:
			if _, ok := w.nodes[d.Node]; !ok {
				ignored++
				continue
			}
			delete(w.nodes, d.Node)
			membershipChanged = true
			w.idsStale = true
		}
	}
	return membershipChanged, ignored
}

// sortedIDs returns the dense mapping: the sorted live external IDs.
// The returned slice is owned by the world; callers snapshot it.
func (w *world) sortedIDs() []int64 {
	if w.idsStale || w.ids == nil {
		w.ids = w.ids[:0]
		for id := range w.nodes {
			w.ids = append(w.ids, id)
		}
		sort.Slice(w.ids, func(i, j int) bool { return w.ids[i] < w.ids[j] })
		w.idsStale = false
	}
	return w.ids
}

// denseNodes renders the world as the engine's input: nodes with dense
// IDs in sorted-external-ID order. A fresh slice per call — the engine
// copies it, and snapshots keep their own.
func (w *world) denseNodes() []network.Node {
	ids := w.sortedIDs()
	out := make([]network.Node, len(ids))
	for i, id := range ids {
		st := w.nodes[id]
		out[i] = network.Node{ID: i, Pos: geom.Pt(st.x, st.y), Radius: st.r}
	}
	return out
}
