package mldcsd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Admission-control contract (satellite of ISSUE 7): a bounded queue
// accepts while it has room, sheds with 429 + Retry-After when full, and
// a draining server refuses new ingest with 503 while still answering
// queries and applying what it already accepted.
//
// The applier is held on a gate after dequeuing its first batch, so
// "queue depth" is exact: with QueueDepth = 4, one batch sits gated in
// the applier and four fit in the channel; the sixth accept must shed.
func TestAdmissionControlTable(t *testing.T) {
	const depth = 4
	validBatch := func(i int) string {
		return fmt.Sprintf(`{"deltas":[{"op":"join","node":%d,"x":%d,"y":0,"r":1}]}`, i, i)
	}

	cases := []struct {
		name string
		// prefill is how many batches to accept before the probe (the
		// first one parks in the gated applier).
		prefill int
		drain   bool
		// wantStatus for the probe ingest.
		wantStatus int
		wantRetry  bool
	}{
		{name: "empty queue accepts", prefill: 0, wantStatus: 202},
		{name: "half-full queue accepts", prefill: 1 + depth/2, wantStatus: 202},
		{name: "nearly full accepts the last slot", prefill: depth, wantStatus: 202},
		{name: "full queue sheds with retry-after", prefill: 1 + depth, wantStatus: 429, wantRetry: true},
		{name: "draining refuses ingest", prefill: 2, drain: true, wantStatus: 503, wantRetry: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gate := make(chan struct{})
			released := false
			release := func() {
				if !released {
					close(gate)
					released = true
				}
			}
			defer release()
			s := New(Config{QueueDepth: depth, applyGate: func() { <-gate }})
			ts := httptest.NewServer(s.Handler())
			defer func() {
				release()
				ts.Close()
				s.Close()
			}()

			for i := 0; i < tc.prefill; i++ {
				resp := postBatch(t, ts.URL, validBatch(i))
				if resp.StatusCode != 202 {
					t.Fatalf("prefill %d = %d, want 202", i, resp.StatusCode)
				}
				resp.Body.Close()
				if i == 0 {
					// Make sure the applier has dequeued batch 0 and is
					// parked on the gate before counting channel slots.
					waitQueueLen(t, s, 0)
				}
			}
			if tc.drain {
				s.BeginDrain()
			}

			resp := postBatch(t, ts.URL, validBatch(1000))
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("probe = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if tc.wantRetry {
				if ra := resp.Header.Get("Retry-After"); ra == "" {
					t.Fatal("missing Retry-After header")
				}
			}

			// Queries are served at full queues and while draining alike:
			// reads come from the published snapshot, not the queue.
			for _, path := range []string{"/v1/epoch", "/v1/state", "/healthz"} {
				qr, err := http.Get(ts.URL + path)
				if err != nil {
					t.Fatalf("GET %s during backlog: %v", path, err)
				}
				if qr.StatusCode != 200 {
					t.Fatalf("GET %s = %d during backlog", path, qr.StatusCode)
				}
				qr.Body.Close()
			}

			// Release the applier: everything accepted must still apply —
			// draining refuses new work, never drops admitted work.
			release()
			accepted := s.AcceptedSeq()
			waitApplied(t, s, accepted)
			var ep EpochResponse
			qr, err := http.Get(ts.URL + "/v1/epoch")
			if err != nil {
				t.Fatal(err)
			}
			decodeInto(t, qr, &ep)
			if ep.AppliedSeq != accepted {
				t.Fatalf("applied %d of %d accepted batches", ep.AppliedSeq, accepted)
			}
			if tc.drain && !ep.Draining {
				t.Fatal("epoch doc does not report draining")
			}
		})
	}
}

func waitQueueLen(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue len = %d, want %d", len(s.queue), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainCompletesInflightQueries pins the second half of the drain
// contract end to end: a query started before BeginDrain finishes with
// 200 even though ingest is already refused.
func TestDrainCompletesInflightQueries(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	resp := postBatch(t, ts.URL, `{"deltas":[{"op":"join","node":1,"x":0,"y":0,"r":1}]}`)
	var ack IngestResponse
	decodeInto(t, resp, &ack)
	waitApplied(t, s, ack.Seq)

	s.BeginDrain()

	// New ingest refused…
	resp = postBatch(t, ts.URL, `{"deltas":[{"op":"join","node":2,"x":1,"y":0,"r":1}]}`)
	if resp.StatusCode != 503 {
		t.Fatalf("ingest while draining = %d, want 503", resp.StatusCode)
	}
	var ed errorDoc
	if err := json.NewDecoder(resp.Body).Decode(&ed); err != nil || !strings.Contains(ed.Error, "draining") {
		t.Fatalf("draining error doc = %+v, %v", ed, err)
	}
	resp.Body.Close()

	// …but queries complete against the converged state.
	qr, err := http.Get(ts.URL + "/v1/forwarding?node=1")
	if err != nil {
		t.Fatal(err)
	}
	defer qr.Body.Close()
	if qr.StatusCode != 200 {
		t.Fatalf("query while draining = %d, want 200", qr.StatusCode)
	}
	var q QueryResponse
	if err := json.NewDecoder(qr.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Node != 1 {
		t.Fatalf("query doc = %+v", q)
	}
}
