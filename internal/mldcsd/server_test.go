package mldcsd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postBatch(t *testing.T, base string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/deltas", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitApplied polls until the published snapshot has folded seq in.
func waitApplied(t *testing.T, s *Server, seq uint64) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sn := s.Latest()
		if sn.AppliedSeq >= seq {
			return sn
		}
		if time.Now().After(deadline) {
			t.Fatalf("seq %d not applied (at %d)", seq, sn.AppliedSeq)
		}
		time.Sleep(time.Millisecond)
	}
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestServerIngestQueryLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Registry: obs.NewRegistry()})

	// A 3-node line: 10—11—12, where the ends only hear the middle.
	resp := postBatch(t, ts.URL, `{"deltas":[
		{"op":"join","node":11,"x":0,"y":0,"r":1.5},
		{"op":"join","node":10,"x":-1,"y":0,"r":1.5},
		{"op":"join","node":12,"x":1,"y":0,"r":1.5}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	var ack IngestResponse
	decodeInto(t, resp, &ack)
	sn := waitApplied(t, s, ack.Seq)
	if sn.Epoch == 0 || len(sn.IDs) != 3 {
		t.Fatalf("snapshot epoch=%d ids=%v", sn.Epoch, sn.IDs)
	}

	var q QueryResponse
	resp, err := http.Get(ts.URL + "/v1/forwarding?node=10")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("forwarding = %d", resp.StatusCode)
	}
	decodeInto(t, resp, &q)
	if len(q.Neighbors) != 1 || q.Neighbors[0] != 11 {
		t.Fatalf("node 10 neighbors = %v, want [11]", q.Neighbors)
	}
	// Node 11's forwarding set must relay through both ends' disks or its
	// own; at minimum the response is internally consistent.
	resp, err = http.Get(ts.URL + "/v1/forwarding?node=11")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &q)
	for _, f := range q.Forwarding {
		if f != 10 && f != 12 {
			t.Fatalf("node 11 forwards through non-neighbor %d", f)
		}
	}

	// Unknown and malformed node queries.
	resp, _ = http.Get(ts.URL + "/v1/forwarding?node=99")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown node = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/v1/forwarding?node=banana")
	if resp.StatusCode != 400 {
		t.Fatalf("bad node param = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Skyline of the middle node tiles [0, 2π].
	var sky SkylineResponse
	resp, err = http.Get(ts.URL + "/v1/skyline?node=11")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &sky)
	if len(sky.Arcs) == 0 {
		t.Fatal("empty skyline")
	}
	if sky.Arcs[0].Start != 0 || sky.Arcs[len(sky.Arcs)-1].End < 6.28 {
		t.Fatalf("skyline does not tile [0,2π]: %+v", sky.Arcs)
	}

	// Mobility: move node 12 out of range, then query again.
	resp = postBatch(t, ts.URL, `{"deltas":[{"op":"move","node":12,"x":50,"y":50}]}`)
	decodeInto(t, resp, &ack)
	waitApplied(t, s, ack.Seq)
	resp, _ = http.Get(ts.URL + "/v1/forwarding?node=12")
	decodeInto(t, resp, &q)
	if len(q.Neighbors) != 0 {
		t.Fatalf("moved-away node still has neighbors %v", q.Neighbors)
	}

	// Leave shrinks the state doc.
	resp = postBatch(t, ts.URL, `{"deltas":[{"op":"leave","node":12}]}`)
	decodeInto(t, resp, &ack)
	waitApplied(t, s, ack.Seq)
	var doc StateDoc
	resp, err = http.Get(ts.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &doc)
	if len(doc.Nodes) != 2 || doc.Nodes[0].ID != 10 || doc.Nodes[1].ID != 11 {
		t.Fatalf("state after leave = %+v", doc.Nodes)
	}

	// Health and metrics surfaces answer on the same mux.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{MetricIngestBatches, MetricQueueDepth, MetricEpoch} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestServerMalformedIngest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"truncated", `{"deltas":[{"op":"join","no`, 400},
		{"empty batch", `{"deltas":[]}`, 400},
		{"unknown op", `{"deltas":[{"op":"teleport","node":1,"x":0,"y":0}]}`, 400},
		{"missing radius", `{"deltas":[{"op":"join","node":1,"x":0,"y":0}]}`, 400},
		{"negative radius", `{"deltas":[{"op":"join","node":1,"x":0,"y":0,"r":-2}]}`, 400},
		{"unknown field", `{"deltas":[{"op":"join","node":1,"x":0,"y":0,"r":1,"vx":3}]}`, 400},
		{"trailing garbage", `{"deltas":[{"op":"leave","node":1}]}{"deltas":[]}`, 400},
		{"not json", `hello`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postBatch(t, ts.URL, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
		})
	}
	// Oversized bodies answer 413.
	huge := `{"deltas":[` + strings.Repeat(`{"op":"leave","node":1},`, 40000)
	huge = huge[:len(huge)-1] + `]}`
	resp := postBatch(t, ts.URL, huge)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge && resp.StatusCode != 400 {
		t.Fatalf("huge body = %d, want 413/400", resp.StatusCode)
	}
}

// TestServerEpochMonotonic pins the read contract: epochs only move
// forward, and applied_seq tracks accepted_seq after a drain.
func TestServerEpochMonotonic(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var last uint64
	var lastSeq uint64
	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"deltas":[{"op":"join","node":%d,"x":%d,"y":0,"r":1}]}`, i, i)
		resp := postBatch(t, ts.URL, body)
		var ack IngestResponse
		decodeInto(t, resp, &ack)
		if ack.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", ack.Seq, lastSeq)
		}
		lastSeq = ack.Seq
		sn := waitApplied(t, s, ack.Seq)
		if sn.Epoch < last {
			t.Fatalf("epoch went backwards: %d after %d", sn.Epoch, last)
		}
		last = sn.Epoch
	}
	var ep EpochResponse
	resp, err := http.Get(ts.URL + "/v1/epoch")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &ep)
	if ep.AppliedSeq != lastSeq || ep.AcceptedSeq != lastSeq || ep.Nodes != 20 {
		t.Fatalf("epoch doc = %+v", ep)
	}
}
