// Package mldcsd is the long-running MLDCS service: it wraps
// internal/engine in an ingest-queue + epoch-snapshot server so a live
// network can stream mobility deltas in while forwarding-set and skyline
// queries are answered concurrently, and reads never block updates.
//
// Architecture, in one paragraph: POST /v1/deltas decodes and validates a
// batch at the HTTP edge, then admission control either enqueues it on a
// bounded queue (202 + sequence number) or sheds it (429 + Retry-After
// when the queue is full, 503 while draining). A single applier goroutine
// drains the queue, coalescing up to Config.Coalesce queued batches per
// engine pass — membership changes run a full Compute, pure mobility runs
// the incremental Update — and publishes the resulting immutable Snapshot
// through an atomic pointer. Query handlers load that pointer once and
// answer entirely from it, so every response is internally consistent
// (one epoch) and the engine is only ever touched by the applier. The
// /metrics and /healthz surfaces ride the same mux via internal/obs/expo.
//
// The chaos e2e harness (internal/e2e) is the package's correctness
// gate: seeded action streams against a live server must converge to
// byte-identical state with the offline sequential oracle.
package mldcsd

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/network"
	"repro/internal/obs"
)

// Metric names exported by the service (see docs/SERVICE.md).
const (
	MetricIngestBatches   = "mldcsd_ingest_batches_total"
	MetricIngestDeltas    = "mldcsd_ingest_deltas_total"
	MetricIngestRejected  = "mldcsd_ingest_rejected_total"  // 429: queue full
	MetricIngestMalformed = "mldcsd_ingest_malformed_total" // 400/413: decode failures
	MetricIngestDraining  = "mldcsd_ingest_draining_total"  // 503: refused while draining
	MetricDeltasIgnored   = "mldcsd_deltas_ignored_total"   // move/radius/leave on absent nodes
	MetricQueueDepth      = "mldcsd_queue_depth"
	MetricIngestLag       = "mldcsd_ingest_lag_seconds" // accept → apply latency
	MetricApplySeconds    = "mldcsd_apply_seconds"      // engine pass duration
	MetricApplyCoalesced  = "mldcsd_apply_coalesced_batches"
	MetricEpoch           = "mldcsd_epoch"
	MetricEpochAge        = "mldcsd_epoch_age_seconds" // refreshed at scrape time
	MetricNodes           = "mldcsd_nodes"
	MetricQueries         = "mldcsd_queries_total"
	MetricQueryErrors     = "mldcsd_query_errors_total"
	MetricRepaired        = "mldcsd_nodes_repaired_total"   // dirty nodes patched by kinetic repair
	MetricRecomputed      = "mldcsd_nodes_recomputed_total" // dirty nodes recomputed from scratch
)

// Config parameterizes a Server. The zero value is usable: every knob
// has a production default.
type Config struct {
	// QueueDepth bounds the ingest queue; a full queue sheds load with
	// 429 + Retry-After instead of buffering without bound. Default 128.
	QueueDepth int
	// MaxBatchDeltas caps deltas per wire batch. Default 4096.
	MaxBatchDeltas int
	// MaxBodyBytes caps the ingest request body. Default 1 MiB.
	MaxBodyBytes int64
	// Coalesce caps how many queued batches one engine pass folds in.
	// Coalescing keeps ingest lag bounded under bursts: the engine runs
	// once per group, not once per batch. Default 16.
	Coalesce int
	// EngineWorkers is passed to engine.Config.Workers (≤ 0 GOMAXPROCS).
	EngineWorkers int
	// DisableCache turns the engine's skyline cache off (it defaults on:
	// mobility streams replay neighborhoods constantly).
	DisableCache bool
	// Registry receives service metrics; nil disables instrumentation.
	Registry *obs.Registry

	// applyGate, settable only by in-package tests, is called by the
	// applier after dequeuing the first batch of each group and before
	// applying it; admission tests use it to hold the queue at an exact
	// depth.
	applyGate func()
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxBatchDeltas <= 0 {
		c.MaxBatchDeltas = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Coalesce <= 0 {
		c.Coalesce = 16
	}
	return c
}

// Snapshot is one published epoch: the dense node set, its external-ID
// mapping, and the engine result computed from exactly that set. A
// snapshot is immutable; queries read one snapshot and nothing else.
//
//mldcs:immutable
type Snapshot struct {
	// Epoch is the engine pass number (engine.Result.Epoch); 0 means "no
	// batch applied yet" and carries an empty world.
	Epoch uint64
	// AppliedSeq is the highest ingest sequence folded into this epoch.
	AppliedSeq uint64
	// IDs maps dense index → external node ID (sorted ascending).
	IDs []int64
	// Nodes are the dense engine inputs, index-aligned with IDs.
	Nodes []network.Node
	// Res is the engine output for Nodes; nil only at epoch 0.
	Res *engine.Result
	// Created stamps when the snapshot was published.
	Created time.Time
}

// ingestItem is one accepted batch in flight between admission and apply.
type ingestItem struct {
	seq   uint64
	batch Batch
	enq   time.Time
}

// Server is the service core, independent of any listener: Handler()
// serves its HTTP API, and the embedding command (cmd/mldcsd) or test
// binds it via internal/httpserve or httptest.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	eng   *engine.Engine
	world *world
	queue chan ingestItem

	// mu orders admission: sequence numbers are assigned and enqueued
	// under it, so queue order equals seq order and AppliedSeq is
	// monotonic. It also latches draining so no enqueue can race the
	// queue close in Close.
	mu          sync.Mutex
	draining    bool
	closed      bool
	acceptedSeq uint64

	snap        atomic.Pointer[Snapshot]
	applierDone chan struct{}
	fatal       atomic.Pointer[string] // engine failure: served as unhealthy

	m serverMetrics
}

type serverMetrics struct {
	batches   *obs.Counter
	deltas    *obs.Counter
	rejected  *obs.Counter
	malformed *obs.Counter
	draining  *obs.Counter
	ignored   *obs.Counter
	depth     *obs.Gauge
	lag       *obs.Timer
	apply     *obs.Timer
	coalesced *obs.Histogram
	epoch     *obs.Gauge
	epochAge  *obs.Gauge
	nodes     *obs.Gauge
	queries   *obs.Counter
	queryErrs *obs.Counter
	repaired  *obs.Counter
	recomp    *obs.Counter
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		batches:   r.Counter(MetricIngestBatches),
		deltas:    r.Counter(MetricIngestDeltas),
		rejected:  r.Counter(MetricIngestRejected),
		malformed: r.Counter(MetricIngestMalformed),
		draining:  r.Counter(MetricIngestDraining),
		ignored:   r.Counter(MetricDeltasIgnored),
		depth:     r.Gauge(MetricQueueDepth),
		lag:       r.Timer(MetricIngestLag),
		apply:     r.Timer(MetricApplySeconds),
		coalesced: r.Histogram(MetricApplyCoalesced),
		epoch:     r.Gauge(MetricEpoch),
		epochAge:  r.Gauge(MetricEpochAge),
		nodes:     r.Gauge(MetricNodes),
		queries:   r.Counter(MetricQueries),
		queryErrs: r.Counter(MetricQueryErrors),
		repaired:  r.Counter(MetricRepaired),
		recomp:    r.Counter(MetricRecomputed),
	}
}

// New builds a server and starts its applier. Callers must Close it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		eng:         engine.New(engine.Config{Workers: cfg.EngineWorkers, Cache: !cfg.DisableCache}),
		world:       newWorld(),
		queue:       make(chan ingestItem, cfg.QueueDepth),
		applierDone: make(chan struct{}),
		m:           newServerMetrics(cfg.Registry),
	}
	s.snap.Store(&Snapshot{Created: time.Now()})
	s.mux = s.buildMux()
	go s.applier()
	return s
}

// Handler returns the service's full HTTP surface: the /v1 API plus
// /healthz and /metrics.
func (s *Server) Handler() http.Handler { return s.mux }

// Latest returns the currently published snapshot (never nil).
func (s *Server) Latest() *Snapshot { return s.snap.Load() }

// AcceptedSeq returns the highest ingest sequence number admitted so far.
func (s *Server) AcceptedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acceptedSeq
}

// BeginDrain moves the server into draining: new ingest is refused with
// 503 while already-accepted batches still apply and queries keep being
// served. Part of graceful shutdown; irreversible.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close drains and stops the applier: ingest is refused, every accepted
// batch is applied, and the final snapshot is published before Close
// returns. The HTTP listener (owned by the caller) should be shut down
// after Close so late queries still see the converged state.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	already := s.closed
	s.closed = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	<-s.applierDone
	if msg := s.fatal.Load(); msg != nil {
		return fmt.Errorf("mldcsd: engine failed: %s", *msg)
	}
	return nil
}

// admit runs admission control for one decoded batch. It returns the
// assigned sequence number, or an HTTP status ≠ 202 when the batch was
// refused (429 queue-full, 503 draining).
func (s *Server) admit(b Batch) (seq uint64, status int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.m.draining.Inc()
		return 0, http.StatusServiceUnavailable
	}
	select {
	case s.queue <- ingestItem{seq: s.acceptedSeq + 1, batch: b, enq: time.Now()}:
		s.acceptedSeq++
		s.m.batches.Inc()
		s.m.deltas.Add(int64(len(b.Deltas)))
		s.m.depth.Set(float64(len(s.queue)))
		return s.acceptedSeq, http.StatusAccepted
	default:
		s.m.rejected.Inc()
		return 0, http.StatusTooManyRequests
	}
}

// applier is the single consumer of the ingest queue. One iteration
// takes a group of queued batches (up to Config.Coalesce), folds them
// into the world, runs one engine pass, and publishes the snapshot.
func (s *Server) applier() {
	defer close(s.applierDone)
	for item := range s.queue {
		if s.cfg.applyGate != nil {
			s.cfg.applyGate()
		}
		group := []ingestItem{item}
	coalesce:
		for len(group) < s.cfg.Coalesce {
			select {
			case next, ok := <-s.queue:
				if !ok {
					// Queue closed mid-group: apply what we have; the
					// range loop exits on the next iteration.
					s.applyGroup(group)
					return
				}
				group = append(group, next)
			default:
				break coalesce
			}
		}
		s.applyGroup(group)
	}
}

// applyGroup folds a coalesced group into the engine and publishes the
// new epoch. An engine error (impossible for validated input — a bug) is
// latched into fatal and flips /healthz; the server keeps serving the
// last good snapshot.
func (s *Server) applyGroup(group []ingestItem) {
	sw := s.m.apply.Start()
	now := time.Now()
	membershipChanged := false
	for _, it := range group {
		s.m.lag.Observe(now.Sub(it.enq))
		changed, ignored := s.world.apply(it.batch)
		membershipChanged = membershipChanged || changed
		s.m.ignored.Add(int64(ignored))
	}
	s.m.coalesced.Observe(float64(len(group)))
	s.m.depth.Set(float64(len(s.queue)))

	dense := s.world.denseNodes()
	prev := s.snap.Load()
	var res *engine.Result
	var err error
	// Update is only legal when the previous pass saw the same membership
	// (same dense mapping); an empty world also recomputes, because the
	// engine has no grid to update against after an empty Compute.
	if membershipChanged || prev.Res == nil || len(dense) == 0 {
		res, err = s.eng.Compute(dense)
	} else {
		res, err = s.eng.Update(dense)
	}
	if err != nil {
		msg := err.Error()
		s.fatal.Store(&msg)
		sw.Stop()
		return
	}
	ids := append([]int64(nil), s.world.sortedIDs()...)
	s.snap.Store(&Snapshot{
		Epoch:      res.Epoch,
		AppliedSeq: group[len(group)-1].seq,
		IDs:        ids,
		Nodes:      dense,
		Res:        res,
		Created:    time.Now(),
	})
	s.m.epoch.Set(float64(res.Epoch))
	s.m.nodes.Set(float64(len(dense)))
	s.m.repaired.Add(int64(res.Stats.Repaired))
	s.m.recomp.Add(int64(res.Stats.Recomputed))
	sw.Stop()
}
