package mldcsd

import (
	"math"
	"strings"
	"testing"
)

// Decoder table: the named payload classes from ISSUE 7 plus the shapes
// the chaos harness throws. Accept rows must round-trip through apply;
// reject rows must produce an error (and, per the fuzz target, never a
// panic).
func TestDecodeBatchTable(t *testing.T) {
	cases := []struct {
		name, body string
		ok         bool
	}{
		{"valid mixed batch", `{"deltas":[{"op":"join","node":3,"x":1,"y":2,"r":0.5},{"op":"move","node":3,"x":2,"y":2},{"op":"radius","node":3,"r":1},{"op":"leave","node":3}]}`, true},
		{"same node moved twice", `{"deltas":[{"op":"move","node":1,"x":0,"y":0},{"op":"move","node":1,"x":1,"y":1}]}`, true},
		{"truncated", `{"deltas":[{"op":"join","node":1,"x":0`, false},
		{"empty body", ``, false},
		{"empty batch", `{"deltas":[]}`, false},
		{"null deltas", `{"deltas":null}`, false},
		{"duplicate join", `{"deltas":[{"op":"join","node":9,"x":0,"y":0,"r":1},{"op":"join","node":9,"x":1,"y":1,"r":1}]}`, false},
		{"rejoin after leave still one batch", `{"deltas":[{"op":"join","node":9,"x":0,"y":0,"r":1},{"op":"leave","node":9},{"op":"join","node":9,"x":1,"y":1,"r":1}]}`, false},
		{"nan radius via 1e999", `{"deltas":[{"op":"join","node":1,"x":0,"y":0,"r":1e999}]}`, false},
		{"negative node", `{"deltas":[{"op":"leave","node":-4}]}`, false},
		{"zero radius", `{"deltas":[{"op":"radius","node":1,"r":0}]}`, false},
		{"move with radius", `{"deltas":[{"op":"move","node":1,"x":0,"y":0,"r":1}]}`, false},
		{"radius with coords", `{"deltas":[{"op":"radius","node":1,"x":0,"r":1}]}`, false},
		{"leave with coords", `{"deltas":[{"op":"leave","node":1,"x":0}]}`, false},
		{"missing op", `{"deltas":[{"node":1}]}`, false},
		{"unknown op", `{"deltas":[{"op":"warp","node":1}]}`, false},
		{"unknown field", `{"deltas":[{"op":"leave","node":1,"ghost":true}]}`, false},
		{"trailing object", `{"deltas":[{"op":"leave","node":1}]}{"deltas":[{"op":"leave","node":2}]}`, false},
		{"array not object", `[{"op":"leave","node":1}]`, false},
		{"string coordinates", `{"deltas":[{"op":"join","node":1,"x":"0","y":0,"r":1}]}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := DecodeBatch(strings.NewReader(tc.body), 4096)
			if tc.ok && err != nil {
				t.Fatalf("DecodeBatch: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("DecodeBatch accepted %q: %+v", tc.body, b)
			}
		})
	}

	// The per-batch delta cap is enforced.
	big := `{"deltas":[` + strings.Repeat(`{"op":"leave","node":1},`, 11)
	big = big[:len(big)-1] + `]}`
	if _, err := DecodeBatch(strings.NewReader(big), 10); err == nil {
		t.Fatal("11 deltas passed a 10-delta cap")
	}
}

// FuzzDeltaDecode holds the ingest edge to its contract: arbitrary bytes
// either decode into a batch every delta of which re-validates, or they
// error — never a panic, never a silently half-valid batch. Corpus seeds
// cover the ISSUE 7 payload classes: truncated JSON, duplicate-node
// joins, and NaN/Inf-shaped coordinates (1e999 overflows float64 parsing;
// a literal NaN token is not JSON at all).
func FuzzDeltaDecode(f *testing.F) {
	seeds := []string{
		// Valid shapes, so the fuzzer starts from structure.
		`{"deltas":[{"op":"join","node":1,"x":0.5,"y":-0.25,"r":1}]}`,
		`{"deltas":[{"op":"move","node":1,"x":2,"y":3},{"op":"radius","node":1,"r":0.75},{"op":"leave","node":1}]}`,
		// Truncated payloads.
		`{"deltas":[{"op":"join","node":1,"x":0.5`,
		`{"deltas":[{"op":"move","no`,
		`{"del`,
		// Duplicate-node payloads.
		`{"deltas":[{"op":"join","node":7,"x":0,"y":0,"r":1},{"op":"join","node":7,"x":9,"y":9,"r":2}]}`,
		`{"deltas":[{"op":"move","node":7,"x":0,"y":0},{"op":"move","node":7,"x":1,"y":1}]}`,
		// NaN / Inf coordinate payloads.
		`{"deltas":[{"op":"join","node":1,"x":NaN,"y":0,"r":1}]}`,
		`{"deltas":[{"op":"join","node":1,"x":1e999,"y":0,"r":1}]}`,
		`{"deltas":[{"op":"radius","node":1,"r":-1e999}]}`,
		// Misc hostile shapes.
		`{"deltas":[{"op":"leave","node":-1}]}`,
		`{"deltas":[{"op":"join","node":18446744073709551615,"x":0,"y":0,"r":1}]}`,
		`[]`,
		`{}`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		b, err := DecodeBatch(strings.NewReader(body), 64)
		if err != nil {
			return
		}
		// Whatever the decoder accepted must satisfy the documented
		// invariants — apply() relies on them without re-checking.
		if len(b.Deltas) == 0 || len(b.Deltas) > 64 {
			t.Fatalf("accepted batch with %d deltas", len(b.Deltas))
		}
		joined := map[int64]bool{}
		for i, d := range b.Deltas {
			if d.Node < 0 {
				t.Fatalf("delta %d: negative node %d accepted", i, d.Node)
			}
			switch d.Op {
			case OpJoin:
				if joined[d.Node] {
					t.Fatalf("delta %d: duplicate join accepted", i)
				}
				joined[d.Node] = true
				mustFinite(t, d.X, d.Y)
				mustPositive(t, d.R)
			case OpMove:
				mustFinite(t, d.X, d.Y)
				if d.R != nil {
					t.Fatalf("delta %d: move with r accepted", i)
				}
			case OpRadius:
				mustPositive(t, d.R)
				if d.X != nil || d.Y != nil {
					t.Fatalf("delta %d: radius with coords accepted", i)
				}
			case OpLeave:
				if d.X != nil || d.Y != nil || d.R != nil {
					t.Fatalf("delta %d: leave with coords accepted", i)
				}
			default:
				t.Fatalf("delta %d: op %q accepted", i, d.Op)
			}
		}
		// And applying it must not panic regardless of world state.
		w := newWorld()
		w.apply(b)
		w.apply(b) // idempotence of apply against a populated world
		_ = w.denseNodes()
	})
}

func mustFinite(t *testing.T, vs ...*float64) {
	t.Helper()
	for _, v := range vs {
		if v == nil {
			t.Fatal("missing coordinate accepted")
		}
		if math.IsNaN(*v) || math.IsInf(*v, 0) {
			t.Fatalf("non-finite coordinate %v accepted", *v)
		}
	}
}

func mustPositive(t *testing.T, v *float64) {
	t.Helper()
	mustFinite(t, v)
	if !(*v > 0) {
		t.Fatalf("non-positive radius %v accepted", *v)
	}
}
