package mldcsd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/mldcs"
	"repro/internal/obs/expo"
)

// buildMux assembles the full HTTP surface. Every query handler loads
// the published snapshot exactly once and answers from it alone, so a
// response can never mix epochs no matter how the applier races it.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/deltas", s.handleDeltas)
	mux.HandleFunc("/v1/forwarding", s.handleForwarding)
	mux.HandleFunc("/v1/skyline", s.handleSkyline)
	mux.HandleFunc("/v1/state", s.handleState)
	mux.HandleFunc("/v1/epoch", s.handleEpoch)
	mux.Handle("/healthz", s.healthHandler())
	// The expo exposition reads gauges at scrape time; refresh the
	// snapshot-age gauge first so "how stale are reads" is one scrape.
	metricsInner := expo.Handler(s.cfg.Registry)
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.epochAge.Set(time.Since(s.snap.Load().Created).Seconds())
		s.m.depth.Set(float64(len(s.queue)))
		metricsInner.ServeHTTP(w, r)
	}))
	return mux
}

// IngestResponse is the 202 body for POST /v1/deltas.
type IngestResponse struct {
	// Seq is the batch's ingest sequence number; the batch is converged
	// once GET /v1/epoch reports applied_seq ≥ Seq.
	Seq uint64 `json:"seq"`
}

// EpochResponse is the GET /v1/epoch body — the convergence probe the
// harness drains against.
type EpochResponse struct {
	Epoch       uint64 `json:"epoch"`
	AppliedSeq  uint64 `json:"applied_seq"`
	AcceptedSeq uint64 `json:"accepted_seq"`
	QueueLen    int    `json:"queue_len"`
	Nodes       int    `json:"nodes"`
	Draining    bool   `json:"draining"`
}

// QueryResponse is the GET /v1/forwarding body.
type QueryResponse struct {
	Epoch      uint64  `json:"epoch"`
	Node       int64   `json:"node"`
	Neighbors  []int64 `json:"neighbors"`
	Forwarding []int64 `json:"forwarding"`
	HubInCover bool    `json:"hub_in_cover"`
}

// SkylineArc is one arc of a node's skyline: the angular interval (at
// the hub, radians in [0, 2π]) covered by the given node's disk.
type SkylineArc struct {
	Node  int64   `json:"node"` // disk owner; the queried node itself for hub arcs
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// SkylineResponse is the GET /v1/skyline body.
type SkylineResponse struct {
	Epoch uint64       `json:"epoch"`
	Node  int64        `json:"node"`
	Arcs  []SkylineArc `json:"arcs"`
}

func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	b, err := DecodeBatch(body, s.cfg.MaxBatchDeltas)
	if err != nil {
		s.m.malformed.Inc()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	seq, status := s.admit(b)
	switch status {
	case http.StatusAccepted:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Seq: seq})
	case http.StatusTooManyRequests:
		// The queue drains at apply speed; one second is a safe, honest
		// hint for a saturated applier without tracking rates.
		w.Header().Set("Retry-After", "1")
		httpError(w, status, "ingest queue full")
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "5")
		httpError(w, status, "draining: no new ingest")
	default:
		httpError(w, status, "ingest refused")
	}
}

func (s *Server) handleForwarding(w http.ResponseWriter, r *http.Request) {
	s.m.queries.Inc()
	sn := s.snap.Load()
	id, dense, ok := s.lookupNode(w, r, sn)
	if !ok {
		return
	}
	writeJSON(w, QueryResponse{
		Epoch:      sn.Epoch,
		Node:       id,
		Neighbors:  mapIDs(sn.Res.Neighbors[dense], sn.IDs),
		Forwarding: mapIDs(sn.Res.Forwarding[dense], sn.IDs),
		HubInCover: sn.Res.HubInCover[dense],
	})
}

func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	s.m.queries.Inc()
	sn := s.snap.Load()
	id, dense, ok := s.lookupNode(w, r, sn)
	if !ok {
		return
	}
	// The engine result keeps forwarding sets, not arc lists, so the
	// skyline is re-derived from the snapshot's local set. Read-only on
	// snapshot data: allocation per request, zero contention.
	var ls mldcs.LocalSet
	ls.Hub = sn.Nodes[dense].Disk()
	nbrs := sn.Res.Neighbors[dense]
	for _, v := range nbrs {
		ls.Neighbors = append(ls.Neighbors, sn.Nodes[v].Disk())
	}
	res, err := mldcs.Solve(ls)
	if err != nil {
		s.m.queryErrs.Inc()
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("skyline solve: %v", err))
		return
	}
	arcs := make([]SkylineArc, 0, len(res.Skyline))
	for _, a := range res.Skyline {
		owner := id
		if a.Disk > 0 {
			owner = sn.IDs[nbrs[a.Disk-1]]
		}
		arcs = append(arcs, SkylineArc{Node: owner, Start: a.Start, End: a.End})
	}
	writeJSON(w, SkylineResponse{Epoch: sn.Epoch, Node: id, Arcs: arcs})
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	s.m.queries.Inc()
	writeJSON(w, stateDoc(s.snap.Load()))
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	writeJSON(w, EpochResponse{
		Epoch:       sn.Epoch,
		AppliedSeq:  sn.AppliedSeq,
		AcceptedSeq: s.AcceptedSeq(),
		QueueLen:    len(s.queue),
		Nodes:       len(sn.IDs),
		Draining:    s.Draining(),
	})
}

func (s *Server) healthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if msg := s.fatal.Load(); msg != nil {
			httpError(w, http.StatusInternalServerError, "engine failed: "+*msg)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// lookupNode parses ?node= and resolves it against the snapshot's dense
// mapping, writing the 400/404 itself when it fails.
func (s *Server) lookupNode(w http.ResponseWriter, r *http.Request, sn *Snapshot) (id int64, dense int, ok bool) {
	raw := r.URL.Query().Get("node")
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id < 0 {
		s.m.queryErrs.Inc()
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad node %q", raw))
		return 0, 0, false
	}
	dense = sort.Search(len(sn.IDs), func(i int) bool { return sn.IDs[i] >= id })
	if sn.Res == nil || dense >= len(sn.IDs) || sn.IDs[dense] != id {
		s.m.queryErrs.Inc()
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown node %d at epoch %d", id, sn.Epoch))
		return 0, 0, false
	}
	return id, dense, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

type errorDoc struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorDoc{Error: msg})
}
