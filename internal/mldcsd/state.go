package mldcsd

// The canonical converged-state document. Both the live server
// (GET /v1/state) and the offline sequential oracle (internal/e2e)
// render their answer through these exact types and CanonicalNodes, so
// "the service converged correctly" is a byte comparison of two JSON
// marshals — no tolerance, no field-by-field diffing to get subtly wrong.

// NodeState is one node's converged answer, keyed by external ID.
type NodeState struct {
	ID int64   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	R  float64 `json:"r"`
	// Neighbors are the bidirectional 1-hop neighbors, as external IDs,
	// sorted ascending. Always non-nil so it marshals as [].
	Neighbors []int64 `json:"neighbors"`
	// Forwarding is the MLDCS forwarding set (the paper's relay set), as
	// external IDs, sorted ascending. Always non-nil.
	Forwarding []int64 `json:"forwarding"`
	// HubInCover reports whether the node's own disk is in its minimum
	// local disk cover set.
	HubInCover bool `json:"hub_in_cover"`
}

// StateDoc is the GET /v1/state response.
type StateDoc struct {
	Epoch      uint64      `json:"epoch"`
	AppliedSeq uint64      `json:"applied_seq"`
	Nodes      []NodeState `json:"nodes"`
}

// CanonicalNodes maps dense per-node results to the canonical NodeState
// list: ids is the dense→external mapping (sorted ascending), and
// neighbors/forwarding/hubIn are dense-indexed, with neighbor lists in
// dense indices. Dense order is sorted external-ID order, so ascending
// dense indices map to ascending external IDs and every output list is
// sorted by construction.
func CanonicalNodes(ids []int64, xs, ys, rs []float64, neighbors, forwarding [][]int, hubIn []bool) []NodeState {
	out := make([]NodeState, len(ids))
	for i, id := range ids {
		out[i] = NodeState{
			ID:         id,
			X:          xs[i],
			Y:          ys[i],
			R:          rs[i],
			Neighbors:  mapIDs(neighbors[i], ids),
			Forwarding: mapIDs(forwarding[i], ids),
			HubInCover: hubIn[i],
		}
	}
	return out
}

func mapIDs(dense []int, ids []int64) []int64 {
	out := make([]int64, 0, len(dense))
	for _, d := range dense {
		out = append(out, ids[d])
	}
	return out
}

// stateDoc renders a snapshot as the canonical document.
func stateDoc(sn *Snapshot) StateDoc {
	doc := StateDoc{Epoch: sn.Epoch, AppliedSeq: sn.AppliedSeq, Nodes: []NodeState{}}
	if sn.Res == nil || len(sn.IDs) == 0 {
		return doc
	}
	n := len(sn.IDs)
	xs := make([]float64, n)
	ys := make([]float64, n)
	rs := make([]float64, n)
	for i, nd := range sn.Nodes {
		xs[i], ys[i], rs[i] = nd.Pos.X, nd.Pos.Y, nd.Radius
	}
	doc.Nodes = CanonicalNodes(sn.IDs, xs, ys, rs, sn.Res.Neighbors, sn.Res.Forwarding, sn.Res.HubInCover)
	return doc
}
