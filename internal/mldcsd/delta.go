package mldcsd

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Delta ops accepted on the wire. The vocabulary is exactly the mobility
// events the paper's §5.1.1 maintenance argument covers: a node moves, a
// node appears, a node disappears, a node retunes its transmission power.
const (
	OpJoin   = "join"   // upsert a node with position and radius
	OpMove   = "move"   // reposition an existing node
	OpRadius = "radius" // change an existing node's transmission radius
	OpLeave  = "leave"  // remove a node
)

// Delta is one mobility event. Coordinate fields are pointers so the
// decoder can tell "absent" from "zero" and reject under-specified
// events instead of silently defaulting them.
type Delta struct {
	Op   string   `json:"op"`
	Node int64    `json:"node"`
	X    *float64 `json:"x,omitempty"`
	Y    *float64 `json:"y,omitempty"`
	R    *float64 `json:"r,omitempty"`
}

// Batch is the ingest wire format: one POST /v1/deltas body.
type Batch struct {
	Deltas []Delta `json:"deltas"`
}

// DecodeBatch parses and validates one delta batch from r. It is strict
// by design — this is the service's untrusted input edge, and the fuzz
// target (FuzzDeltaDecode) holds it to "reject, never panic":
//
//   - the body must be exactly one JSON object with no unknown fields and
//     no trailing data;
//   - every delta needs a known op and a non-negative node ID;
//   - join requires finite x, y and a positive finite r; move requires
//     finite x, y and no r; radius requires a positive finite r and no
//     x/y; leave takes no coordinates — extra fields for the op are
//     rejected, not ignored;
//   - two joins for the same node in one batch are rejected (the batch
//     would be order-ambiguous to a reader);
//   - empty batches and batches over maxDeltas are rejected.
//
// NaN and ±Inf cannot be produced by JSON number literals, but values
// like 1e999 decode errors and any future non-JSON transport could smuggle
// them, so finiteness is checked explicitly rather than assumed.
func DecodeBatch(r io.Reader, maxDeltas int) (Batch, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b Batch
	if err := dec.Decode(&b); err != nil {
		return Batch{}, fmt.Errorf("decode batch: %w", err)
	}
	// Reject trailing data: "{...}{...}" or "{...}garbage" is a framing
	// bug on the client, not a second batch.
	if _, err := dec.Token(); err != io.EOF {
		return Batch{}, fmt.Errorf("decode batch: trailing data after batch object")
	}
	if len(b.Deltas) == 0 {
		return Batch{}, fmt.Errorf("decode batch: empty batch")
	}
	if len(b.Deltas) > maxDeltas {
		return Batch{}, fmt.Errorf("decode batch: %d deltas exceeds the %d per-batch limit", len(b.Deltas), maxDeltas)
	}
	var joined map[int64]bool
	for i, d := range b.Deltas {
		if err := validateDelta(d); err != nil {
			return Batch{}, fmt.Errorf("delta %d: %w", i, err)
		}
		if d.Op == OpJoin {
			if joined[d.Node] {
				return Batch{}, fmt.Errorf("delta %d: duplicate join for node %d in one batch", i, d.Node)
			}
			if joined == nil {
				joined = make(map[int64]bool)
			}
			joined[d.Node] = true
		}
	}
	return b, nil
}

func validateDelta(d Delta) error {
	if d.Node < 0 {
		return fmt.Errorf("negative node ID %d", d.Node)
	}
	switch d.Op {
	case OpJoin:
		if err := needFinite("x", d.X); err != nil {
			return err
		}
		if err := needFinite("y", d.Y); err != nil {
			return err
		}
		return needPositive("r", d.R)
	case OpMove:
		if d.R != nil {
			return fmt.Errorf("move carries r (use a radius delta)")
		}
		if err := needFinite("x", d.X); err != nil {
			return err
		}
		return needFinite("y", d.Y)
	case OpRadius:
		if d.X != nil || d.Y != nil {
			return fmt.Errorf("radius carries coordinates (use a move delta)")
		}
		return needPositive("r", d.R)
	case OpLeave:
		if d.X != nil || d.Y != nil || d.R != nil {
			return fmt.Errorf("leave carries coordinates")
		}
		return nil
	case "":
		return fmt.Errorf("missing op")
	default:
		return fmt.Errorf("unknown op %q", d.Op)
	}
}

func needFinite(name string, v *float64) error {
	if v == nil {
		return fmt.Errorf("missing %s", name)
	}
	if math.IsNaN(*v) || math.IsInf(*v, 0) {
		return fmt.Errorf("non-finite %s %v", name, *v)
	}
	return nil
}

func needPositive(name string, v *float64) error {
	if err := needFinite(name, v); err != nil {
		return err
	}
	if !(*v > 0) {
		return fmt.Errorf("non-positive %s %v", name, *v)
	}
	return nil
}
