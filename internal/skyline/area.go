package skyline

import (
	"math"

	"repro/internal/geom"
)

// Area returns the exact area of the union of the local disk set the
// skyline was computed from. Because the union is star-shaped around the
// hub, it decomposes into one "pie slice" per skyline arc: the triangle
// spanned by the hub and the arc's endpoints, plus the circular segment
// between the chord and the arc. Both have closed forms, so the area is
// exact up to floating-point rounding — no sampling involved.
//
// disks must be the slice the skyline was computed over (hub frame).
func (s Skyline) Area(disks []geom.Disk) float64 {
	total := 0.0
	for _, a := range s {
		// Subdivide so each piece's central sweep stays strictly inside
		// (0, 2π): a full-circle arc has coincident endpoints whose chord
		// carries no orientation, which would fold the central angle to 0.
		pieces := int(math.Ceil(a.Span() / (math.Pi / 2)))
		if pieces < 1 {
			pieces = 1
		}
		step := a.Span() / float64(pieces)
		for k := 0; k < pieces; k++ {
			lo := a.Start + float64(k)*step
			hi := lo + step
			if k == pieces-1 {
				hi = a.End
			}
			total += sliceArea(disks[a.Disk], lo, hi)
		}
	}
	return total
}

// sliceArea computes the area of the region bounded by the two rays from
// the origin at angles a1, a2 and the arc of disk d between them (the arc
// being the far boundary, per the skyline construction).
func sliceArea(d geom.Disk, a1, a2 float64) float64 {
	p1 := geom.Unit(a1).Scale(d.RayDist(a1))
	p2 := geom.Unit(a2).Scale(d.RayDist(a2))
	// Triangle (o, p1, p2): half the cross product. The skyline walks
	// counterclockwise, so the cross product is non-negative up to
	// rounding.
	tri := p1.Cross(p2) / 2
	// Circular segment between chord p1→p2 and the arc, measured at the
	// disk's own center. The central angle is the ccw sweep from p1 to p2
	// around d.C; Corollary 2 keeps it in [0, 2π).
	phi := geom.CCWDelta(p1.Sub(d.C).Angle(), p2.Sub(d.C).Angle())
	seg := d.R * d.R / 2 * (phi - math.Sin(phi))
	return tri + seg
}
