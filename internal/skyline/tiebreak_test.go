package skyline

import (
	"testing"

	"repro/internal/geom"
)

// These tests pin the envelope tie-breaking behavior after the private
// tieEps constant was folded into geom.RhoEps (the unified epsilon
// policy, docs/NUMERICS.md): ρ values within RhoEps are a tie, resolved
// canonically by larger radius, then lower index.

// TestRhoTieBreakWithinRhoEps: two distinct disks whose ρ values at a
// probe angle differ by less than geom.RhoEps must tie, and the tie must
// go to the larger radius regardless of index order.
func TestRhoTieBreakWithinRhoEps(t *testing.T) {
	// Concentric disks at the origin: ρ ≡ R for every angle. Radii within
	// RhoEps/2 of each other tie everywhere; radius order decides.
	big := geom.Disk{C: geom.Pt(0, 0), R: 1 + geom.RhoEps/2}
	small := geom.Disk{C: geom.Pt(0, 0), R: 1}

	_, arg := Rho([]geom.Disk{small, big}, 0.7)
	if arg != 1 {
		t.Errorf("tie at θ=0.7 went to disk %d, want 1 (larger radius)", arg)
	}
	_, arg = Rho([]geom.Disk{big, small}, 0.7)
	if arg != 0 {
		t.Errorf("tie with order swapped went to disk %d, want 0 (larger radius)", arg)
	}
}

// TestRhoTieBreakLowerIndexOnEqualRadius: exact duplicates tie on radius
// too, so the lower index wins — the determinism every algorithm in this
// package (and the engine's canonical cache ordering) relies on.
func TestRhoTieBreakLowerIndexOnEqualRadius(t *testing.T) {
	d := geom.Disk{C: geom.Pt(0.3, 0.1), R: 1.5}
	for _, theta := range []float64{0, 1, 2.5, 4, 6} {
		if _, arg := Rho([]geom.Disk{d, d, d}, theta); arg != 0 {
			t.Errorf("θ=%g: duplicate-disk tie went to %d, want 0 (lowest index)", theta, arg)
		}
	}
}

// TestRhoBeyondRhoEpsIsNotATie: a ρ gap of 3·RhoEps must NOT invoke the
// tie-break — the strictly larger value wins even when the loser has the
// bigger radius. This pins the tolerance magnitude itself: loosening
// RhoEps would flip this test.
func TestRhoBeyondRhoEpsIsNotATie(t *testing.T) {
	big := geom.Disk{C: geom.Pt(0, 0), R: 1}
	// Slightly larger concentric envelope with a smaller... impossible for
	// concentric; instead use a bigger-ρ disk with smaller radius: shift a
	// small disk so its far boundary at θ=0 sticks out past the big one.
	small := geom.Disk{C: geom.Pt(3*geom.RhoEps, 0), R: 1}
	// ρ_small(0) = 1 + 3·RhoEps > ρ_big(0) + RhoEps.
	_, arg := Rho([]geom.Disk{big, small}, 0)
	if arg != 1 {
		t.Errorf("clear winner lost to the tie-break: arg = %d, want 1", arg)
	}
}

// TestWinnerAgreesWithRho: the pairwise winner used by the merge must
// agree with the full-envelope argmax on tied and untied configurations,
// or the divide-and-conquer and naive algorithms could pick different
// representatives for the same boundary ray.
func TestWinnerAgreesWithRho(t *testing.T) {
	disks := []geom.Disk{
		{C: geom.Pt(0, 0), R: 1},
		{C: geom.Pt(0, 0), R: 1},               // duplicate of 0
		{C: geom.Pt(0.2, 0), R: 1.1},           // distinct generic disk
		{C: geom.Pt(0, 0), R: 1 + geom.RhoEps}, // ties with 0 and 1, larger R
	}
	for _, theta := range []float64{0, 0.9, 2, 3.7, 5.5} {
		_, want := Rho(disks, theta)
		got := 0
		for i := 1; i < len(disks); i++ {
			got = winner(disks, got, i, theta)
		}
		if got != want {
			t.Errorf("θ=%g: pairwise winner chain = %d, Rho argmax = %d", theta, got, want)
		}
	}
}
