package skyline

import (
	"sync"

	"repro/internal/geom"
)

// Scratch holds the reusable working memory of one skyline computation:
// the breakpoint buffer of the linear Merge, the arc arena the iterative
// divide-and-conquer stacks its intermediate skylines in, the span buffer
// each merge writes before the result is folded back into the arena, and
// the explicit frame stack that replaces the recursion. All buffers grow
// to the steady-state size of the workload and are then recycled, so a
// caller that keeps a Scratch alive (ComputeInto) performs zero heap
// allocations per computation once warm.
//
// The zero value is ready to use. A Scratch is not safe for concurrent
// use; give each goroutine its own (the whole-network engine keeps one
// per worker).
type Scratch struct {
	bps    []float64
	arena  Skyline
	out    Skyline
	frames []computeFrame
	// Kinetic-repair working memory (see kinetic.go): the ping-pong pair
	// a freed span's candidate envelope is resolved through.
	kinA Skyline
	kinB Skyline
}

// computeFrame is one suspended node of the divide-and-conquer tree in
// the iterative compute: the disk window [lo, hi), how far the node has
// progressed (state 0: left child pending, 1: right child pending, 2:
// merge pending), where its children's arcs start in the arena, and the
// node's depth for the recursion-depth gauge.
type computeFrame struct {
	lo, hi  int32
	base    int32
	leftLen int32
	state   int32
	depth   int32
}

// scratchPool backs the convenience entry points (Compute, Merge,
// ComputeParallel) that do not take an explicit Scratch: they borrow one
// here and return it, making their own allocation cost O(1) amortized —
// the returned result — instead of O(n log n) buffer churn.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

func getScratch() *Scratch {
	//mldcslint:allow scratchescape pool accessor; every caller pairs it with putScratch before returning
	return scratchPool.Get().(*Scratch)
}
func putScratch(sc *Scratch) { scratchPool.Put(sc) }

// ComputeInto computes the skyline of a local disk set into dst[:0],
// growing dst only when its capacity is exceeded, and returns it. This is
// the steady-state entry point: reusing both the Scratch and the returned
// slice across calls makes repeated computation allocation-free (the
// engine's per-node recompute and the allocation regression tests pin
// this at zero allocs). On error dst is returned unchanged.
//
// The result never aliases the Scratch's internal buffers, so it stays
// valid across later calls on the same Scratch as long as the caller does
// not pass it back as dst.
//
//mldcs:hotpath
func (sc *Scratch) ComputeInto(dst Skyline, disks []geom.Disk) (Skyline, error) {
	view, err := sc.view(disks)
	if err != nil {
		return dst, err
	}
	return append(dst[:0], view...), nil
}

// ComputeIntoUnchecked is ComputeInto without the local-disk-set
// validation pass. The caller must guarantee what checkLocal would have
// verified: disks is non-empty, every radius is positive and finite, and
// every disk contains the origin (within geom.Eps). The whole-network
// engine qualifies — its link predicate admits a neighbor disk only when
// it reaches back over the hub — and skips the n hypot calls per node that
// re-proving the precondition would cost. On garbage input the result is
// unspecified (callers with a runtime invariant check, like the engine's
// degeneracy fallback, degrade safely).
//
//mldcs:hotpath
func (sc *Scratch) ComputeIntoUnchecked(dst Skyline, disks []geom.Disk) Skyline {
	return append(dst[:0], sc.viewUnchecked(disks)...)
}

// view validates the disks and runs the iterative compute, returning the
// arena-backed result (valid until the next use of sc). Instrumentation
// mirrors Compute's exactly so the two entry points book identically.
func (sc *Scratch) view(disks []geom.Disk) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	return sc.viewUnchecked(disks), nil
}

// viewUnchecked is view after validation (or with the caller vouching for
// the precondition).
//
//mldcs:hotpath
func (sc *Scratch) viewUnchecked(disks []geom.Disk) Skyline {
	m := skyInstr.Load()
	if m == nil {
		return sc.compute(disks, 0, len(disks), nil, 1)
	}
	m.computes.Inc()
	sw := m.computeSeconds.Start()
	sl := sc.compute(disks, 0, len(disks), m, 1)
	sw.Stop()
	m.recordCompute(len(sl), len(disks))
	return sl
}

// compute is the iterative core: the paper's divide-and-conquer (split at
// the midpoint, solve both halves, Merge) driven bottom-up by an explicit
// frame stack instead of recursion. Child skylines are stacked in
// sc.arena; each merge ping-pongs through sc.out and is folded back over
// its children's slots, so at any moment the arena holds exactly one
// in-flight skyline per tree level — O(n) arcs total by Lemma 8. The
// traversal order and midpoint splits are identical to the old recursive
// version, so results are bit-for-bit unchanged. depth seeds the
// recursion-depth gauge (ComputeParallel passes its fan-out depth).
//
//mldcs:hotpath
func (sc *Scratch) compute(disks []geom.Disk, lo, hi int, m *skyMetrics, depth int) Skyline {
	sc.arena = sc.arena[:0]
	fr := sc.frames[:0]
	fr = append(fr, computeFrame{lo: int32(lo), hi: int32(hi), depth: int32(depth)})
	for len(fr) > 0 {
		f := &fr[len(fr)-1]
		if f.hi-f.lo == 1 {
			if m != nil {
				m.depth.SetMax(float64(f.depth))
			}
			sc.arena = append(sc.arena, Arc{Start: 0, End: geom.TwoPi, Disk: int(f.lo)})
			fr = fr[:len(fr)-1]
			continue
		}
		mid := f.lo + (f.hi-f.lo)/2
		switch f.state {
		case 0:
			f.state = 1
			f.base = int32(len(sc.arena))
			fr = append(fr, computeFrame{lo: f.lo, hi: mid, depth: f.depth + 1})
		case 1:
			f.state = 2
			f.leftLen = int32(len(sc.arena)) - f.base
			fr = append(fr, computeFrame{lo: mid, hi: f.hi, depth: f.depth + 1})
		default:
			left := sc.arena[f.base : f.base+f.leftLen]
			right := sc.arena[f.base+f.leftLen:]
			out := mergeInto(sc.out[:0], sc, disks, left, right, true, m, nil)
			sc.out = out
			sc.arena = append(sc.arena[:f.base], out...)
			fr = fr[:len(fr)-1]
		}
	}
	sc.frames = fr
	return sc.arena
}

// computeRange computes the skyline of disks[lo:hi] into a fresh slice
// using a pooled Scratch. It is the building block of the convenience
// entry points and of ComputeParallel's sequential subtrees.
func computeRange(disks []geom.Disk, lo, hi int, m *skyMetrics, depth int) Skyline {
	sc := getScratch()
	view := sc.compute(disks, lo, hi, m, depth)
	out := make(Skyline, len(view))
	copy(out, view)
	putScratch(sc)
	return out
}
