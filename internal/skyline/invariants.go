package skyline

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// CheckInvariants verifies the runtime invariants a consumer of a computed
// skyline relies on, beyond what the constructors promise by construction:
//
//   - structural validity (Validate): non-empty, in-range disk indices,
//     positive spans, and contiguous arcs tiling exactly [0, 2π) — which
//     rules out non-partitioning breakpoints and uncovered gaps;
//   - the Lemma 8 arc bound: at most 2n arcs for n disks (a violation
//     means the merge produced a structurally impossible envelope);
//   - ray coverage: probe rays must land inside the arc that binary
//     search locates, catching misordered or non-finite arc angles that
//     pairwise contiguity checks can miss.
//
// It returns a descriptive error on the first violation, nil otherwise.
// The whole-network engine runs this check on every computed envelope and
// falls back to the full local set when it fails (see internal/engine),
// so a degenerate input degrades to a bigger-but-correct forwarding set
// instead of a wrong one.
func (s Skyline) CheckInvariants(n int) error {
	if err := s.Validate(n); err != nil {
		return err
	}
	if c, bound := s.ArcCount(), 2*n; c > bound {
		return fmt.Errorf("skyline: %d arcs exceed the Lemma 8 bound 2n = %d", c, bound)
	}
	for _, theta := range [...]float64{0, math.Pi / 3, math.Pi, 3 * math.Pi / 2} {
		a := s[s.At(theta)]
		if !geom.CoversAngle(geom.NormalizeAngle(theta), a.Start, a.End) {
			return fmt.Errorf("skyline: ray θ=%g is covered by no arc", theta)
		}
	}
	return nil
}
