package skyline

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// ComputeIncremental builds the skyline by inserting disks one at a time in
// decreasing radius order, the arrangement used in the proof of Lemma 8:
// when disks are inserted largest-first, each insertion adds at most two
// arcs to the skyline, so the intermediate skylines stay small. Each
// insertion is a Merge against a single-arc skyline, giving O(n²) worst
// case but near-linear behavior on the paper's workloads. Included both as
// an independently-implemented cross-check of the divide-and-conquer
// algorithm and for the insertion-order ablation (DESIGN.md A2).
func ComputeIncremental(disks []geom.Disk) (Skyline, error) {
	order := DecreasingRadiusOrder(disks)
	return ComputeIncrementalOrder(disks, order)
}

// DecreasingRadiusOrder returns disk indices sorted by decreasing radius,
// ties broken by increasing index.
func DecreasingRadiusOrder(disks []geom.Disk) []int {
	order := make([]int, len(disks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return disks[order[a]].R > disks[order[b]].R
	})
	return order
}

// ComputeIncrementalOrder inserts the disks in the given order (a
// permutation of 0..len(disks)-1). The resulting envelope is independent of
// the order; only the sizes of the intermediate skylines differ.
func ComputeIncrementalOrder(disks []geom.Disk, order []int) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	if err := checkPermutation(order, len(disks)); err != nil {
		return nil, err
	}
	sl := single(order[0])
	for _, i := range order[1:] {
		sl = Merge(disks, sl, single(i))
	}
	return sl, nil
}

// InsertDisk updates a skyline for one additional disk without
// recomputing from scratch: the dynamic-neighborhood operation (a new
// neighbor appears in HELLO). disks must be the slice the skyline was
// computed over WITH the new disk already appended (the returned arcs
// reference it by index len(disks)−1). Runs in O(current arcs).
func InsertDisk(disks []geom.Disk, sl Skyline) (Skyline, error) {
	if len(disks) == 0 {
		return nil, ErrEmptySet
	}
	i := len(disks) - 1
	d := disks[i]
	if !(d.R > 0) {
		return nil, ErrInvalidRadius
	}
	if !d.ContainsOrigin() {
		return nil, ErrNotLocalDiskSet
	}
	if err := sl.Validate(i); err != nil {
		return nil, fmt.Errorf("skyline: InsertDisk on invalid skyline: %w", err)
	}
	return Merge(disks, sl, single(i)), nil
}

// IncrementalArcGrowth inserts disks in the given order and records the
// arc count of the skyline after every insertion. Used by the A2 ablation
// to contrast decreasing-radius insertion (arc count ≤ 2k after k
// insertions, per Lemma 8) with arbitrary orders (arc count can jump by k
// in one step, per the paper's §4.1 counterexample).
func IncrementalArcGrowth(disks []geom.Disk, order []int) ([]int, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	if err := checkPermutation(order, len(disks)); err != nil {
		return nil, err
	}
	counts := make([]int, 0, len(order))
	sl := single(order[0])
	counts = append(counts, sl.ArcCount())
	for _, i := range order[1:] {
		sl = Merge(disks, sl, single(i))
		counts = append(counts, sl.ArcCount())
	}
	return counts, nil
}

func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("skyline: order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("skyline: order is not a permutation of 0..%d", n-1)
		}
		seen[i] = true
	}
	return nil
}
