package skyline

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/geom"
)

// This file pins the linear two-pointer Merge to the sort-based merge it
// replaced: mergeSortOracle below is the pre-optimization implementation
// (concatenate breakpoints, sort.Float64s, dedupe, prepend 0) kept
// verbatim as a test oracle. The production path must stay byte-identical
// to it — not just envelope-equivalent — so the golden, instrumentation,
// and parallel-identity suites keep their exact expectations.

// mergeSortOracle is the old Step 1: collect both skylines' start angles,
// sort, dedupe, anchor at 0, then resolve spans exactly like the
// production code. Intentionally allocation-heavy.
func mergeSortOracle(disks []geom.Disk, s1, s2 Skyline, coalesce bool) Skyline {
	bps := make([]float64, 0, len(s1)+len(s2)+2)
	for _, a := range s1 {
		bps = append(bps, a.Start)
	}
	for _, a := range s2 {
		bps = append(bps, a.Start)
	}
	bps = append(bps, geom.TwoPi)
	sort.Float64s(bps)
	bps = dedupeAngles(bps)
	if len(bps) == 0 || !geom.AngleSliver(0, bps[0]) {
		bps = append([]float64{0}, bps...)
	} else {
		bps[0] = 0
	}
	bps[len(bps)-1] = geom.TwoPi

	out := make(Skyline, 0, len(s1)+len(s2))
	i1, i2 := 0, 0
	for k := 0; k+1 < len(bps); k++ {
		a, b := bps[k], bps[k+1]
		if geom.AngleSliver(a, b) {
			continue
		}
		m := (a + b) / 2
		for i1 < len(s1)-1 && s1[i1].End <= m {
			i1++
		}
		for i2 < len(s2)-1 && s2[i2].End <= m {
			i2++
		}
		out = resolveSpan(disks, out, a, b, s1[i1].Disk, s2[i2].Disk, coalesce, nil, nil)
	}
	if len(out) == 0 {
		win := winner(disks, s1[0].Disk, s2[0].Disk, 1.0)
		return single(win)
	}
	out[0].Start = 0
	out[len(out)-1].End = geom.TwoPi
	if !coalesce {
		return out
	}
	return out.Combine()
}

// computeSortOracle is the old recursive divide-and-conquer built on
// mergeSortOracle, with the same midpoint splits as the production code.
func computeSortOracle(disks []geom.Disk) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	var rec func(lo, hi int) Skyline
	rec = func(lo, hi int) Skyline {
		if hi-lo == 1 {
			return single(lo)
		}
		mid := lo + (hi-lo)/2
		return mergeSortOracle(disks, rec(lo, mid), rec(mid, hi), true)
	}
	return rec(0, len(disks)), nil
}

// requireSameSkyline asserts byte identity (not just envelope equality).
func requireSameSkyline(t *testing.T, label string, got, want Skyline) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: linear merge diverged from sort-based oracle\n got: %v\nwant: %v", label, got, want)
	}
}

// The linear merge must reproduce the sort-based merge bit for bit on
// random heterogeneous and homogeneous sets, power-of-two and odd sizes.
func TestLinearMergeMatchesSortOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for _, n := range []int{1, 2, 3, 5, 8, 17, 37, 64, 100, 127} {
		for trial := 0; trial < 6; trial++ {
			for _, mk := range []struct {
				name  string
				disks []geom.Disk
			}{
				{"hetero", randomLocalSet(rng, n)},
				{"homog", randomHomogeneousSet(rng, n)},
			} {
				got, err := Compute(mk.disks)
				if err != nil {
					t.Fatal(err)
				}
				want, err := computeSortOracle(mk.disks)
				if err != nil {
					t.Fatal(err)
				}
				requireSameSkyline(t, mk.name, got, want)
			}
		}
	}
}

// Same identity on the structured/adversarial configurations the golden
// tests use: symmetric disk rings, a dominating disk, and the §4.1
// worst-case family.
func TestLinearMergeMatchesSortOracleStructured(t *testing.T) {
	var cases []struct {
		name  string
		disks []geom.Disk
	}
	for _, a := range []float64{0.2, 0.5, 0.9} {
		cases = append(cases, struct {
			name  string
			disks []geom.Disk
		}{"two-symmetric", []geom.Disk{geom.NewDisk(a, 0, 1), geom.NewDisk(-a, 0, 1)}})
	}
	ring := func(k int, dist float64) []geom.Disk {
		disks := make([]geom.Disk, k)
		for i := range disks {
			th := float64(i) * geom.TwoPi / float64(k)
			disks[i] = geom.NewDisk(dist*math.Cos(th), dist*math.Sin(th), 1)
		}
		return disks
	}
	cases = append(cases,
		struct {
			name  string
			disks []geom.Disk
		}{"three-ring", ring(3, 0.5)},
		struct {
			name  string
			disks []geom.Disk
		}{"seven-ring", ring(7, 0.7)},
		struct {
			name  string
			disks []geom.Disk
		}{"dominating", append(ring(5, 0.3), geom.NewDisk(0, 0, 10))},
	)
	for _, k := range []int{4, 9, 16, 33} {
		cases = append(cases, struct {
			name  string
			disks []geom.Disk
		}{"section41", section41Disks(k)})
	}
	for _, tc := range cases {
		got, err := Compute(tc.disks)
		if err != nil {
			t.Fatal(err)
		}
		want, err := computeSortOracle(tc.disks)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSkyline(t, tc.name, got, want)
	}
}

// loadFuzzCorpus decodes every seed file under testdata/fuzz/<target> into
// its raw []byte payload. testing.TB so fuzz targets can re-seed from a
// sibling target's curated corpus.
func loadFuzzCorpus(t testing.TB, target string) map[string][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus %s: %v", dir, err)
	}
	out := make(map[string][]byte, len(entries))
	for _, ent := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") {
				continue
			}
			quoted := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			payload, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s: unquoting corpus payload: %v", ent.Name(), err)
			}
			out[ent.Name()] = []byte(payload)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no corpus payloads under %s", dir)
	}
	return out
}

// The curated boundary/degenerate fuzz seeds (cocircular centers,
// concentric disks, duplicates, ρ ties, near-tangent hubs) are exactly
// where an epsilon-handling difference between the two merges would hide.
func TestLinearMergeMatchesSortOracleFuzzSeeds(t *testing.T) {
	for _, target := range []string{"FuzzMergeAgainstNaive", "FuzzSkylineInvariants"} {
		for name, data := range loadFuzzCorpus(t, target) {
			disks := disksFromBytes(data)
			if len(disks) == 0 {
				continue
			}
			got, err := Compute(disks)
			if err != nil {
				t.Fatal(err)
			}
			want, err := computeSortOracle(disks)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSkyline(t, target+"/"+name, got, want)
		}
	}
}

// The public Merge must match the oracle merge on arbitrary skyline pairs,
// in both coalescing and A1 (no-combine) modes.
func TestPublicMergeMatchesSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		disks := randomLocalSet(rng, n)
		half := 1 + rng.Intn(n-1)
		sa := computeRange(disks, 0, half, nil, 1)
		sb := computeRange(disks, half, n, nil, 1)
		requireSameSkyline(t, "merge", Merge(disks, sa, sb), mergeSortOracle(disks, sa, sb, true))

		sc := getScratch()
		nc := mergeInto(nil, sc, disks, sa, sb, false, nil, nil)
		putScratch(sc)
		requireSameSkyline(t, "merge-nocombine", nc, mergeSortOracle(disks, sa, sb, false))
	}
}
