package skyline

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// This file is the kinetic repair layer: updating an existing skyline for
// one disk's departure (RemoveDisk), arrival (InsertDiskInto, the
// scratch-backed sibling of InsertDisk), or motion (MoveDiskInto) without
// recomputing from scratch. Insertion is Lemma 8's one-disk merge; removal
// is its inverse — excise the departing disk's arcs and re-expose the
// runner-up envelope over the freed angular spans. Each operation costs
// O(candidates × arcs touched), independent of how the skyline was built,
// which is what makes per-event repair beat per-tick recomputation under
// continuous mobility (the engine's Update path).
//
// Every operation accepts an optional tie flag. Repair resolves spans
// against the cached skyline rather than replaying the full merge tree, so
// on inputs with envelope ties (within geom.RhoEps), dropped sliver
// pieces, or hub-tangent disks the repaired skyline can legitimately pick
// a different — equally maximal — representative than a from-scratch
// compute would. The flag reports that any such degenerate decision was
// taken; a caller that needs bit-compatibility with full recomputation
// (the engine does, its differential tests assert element-identical
// forwarding sets) falls back to ComputeInto when it is set. The envelope
// itself is correct either way; the test suite pins it against the
// retained sort-based oracle.

// RemoveDisk returns the skyline of the disk set with disks[rm] removed.
// disks must be the slice sl was computed over, unchanged: the result's
// arcs keep their original indices (never rm), so the caller can drop or
// recycle slot rm afterwards. Runs in O(n × arcs over the freed spans).
func RemoveDisk(disks []geom.Disk, sl Skyline, rm int) (Skyline, error) {
	if len(disks) == 0 {
		return nil, ErrEmptySet
	}
	if rm < 0 || rm >= len(disks) {
		return nil, fmt.Errorf("skyline: RemoveDisk index %d out of range [0, %d)", rm, len(disks))
	}
	if len(disks) == 1 {
		return nil, fmt.Errorf("skyline: RemoveDisk of the only disk: %w", ErrEmptySet)
	}
	if err := sl.Validate(len(disks)); err != nil {
		return nil, fmt.Errorf("skyline: RemoveDisk on invalid skyline: %w", err)
	}
	sc := getScratch()
	view := sc.RemoveDiskInto(sc.out, disks, sl, rm, nil)
	sc.out = view
	owned := make(Skyline, len(view))
	copy(owned, view)
	putScratch(sc)
	return owned, nil
}

// MoveDisk returns the skyline after disks[mv] moved: disks must already
// hold the disk's new geometry (removal only needs the arc list, never the
// old position). Equivalent to RemoveDisk followed by re-insertion, fused.
func MoveDisk(disks []geom.Disk, sl Skyline, mv int) (Skyline, error) {
	if len(disks) == 0 {
		return nil, ErrEmptySet
	}
	if mv < 0 || mv >= len(disks) {
		return nil, fmt.Errorf("skyline: MoveDisk index %d out of range [0, %d)", mv, len(disks))
	}
	d := disks[mv]
	if !(d.R > 0) || math.IsInf(d.R, 0) || math.IsNaN(d.R) {
		return nil, ErrInvalidRadius
	}
	if !d.ContainsOrigin() {
		return nil, ErrNotLocalDiskSet
	}
	if err := sl.Validate(len(disks)); err != nil {
		return nil, fmt.Errorf("skyline: MoveDisk on invalid skyline: %w", err)
	}
	sc := getScratch()
	view := sc.MoveDiskInto(sc.out, disks, sl, mv, nil)
	sc.out = view
	owned := make(Skyline, len(view))
	copy(owned, view)
	putScratch(sc)
	return owned, nil
}

// InsertDiskInto is the scratch-backed InsertDisk: it merges disks[ins]
// into sl and writes the result to dst[:0], performing no validation and
// no heap allocation once the buffers are warm (the engine's kinetic path
// and the allocation regression tests pin this). dst must not alias sl or
// the Scratch's internal buffers; the caller vouches that disks[ins] is a
// valid hub-containing disk. Unlike InsertDisk, ins may be any index, not
// just the last.
//
//mldcs:hotpath
func (sc *Scratch) InsertDiskInto(dst Skyline, disks []geom.Disk, sl Skyline, ins int, tie *bool) Skyline {
	return insertOneInto(dst, disks, sl, ins, skyInstr.Load(), tie)
}

// insertOneInto merges the single disk ins into the valid skyline sl —
// semantically mergeInto with a full-circle one-arc second input, minus
// the breakpoint pass (the union of breakpoints is exactly sl's) and plus
// an envelope-bound prune: an arc whose owner stays strictly above the
// new disk's global maximum ray distance (beyond RhoEps, via RhoCmp)
// cannot be crossed, tied, or taken over anywhere on the arc, so it is
// copied through without any crossing analysis. The prune is what makes a
// small-move repair cheap: a moved neighbor contends with two or three
// arcs of the cached skyline, not all of them.
func insertOneInto(dst Skyline, disks []geom.Disk, sl Skyline, ins int, im *skyMetrics, tie *bool) Skyline {
	out := dst[:0]
	d := disks[ins]
	dmax := d.C.Norm() + d.R
	if im != nil {
		im.merges.Inc()
		im.breakpoints.Add(int64(len(sl) + 1))
	}
	for _, arc := range sl {
		if geom.AngleSliver(arc.Start, arc.End) {
			// mergeInto drops sliver spans (and flags): mirror it so the
			// two insert paths stay bit-identical.
			if tie != nil {
				*tie = true
			}
			continue
		}
		w := disks[arc.Disk]
		// Cheap global bound first (no trig), then the exact per-span
		// minimum. RhoCmp < 0 means the new disk tops out more than RhoEps
		// below the owner's floor: no tie is possible, the outcome is
		// forced, and skipping resolveSpan changes nothing.
		if geom.RhoCmp(dmax, w.R-w.C.Norm()) < 0 ||
			geom.RhoCmp(dmax, spanFloor(w, arc.Start, arc.End)) < 0 {
			if im != nil {
				im.case0.Inc()
			}
			out = appendArc(out, arc.Start, arc.End, arc.Disk, true)
			continue
		}
		out = resolveSpan(disks, out, arc.Start, arc.End, arc.Disk, ins, true, im, tie)
	}
	if len(out) == 0 {
		win := winner(disks, sl[0].Disk, ins, 1.0)
		return append(out, Arc{Start: 0, End: geom.TwoPi, Disk: win})
	}
	out[0].Start = 0
	out[len(out)-1].End = geom.TwoPi
	return combineInPlace(out)
}

// spanFloor returns the minimum ray distance of d over the span [a, b].
// ρ_d is circularly unimodal — one maximum toward the center, one minimum
// directly away from it — so the span minimum is r − ‖c‖ when the span
// contains the away angle and the smaller endpoint value otherwise.
func spanFloor(d geom.Disk, a, b float64) float64 {
	opp := geom.NormalizeAngle(d.C.Angle() + math.Pi)
	if geom.AngleInSpan(opp, a, b) {
		return d.R - d.C.Norm()
	}
	ra := d.RayDistDir(geom.Unit(a))
	rb := d.RayDistDir(geom.Unit(b))
	return math.Min(ra, rb)
}

// RemoveDiskInto excises disks[rm]'s arcs from sl and re-exposes the
// runner-up envelope over each freed span, writing the result to dst[:0].
// The result references original disk indices (rm never appears). At least
// one other disk must exist, dst must not alias sl or the Scratch's
// internal buffers, and sl must be valid; no heap allocation once warm.
//
//mldcs:hotpath
func (sc *Scratch) RemoveDiskInto(dst Skyline, disks []geom.Disk, sl Skyline, rm int, tie *bool) Skyline {
	out := dst[:0]
	for i := 0; i < len(sl); {
		if sl[i].Disk != rm {
			out = append(out, sl[i])
			i++
			continue
		}
		j := i
		for j < len(sl) && sl[j].Disk == rm {
			j++
		}
		out = sc.resolveFreedSpan(out, disks, rm, sl[i].Start, sl[j-1].End, tie)
		i = j
	}
	if len(out) == 0 {
		return out
	}
	out[0].Start = 0
	out[len(out)-1].End = geom.TwoPi
	return combineInPlace(out)
}

// MoveDiskInto updates sl for disks[mv]'s new geometry (already written
// into disks — the excision identifies the old arcs by index, never by
// position) in one pass. Arcs the disk does not own are resolved against
// its new geometry exactly like insertOneInto (with the same
// envelope-bound prune); runs of arcs it does own become freed spans
// resolved over all disks *including* the moved one. Fusing matters for
// small moves: the freed-span seed is then usually the moved disk itself,
// whose high floor prunes almost every other candidate, where a
// remove-then-insert pays for a runner-up fight and a second full walk.
// Same contract as the other Into variants: unchecked, alias-free dst,
// zero allocations once warm.
//
//mldcs:hotpath
func (sc *Scratch) MoveDiskInto(dst Skyline, disks []geom.Disk, sl Skyline, mv int, tie *bool) Skyline {
	if len(disks) == 1 {
		// Nothing else contributes: the moved disk owns the whole circle.
		return append(dst[:0], Arc{Start: 0, End: geom.TwoPi, Disk: mv})
	}
	out := dst[:0]
	d := disks[mv]
	dmax := d.C.Norm() + d.R
	im := skyInstr.Load()
	if im != nil {
		im.merges.Inc()
		im.breakpoints.Add(int64(len(sl) + 1))
	}
	for i := 0; i < len(sl); {
		arc := sl[i]
		if arc.Disk == mv {
			j := i
			for j < len(sl) && sl[j].Disk == mv {
				j++
			}
			// skip = -1: the moved disk competes for its former spans with
			// its new geometry, alongside everyone else.
			out = sc.resolveFreedSpan(out, disks, -1, sl[i].Start, sl[j-1].End, tie)
			i = j
			continue
		}
		i++
		if geom.AngleSliver(arc.Start, arc.End) {
			if tie != nil {
				*tie = true
			}
			continue
		}
		w := disks[arc.Disk]
		if geom.RhoCmp(dmax, w.R-w.C.Norm()) < 0 ||
			geom.RhoCmp(dmax, spanFloor(w, arc.Start, arc.End)) < 0 {
			if im != nil {
				im.case0.Inc()
			}
			out = appendArc(out, arc.Start, arc.End, arc.Disk, true)
			continue
		}
		out = resolveSpan(disks, out, arc.Start, arc.End, arc.Disk, mv, true, im, tie)
	}
	if len(out) == 0 {
		win := winner(disks, sl[0].Disk, mv, 1.0)
		return append(out, Arc{Start: 0, End: geom.TwoPi, Disk: win})
	}
	out[0].Start = 0
	out[len(out)-1].End = geom.TwoPi
	return combineInPlace(out)
}

// resolveFreedSpan appends the upper envelope of all disks except rm over
// the freed span [a, b]: seed with the ray-distance winner at the span's
// midpoint, then resolve every other candidate against the running span
// skyline through the scratch's ping-pong pair. Correctness rests on the
// cached skyline: outside its freed spans the surviving arcs were maximal
// over a superset of the remaining disks, so only the freed spans need
// re-exposure.
//
//mldcs:hotpath
func (sc *Scratch) resolveFreedSpan(out Skyline, disks []geom.Disk, rm int, a, b float64, tie *bool) Skyline {
	best := bestAtExcept(disks, rm, (a+b)/2, tie)
	if geom.AngleSliver(a, b) {
		// A sliver span cannot be subdivided meaningfully; hand it to the
		// midpoint winner (Combine folds it into a neighbor) and flag.
		if tie != nil {
			*tie = true
		}
		if len(out) > 0 {
			out[len(out)-1].End = b
			return out
		}
		return append(out, Arc{Start: a, End: b, Disk: best})
	}
	cur := append(sc.kinA[:0], Arc{Start: a, End: b, Disk: best})
	nxt := sc.kinB[:0]
	// The running span envelope only ever grows, so the seed's minimum
	// over [a, b] is a floor for every later resolution: any disk whose
	// global maximum ray distance sits strictly below it (beyond RhoEps)
	// can neither win nor tie anywhere in the span and is skipped whole.
	floor := spanFloor(disks[best], a, b)
	for d := range disks {
		if d == rm || d == best {
			continue
		}
		if geom.RhoCmp(disks[d].C.Norm()+disks[d].R, floor) < 0 {
			continue
		}
		nxt = nxt[:0]
		for _, arc := range cur {
			nxt = resolveSpan(disks, nxt, arc.Start, arc.End, arc.Disk, d, true, nil, tie)
		}
		if len(nxt) == 0 {
			// Every piece degenerated to a sliver; keep the current span
			// skyline (the candidate cannot tile [a, b] better) and flag.
			if tie != nil {
				*tie = true
			}
			continue
		}
		nxt[0].Start = a
		nxt[len(nxt)-1].End = b
		cur, nxt = nxt, cur
	}
	sc.kinA, sc.kinB = cur[:0:cap(cur)], nxt[:0:cap(nxt)]
	return append(out, cur...)
}

// bestAtExcept returns the index of the disk with the largest ray distance
// at theta among all disks except skip, under the canonical tie-break; a
// non-nil tie is set when any comparison landed within geom.RhoEps.
func bestAtExcept(disks []geom.Disk, skip int, theta float64, tie *bool) int {
	e := geom.Unit(theta)
	best := math.Inf(-1)
	arg := -1
	for i, d := range disks {
		if i == skip {
			continue
		}
		r := d.RayDistDir(e)
		if arg < 0 {
			best, arg = r, i
			continue
		}
		switch geom.RhoCmp(r, best) {
		case +1:
			best, arg = r, i
		case 0:
			if tie != nil {
				*tie = true
			}
			if betterTie(disks, i, arg) {
				best, arg = math.Max(r, best), i
			}
		}
	}
	return arg
}
