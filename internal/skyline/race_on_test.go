//go:build race

package skyline

// raceEnabled reports whether the race detector is active. Under race,
// sync.Pool deliberately randomizes Get/Put (dropping items to expose
// unsynchronized reuse), so pool-amortization cannot be measured; the
// pool-backed allocation tests skip themselves.
const raceEnabled = true
