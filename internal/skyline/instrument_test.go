package skyline

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

// withRegistry installs a fresh registry for the test body and guarantees
// the package is de-instrumented afterwards.
func withRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	r := obs.NewRegistry()
	Instrument(r)
	t.Cleanup(func() { Instrument(nil) })
	return r
}

func TestInstrumentCountsCompute(t *testing.T) {
	r := withRegistry(t)
	rng := rand.New(rand.NewSource(42))
	disks := randomLocalSet(rng, 64)
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Counter(MetricComputeTotal).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricComputeTotal, got)
	}
	// 64 leaves → 63 internal merge nodes.
	if got := r.Counter(MetricMergeTotal).Value(); got != 63 {
		t.Errorf("%s = %d, want 63", MetricMergeTotal, got)
	}
	// Recursion on 64 disks bottoms out at depth log2(64)+1 = 7.
	if got := r.Gauge(MetricRecursionDepth).Value(); got != 7 {
		t.Errorf("%s = %g, want 7", MetricRecursionDepth, got)
	}
	cases := r.Counter(MetricMergeCase0Total).Value() +
		r.Counter(MetricMergeCase1Total).Value() +
		r.Counter(MetricMergeCase2Total).Value()
	if cases == 0 {
		t.Error("merge case counters are all zero after a 64-disk Compute")
	}
	if got := r.Gauge(MetricMaxArcs).Value(); got != float64(len(sl)) {
		t.Errorf("%s = %g, want %d (the only compute's arc count)", MetricMaxArcs, got, len(sl))
	}
	if got := r.Gauge(MetricMaxArcBound).Value(); got != float64(2*len(disks)) {
		t.Errorf("%s = %g, want %d", MetricMaxArcBound, got, 2*len(disks))
	}
	if got := r.Counter(MetricBreakpointsTotal).Value(); got == 0 {
		t.Errorf("%s = 0 after a Compute", MetricBreakpointsTotal)
	}
	if got := r.Timer(MetricComputeSeconds).Count(); got != 1 {
		t.Errorf("%s count = %d, want 1", MetricComputeSeconds, got)
	}
}

func TestInstrumentParallelFanout(t *testing.T) {
	r := withRegistry(t)
	rng := rand.New(rand.NewSource(7))
	disks := randomLocalSet(rng, 4*parallelCutoff)
	want, err := ComputeParallel(disks, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Gauge(MetricParallelWorkers).Value(); got != 4 {
		t.Errorf("%s = %g, want 4", MetricParallelWorkers, got)
	}
	// 4 workers → spawn depth 2 → 3 internal spawns, 4 sequential leaves.
	if got := r.Counter(MetricParallelSpawned).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", MetricParallelSpawned, got)
	}
	if got := r.Counter(MetricParallelSequential).Value(); got != 4 {
		t.Errorf("%s = %d, want 4", MetricParallelSequential, got)
	}
	// The instrumented parallel result must still match the sequential one.
	Instrument(nil)
	plain, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(want) {
		t.Errorf("instrumented parallel skyline has %d arcs, sequential %d", len(want), len(plain))
	}
}

// TestLemma8RuntimeCheck is the runtime counterpart of the Lemma 8 proof:
// adversarial local sets go through the instrumented Compute and the
// observed arc-count metrics must never exceed the 2n bound — the
// arc-bound ratio gauge stays ≤ 1 and the violation counter stays 0.
func TestLemma8RuntimeCheck(t *testing.T) {
	r := withRegistry(t)
	rng := rand.New(rand.NewSource(1009))

	feed := func(label string, disks []geom.Disk) {
		t.Helper()
		if _, err := Compute(disks); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	}

	// The paper's §4.1 worst case: one disk contributing k disjoint arcs.
	for _, k := range []int{3, 5, 16, 40, 100} {
		feed("section41", section41Disks(k))
	}
	// Duplicates: n identical disks must collapse, not accumulate arcs.
	dup := make([]geom.Disk, 32)
	for i := range dup {
		dup[i] = geom.Disk{C: geom.Pt(0.1, 0.1), R: 1}
	}
	feed("duplicates", dup)
	// Boundary-through-hub disks (ρ ≡ 0 on a half-circle) — the
	// degenerate family with interval-equal envelopes.
	tangent := make([]geom.Disk, 24)
	for i := range tangent {
		theta := geom.TwoPi * float64(i) / float64(len(tangent))
		tangent[i] = geom.Disk{C: geom.Unit(theta).Scale(1), R: 1}
	}
	feed("tangent-at-hub", tangent)
	// Co-circular centers with a near-tie radius.
	ring := make([]geom.Disk, 40)
	for i := range ring {
		theta := geom.TwoPi * float64(i) / float64(len(ring))
		ring[i] = geom.Disk{C: geom.Unit(theta).Scale(0.5), R: 1 + 1e-12*float64(i%2)}
	}
	feed("co-circular", ring)
	// Random stress, both radius models, including the parallel path.
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(200)
		feed("random-het", randomLocalSet(rng, n))
		feed("random-hom", randomHomogeneousSet(rng, n))
	}
	for trial := 0; trial < 5; trial++ {
		disks := randomLocalSet(rng, 3*parallelCutoff)
		if _, err := ComputeParallel(disks, runtime.GOMAXPROCS(0)); err != nil {
			t.Fatal(err)
		}
	}

	if v := r.Counter(MetricBoundViolations).Value(); v != 0 {
		t.Fatalf("%s = %d: some instance exceeded its 2n arc bound", MetricBoundViolations, v)
	}
	ratio := r.Gauge(MetricArcBoundRatio).Value()
	if ratio <= 0 || ratio > 1 || math.IsNaN(ratio) {
		t.Fatalf("%s = %g, want in (0, 1]: Lemma 8 must hold at runtime", MetricArcBoundRatio, ratio)
	}
	if r.Gauge(MetricMaxArcs).Value() > r.Gauge(MetricMaxArcBound).Value() {
		t.Fatalf("max arcs %g exceeds max 2n bound %g",
			r.Gauge(MetricMaxArcs).Value(), r.Gauge(MetricMaxArcBound).Value())
	}
	if r.Counter(MetricComputeTotal).Value() == 0 {
		t.Fatal("no computes recorded — instrumentation is not wired")
	}
}

// Instrumentation must never change results: same input, instrumented and
// not, gives bit-identical skylines.
func TestInstrumentationDoesNotChangeResults(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	disks := randomLocalSet(rng, 100)
	plain, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	Instrument(obs.NewRegistry())
	defer Instrument(nil)
	instrumented, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(instrumented) {
		t.Fatalf("instrumented Compute returned %d arcs, plain %d", len(instrumented), len(plain))
	}
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("arc %d differs: %v vs %v", i, plain[i], instrumented[i])
		}
	}
}
