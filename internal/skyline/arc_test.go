package skyline

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestValidateAcceptsSingle(t *testing.T) {
	if err := single(0).Validate(1); err != nil {
		t.Errorf("single-arc skyline should validate: %v", err)
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	var s Skyline
	if err := s.Validate(0); err == nil {
		t.Error("empty skyline must not validate")
	}
}

func TestValidateRejectsGap(t *testing.T) {
	s := Skyline{
		{Start: 0, End: 1, Disk: 0},
		{Start: 2, End: geom.TwoPi, Disk: 1},
	}
	if err := s.Validate(2); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("gapped skyline must fail with a gap error, got %v", err)
	}
}

func TestValidateRejectsBadBounds(t *testing.T) {
	s := Skyline{{Start: 0.5, End: geom.TwoPi, Disk: 0}}
	if err := s.Validate(1); err == nil {
		t.Error("skyline not starting at 0 must fail")
	}
	s = Skyline{{Start: 0, End: 3, Disk: 0}}
	if err := s.Validate(1); err == nil {
		t.Error("skyline not ending at 2π must fail")
	}
}

func TestValidateRejectsBadDiskIndex(t *testing.T) {
	s := Skyline{{Start: 0, End: geom.TwoPi, Disk: 5}}
	if err := s.Validate(1); err == nil {
		t.Error("out-of-range disk index must fail")
	}
}

func TestValidateRejectsNonPositiveSpan(t *testing.T) {
	s := Skyline{
		{Start: 0, End: 1, Disk: 0},
		{Start: 1, End: 1, Disk: 1},
		{Start: 1, End: geom.TwoPi, Disk: 0},
	}
	if err := s.Validate(2); err == nil {
		t.Error("zero-span arc must fail")
	}
}

func TestAtAndDiskAt(t *testing.T) {
	s := Skyline{
		{Start: 0, End: math.Pi, Disk: 3},
		{Start: math.Pi, End: geom.TwoPi, Disk: 7},
	}
	if got := s.DiskAt(1); got != 3 {
		t.Errorf("DiskAt(1) = %d, want 3", got)
	}
	if got := s.DiskAt(4); got != 7 {
		t.Errorf("DiskAt(4) = %d, want 7", got)
	}
	// Angles are normalized first.
	if got := s.DiskAt(-1); got != 7 {
		t.Errorf("DiskAt(-1) = %d, want 7 (normalizes to 2π−1)", got)
	}
	if got := s.DiskAt(geom.TwoPi + 1); got != 3 {
		t.Errorf("DiskAt(2π+1) = %d, want 3", got)
	}
}

func TestSet(t *testing.T) {
	s := Skyline{
		{Start: 0, End: 1, Disk: 4},
		{Start: 1, End: 2, Disk: 1},
		{Start: 2, End: 3, Disk: 4},
		{Start: 3, End: geom.TwoPi, Disk: 2},
	}
	sameSet(t, s.Set(), []int{1, 2, 4}, "Set")
}

func TestArcCountWrap(t *testing.T) {
	// First and last arcs from the same disk: one geometric arc.
	s := Skyline{
		{Start: 0, End: 1, Disk: 0},
		{Start: 1, End: 4, Disk: 1},
		{Start: 4, End: geom.TwoPi, Disk: 0},
	}
	if got := s.ArcCount(); got != 2 {
		t.Errorf("ArcCount = %d, want 2 (wrap-around arc counted once)", got)
	}
	s[2].Disk = 2
	if got := s.ArcCount(); got != 3 {
		t.Errorf("ArcCount = %d, want 3", got)
	}
	if got := single(0).ArcCount(); got != 1 {
		t.Errorf("ArcCount(single) = %d, want 1", got)
	}
}

func TestCombineMergesNeighbors(t *testing.T) {
	s := Skyline{
		{Start: 0, End: 1, Disk: 0},
		{Start: 1, End: 2, Disk: 0},
		{Start: 2, End: 3, Disk: 1},
		{Start: 3, End: geom.TwoPi, Disk: 1},
	}
	got := s.Combine()
	if len(got) != 2 || got[0].Disk != 0 || got[1].Disk != 1 {
		t.Fatalf("Combine = %v", got)
	}
	if got[0].Start != 0 || !geom.AngleEq(got[0].End, 2) || !geom.AngleEq(got[1].End, geom.TwoPi) {
		t.Errorf("Combine angles wrong: %v", got)
	}
}

func TestCombineDropsSlivers(t *testing.T) {
	s := Skyline{
		{Start: 0, End: 2, Disk: 0},
		{Start: 2, End: 2 + geom.AngleEps/2, Disk: 1},
		{Start: 2 + geom.AngleEps/2, End: geom.TwoPi, Disk: 0},
	}
	got := s.Combine()
	if len(got) != 1 || got[0].Disk != 0 {
		t.Fatalf("Combine should absorb the sliver: %v", got)
	}
	if err := got.Validate(2); err != nil {
		t.Errorf("combined skyline invalid: %v", err)
	}
}

func TestCombineDoesNotModifyReceiver(t *testing.T) {
	s := Skyline{
		{Start: 0, End: 1, Disk: 0},
		{Start: 1, End: geom.TwoPi, Disk: 0},
	}
	_ = s.Combine()
	if s[0].End != 1 {
		t.Error("Combine must not modify its receiver")
	}
}

func TestClone(t *testing.T) {
	s := Skyline{{Start: 0, End: geom.TwoPi, Disk: 0}}
	c := s.Clone()
	c[0].Disk = 9
	if s[0].Disk != 0 {
		t.Error("Clone must be independent of the original")
	}
}

func TestArcSpanAndString(t *testing.T) {
	a := Arc{Start: 0, End: math.Pi, Disk: 2}
	if a.Span() != math.Pi {
		t.Errorf("Span = %v", a.Span())
	}
	if !strings.Contains(a.String(), "d2") {
		t.Errorf("String = %q", a.String())
	}
}
