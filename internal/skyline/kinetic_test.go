package skyline

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// without returns a copy of disks with index rm removed (order preserved).
func without(disks []geom.Disk, rm int) []geom.Disk {
	out := make([]geom.Disk, 0, len(disks)-1)
	out = append(out, disks[:rm]...)
	return append(out, disks[rm+1:]...)
}

// checkEnvelopeExcept asserts that sl (indexing into disks, never rm) is
// the upper envelope of all disks except rm, probing a fixed battery plus
// every arc midpoint.
func checkEnvelopeExcept(t *testing.T, label string, disks []geom.Disk, sl Skyline, rm int) {
	t.Helper()
	if err := sl.Validate(len(disks)); err != nil {
		t.Fatalf("%s: invalid repaired skyline: %v", label, err)
	}
	probes := make([]float64, 0, 720+len(sl))
	for i := 0; i < 720; i++ {
		probes = append(probes, float64(i)*geom.TwoPi/720)
	}
	for _, a := range sl {
		if a.Disk == rm {
			t.Fatalf("%s: removed disk %d still owns arc %v", label, rm, a)
		}
		probes = append(probes, (a.Start+a.End)/2)
	}
	for _, theta := range probes {
		got := disks[sl.DiskAt(theta)].RayDist(theta)
		want := math.Inf(-1)
		for i, d := range disks {
			if i == rm {
				continue
			}
			if r := d.RayDist(theta); r > want {
				want = r
			}
		}
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("%s: envelope mismatch at θ=%v: got %v want %v", label, theta, got, want)
		}
	}
}

// remapAfterRemove translates a repaired skyline's original disk indices to
// the compacted indexing of the slice with rm deleted.
func remapAfterRemove(sl Skyline, rm int) Skyline {
	out := make(Skyline, len(sl))
	for i, a := range sl {
		if a.Disk > rm {
			a.Disk--
		}
		out[i] = a
	}
	return out
}

// requireSameSet asserts the two skylines contribute the same disk set.
func requireSameSet(t *testing.T, label string, got, want Skyline) {
	t.Helper()
	gs := got.AppendSet(nil)
	ws := want.AppendSet(nil)
	if !reflect.DeepEqual(gs, ws) {
		t.Errorf("%s: skyline set diverged\n got %v (%v)\nwant %v (%v)", label, gs, got, ws, want)
	}
}

// RemoveDisk must reproduce the envelope of the surviving disks, and —
// whenever the surgery reported no degenerate decision — the exact skyline
// set a from-scratch compute produces.
func TestRemoveDiskMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	var sc Scratch
	for _, n := range []int{2, 3, 5, 9, 17, 33} {
		for trial := 0; trial < 8; trial++ {
			disks := randomLocalSet(rng, n)
			sl, err := Compute(disks)
			if err != nil {
				t.Fatal(err)
			}
			for _, rm := range []int{0, n / 2, n - 1} {
				got, err := RemoveDisk(disks, sl, rm)
				if err != nil {
					t.Fatal(err)
				}
				checkEnvelopeExcept(t, "RemoveDisk", disks, got, rm)

				tie := false
				fast := sc.RemoveDiskInto(nil, disks, sl, rm, &tie)
				if !reflect.DeepEqual(got, fast) {
					t.Fatalf("RemoveDisk and RemoveDiskInto diverged: %v vs %v", got, fast)
				}
				if !tie {
					want, err := computeSortOracle(without(disks, rm))
					if err != nil {
						t.Fatal(err)
					}
					requireSameSet(t, "RemoveDisk", remapAfterRemove(got, rm), want)
				}
			}
		}
	}
}

// Same check on the structured families where removal hits interesting
// geometry: §4.1 (removing the central disk re-exposes the ring; removing a
// ring disk grows its neighbors), symmetric pairs, and duplicate disks.
func TestRemoveDiskStructured(t *testing.T) {
	cases := []struct {
		name  string
		disks []geom.Disk
		rm    int
	}{
		{"section41-central", section41Disks(9), 9},
		{"section41-ring", section41Disks(9), 3},
		{"two-symmetric", []geom.Disk{geom.NewDisk(0.5, 0, 1), geom.NewDisk(-0.5, 0, 1)}, 0},
		{"duplicates", []geom.Disk{geom.NewDisk(0.3, 0, 1), geom.NewDisk(0.3, 0, 1), geom.NewDisk(-0.2, 0.1, 1.5)}, 1},
		{"dominating", []geom.Disk{geom.NewDisk(0.2, 0.1, 1), geom.NewDisk(0, 0, 5), geom.NewDisk(-0.3, 0.2, 1.2)}, 1},
		{"hub-tangent", []geom.Disk{geom.NewDisk(0.5, 0, 0.5), geom.NewDisk(-0.25, 0, 0.25), geom.NewDisk(0, 0.4, 1)}, 2},
	}
	for _, tc := range cases {
		sl, err := Compute(tc.disks)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RemoveDisk(tc.disks, sl, tc.rm)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		checkEnvelopeExcept(t, tc.name, tc.disks, got, tc.rm)
	}
}

// MoveDisk must reproduce the envelope of the set with the moved disk's new
// geometry, and the exact recomputed set when no tie was reported.
func TestMoveDiskMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	var sc Scratch
	for _, n := range []int{1, 2, 3, 5, 9, 17, 33} {
		for trial := 0; trial < 8; trial++ {
			disks := randomLocalSet(rng, n)
			sl, err := Compute(disks)
			if err != nil {
				t.Fatal(err)
			}
			mv := rng.Intn(n)
			// Perturb the disk: a small slide most of the time, a jump
			// sometimes, always still containing the hub.
			d := disks[mv]
			if trial%3 == 0 {
				d = randomLocalSet(rng, 1)[0]
			} else {
				scale := 0.05 * rng.Float64()
				c := d.C.Add(geom.Unit(rng.Float64() * geom.TwoPi).Scale(scale * d.R))
				if c.Norm() < d.R*0.999 {
					d.C = c
				}
			}
			disks[mv] = d

			got, err := MoveDisk(disks, sl, mv)
			if err != nil {
				t.Fatal(err)
			}
			checkEnvelopeExcept(t, "MoveDisk", disks, got, -1)

			tie := false
			fast := sc.MoveDiskInto(nil, disks, sl, mv, &tie)
			if !reflect.DeepEqual(got, fast) {
				t.Fatalf("MoveDisk and MoveDiskInto diverged: %v vs %v", got, fast)
			}
			if !tie {
				want, err := computeSortOracle(disks)
				if err != nil {
					t.Fatal(err)
				}
				requireSameSet(t, "MoveDisk", got, want)
			}
		}
	}
}

// InsertDiskInto must be byte-identical to the allocating InsertDisk when
// inserting the last disk (the only form InsertDisk supports).
func TestInsertDiskIntoMatchesInsertDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	var sc Scratch
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		disks := randomLocalSet(rng, n)
		sl, err := Compute(disks[:n-1])
		if err != nil {
			t.Fatal(err)
		}
		want, err := InsertDisk(disks, sl)
		if err != nil {
			t.Fatal(err)
		}
		got := sc.InsertDiskInto(nil, disks, sl, n-1, nil)
		requireSameSkyline(t, "InsertDiskInto", got, want)
	}
}

// The validating wrappers must reject the inputs their contracts exclude.
func TestKineticErrors(t *testing.T) {
	disks := []geom.Disk{geom.NewDisk(0.1, 0, 1), geom.NewDisk(-0.1, 0, 1)}
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RemoveDisk(nil, nil, 0); err == nil {
		t.Error("RemoveDisk on empty set: want error")
	}
	if _, err := RemoveDisk(disks, sl, 2); err == nil {
		t.Error("RemoveDisk out of range: want error")
	}
	if _, err := RemoveDisk(disks, sl, -1); err == nil {
		t.Error("RemoveDisk negative index: want error")
	}
	if _, err := RemoveDisk(disks[:1], single(0), 0); err == nil {
		t.Error("RemoveDisk of the only disk: want error")
	}
	if _, err := RemoveDisk(disks, Skyline{{Start: 1, End: 2, Disk: 0}}, 0); err == nil {
		t.Error("RemoveDisk on invalid skyline: want error")
	}
	if _, err := MoveDisk(nil, nil, 0); err == nil {
		t.Error("MoveDisk on empty set: want error")
	}
	if _, err := MoveDisk(disks, sl, 5); err == nil {
		t.Error("MoveDisk out of range: want error")
	}
	bad := []geom.Disk{disks[0], {C: geom.Pt(3, 0), R: 1}}
	if _, err := MoveDisk(bad, sl, 1); err == nil {
		t.Error("MoveDisk to a non-hub-containing position: want error")
	}
	bad[1] = geom.Disk{C: geom.Pt(0, 0), R: math.Inf(1)}
	if _, err := MoveDisk(bad, sl, 1); err == nil {
		t.Error("MoveDisk to an invalid radius: want error")
	}
}

// A removal that leaves slivers or long tied stretches must still produce a
// structurally valid envelope; the tie flag tells the caller not to expect
// set-identity with a recompute.
func TestRemoveDiskTieFlag(t *testing.T) {
	// Three identical disks: removing one leaves the other two tied over
	// the whole freed span, so every comparison the re-exposure makes lands
	// within RhoEps — a textbook degenerate surgery.
	disks := []geom.Disk{
		geom.NewDisk(0.3, 0, 1),
		geom.NewDisk(0.3, 0, 1),
		geom.NewDisk(0.3, 0, 1),
	}
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	var sc Scratch
	tie := false
	got := sc.RemoveDiskInto(nil, disks, sl, 0, &tie)
	checkEnvelopeExcept(t, "duplicate-removal", disks, got, 0)
	if !tie {
		t.Error("removing a duplicated disk should report a tie")
	}
}
