package skyline

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// TestComputeParallelIdentical is the regression guard for the parallel
// skyline path: across seeds, sizes straddling parallelCutoff, and worker
// counts, ComputeParallel must return a skyline identical to Compute's —
// same arcs, same float64 breakpoints, same disk indices — not merely the
// same envelope. Determinism regardless of goroutine scheduling is what
// lets experiments use the parallel path under fixed seeds. Run in CI
// under -race, this also exercises the fan-out for data races.
func TestComputeParallelIdentical(t *testing.T) {
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	sizes := []int{1, 3, 37, 200, 300, 700}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range sizes {
			for _, heterogeneous := range []bool{true, false} {
				var set = randomHomogeneousSet(rng, n)
				if heterogeneous {
					set = randomLocalSet(rng, n)
				}
				want, err := Compute(set)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range workerCounts {
					got, err := ComputeParallel(set, w)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d n %d workers %d heterogeneous %v: parallel skyline differs\n got: %v\nwant: %v",
							seed, n, w, heterogeneous, got, want)
					}
				}
			}
		}
	}
}

// The §4.1 adversarial construction (a disk contributing k disjoint arcs)
// must also survive the parallel path bit-for-bit.
func TestComputeParallelIdenticalAdversarial(t *testing.T) {
	for _, k := range []int{3, 8, 33} {
		disks := section41Disks(k)
		want, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			got, err := ComputeParallel(disks, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("section41 k=%d workers=%d: parallel skyline differs", k, w)
			}
		}
	}
}
