package skyline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// Degenerate and adversarial configurations: the merge's crossing logic
// must survive tangencies, near-coincident disks, extreme radius ratios,
// and clustered breakpoint angles. Each case checks validity, the Lemma 8
// bound, and envelope correctness via the shared helper.

func checkAllAlgorithms(t *testing.T, disks []geom.Disk, label string) {
	t.Helper()
	var first Skyline
	for _, alg := range algorithms {
		s, err := alg.fn(disks)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, alg.name, err)
		}
		checkEnvelope(t, disks, s, label+"/"+alg.name)
		if s.ArcCount() > 2*len(disks) {
			t.Errorf("%s/%s: arc bound violated: %d > 2·%d",
				label, alg.name, s.ArcCount(), len(disks))
		}
		if first == nil {
			first = s
		} else {
			sameEnvelope(t, disks, first, s, label+"/"+alg.name)
		}
	}
}

func TestRobustExternallyTangentPair(t *testing.T) {
	// Two disks tangent at the origin-side: their circles touch at exactly
	// one point on the far side of the hub.
	disks := []geom.Disk{
		geom.NewDisk(0.5, 0, 1.5),
		geom.NewDisk(-0.5, 0, 1.5),
	}
	checkAllAlgorithms(t, disks, "tangent-pair")
}

func TestRobustNearCoincidentDisks(t *testing.T) {
	base := geom.NewDisk(0.3, 0.1, 1.2)
	disks := []geom.Disk{
		base,
		{C: base.C.Add(geom.Pt(1e-12, 0)), R: base.R},
		{C: base.C, R: base.R + 1e-12},
		{C: base.C.Add(geom.Pt(0, -1e-12)), R: base.R - 1e-12},
	}
	checkAllAlgorithms(t, disks, "near-coincident")
}

func TestRobustExtremeRadiusRatio(t *testing.T) {
	disks := []geom.Disk{
		geom.NewDisk(0, 0, 1e-3),
		geom.NewDisk(5e-4, 0, 1e-3),
		geom.NewDisk(0, 0, 1e3),
		geom.NewDisk(400, 0, 1e3),
	}
	checkAllAlgorithms(t, disks, "extreme-ratio")
}

func TestRobustClusteredAngles(t *testing.T) {
	// Many disks whose centers sit within a tiny angular wedge: all the
	// skyline action happens in a micro-interval plus one huge arc.
	rng := rand.New(rand.NewSource(601))
	disks := make([]geom.Disk, 24)
	for i := range disks {
		theta := 1e-6 * rng.Float64()
		r := 1 + rng.Float64()
		disks[i] = geom.Disk{C: geom.Unit(theta).Scale(rng.Float64() * r * 0.9), R: r}
	}
	checkAllAlgorithms(t, disks, "clustered-angles")
}

func TestRobustCentersOnLine(t *testing.T) {
	// Collinear centers through the hub: every pairwise crossing is at
	// angles ±π/2-symmetric configurations, maximal tie pressure.
	disks := make([]geom.Disk, 0, 12)
	for i := 1; i <= 6; i++ {
		x := float64(i) * 0.15
		disks = append(disks,
			geom.Disk{C: geom.Pt(x, 0), R: 1 + 0.1*float64(i)},
			geom.Disk{C: geom.Pt(-x, 0), R: 1 + 0.1*float64(i)},
		)
	}
	checkAllAlgorithms(t, disks, "collinear")
}

func TestRobustHubOnBoundary(t *testing.T) {
	// Disks whose boundary passes exactly through the hub (‖c‖ == r): the
	// envelope touches zero at one angle.
	disks := []geom.Disk{
		{C: geom.Pt(0.5, 0), R: 0.5},
		{C: geom.Pt(-0.3, 0.4), R: 0.5},
		{C: geom.Pt(0, -0.7), R: 0.7},
	}
	checkAllAlgorithms(t, disks, "hub-on-boundary")
}

func TestRobustRegularPolygonRings(t *testing.T) {
	// Concentric rings of equal disks: heavy symmetry, many simultaneous
	// crossings at identical envelope values.
	var disks []geom.Disk
	for ring := 1; ring <= 3; ring++ {
		k := 4 * ring
		dist := 0.2 * float64(ring)
		for i := 0; i < k; i++ {
			theta := geom.TwoPi * float64(i) / float64(k)
			disks = append(disks, geom.Disk{C: geom.Unit(theta).Scale(dist), R: 1})
		}
	}
	checkAllAlgorithms(t, disks, "rings")
}

func TestRobustManyDuplicatesPlusOne(t *testing.T) {
	d := geom.NewDisk(0.2, 0.3, 1.1)
	disks := make([]geom.Disk, 0, 17)
	for i := 0; i < 16; i++ {
		disks = append(disks, d)
	}
	disks = append(disks, geom.NewDisk(-0.5, 0, 1.4))
	checkAllAlgorithms(t, disks, "duplicates")
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sl.Set()); got != 2 {
		t.Errorf("skyline set size %d, want 2 (16 duplicates collapse to one)", got)
	}
}

func TestRobustLargeRandomStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(602))
	for _, n := range []int{500, 2000} {
		disks := randomLocalSet(rng, n)
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		if err := sl.Validate(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if sl.ArcCount() > 2*n {
			t.Fatalf("n=%d: arc bound violated", n)
		}
		// Spot-check the envelope.
		for k := 0; k < 200; k++ {
			theta := rng.Float64() * geom.TwoPi
			got := sl.RadialDistance(disks, theta)
			want, _ := Rho(disks, theta)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("n=%d: envelope mismatch at θ=%v", n, theta)
			}
		}
	}
}
