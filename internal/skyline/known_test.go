package skyline

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// algorithms lists every skyline constructor for table-driven cross-checks.
var algorithms = []struct {
	name string
	fn   func([]geom.Disk) (Skyline, error)
}{
	{"dnc", Compute},
	{"naive", ComputeNaive},
	{"incremental", ComputeIncremental},
	{"parallel", func(d []geom.Disk) (Skyline, error) { return ComputeParallel(d, 4) }},
}

func TestSingleDisk(t *testing.T) {
	disks := []geom.Disk{geom.NewDisk(0.2, 0.1, 1)}
	for _, alg := range algorithms {
		s, err := alg.fn(disks)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if len(s) != 1 || s[0].Disk != 0 {
			t.Errorf("%s: skyline of one disk = %v, want one full arc", alg.name, s)
		}
		checkEnvelope(t, disks, s, alg.name)
	}
}

func TestTwoOverlappingDisks(t *testing.T) {
	// Two unit disks whose centers are 1 apart; both contain the origin
	// placed between them. Each contributes exactly one arc.
	disks := []geom.Disk{
		geom.NewDisk(-0.5, 0, 1),
		geom.NewDisk(0.5, 0, 1),
	}
	for _, alg := range algorithms {
		s, err := alg.fn(disks)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		checkEnvelope(t, disks, s, alg.name)
		sameSet(t, s.Set(), []int{0, 1}, alg.name)
		if s.ArcCount() != 2 {
			t.Errorf("%s: ArcCount = %d, want 2", alg.name, s.ArcCount())
		}
	}
}

func TestConcentricDisksInnerHidden(t *testing.T) {
	disks := []geom.Disk{
		geom.NewDisk(0, 0, 1),
		geom.NewDisk(0, 0, 2), // dominates
		geom.NewDisk(0.1, 0, 1.5),
	}
	for _, alg := range algorithms {
		s, err := alg.fn(disks)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		checkEnvelope(t, disks, s, alg.name)
		sameSet(t, s.Set(), []int{1}, alg.name)
	}
}

func TestDuplicateDisks(t *testing.T) {
	d := geom.NewDisk(0.3, 0.2, 1.2)
	disks := []geom.Disk{d, d, d}
	for _, alg := range algorithms {
		s, err := alg.fn(disks)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		checkEnvelope(t, disks, s, alg.name)
		if got := s.Set(); len(got) != 1 {
			t.Errorf("%s: duplicate disks must yield a single skyline disk, got %v", alg.name, got)
		}
	}
}

// The hidden-disk configuration of the paper's Figure 3.2: one neighbor's
// disk is covered by the union of the others and must not appear in the
// skyline set.
func TestHiddenDiskExcluded(t *testing.T) {
	// Hub at origin with radius 2. Four neighbors spread around it with
	// generous radii, plus one small-radius neighbor near the hub whose
	// disk the others cover.
	disks := []geom.Disk{
		{C: geom.Pt(0, 0), R: 2},       // 0: the hub's own disk
		{C: geom.Pt(1.2, 0), R: 1.8},   // 1
		{C: geom.Pt(0, 1.2), R: 1.8},   // 2
		{C: geom.Pt(-1.2, 0), R: 1.8},  // 3
		{C: geom.Pt(0, -1.2), R: 1.8},  // 4
		{C: geom.Pt(0.2, 0.2), R: 0.5}, // 5: hidden inside the union
	}
	for _, alg := range algorithms {
		s, err := alg.fn(disks)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		checkEnvelope(t, disks, s, alg.name)
		for _, i := range s.Set() {
			if i == 5 {
				t.Errorf("%s: hidden disk 5 must not be in the skyline set (set=%v)",
					alg.name, s.Set())
			}
		}
	}
}

// The paper's §4.1 construction: k unit disks centered evenly on a circle
// of radius 1/2 around the hub, plus a disk at the hub whose radius lies
// between ‖o − p‖ and 3/2. When that disk is inserted it contributes k
// disjoint arcs. The final skyline must still obey the 2n bound and all
// algorithms must agree.
func TestPaperSection41Construction(t *testing.T) {
	for _, k := range []int{3, 4, 5, 8} {
		disks := section41Disks(k)
		var first Skyline
		for _, alg := range algorithms {
			s, err := alg.fn(disks)
			if err != nil {
				t.Fatalf("k=%d %s: %v", k, alg.name, err)
			}
			checkEnvelope(t, disks, s, alg.name)
			if s.ArcCount() > 2*len(disks) {
				t.Errorf("k=%d %s: ArcCount %d exceeds 2n=%d", k, alg.name, s.ArcCount(), 2*len(disks))
			}
			// The central disk must contribute exactly k arcs in the final
			// skyline (its boundary pokes out between each adjacent pair).
			central := 0
			for _, a := range s {
				if a.Disk == k {
					central++
				}
			}
			if s[0].Disk == k && s[len(s)-1].Disk == k {
				central-- // split wrap-around arc
			}
			if central != k {
				t.Errorf("k=%d %s: central disk contributes %d arcs, want %d",
					k, alg.name, central, k)
			}
			if first == nil {
				first = s
			} else {
				sameEnvelope(t, disks, first, s, alg.name)
			}
		}
	}
}

// Tangent circles: two disks touching internally at one boundary point.
func TestInternallyTangentDisks(t *testing.T) {
	disks := []geom.Disk{
		geom.NewDisk(0, 0, 2),
		geom.NewDisk(1, 0, 1), // tangent to disk 0 at (2, 0)
	}
	for _, alg := range algorithms {
		s, err := alg.fn(disks)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		checkEnvelope(t, disks, s, alg.name)
		sameSet(t, s.Set(), []int{0}, alg.name)
	}
}

func TestErrorCases(t *testing.T) {
	for _, alg := range algorithms {
		if _, err := alg.fn(nil); err == nil {
			t.Errorf("%s: empty set must fail", alg.name)
		}
		if _, err := alg.fn([]geom.Disk{geom.NewDisk(5, 0, 1)}); err == nil {
			t.Errorf("%s: disk not containing the hub must fail", alg.name)
		}
		if _, err := alg.fn([]geom.Disk{geom.NewDisk(0, 0, -1)}); err == nil {
			t.Errorf("%s: negative radius must fail", alg.name)
		}
		if _, err := alg.fn([]geom.Disk{geom.NewDisk(0, 0, math.NaN())}); err == nil {
			t.Errorf("%s: NaN radius must fail", alg.name)
		}
	}
}

func TestComputeIncrementalOrderValidation(t *testing.T) {
	disks := []geom.Disk{geom.NewDisk(0, 0, 1), geom.NewDisk(0.1, 0, 1)}
	if _, err := ComputeIncrementalOrder(disks, []int{0}); err == nil {
		t.Error("short order must fail")
	}
	if _, err := ComputeIncrementalOrder(disks, []int{0, 0}); err == nil {
		t.Error("repeated index must fail")
	}
	if _, err := ComputeIncrementalOrder(disks, []int{0, 5}); err == nil {
		t.Error("out-of-range index must fail")
	}
}
