package skyline

import (
	"runtime"

	"repro/internal/geom"
)

// parallelCutoff is the subproblem size below which the parallel variant
// stops spawning goroutines and runs sequentially. Merging skylines of a
// few dozen arcs is far cheaper than goroutine scheduling.
const parallelCutoff = 256

// ComputeParallel is Compute with the top levels of the divide-and-conquer
// recursion fanned out across goroutines. workers ≤ 0 selects
// runtime.GOMAXPROCS(0). The result is identical to Compute; only the wall
// time differs, and only for large inputs (thousands of disks).
func ComputeParallel(disks []geom.Disk, workers int) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := 0
	for w := 1; w < workers; w *= 2 {
		depth++
	}
	idx := make([]int, len(disks))
	for i := range idx {
		idx[i] = i
	}
	return computeParallel(disks, idx, depth), nil
}

func computeParallel(disks []geom.Disk, idx []int, depth int) Skyline {
	if depth == 0 || len(idx) <= parallelCutoff {
		return compute(disks, idx)
	}
	mid := len(idx) / 2
	ch := make(chan Skyline, 1)
	go func() {
		ch <- computeParallel(disks, idx[:mid], depth-1)
	}()
	right := computeParallel(disks, idx[mid:], depth-1)
	left := <-ch
	return Merge(disks, left, right)
}
