package skyline

import (
	"runtime"

	"repro/internal/geom"
)

// parallelCutoff is the subproblem size below which the parallel variant
// stops spawning goroutines and runs sequentially. Merging skylines of a
// few dozen arcs is far cheaper than goroutine scheduling.
const parallelCutoff = 256

// ComputeParallel is Compute with the top levels of the divide-and-conquer
// recursion fanned out across goroutines. workers ≤ 0 selects
// runtime.GOMAXPROCS(0). The result is identical to Compute; only the wall
// time differs, and only for large inputs (thousands of disks).
func ComputeParallel(disks []geom.Disk, workers int) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := 0
	for w := 1; w < workers; w *= 2 {
		depth++
	}
	idx := make([]int, len(disks))
	for i := range idx {
		idx[i] = i
	}
	m := skyInstr.Load()
	if m == nil {
		return computeParallel(disks, idx, depth, nil, 1), nil
	}
	m.computes.Inc()
	m.parWorkers.Set(float64(workers))
	stop := m.computeSeconds.Start()
	sl := computeParallel(disks, idx, depth, m, 1)
	stop()
	m.recordCompute(len(sl), len(disks))
	return sl, nil
}

// computeParallel fans the recursion out across goroutines for the top
// spawnDepth levels; rdepth tracks the recursion level for the depth gauge.
func computeParallel(disks []geom.Disk, idx []int, spawnDepth int, m *skyMetrics, rdepth int) Skyline {
	if spawnDepth == 0 || len(idx) <= parallelCutoff {
		if m != nil {
			m.parSequential.Inc()
		}
		return compute(disks, idx, m, rdepth)
	}
	if m != nil {
		m.parSpawned.Inc()
	}
	mid := len(idx) / 2
	ch := make(chan Skyline, 1)
	go func() {
		ch <- computeParallel(disks, idx[:mid], spawnDepth-1, m, rdepth+1)
	}()
	right := computeParallel(disks, idx[mid:], spawnDepth-1, m, rdepth+1)
	left := <-ch
	return merge(disks, left, right, true, m)
}
