package skyline

import (
	"runtime"

	"repro/internal/geom"
)

// parallelCutoff is the subproblem size below which the parallel variant
// stops spawning goroutines and runs sequentially. Merging skylines of a
// few dozen arcs is far cheaper than goroutine scheduling.
const parallelCutoff = 256

// ComputeParallel is Compute with the top levels of the divide-and-conquer
// recursion fanned out across goroutines. workers ≤ 0 selects
// runtime.GOMAXPROCS(0). The result is identical to Compute; only the wall
// time differs, and only for large inputs (thousands of disks).
func ComputeParallel(disks []geom.Disk, workers int) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := 0
	for w := 1; w < workers; w *= 2 {
		depth++
	}
	m := skyInstr.Load()
	if m == nil {
		return computeParallel(disks, 0, len(disks), depth, nil, 1), nil
	}
	m.computes.Inc()
	m.parWorkers.Set(float64(workers))
	sw := m.computeSeconds.Start()
	sl := computeParallel(disks, 0, len(disks), depth, m, 1)
	sw.Stop()
	m.recordCompute(len(sl), len(disks))
	return sl, nil
}

// computeParallel fans the recursion out across goroutines for the top
// spawnDepth levels; rdepth tracks the recursion level for the depth gauge.
// Each sequential subtree and each top-level merge borrows a pooled Scratch
// (concurrent branches need distinct working memory), so the only per-call
// allocations are the subtree results themselves.
func computeParallel(disks []geom.Disk, lo, hi, spawnDepth int, m *skyMetrics, rdepth int) Skyline {
	if spawnDepth == 0 || hi-lo <= parallelCutoff {
		if m != nil {
			m.parSequential.Inc()
		}
		return computeRange(disks, lo, hi, m, rdepth)
	}
	if m != nil {
		m.parSpawned.Inc()
	}
	mid := lo + (hi-lo)/2
	ch := make(chan Skyline, 1)
	go func() {
		ch <- computeParallel(disks, lo, mid, spawnDepth-1, m, rdepth+1)
	}()
	right := computeParallel(disks, mid, hi, spawnDepth-1, m, rdepth+1)
	left := <-ch
	return Merge(disks, left, right)
}
