package skyline

import (
	"math/rand"
	"testing"
)

// Lemma 8's proof hinges on inserting disks in decreasing radius order:
// then every insertion adds at most 2 to the arc count. Verify the
// per-insertion growth directly.
func TestDecreasingRadiusInsertionGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		disks := randomLocalSet(rng, n)
		order := DecreasingRadiusOrder(disks)
		counts, err := IncrementalArcGrowth(disks, order)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < len(counts); k++ {
			if counts[k] > counts[k-1]+2 {
				t.Fatalf("trial %d: insertion %d grew arcs from %d to %d (> +2) "+
					"in decreasing-radius order", trial, k, counts[k-1], counts[k])
			}
			if counts[k] > 2*(k+1) {
				t.Fatalf("trial %d: after %d insertions arc count %d exceeds 2k",
					trial, k+1, counts[k])
			}
		}
	}
}

// In contrast, arbitrary insertion orders can grow the arc count by more
// than 2 in a single step (the paper's §4.1 counterexample), but the final
// skyline still satisfies the 2n bound. We check the final bound for random
// orders.
func TestArbitraryOrderFinalBound(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		disks := randomLocalSet(rng, n)
		order := rng.Perm(n)
		counts, err := IncrementalArcGrowth(disks, order)
		if err != nil {
			t.Fatal(err)
		}
		if final := counts[len(counts)-1]; final > 2*n {
			t.Fatalf("trial %d: final arc count %d exceeds 2n=%d", trial, final, 2*n)
		}
	}
}

// The §4.1 construction demonstrates a single insertion adding k arcs when
// the inserted disk is smaller than the existing ones and inserted last.
func TestCounterexampleInsertionJump(t *testing.T) {
	disks := section41Disks(5)
	n := len(disks)
	// Insert the central disk (index n-1) last.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	counts, err := IncrementalArcGrowth(disks, order)
	if err != nil {
		t.Fatal(err)
	}
	jump := counts[n-1] - counts[n-2]
	if jump <= 2 {
		t.Errorf("expected the last insertion to add more than 2 arcs, added %d "+
			"(counts %v)", jump, counts)
	}
	// Decreasing-radius order avoids the jump on the same input.
	counts2, err := IncrementalArcGrowth(disks, DecreasingRadiusOrder(disks))
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(counts2); k++ {
		if counts2[k] > counts2[k-1]+2 {
			t.Errorf("decreasing-radius order grew by %d at step %d (counts %v)",
				counts2[k]-counts2[k-1], k, counts2)
		}
	}
}

func TestDecreasingRadiusOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	disks := randomLocalSet(rng, 20)
	order := DecreasingRadiusOrder(disks)
	for k := 1; k < len(order); k++ {
		if disks[order[k-1]].R < disks[order[k]].R {
			t.Fatalf("order not decreasing at %d: %v then %v",
				k, disks[order[k-1]].R, disks[order[k]].R)
		}
	}
}
