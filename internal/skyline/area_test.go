package skyline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestAreaSingleDisk(t *testing.T) {
	// Any single disk containing the origin: area must be πr² regardless
	// of where the hub sits inside it.
	cases := []geom.Disk{
		geom.NewDisk(0, 0, 1),
		geom.NewDisk(0.5, 0, 1),
		geom.NewDisk(0.3, -0.7, 1.5),
	}
	for _, d := range cases {
		sl, err := Compute([]geom.Disk{d})
		if err != nil {
			t.Fatal(err)
		}
		got := sl.Area([]geom.Disk{d})
		want := math.Pi * d.R * d.R
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("Area of %v = %.12f, want %.12f", d, got, want)
		}
	}
}

func TestAreaTwoDisksClosedForm(t *testing.T) {
	// Two unit disks with centers distance 1 apart (lens configuration):
	// union area = 2π − 2·lens/2 ... directly: union = 2πr² − intersection,
	// intersection of two unit circles at distance d:
	// 2r²·acos(d/2r) − (d/2)·sqrt(4r²−d²).
	d := 1.0
	inter := 2*math.Acos(d/2) - d/2*math.Sqrt(4-d*d)
	want := 2*math.Pi - inter
	disks := []geom.Disk{geom.NewDisk(-0.5, 0, 1), geom.NewDisk(0.5, 0, 1)}
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	got := sl.Area(disks)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("union area = %.12f, want %.12f", got, want)
	}
}

func TestAreaContainedDiskIgnored(t *testing.T) {
	disks := []geom.Disk{
		geom.NewDisk(0, 0, 2),
		geom.NewDisk(0.2, 0.1, 0.5), // strictly inside
	}
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	got := sl.Area(disks)
	want := 4 * math.Pi
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("area = %.12f, want %.12f (inner disk contributes nothing)", got, want)
	}
}

// The exact skyline area must agree with Monte-Carlo estimation on random
// heterogeneous local sets — a cross-check that is independent of the
// skyline algorithms' geometry.
func TestAreaMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 10; trial++ {
		disks := randomLocalSet(rng, 2+rng.Intn(15))
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		exact := sl.Area(disks)
		mc := geom.UnionAreaMC(disks, 400000, rng)
		if math.Abs(exact-mc)/exact > 0.02 {
			t.Errorf("trial %d: exact %.6f vs MC %.6f", trial, exact, mc)
		}
		// The union is at least as large as the biggest disk and at most
		// the sum of the disks.
		var maxA, sumA float64
		for _, d := range disks {
			a := d.Area()
			sumA += a
			if a > maxA {
				maxA = a
			}
		}
		if exact < maxA-1e-9 || exact > sumA+1e-9 {
			t.Errorf("trial %d: area %.6f outside [max disk %.6f, sum %.6f]",
				trial, exact, maxA, sumA)
		}
	}
}

// Theorem 3 in area form: the skyline set's union has the same exact area
// as the full union.
func TestAreaOfCoverEqualsAreaOfAll(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 20; trial++ {
		disks := randomLocalSet(rng, 2+rng.Intn(20))
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		full := sl.Area(disks)
		var cover []geom.Disk
		for _, i := range sl.Set() {
			cover = append(cover, disks[i])
		}
		slCover, err := Compute(cover)
		if err != nil {
			t.Fatal(err)
		}
		got := slCover.Area(cover)
		if math.Abs(got-full) > 1e-6*(1+full) {
			t.Errorf("trial %d: cover area %.9f != full area %.9f", trial, got, full)
		}
	}
}
