package skyline

import (
	"sort"

	"repro/internal/geom"
)

// Compute builds the skyline of a local disk set with the paper's
// divide-and-conquer algorithm (procedure Skyline, §3.4): split the disk
// set in half, recursively compute the two skylines, and Merge them. With
// the ≤ 2n arc bound of Lemma 8 the merge is linear, so the whole
// computation takes O(n log n) time — optimal (Theorem 9).
//
// The disks must all contain the origin (the hub's frame); otherwise
// ErrNotLocalDiskSet is returned.
func Compute(disks []geom.Disk) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	idx := make([]int, len(disks))
	for i := range idx {
		idx[i] = i
	}
	m := skyInstr.Load()
	if m == nil {
		return compute(disks, idx, nil, 1), nil
	}
	m.computes.Inc()
	stop := m.computeSeconds.Start()
	sl := compute(disks, idx, m, 1)
	stop()
	m.recordCompute(len(sl), len(disks))
	return sl, nil
}

// compute is the recursive core, operating on a window of disk indices.
// m (possibly nil) is the installed instrumentation, loaded once per
// Compute; depth is the current recursion level, recorded at the leaves.
func compute(disks []geom.Disk, idx []int, m *skyMetrics, depth int) Skyline {
	if len(idx) == 1 {
		if m != nil {
			m.depth.SetMax(float64(depth))
		}
		return single(idx[0])
	}
	mid := len(idx) / 2
	left := compute(disks, idx[:mid], m, depth+1)
	right := compute(disks, idx[mid:], m, depth+1)
	return merge(disks, left, right, true, m)
}

// ComputeNoCombine is Compute with Step 3 of Merge (re-combining adjacent
// arcs from the same disk) disabled at every level of the recursion. The
// result describes the same envelope but may carry redundantly split arcs.
// It exists solely for the A1 ablation in DESIGN.md: the paper notes that
// Step 3 "could reduce the overhead in splitting skyline lists", and this
// variant quantifies that claim. Production callers should use Compute.
func ComputeNoCombine(disks []geom.Disk) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	idx := make([]int, len(disks))
	for i := range idx {
		idx[i] = i
	}
	var rec func(idx []int) Skyline
	rec = func(idx []int) Skyline {
		if len(idx) == 1 {
			return single(idx[0])
		}
		mid := len(idx) / 2
		return mergeNoCombine(disks, rec(idx[:mid]), rec(idx[mid:]))
	}
	return rec(idx), nil
}

// Merge combines two skylines over the same disk slice into the skyline of
// the union of their disk sets. It follows the paper's three steps:
//
//  1. Align the two arc lists on the union of their breakpoint angles, so
//     that within each elementary span exactly one disk is active per side.
//  2. Within each span, resolve the paper's three cases — the two active
//     arcs either do not cross, cross once, or cross twice — by cutting the
//     span at the (far-root-consistent) circle–circle intersection angles
//     and picking the outer arc on each piece.
//  3. Re-combine adjacent arcs contributed by the same disk.
//
// Both inputs must be valid skylines (contiguous over [0, 2π)).
func Merge(disks []geom.Disk, s1, s2 Skyline) Skyline {
	return merge(disks, s1, s2, true, skyInstr.Load())
}

// mergeNoCombine merges without coalescing same-disk neighbors, for the A1
// ablation (see ComputeNoCombine). Ablations are never instrumented.
func mergeNoCombine(disks []geom.Disk, s1, s2 Skyline) Skyline {
	return merge(disks, s1, s2, false, nil)
}

func merge(disks []geom.Disk, s1, s2 Skyline, coalesce bool, ins *skyMetrics) Skyline {
	// Step 1: merged breakpoint sequence.
	bps := make([]float64, 0, len(s1)+len(s2)+2)
	for _, a := range s1 {
		bps = append(bps, a.Start)
	}
	for _, a := range s2 {
		bps = append(bps, a.Start)
	}
	bps = append(bps, geom.TwoPi)
	sort.Float64s(bps)
	bps = dedupeAngles(bps)
	if len(bps) == 0 || !geom.AngleSliver(0, bps[0]) {
		bps = append([]float64{0}, bps...)
	} else {
		bps[0] = 0
	}
	bps[len(bps)-1] = geom.TwoPi

	if ins != nil {
		ins.merges.Inc()
		ins.breakpoints.Add(int64(len(bps)))
	}
	out := make(Skyline, 0, len(s1)+len(s2))
	i1, i2 := 0, 0
	for k := 0; k+1 < len(bps); k++ {
		a, b := bps[k], bps[k+1]
		if geom.AngleSliver(a, b) {
			continue
		}
		m := (a + b) / 2
		for i1 < len(s1)-1 && s1[i1].End <= m {
			i1++
		}
		for i2 < len(s2)-1 && s2[i2].End <= m {
			i2++
		}
		out = resolveSpan(disks, out, a, b, s1[i1].Disk, s2[i2].Disk, coalesce, ins)
	}
	if len(out) == 0 {
		// Degenerate: all spans were slivers. Fall back to whichever disk
		// wins at an arbitrary angle.
		win := winner(disks, s1[0].Disk, s2[0].Disk, 1.0)
		return single(win)
	}
	out[0].Start = 0
	out[len(out)-1].End = geom.TwoPi

	if !coalesce {
		return out
	}
	// Step 3: coalesce same-disk neighbors and drop slivers.
	return out.Combine()
}

// resolveSpan appends to out the skyline arcs of the span [a, b] on which
// disk u is active in one input skyline and disk v in the other. This is
// the paper's Case 1/2/3 analysis: cut the span at the crossings of the two
// ρ curves (0, 1, or 2 of them) and keep the outer disk on each piece.
func resolveSpan(disks []geom.Disk, out Skyline, a, b float64, u, v int, coalesce bool, ins *skyMetrics) Skyline {
	if u == v {
		if ins != nil {
			ins.case0.Inc()
		}
		return appendArc(out, a, b, u, coalesce)
	}
	var cuts [8]float64
	n := 0
	cuts[n] = a
	n++
	cands, cn := crossingAngles(disks, u, v)
	for _, c := range cands[:cn] {
		if geom.AngleStrictlyInSpan(c, a, b) {
			cuts[n] = c
			n++
		}
	}
	cuts[n] = b
	n++
	if ins != nil {
		// n−2 interior cuts classify the span into the paper's cases;
		// degenerate tangent-at-hub candidates can push past 2 and are
		// counted with case 2.
		switch n - 2 {
		case 0:
			ins.case0.Inc()
		case 1:
			ins.case1.Inc()
		default:
			ins.case2.Inc()
		}
	}
	// Candidate angles arrive in unspecified order.
	sort.Float64s(cuts[1 : n-1])
	for k := 0; k+1 < n; k++ {
		lo, hi := cuts[k], cuts[k+1]
		if geom.AngleSliver(lo, hi) {
			continue
		}
		out = appendArc(out, lo, hi, winner(disks, u, v, (lo+hi)/2), coalesce)
	}
	return out
}

// appendArc appends the arc [a, b] for the given disk; with coalesce it
// extends the previous arc instead when it comes from the same disk.
func appendArc(out Skyline, a, b float64, disk int, coalesce bool) Skyline {
	if coalesce && len(out) > 0 && out[len(out)-1].Disk == disk {
		out[len(out)-1].End = b
		return out
	}
	return append(out, Arc{Start: a, End: b, Disk: disk})
}
