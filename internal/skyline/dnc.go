package skyline

import (
	"repro/internal/geom"
)

// Compute builds the skyline of a local disk set with the paper's
// divide-and-conquer algorithm (procedure Skyline, §3.4): split the disk
// set in half, recursively compute the two skylines, and Merge them. With
// the ≤ 2n arc bound of Lemma 8 the merge is linear, so the whole
// computation takes O(n log n) time — optimal (Theorem 9).
//
// Compute borrows a pooled Scratch, so its own allocation cost is O(1)
// amortized: the returned skyline. Callers on a hot loop should hold a
// Scratch and use ComputeInto instead, which is allocation-free once
// warm.
//
// The disks must all contain the origin (the hub's frame); otherwise
// ErrNotLocalDiskSet is returned.
func Compute(disks []geom.Disk) (Skyline, error) {
	sc := getScratch()
	defer putScratch(sc)
	view, err := sc.view(disks)
	if err != nil {
		return nil, err
	}
	out := make(Skyline, len(view))
	copy(out, view)
	return out, nil
}

// ComputeNoCombine is Compute with Step 3 of Merge (re-combining adjacent
// arcs from the same disk) disabled at every level of the recursion. The
// result describes the same envelope but may carry redundantly split arcs.
// It exists solely for the A1 ablation in DESIGN.md: the paper notes that
// Step 3 "could reduce the overhead in splitting skyline lists", and this
// variant quantifies that claim. Production callers should use Compute.
func ComputeNoCombine(disks []geom.Disk) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	sc := getScratch()
	defer putScratch(sc)
	var rec func(lo, hi int) Skyline
	rec = func(lo, hi int) Skyline {
		if hi-lo == 1 {
			return single(lo)
		}
		mid := lo + (hi-lo)/2
		// Children complete before the parent merge starts, so the shared
		// scratch's breakpoint buffer is free; each node's output is a
		// fresh slice because both children stay live during the merge.
		return mergeInto(nil, sc, disks, rec(lo, mid), rec(mid, hi), false, nil, nil)
	}
	return rec(0, len(disks)), nil
}

// Merge combines two skylines over the same disk slice into the skyline of
// the union of their disk sets. It follows the paper's three steps:
//
//  1. Align the two arc lists on the union of their breakpoint angles, so
//     that within each elementary span exactly one disk is active per side.
//  2. Within each span, resolve the paper's three cases — the two active
//     arcs either do not cross, cross once, or cross twice — by cutting the
//     span at the (far-root-consistent) circle–circle intersection angles
//     and picking the outer arc on each piece.
//  3. Re-combine adjacent arcs contributed by the same disk.
//
// Step 1 is a single linear two-pointer pass over the two already-sorted
// arc lists (Lemma 8's precondition for the linear Merge behind
// Theorem 9); no sorting happens anywhere on this path.
//
// Both inputs must be valid skylines (contiguous over [0, 2π)).
func Merge(disks []geom.Disk, s1, s2 Skyline) Skyline {
	sc := getScratch()
	out := mergeInto(sc.out[:0], sc, disks, s1, s2, true, skyInstr.Load(), nil)
	sc.out = out
	owned := make(Skyline, len(out))
	copy(owned, out)
	putScratch(sc)
	return owned
}

// mergeInto merges s1 and s2 into dst[:0] and returns it. dst must not
// alias s1, s2, or sc's internal buffers; sc supplies the breakpoint
// scratch. With coalesce false, Step 3 is skipped (the A1 ablation, never
// instrumented). A non-nil tie receives the kinetic-repair tie report
// (see resolveSpan); the full compute path passes nil.
//
//mldcs:hotpath
func mergeInto(dst Skyline, sc *Scratch, disks []geom.Disk, s1, s2 Skyline, coalesce bool, ins *skyMetrics, tie *bool) Skyline {
	// Step 1: merged breakpoint sequence. Both inputs carry their arcs in
	// increasing angle order, so one two-pointer pass yields the sorted
	// union of their start angles, deduplicated within geom.AngleEps
	// against the last kept breakpoint — exactly the sequence the former
	// sort+dedupe produced, in O(|s1|+|s2|) with no allocation.
	bps := sc.bps[:0]
	i, j := 0, 0
	for i < len(s1) || j < len(s2) {
		var v float64
		if j >= len(s2) || (i < len(s1) && s1[i].Start <= s2[j].Start) {
			v = s1[i].Start
			i++
		} else {
			v = s2[j].Start
			j++
		}
		if len(bps) == 0 || !geom.AngleSliver(bps[len(bps)-1], v) {
			bps = append(bps, v)
		}
	}
	// 2π sentinel, deduplicated like any other breakpoint.
	if len(bps) == 0 || !geom.AngleSliver(bps[len(bps)-1], geom.TwoPi) {
		bps = append(bps, geom.TwoPi)
	}
	// Anchor the sequence at exactly 0: snap a first breakpoint within
	// AngleEps of 0, otherwise shift right and insert (valid inputs start
	// at 0, so the shift is a theoretical branch, not a copy per merge).
	if !geom.AngleSliver(0, bps[0]) {
		bps = append(bps, 0)
		copy(bps[1:], bps)
		bps[0] = 0
	} else {
		bps[0] = 0
	}
	bps[len(bps)-1] = geom.TwoPi
	sc.bps = bps

	if ins != nil {
		ins.merges.Inc()
		ins.breakpoints.Add(int64(len(bps)))
	}
	out := dst[:0]
	i1, i2 := 0, 0
	for k := 0; k+1 < len(bps); k++ {
		a, b := bps[k], bps[k+1]
		if geom.AngleSliver(a, b) {
			if tie != nil {
				*tie = true
			}
			continue
		}
		m := (a + b) / 2
		for i1 < len(s1)-1 && s1[i1].End <= m {
			i1++
		}
		for i2 < len(s2)-1 && s2[i2].End <= m {
			i2++
		}
		out = resolveSpan(disks, out, a, b, s1[i1].Disk, s2[i2].Disk, coalesce, ins, tie)
	}
	if len(out) == 0 {
		// Degenerate: all spans were slivers. Fall back to whichever disk
		// wins at an arbitrary angle.
		win := winner(disks, s1[0].Disk, s2[0].Disk, 1.0)
		return append(out, Arc{Start: 0, End: geom.TwoPi, Disk: win})
	}
	out[0].Start = 0
	out[len(out)-1].End = geom.TwoPi

	if !coalesce {
		return out
	}
	// Step 3: coalesce same-disk neighbors and drop slivers, in place.
	return combineInPlace(out)
}

// combineInPlace is Skyline.Combine (Step 3 of the paper's Merge)
// performed in place: the write cursor never passes the read cursor, so
// the buffer is rewritten without a copy. The returned slice is a prefix
// of s with identical values to s.Combine().
func combineInPlace(s Skyline) Skyline {
	w := 0
	for _, a := range s {
		if geom.AngleSliver(a.Start, a.End) {
			// Sliver: extend the previous arc over it instead of keeping it.
			if w > 0 {
				s[w-1].End = a.End
			}
			continue
		}
		if w > 0 && s[w-1].Disk == a.Disk {
			s[w-1].End = a.End
			continue
		}
		s[w] = a
		w++
	}
	if w == 0 && len(s) > 0 {
		// Everything was a sliver (can only happen with pathological eps
		// settings); fall back to a single arc from the first input.
		s[0] = Arc{Start: 0, End: geom.TwoPi, Disk: s[0].Disk}
		w = 1
	}
	out := s[:w]
	if w > 0 {
		out[0].Start = 0
		out[w-1].End = geom.TwoPi
	}
	return out
}

// resolveSpan appends to out the skyline arcs of the span [a, b] on which
// disk u is active in one input skyline and disk v in the other. This is
// the paper's Case 1/2/3 analysis: cut the span at the crossings of the two
// ρ curves (0, 1, or 2 of them) and keep the outer disk on each piece.
//
// A non-nil tie is the kinetic-repair safety valve: it is set whenever the
// span resolution leaned on a degenerate decision — an envelope tie within
// geom.RhoEps broken by betterTie, a sliver piece dropped between
// near-coincident crossings, or a hub-tangent disk (whose ρ vanishes on a
// half-circle, the family that makes intervals of exact ties possible).
// On any of these the repaired result may legitimately pick a different
// representative than a from-scratch compute would, so the caller must
// fall back to a full recompute to stay bit-compatible with it. The full
// compute path passes nil and pays nothing.
func resolveSpan(disks []geom.Disk, out Skyline, a, b float64, u, v int, coalesce bool, ins *skyMetrics, tie *bool) Skyline {
	if u == v {
		if ins != nil {
			ins.case0.Inc()
		}
		return appendArc(out, a, b, u, coalesce)
	}
	if tie != nil && (hubTangent(disks[u]) || hubTangent(disks[v])) {
		*tie = true
	}
	var cuts [8]float64
	n := 0
	cuts[n] = a
	n++
	cands, cn := crossingAngles(disks, u, v)
	for _, c := range cands[:cn] {
		if geom.AngleStrictlyInSpan(c, a, b) {
			cuts[n] = c
			n++
		}
	}
	cuts[n] = b
	n++
	if ins != nil {
		// n−2 interior cuts classify the span into the paper's cases;
		// degenerate tangent-at-hub candidates can push past 2 and are
		// counted with case 2.
		switch n - 2 {
		case 0:
			ins.case0.Inc()
		case 1:
			ins.case1.Inc()
		default:
			ins.case2.Inc()
		}
	}
	// Candidate angles arrive in unspecified order; there are at most six
	// interior cuts, so an inline insertion sort orders them without
	// bringing sort.* onto the hot path.
	for p := 2; p < n-1; p++ {
		x := cuts[p]
		q := p
		for q > 1 && cuts[q-1] > x {
			cuts[q] = cuts[q-1]
			q--
		}
		cuts[q] = x
	}
	for k := 0; k+1 < n; k++ {
		lo, hi := cuts[k], cuts[k+1]
		if geom.AngleSliver(lo, hi) {
			if tie != nil && k > 0 && k+2 < n {
				// An interior sliver means two crossings nearly coincide
				// (tangency); the winner on either side is numerically shaky.
				*tie = true
			}
			continue
		}
		out = appendArc(out, lo, hi, winnerFlag(disks, u, v, (lo+hi)/2, tie), coalesce)
	}
	return out
}

// appendArc appends the arc [a, b] for the given disk; with coalesce it
// extends the previous arc instead when it comes from the same disk.
func appendArc(out Skyline, a, b float64, disk int, coalesce bool) Skyline {
	if coalesce && len(out) > 0 && out[len(out)-1].Disk == disk {
		out[len(out)-1].End = b
		return out
	}
	return append(out, Arc{Start: a, End: b, Disk: disk})
}
