package skyline

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// Two unit disks centered at (±a, 0) with 0 < a < 1: their circles meet at
// (0, ±√(1−a²)), so the skyline breakpoints sit exactly at π/2 and 3π/2,
// with the right disk owning (−π/2, π/2) and the left one the rest.
func TestGoldenTwoSymmetricDisks(t *testing.T) {
	for _, a := range []float64{0.2, 0.5, 0.9} {
		disks := []geom.Disk{
			geom.NewDisk(a, 0, 1),  // 0: right
			geom.NewDisk(-a, 0, 1), // 1: left
		}
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		if len(sl) != 3 {
			t.Fatalf("a=%g: got %d stored arcs, want 3 (split at 0): %v", a, len(sl), sl)
		}
		wantArcs := []struct {
			start, end float64
			disk       int
		}{
			{0, math.Pi / 2, 0},
			{math.Pi / 2, 3 * math.Pi / 2, 1},
			{3 * math.Pi / 2, geom.TwoPi, 0},
		}
		for i, w := range wantArcs {
			if sl[i].Disk != w.disk {
				t.Errorf("a=%g arc %d: disk %d, want %d", a, i, sl[i].Disk, w.disk)
			}
			if math.Abs(sl[i].Start-w.start) > 1e-9 || math.Abs(sl[i].End-w.end) > 1e-9 {
				t.Errorf("a=%g arc %d: [%.12f, %.12f], want [%.12f, %.12f]",
					a, i, sl[i].Start, sl[i].End, w.start, w.end)
			}
		}
		// Envelope values at the cardinal directions are analytic:
		// ρ(0) = a + 1, ρ(π) = a + 1, ρ(π/2) = √(1−a²).
		if got := envelopeValue(disks, sl, 0); math.Abs(got-(a+1)) > 1e-12 {
			t.Errorf("a=%g: ρ(0) = %.15f, want %.15f", a, got, a+1)
		}
		if got := envelopeValue(disks, sl, math.Pi); math.Abs(got-(a+1)) > 1e-12 {
			t.Errorf("a=%g: ρ(π) = %.15f, want %.15f", a, got, a+1)
		}
		want := math.Sqrt(1 - a*a)
		if got := envelopeValue(disks, sl, math.Pi/2); math.Abs(got-want) > 1e-9 {
			t.Errorf("a=%g: ρ(π/2) = %.15f, want %.15f", a, got, want)
		}
	}
}

// Three unit disks at angles 0, 2π/3, 4π/3 and equal distance from the
// hub: by symmetry the breakpoints are the bisector angles π/3, π, 5π/3.
func TestGoldenThreeSymmetricDisks(t *testing.T) {
	const dist = 0.6
	disks := make([]geom.Disk, 3)
	for i := range disks {
		theta := geom.TwoPi * float64(i) / 3
		disks[i] = geom.Disk{C: geom.Unit(theta).Scale(dist), R: 1}
	}
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	if got := sl.ArcCount(); got != 3 {
		t.Fatalf("ArcCount = %d, want 3", got)
	}
	// Stored (split) representation: disk 0 on [0, π/3] and [5π/3, 2π],
	// disk 1 on [π/3, π], disk 2 on [π, 5π/3].
	wantBreaks := []float64{math.Pi / 3, math.Pi, 5 * math.Pi / 3}
	var gotBreaks []float64
	for _, arc := range sl[:len(sl)-1] {
		gotBreaks = append(gotBreaks, arc.End)
	}
	if len(gotBreaks) != 3 {
		t.Fatalf("breakpoints %v, want 3 interior breaks", gotBreaks)
	}
	for i, w := range wantBreaks {
		if math.Abs(gotBreaks[i]-w) > 1e-9 {
			t.Errorf("breakpoint %d = %.12f, want %.12f", i, gotBreaks[i], w)
		}
	}
	for theta, wantDisk := range map[float64]int{0.1: 0, 2.0: 1, 4.0: 2, 6.0: 0} {
		if got := sl.DiskAt(theta); got != wantDisk {
			t.Errorf("DiskAt(%g) = %d, want %d", theta, got, wantDisk)
		}
	}
}

// A hub-centered disk strictly dominating others: skyline is one arc with
// ρ constant.
func TestGoldenDominatingDisk(t *testing.T) {
	disks := []geom.Disk{
		geom.NewDisk(0.3, 0.2, 1),
		geom.NewDisk(0, 0, 3),
		geom.NewDisk(-0.4, 0.1, 1.2),
	}
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	if len(sl) != 1 || sl[0].Disk != 1 {
		t.Fatalf("skyline = %v, want single arc of disk 1", sl)
	}
	for _, theta := range []float64{0, 1, 2, 3, 4, 5, 6} {
		if got := envelopeValue(disks, sl, theta); math.Abs(got-3) > 1e-12 {
			t.Errorf("ρ(%g) = %.15f, want 3", theta, got)
		}
	}
}

// The exact area of the two-symmetric-disk union has a closed form; check
// Area against it at several separations (complements the MC cross-check).
func TestGoldenTwoDiskArea(t *testing.T) {
	for _, a := range []float64{0.2, 0.5, 0.9} {
		disks := []geom.Disk{geom.NewDisk(a, 0, 1), geom.NewDisk(-a, 0, 1)}
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		d := 2 * a
		inter := 2*math.Acos(d/2) - d/2*math.Sqrt(4-d*d)
		want := 2*math.Pi - inter
		if got := sl.Area(disks); math.Abs(got-want) > 1e-9 {
			t.Errorf("a=%g: area %.12f, want %.12f", a, got, want)
		}
	}
}
