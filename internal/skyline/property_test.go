package skyline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// localSetInput is a testing/quick-generatable description of a local disk
// set: raw float triples folded into valid disks by its Disks method.
type localSetInput struct {
	Seed int64
	N    uint8
}

// Disks expands the compact input into a concrete local disk set with
// 1..32 disks.
func (in localSetInput) Disks() []geom.Disk {
	n := int(in.N)%32 + 1
	rng := rand.New(rand.NewSource(in.Seed))
	return randomLocalSet(rng, n)
}

// Property: the skyline envelope equals max_i ρ_i(θ) at arbitrary angles.
func TestQuickEnvelopeIsMax(t *testing.T) {
	f := func(in localSetInput, rawTheta float64) bool {
		if math.IsNaN(rawTheta) || math.IsInf(rawTheta, 0) {
			return true
		}
		disks := in.Disks()
		s, err := Compute(disks)
		if err != nil {
			return false
		}
		theta := geom.NormalizeAngle(rawTheta)
		want, _ := Rho(disks, theta)
		got := envelopeValue(disks, s, theta)
		return math.Abs(got-want) <= 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: every disk in the skyline set exclusively covers some region
// (Theorem 3's forward direction): there is an angle where it is the strict
// unique maximum among all disks.
func TestQuickSkylineDisksHaveWitness(t *testing.T) {
	f := func(in localSetInput) bool {
		disks := in.Disks()
		s, err := Compute(disks)
		if err != nil {
			return false
		}
		for _, a := range s {
			if a.Span() < 1e-6 {
				continue // tolerance slivers have no robust witness
			}
			mid := (a.Start + a.End) / 2
			rho := disks[a.Disk].RayDist(mid)
			for j := range disks {
				if j == a.Disk {
					continue
				}
				if disks[j].RayDist(mid) > rho+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the union of the skyline-set disks equals the union of all
// disks (Theorem 3: the skyline set is a disk cover set). Checked by
// Monte-Carlo sampling.
func TestQuickSkylineSetCoversUnion(t *testing.T) {
	f := func(in localSetInput) bool {
		disks := in.Disks()
		s, err := Compute(disks)
		if err != nil {
			return false
		}
		cover := make([]geom.Disk, 0, len(disks))
		for _, i := range s.Set() {
			cover = append(cover, disks[i])
		}
		rng := rand.New(rand.NewSource(in.Seed ^ 0x5eed))
		eq, _ := geom.UnionsEqualMC(disks, cover, 2000, rng)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: Lemma 8 — the skyline of n disks has at most 2n arcs.
func TestQuickLemma8ArcBound(t *testing.T) {
	f := func(in localSetInput) bool {
		disks := in.Disks()
		s, err := Compute(disks)
		if err != nil {
			return false
		}
		return s.ArcCount() <= 2*len(disks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the skyline is scale- and rotation-equivariant: scaling all
// disks by k > 0 or rotating them about the hub leaves the skyline set
// unchanged.
func TestQuickScaleRotationInvariance(t *testing.T) {
	f := func(in localSetInput, rawScale, rawRot float64) bool {
		if math.IsNaN(rawScale) || math.IsInf(rawScale, 0) ||
			math.IsNaN(rawRot) || math.IsInf(rawRot, 0) {
			return true
		}
		k := 0.5 + math.Abs(math.Mod(rawScale, 4)) // scale in [0.5, 4.5)
		phi := geom.NormalizeAngle(rawRot)
		cos, sin := math.Cos(phi), math.Sin(phi)
		disks := in.Disks()
		xformed := make([]geom.Disk, len(disks))
		for i, d := range disks {
			c := geom.Pt(k*(d.C.X*cos-d.C.Y*sin), k*(d.C.X*sin+d.C.Y*cos))
			xformed[i] = geom.Disk{C: c, R: k * d.R}
		}
		a, err := Compute(disks)
		if err != nil {
			return false
		}
		b, err := Compute(xformed)
		if err != nil {
			return false
		}
		sa, sb := a.Set(), b.Set()
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: adding a disk that is contained in an existing disk never
// changes the skyline set.
func TestQuickDominatedDiskIrrelevant(t *testing.T) {
	f := func(in localSetInput, which uint8, shrink float64) bool {
		if math.IsNaN(shrink) || math.IsInf(shrink, 0) {
			return true
		}
		disks := in.Disks()
		host := disks[int(which)%len(disks)]
		// A concentric shrunken copy of host is dominated by it.
		k := 0.1 + 0.8*math.Abs(math.Mod(shrink, 1))
		sub := geom.Disk{C: host.C.Scale(1 - (1-k)*0), R: host.R * k}
		// Keep it a local disk: it must still contain the origin. Shrink
		// the center toward the origin proportionally.
		sub.C = host.C.Scale(k)
		if !sub.ContainsOrigin() {
			return true
		}
		if !host.ContainsDisk(sub) {
			return true
		}
		a, err := Compute(disks)
		if err != nil {
			return false
		}
		b, err := Compute(append(disks[:len(disks):len(disks)], sub))
		if err != nil {
			return false
		}
		sa, sb := a.Set(), b.Set()
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
