package skyline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomLocalSet generates n disks that all contain the origin, with radii
// in [1, 2] as in the paper's heterogeneous networks.
func randomLocalSet(rng *rand.Rand, n int) []geom.Disk {
	disks := make([]geom.Disk, n)
	for i := range disks {
		r := 1 + rng.Float64()
		dist := rng.Float64() * r * 0.999
		theta := rng.Float64() * geom.TwoPi
		disks[i] = geom.Disk{C: geom.Unit(theta).Scale(dist), R: r}
	}
	return disks
}

// randomHomogeneousSet generates n unit disks that all contain the origin,
// as in the paper's homogeneous networks.
func randomHomogeneousSet(rng *rand.Rand, n int) []geom.Disk {
	disks := make([]geom.Disk, n)
	for i := range disks {
		dist := rng.Float64() * 0.999
		theta := rng.Float64() * geom.TwoPi
		disks[i] = geom.Disk{C: geom.Unit(theta).Scale(dist), R: 1}
	}
	return disks
}

// section41Disks builds the paper's §4.1 construction: k unit disks whose
// centers are spread evenly on a circle of radius 1/2 around the hub, plus
// a central disk whose radius lies strictly between ‖o − p‖ (the distance
// from the hub to the outer intersection points of adjacent unit disks)
// and 3/2. The central disk contributes k disjoint skyline arcs.
func section41Disks(k int) []geom.Disk {
	disks := make([]geom.Disk, 0, k+1)
	for i := 0; i < k; i++ {
		theta := geom.TwoPi * float64(i) / float64(k)
		disks = append(disks, geom.Disk{C: geom.Unit(theta).Scale(0.5), R: 1})
	}
	op := 0.5*math.Cos(math.Pi/float64(k)) +
		math.Sqrt(1-math.Pow(0.5*math.Sin(math.Pi/float64(k)), 2))
	disks = append(disks, geom.Disk{C: geom.Pt(0, 0), R: (op + 1.5) / 2})
	return disks
}

// envelopeValue evaluates the skyline's radial distance at theta.
func envelopeValue(disks []geom.Disk, s Skyline, theta float64) float64 {
	return disks[s.DiskAt(theta)].RayDist(theta)
}

// checkEnvelope verifies that the skyline matches the true upper envelope
// max_i ρ_i(θ) at a battery of probe angles: fixed samples plus the
// midpoints of every arc of the skyline itself.
func checkEnvelope(t *testing.T, disks []geom.Disk, s Skyline, label string) {
	t.Helper()
	if err := s.Validate(len(disks)); err != nil {
		t.Fatalf("%s: invalid skyline: %v", label, err)
	}
	probes := make([]float64, 0, 256+len(s))
	for k := 0; k < 256; k++ {
		probes = append(probes, float64(k)/256*geom.TwoPi)
	}
	for _, a := range s {
		probes = append(probes, (a.Start+a.End)/2)
	}
	for _, theta := range probes {
		want, _ := Rho(disks, theta)
		got := envelopeValue(disks, s, theta)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("%s: envelope mismatch at θ=%.9f: skyline gives %.12f (disk %d), max is %.12f",
				label, theta, got, s.DiskAt(theta), want)
		}
	}
}

// sameEnvelope verifies that two skylines over the same disks describe the
// same radial function, probing arc midpoints of both.
func sameEnvelope(t *testing.T, disks []geom.Disk, a, b Skyline, label string) {
	t.Helper()
	probes := make([]float64, 0, len(a)+len(b))
	for _, arc := range a {
		probes = append(probes, (arc.Start+arc.End)/2)
	}
	for _, arc := range b {
		probes = append(probes, (arc.Start+arc.End)/2)
	}
	for _, theta := range probes {
		va := envelopeValue(disks, a, theta)
		vb := envelopeValue(disks, b, theta)
		if math.Abs(va-vb) > 1e-6*(1+va) {
			t.Fatalf("%s: envelopes differ at θ=%.9f: %.12f vs %.12f", label, theta, va, vb)
		}
	}
}

// sameSet verifies two integer slices are equal.
func sameSet(t *testing.T, got, want []int, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: set = %v, want %v", label, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: set = %v, want %v", label, got, want)
		}
	}
}
