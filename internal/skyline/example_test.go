package skyline_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/skyline"
)

// Computing the skyline of two symmetric unit disks: the breakpoints fall
// exactly at π/2 and 3π/2.
func ExampleCompute() {
	disks := []geom.Disk{
		geom.NewDisk(0.5, 0, 1),
		geom.NewDisk(-0.5, 0, 1),
	}
	sl, err := skyline.Compute(disks)
	if err != nil {
		panic(err)
	}
	for _, a := range sl {
		fmt.Printf("disk %d owns [%.4f, %.4f]\n", a.Disk, a.Start, a.End)
	}
	// Output:
	// disk 0 owns [0.0000, 1.5708]
	// disk 1 owns [1.5708, 4.7124]
	// disk 0 owns [4.7124, 6.2832]
}

// The skyline set is the minimum local disk cover set (Theorem 3): a disk
// buried under the union of the others contributes no arc.
func ExampleSkyline_Set() {
	disks := []geom.Disk{
		geom.NewDisk(0, 0, 2),      // dominates everything
		geom.NewDisk(0.1, 0, 0.5),  // buried
		geom.NewDisk(-0.1, 0, 0.8), // buried
	}
	sl, err := skyline.Compute(disks)
	if err != nil {
		panic(err)
	}
	fmt.Println(sl.Set())
	// Output: [0]
}

// Exact union area straight from the skyline: one disk's union is πr².
func ExampleSkyline_Area() {
	disks := []geom.Disk{geom.NewDisk(0.3, 0.1, 2)}
	sl, err := skyline.Compute(disks)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.6f\n", sl.Area(disks))
	// Output: 12.566371
}

// Merging two skylines yields the skyline of the combined disk set.
func ExampleMerge() {
	disks := []geom.Disk{
		geom.NewDisk(0.5, 0, 1),
		geom.NewDisk(-0.5, 0, 1),
	}
	left, _ := skyline.Compute(disks[:1])
	right := skyline.Skyline{{Start: 0, End: geom.TwoPi, Disk: 1}}
	merged := skyline.Merge(disks, left, right)
	fmt.Println(merged.Set())
	// Output: [0 1]
}
