package skyline

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/geom"
)

// diskFromChunk deterministically decodes a 6-byte chunk into one disk
// with radius in [0.5, 2.5], center distance a fraction of the radius, at
// an arbitrary angle. The decoded disk contains the origin by construction.
func diskFromChunk(chunk []byte) geom.Disk {
	u := binary.LittleEndian.Uint16(chunk[0:2])
	v := binary.LittleEndian.Uint16(chunk[2:4])
	w := binary.LittleEndian.Uint16(chunk[4:6])
	r := 0.5 + 2*float64(u)/65535
	frac := float64(v) / 65535 * 0.999
	theta := float64(w) / 65535 * geom.TwoPi
	return geom.Disk{C: geom.Unit(theta).Scale(frac * r), R: r}
}

// disksFromBytes decodes a byte string into a non-empty local disk set,
// one disk per 6-byte chunk.
func disksFromBytes(data []byte) []geom.Disk {
	var disks []geom.Disk
	for len(data) >= 6 {
		disks = append(disks, diskFromChunk(data[:6]))
		data = data[6:]
	}
	if len(disks) == 0 {
		disks = []geom.Disk{geom.NewDisk(0, 0, 1)}
	}
	return disks
}

// FuzzSkylineInvariants feeds arbitrary byte strings (decoded into valid
// local disk sets) to the divide-and-conquer skyline and checks the
// structural and semantic invariants: validity, the Lemma 8 arc bound, and
// envelope correctness at the arc midpoints.
func FuzzSkylineInvariants(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{255, 255, 0, 0, 128, 64, 9, 9, 9, 9, 9, 9})
	f.Add(make([]byte, 6*40))
	seed := make([]byte, 6*17)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 6*256 {
			data = data[:6*256]
		}
		disks := disksFromBytes(data)
		sl, err := Compute(disks)
		if err != nil {
			t.Fatalf("valid-by-construction input rejected: %v", err)
		}
		if err := sl.Validate(len(disks)); err != nil {
			t.Fatalf("invalid skyline: %v", err)
		}
		if sl.ArcCount() > 2*len(disks) {
			t.Fatalf("Lemma 8 violated: %d arcs for %d disks", sl.ArcCount(), len(disks))
		}
		for _, a := range sl {
			if a.Span() < 1e-7 {
				continue // sliver tolerance
			}
			mid := (a.Start + a.End) / 2
			got := disks[a.Disk].RayDist(mid)
			want, _ := Rho(disks, mid)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("envelope mismatch at θ=%v: %v vs max %v", mid, got, want)
			}
		}
		// The exact area must be sane: within [max disk, sum of disks].
		area := sl.Area(disks)
		var maxA, sumA float64
		for _, d := range disks {
			a := d.Area()
			sumA += a
			if a > maxA {
				maxA = a
			}
		}
		if area < maxA-1e-6 || area > sumA+1e-6 {
			t.Fatalf("area %v outside [%v, %v]", area, maxA, sumA)
		}
	})
}

// FuzzMergeAgainstNaive cross-checks the divide-and-conquer result against
// the independent naive oracle on fuzzed inputs (bounded size: the oracle
// is quadratic).
func FuzzMergeAgainstNaive(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120})
	f.Add(make([]byte, 6*9))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 6*24 {
			data = data[:6*24]
		}
		disks := disksFromBytes(data)
		a, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ComputeNaive(disks)
		if err != nil {
			t.Fatal(err)
		}
		probes := make([]float64, 0, len(a)+len(b))
		for _, arc := range a {
			probes = append(probes, (arc.Start+arc.End)/2)
		}
		for _, arc := range b {
			probes = append(probes, (arc.Start+arc.End)/2)
		}
		for _, theta := range probes {
			va := disks[a.DiskAt(theta)].RayDist(theta)
			vb := disks[b.DiskAt(theta)].RayDist(theta)
			if math.Abs(va-vb) > 1e-6*(1+va) {
				t.Fatalf("dnc and naive disagree at θ=%v: %v vs %v", theta, va, vb)
			}
		}
	})
}
