package skyline

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// benignSetSwap reports whether a set divergence between the repaired
// skyline and the recompute oracle is a legitimate representative swap:
// both winners are exactly maximal (within a few RhoEps) at every probe
// angle, so the envelope cannot distinguish them. The canonical tie-break
// is index-dependent and the op stream renumbers disks (swap-compaction on
// removal), so a *latent* tie — duplicate disks neither surgery ever
// compares — can legally flip representatives without the tie flag firing.
// A real repair bug keeps a strictly dominated disk or drops a strictly
// contributing one, which this check rejects.
func benignSetSwap(disks []geom.Disk, got, want Skyline) bool {
	probes := make([]float64, 0, 1024+len(got)+len(want))
	for i := 0; i < 1024; i++ {
		probes = append(probes, float64(i)*geom.TwoPi/1024)
	}
	for _, a := range got {
		probes = append(probes, (a.Start+a.End)/2)
	}
	for _, a := range want {
		probes = append(probes, (a.Start+a.End)/2)
	}
	for _, theta := range probes {
		g := disks[got.DiskAt(theta)].RayDist(theta)
		w := disks[want.DiskAt(theta)].RayDist(theta)
		if math.Abs(g-w) > 4*geom.RhoEps*(1+math.Abs(w)) {
			return false
		}
	}
	return true
}

// FuzzKineticRepair drives a random insert/remove/move sequence through the
// kinetic repair primitives, checking after every operation that the
// maintained skyline is structurally valid (CheckInvariants), matches the
// brute-force envelope, and — whenever the surgery reported no degenerate
// decision — contributes exactly the disk set a from-scratch sort-oracle
// compute produces. This is the long-horizon drift check: one repaired
// skyline feeds the next operation, so an epsilon slip compounds instead of
// averaging out.
//
// Each 7-byte chunk is one operation: the first byte selects insert (0, 1),
// remove (2), or move (3); the remaining six decode a disk via
// diskFromChunk (for remove, they select the victim index). Removal
// swap-compacts the disk slice and renumbers the skyline's arc indices the
// way the engine's Update path does.
func FuzzKineticRepair(f *testing.F) {
	// Handcrafted op streams: pure insertion growth, insert/remove churn,
	// a move storm on a fixed set, and an empty stream.
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 0, 255, 255, 0, 0, 128, 64})
	f.Add([]byte{0, 10, 0, 200, 0, 30, 0, 2, 0, 0, 0, 0, 0, 0, 0, 10, 0, 200, 0, 90, 0})
	storm := make([]byte, 0, 7*24)
	for i := 0; i < 8; i++ {
		storm = append(storm, 0, byte(i*31), 1, byte(i*17), 2, byte(i*7), 3)
	}
	for i := 0; i < 16; i++ {
		storm = append(storm, 3, byte(i*13), 0, byte(i*29), 1, byte(i*5), 2)
	}
	f.Add(storm)
	// Re-seed from the curated boundary/ρ-tie corpora of the invariant
	// targets: their 6-byte payloads decode here as op streams whose first
	// bytes still land on the same degenerate geometry families
	// (cocircular centers, duplicates, near-tangent hubs).
	for _, target := range []string{"FuzzSkylineInvariants", "FuzzMergeAgainstNaive"} {
		for _, data := range loadFuzzCorpus(f, target) {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps, maxDisks = 64, 48
		if len(data) > 7*maxOps {
			data = data[:7*maxOps]
		}
		disks := []geom.Disk{geom.NewDisk(0, 0, 1)}
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		var sc Scratch
		var alt Skyline // ping-pong destination: ops must not write over their input
		for op := 0; len(data) >= 7; op++ {
			chunk := data[:7]
			data = data[7:]
			tie := false
			switch chunk[0] % 4 {
			case 0, 1: // insert
				if len(disks) >= maxDisks {
					continue
				}
				disks = append(disks, diskFromChunk(chunk[1:7]))
				alt = sc.InsertDiskInto(alt, disks, sl, len(disks)-1, &tie)
			case 2: // remove, swap-compacting like the engine does
				if len(disks) < 2 {
					continue
				}
				rm := int(chunk[1]) % len(disks)
				alt = sc.RemoveDiskInto(alt, disks, sl, rm, &tie)
				last := len(disks) - 1
				if rm != last {
					disks[rm] = disks[last]
					for i := range alt {
						if alt[i].Disk == last {
							alt[i].Disk = rm
						}
					}
				}
				disks = disks[:last]
			case 3: // move
				mv := int(chunk[1]) % len(disks)
				disks[mv] = diskFromChunk(chunk[1:7])
				alt = sc.MoveDiskInto(alt, disks, sl, mv, &tie)
			}
			sl, alt = alt, sl

			if tie {
				// Mirror the engine: a degenerate surgery decision abandons
				// the repair and recomputes. The sequence then continues from
				// the recomputed skyline, so later no-tie ops are still held
				// to exact set identity.
				fresh, err := Compute(disks)
				if err != nil {
					t.Fatalf("op %d: fallback recompute: %v", op, err)
				}
				sl = fresh
			}
			if err := sl.CheckInvariants(len(disks)); err != nil {
				t.Fatalf("op %d: repaired skyline broke invariants: %v", op, err)
			}
			for _, a := range sl {
				if a.Span() < 1e-7 {
					continue // sliver tolerance, as in FuzzSkylineInvariants
				}
				mid := (a.Start + a.End) / 2
				got := disks[a.Disk].RayDist(mid)
				want, _ := Rho(disks, mid)
				if math.Abs(got-want) > 1e-6*(1+want) {
					t.Fatalf("op %d: envelope mismatch at θ=%v: %v vs max %v", op, mid, got, want)
				}
			}
			if !tie {
				oracle, err := computeSortOracle(disks)
				if err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				gs := sl.AppendSet(nil)
				ws := oracle.AppendSet(nil)
				if !equalInts(gs, ws) && !benignSetSwap(disks, sl, oracle) {
					t.Fatalf("op %d: skyline set diverged without a tie: got %v want %v", op, gs, ws)
				}
			}
		}
	})
}
