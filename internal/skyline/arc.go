// Package skyline implements the paper's core contribution: computing the
// skyline (the boundary of the union) of a local disk set — a set of disks
// that all contain a common hub point — and hence, by Theorem 3 of the
// paper, its minimum local disk cover set.
//
// All functions in this package work in a frame where the hub is the
// origin. Because every disk contains the origin, the union of the disks is
// star-shaped with respect to it and each ray from the origin crosses the
// boundary exactly once (Corollary 2). The skyline is therefore the upper
// envelope of the per-disk ray-distance functions ρ_i(θ) over θ ∈ [0, 2π).
//
// The package provides four interchangeable algorithms:
//
//   - Compute: the paper's divide-and-conquer algorithm, O(n log n).
//   - ComputeIncremental: repeated single-disk merges in decreasing radius
//     order, the insertion scheme behind Lemma 8; O(n²) worst case.
//   - ComputeNaive: a global-breakpoint O(n² log n) reference oracle.
//   - ComputeParallel: the divide-and-conquer algorithm with the top levels
//     of the recursion fanned out across goroutines.
//
// All four produce the same envelope; the test suite cross-checks them.
package skyline

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Arc is one maximal piece of the skyline contributed by a single disk:
// the paper's 4-tuple (α_i, u_j, r_j, α_{i+1}) with the center and radius
// replaced by an index into the caller's disk slice.
type Arc struct {
	Start float64 // start angle, measured at the hub, in [0, 2π]
	End   float64 // end angle, Start < End ≤ 2π
	Disk  int     // index of the contributing disk
}

// Span returns the angular width of the arc.
func (a Arc) Span() float64 { return a.End - a.Start }

// String implements fmt.Stringer.
func (a Arc) String() string {
	return fmt.Sprintf("[%.4f°..%.4f° d%d]", geom.Degrees(a.Start), geom.Degrees(a.End), a.Disk)
}

// Skyline is a full skyline: a sequence of arcs sorted by angle that
// exactly tiles [0, 2π). Arcs crossing the positive x-axis are split at 0,
// as in the paper, so Start angles are non-decreasing and the first arc
// starts at 0 while the last ends at 2π.
type Skyline []Arc

// Validate checks the structural invariants of a skyline over n disks:
// non-empty, contiguous arcs covering exactly [0, 2π), positive spans, and
// disk indices in range. It returns a descriptive error on the first
// violation.
func (s Skyline) Validate(n int) error {
	if len(s) == 0 {
		return fmt.Errorf("skyline: empty arc list")
	}
	if !geom.AngleEq(s[0].Start, 0) {
		return fmt.Errorf("skyline: first arc starts at %g, want 0", s[0].Start)
	}
	if !geom.AngleEq(s[len(s)-1].End, geom.TwoPi) {
		return fmt.Errorf("skyline: last arc ends at %g, want 2π", s[len(s)-1].End)
	}
	for i, a := range s {
		if a.Disk < 0 || a.Disk >= n {
			return fmt.Errorf("skyline: arc %d references disk %d, have %d disks", i, a.Disk, n)
		}
		if a.End <= a.Start {
			return fmt.Errorf("skyline: arc %d has non-positive span [%g, %g]", i, a.Start, a.End)
		}
		if i > 0 && !geom.AngleEq(s[i-1].End, a.Start) {
			return fmt.Errorf("skyline: gap between arc %d (ends %g) and arc %d (starts %g)",
				i-1, s[i-1].End, i, a.Start)
		}
	}
	return nil
}

// At returns the index (within s) of the arc containing angle theta, which
// is normalized to [0, 2π) first. The skyline must be valid.
func (s Skyline) At(theta float64) int {
	theta = geom.NormalizeAngle(theta)
	// Binary search for the first arc with End > theta.
	i := sort.Search(len(s), func(i int) bool { return s[i].End > theta })
	if i == len(s) {
		i = len(s) - 1
	}
	return i
}

// DiskAt returns the disk index active on the skyline at angle theta.
func (s Skyline) DiskAt(theta float64) int { return s[s.At(theta)].Disk }

// Set returns the skyline set: the sorted indices of all disks that
// contribute at least one arc. By Theorem 3 this is the minimum local disk
// cover set of the input.
func (s Skyline) Set() []int {
	return s.AppendSet(nil)
}

// AppendSet appends the skyline set (see Set) to dst[:0] and returns it,
// letting hot-path callers reuse a buffer instead of allocating. A skyline
// lists each contributing disk in at most a handful of runs, so collecting
// the run heads and sort+dedup-ing them stays cheap and allocation-free
// (sort.Ints on an int slice does not allocate).
func (s Skyline) AppendSet(dst []int) []int {
	out := dst[:0]
	for i, a := range s {
		if i > 0 && s[i-1].Disk == a.Disk {
			continue
		}
		out = append(out, a.Disk)
	}
	sort.Ints(out)
	w := 0
	for i, d := range out {
		if i > 0 && out[w-1] == d {
			continue
		}
		out[w] = d
		w++
	}
	return out[:w]
}

// ArcCount returns the number of arcs counting an arc split at the positive
// x-axis as one arc, i.e. the quantity bounded by 2n in Lemma 8. The stored
// representation splits arcs at 0/2π for convenience; if the first and last
// arcs come from the same disk they are one geometric arc.
func (s Skyline) ArcCount() int {
	n := len(s)
	if n > 1 && s[0].Disk == s[n-1].Disk {
		return n - 1
	}
	return n
}

// Combine coalesces adjacent arcs contributed by the same disk (Step 3 of
// the paper's Merge) and drops arcs with span below geom.AngleEps, which
// arise as alignment slivers. The receiver is not modified.
func (s Skyline) Combine() Skyline {
	out := make(Skyline, 0, len(s))
	for _, a := range s {
		if geom.AngleSliver(a.Start, a.End) {
			// Sliver: extend the previous arc over it instead of keeping it.
			if len(out) > 0 {
				out[len(out)-1].End = a.End
			}
			continue
		}
		if len(out) > 0 && out[len(out)-1].Disk == a.Disk {
			out[len(out)-1].End = a.End
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 && len(s) > 0 {
		// Everything was a sliver (can only happen with pathological eps
		// settings); fall back to a single arc from the first input.
		out = Skyline{{Start: 0, End: geom.TwoPi, Disk: s[0].Disk}}
	}
	if len(out) > 0 {
		out[0].Start = 0
		out[len(out)-1].End = geom.TwoPi
	}
	return out
}

// Clone returns a copy of the skyline.
func (s Skyline) Clone() Skyline {
	out := make(Skyline, len(s))
	copy(out, s)
	return out
}

// single returns the skyline of one disk: a single full-circle arc.
func single(disk int) Skyline {
	return Skyline{{Start: 0, End: geom.TwoPi, Disk: disk}}
}
