package skyline

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// The paper's optimality claim (Theorem 9 with the lower bound inherited
// from Sun et al.) rests on a reduction from sorting: n equal-radius disks
// whose centers sit at distinct angles on a circle around the hub each
// contribute exactly one skyline arc, and the counterclockwise order of
// those arcs is the sorted order of the angles. Any skyline algorithm
// therefore sorts n reals, so Ω(n log n) comparisons are unavoidable.
// This test executes the reduction: it sorts random angle sets with the
// skyline algorithm and checks the result against sort.Float64s.
func TestSortingReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		angles := make([]float64, n)
		for i := range angles {
			angles[i] = rng.Float64() * geom.TwoPi
		}

		// Build the reduction instance: unit disks at distance 1/2, one
		// per input angle.
		disks := make([]geom.Disk, n)
		for i, a := range angles {
			disks[i] = geom.Disk{C: geom.Unit(a).Scale(0.5), R: 1}
		}
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}

		// Every disk must contribute exactly one geometric arc.
		if got := sl.ArcCount(); got != n {
			t.Fatalf("trial %d: %d arcs for %d equal disks on a circle", trial, got, n)
		}

		// Read the angles back in skyline (ccw) order, starting from the
		// arc that owns the smallest input angle.
		var order []int
		seen := make(map[int]bool)
		for _, a := range sl {
			if !seen[a.Disk] {
				seen[a.Disk] = true
				order = append(order, a.Disk)
			}
		}
		if len(order) != n {
			t.Fatalf("trial %d: skyline set has %d disks, want %d", trial, len(order), n)
		}
		recovered := make([]float64, n)
		for k, idx := range order {
			recovered[k] = angles[idx]
		}
		// The sequence is sorted up to rotation (the skyline starts at the
		// positive x-axis, not at the minimum). Rotate so the minimum is
		// first, then compare with the sorted input.
		minAt := 0
		for k, v := range recovered {
			if v < recovered[minAt] {
				minAt = k
			}
		}
		rotated := append(append([]float64(nil), recovered[minAt:]...), recovered[:minAt]...)
		want := append([]float64(nil), angles...)
		sort.Float64s(want)
		for k := range want {
			if rotated[k] != want[k] {
				t.Fatalf("trial %d: skyline order is not sorted order\n got %v\nwant %v",
					trial, rotated, want)
			}
		}
	}
}
