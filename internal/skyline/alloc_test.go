package skyline

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// Steady-state ComputeInto — a caller-held Scratch and a reused result
// slice — must be allocation-free once the buffers are warm. This is the
// contract the whole-network engine's per-node loop relies on; any future
// per-merge garbage (the sort+dedupe step this PR removed allocated on
// every merge) fails here immediately.
func TestComputeIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	var sc Scratch
	var dst Skyline
	for _, n := range []int{3, 17, 64, 200} {
		disks := randomLocalSet(rng, n)
		var err error
		// Warm-up: grow the scratch and the destination to steady state.
		for i := 0; i < 3; i++ {
			if dst, err = sc.ComputeInto(dst, disks); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			dst, err = sc.ComputeInto(dst, disks)
		})
		if err != nil {
			t.Fatal(err)
		}
		if allocs != 0 {
			t.Errorf("n=%d: steady-state ComputeInto allocated %.1f objects/run, want 0", n, allocs)
		}
	}
}

// Instrumented ComputeInto must stay allocation-free too: the sharded
// counters, the compute timer (Stopwatch start/stop), and the arc-count
// histogram all write to preallocated per-shard cells, so turning
// metrics on costs atomics, never garbage. This is the contract that
// lets mldcsim instrument production runs without touching the engine's
// zero-alloc guarantee.
func TestComputeIntoInstrumentedAllocs(t *testing.T) {
	Instrument(obs.NewRegistry())
	t.Cleanup(func() { Instrument(nil) })
	rng := rand.New(rand.NewSource(604))
	var sc Scratch
	var dst Skyline
	for _, n := range []int{3, 17, 64, 200} {
		disks := randomLocalSet(rng, n)
		var err error
		for i := 0; i < 3; i++ {
			if dst, err = sc.ComputeInto(dst, disks); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			dst, err = sc.ComputeInto(dst, disks)
		})
		if err != nil {
			t.Fatal(err)
		}
		if allocs != 0 {
			t.Errorf("n=%d: instrumented ComputeInto allocated %.1f objects/run, want 0", n, allocs)
		}
	}
}

// Compute without a caller-held Scratch borrows one from the pool, so its
// amortized cost is O(1) allocations — the returned skyline — independent
// of input size, not the O(n log n) buffer churn of the old merge.
func TestComputeAmortizedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes Get/Put under the race detector; pool amortization is unmeasurable")
	}
	rng := rand.New(rand.NewSource(602))
	disks := randomLocalSet(rng, 128)
	var err error
	for i := 0; i < 3; i++ {
		if _, err = Compute(disks); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, err = Compute(disks)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The result slice plus pool slack; the old pipeline measured in the
	// hundreds here.
	if allocs > 4 {
		t.Errorf("Compute allocated %.1f objects/run, want O(1) (≤ 4)", allocs)
	}
}

// The kinetic Into variants — the engine's per-event repair primitives —
// must be allocation-free once the Scratch and destination are warm. This
// is the contract that lets Update repair thousands of neighborhoods per
// tick without producing garbage; InsertDisk (the allocating public
// wrapper) pays for its result, InsertDiskInto must not.
func TestKineticIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	var sc Scratch
	var dst Skyline
	for _, n := range []int{3, 17, 64} {
		disks := randomLocalSet(rng, n)
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		slHead, err := Compute(disks[:n-1])
		if err != nil {
			t.Fatal(err)
		}
		moved := disks[n/2]
		tie := false
		ops := map[string]func(){
			"InsertDiskInto": func() { dst = sc.InsertDiskInto(dst, disks, slHead, n-1, &tie) },
			"RemoveDiskInto": func() { dst = sc.RemoveDiskInto(dst, disks, sl, n/2, &tie) },
			"MoveDiskInto":   func() { disks[n/2] = moved; dst = sc.MoveDiskInto(dst, disks, sl, n/2, &tie) },
		}
		for name, op := range ops {
			for i := 0; i < 3; i++ {
				op() // warm-up: grow the scratch and destination
			}
			if allocs := testing.AllocsPerRun(100, op); allocs != 0 {
				t.Errorf("n=%d: steady-state %s allocated %.1f objects/run, want 0", n, name, allocs)
			}
		}
	}
}

// Merge on caller-supplied skylines must likewise cost only its result.
func TestMergeAmortizedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes Get/Put under the race detector; pool amortization is unmeasurable")
	}
	rng := rand.New(rand.NewSource(603))
	disks := randomLocalSet(rng, 64)
	sa := computeRange(disks, 0, 32, nil, 1)
	sb := computeRange(disks, 32, 64, nil, 1)
	for i := 0; i < 3; i++ {
		Merge(disks, sa, sb)
	}
	allocs := testing.AllocsPerRun(100, func() {
		Merge(disks, sa, sb)
	})
	if allocs > 2 {
		t.Errorf("Merge allocated %.1f objects/run, want O(1) (≤ 2)", allocs)
	}
}
