package skyline

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Errors returned by the skyline constructors.
var (
	// ErrEmptySet is returned when no disks are supplied.
	ErrEmptySet = errors.New("skyline: empty disk set")
	// ErrNotLocalDiskSet is returned when some disk does not contain the
	// hub (the origin), so the star-shape property the algorithm relies on
	// does not hold.
	ErrNotLocalDiskSet = errors.New("skyline: disk does not contain the hub")
	// ErrInvalidRadius is returned for non-positive or non-finite radii.
	ErrInvalidRadius = errors.New("skyline: disk radius must be positive and finite")
)

// Envelope values are compared with geom.RhoCmp (tolerance geom.RhoEps):
// two ρ values within RhoEps are a tie, broken by the canonical rule in
// betterTie (larger radius, then lower index). This package used to carry
// a private tieEps for this; it was numerically identical to geom.RhoEps
// and is gone — ρ values are linear-unit distances, and a divergent tie
// tolerance here would let the skyline disagree with the link predicates
// about boundary rays (see docs/NUMERICS.md).

// checkLocal validates that the disks form a local disk set in the
// hub-at-origin frame.
func checkLocal(disks []geom.Disk) error {
	if len(disks) == 0 {
		return ErrEmptySet
	}
	for i, d := range disks {
		if !(d.R > 0) || math.IsInf(d.R, 0) || math.IsNaN(d.R) {
			return fmt.Errorf("%w: disk %d has radius %g", ErrInvalidRadius, i, d.R)
		}
		if !d.ContainsOrigin() {
			return fmt.Errorf("%w: disk %d = %v (‖center‖ = %g > r = %g)",
				ErrNotLocalDiskSet, i, d, d.C.Norm(), d.R)
		}
	}
	return nil
}

// Rho evaluates the skyline envelope at angle theta: the maximum ray
// distance over all disks, together with the index of the winning disk
// under the canonical tie-break. The disks must form a local disk set.
func Rho(disks []geom.Disk, theta float64) (float64, int) {
	e := geom.Unit(theta)
	best := math.Inf(-1)
	arg := -1
	for i, d := range disks {
		r := d.RayDistDir(e)
		if arg < 0 || geom.RhoCmp(r, best) > 0 {
			best, arg = r, i
			continue
		}
		if geom.RhoCmp(r, best) == 0 && betterTie(disks, i, arg) {
			best, arg = math.Max(r, best), i
		}
	}
	return best, arg
}

// betterTie reports whether disk i beats disk j under the canonical
// tie-break used when two disks have equal ray distance at an angle:
// larger radius first, then lower index. A deterministic rule keeps every
// algorithm in this package producing the same skyline on tied inputs
// (e.g. duplicate disks).
func betterTie(disks []geom.Disk, i, j int) bool {
	//mldcslint:allow floatcmp exact compare is deliberate: the tie-break needs a deterministic strict weak order, not a tolerance
	if disks[i].R != disks[j].R {
		return disks[i].R > disks[j].R
	}
	return i < j
}

// winner returns the index (i or j) of the disk with the larger ray
// distance at theta, applying the canonical tie-break when the values are
// within geom.RhoEps.
func winner(disks []geom.Disk, i, j int, theta float64) int {
	return winnerFlag(disks, i, j, theta, nil)
}

// winnerFlag is winner with tie reporting for the kinetic repair path: a
// non-nil tie is set when the two ray distances are within geom.RhoEps and
// the canonical tie-break decided the outcome. The repair caller treats a
// reported tie as grounds for a full recompute (see resolveSpan).
func winnerFlag(disks []geom.Disk, i, j int, theta float64, tie *bool) int {
	e := geom.Unit(theta)
	ri := disks[i].RayDistDir(e)
	rj := disks[j].RayDistDir(e)
	switch geom.RhoCmp(ri, rj) {
	case +1:
		return i
	case -1:
		return j
	default:
		if tie != nil {
			*tie = true
		}
		if betterTie(disks, i, j) {
			return i
		}
		return j
	}
}

// hubTangent reports whether the disk's boundary passes through the hub
// (‖c‖ = r within tolerance): the degenerate family whose ρ vanishes on a
// closed half-circle, making interval-long envelope ties possible.
func hubTangent(d geom.Disk) bool {
	return geom.LengthEq(d.C.Norm(), d.R)
}

// crossingAngles returns candidate angles (measured at the origin, in
// [0, 2π)) at which the envelope curves ρ_i and ρ_j may cross. Generic
// crossings are the circle–circle intersection points of disks i and j
// that are the far ray intersection for both circles — at most two.
//
// One degenerate family needs extra candidates: a disk whose boundary
// passes exactly through the hub (‖c‖ = r) has ρ ≡ 0 on the closed
// half-circle facing away from its center, so two such disks' curves can
// be *equal on an interval*, with transitions at the zero-set boundaries
// angle(c) ± π/2 rather than at any circle intersection. Those angles are
// appended as candidates; spurious candidates are harmless (the merge
// re-evaluates the winner on every sub-span).
func crossingAngles(disks []geom.Disk, i, j int) (out [6]float64, n int) {
	var buf [2]geom.Point
	cnt, ok := geom.IntersectCircles(disks[i], disks[j], &buf)
	if ok {
		for _, p := range buf[:cnt] {
			theta := p.Angle()
			e := geom.Unit(theta)
			dist := p.Norm()
			// Far-root consistency: the crossing of the ρ curves happens
			// only where this intersection point is the *far* intersection
			// of the ray with both circles. The tolerance is proportional
			// to the local scale to absorb the sqrt in RayDist.
			tol := 1e-7 * (1 + dist)
			if math.Abs(disks[i].RayDistDir(e)-dist) <= tol &&
				math.Abs(disks[j].RayDistDir(e)-dist) <= tol {
				out[n] = theta
				n++
			}
		}
	}
	for _, d := range [2]geom.Disk{disks[i], disks[j]} {
		if geom.LengthEq(d.C.Norm(), d.R) {
			a := d.C.Angle()
			out[n] = geom.NormalizeAngle(a + math.Pi/2)
			n++
			out[n] = geom.NormalizeAngle(a - math.Pi/2)
			n++
		}
	}
	return out, n
}
