package skyline

import (
	"math"

	"repro/internal/geom"
)

// Query operations on a computed skyline. Because the union of a local
// disk set is star-shaped around the hub, the skyline answers geometric
// queries about the whole union in O(log n) after the O(n log n)
// construction — membership, boundary distance, and exact perimeter —
// without revisiting the disks that were buried under the envelope.

// RadialDistance returns ρ(θ): the distance from the hub to the union's
// boundary along the ray at angle theta. disks must be the slice the
// skyline was computed over (hub frame).
func (s Skyline) RadialDistance(disks []geom.Disk, theta float64) float64 {
	return disks[s.DiskAt(theta)].RayDist(geom.NormalizeAngle(theta))
}

// Contains reports whether point p (hub frame) lies in the union of the
// disks, by comparing its distance from the hub against the envelope at
// its angle — an O(log n) point-location query.
func (s Skyline) Contains(disks []geom.Disk, p geom.Point) bool {
	r := p.Norm()
	if geom.ZeroLength(r) {
		return true // the hub is in every disk of a local set
	}
	return geom.RhoCovers(s.RadialDistance(disks, p.Angle()), r)
}

// Perimeter returns the exact length of the union's boundary: each arc
// contributes r·φ where φ is its central angle at the owning disk's
// center. Like Area, this is closed-form — no sampling.
func (s Skyline) Perimeter(disks []geom.Disk) float64 {
	total := 0.0
	for _, a := range s {
		// Subdivide like Area does, so a full-circle arc's central angle
		// is accumulated piecewise rather than folding to zero.
		pieces := int(math.Ceil(a.Span() / (math.Pi / 2)))
		if pieces < 1 {
			pieces = 1
		}
		step := a.Span() / float64(pieces)
		d := disks[a.Disk]
		for k := 0; k < pieces; k++ {
			lo := a.Start + float64(k)*step
			hi := lo + step
			if k == pieces-1 {
				hi = a.End
			}
			p1 := geom.Unit(lo).Scale(d.RayDist(lo))
			p2 := geom.Unit(hi).Scale(d.RayDist(hi))
			phi := geom.CCWDelta(p1.Sub(d.C).Angle(), p2.Sub(d.C).Angle())
			total += d.R * phi
		}
	}
	return total
}

// BoundaryPoint returns the point of the union's boundary at angle theta
// (hub frame).
func (s Skyline) BoundaryPoint(disks []geom.Disk, theta float64) geom.Point {
	theta = geom.NormalizeAngle(theta)
	return geom.Unit(theta).Scale(s.RadialDistance(disks, theta))
}
