package skyline

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geom"
)

// The central cross-check: on random heterogeneous local disk sets, all
// four algorithms produce the same envelope and the same skyline set, the
// skyline validates, and the arc count respects Lemma 8's 2n bound.
func TestAlgorithmsAgreeHeterogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(40)
		disks := randomLocalSet(rng, n)
		ref, err := ComputeNaive(disks)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		checkEnvelope(t, disks, ref, "naive")
		for _, alg := range algorithms[:1] { // dnc
			s, err := alg.fn(disks)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, alg.name, err)
			}
			checkEnvelope(t, disks, s, alg.name)
			sameEnvelope(t, disks, ref, s, alg.name)
			sameSet(t, s.Set(), ref.Set(), alg.name)
			if s.ArcCount() > 2*n {
				t.Errorf("trial %d: %s: %d arcs for %d disks exceeds Lemma 8 bound",
					trial, alg.name, s.ArcCount(), n)
			}
		}
	}
}

func TestAlgorithmsAgreeHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(40)
		disks := randomHomogeneousSet(rng, n)
		ref, err := ComputeNaive(disks)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		s, err := Compute(disks)
		if err != nil {
			t.Fatalf("trial %d: dnc: %v", trial, err)
		}
		checkEnvelope(t, disks, s, "dnc")
		sameEnvelope(t, disks, ref, s, "dnc-vs-naive")
		sameSet(t, s.Set(), ref.Set(), "dnc-vs-naive")
	}
}

func TestIncrementalMatchesDNC(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(30)
		disks := randomLocalSet(rng, n)
		a, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ComputeIncremental(disks)
		if err != nil {
			t.Fatal(err)
		}
		checkEnvelope(t, disks, b, "incremental")
		sameEnvelope(t, disks, a, b, "incremental-vs-dnc")
		sameSet(t, a.Set(), b.Set(), "incremental-vs-dnc")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, n := range []int{1, 2, 17, 300, 1500} {
		disks := randomLocalSet(rng, n)
		seq, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 8} {
			par, err := ComputeParallel(disks, workers)
			if err != nil {
				t.Fatal(err)
			}
			sameEnvelope(t, disks, seq, par, "parallel")
			sameSet(t, seq.Set(), par.Set(), "parallel")
		}
	}
}

// Insertion order must not change the resulting envelope.
func TestInsertionOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(20)
		disks := randomLocalSet(rng, n)
		ref, err := ComputeIncremental(disks)
		if err != nil {
			t.Fatal(err)
		}
		order := rng.Perm(n)
		got, err := ComputeIncrementalOrder(disks, order)
		if err != nil {
			t.Fatal(err)
		}
		sameEnvelope(t, disks, ref, got, "order-invariance")
		sameSet(t, ref.Set(), got.Set(), "order-invariance")
	}
}

// Input order must not change the divide-and-conquer result either.
func TestInputPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(20)
		disks := randomLocalSet(rng, n)
		ref, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		shuffled := make([]geom.Disk, n)
		for i, p := range perm {
			shuffled[i] = disks[p]
		}
		got, err := Compute(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		// Translate the shuffled skyline set back to original indices.
		gotSet := got.Set()
		back := make([]int, 0, len(gotSet))
		for _, i := range gotSet {
			back = append(back, perm[i])
		}
		refSet := ref.Set()
		if len(back) != len(refSet) {
			t.Fatalf("trial %d: permuted input changed skyline set size: %v vs %v",
				trial, back, refSet)
		}
		inRef := make(map[int]bool, len(refSet))
		for _, i := range refSet {
			inRef[i] = true
		}
		for _, i := range back {
			if !inRef[i] {
				t.Fatalf("trial %d: disk %d in permuted set but not reference", trial, i)
			}
		}
	}
}

// The A1 ablation variant must produce the same envelope and skyline set
// as the production algorithm, only with (potentially) more arc pieces.
func TestNoCombineMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		disks := randomLocalSet(rng, n)
		a, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ComputeNoCombine(disks)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(n); err != nil {
			t.Fatalf("trial %d: no-combine skyline invalid: %v", trial, err)
		}
		sameEnvelope(t, disks, a, b, "no-combine")
		sameSet(t, a.Set(), b.Set(), "no-combine")
		if len(b) < len(a) {
			t.Fatalf("trial %d: no-combine produced fewer arcs (%d) than combined (%d)",
				trial, len(b), len(a))
		}
	}
	if _, err := ComputeNoCombine(nil); err == nil {
		t.Error("empty set must fail")
	}
}

// InsertDisk must keep the skyline equal to a full recomputation as disks
// stream in one by one (the dynamic-neighborhood path).
func TestInsertDiskMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		all := randomLocalSet(rng, n)
		sl, err := Compute(all[:1])
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= n; k++ {
			sl, err = InsertDisk(all[:k], sl)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Compute(all[:k])
			if err != nil {
				t.Fatal(err)
			}
			sameEnvelope(t, all[:k], sl, ref, "insert-disk")
			sameSet(t, sl.Set(), ref.Set(), "insert-disk")
		}
	}
	// Error paths.
	if _, err := InsertDisk(nil, nil); err == nil {
		t.Error("empty disks must fail")
	}
	disks := randomLocalSet(rng, 2)
	if _, err := InsertDisk(disks, Skyline{}); err == nil {
		t.Error("invalid base skyline must fail")
	}
	bad := append(randomLocalSet(rng, 1), geom.NewDisk(9, 9, 1))
	base, _ := Compute(bad[:1])
	if _, err := InsertDisk(bad, base); err == nil {
		t.Error("non-local new disk must fail")
	}
	bad2 := append(randomLocalSet(rng, 1), geom.NewDisk(0, 0, -1))
	if _, err := InsertDisk(bad2, base); err == nil {
		t.Error("invalid radius must fail")
	}
}

// A coarse runtime sanity check of Theorem 9: quadrupling the input must
// grow the divide-and-conquer time far less than the ×16 a quadratic
// algorithm would show. Generous bounds keep this stable on loaded
// machines; the bench harness provides the precise curves.
func TestDnCScalesNearLinearithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rng := rand.New(rand.NewSource(111))
	measure := func(n int) float64 {
		disks := randomLocalSet(rng, n)
		best := math.MaxFloat64
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			if _, err := Compute(disks); err != nil {
				t.Fatal(err)
			}
			if d := float64(time.Since(start).Nanoseconds()); d < best {
				best = d
			}
		}
		return best
	}
	t1 := measure(2000)
	t4 := measure(8000)
	if ratio := t4 / t1; ratio > 12 {
		t.Errorf("time grew ×%.1f for ×4 input — worse than n log n should allow", ratio)
	}
}

// Merge must be symmetric in its skyline arguments.
func TestMergeSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(16)
		disks := randomLocalSet(rng, n)
		half := n / 2
		sa := computeRange(disks, 0, half, nil, 1)
		sb := computeRange(disks, half, n, nil, 1)
		ab := Merge(disks, sa, sb)
		ba := Merge(disks, sb, sa)
		sameEnvelope(t, disks, ab, ba, "merge-symmetry")
		sameSet(t, ab.Set(), ba.Set(), "merge-symmetry")
	}
}

// Merging a skyline with itself must be the identity on the envelope.
func TestMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	disks := randomLocalSet(rng, 12)
	s, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(disks, s, s)
	sameEnvelope(t, disks, s, m, "merge-idempotent")
	sameSet(t, s.Set(), m.Set(), "merge-idempotent")
}
