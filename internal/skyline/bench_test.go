package skyline

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

func benchSets(n int) [][]geom.Disk {
	rng := rand.New(rand.NewSource(1))
	sets := make([][]geom.Disk, 16)
	for i := range sets {
		sets[i] = randomLocalSet(rng, n)
	}
	return sets
}

// BenchmarkCompute is the reference number for the disabled-instrumentation
// fast path; BenchmarkComputeInstrumented is the same workload with a live
// registry, quantifying the observability overhead.
func BenchmarkCompute(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		sets := benchSets(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(sets[i%len(sets)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComputeInstrumented(b *testing.B) {
	Instrument(obs.NewRegistry())
	defer Instrument(nil)
	for _, n := range []int{16, 128, 1024} {
		sets := benchSets(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(sets[i%len(sets)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComputeInto is the steady-state hot path: a caller-held Scratch
// and a reused destination, as the engine's per-node loop runs it. The
// allocs/op column must read 0.
func BenchmarkComputeInto(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		sets := benchSets(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var sc Scratch
			var dst Skyline
			var err error
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if dst, err = sc.ComputeInto(dst, sets[i%len(sets)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComputeParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	disks := randomLocalSet(rng, 8192)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeParallel(disks, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// skylineBenchEntry is one input-size row in BENCH_skyline.json.
type skylineBenchEntry struct {
	N                   int     `json:"n"`
	MeanArcs            float64 `json:"mean_arcs"`
	ComputeNsOp         int64   `json:"compute_ns_op"`
	ComputeAllocsOp     int64   `json:"compute_allocs_op"`
	ComputeIntoNsOp     int64   `json:"compute_into_ns_op"`
	ComputeIntoAllocsOp int64   `json:"compute_into_allocs_op"`
}

// TestSkylineBenchReport writes the machine-readable skyline kernel
// benchmark used by `make bench-skyline`: ns/op and allocs/op for the
// pooled Compute and for the steady-state ComputeInto, plus the mean arc
// count (the Lemma 8 quantity) per input size. Skipped unless
// SKYLINE_BENCH_OUT names the output file.
func TestSkylineBenchReport(t *testing.T) {
	out := os.Getenv("SKYLINE_BENCH_OUT")
	if out == "" {
		t.Skip("set SKYLINE_BENCH_OUT=<path> to write the skyline benchmark report")
	}
	// num_cpu and gomaxprocs are recorded separately (the machine's core
	// count vs the scheduler's parallelism cap) — see the engine bench
	// report for the rationale.
	report := struct {
		NumCPU     int                 `json:"num_cpu"`
		Gomaxprocs int                 `json:"gomaxprocs"`
		Sizes      []skylineBenchEntry `json:"sizes"`
	}{NumCPU: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0)}
	for _, n := range []int{16, 128, 1024} {
		sets := benchSets(n)
		arcs := 0
		for _, disks := range sets {
			sl, err := Compute(disks)
			if err != nil {
				t.Fatal(err)
			}
			arcs += sl.ArcCount()
		}
		rc := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(sets[i%len(sets)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		var sc Scratch
		var dst Skyline
		ri := testing.Benchmark(func(b *testing.B) {
			var err error
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if dst, err = sc.ComputeInto(dst, sets[i%len(sets)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Sizes = append(report.Sizes, skylineBenchEntry{
			N:                   n,
			MeanArcs:            float64(arcs) / float64(len(sets)),
			ComputeNsOp:         rc.NsPerOp(),
			ComputeAllocsOp:     rc.AllocsPerOp(),
			ComputeIntoNsOp:     ri.NsPerOp(),
			ComputeIntoAllocsOp: ri.AllocsPerOp(),
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (num_cpu=%d, gomaxprocs=%d)", out, report.NumCPU, report.Gomaxprocs)
}
