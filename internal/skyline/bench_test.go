package skyline

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

func benchSets(n int) [][]geom.Disk {
	rng := rand.New(rand.NewSource(1))
	sets := make([][]geom.Disk, 16)
	for i := range sets {
		sets[i] = randomLocalSet(rng, n)
	}
	return sets
}

// BenchmarkCompute is the reference number for the disabled-instrumentation
// fast path; BenchmarkComputeInstrumented is the same workload with a live
// registry, quantifying the observability overhead.
func BenchmarkCompute(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		sets := benchSets(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(sets[i%len(sets)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComputeInstrumented(b *testing.B) {
	Instrument(obs.NewRegistry())
	defer Instrument(nil)
	for _, n := range []int{16, 128, 1024} {
		sets := benchSets(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(sets[i%len(sets)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComputeParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	disks := randomLocalSet(rng, 8192)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeParallel(disks, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
