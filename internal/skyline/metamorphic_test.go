package skyline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// Metamorphic tests: apply input transformations with a known effect on the
// output — index permutations, rigid rotations about the hub, uniform
// scalings — and check the skyline responds exactly as the geometry says it
// must. These need no oracle, so they cross-check the algorithm on inputs
// where no independent answer is available.

// rotateDisks rotates every disk center by phi about the origin.
func rotateDisks(disks []geom.Disk, phi float64) []geom.Disk {
	c, s := math.Cos(phi), math.Sin(phi)
	out := make([]geom.Disk, len(disks))
	for i, d := range disks {
		out[i] = geom.Disk{
			C: geom.Pt(c*d.C.X-s*d.C.Y, s*d.C.X+c*d.C.Y),
			R: d.R,
		}
	}
	return out
}

// rotateDisksQuarter rotates every disk center by exactly π/2:
// (x, y) → (−y, x) is exact in floating point, so the rotated instance is
// bit-for-bit congruent to the original.
func rotateDisksQuarter(disks []geom.Disk) []geom.Disk {
	out := make([]geom.Disk, len(disks))
	for i, d := range disks {
		out[i] = geom.Disk{C: geom.Pt(-d.C.Y, d.C.X), R: d.R}
	}
	return out
}

// scaleDisks scales centers and radii uniformly by s about the origin.
func scaleDisks(disks []geom.Disk, s float64) []geom.Disk {
	out := make([]geom.Disk, len(disks))
	for i, d := range disks {
		out[i] = geom.Disk{C: d.C.Scale(s), R: d.R * s}
	}
	return out
}

// TestMetamorphicPermutation: relabeling the disks permutes the skyline set
// accordingly and leaves the envelope untouched.
func TestMetamorphicPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		disks := randomLocalSet(rng, 2+rng.Intn(30))
		base, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(len(disks)) // perm[newIdx] = oldIdx
		inv := make([]int, len(disks))
		permuted := make([]geom.Disk, len(disks))
		for newIdx, oldIdx := range perm {
			permuted[newIdx] = disks[oldIdx]
			inv[oldIdx] = newIdx
		}
		got, err := Compute(permuted)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int, 0, len(base.Set()))
		for _, i := range base.Set() {
			want = append(want, inv[i])
		}
		sort.Ints(want)
		label := fmt.Sprintf("trial %d (n=%d)", trial, len(disks))
		sameSet(t, got.Set(), want, label)
		sameEnvelope(t, disks, base, permutedBack(got, perm), label)
	}
}

// permutedBack rewrites a skyline over permuted disks as a skyline over the
// original indices, so envelope helpers can evaluate it on the original
// disk slice. perm[newIdx] = oldIdx.
func permutedBack(s Skyline, perm []int) Skyline {
	out := s.Clone()
	for i := range out {
		out[i].Disk = perm[out[i].Disk]
	}
	return out
}

// TestMetamorphicQuarterRotation: a quarter-turn is exact in float64, so
// the skyline set must be identical and the envelope must be the original
// envelope shifted by π/2.
func TestMetamorphicQuarterRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		disks := randomLocalSet(rng, 2+rng.Intn(30))
		base, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		rotated := rotateDisksQuarter(disks)
		got, err := Compute(rotated)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("trial %d (n=%d)", trial, len(disks))
		sameSet(t, got.Set(), base.Set(), label)
		for _, a := range base {
			mid := (a.Start + a.End) / 2
			v0 := envelopeValue(disks, base, mid)
			v1 := envelopeValue(rotated, got, geom.NormalizeAngle(mid+math.Pi/2))
			if math.Abs(v0-v1) > 1e-9*(1+v0) {
				t.Fatalf("%s: envelope not shifted by π/2 at θ=%v: %v vs %v", label, mid, v0, v1)
			}
		}
	}
}

// TestMetamorphicGenericRotation: an arbitrary-angle rotation perturbs the
// coordinates by rounding, so the skyline set is compared as a set and the
// envelope and area only up to tolerance.
func TestMetamorphicGenericRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		disks := randomLocalSet(rng, 2+rng.Intn(30))
		base, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		phi := rng.Float64() * geom.TwoPi
		rotated := rotateDisks(disks, phi)
		got, err := Compute(rotated)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("trial %d (n=%d, φ=%v)", trial, len(disks), phi)
		sameSet(t, got.Set(), base.Set(), label)
		if a0, a1 := base.Area(disks), got.Area(rotated); math.Abs(a0-a1) > 1e-6*(1+a0) {
			t.Fatalf("%s: area changed under rotation: %v vs %v", label, a0, a1)
		}
		for _, a := range base {
			mid := (a.Start + a.End) / 2
			v0 := envelopeValue(disks, base, mid)
			v1 := envelopeValue(rotated, got, geom.NormalizeAngle(mid+phi))
			if math.Abs(v0-v1) > 1e-6*(1+v0) {
				t.Fatalf("%s: envelope not rotated at θ=%v: %v vs %v", label, mid, v0, v1)
			}
		}
	}
}

// TestMetamorphicUniformScaling: scaling by a power of two is exact in
// float64, so the skyline set must be identical and the area must scale by
// s² (up to the quadrature's own tolerance). A non-dyadic factor is checked
// with tolerance.
func TestMetamorphicUniformScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		disks := randomLocalSet(rng, 2+rng.Intn(30))
		base, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []float64{2, 0.25, 1.7} {
			scaled := scaleDisks(disks, s)
			got, err := Compute(scaled)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("trial %d (n=%d, s=%g)", trial, len(disks), s)
			sameSet(t, got.Set(), base.Set(), label)
			if a0, a1 := base.Area(disks), got.Area(scaled); math.Abs(a1-s*s*a0) > 1e-6*(1+s*s*a0) {
				t.Fatalf("%s: area %v, want s²·%v = %v", label, a1, a0, s*s*a0)
			}
			for _, a := range base {
				mid := (a.Start + a.End) / 2
				v0 := envelopeValue(disks, base, mid)
				v1 := envelopeValue(scaled, got, mid)
				if math.Abs(v1-s*v0) > 1e-6*(1+s*v0) {
					t.Fatalf("%s: envelope at θ=%v is %v, want s·%v", label, mid, v1, v0)
				}
			}
		}
	}
}

// TestMetamorphicDegenerateSeeds runs the fuzz-style invariant checks on
// hand-built degenerate configurations: exact duplicates, concentric disks,
// cocircular centers, and internally tangent disks. These mirror the seeds
// checked into testdata/fuzz so the cases run under plain `go test` too.
func TestMetamorphicDegenerateSeeds(t *testing.T) {
	unit := geom.NewDisk(0, 0, 1)
	cases := []struct {
		name  string
		disks []geom.Disk
	}{
		{"duplicates", []geom.Disk{unit, unit, unit, geom.NewDisk(0.3, 0, 1.2)}},
		{"concentric", []geom.Disk{unit, geom.NewDisk(0, 0, 1.5), geom.NewDisk(0, 0, 2), geom.NewDisk(0, 0, 0.7)}},
		{"cocircular", func() []geom.Disk {
			var ds []geom.Disk
			for k := 0; k < 8; k++ {
				theta := geom.TwoPi * float64(k) / 8
				ds = append(ds, geom.Disk{C: geom.Unit(theta).Scale(0.5), R: 1})
			}
			return ds
		}()},
		{"tangent", []geom.Disk{ // hub on every boundary, tangencies inside
			geom.NewDisk(0, 0, 2),
			geom.NewDisk(1, 0, 1),
			geom.NewDisk(-0.5, 0, 1.5),
			geom.NewDisk(0, 0.6, 0.6),
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sl, err := Compute(c.disks)
			if err != nil {
				t.Fatal(err)
			}
			checkEnvelope(t, c.disks, sl, c.name)
			if sl.ArcCount() > 2*len(c.disks) {
				t.Fatalf("Lemma 8 violated: %d arcs for %d disks", sl.ArcCount(), len(c.disks))
			}
			nv, err := ComputeNaive(c.disks)
			if err != nil {
				t.Fatal(err)
			}
			sameEnvelope(t, c.disks, sl, nv, c.name)
		})
	}
}
