package skyline

import (
	"sort"

	"repro/internal/geom"
)

// ComputeNaive builds the skyline by the global-breakpoint method: collect
// every angle at which any two ρ curves can cross, sort them, and decide
// the winning disk on each elementary interval by evaluating the envelope
// at its midpoint. It runs in O(n² log n) and serves as the reference
// oracle for the divide-and-conquer algorithm in the test suite.
func ComputeNaive(disks []geom.Disk) (Skyline, error) {
	if err := checkLocal(disks); err != nil {
		return nil, err
	}
	if len(disks) == 1 {
		return single(0), nil
	}

	angles := []float64{0, geom.TwoPi}
	for i := 0; i < len(disks); i++ {
		for j := i + 1; j < len(disks); j++ {
			cands, cn := crossingAngles(disks, i, j)
			angles = append(angles, cands[:cn]...)
		}
	}
	sort.Float64s(angles)
	angles = dedupeAngles(angles)

	var out Skyline
	for k := 0; k+1 < len(angles); k++ {
		a, b := angles[k], angles[k+1]
		if geom.AngleSliver(a, b) {
			continue
		}
		_, win := Rho(disks, (a+b)/2)
		out = append(out, Arc{Start: a, End: b, Disk: win})
	}
	if len(out) == 0 {
		// All breakpoints collapsed (e.g. duplicate disks only): single arc.
		_, win := Rho(disks, 1.0)
		out = single(win)
	}
	out[0].Start = 0
	out[len(out)-1].End = geom.TwoPi
	return out.Combine(), nil
}

// dedupeAngles removes angles closer than AngleEps to their predecessor.
// The input must be sorted.
func dedupeAngles(angles []float64) []float64 {
	out := angles[:0]
	for _, a := range angles {
		if len(out) == 0 || !geom.AngleSliver(out[len(out)-1], a) {
			out = append(out, a)
		}
	}
	return out
}
