package skyline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestRadialDistanceMatchesRho(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	disks := randomLocalSet(rng, 20)
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		theta := rng.Float64() * geom.TwoPi
		got := sl.RadialDistance(disks, theta)
		want, _ := Rho(disks, theta)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("RadialDistance(%v) = %v, Rho = %v", theta, got, want)
		}
	}
	// Angles outside [0, 2π) are normalized.
	if got, want := sl.RadialDistance(disks, -1), sl.RadialDistance(disks, geom.TwoPi-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("normalization: %v vs %v", got, want)
	}
}

func TestContainsMatchesDirectCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	for trial := 0; trial < 20; trial++ {
		disks := randomLocalSet(rng, 1+rng.Intn(15))
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 200; k++ {
			p := geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
			want := geom.UnionContains(disks, p)
			got := sl.Contains(disks, p)
			if got != want {
				// Tolerance disagreements right on a boundary are fine.
				onBoundary := false
				for _, d := range disks {
					if math.Abs(d.C.Dist(p)-d.R) < 1e-6 {
						onBoundary = true
					}
				}
				if !onBoundary {
					t.Fatalf("trial %d: Contains(%v) = %v, direct check %v", trial, p, got, want)
				}
			}
		}
		if !sl.Contains(disks, geom.Pt(0, 0)) {
			t.Fatal("the hub must be contained")
		}
	}
}

func TestPerimeterSingleDisk(t *testing.T) {
	for _, d := range []geom.Disk{
		geom.NewDisk(0, 0, 1),
		geom.NewDisk(0.4, -0.2, 1.5),
	} {
		sl, err := Compute([]geom.Disk{d})
		if err != nil {
			t.Fatal(err)
		}
		got := sl.Perimeter([]geom.Disk{d})
		want := geom.TwoPi * d.R
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("Perimeter(%v) = %.12f, want %.12f", d, got, want)
		}
	}
}

func TestPerimeterTwoDisksClosedForm(t *testing.T) {
	// Two unit circles at center distance 1: each keeps the arc outside
	// the other. The excluded arc has central angle 2·acos(d/2)... for
	// r = 1, d = 1: half-angle = acos(1/2)·... The chord subtends central
	// angle 2·acos(d/(2r)) = 2·acos(0.5) = 2π/3 at each circle, so each
	// contributes 2π − 2π/3 = 4π/3 of boundary.
	disks := []geom.Disk{geom.NewDisk(-0.5, 0, 1), geom.NewDisk(0.5, 0, 1)}
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	got := sl.Perimeter(disks)
	want := 2 * (geom.TwoPi - 2*math.Acos(0.5))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Perimeter = %.12f, want %.12f", got, want)
	}
}

// The perimeter of a union is at most the sum of the circumferences and at
// least the largest circumference... the latter is false in general for
// unions, but for star-shaped unions of disks all containing the hub the
// boundary is a single closed curve enclosing the largest disk, so its
// length is at least that disk's circumference is ALSO not guaranteed;
// use the isoperimetric bound instead: perimeter² ≥ 4π·area.
func TestPerimeterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 30; trial++ {
		disks := randomLocalSet(rng, 1+rng.Intn(20))
		sl, err := Compute(disks)
		if err != nil {
			t.Fatal(err)
		}
		per := sl.Perimeter(disks)
		var sum float64
		for _, d := range disks {
			sum += geom.TwoPi * d.R
		}
		if per > sum+1e-9 {
			t.Fatalf("trial %d: perimeter %v exceeds total circumference %v", trial, per, sum)
		}
		area := sl.Area(disks)
		if per*per < 4*math.Pi*area-1e-6 {
			t.Fatalf("trial %d: isoperimetric inequality violated: P²=%v < 4πA=%v",
				trial, per*per, 4*math.Pi*area)
		}
	}
}

func TestBoundaryPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	disks := randomLocalSet(rng, 10)
	sl, err := Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		theta := rng.Float64() * geom.TwoPi
		p := sl.BoundaryPoint(disks, theta)
		// The point lies on the boundary circle of the owning disk.
		d := disks[sl.DiskAt(theta)]
		if !d.OnBoundary(p) {
			t.Fatalf("BoundaryPoint(%v) = %v not on disk %v", theta, p, d)
		}
		// And slightly beyond it is outside the whole union.
		beyond := p.Scale(1 + 1e-4)
		if geom.UnionContains(disks, beyond) {
			t.Fatalf("point beyond the boundary at θ=%v is still inside", theta)
		}
	}
}
