package skyline

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Metric names exported by this package (see docs/OBSERVABILITY.md).
const (
	MetricComputeTotal       = "skyline_compute_total"
	MetricComputeSeconds     = "skyline_compute_seconds"
	MetricMergeTotal         = "skyline_merge_total"
	MetricMergeCase0Total    = "skyline_merge_case0_total"
	MetricMergeCase1Total    = "skyline_merge_case1_total"
	MetricMergeCase2Total    = "skyline_merge_case2_total"
	MetricBreakpointsTotal   = "skyline_merge_breakpoints_total"
	MetricMaxArcs            = "skyline_max_arcs"
	MetricMaxArcBound        = "skyline_max_arc_bound"
	MetricArcBoundRatio      = "skyline_arc_bound_ratio"
	MetricBoundViolations    = "skyline_arc_bound_violations_total"
	MetricRecursionDepth     = "skyline_recursion_depth"
	MetricArcsPerCompute     = "skyline_arcs_per_compute"
	MetricParallelWorkers    = "skyline_parallel_workers"
	MetricParallelSpawned    = "skyline_parallel_goroutines_total"
	MetricParallelSequential = "skyline_parallel_sequential_total"
)

// skyMetrics holds pre-resolved metric handles so the instrumented hot
// paths never touch the registry's name map. All fields come from one
// registry; the struct is installed atomically by Instrument.
type skyMetrics struct {
	computes       *obs.Counter
	computeSeconds *obs.Timer
	merges         *obs.Counter
	// Merge span outcomes, by how many envelope crossings were cut into
	// the span: the paper's no-intersection / one-intersection /
	// two-intersection cases. Spans in which the same disk is active on
	// both sides trivially have no crossing and count as case 0.
	case0, case1, case2 *obs.Counter
	breakpoints         *obs.Counter
	// Lemma 8 accounting: maxArcs is the largest skyline (in arcs) any
	// Compute returned, maxArcBound the largest 2n bound among those
	// instances, boundRatio the largest per-instance arcs/(2n) ratio
	// (> 1 would falsify Lemma 8 at runtime), and violations counts
	// instances that exceeded their own bound outright.
	maxArcs     *obs.Gauge
	maxArcBound *obs.Gauge
	boundRatio  *obs.Gauge
	violations  *obs.Counter
	depth       *obs.Gauge
	arcs        *obs.Histogram
	// ComputeParallel fan-out accounting.
	parWorkers    *obs.Gauge
	parSpawned    *obs.Counter
	parSequential *obs.Counter
}

// skyInstr is the package's installed instrumentation; nil means disabled.
// Hot paths do one atomic load and a nil check — the zero-cost-off path.
var skyInstr atomic.Pointer[skyMetrics]

// Instrument installs metrics collection for this package into r; nil
// disables it. The A1 ablation variants (ComputeNoCombine) stay
// uninstrumented so their measurements are never polluted.
func Instrument(r *obs.Registry) {
	if r == nil {
		skyInstr.Store(nil)
		return
	}
	skyInstr.Store(&skyMetrics{
		computes:       r.Counter(MetricComputeTotal),
		computeSeconds: r.Timer(MetricComputeSeconds),
		merges:         r.Counter(MetricMergeTotal),
		case0:          r.Counter(MetricMergeCase0Total),
		case1:          r.Counter(MetricMergeCase1Total),
		case2:          r.Counter(MetricMergeCase2Total),
		breakpoints:    r.Counter(MetricBreakpointsTotal),
		maxArcs:        r.Gauge(MetricMaxArcs),
		maxArcBound:    r.Gauge(MetricMaxArcBound),
		boundRatio:     r.Gauge(MetricArcBoundRatio),
		violations:     r.Counter(MetricBoundViolations),
		depth:          r.Gauge(MetricRecursionDepth),
		arcs:           r.Histogram(MetricArcsPerCompute),
		parWorkers:     r.Gauge(MetricParallelWorkers),
		parSpawned:     r.Counter(MetricParallelSpawned),
		parSequential:  r.Counter(MetricParallelSequential),
	})
}

// recordCompute books one finished Compute: the arc count against the
// Lemma 8 bound 2n, and the arc-count distribution.
func (m *skyMetrics) recordCompute(arcs, n int) {
	bound := 2 * n
	m.maxArcs.SetMax(float64(arcs))
	m.maxArcBound.SetMax(float64(bound))
	m.boundRatio.SetMax(float64(arcs) / float64(bound))
	if arcs > bound {
		m.violations.Inc()
	}
	m.arcs.Observe(float64(arcs))
}
