package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || !s.Empty() || s.Count() != 0 {
		t.Fatal("new set must be empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if s.Has(1) || s.Has(128) {
		t.Error("unset bits reported as set")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Remove failed")
	}
	if got := s.Members(); len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("Members = %v", got)
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(10)
	if s.Has(-1) || s.Has(10) {
		t.Error("out-of-range Has must be false")
	}
	mustPanic(t, func() { s.Add(10) })
	mustPanic(t, func() { s.Add(-1) })
	mustPanic(t, func() { s.Remove(10) })
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(20)
	mustPanic(t, func() { a.OrWith(b) })
	mustPanic(t, func() { a.AndNotWith(b) })
	mustPanic(t, func() { a.CountAndNot(b) })
	mustPanic(t, func() { a.IsSubset(b) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestFillClear(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(%d): Count = %d", n, s.Count())
		}
		s.Clear()
		if !s.Empty() {
			t.Errorf("Clear(%d) left bits set", n)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(100), New(100)
	for _, i := range []int{1, 5, 70} {
		a.Add(i)
	}
	for _, i := range []int{5, 70, 99} {
		b.Add(i)
	}
	u := a.Clone()
	u.OrWith(b)
	if u.Count() != 4 {
		t.Errorf("union count = %d, want 4", u.Count())
	}
	d := a.Clone()
	d.AndNotWith(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Errorf("difference = %v", d.Members())
	}
	if got := a.CountAndNot(b); got != 1 {
		t.Errorf("CountAndNot = %d, want 1", got)
	}
	if !a.IsSubset(u) || !b.IsSubset(u) {
		t.Error("operands must be subsets of their union")
	}
	if a.IsSubset(b) {
		t.Error("a is not a subset of b")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone must equal original")
	}
	if a.Equal(b) || a.Equal(New(50)) {
		t.Error("distinct sets must not be equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Add(3)
	c := a.Clone()
	c.Add(7)
	if a.Has(7) {
		t.Error("mutating a clone must not affect the original")
	}
}

// Property: a bitset agrees with a reference map-based set under a random
// operation sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		const n = 150
		s := New(n)
		ref := make(map[int]bool)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range opsRaw {
			i := rng.Intn(n)
			switch op % 3 {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			case 2:
				if s.Has(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, m := range s.Members() {
			if !ref[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: |a \ b| + |a ∩ b| == |a| (via CountAndNot and set ops).
func TestQuickCountIdentity(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		const n = 200
		a, b := New(n), New(n)
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		for i := 0; i < 80; i++ {
			a.Add(ra.Intn(n))
			b.Add(rb.Intn(n))
		}
		inter := a.Clone()
		inter.AndNotWith(b) // a \ b
		return a.CountAndNot(b)+a.Count()-inter.Count() == a.Count() &&
			a.CountAndNot(b) == inter.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
