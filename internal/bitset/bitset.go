// Package bitset provides a dense fixed-capacity bitset used by the exact
// (branch-and-bound) forwarding-set solver, where coverage of 2-hop
// neighbors is tested with word-parallel operations.
package bitset

import "math/bits"

// Set is a bitset over [0, n). The zero value of the struct is unusable;
// construct with New.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty bitset with capacity n.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

// Add sets bit i. Out-of-range indices panic, as they indicate a logic
// error in the caller.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// OrWith sets s to s ∪ t. The sets must have the same capacity.
func (s *Set) OrWith(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// AndNotWith sets s to s \ t. The sets must have the same capacity.
func (s *Set) AndNotWith(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// CountAndNot returns |s \ t| without modifying s.
func (s *Set) CountAndNot(t *Set) int {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ t.words[i])
	}
	return c
}

// IsSubset reports whether s ⊆ t.
func (s *Set) IsSubset(t *Set) bool {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t hold the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Fill sets every bit in [0, n).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := uint(s.n) & 63; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << rem) - 1
	}
}

// Clear resets every bit.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Members returns the set bits in increasing order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}
