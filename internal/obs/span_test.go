package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestSpanSampling checks the per-kind budget: the first limit spans are
// emitted as begin/end pairs, later ones are counted but not traced.
func TestSpanSampling(t *testing.T) {
	var buf bytes.Buffer
	sink := NewEventSink(&buf)
	tr := NewSpanTracer(sink, 3)
	k := tr.Kind("op")
	const total = 10
	for i := 0; i < total; i++ {
		sp := k.Begin()
		wantSampled := i < 3
		if sp.Sampled() != wantSampled {
			t.Fatalf("span %d: Sampled = %v, want %v", i, sp.Sampled(), wantSampled)
		}
		sp.End(map[string]any{"i": i})
	}
	if got := k.Total(); got != total {
		t.Errorf("Total = %d, want %d (past-budget spans still counted)", got, total)
	}
	if got := k.SampledCount(); got != 3 {
		t.Errorf("SampledCount = %d, want 3", got)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	begins, ends := 0, 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		switch ev.Type {
		case EventSpanBegin:
			begins++
		case EventSpanEnd:
			ends++
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
		if ev.Fields["span"] != "op" {
			t.Fatalf("span field = %v, want op", ev.Fields["span"])
		}
	}
	if begins != 3 || ends != 3 {
		t.Errorf("trace has %d begins / %d ends, want 3/3", begins, ends)
	}
}

// TestSpanPairing checks begin/end ids pair up and carry End's fields.
func TestSpanPairing(t *testing.T) {
	var buf bytes.Buffer
	sink := NewEventSink(&buf)
	tr := NewSpanTracer(sink, 0) // 0 → DefaultSpanLimit
	k := tr.Kind("round")
	sp := k.Begin()
	sp.End(map[string]any{"transmitters": 4})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Type != EventSpanBegin || evs[1].Type != EventSpanEnd {
		t.Fatalf("types = %q, %q", evs[0].Type, evs[1].Type)
	}
	if evs[0].Fields["id"] != evs[1].Fields["id"] {
		t.Errorf("begin id %v != end id %v", evs[0].Fields["id"], evs[1].Fields["id"])
	}
	if evs[1].Fields["transmitters"] != float64(4) {
		t.Errorf("end fields = %v, want transmitters 4", evs[1].Fields)
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Errorf("seq not increasing: %d then %d", evs[0].Seq, evs[1].Seq)
	}
}

// TestSpanConcurrent drives one kind from many goroutines; under -race
// this proves the sampling path is data-race free, and the ids of
// emitted spans must be exactly 1..limit.
func TestSpanConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewEventSink(&buf)
	const limit = 50
	k := NewSpanTracer(sink, limit).Kind("op")
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k.Begin().End(nil)
			}
		}()
	}
	wg.Wait()
	if got := k.Total(); got != workers*per {
		t.Errorf("Total = %d, want %d", got, workers*per)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	ids := make(map[float64]int)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == EventSpanBegin {
			ids[ev.Fields["id"].(float64)]++
		}
	}
	if len(ids) != limit {
		t.Fatalf("%d distinct sampled ids, want %d", len(ids), limit)
	}
	for id := 1; id <= limit; id++ {
		if ids[float64(id)] != 1 {
			t.Errorf("id %d emitted %d times, want once", id, ids[float64(id)])
		}
	}
}

// TestSpanNilNoop: a nil tracer, nil kind, and zero span are all no-ops.
func TestSpanNilNoop(t *testing.T) {
	tr := NewSpanTracer(nil, 10)
	if tr != nil {
		t.Fatal("nil sink must yield nil tracer")
	}
	k := tr.Kind("x")
	if k != nil {
		t.Fatal("nil tracer must yield nil kind")
	}
	sp := k.Begin()
	if sp.Sampled() {
		t.Error("nil kind's span must be unsampled")
	}
	sp.End(map[string]any{"a": 1})
	if k.Total() != 0 || k.SampledCount() != 0 {
		t.Error("nil kind must read as zero")
	}
	var zero Span
	zero.End(nil)
}
