package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this also proves the implementation is data-race free.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if again := r.Counter("hits"); again != c {
		t.Error("Counter must return the same handle for the same name")
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("max")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.SetMax(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per-1); got != want {
		t.Fatalf("gauge max = %g, want %g", got, want)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sum")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per)*0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("gauge sum = %g, want %g", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", 1, 2, 4, 8)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 10))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	snap := h.snapshot()
	var total int64
	for _, c := range snap.Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket counts sum to %d, want %d", total, workers*per)
	}
	// 0 and 1 land in bucket 0 (≤1); 9 lands in overflow.
	if snap.Counts[0] != 2*workers*per/10 {
		t.Errorf("bucket ≤1 has %d, want %d", snap.Counts[0], 2*workers*per/10)
	}
	if last := snap.Counts[len(snap.Counts)-1]; last != workers*per/10 {
		t.Errorf("overflow bucket has %d, want %d", last, workers*per/10)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("op")
	stop := tm.Start()
	time.Sleep(time.Millisecond)
	stop()
	tm.Observe(2 * time.Millisecond)
	if got := tm.Count(); got != 2 {
		t.Fatalf("timer count = %d, want 2", got)
	}
	if sum := tm.h.Sum(); sum < 0.003 || sum > 1 {
		t.Errorf("timer sum = %g s, want ≥ 3ms and sane", sum)
	}
}

// TestNilFastPath exercises every operation through a nil registry: all
// handles are nil and every method must be a safe no-op. This is the
// disabled configuration that instrumented hot paths rely on.
func TestNilFastPath(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	tm := r.Timer("t")
	if c != nil || g != nil || h != nil || tm != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	g.Add(3)
	h.Observe(4)
	tm.Observe(time.Second)
	tm.Start()()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || tm.Count() != 0 {
		t.Error("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 || len(snap.Timers) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil registry: %v", err)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b_total").Add(2)
		r.Counter("a_total").Add(1)
		r.Gauge("z_max").Set(9.5)
		r.Histogram("sizes", 1, 10).Observe(3)
		r.Timer("t").Observe(time.Millisecond)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("identical registries must serialize byte-identically")
	}
	var snap Snapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["a_total"] != 1 || snap.Counters["b_total"] != 2 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["z_max"] != 9.5 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	if snap.Histograms["sizes"].Count != 1 {
		t.Errorf("histograms = %v", snap.Histograms)
	}
	if snap.Timers["t"].Count != 1 {
		t.Errorf("timers = %v", snap.Timers)
	}
}

func TestHistogramBoundsImmutable(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", 1, 2)
	h2 := r.Histogram("h", 99) // bounds of an existing histogram are kept
	if h1 != h2 {
		t.Fatal("same name must return the same histogram")
	}
	if len(h1.bounds) != 2 {
		t.Fatalf("bounds = %v, want the original [1 2]", h1.bounds)
	}
}
