package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this also proves the implementation is data-race free.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if again := r.Counter("hits"); again != c {
		t.Error("Counter must return the same handle for the same name")
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("max")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.SetMax(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per-1); got != want {
		t.Fatalf("gauge max = %g, want %g", got, want)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sum")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per)*0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("gauge sum = %g, want %g", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%10 + 1))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	if got, want := h.Sum(), float64(workers*per)*5.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("min/max = %g/%g, want 1/10", h.Min(), h.Max())
	}
	if again := r.Histogram("sizes"); again != h {
		t.Error("Histogram must return the same handle for the same name")
	}
}

// TestHistogramQuantileAccuracy checks that quantiles of a known uniform
// distribution land within the log-bucketing's documented relative error.
func TestHistogramQuantileAccuracy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / n) // uniform on (0, 1]
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.50},
		{0.90, 0.90},
		{0.99, 0.99},
		{0.999, 0.999},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.07 {
			t.Errorf("Quantile(%g) = %g, want %g ±7%% (rel err %.3f)", tc.q, got, tc.want, rel)
		}
	}
	if q0 := h.Quantile(0); q0 < h.Min() {
		t.Errorf("Quantile(0) = %g below Min %g", q0, h.Min())
	}
	if q1 := h.Quantile(1); q1 > h.Max() {
		t.Errorf("Quantile(1) = %g above Max %g", q1, h.Max())
	}
}

// TestHistogramEdgeCases pins the documented behavior for empty
// histograms, NaN/±Inf observations, non-positive values, and
// single-bucket saturation.
func TestHistogramEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := newHistogram()
		if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
			t.Error("empty histogram must read all-zero")
		}
		if got := h.Quantile(0.99); got != 0 {
			t.Errorf("Quantile on empty = %g, want 0", got)
		}
		s := h.snapshot()
		if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P999 != 0 {
			t.Errorf("empty snapshot = %+v, want zeros", s)
		}
	})
	t.Run("nan_dropped", func(t *testing.T) {
		h := newHistogram()
		h.Observe(math.NaN())
		if h.Count() != 0 {
			t.Error("NaN observation must be dropped")
		}
		h.Observe(2)
		h.Observe(math.NaN())
		if h.Count() != 1 || h.Mean() != 2 {
			t.Errorf("count/mean after NaN = %d/%g, want 1/2", h.Count(), h.Mean())
		}
		if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
			t.Errorf("Quantile(NaN) = %g, want NaN", got)
		}
	})
	t.Run("infinities", func(t *testing.T) {
		h := newHistogram()
		h.Observe(math.Inf(1))
		h.Observe(math.Inf(-1))
		if h.Count() != 2 {
			t.Fatalf("count = %d, want 2", h.Count())
		}
		if s := h.Sum(); math.IsInf(s, 0) || math.IsNaN(s) {
			t.Errorf("sum = %g, want finite (clamped)", s)
		}
		if m := h.Mean(); math.IsInf(m, 0) || math.IsNaN(m) {
			t.Errorf("mean = %g, want finite", m)
		}
		// +Inf saturates into the overflow bucket, -Inf into bucket 0.
		if got := bucketIndex(math.Inf(1)); got != histBuckets-1 {
			t.Errorf("bucketIndex(+Inf) = %d, want %d", got, histBuckets-1)
		}
		if got := bucketIndex(math.Inf(-1)); got != 0 {
			t.Errorf("bucketIndex(-Inf) = %d, want 0", got)
		}
	})
	t.Run("nonpositive", func(t *testing.T) {
		h := newHistogram()
		h.Observe(0)
		h.Observe(-3)
		if h.Count() != 2 || h.Min() != -3 || h.Max() != 0 {
			t.Errorf("count/min/max = %d/%g/%g, want 2/-3/0", h.Count(), h.Min(), h.Max())
		}
		// Non-positive values share bucket 0, whose representative (0) is
		// clamped into the exact [Min, Max] envelope.
		if got := h.Quantile(0.5); got < -3 || got > 0 {
			t.Errorf("Quantile(0.5) = %g, want within [-3, 0]", got)
		}
	})
	t.Run("single_bucket_saturation", func(t *testing.T) {
		// All mass in one bucket: every quantile must report the exact
		// value, because midpoints clamp to the [Min, Max] envelope.
		h := newHistogram()
		for i := 0; i < 1000; i++ {
			h.Observe(3.7)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 3.7 {
				t.Errorf("Quantile(%g) = %g, want exactly 3.7", q, got)
			}
		}
	})
	t.Run("below_range_saturation", func(t *testing.T) {
		h := newHistogram()
		tiny := math.Ldexp(1, histMinExp-5) // below 2^histMinExp
		h.Observe(tiny)
		if got := h.Quantile(0.5); got != tiny {
			t.Errorf("Quantile(0.5) = %g, want exact %g via Min clamp", got, tiny)
		}
	})
	t.Run("above_range_saturation", func(t *testing.T) {
		h := newHistogram()
		huge := math.Ldexp(1, histMaxExp+3)
		h.Observe(huge)
		if got := h.Quantile(0.5); got != huge {
			t.Errorf("Quantile(0.5) = %g, want exact %g via Max clamp", got, huge)
		}
	})
	t.Run("quantile_clamped", func(t *testing.T) {
		h := newHistogram()
		h.Observe(1)
		h.Observe(2)
		// q clamps to 0 → rank 1 → bucket holding the value 1, whose
		// midpoint carries the bucketing's relative error.
		if got := h.Quantile(-0.5); got < 1 || got > 1.125 {
			t.Errorf("Quantile(-0.5) = %g, want within bucket of 1", got)
		}
		if got := h.Quantile(2); got != 2 {
			t.Errorf("Quantile(2) = %g, want 2 (clamped to q=1)", got)
		}
	})
	t.Run("nil", func(t *testing.T) {
		var h *Histogram
		h.Observe(1)
		if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
			t.Error("nil histogram must read as zero")
		}
	})
}

// TestBucketIndexMid checks that bucketIndex and bucketMid agree: every
// in-range value's bucket midpoint is within one sub-bucket width of the
// value.
func TestBucketIndexMid(t *testing.T) {
	for _, v := range []float64{1e-9, 2.5e-6, 0.001, 0.5, 1, 3.7, 1000, 1e9} {
		i := bucketIndex(v)
		mid := bucketMid(i)
		if rel := math.Abs(mid-v) / v; rel > 1.0/histSubBuckets {
			t.Errorf("bucketMid(bucketIndex(%g)) = %g, rel err %.4f > %.4f", v, mid, rel, 1.0/histSubBuckets)
		}
	}
	// Bucket boundaries are monotone.
	prev := 0.0
	for i := 1; i < histBuckets; i++ {
		mid := bucketMid(i)
		if mid <= prev {
			t.Fatalf("bucketMid(%d) = %g not increasing past %g", i, mid, prev)
		}
		prev = mid
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("op")
	sw := tm.Start()
	time.Sleep(time.Millisecond)
	sw.Stop()
	tm.Observe(2 * time.Millisecond)
	if got := tm.Count(); got != 2 {
		t.Fatalf("timer count = %d, want 2", got)
	}
	if sum := tm.h.Sum(); sum < 0.003 || sum > 1 {
		t.Errorf("timer sum = %g s, want ≥ 3ms and sane", sum)
	}
	if q := tm.Quantile(0.5); q <= 0 {
		t.Errorf("timer p50 = %g, want > 0", q)
	}
}

// TestNilFastPath exercises every operation through a nil registry: all
// handles are nil and every method must be a safe no-op. This is the
// disabled configuration that instrumented hot paths rely on.
func TestNilFastPath(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	tm := r.Timer("t")
	if c != nil || g != nil || h != nil || tm != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	g.Add(3)
	h.Observe(4)
	tm.Observe(time.Second)
	tm.Start().Stop()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || tm.Count() != 0 {
		t.Error("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 || len(snap.Timers) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil registry: %v", err)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b_total").Add(2)
		r.Counter("a_total").Add(1)
		r.Gauge("z_max").Set(9.5)
		r.Histogram("sizes").Observe(3)
		r.Timer("t").Observe(time.Millisecond)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("identical registries must serialize byte-identically")
	}
	var snap Snapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["a_total"] != 1 || snap.Counters["b_total"] != 2 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["z_max"] != 9.5 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	if hs := snap.Histograms["sizes"]; hs.Count != 1 || hs.P50 != 3 || hs.P999 != 3 {
		t.Errorf("histograms = %+v, want count 1 with exact quantiles 3", hs)
	}
	if snap.Timers["t"].Count != 1 {
		t.Errorf("timers = %v", snap.Timers)
	}
}

// TestSnapshotQuantiles checks the snapshot surfaces the percentile
// fields with the documented accuracy.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	s := r.Snapshot().Histograms["lat"]
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", s.P50, 5000},
		{"p90", s.P90, 9000},
		{"p99", s.P99, 9900},
		{"p999", s.P999, 9990},
	} {
		if rel := math.Abs(tc.got-tc.want) / tc.want; rel > 0.07 {
			t.Errorf("%s = %g, want %g ±7%%", tc.name, tc.got, tc.want)
		}
	}
	if s.Min != 1 || s.Max != n {
		t.Errorf("min/max = %g/%g, want exact 1/%d", s.Min, s.Max, n)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}
