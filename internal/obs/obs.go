// Package obs is the repository's observability layer: a lightweight,
// allocation-conscious metrics registry (sharded counters, gauges,
// timers, and log-bucketed quantile histograms), a structured JSONL event
// sink, and a bounded-sampling span tracer.
//
// Two design goals shape the package:
//
//   - Zero cost when disabled. Every metric method is nil-receiver safe,
//     and a nil *Registry hands out nil metric handles, so instrumented
//     packages hold a single atomic pointer to their handle struct and
//     pay one atomic load (plus a predictable branch) per instrumented
//     operation when observability is off.
//
//   - Negligible cost when enabled, at any core count. Counters, timers,
//     and histograms stripe their state across cache-line-padded shards
//     (see shard.go); an update touches only the calling goroutine's
//     shard — one wait-free atomic add with no line shared across cores —
//     and reads merge the shards. Instrumentation can therefore stay
//     always-on under a 16-worker engine pool without serializing it.
//
// No global state lives here; each instrumented package installs handles
// via its own Instrument function (see internal/skyline, internal/engine,
// internal/broadcast, internal/experiments), and the public facade wires
// them together.
//
// Snapshots are deterministic: metric names are emitted in sorted order,
// so two dumps of registries with the same contents are byte-identical.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter striped across
// cache-line-padded shards: Add is a single wait-free atomic add on the
// calling goroutine's shard, and Value merges the shards. Obtain counters
// from a Registry; a nil Counter is a no-op.
type Counter struct {
	cells []cell64
}

func newCounter() *Counter { return &Counter{cells: make([]cell64, shardCount)} }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter. Wait-free; no-op on a nil receiver.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.cells[shardIndex()].v.Add(delta)
}

// Value returns the current count (0 for a nil receiver). The read merges
// all shards; it is atomic per shard but not a consistent cut under
// concurrent updates.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// Gauge is an atomic float64 instantaneous value. Gauges are set rarely
// (once per pass, not per operation), so they are deliberately a single
// cell: last-write-wins and running-maximum semantics do not merge across
// shards. The zero value reads 0; a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the current value (a running
// maximum, e.g. "largest skyline seen"). Lock-free via CAS.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named collection of metrics. Handles are created on first
// use and shared thereafter; lookups take a mutex, so instrumented code
// should fetch handles once (at Instrument time) and hold them, not look
// them up per operation. A nil *Registry hands out nil handles, making
// every downstream metric operation a no-op.
//
// Metric names must be lower_snake_case compile-time constants; the
// mldcslint obssink analyzer enforces this.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timers     map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		timers:     make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it if needed. Returns nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = newCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Timer returns the named timer, creating it if needed. Returns nil on a
// nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{h: newHistogram()}
		r.timers[name] = t
	}
	return t
}

// HistogramSnapshot is the exported state of one histogram (or timer, in
// seconds): totals plus the latency-percentile summary read off the
// merged log-scale buckets. Quantiles carry the bucketing's relative
// error (≤ ~6%, see histogram.go); Min and Max are exact.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot is a point-in-time export of a registry. Maps marshal with
// sorted keys, so JSON output is deterministic. Timers appear under
// Timers with their histogram in seconds.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Timers     map[string]HistogramSnapshot `json:"timers"`
}

// Snapshot exports the registry's current state, merging every sharded
// metric. Individual shard reads are atomic but the snapshot as a whole
// is not a consistent cut under concurrent updates. Safe on a nil
// registry (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
		Timers:     make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.h.snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
