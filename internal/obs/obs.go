// Package obs is the repository's observability layer: a lightweight,
// allocation-conscious metrics registry (atomic counters, gauges, timers,
// and fixed-bucket histograms) plus a structured JSONL event sink.
//
// The design goal is zero cost when disabled. Every metric method is
// nil-receiver safe, and a nil *Registry hands out nil metric handles, so
// instrumented packages hold a single atomic pointer to their handle
// struct and pay one atomic load (plus a predictable branch) per
// instrumented operation when observability is off. No global state lives
// here; each instrumented package installs handles via its own Instrument
// function (see internal/skyline, internal/broadcast,
// internal/experiments), and the public facade wires them together.
//
// Snapshots are deterministic: metric names are emitted in sorted order,
// so two dumps of registries with the same contents are byte-identical.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter. No-op on a nil receiver.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value. The zero value reads 0;
// a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the current value (a running
// maximum, e.g. "largest skyline seen"). Lock-free via CAS.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds are finite upper bounds in
// ascending order, observation v lands in the first bucket with v ≤ bound,
// and one extra overflow bucket catches everything larger. A nil Histogram
// is a no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Timer records durations into a histogram, in seconds. A nil Timer is a
// no-op.
type Timer struct {
	h *Histogram
}

// noop is shared so Start on a nil Timer allocates nothing.
var noop = func() {}

// Start begins timing and returns the stop function that records the
// elapsed time.
func (t *Timer) Start() func() {
	if t == nil {
		return noop
	}
	start := time.Now()
	return func() { t.h.Observe(time.Since(start).Seconds()) }
}

// Observe records a duration directly.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// Count returns the number of recorded durations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.h.Count()
}

// Default bucket bounds.
var (
	// DefaultDurationBounds covers 1µs–10s exponentially, in seconds.
	DefaultDurationBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
	// DefaultSizeBounds covers small-integer sizes (set sizes, arc
	// counts, frontier sizes) in powers of two.
	DefaultSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
)

// Registry is a named collection of metrics. Handles are created on first
// use and shared thereafter; lookups take a mutex, so instrumented code
// should fetch handles once (at Instrument time) and hold them, not look
// them up per operation. A nil *Registry hands out nil handles, making
// every downstream metric operation a no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timers     map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		timers:     make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it if needed. Returns nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds if needed (DefaultSizeBounds when none are supplied). Bounds of
// an existing histogram are not changed. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = DefaultSizeBounds
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Timer returns the named timer, creating it with DefaultDurationBounds if
// needed. Returns nil on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{h: newHistogram(DefaultDurationBounds)}
		r.timers[name] = t
	}
	return t
}

// HistogramSnapshot is the exported state of one histogram (or timer, in
// seconds). Counts has one entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is a point-in-time export of a registry. Maps marshal with
// sorted keys, so JSON output is deterministic. Timers appear under
// Timers with their histogram in seconds.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Timers     map[string]HistogramSnapshot `json:"timers"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot exports the registry's current state. Individual metric reads
// are atomic but the snapshot as a whole is not a consistent cut under
// concurrent updates. Safe on a nil registry (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
		Timers:     make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.h.snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
