package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured trace record. Seq is assigned by the sink and is
// strictly increasing in emission order, so a JSONL trace can be verified
// for completeness and ordering without wall-clock timestamps (which would
// also make traces nondeterministic under fixed seeds).
type Event struct {
	Seq    uint64         `json:"seq"`
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields,omitempty"`
}

// EventSink serializes events as JSON Lines to a writer. Emission is
// mutex-ordered: the Seq order in the output equals the order Emit calls
// acquired the lock, with no interleaved or torn lines. A nil *EventSink
// drops events for free, which is the disabled fast path.
//
// The first write or encode error latches: subsequent Emits become no-ops
// and the error is reported by Flush/Err.
type EventSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	seq uint64
	err error
}

// NewEventSink returns a sink writing JSONL to w. Call Flush before the
// underlying writer is closed.
func NewEventSink(w io.Writer) *EventSink {
	return &EventSink{w: bufio.NewWriter(w)}
}

// Emit writes one event. fields may be nil. Safe for concurrent use; no-op
// on a nil sink or after a previous error.
func (s *EventSink) Emit(typ string, fields map[string]any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.seq++
	data, err := json.Marshal(Event{Seq: s.seq, Type: typ, Fields: fields})
	if err != nil {
		s.err = err
		return
	}
	data = append(data, '\n')
	if _, err := s.w.Write(data); err != nil {
		s.err = err
	}
}

// Flush drains buffered output and returns the first error encountered by
// the sink (nil sink: nil).
func (s *EventSink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the sink's latched error, if any.
func (s *EventSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Count returns how many events have been emitted so far.
func (s *EventSink) Count() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
