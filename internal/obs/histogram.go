package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucketing: log-linear over the float64 exponent range, in the
// HDR-histogram style. Each power-of-two octave splits into 2^histSubBits
// linear sub-buckets, read straight off the top mantissa bits, so
// bucketing one observation costs a few integer ops — no search, no
// branch on data. The widest bucket spans a factor of 1+1/histSubBuckets,
// so a quantile reported at the bucket midpoint carries at most ~6%
// relative error; Min and Max are tracked exactly.
//
// The covered range [2^histMinExp, 2^histMaxExp) ≈ [9.1e-13, 1.1e12)
// holds both latencies in seconds (sub-nanosecond through ~35000 years)
// and discrete sizes (arc counts, frontier sizes, dirty-set sizes through
// a trillion). Values outside it saturate into the edge buckets; zero and
// negative observations (including -Inf) land in a dedicated bucket 0,
// +Inf in the overflow bucket, and NaN observations are dropped entirely.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits // 8 sub-buckets per octave
	histMinExp     = -40              // values below 2^-40 saturate into the first positive bucket
	histMaxExp     = 40               // values at/above 2^40 saturate into the overflow bucket
	histOctaves    = histMaxExp - histMinExp
	// Bucket 0: v ≤ 0. Buckets 1..histOctaves*histSubBuckets: positive
	// finite values in range. Last bucket: overflow.
	histBuckets = histOctaves*histSubBuckets + 2
)

// histShard is one shard's worth of histogram state. Buckets and count
// are updated with wait-free atomic adds; the sum is a CAS loop, but a
// shard is (statistically) owned by one goroutine, so the CAS almost
// never retries. Buckets within a shard are bare atomics — padding every
// bucket would cost 64× the memory for lines that are never cross-core
// contended — and the trailing pad keeps a shard's tail off the next
// shard's first line.
type histShard struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	_       [cacheLine]byte
}

// Histogram is a sharded log-bucketed histogram with quantile reads. The
// hot path (Observe) touches only the calling goroutine's shard; reads
// (Count, Sum, Quantile, snapshots) merge all shards. Obtain histograms
// from a Registry; a nil Histogram is a no-op.
type Histogram struct {
	shards []histShard
	// minBits/maxBits track the exact extremes (float bits, CAS-updated
	// only when an observation extends the range — rare after warmup).
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{shards: make([]histShard, shardCount)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps an observation to its bucket. v must not be NaN.
func bucketIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	bits := math.Float64bits(v)
	e := int(bits>>52) - 1023 // sign bit is 0 for v > 0; +Inf has e = 1024
	if e < histMinExp {
		return 1
	}
	if e >= histMaxExp {
		return histBuckets - 1
	}
	sub := int(bits>>(52-histSubBits)) & (histSubBuckets - 1)
	return 1 + (e-histMinExp)*histSubBuckets + sub
}

// bucketMid returns the representative value reported for bucket i: the
// midpoint of its bounds, the lower bound for the overflow bucket, and 0
// for the ≤0 bucket.
func bucketMid(i int) float64 {
	if i == 0 {
		return 0
	}
	if i == histBuckets-1 {
		return math.Ldexp(1, histMaxExp)
	}
	i--
	oct := i/histSubBuckets + histMinExp
	sub := float64(i % histSubBuckets)
	lo := math.Ldexp(1+sub/histSubBuckets, oct)
	hi := math.Ldexp(1+(sub+1)/histSubBuckets, oct)
	return (lo + hi) / 2
}

// Observe records one value. NaN observations are dropped; ±Inf saturate
// into the edge buckets and contribute ±math.MaxFloat64 to the running
// sum so Sum and Mean stay finite. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	sh := &h.shards[shardIndex()]
	sh.buckets[bucketIndex(v)].Add(1)
	sh.count.Add(1)
	sv := v
	if math.IsInf(sv, 0) {
		sv = math.Copysign(math.MaxFloat64, sv)
	}
	for {
		old := sh.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sv)
		if sh.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= sv || h.minBits.CompareAndSwap(old, math.Float64bits(sv)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= sv || h.maxBits.CompareAndSwap(old, math.Float64bits(sv)) {
			break
		}
	}
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.shards {
		total += h.shards[i].count.Load()
	}
	return total
}

// Sum returns the sum of all observed values (0 for a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	var total float64
	for i := range h.shards {
		total += math.Float64frombits(h.shards[i].sumBits.Load())
	}
	return total
}

// Mean returns Sum/Count (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observed value, exactly (0 when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observed value, exactly (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// mergeBuckets folds all shards into dst and returns the total count.
func (h *Histogram) mergeBuckets(dst *[histBuckets]int64) int64 {
	var total int64
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range sh.buckets {
			if n := sh.buckets[i].Load(); n != 0 {
				dst[i] += n
				total += n
			}
		}
	}
	return total
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]; out-of-
// range q is clamped) of everything observed so far: the midpoint of the
// log-scale bucket holding the q-th observation, clamped to the exact
// [Min, Max] envelope — so a single-valued histogram reports exact
// quantiles, Quantile(0) ≥ Min, and Quantile(1) ≤ Max. Returns 0 when the
// histogram is empty or nil, and NaN for NaN q.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var merged [histBuckets]int64
	total := h.mergeBuckets(&merged)
	return quantileFromBuckets(&merged, total, q, h.Min(), h.Max())
}

func quantileFromBuckets(buckets *[histBuckets]int64, total int64, q, min, max float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range buckets {
		cum += buckets[i]
		if cum >= rank {
			v := bucketMid(i)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max // unreachable: cum == total ≥ rank by the loop's end
}

// snapshot reads the merged totals and the standard latency percentiles
// in one pass over the shards.
func (h *Histogram) snapshot() HistogramSnapshot {
	var merged [histBuckets]int64
	total := h.mergeBuckets(&merged)
	s := HistogramSnapshot{
		Count: total,
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
	}
	if total == 0 {
		return s
	}
	s.Mean = s.Sum / float64(total)
	s.P50 = quantileFromBuckets(&merged, total, 0.50, s.Min, s.Max)
	s.P90 = quantileFromBuckets(&merged, total, 0.90, s.Min, s.Max)
	s.P99 = quantileFromBuckets(&merged, total, 0.99, s.Min, s.Max)
	s.P999 = quantileFromBuckets(&merged, total, 0.999, s.Min, s.Max)
	return s
}

// Timer records durations into a histogram, in seconds. A nil Timer is a
// no-op.
type Timer struct {
	h *Histogram
}

// Start begins timing and returns a Stopwatch whose Stop records the
// elapsed time. The Stopwatch is a plain value — Start/Stop perform no
// heap allocations, so timers can wrap per-node hot paths (the alloc
// regression tests pin this).
func (t *Timer) Start() Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{t: t, start: time.Now()}
}

// Stopwatch is one in-flight timing started by Timer.Start. The zero
// value (and any Stopwatch from a nil Timer) is a no-op.
type Stopwatch struct {
	t     *Timer
	start time.Time
}

// Stop records the time elapsed since Start. No-op on a zero Stopwatch;
// calling Stop more than once records the (longer) elapsed time again.
func (s Stopwatch) Stop() {
	if s.t == nil {
		return
	}
	s.t.h.Observe(time.Since(s.start).Seconds())
}

// Observe records a duration directly.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// Count returns the number of recorded durations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.h.Count()
}

// Quantile returns the q-quantile of the recorded durations in seconds
// (see Histogram.Quantile).
func (t *Timer) Quantile(q float64) float64 {
	if t == nil {
		return 0
	}
	return t.h.Quantile(q)
}
