package expo

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func scrape(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsExposition(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("engine_compute_total").Add(3)
	r.Gauge("engine_workers").Set(4)
	h := r.Histogram("engine_dirty_nodes")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	r.Timer("engine_update_seconds").Observe(25 * time.Millisecond)

	mux := http.NewServeMux()
	Mount(mux, r)
	code, body := scrape(t, mux, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", code)
	}

	for _, want := range []string{
		"# TYPE engine_compute_total counter\nengine_compute_total 3\n",
		"# TYPE engine_workers gauge\nengine_workers 4\n",
		"# TYPE engine_dirty_nodes_count counter\nengine_dirty_nodes_count 100\n",
		"# TYPE engine_dirty_nodes_p99 gauge\n",
		"# TYPE engine_update_seconds_p99 gauge\n",
		"engine_update_seconds_count 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n--- body:\n%s", want, body)
		}
	}

	// Every non-comment line must match the exposition sample grammar for
	// unlabeled series: <name> <value>.
	sample := regexp.MustCompile(`^[a-z][a-z0-9_]* (NaN|[+-]?Inf|[+-]?[0-9][0-9eE.+-]*)$`)
	comment := regexp.MustCompile(`^# TYPE [a-z][a-z0-9_]* (counter|gauge)$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !comment.MatchString(line) {
				t.Errorf("bad comment line %q", line)
			}
		} else if !sample.MatchString(line) {
			t.Errorf("bad sample line %q", line)
		}
	}
}

func TestMetricsDeterministic(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("b_total").Add(1)
	r.Counter("a_total").Add(2)
	r.Gauge("z").Set(1)
	h := Handler(r)
	_, b1 := scrape(t, h, "/")
	_, b2 := scrape(t, h, "/")
	if b1 != b2 {
		t.Error("exposition of an unchanged registry must be byte-identical")
	}
	if strings.Index(b1, "a_total") > strings.Index(b1, "b_total") {
		t.Error("counters must be emitted in sorted name order")
	}
}

func TestNilRegistry(t *testing.T) {
	code, body := scrape(t, Handler(nil), "/")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics on nil registry = %d, want 200", code)
	}
	if body != "" {
		t.Errorf("nil registry exposition = %q, want empty", body)
	}
}

func TestHealthz(t *testing.T) {
	code, body := scrape(t, HealthzHandler(), "/")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	if strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz body = %q, want ok", body)
	}
}
