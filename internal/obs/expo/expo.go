// Package expo serves an obs.Registry over HTTP in the Prometheus text
// exposition format, plus a trivial /healthz liveness endpoint. It is the
// scrape surface mldcsim mounts on its -pprof mux, and the one the mldcsd
// service will reuse verbatim.
//
// The mapping from registry metrics to exposition series is fixed:
//
//   - counters    → one `counter` series under their registered name
//   - gauges     → one `gauge` series
//   - histograms → `summary`-style derived series: <name>_count,
//     <name>_sum, <name>_min, <name>_max, and quantile series
//     <name>_p50 / _p90 / _p99 / _p999
//   - timers     → like histograms, values in seconds
//
// Registered names are lower_snake_case by construction (the mldcslint
// obssink analyzer enforces it at the call sites), which is exactly the
// Prometheus metric-name grammar, so names pass through unescaped.
package expo

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// Handler serves GET /metrics from a registry. The registry may be nil,
// in which case the exposition is empty but still well-formed.
func Handler(r *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeSnapshot(w, r.Snapshot())
	})
}

// HealthzHandler serves GET /healthz: 200 "ok" while the process is up.
// Liveness only — readiness semantics belong to the service embedding it.
func HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
}

// Mount registers the /metrics and /healthz routes on mux.
func Mount(mux *http.ServeMux, r *obs.Registry) {
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/healthz", HealthzHandler())
}

// writeSnapshot renders one snapshot as Prometheus text exposition.
// Names are emitted in sorted order within each section, so the output
// for a given snapshot is deterministic.
func writeSnapshot(w http.ResponseWriter, s obs.Snapshot) {
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatValue(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		writeHistogram(w, name, s.Histograms[name])
	}
	for _, name := range sortedKeys(s.Timers) {
		writeHistogram(w, name, s.Timers[name])
	}
}

// writeHistogram renders one histogram (or timer) snapshot as derived
// gauge/counter series. Prometheus native summaries need quantile labels;
// suffixed series keep the exposition dependency-free and greppable, and
// the _p99 convention matches the BENCH trajectory fields.
func writeHistogram(w http.ResponseWriter, name string, h obs.HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s_count counter\n%s_count %d\n", name, name, h.Count)
	fmt.Fprintf(w, "# TYPE %s_sum gauge\n%s_sum %s\n", name, name, formatValue(h.Sum))
	for _, q := range []struct {
		suffix string
		v      float64
	}{
		{"min", h.Min},
		{"max", h.Max},
		{"p50", h.P50},
		{"p90", h.P90},
		{"p99", h.P99},
		{"p999", h.P999},
	} {
		fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %s\n", name, q.suffix, name, q.suffix, formatValue(q.v))
	}
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip decimal, with non-finite values spelled NaN/+Inf/-Inf
// (snapshots never produce them, but the format is total).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
