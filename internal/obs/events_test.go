package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestEventSinkOrdering emits concurrently from many goroutines and
// verifies the JSONL output is complete, well-formed, and in strict Seq
// order with no gaps or torn lines.
func TestEventSinkOrdering(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf)
	const workers, per = 8, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit("tick", map[string]any{"worker": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Count(); got != workers*per {
		t.Fatalf("sink count = %d, want %d", got, workers*per)
	}
	sc := bufio.NewScanner(&buf)
	var seen uint64
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", seen+1, err)
		}
		seen++
		if ev.Seq != seen {
			t.Fatalf("line %d has seq %d: order violated or gap", seen, ev.Seq)
		}
		if ev.Type != "tick" {
			t.Fatalf("line %d type = %q", seen, ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if seen != workers*per {
		t.Fatalf("trace has %d lines, want %d", seen, workers*per)
	}
}

func TestEventSinkNilNoop(t *testing.T) {
	var s *EventSink
	s.Emit("x", nil) // must not panic
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Err() != nil || s.Count() != 0 {
		t.Error("nil sink must read as empty")
	}
}

func TestEventSinkFieldsOmitted(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf)
	s.Emit("bare", nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "fields") {
		t.Errorf("nil fields must be omitted, got %s", line)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestEventSinkErrorLatches(t *testing.T) {
	s := NewEventSink(&failWriter{n: 0})
	// Overflow the bufio buffer so the write error surfaces.
	big := strings.Repeat("x", 1<<16)
	s.Emit("a", map[string]any{"pad": big})
	s.Emit("b", nil)
	if err := s.Flush(); err == nil {
		t.Fatal("expected latched write error")
	}
	if s.Err() == nil {
		t.Fatal("Err must report the latched error")
	}
}
