package obs

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// cacheLine is the assumed coherence-granule size. Striping metric cells
// at this stride keeps two cores that increment the same metric from
// ping-ponging one line between their caches.
const cacheLine = 64

// shardCount is the number of cells every sharded metric stripes its
// state across: the power of two covering GOMAXPROCS at init, floored at
// 8 so processes that raise GOMAXPROCS after package init (benchmarks
// with -cpu, servers reconfigured at startup) still stripe, and capped at
// 64 to bound per-metric memory. A power of two makes shard selection a
// mask instead of a modulo.
var shardCount = func() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	p := 1
	for p < n {
		p *= 2
	}
	if p > 64 {
		p = 64
	}
	return p
}()

var shardMask = uint64(shardCount - 1)

// cell64 is one cache-line-padded atomic counter cell. A []cell64 places
// consecutive shards on distinct lines, so concurrent increments from
// different goroutines (which hash to different shards) never contend on
// the same line.
type cell64 struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// shardIndex picks the calling goroutine's shard. Goroutine identity is
// not observable from safe Go, so the index is derived from the address
// of a stack variable: distinct goroutines run on distinct stacks, and
// within one goroutine a tight instrumented loop re-enters the same
// frame, so the choice is stable exactly where locality matters. The
// multiply-shift hash spreads the allocator's aligned stack addresses
// across shards. Stack growth can move a goroutine to another shard
// mid-flight; that only redistributes load, never loses an update,
// because every read merges all shards.
func shardIndex() uint64 {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)))
	h *= 0x9E3779B97F4A7C15 // 2^64 / golden ratio
	return (h >> 17) & shardMask
}
