package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

// The benchmarks below compare the sharded metric cells against the
// single-atomic design they replaced. Run with -cpu to scale the
// contention, e.g.:
//
//	go test ./internal/obs -bench 'Counter|Timer' -cpu 1,4,8,16
//
// On one core the two are equivalent (one uncontended atomic add); the
// sharded win appears under RunParallel at GOMAXPROCS ≥ 8, where every
// single-atomic add ping-pongs one cache line between cores while each
// sharded add stays in its own line.

func BenchmarkCounterSharded(b *testing.B) {
	c := newCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Value(), b.N)
	}
}

// BenchmarkCounterSingleAtomic is the pre-sharding baseline: one atomic
// shared by all goroutines.
func BenchmarkCounterSingleAtomic(b *testing.B) {
	var c atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Load() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Load(), b.N)
	}
}

func BenchmarkTimerSharded(b *testing.B) {
	tm := &Timer{h: newHistogram()}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tm.Start().Stop()
		}
	})
	if tm.Count() != int64(b.N) {
		b.Fatalf("count = %d, want %d", tm.Count(), b.N)
	}
}

// singleAtomicTimer is the pre-sharding timer baseline: one count and one
// sum cell shared by all goroutines.
type singleAtomicTimer struct {
	count   atomic.Int64
	sumBits atomic.Uint64
}

func (t *singleAtomicTimer) observe(d time.Duration) {
	t.count.Add(1)
	for {
		old := t.sumBits.Load()
		next := old + uint64(d)
		if t.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func BenchmarkTimerSingleAtomic(b *testing.B) {
	var tm singleAtomicTimer
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			start := time.Now()
			tm.observe(time.Since(start))
		}
	})
	if tm.count.Load() != int64(b.N) {
		b.Fatalf("count = %d, want %d", tm.count.Load(), b.N)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram()
	b.RunParallel(func(pb *testing.PB) {
		v := 0
		for pb.Next() {
			h.Observe(float64(v%1000 + 1))
			v++
		}
	})
	if h.Count() != int64(b.N) {
		b.Fatalf("count = %d, want %d", h.Count(), b.N)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := newHistogram()
	for i := 1; i <= 100000; i++ {
		h.Observe(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

// BenchmarkTimerStartStopAllocs pins the Stopwatch API at zero
// allocations (the alloc regression tests assert the same through the
// instrumented engine paths).
func BenchmarkTimerStartStopAllocs(b *testing.B) {
	tm := &Timer{h: newHistogram()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Start().Stop()
	}
}
