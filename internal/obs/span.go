package obs

import "sync/atomic"

// Span event types emitted through the EventSink. Each carries a "span"
// field naming the kind and an "id" field; begin/end pairs of one span
// share the id, and ids of one kind are assigned 1, 2, 3, … so a trace
// can be checked for completeness per kind.
const (
	EventSpanBegin = "span_begin"
	EventSpanEnd   = "span_end"
)

// DefaultSpanLimit is the per-kind sample budget used when NewSpanTracer
// is given limit 0: the first DefaultSpanLimit spans of each kind are
// emitted, the rest are counted but not traced. Sampling by a fixed
// prefix (rather than probabilistically) keeps traces of seeded runs
// deterministic.
var DefaultSpanLimit uint64 = 1000

// SpanTracer turns begin/end pairs into seq-ordered span_begin/span_end
// events on an EventSink, with a bounded per-kind sample. A nil tracer
// (and every SpanKind it hands out) is a no-op — the disabled fast path.
type SpanTracer struct {
	sink  *EventSink
	limit uint64
}

// NewSpanTracer returns a tracer emitting to sink, sampling at most limit
// spans per kind (0 selects DefaultSpanLimit). A nil sink yields a nil
// tracer.
func NewSpanTracer(sink *EventSink, limit uint64) *SpanTracer {
	if sink == nil {
		return nil
	}
	if limit == 0 {
		limit = DefaultSpanLimit
	}
	return &SpanTracer{sink: sink, limit: limit}
}

// Kind registers a span kind (e.g. "engine_node"). Fetch kinds once at
// Instrument time and hold them; Begin is the per-operation call. Returns
// nil on a nil tracer.
func (t *SpanTracer) Kind(name string) *SpanKind {
	if t == nil {
		return nil
	}
	return &SpanKind{t: t, name: name, total: newCounter()}
}

// SpanKind is one span type's state: a sharded total (bumped on every
// Begin, sampled or not) and the sampling budget. Once the budget is
// exhausted the kind latches closed, and Begin costs one sharded add plus
// one read of a no-longer-written cache line — cheap enough for per-node
// hot paths.
type SpanKind struct {
	t      *SpanTracer
	name   string
	total  *Counter
	nextID atomic.Uint64
	closed atomic.Bool
}

// Begin opens a span: within the sample budget it emits a span_begin
// event and returns a sampled Span whose End emits the matching span_end;
// past the budget (or on a nil kind) it returns a no-op Span. Safe for
// concurrent use; allocation-free once the budget is exhausted.
func (k *SpanKind) Begin() Span {
	if k == nil {
		return Span{}
	}
	k.total.Add(1)
	if k.closed.Load() {
		return Span{}
	}
	id := k.nextID.Add(1)
	if id > k.t.limit {
		k.closed.Store(true)
		return Span{}
	}
	k.t.sink.Emit(EventSpanBegin, map[string]any{"span": k.name, "id": id})
	return Span{kind: k, id: id}
}

// Total returns how many spans of this kind were begun, sampled or not
// (0 on a nil kind).
func (k *SpanKind) Total() int64 {
	if k == nil {
		return 0
	}
	return k.total.Value()
}

// SampledCount returns how many spans of this kind were actually emitted.
func (k *SpanKind) SampledCount() uint64 {
	if k == nil {
		return 0
	}
	n := k.nextID.Load()
	if n > k.t.limit {
		n = k.t.limit
	}
	return n
}

// Span is one in-flight span. The zero value (unsampled or disabled) is a
// no-op; spans are plain values and never allocate.
type Span struct {
	kind *SpanKind
	id   uint64
}

// Sampled reports whether this span will be emitted. Hot paths use it to
// skip building End's fields map when the span is a no-op.
func (s Span) Sampled() bool { return s.kind != nil }

// End closes the span, emitting a span_end event carrying fields (may be
// nil) plus the span's kind and id. No-op on an unsampled span — callers
// should guard expensive field construction with Sampled.
func (s Span) End(fields map[string]any) {
	if s.kind == nil {
		return
	}
	if fields == nil {
		fields = make(map[string]any, 2)
	}
	fields["span"] = s.kind.name
	fields["id"] = s.id
	s.kind.t.sink.Emit(EventSpanEnd, fields)
}
