// Package a exercises the hotpath allocation rules, including the case
// AllocsPerRun cannot pin down statically: a hotpath calling a
// non-hotpath helper (local or imported) whose allocation only fires on
// input shapes the benchmarks never exercise.
package a

import (
	"fmt"

	"repro/internal/helpers"
)

//mldcs:hotpath
func hotConstructs(xs []int, prefix, suffix string, dst []int) ([]int, string) {
	seen := map[int]bool{} // want `map literal`
	_ = seen
	buf := make([]int, 0, len(xs)) // want `make`
	_ = buf
	var fresh []int
	fresh = append(fresh, len(xs)) // want `append to non-scratch slice`
	_ = fresh
	dst = append(dst, len(xs)) // parameter: caller-owned buffer, amortized growth
	name := prefix + suffix    // want `string concatenation`
	return dst, name
}

//mldcs:hotpath
func hotClosure(xs []int) int {
	total := 0
	walk(func(x int) { // want `closure capturing total`
		total += x
	}, xs)
	return total
}

func walk(f func(int), xs []int) {
	for _, x := range xs {
		f(x)
	}
}

func sink(v interface{}) {}

//mldcs:hotpath
func hotBoxing(x int) {
	sink(x) // want `interface boxing of int`
}

//mldcs:hotpath
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `call into fmt`
}

// pad allocates only when called; the hotpath below launders the
// allocation through it.
func pad(n int) []int {
	return make([]int, n)
}

//mldcs:hotpath
func hotLocalHelper(n int) int {
	p := pad(n) // want `which allocates \(make\)`
	return len(p)
}

//mldcs:hotpath
func hotImportedHelper(xs []int) int {
	ys := helpers.Canon(xs) // want `which allocates \(make\)`
	return helpers.Sum(ys)
}

// hotAllowed: a deliberate cold-path allocation, suppressed with a
// reviewed reason.
//
//mldcs:hotpath
func hotAllowed(n int) []int {
	//mldcslint:allow hotpathalloc cold rebuild path, runs once per epoch
	return make([]int, n)
}

// coldConstructs: the same constructs outside a hotpath are fine.
func coldConstructs(xs []int) map[int]bool {
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	return seen
}
