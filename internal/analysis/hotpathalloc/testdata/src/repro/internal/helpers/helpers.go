// Package helpers stubs a utility package: Canon allocates (and is
// summarized with an AllocFact), Sum does not. Hot paths in importing
// packages may call Sum but not Canon.
package helpers

// Canon returns a sorted-for-some-definition copy of xs.
func Canon(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	return out
}

// Sum is allocation-free.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
