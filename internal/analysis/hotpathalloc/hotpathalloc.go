// Package hotpathalloc keeps the zero-alloc hot paths honest. Functions
// annotated `//mldcs:hotpath` (skyline ComputeInto, the kinetic *Into
// family, engine per-node recompute) are pinned at zero allocations per
// call by testing.AllocsPerRun — but only on the input shapes the tests
// exercise. This analyzer rejects allocation-inducing constructs in the
// source of every hotpath function, whatever the inputs:
//
//   - map and slice composite literals, make, new, &T{...}
//   - append to slices that are not scratch/arena-backed (a skyline-owned
//     type, a Scratch field, or an explicit x[:0] reuse of a caller
//     buffer may grow amortized-zero; anything else escapes the arena
//     discipline)
//   - interface boxing at call sites (a concrete value passed to an
//     interface parameter allocates unless the compiler can prove
//     otherwise — on a hot path, don't make it try)
//   - closures that capture variables (captured-by-reference variables
//     are heap-moved)
//   - non-constant string concatenation
//   - any call into fmt
//   - calls to non-hotpath functions in this module whose bodies contain
//     any of the above (an AllocFact exported cross-package), so a
//     hotpath cannot launder an allocation through a helper
//
// Findings are suppressed with `//mldcslint:allow hotpathalloc <reason>`
// where an allocation is deliberate (cold error paths, once-per-call
// span finalization). See docs/PERFORMANCE.md for the hot-path map.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
)

const Name = "hotpathalloc"

// Directive is the comment marking a function as an allocation-free hot
// path.
const Directive = "mldcs:hotpath"

// SkylinePath is the package whose types are arena/scratch-backed.
const SkylinePath = "repro/internal/skyline"

// HotFact marks a function annotated //mldcs:hotpath.
type HotFact struct{}

func (*HotFact) AFact() {}

func (*HotFact) String() string { return "hotpath" }

// AllocFact marks a non-hotpath function whose body contains an
// allocation-inducing construct; calling it from a hotpath is a finding.
type AllocFact struct{ Why string }

func (*AllocFact) AFact() {}

func (f *AllocFact) String() string { return "allocates (" + f.Why + ")" }

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "forbid allocation-inducing constructs (literals, make/new, boxing,\n" +
		"capturing closures, string concat, fmt, allocating helpers) in functions\n" +
		"annotated //mldcs:hotpath",
	Run:       run,
	FactTypes: []analysis.Fact{(*HotFact)(nil), (*AllocFact)(nil)},
}

type allocSite struct {
	node ast.Node
	why  string
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{pass: pass, hot: map[*types.Func]bool{}}

	// Pass 1: find //mldcs:hotpath declarations and export HotFact.
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if !hasDirective(fd.Doc) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.hot[fn] = true
				pass.ExportObjectFact(fn, &HotFact{})
			}
		}
	}

	// Pass 2: summarize every non-hotpath function's allocation behavior
	// so hotpath callers (here or in importing packages) see through it.
	for _, fd := range decls {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil || c.hot[fn] {
			continue
		}
		if sites := c.allocSites(fd); len(sites) > 0 {
			pass.ExportObjectFact(fn, &AllocFact{Why: sites[0].why})
		}
	}

	// Pass 3: flag allocation sites and allocating callees inside hotpath
	// bodies.
	for _, fd := range decls {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil || !c.hot[fn] {
			continue
		}
		for _, site := range c.allocSites(fd) {
			pass.ReportRangef(site.node, "%s in //mldcs:hotpath function %s; hot paths must not allocate — reuse scratch buffers or hoist the allocation to setup (docs/PERFORMANCE.md)",
				site.why, fd.Name.Name)
		}
		c.checkCallees(fd)
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	hot  map[*types.Func]bool
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, cmt := range cg.List {
		text := strings.TrimLeft(strings.TrimPrefix(cmt.Text, "//"), " \t")
		if text == Directive || strings.HasPrefix(text, Directive+" ") {
			return true
		}
	}
	return false
}

// allocSites walks fd's body and collects allocation-inducing constructs.
func (c *checker) allocSites(fd *ast.FuncDecl) []allocSite {
	info := c.pass.TypesInfo
	backed := c.backedLocals(fd)
	var sites []allocSite
	add := func(n ast.Node, why string) { sites = append(sites, allocSite{n, why}) }
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			t := info.TypeOf(e)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				add(e, "map literal")
			case *types.Slice:
				add(e, "slice literal")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					add(e, "heap-escaping &composite literal")
				}
			}
		case *ast.CallExpr:
			switch callee := ast.Unparen(e.Fun).(type) {
			case *ast.Ident:
				switch info.Uses[callee] {
				case types.Universe.Lookup("make"):
					add(e, "make")
					return true
				case types.Universe.Lookup("new"):
					add(e, "new")
					return true
				case types.Universe.Lookup("append"):
					if len(e.Args) > 0 && !c.scratchBacked(e.Args[0], backed) {
						add(e, "append to non-scratch slice")
					}
					return true
				}
			}
			if fn := callee(info, e); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				add(e, "call into fmt")
				return true
			}
			c.boxingSites(e, add)
		case *ast.FuncLit:
			if caps := c.captures(e); len(caps) > 0 {
				add(e, "closure capturing "+strings.Join(caps, ", "))
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[e]; ok && tv.Value == nil && isString(tv.Type) {
					add(e, "string concatenation")
				}
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 {
				if tv, ok := info.Types[e.Lhs[0]]; ok && isString(tv.Type) {
					add(e, "string concatenation")
				}
			}
		}
		return true
	})
	return sites
}

// scratchBacked reports whether an append destination grows without
// per-call heap traffic under the repository's reuse conventions:
//
//   - a field selector (x.f): the buffer lives in a struct that outlives
//     the call (a scratch, a kinState, a cache entry), so growth is
//     amortized across calls, which is exactly what AllocsPerRun's
//     "zero once warm" contract means;
//   - a slice parameter of the function under analysis: the caller
//     passed the buffer (the *Into convention) and owns its growth;
//   - an explicit x[:0]-style reuse;
//   - a skyline-owned named type (or a slice of skyline-owned records);
//   - a local any of those flowed into (backed, from backedLocals).
//
// What remains flagged is the real bug class: appending to a slice born
// inside the call (var s []T; s := make(...); s := T{...}), which
// allocates on every invocation regardless of warmup.
func (c *checker) scratchBacked(e ast.Expr, backed map[types.Object]bool) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SliceExpr:
		return true // append(dst[:0], ...) — reuse idiom, caller owns growth
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil && backed[obj] {
			return true
		}
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true // field of a longer-lived struct
		}
		if t := c.pass.TypesInfo.TypeOf(e.X); t != nil && isScratch(t) {
			return true
		}
	case *ast.CallExpr:
		// append(backed, ...) returns the same (possibly regrown) buffer.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) > 0 {
			if c.pass.TypesInfo.Uses[id] == types.Universe.Lookup("append") {
				return c.scratchBacked(e.Args[0], backed)
			}
		}
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if skylineOwned(t) {
		return true
	}
	if sl, ok := t.Underlying().(*types.Slice); ok && skylineOwned(sl.Elem()) {
		return true
	}
	return false
}

// backedLocals seeds the function's slice parameters (caller-owned
// buffers per the *Into convention) and runs a small fixpoint over fd's
// assignments so locals initialized from scratch-backed expressions
// (bps := sc.bps[:0]) stay recognized at their append sites.
func (c *checker) backedLocals(fd *ast.FuncDecl) map[types.Object]bool {
	info := c.pass.TypesInfo
	backed := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Slice); ok {
						backed[obj] = true
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !c.scratchBacked(as.Rhs[i], backed) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !backed[obj] {
					backed[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return backed
}

// skylineOwned reports whether t is a named type declared in the skyline
// package.
func skylineOwned(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == SkylinePath
}

func isScratch(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == SkylinePath && obj.Name() == "Scratch"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxingSites flags concrete values passed to interface parameters.
func (c *checker) boxingSites(call *ast.CallExpr, add func(ast.Node, string)) {
	info := c.pass.TypesInfo
	fn := callee(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // spread: arg is already the slice
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		if types.IsInterface(tv.Type) {
			continue // interface-to-interface, no box
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without copying the pointee; still an
			// iface header but allocation-free for pointer-shaped values
		}
		add(arg, "interface boxing of "+tv.Type.String()+" argument")
	}
}

// captures lists free variables a FuncLit closes over (excluding
// package-level objects, which cost nothing to reference).
func (c *checker) captures(lit *ast.FuncLit) []string {
	info := c.pass.TypesInfo
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// Free means declared outside the literal but not at package scope.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		seen[obj] = true
		names = append(names, obj.Name())
		return true
	})
	return names
}

// checkCallees flags calls from a hotpath function to non-hotpath
// functions known (locally or by imported fact) to allocate.
func (c *checker) checkCallees(fd *ast.FuncDecl) {
	info := c.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if c.hot[fn] {
			return true // hotpath callee is checked at its own declaration
		}
		var hot HotFact
		if c.pass.ImportObjectFact(fn, &hot) {
			return true
		}
		var alloc AllocFact
		if c.pass.ImportObjectFact(fn, &alloc) {
			c.pass.ReportRangef(call, "call from //mldcs:hotpath function %s to %s, which allocates (%s); annotate the helper //mldcs:hotpath and fix it, or hoist the call (docs/PERFORMANCE.md)",
				fd.Name.Name, fn.Name(), alloc.Why)
		}
		return true
	})
}

// callee resolves the *types.Func a call statically invokes, or nil.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
