package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpathalloc"
)

// The helpers stub is listed first so its AllocFact summaries are in the
// shared fact store before package a (the importer) is analyzed.
func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotpathalloc.Analyzer,
		"repro/internal/helpers", "a")
}
