// Package analysis assembles the mldcslint analyzer suite: the
// project-specific go/analysis analyzers that machine-check the
// repository's geometry, numerics, and observability invariants
// (docs/STATIC_ANALYSIS.md).
//
// The suite is run by cmd/mldcslint (via `make lint` and CI). Individual
// analyzers live in subpackages so each can be tested in isolation with
// analysistest-style fixtures.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/anglenorm"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/epspolicy"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/invariantcheck"
	"repro/internal/analysis/obssink"
	"repro/internal/analysis/scratchescape"
	"repro/internal/analysis/snapshotmut"
)

// All returns the full mldcslint suite, validated against the go/analysis
// well-formedness rules (acyclic requirements, distinct names).
func All() []*analysis.Analyzer {
	as := []*analysis.Analyzer{
		anglenorm.Analyzer,
		atomicfield.Analyzer,
		epspolicy.Analyzer,
		floatcmp.Analyzer,
		hotpathalloc.Analyzer,
		invariantcheck.Analyzer,
		obssink.Analyzer,
		scratchescape.Analyzer,
		snapshotmut.Analyzer,
	}
	if err := analysis.Validate(as); err != nil {
		panic(err) // a malformed suite is a programming error, not an input error
	}
	return as
}
