// Package a holds the anglenorm fixtures: hand-rolled wraparound the
// analyzer must flag, and the angular arithmetic it must leave alone.
package a

import (
	"math"

	"repro/internal/geom"
)

func badMod(theta float64) float64 {
	return math.Mod(theta, 2*math.Pi) // want `math\.Mod\(·, 2π\) keeps the dividend's sign`
}

func badModNamed(theta float64) float64 {
	return math.Mod(theta, geom.TwoPi) // want `math\.Mod\(·, 2π\)`
}

func badCompare(a, b float64) bool {
	return a+2*math.Pi < b // want `raw ±2π wraparound inside a comparison`
}

func badCompareNamed(a, b float64) bool {
	return a-geom.TwoPi > b // want `raw ±2π wraparound inside a comparison`
}

func badFold(theta float64) float64 {
	if theta < 0 {
		theta += geom.TwoPi // want `hand-rolled angle wraparound \(θ \+= 2π\)`
	}
	return theta
}

func allowedFold(theta float64) float64 {
	theta -= 2 * math.Pi //mldcslint:allow anglenorm fixture demonstrating the escape hatch
	return theta
}

func okNormalize(theta float64) float64 { return geom.NormalizeAngle(theta) }

// okSample scales a uniform sample to the circle: multiplication is not
// wraparound.
func okSample(u float64) float64 { return u * geom.TwoPi }

// okMod has a non-angular divisor.
func okMod(a, b float64) float64 { return math.Mod(a, b) }

// okHalf compares against π, not 2π, with no ± folding.
func okHalf(theta float64) bool { return theta < math.Pi }

// okRange compares against 2π without folding — a plain range check.
func okRange(theta float64) bool { return theta < geom.TwoPi }
