// Package skyline stubs the other blessed package: the merge machinery
// manipulates raw breakpoints by construction, so its wraparound
// arithmetic is exempt.
package skyline

import "math"

func fold(theta float64) float64 {
	if theta < 0 {
		theta += 2 * math.Pi
	}
	return math.Mod(theta, 2*math.Pi)
}
