// Package geom stubs the angle helpers. It is a blessed package: its own
// wraparound arithmetic (the body of NormalizeAngle) is the
// implementation the analyzer points everyone else at.
package geom

import "math"

const TwoPi = 2 * math.Pi

func NormalizeAngle(theta float64) float64 {
	theta = math.Mod(theta, TwoPi)
	if theta < 0 {
		theta += TwoPi
	}
	return theta
}
