package anglenorm_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/anglenorm"
)

// TestAngleNorm runs the failing fixture (package a) and both blessed
// packages (the geom and skyline stubs, which contain the very arithmetic
// the analyzer forbids elsewhere and must produce no diagnostics).
func TestAngleNorm(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), anglenorm.Analyzer,
		"a", "repro/internal/geom", "repro/internal/skyline")
}
