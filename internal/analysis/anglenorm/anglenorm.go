// Package anglenorm flags hand-rolled angle wraparound arithmetic outside
// the blessed normalization helpers (internal/geom/angle.go and the
// skyline algorithms in internal/skyline).
//
// Skyline breakpoints live on the circle; the repository's invariant is
// that every angle entering a comparison has been mapped to [0, 2π) by
// geom.NormalizeAngle (or is compared through geom.AngleEq / AngleInSpan /
// CCWDelta, which normalize internally). Ad-hoc `θ ± 2π` corrections and
// `math.Mod(θ, 2π)` reimplement that mapping with different edge behavior
// — math.Mod keeps the sign of the dividend, so a tiny negative angle
// stays negative and misses every [0, 2π) span check.
//
// Flagged, outside the blessed packages and _test.go files:
//
//   - math.Mod(x, d) where d is a compile-time constant equal to 2π
//     (math.Mod on a non-angular divisor is fine);
//   - a comparison whose operand tree adds or subtracts a 2π constant
//     (`if a+2*math.Pi < b`);
//   - compound wraparound assignments (`theta += geom.TwoPi`).
package anglenorm

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
	"repro/internal/analysis/epspolicy"
)

// SkylinePath is the skyline package, blessed alongside geom: its merge
// and envelope code manipulates raw breakpoints by construction.
const SkylinePath = "repro/internal/skyline"

const Name = "anglenorm"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "flag raw angle wraparound (±2π in comparisons, math.Mod(·, 2π)) outside\n" +
		"internal/geom and internal/skyline; use geom.NormalizeAngle / AngleEq / CCWDelta",
	Run: run,
}

// isTwoPi reports whether e is a compile-time constant within 1e-9 of 2π
// (covers geom.TwoPi, 2*math.Pi, and spelled-out literals alike).
func isTwoPi(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return false
	}
	f, _ := constant.Float64Val(tv.Value)
	//mldcslint:allow anglenorm the detector itself compares against the 2π constant it searches for
	return math.Abs(f-2*math.Pi) < 1e-9
}

// hasWraparound reports whether expr's tree contains an addition or
// subtraction of a 2π constant.
func hasWraparound(info *types.Info, expr ast.Expr) (at ast.Expr, found bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.ADD && b.Op != token.SUB) {
			return true
		}
		if isTwoPi(info, b.X) || isTwoPi(info, b.Y) {
			at, found = b, true
			return false
		}
		return true
	})
	return at, found
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	switch pass.Pkg.Path() {
	case epspolicy.GeomPath, SkylinePath:
		return nil, nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
				if !ok || len(e.Args) != 2 {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math" || fn.Name() != "Mod" {
					return true
				}
				if !isTwoPi(info, e.Args[1]) {
					return true
				}
				if allowdirective.Allowed(pass.Fset, file, e.Pos(), Name) {
					return true
				}
				pass.ReportRangef(e, "math.Mod(·, 2π) keeps the dividend's sign and leaves negative angles unnormalized; use geom.NormalizeAngle")
			case *ast.BinaryExpr:
				if !isComparison(e.Op) {
					return true
				}
				at, found := hasWraparound(info, e)
				if !found {
					return true
				}
				if allowdirective.Allowed(pass.Fset, file, e.Pos(), Name) {
					return false
				}
				pass.ReportRangef(at, "raw ±2π wraparound inside a comparison; normalize with geom.NormalizeAngle or compare with geom.AngleEq / AngleInSpan / CCWDelta")
				return false
			case *ast.AssignStmt:
				if e.Tok != token.ADD_ASSIGN && e.Tok != token.SUB_ASSIGN {
					return true
				}
				if len(e.Rhs) != 1 || !isTwoPi(info, e.Rhs[0]) {
					return true
				}
				if allowdirective.Allowed(pass.Fset, file, e.Pos(), Name) {
					return true
				}
				pass.ReportRangef(e, "hand-rolled angle wraparound (θ %s 2π); use geom.NormalizeAngle", e.Tok)
			}
			return true
		})
	}
	return nil, nil
}
