package snapshotmut_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapshotmut"
)

// The snap stub is listed first so its ImmutableFact is in the shared
// fact store before package a (the importer) is analyzed.
func TestSnapshotMut(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), snapshotmut.Analyzer,
		"repro/internal/snap", "a")
}
