// Package snapshotmut enforces the epoch-snapshot immutability contract
// (docs/DESIGN.md, docs/SERVICE.md): once a value is published through an
// atomic.Pointer, readers loading it must never write through it, and the
// publisher must never write to it after the Store.
//
// Three write classes are flagged:
//
//  1. Writes through a pointer obtained from atomic.Pointer[T].Load —
//     directly or via locals the loaded pointer flowed through. The
//     atomic.Pointer type is identified through the type checker, so
//     type aliases (`type snapPtr = atomic.Pointer[Snapshot]`) and
//     embedding resolve too.
//  2. Writes to a value lexically after it was passed to
//     atomic.Pointer[T].Store in the same function: the Store is the
//     publication point, and a later write races every reader. (Writes
//     before the Store are construction and legal.)
//  3. Any post-construction field write to a type annotated
//     `//mldcs:immutable` (e.g. mldcsd.Snapshot, engine.Result),
//     wherever the value came from. The annotation is exported as a
//     cross-package fact on the type, so packages that only see the
//     imported type are held to the same contract. Composite literals
//     are construction and exempt.
//
// The race detector only catches class 1 and 2 on interleavings where a
// reader observes the write; this analyzer rejects the write sites
// themselves, before any scheduler gets a vote.
package snapshotmut

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
)

const Name = "snapshotmut"

// Directive is the comment marking a type immutable after construction.
const Directive = "mldcs:immutable"

// ImmutableFact marks a named type annotated //mldcs:immutable.
type ImmutableFact struct{ Decl string }

func (*ImmutableFact) AFact() {}

func (f *ImmutableFact) String() string { return "immutable type" }

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "forbid mutation of published snapshots: writes through atomic.Pointer.Load\n" +
		"results, writes after atomic.Pointer.Store, and field writes to types\n" +
		"annotated //mldcs:immutable",
	Run:       run,
	FactTypes: []analysis.Fact{(*ImmutableFact)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{pass: pass, immutable: map[*types.TypeName]bool{}}
	c.collectImmutable()
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	immutable map[*types.TypeName]bool
}

// collectImmutable finds //mldcs:immutable type declarations in this
// package and exports the fact for importers.
func (c *checker) collectImmutable() {
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDirective(ts.Doc) && !hasDirective(ts.Comment) &&
					!(len(gd.Specs) == 1 && hasDirective(gd.Doc)) {
					continue
				}
				tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				c.immutable[tn] = true
				c.pass.ExportObjectFact(tn, &ImmutableFact{Decl: tn.Name()})
			}
		}
	}
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, cmt := range cg.List {
		text := strings.TrimLeft(strings.TrimPrefix(cmt.Text, "//"), " \t")
		if text == Directive || strings.HasPrefix(text, Directive+" ") {
			return true
		}
	}
	return false
}

// isImmutableType reports whether t (after pointer peeling) is a type
// annotated //mldcs:immutable, in this package or an imported one.
func (c *checker) isImmutableType(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	if tn == nil {
		return "", false
	}
	if c.immutable[tn] {
		return tn.Name(), true
	}
	var fact ImmutableFact
	if c.pass.ImportObjectFact(tn, &fact) {
		return tn.Name(), true
	}
	return "", false
}

// atomicPointerMethod reports whether call invokes method name on
// sync/atomic's Pointer[T] (resolved through the type checker, so type
// aliases and embedded fields count).
func (c *checker) atomicPointerMethod(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// checkFunc runs the flow-insensitive load-taint pass and the
// lexical after-Store pass over one function body.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	info := c.pass.TypesInfo

	// Pass 1: objects holding atomic.Pointer.Load results, to a fixpoint
	// over local assignment chains.
	loaded := map[types.Object]bool{}
	isLoaded := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return loaded[info.Uses[e]]
		case *ast.CallExpr:
			return c.atomicPointerMethod(e, "Load")
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isLoaded(as.Rhs[i]) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !loaded[obj] {
					loaded[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Pass 2: objects passed to atomic.Pointer.Store, with the lexical
	// position of the publication.
	stored := map[types.Object]ast.Node{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !c.atomicPointerMethod(call, "Store") || len(call.Args) != 1 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if u, ok := arg.(*ast.UnaryExpr); ok {
			// Store(&x) publishes x itself.
			arg = ast.Unparen(u.X)
		}
		if id, ok := arg.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if _, seen := stored[obj]; !seen {
					stored[obj] = call
				}
			}
		}
		return true
	})

	// Pass 3: flag writes.
	report := func(n ast.Node, what, why string) {
		c.pass.ReportRangef(n, "%s %s; published snapshots are immutable — rebuild and re-Store a fresh value instead (docs/DESIGN.md)", what, why)
	}
	writeBase := func(lhs ast.Expr) ast.Expr {
		// Peel the written location down to the loaded/stored base:
		// p.F = v, *p = v, p.F[i] = v, p.F.G = v.
		for {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr:
				lhs = l.X
			case *ast.IndexExpr:
				lhs = l.X
			case *ast.StarExpr:
				lhs = l.X
			default:
				return lhs
			}
		}
	}
	checkWrite := func(n ast.Node, lhs ast.Expr) {
		// Class 3: field writes to immutable-annotated types anywhere on
		// the selector path.
		for walk := ast.Unparen(lhs); ; {
			var inner ast.Expr
			switch l := walk.(type) {
			case *ast.SelectorExpr:
				if tv, ok := info.Types[l.X]; ok {
					if name, imm := c.isImmutableType(tv.Type); imm {
						report(n, "write to field "+l.Sel.Name+" of "+name,
							"which is annotated //"+Directive)
						return
					}
				}
				inner = l.X
			case *ast.IndexExpr:
				inner = l.X
			case *ast.StarExpr:
				inner = l.X
			case *ast.ParenExpr:
				inner = l.X
			default:
				inner = nil
			}
			if inner == nil {
				break
			}
			walk = ast.Unparen(inner)
		}
		// Classes 1 and 2: writes through loaded or already-stored
		// pointers.
		base := writeBase(lhs)
		if base == lhs {
			return // a plain identifier write replaces a local, not the pointee
		}
		id, ok := ast.Unparen(base).(*ast.Ident)
		if !ok {
			if call, ok := ast.Unparen(base).(*ast.CallExpr); ok && c.atomicPointerMethod(call, "Load") {
				report(n, "write through atomic.Pointer.Load result", "(loaded snapshots are shared with every other reader)")
			}
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			return
		}
		if loaded[obj] {
			report(n, "write through "+id.Name+", a pointer obtained from atomic.Pointer.Load",
				"(loaded snapshots are shared with every other reader)")
			return
		}
		if pub, ok := stored[obj]; ok && n.Pos() > pub.Pos() {
			report(n, "write to "+id.Name+" after it was published with atomic.Pointer.Store",
				"(readers may already hold it)")
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(st, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(st, st.X)
		}
		return true
	})
}
