// Package a exercises the snapshot-mutation rules: writes through
// atomic.Pointer.Load results (reached through a type alias, so the
// analyzer must identify the type through the checker, not the source
// text), writes after Store, and field writes to a cross-package
// //mldcs:immutable type.
package a

import (
	"sync/atomic"

	"repro/internal/snap"
)

type state struct {
	n    int
	data []int
}

// statePtr hides atomic.Pointer behind an alias; the analyzer must see
// through it.
type statePtr = atomic.Pointer[state]

var cur statePtr

func bumpLoaded() {
	s := cur.Load()
	s.n++ // want `atomic\.Pointer\.Load`
}

func writeThroughAliasChain() {
	p := cur.Load()
	q := p
	q.data[0] = 1 // want `atomic\.Pointer\.Load`
}

func storeThenWrite(next *state) {
	next.n = 1 // construction before publication: legal
	cur.Store(next)
	next.n = 2 // want `after it was published`
}

func freshOK(n int) {
	cur.Store(&state{n: n, data: []int{n}})
}

// readOK: reading a loaded snapshot is the whole point.
func readOK() int {
	s := cur.Load()
	return s.n + len(s.data)
}

func mutateImmutable(s *snap.Snapshot) {
	s.Epoch = 7 // want `annotated //mldcs:immutable`
}

func mutateImmutableSlice(s *snap.Snapshot) {
	s.Seqs[0] = 7 // want `annotated //mldcs:immutable`
}

// buildOK: composite literals are construction, not mutation.
func buildOK(epoch int) *snap.Snapshot {
	return &snap.Snapshot{Epoch: epoch, Seqs: []int{epoch}}
}
