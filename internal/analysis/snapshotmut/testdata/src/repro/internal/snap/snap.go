// Package snap stubs an epoch-snapshot package: the annotated type is
// only ever visible to importers through the exported ImmutableFact.
package snap

// Snapshot is one published epoch of routing state.
//
//mldcs:immutable
type Snapshot struct {
	Epoch int
	Seqs  []int
}
