// Package a holds the invariantcheck fixtures: skyline errors that are
// dropped (flagged) and handled (not flagged).
package a

import "repro/internal/skyline"

func drops(disks []float64) skyline.Skyline {
	s, _ := skyline.Compute(disks)  // want `error from skyline\.Compute discarded`
	s.CheckInvariants(len(disks))   // want `error from skyline\.CheckInvariants discarded`
	_ = s.Validate(len(disks))      // want `error from skyline\.Validate discarded`
	return s
}

func dropsParallel(disks []float64) skyline.Skyline {
	s, _ := skyline.ComputeParallel(disks, 4) // want `error from skyline\.ComputeParallel discarded`
	return s
}

func handled(disks []float64) (skyline.Skyline, error) {
	s, err := skyline.Compute(disks)
	if err != nil {
		return nil, err
	}
	if err := s.CheckInvariants(len(disks)); err != nil {
		return nil, err
	}
	return s, nil
}

// okCount calls an error-free accessor as a bare statement operand.
func okCount(s skyline.Skyline) int { return s.ArcCount() }

func allowed(disks []float64) skyline.Skyline {
	s, _ := skyline.Compute(disks) //mldcslint:allow invariantcheck fixture inputs are pre-validated
	return s
}
