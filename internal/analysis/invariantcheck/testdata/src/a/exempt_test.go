package a

import "repro/internal/skyline"

// Test files are exempt: test helpers drop errors on inputs constructed
// to be valid, and the assertion lives elsewhere.
func testHelper(disks []float64) skyline.Skyline {
	s, _ := skyline.Compute(disks)
	return s
}
