// Package skyline stubs the skyline API surface: entry points that
// return (Skyline, error), the invariant checkers, and one error-free
// accessor, mirroring the real repro/internal/skyline signatures.
package skyline

import "errors"

type Skyline []int

func Compute(disks []float64) (Skyline, error) {
	if len(disks) == 0 {
		return nil, errors.New("empty")
	}
	return Skyline{0}, nil
}

func ComputeParallel(disks []float64, workers int) (Skyline, error) {
	return Compute(disks)
}

func (s Skyline) CheckInvariants(n int) error { return nil }

func (s Skyline) Validate(n int) error { return nil }

func (s Skyline) ArcCount() int { return len(s) }
