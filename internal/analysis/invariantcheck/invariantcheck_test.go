package invariantcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/invariantcheck"
)

// TestInvariantCheck runs the fixture package a: dropped skyline errors
// (flagged, including the tuple-blank and bare-statement forms), handled
// errors, an allow directive, and an exempt _test.go helper.
func TestInvariantCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), invariantcheck.Analyzer, "a")
}
