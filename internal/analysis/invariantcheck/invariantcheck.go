// Package invariantcheck protects the skyline degeneracy fallback path.
//
// Every exported skyline entry point (Compute, ComputeParallel,
// ComputeIncremental, InsertDisk, ...) returns an error precisely because
// degenerate inputs — coincident hubs, zero radii, near-tangent disks —
// can defeat the divide-and-conquer merge; the whole-network engine
// re-validates every envelope (Skyline.CheckInvariants) and falls back to
// the full local cover when validation fails (docs/NUMERICS.md). A call
// site that discards one of these errors silently converts "degenerate
// but detected" into "wrong forwarding set".
//
// Flagged, outside _test.go files, for any function or method of
// repro/internal/skyline whose final result is an error:
//
//   - the error assigned to blank (`s, _ := skyline.Compute(disks)`);
//   - the call used as a bare statement (`sl.CheckInvariants(n)`).
//
// An intentional drop (e.g. inputs already validated upstream) must say
// so: //mldcslint:allow invariantcheck <why>.
package invariantcheck

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
	"repro/internal/analysis/anglenorm"
)

const Name = "invariantcheck"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "flag discarded errors from repro/internal/skyline entry points\n" +
		"(Compute*, InsertDisk, CheckInvariants, Validate); the engine's degeneracy\n" +
		"fallback depends on them being checked",
	Run: run,
}

var errorType = types.Universe.Lookup("error").Type()

// skylineErrCall reports whether call invokes a function or method of the
// skyline package whose last result is an error, returning its name and
// result count.
func skylineErrCall(info *types.Info, call *ast.CallExpr) (name string, nres int, ok bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", 0, false
	}
	fn, isFn := info.Uses[id].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != anglenorm.SkylinePath {
		return "", 0, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Results().Len() == 0 {
		return "", 0, false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, errorType) {
		return "", 0, false
	}
	return fn.Name(), sig.Results().Len(), true
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := pass.TypesInfo
	report := func(file *ast.File, rng analysis.Range, name string) {
		if allowdirective.Allowed(pass.Fset, file, rng.Pos(), Name) {
			return
		}
		pass.ReportRangef(rng, "error from skyline.%s discarded; it guards the degeneracy fallback (docs/NUMERICS.md) — handle it or annotate //mldcslint:allow invariantcheck <why>", name)
	}
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if name, _, ok := skylineErrCall(info, call); ok {
						report(file, st, name)
					}
				}
			case *ast.AssignStmt:
				// Tuple form: s, _ := skyline.Compute(...)
				if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
					call, ok := st.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					name, nres, ok := skylineErrCall(info, call)
					if ok && nres == len(st.Lhs) && isBlank(st.Lhs[len(st.Lhs)-1]) {
						report(file, st, name)
					}
					return true
				}
				// One-to-one form: _ = sl.CheckInvariants(n)
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						if !isBlank(lhs) {
							continue
						}
						call, ok := st.Rhs[i].(*ast.CallExpr)
						if !ok {
							continue
						}
						if name, nres, ok := skylineErrCall(info, call); ok && nres == 1 {
							report(file, st, name)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
