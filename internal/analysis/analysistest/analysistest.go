// Package analysistest runs a go/analysis analyzer over fixture packages
// and checks its diagnostics against `// want` expectations, mirroring
// the golang.org/x/tools/go/analysis/analysistest contract on a plain
// standard-library loader (the repository vendors only the go/analysis
// core).
//
// Fixture layout, identical to the upstream harness:
//
//	<analyzer>/testdata/src/<importpath>/*.go
//
// A fixture file marks each expected diagnostic with a trailing comment
// on the line the diagnostic points at:
//
//	return d <= r+geom.Eps // want `comparison uses geom\.Eps`
//
// The comment may carry several quoted or backquoted regular expressions;
// each must be matched by a distinct diagnostic on that line. Diagnostics
// without a matching expectation, and expectations without a matching
// diagnostic, fail the test.
//
// Fixture imports resolve first against testdata/src/<importpath> (so a
// fixture can stub repro/internal/geom under its real import path), then
// against the standard library via compiler export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/checker"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return dir
}

// Run loads each fixture package (an import path under testdata/src),
// applies the analyzer, and checks the diagnostics against the fixtures'
// `// want` expectations.
//
// Patterns run in the order given and share one fact store, so a fixture
// stub listed before its importer contributes cross-package facts the
// same way a real dependency does under the mldcslint driver. List
// dependency fixtures first. Diagnostics suppressed by an
// //mldcslint:allow directive are dropped before matching, mirroring
// cmd/mldcslint; a `// want` on an allowed line therefore fails — the
// point of an allow fixture is asserting silence.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		src:  filepath.Join(testdata, "src"),
		fset: fset,
		pkgs: map[string]*fixturePkg{},
	}
	ld.std = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := checker.ExportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
	facts := checker.NewFactStore()
	for _, pattern := range patterns {
		fp, err := ld.load(pattern)
		if err != nil {
			t.Errorf("loading fixture %q: %v", pattern, err)
			continue
		}
		pkg := &checker.Package{
			Path:  pattern,
			Fset:  fset,
			Files: fp.files,
			Types: fp.types,
			Info:  fp.info,
		}
		diags, _, err := checker.RunSuite([]*analysis.Analyzer{a}, []*checker.Package{pkg}, facts)
		if err != nil {
			t.Errorf("running %s on fixture %q: %v", a.Name, pattern, err)
			continue
		}
		var reported []checker.Diagnostic
		for _, d := range diags {
			if !d.Allowed {
				reported = append(reported, d)
			}
		}
		checkExpectations(t, fset, pattern, fp.files, reported)
	}
}

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
	std  types.Importer
}

// Import resolves a fixture import: testdata/src first, standard library
// second. Satisfies types.Importer so the loader can hand itself to the
// type checker.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.src, path)); err == nil && fi.IsDir() {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := ld.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(ld.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := checker.NewInfo()
	var terrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, ld.fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("type errors: %v", terrs)
	}
	fp := &fixturePkg{files: files, types: tpkg, info: info}
	ld.pkgs[path] = fp
	return fp, nil
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, pattern string, files []*ast.File, diags []checker.Diagnostic) {
	t.Helper()
	var wants []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//") {
					continue
				}
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != "want" && !strings.HasPrefix(text, "want ") && !strings.HasPrefix(text, "want\t") && !strings.HasPrefix(text, "want`") && !strings.HasPrefix(text, `want"`) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				if rest == "" {
					t.Errorf("%s: want comment with no pattern", pos)
					continue
				}
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want pattern %q: %v", pos, rest, err)
						break
					}
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: malformed want pattern %q: %v", pos, q, err)
						break
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s: want pattern does not compile: %v", pos, err)
						break
					}
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for i := range wants {
			w := &wants[i]
			if !w.used && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s (fixture %q): unexpected diagnostic: [%s] %s", d.Position, pattern, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d (fixture %q): no diagnostic matching %q", w.file, w.line, pattern, w.re)
		}
	}
}
