// Package obssink forbids ad-hoc terminal output from library packages.
//
// The engine and broadcast event streams emitted through internal/obs are
// the single source of truth for what the system did; a stray
// fmt.Println deep in a library package bypasses that sink, corrupts
// machine-read JSONL output (cmd/mldcsim -events writes to stdout), and
// cannot be redirected by the caller. Library packages — everything under
// repro/internal/ except internal/viz, which renders human-facing SVG/PPM
// output by design — must either emit obs events/metrics or write to an
// io.Writer supplied by the caller.
//
// Flagged in library packages, outside _test.go files:
//
//   - fmt.Print / fmt.Printf / fmt.Println (implicit stdout);
//   - any package-level function of log (log.Printf, log.Fatal, ...),
//     which writes to the process-global stderr logger;
//   - any mention of os.Stdout or os.Stderr.
//
// Binaries (cmd/...), examples, and the root facade package are exempt:
// terminal output is their job.
package obssink

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
)

// VizPath is the one internal package allowed to produce direct output.
const VizPath = "repro/internal/viz"

const Name = "obssink"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "forbid fmt.Print*/log.*/os.Stdout writes in library packages (internal/*\n" +
		"except viz); instrument via internal/obs or take an io.Writer",
	Run: run,
}

func libraryPackage(path string) bool {
	if !strings.HasPrefix(path, "repro/internal/") {
		return false
	}
	return path != VizPath && !strings.HasPrefix(path, VizPath+"/")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !libraryPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			var msg string
			switch obj.Pkg().Path() {
			case "fmt":
				switch obj.Name() {
				case "Print", "Printf", "Println":
					msg = "fmt." + obj.Name() + " writes to stdout from a library package; emit an internal/obs event/metric or write to an injected io.Writer"
				}
			case "log":
				if _, isFn := obj.(*types.Func); isFn && obj.Parent() == obj.Pkg().Scope() {
					msg = "log." + obj.Name() + " writes to the process-global logger from a library package; emit through internal/obs instead"
				}
			case "os":
				if obj.Name() == "Stdout" || obj.Name() == "Stderr" {
					msg = "os." + obj.Name() + " referenced in a library package; accept an io.Writer from the caller or emit through internal/obs"
				}
			}
			if msg == "" {
				return true
			}
			if allowdirective.Allowed(pass.Fset, file, sel.Pos(), Name) {
				return true
			}
			pass.ReportRangef(sel, "%s — docs/OBSERVABILITY.md", msg)
			return true
		})
	}
	return nil, nil
}
