// Package obssink forbids ad-hoc terminal output from library packages
// and enforces the metric naming convention.
//
// The engine and broadcast event streams emitted through internal/obs are
// the single source of truth for what the system did; a stray
// fmt.Println deep in a library package bypasses that sink, corrupts
// machine-read JSONL output (cmd/mldcsim -events writes to stdout), and
// cannot be redirected by the caller. Library packages — everything under
// repro/internal/ except internal/viz (which renders human-facing SVG/PPM
// output by design) and internal/obs/expo (which writes the Prometheus
// text exposition to an http.ResponseWriter by design) — must either emit
// obs events/metrics or write to an io.Writer supplied by the caller.
//
// Flagged in library packages, outside _test.go files:
//
//   - fmt.Print / fmt.Printf / fmt.Println (implicit stdout);
//   - any package-level function of log (log.Printf, log.Fatal, ...),
//     which writes to the process-global stderr logger;
//   - any mention of os.Stdout or os.Stderr.
//
// Separately, in every repro/internal package (including viz and expo),
// the metric name passed to Registry.Counter / Gauge / Histogram / Timer
// must be a compile-time constant string in lower_snake_case
// (^[a-z][a-z0-9_]*$). Snapshot keys feed the JSONL event stream, expvar,
// and the /metrics Prometheus exposition verbatim, so a dynamic or
// mixed-case name silently produces an invalid or colliding series.
//
// Binaries (cmd/...), examples, and the root facade package are exempt:
// terminal output is their job, and they do not define metrics.
package obssink

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
)

// VizPath is the one internal package allowed to produce direct output.
const VizPath = "repro/internal/viz"

// ExpoPath is the metrics exposition package: it writes the Prometheus
// text format to an http.ResponseWriter, so the writer check does not
// apply (the metric-name check still does).
const ExpoPath = "repro/internal/obs/expo"

// ObsPath is the metrics package whose Registry constructors the naming
// check watches.
const ObsPath = "repro/internal/obs"

const Name = "obssink"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "forbid fmt.Print*/log.*/os.Stdout writes in library packages (internal/*\n" +
		"except viz and obs/expo); require lower_snake_case constant metric names\n" +
		"in Registry.Counter/Gauge/Histogram/Timer calls",
	Run: run,
}

// metricNameRE is the naming convention for registry metric names: they
// surface verbatim as JSON keys, expvar fields, and Prometheus series
// names, and lower_snake_case is the intersection all three accept.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registryMethods are the *obs.Registry constructors whose first argument
// is a metric name.
var registryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Timer":     true,
}

func internalPackage(path string) bool {
	return strings.HasPrefix(path, "repro/internal/")
}

// writerExempt reports whether the package may produce direct output.
func writerExempt(path string) bool {
	for _, p := range []string{VizPath, ExpoPath} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if !internalPackage(path) {
		return nil, nil
	}
	checkWriters := !writerExempt(path)
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkMetricName(pass, file, call)
			}
			if !checkWriters {
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			var msg string
			switch obj.Pkg().Path() {
			case "fmt":
				switch obj.Name() {
				case "Print", "Printf", "Println":
					msg = "fmt." + obj.Name() + " writes to stdout from a library package; emit an internal/obs event/metric or write to an injected io.Writer"
				}
			case "log":
				if _, isFn := obj.(*types.Func); isFn && obj.Parent() == obj.Pkg().Scope() {
					msg = "log." + obj.Name() + " writes to the process-global logger from a library package; emit through internal/obs instead"
				}
			case "os":
				if obj.Name() == "Stdout" || obj.Name() == "Stderr" {
					msg = "os." + obj.Name() + " referenced in a library package; accept an io.Writer from the caller or emit through internal/obs"
				}
			}
			if msg == "" {
				return true
			}
			if allowdirective.Allowed(pass.Fset, file, sel.Pos(), Name) {
				return true
			}
			pass.ReportRangef(sel, "%s — docs/OBSERVABILITY.md", msg)
			return true
		})
	}
	return nil, nil
}

// checkMetricName flags Registry.Counter/Gauge/Histogram/Timer calls
// whose metric name is not a lower_snake_case compile-time constant.
func checkMetricName(pass *analysis.Pass, file *ast.File, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !isRegistryMethod(fn) {
		return
	}
	arg := call.Args[0]
	tv, ok := pass.TypesInfo.Types[arg]
	report := func(format string, args ...interface{}) {
		if allowdirective.Allowed(pass.Fset, file, arg.Pos(), Name) {
			return
		}
		pass.ReportRangef(arg, format+" — docs/OBSERVABILITY.md", args...)
	}
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		report("metric name passed to Registry.%s must be a constant string (it becomes a JSON/expvar/Prometheus series name)", sel.Sel.Name)
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		report("metric name %q passed to Registry.%s is not lower_snake_case (want %s)", name, sel.Sel.Name, metricNameRE)
	}
}

// isRegistryMethod reports whether fn is a method on obs.Registry (or a
// pointer to it), matched by the receiver's defining package and type
// name so type aliases like mldcs.MetricsRegistry resolve too.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == ObsPath && obj.Name() == "Registry"
}
