// Package a sits outside repro/internal/: binaries, examples, and the
// facade may print — that is their job.
package a

import "fmt"

func Main() {
	fmt.Println("binaries may print")
}
