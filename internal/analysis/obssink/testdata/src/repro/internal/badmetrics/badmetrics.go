// Package badmetrics is the metric-naming fixture: names handed to
// Registry.Counter/Gauge/Histogram/Timer must be lower_snake_case
// compile-time constant strings.
package badmetrics

import "repro/internal/obs"

// MetricGood follows the convention: constants are how real packages
// name their metrics.
const MetricGood = "badmetrics_ops_total"

// MetricBad is a constant, but not lower_snake_case.
const MetricBad = "badmetrics-OpsTotal"

func Instrument(r *obs.Registry, dynamic string) {
	r.Counter(MetricGood)               // constant, snake_case: allowed
	r.Counter("badmetrics_hits_total")  // literal, snake_case: allowed
	r.Gauge("badmetrics_queue_depth")   // allowed
	r.Histogram("badmetrics_sizes")     // allowed
	r.Timer("badmetrics_solve_seconds") // allowed

	r.Counter(MetricBad)                  // want `metric name "badmetrics-OpsTotal" passed to Registry\.Counter is not lower_snake_case`
	r.Gauge("CamelCase")                  // want `metric name "CamelCase" passed to Registry\.Gauge is not lower_snake_case`
	r.Histogram("kebab-case")             // want `metric name "kebab-case" passed to Registry\.Histogram is not lower_snake_case`
	r.Timer("_leading_under")             // want `metric name "_leading_under" passed to Registry\.Timer is not lower_snake_case`
	r.Counter("")                         // want `metric name "" passed to Registry\.Counter is not lower_snake_case`
	r.Counter(dynamic)                    // want `metric name passed to Registry\.Counter must be a constant string`
	r.Timer("bad name " + MetricGood[:3]) // want `metric name passed to Registry\.Timer must be a constant string`

	r.Gauge("Allowed") //mldcslint:allow obssink fixture demonstrating the escape hatch
}

// NotARegistry has a Counter method with the same shape; calls to it are
// not metric registrations and must not be flagged.
type NotARegistry struct{}

func (NotARegistry) Counter(name string) int { return 0 }

func Unrelated(n NotARegistry) {
	n.Counter("Whatever Shape")
}
