// Package badlib is an obssink failing fixture: a library package that
// writes to the terminal instead of instrumenting through internal/obs.
package badlib

import (
	"fmt"
	"io"
	"log"
	"os"
)

func Noisy(n int) {
	fmt.Println("computed", n)          // want `fmt\.Println writes to stdout from a library package`
	fmt.Printf("n=%d\n", n)             // want `fmt\.Printf writes to stdout`
	log.Printf("n=%d", n)               // want `log\.Printf writes to the process-global logger`
	fmt.Fprintf(os.Stdout, "n=%d\n", n) // want `os\.Stdout referenced in a library package`
	os.Stderr.WriteString("x")          // want `os\.Stderr referenced in a library package`
}

func Fatal(err error) {
	log.Fatal(err) // want `log\.Fatal writes to the process-global logger`
}

// Quiet writes to a caller-injected writer: allowed.
func Quiet(w io.Writer, n int) {
	fmt.Fprintf(w, "n=%d\n", n)
}

// Allowed demonstrates the escape hatch.
func Allowed() {
	fmt.Println("progress") //mldcslint:allow obssink fixture demonstrating the escape hatch
}

// Format uses fmt without writing anywhere: allowed.
func Format(n int) string { return fmt.Sprintf("n=%d", n) }
