// Package viz stubs the one internal package allowed to produce direct
// output: rendering human-facing artifacts is its job.
package viz

import (
	"fmt"
	"os"
)

func Render() {
	fmt.Println("<svg/>")
	fmt.Fprintln(os.Stderr, "rendered")
}
