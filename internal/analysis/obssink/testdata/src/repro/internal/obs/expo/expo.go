// Package expo stubs the metrics exposition package: it formats the
// Prometheus text exposition into an http.ResponseWriter (here an
// io.Writer), so the direct-output checks do not apply to it — but the
// metric-name convention still does.
package expo

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func Write(w io.Writer) {
	fmt.Fprintf(w, "# TYPE engine_compute_total counter\n")
	fmt.Println("expo is writer-exempt")
	fmt.Fprintln(os.Stderr, "still exempt")
}

func Names(r *obs.Registry) {
	r.Counter("expo_scrapes_total")             // allowed
	r.Counter("Exempt From Writers, Not Names") // want `metric name "Exempt From Writers, Not Names" passed to Registry\.Counter is not lower_snake_case`
}
