// Package obs stubs the real metrics registry under its import path so
// the metric-name fixtures type-check against the same receiver the
// analyzer matches on.
package obs

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type Timer struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }
func (r *Registry) Timer(name string) *Timer         { return &Timer{} }

func (c *Counter) Add(delta int64) {}
