package obssink_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obssink"
)

// TestObsSink runs the failing library fixture (repro/internal/badlib)
// and the two writer-exempt ones: the viz package and a non-internal
// package, both of which print freely and must produce no diagnostics.
func TestObsSink(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), obssink.Analyzer,
		"repro/internal/badlib", "repro/internal/viz", "a")
}

// TestMetricNames runs the metric-naming fixture (constant
// lower_snake_case names for Registry.Counter/Gauge/Histogram/Timer) and
// the expo fixture, which is exempt from the writer checks but not from
// the naming one.
func TestMetricNames(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), obssink.Analyzer,
		"repro/internal/badmetrics", "repro/internal/obs/expo")
}
