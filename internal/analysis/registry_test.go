package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistryCompleteness pins the suite's meta-contract: every
// registered analyzer documents itself and carries `// want` fixtures
// under <name>/testdata/src, so a new analyzer cannot land in the
// registry without tests. (Analyzer packages are named after their
// analyzers; All() already panics on go/analysis well-formedness
// violations, so this test only adds the repo-local conventions.)
func TestRegistryCompleteness(t *testing.T) {
	for _, a := range All() {
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("analyzer %s has no Doc string", a.Name)
		}
		src := filepath.Join(a.Name, "testdata", "src")
		fi, err := os.Stat(src)
		if err != nil || !fi.IsDir() {
			t.Errorf("analyzer %s has no fixture dir %s", a.Name, src)
			continue
		}
		entries, err := os.ReadDir(src)
		if err != nil || len(entries) == 0 {
			t.Errorf("analyzer %s fixture dir %s is empty", a.Name, src)
		}
	}
}

// TestRegistryNamesMatchPackages keeps the analyzer name aligned with
// its package directory, which the fixture lookup above and the -run
// flag of cmd/mldcslint both rely on.
func TestRegistryNamesMatchPackages(t *testing.T) {
	for _, a := range All() {
		if fi, err := os.Stat(a.Name); err != nil || !fi.IsDir() {
			t.Errorf("analyzer %s has no matching package directory", a.Name)
		}
	}
}
