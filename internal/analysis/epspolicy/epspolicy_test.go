package epspolicy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/epspolicy"
)

// TestEpsPolicy runs the failing fixture (package a, including the
// multi-line and propagated comparisons the old grep missed), the passing
// fixture (package b), and the exempt predicates layer itself (the
// repro/internal/geom stub, which is full of raw comparisons and must
// produce no diagnostics).
func TestEpsPolicy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), epspolicy.Analyzer,
		"a", "b", "repro/internal/geom")
}
