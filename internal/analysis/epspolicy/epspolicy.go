// Package epspolicy is the AST-aware successor to scripts/lint-eps.sh: it
// enforces the repository's epsilon policy (docs/NUMERICS.md), under which
// every tolerance-bearing comparison outside internal/geom must go through
// a predicate in internal/geom/predicates.go or internal/geom/angle.go.
//
// Unlike the old line-oriented grep, this analyzer resolves identifiers
// through the type checker, so it also catches
//
//   - comparisons split across lines (`d <=\n    r+geom.Eps`),
//   - import-aliased references (`import g "repro/internal/geom"` followed
//     by `x > g.AngleEps`),
//   - locally-propagated tolerances (`tol := geom.Eps; ...; d <= r+tol`),
//
// none of which the grep could see. It additionally flags locally declared
// epsilon-like float constants (`const tieEps = 1e-9`), which resurrect
// the divergent-tolerance problem the predicates layer exists to prevent.
//
// Taint stops at integer expressions: converting an Eps-widened scan
// window to a cell index (`int((x+r+geom.Eps)/cell)`) and comparing that
// index is legitimate, because the tolerance has already been absorbed
// into a discrete quantity by the conversion.
package epspolicy

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
)

// GeomPath is the import path of the predicates layer. Fixture packages
// under testdata/src use the same path so the analyzer logic is identical
// in tests and in production runs.
const GeomPath = "repro/internal/geom"

const Name = "epspolicy"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "flag raw comparisons against geom.Eps/AngleEps/RhoEps outside internal/geom;\n" +
		"tolerance comparisons must use the predicates in internal/geom (docs/NUMERICS.md)",
	Run: run,
}

// predicateHint maps each tolerance constant to the predicates that
// replace raw comparisons with it.
var predicateHint = map[string]string{
	"Eps":      "LinkWithin, LinkWithin2, Reaches, LengthEq, ZeroLength",
	"AngleEps": "AngleEq, AngleLess, AngleInSpan, AngleSliver, CoversAngle",
	"RhoEps":   "RhoCmp, RhoCovers",
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == GeomPath {
		return nil, nil // the predicates layer is where raw comparisons live
	}
	c := &checker{pass: pass, tainted: map[types.Object]string{}}
	c.propagate()
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		c.file = file
		ast.Inspect(file, c.check)
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	file *ast.File
	// tainted maps a local const/var object to the name of the geom
	// tolerance constant its initializer (transitively) references.
	tainted map[types.Object]string
}

// epsConst reports whether obj is one of the geom tolerance constants,
// returning its name.
func (c *checker) epsConst(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != GeomPath {
		return "", false
	}
	switch obj.Name() {
	case "Eps", "AngleEps", "RhoEps":
		return obj.Name(), true
	}
	return "", false
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// refers reports whether expr's tree references a geom tolerance constant,
// directly or via a tainted local. It returns the constant's name and,
// when the reference is indirect, the local identifier it flowed through.
// Integer-typed subtrees are skipped: a tolerance absorbed into an index
// by an int conversion is no longer a tolerance comparison.
func (c *checker) refers(expr ast.Expr) (constName, via string, found bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := c.pass.TypesInfo.Types[e]; ok && isInteger(tv.Type) {
			return false
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if name, ok := c.epsConst(obj); ok {
			constName, found = name, true
			return false
		}
		if name, ok := c.tainted[obj]; ok {
			constName, via, found = name, id.Name, true
			return false
		}
		return true
	})
	return constName, via, found
}

// propagate computes the tainted set: local consts/vars whose initializer
// or assignment references a tolerance constant, iterated to a fixpoint so
// chains (`a := geom.Eps; b := 2 * a`) are followed.
func (c *checker) propagate() {
	info := c.pass.TypesInfo
	taint := func(id *ast.Ident, rhs ast.Expr) bool {
		if id.Name == "_" || rhs == nil {
			return false
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id] // plain `=` assignment to an existing var
		}
		if obj == nil || isInteger(obj.Type()) {
			return false
		}
		if _, done := c.tainted[obj]; done {
			return false
		}
		if name, _, ok := c.refers(rhs); ok {
			c.tainted[obj] = name
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, file := range c.pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ValueSpec:
					for i, name := range st.Names {
						var rhs ast.Expr
						switch {
						case len(st.Values) == len(st.Names):
							rhs = st.Values[i]
						case len(st.Values) == 1:
							rhs = st.Values[0]
						}
						if taint(name, rhs) {
							changed = true
						}
					}
				case *ast.AssignStmt:
					if len(st.Lhs) != len(st.Rhs) {
						break
					}
					for i, lhs := range st.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && taint(id, st.Rhs[i]) {
							changed = true
						}
					}
				}
				return true
			})
		}
	}
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// epsName reports whether a declared name is epsilon-like: "eps",
// "epsilon", or any name with an Eps/Epsilon suffix ("tieEps", "rho_eps").
// Lowercase-embedded suffixes ("steps") do not match.
func epsName(name string) bool {
	switch {
	case strings.EqualFold(name, "eps"), strings.EqualFold(name, "epsilon"):
		return true
	case strings.HasSuffix(name, "Eps"), strings.HasSuffix(name, "Epsilon"),
		strings.HasSuffix(name, "_eps"), strings.HasSuffix(name, "_epsilon"):
		return true
	}
	return false
}

func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func (c *checker) check(n ast.Node) bool {
	switch e := n.(type) {
	case *ast.BinaryExpr:
		if !isComparison(e.Op) {
			return true
		}
		name, via, ok := c.refers(e.X)
		if !ok {
			name, via, ok = c.refers(e.Y)
		}
		if !ok {
			return true
		}
		if allowdirective.Allowed(c.pass.Fset, c.file, e.Pos(), Name) {
			return true
		}
		src := "geom." + name
		if via != "" {
			src += " (via " + via + ")"
		}
		c.pass.ReportRangef(e, "comparison uses %s outside internal/geom; use a geom predicate (%s) — docs/NUMERICS.md",
			src, predicateHint[name])
		return false // don't re-report nested comparisons
	case *ast.ValueSpec:
		for _, id := range e.Names {
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil || !epsName(id.Name) || !isFloatish(obj.Type()) {
				continue
			}
			if allowdirective.Allowed(c.pass.Fset, c.file, id.Pos(), Name) {
				continue
			}
			c.pass.Reportf(id.Pos(), "local epsilon constant %q outside internal/geom; tolerances are declared once, in internal/geom (docs/NUMERICS.md)", id.Name)
		}
	}
	return true
}
