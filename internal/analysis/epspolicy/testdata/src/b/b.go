// Package b is the epspolicy passing fixture: tolerance-correct code the
// analyzer must leave alone.
package b

import "repro/internal/geom"

func link(d, r float64) bool { return geom.LinkWithin(d, r) }

func tie(a, b float64) bool { return geom.RhoCmp(a, b) == 0 }

// jitter passes Eps as a magnitude — mentioning the constant outside a
// comparison is allowed (widening a scan window, perturbing an input).
func jitter(x float64) float64 { return x + geom.Eps }

func steps(n, numSteps int) bool { return n < numSteps } // "steps" is not an epsilon name
