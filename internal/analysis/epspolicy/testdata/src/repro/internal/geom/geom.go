// Package geom is a fixture stub of repro/internal/geom: same import
// path and constant names, so the analyzer resolves references exactly as
// it does against the real package. The raw comparisons below are the
// predicates layer itself — the package is exempt, hence no want
// comments anywhere in this file.
package geom

import "math"

const (
	Eps      = 1e-9
	AngleEps = 1e-9
	RhoEps   = Eps
	TwoPi    = 2 * math.Pi
)

func LinkWithin(dist, r float64) bool { return dist <= r+Eps }

func LengthEq(a, b float64) bool { return math.Abs(a-b) <= Eps }

func RhoCmp(a, b float64) int {
	switch {
	case a > b+RhoEps:
		return 1
	case a < b-RhoEps:
		return -1
	}
	return 0
}

func NormalizeAngle(theta float64) float64 {
	theta = math.Mod(theta, TwoPi)
	if theta < 0 {
		theta += TwoPi
	}
	return theta
}

func AngleEq(a, b float64) bool {
	return math.Abs(NormalizeAngle(a)-NormalizeAngle(b)) <= AngleEps
}
