// Package a holds the epspolicy failing fixtures: raw tolerance
// comparisons the analyzer must flag, including cases the old
// line-oriented scripts/lint-eps.sh provably missed (a comparison split
// across lines under an aliased import, and a locally-propagated
// tolerance).
package a

import (
	tol "repro/internal/geom"
)

func direct(d, r float64) bool {
	return d <= r+tol.Eps // want `comparison uses geom\.Eps outside internal/geom`
}

// aliasedMultiline is a case lint-eps.sh could not see: the comparison
// operator and the aliased epsilon reference sit on different lines, so
// no single line matched the grep's operator-and-constant pattern.
func aliasedMultiline(d, r float64) bool {
	return d <= // want `comparison uses geom\.Eps outside internal/geom; use a geom predicate \(LinkWithin`
		r+
			tol.Eps
}

// propagated is the other blind spot: the comparison line never mentions
// an epsilon constant at all.
func propagated(x float64) bool {
	t := tol.AngleEps
	return x > t // want `comparison uses geom\.AngleEps \(via t\) outside internal/geom; use a geom predicate \(AngleEq`
}

// chained taint: the tolerance flows through two locals.
func chained(a, b float64) bool {
	half := tol.RhoEps / 2
	width := half * 2
	return a < b-width // want `comparison uses geom\.RhoEps \(via width\)`
}

const tieEps = 1e-9 // want `local epsilon constant "tieEps" outside internal/geom`

func allowed(d, r float64) bool {
	return d <= r+tol.Eps //mldcslint:allow epspolicy fixture demonstrating the escape hatch
}

// cells shows where taint legitimately stops: the Eps-widened scan window
// is absorbed into an integer cell index, so comparing the index is fine.
func cells(x, r, cell float64, max int) bool {
	w := x + r + tol.Eps
	c := int(w / cell)
	return c <= max
}
