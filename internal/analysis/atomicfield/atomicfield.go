// Package atomicfield enforces all-or-nothing atomicity on struct
// fields: a field accessed through sync/atomic anywhere (AddInt64,
// LoadUint64, CompareAndSwapInt32, ...) must be accessed atomically
// everywhere. A plain read or write of the same field — even one that
// "only runs at startup" — is flagged.
//
// This is the classic pre-typed-atomics bug class: the race detector
// catches a mixed access only on interleavings where the plain access
// and an atomic one actually collide during a test run, whereas the
// mixing itself is already a memory-model violation. The analyzer
// rejects the access site statically.
//
// Fields are identified cross-package: if package A does
// atomic.AddInt64(&s.Counter, 1) on a type from package B, an AtomicFact
// is exported on the field and plain accesses in any later-analyzed
// package are flagged too. Test files are exempt (tests may read stats
// structs after all goroutines are joined), as are accesses on a *copy*
// of the struct — copying h.stats then reading the copy's fields is a
// different (copylocks-adjacent) concern, not a torn access.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
)

const Name = "atomicfield"

// AtomicFact marks a struct field that is accessed via sync/atomic
// somewhere in the program.
type AtomicFact struct{ Op string }

func (*AtomicFact) AFact() {}

func (f *AtomicFact) String() string { return "atomic field (" + f.Op + ")" }

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "flag plain reads/writes of struct fields that are accessed via sync/atomic\n" +
		"elsewhere; a field is either always atomic or never atomic",
	Run:       run,
	FactTypes: []analysis.Fact{(*AtomicFact)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:     pass,
		atomic:   map[*types.Var]string{},
		atomicAt: map[ast.Node]bool{},
	}
	// Pass 1: find every &x.f handed to a sync/atomic function, in every
	// file including tests — a test that does atomic.AddInt64 still makes
	// the field atomic for the whole program.
	for _, file := range pass.Files {
		c.collectAtomicUses(file)
	}
	// Export facts so importers of this package see the contract.
	for v, op := range c.atomic {
		c.pass.ExportObjectFact(v, &AtomicFact{Op: op})
	}
	// Pass 2: flag plain accesses (non-test files only).
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		c.checkPlainAccesses(file)
	}
	return nil, nil
}

type checker struct {
	pass   *analysis.Pass
	atomic map[*types.Var]string
	// atomicAt records selector nodes that are themselves part of an
	// atomic call (&x.f inside atomic.AddInt64(&x.f, 1)) so pass 2 does
	// not flag the atomic use as a plain one.
	atomicAt map[ast.Node]bool
}

// collectAtomicUses records fields whose address is passed to a
// sync/atomic function.
func (c *checker) collectAtomicUses(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutilCallee(c.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			v := c.fieldOf(sel)
			if v == nil {
				continue
			}
			if _, seen := c.atomic[v]; !seen {
				c.atomic[v] = fn.Name()
			}
			c.atomicAt[sel] = true
		}
		return true
	})
}

// fieldOf returns the struct-field object a selector refers to, or nil.
func (c *checker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	v, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicField reports whether v is atomic per this package's uses or
// an imported fact, along with the atomic op that claimed it.
func (c *checker) isAtomicField(v *types.Var) (string, bool) {
	if op, ok := c.atomic[v]; ok {
		return op, true
	}
	var fact AtomicFact
	if c.pass.ImportObjectFact(v, &fact) {
		return fact.Op, true
	}
	return "", false
}

// checkPlainAccesses flags selector reads and writes of atomic fields
// that are not themselves atomic call arguments.
func (c *checker) checkPlainAccesses(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || c.atomicAt[sel] {
			return true
		}
		v := c.fieldOf(sel)
		if v == nil {
			return true
		}
		op, atomic := c.isAtomicField(v)
		if !atomic {
			return true
		}
		// Accessing a field of a struct *value* (a copy) is not a torn
		// access of the shared field; only flag accesses through the
		// addressable original, i.e. selector bases that are pointers or
		// addressable expressions rooted in a pointer/var — which is any
		// selector the type checker says refers to the same field object.
		// A copy still uses the same *types.Var, so distinguish by base
		// type: reading from a local struct copy is rooted at a local
		// value variable. We conservatively flag everything except bases
		// that are themselves plain local struct values.
		if c.baseIsLocalCopy(sel) {
			return true
		}
		c.pass.ReportRangef(sel, "plain access of field %s, which is accessed with atomic.%s elsewhere; mixed atomic/non-atomic access is a data race even when it \"can't happen concurrently\" — use sync/atomic here too, or a typed atomic (docs/STATIC_ANALYSIS.md#atomicfield)",
			sel.Sel.Name, op)
		return true
	})
}

// baseIsLocalCopy reports whether the selector's base expression is a
// function-local struct value (not pointer) variable — i.e. a copy whose
// fields are private to this goroutine.
func (c *checker) baseIsLocalCopy(sel *ast.SelectorExpr) bool {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	// Local (non-package-scope) value of struct type.
	if obj.Parent() == nil || (obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()) {
		return false
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
		return false
	}
	_, isStruct := obj.Type().Underlying().(*types.Struct)
	return isStruct
}

// typeutilCallee resolves the *types.Func a call invokes, or nil
// (mirrors golang.org/x/tools/go/types/typeutil.StaticCallee without
// pulling the package in).
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
