package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicfield"
)

// Package a splits atomic and plain accesses across files; counters/b
// split them across packages (the counters stub is listed first so its
// AtomicFact is in the shared store when b is analyzed).
func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicfield.Analyzer,
		"a", "repro/internal/counters", "b")
}
