// Package b reads counters.Stats.Queries without sync/atomic; the field
// is known to be atomic only via the cross-package fact.
package b

import "repro/internal/counters"

func drain(s *counters.Stats) int64 {
	return s.Queries // want `accessed with atomic\.AddInt64 elsewhere`
}
