// Package counters stubs a stats type whose field is atomic by virtue of
// its own methods; importers only learn that through the exported
// AtomicFact.
package counters

import "sync/atomic"

// Stats counts events across goroutines.
type Stats struct {
	Queries int64
}

// Inc records one query.
func (s *Stats) Inc() { atomic.AddInt64(&s.Queries, 1) }
