package a

// Test files are exempt: after the goroutines under test are joined,
// plain reads of atomic fields are the natural way to assert totals.
func drainForAssertions(s *server) int64 {
	return s.st.hits
}
