// Package a exercises mixed atomic/plain access with the accesses split
// across files: this file establishes the fields as atomic; b.go holds
// the violations. The analyzer must join the two views of the package.
package a

import "sync/atomic"

type stats struct {
	hits  int64
	total int64
}

type server struct {
	st stats
}

func (s *server) record() {
	atomic.AddInt64(&s.st.hits, 1)
}

func (s *server) readAtomic() int64 {
	return atomic.LoadInt64(&s.st.hits)
}
