package a

func (s *server) snapshotBroken() int64 {
	return s.st.hits // want `accessed with atomic\.AddInt64 elsewhere`
}

func (s *server) resetBroken() {
	s.st.hits = 0 // want `accessed with atomic\.AddInt64 elsewhere`
}

// copyOK: fields of a struct copy are private to this goroutine; reading
// them is stale, not torn.
func (s *server) copyOK() int64 {
	c := s.st
	return c.hits
}

// otherOK: total is never touched atomically.
func (s *server) otherOK() int64 {
	return s.st.total
}
