package checker

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// A FactStore carries analyzer facts across packages within one checker
// run. Facts are the go/analysis mechanism for interprocedural results:
// an analyzer running on package P records a fact about one of P's
// objects (a function returns scratch-backed memory, a struct field is
// accessed atomically, a type is annotated immutable), and the same
// analyzer running later on a package that imports P asks for it back.
//
// The driver type-checks dependency packages from compiler export data,
// so the types.Object an importer sees for a skyline function is not the
// same Go value as the one the source-checked skyline package produced.
// Facts therefore cannot be keyed by object identity; they are keyed by
// (package path, stable object path, fact type) and serialized through
// encoding/gob — the same wire discipline the upstream driver uses to
// store facts alongside export data, which keeps every fact type honest
// about being serializable (unexported-field-only facts fail loudly at
// export time, not when a future driver persists them).
//
// The zero value is not ready to use; call NewFactStore.
type FactStore struct {
	mu  sync.Mutex
	obj map[factKey][]byte
	pkg map[factKey][]byte
}

type factKey struct {
	pkgPath string
	objPath string // "" for package-level facts
	factTy  string
}

// NewFactStore returns an empty fact store for one checker run.
func NewFactStore() *FactStore {
	return &FactStore{obj: map[factKey][]byte{}, pkg: map[factKey][]byte{}}
}

func encodeFact(fact analysis.Fact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(fact)); err != nil {
		return nil, fmt.Errorf("encoding fact %T: %v", fact, err)
	}
	return buf.Bytes(), nil
}

func decodeFact(data []byte, fact analysis.Fact) bool {
	if data == nil {
		return false
	}
	return gob.NewDecoder(bytes.NewReader(data)).DecodeValue(reflect.ValueOf(fact)) == nil
}

func factType(fact analysis.Fact) string { return reflect.TypeOf(fact).String() }

func (s *FactStore) exportObjectFact(obj types.Object, fact analysis.Fact) error {
	if obj == nil || obj.Pkg() == nil {
		return fmt.Errorf("fact %T exported for object without a package", fact)
	}
	path, ok := objectPath(obj)
	if !ok {
		// Function-local objects cannot be named from other packages;
		// facts about them are useless across packages, so drop them.
		return nil
	}
	data, err := encodeFact(fact)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obj[factKey{obj.Pkg().Path(), path, factType(fact)}] = data
	return nil
}

func (s *FactStore) importObjectFact(obj types.Object, fact analysis.Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := objectPath(obj)
	if !ok {
		return false
	}
	s.mu.Lock()
	data := s.obj[factKey{obj.Pkg().Path(), path, factType(fact)}]
	s.mu.Unlock()
	return decodeFact(data, fact)
}

func (s *FactStore) exportPackageFact(pkg *types.Package, fact analysis.Fact) error {
	data, err := encodeFact(fact)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkg[factKey{pkgPath: pkg.Path(), factTy: factType(fact)}] = data
	return nil
}

func (s *FactStore) importPackageFact(pkg *types.Package, fact analysis.Fact) bool {
	if pkg == nil {
		return false
	}
	s.mu.Lock()
	data := s.pkg[factKey{pkgPath: pkg.Path(), factTy: factType(fact)}]
	s.mu.Unlock()
	return decodeFact(data, fact)
}

// objectPath names obj in a way that is stable across the two views of a
// package the driver produces (type-checked from source when the package
// is analyzed, re-imported from export data when a later package refers
// to it):
//
//	Func                → "Func"
//	(Recv).Method       → "Recv.Method"
//	Type (struct).Field → "Type.Field" (embedded structs dot-extend)
//
// Only package-scope objects, their methods, and fields of package-scope
// struct types are addressable; anything else (locals, fields of
// anonymous types) reports ok=false and the fact stays package-private.
func objectPath(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	// Package-scope object (func, var, const, type).
	if obj.Parent() == pkg.Scope() {
		return obj.Name(), true
	}
	// Method: receiver base type name + method name.
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if named := namedBase(recv.Type()); named != nil {
				return named.Obj().Name() + "." + fn.Name(), true
			}
		}
		return "", false
	}
	// Struct field: search the package's named struct types for it.
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if path, ok := fieldPath(tn.Type(), v, tn.Name(), 0); ok {
				return path, true
			}
		}
	}
	return "", false
}

// fieldPath locates field v inside t's underlying struct (following
// embedded structs up to a small depth) and returns "prefix.Field...".
func fieldPath(t types.Type, v *types.Var, prefix string, depth int) (string, bool) {
	if depth > 4 {
		return "", false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f == v {
			return prefix + "." + f.Name(), true
		}
		if path, ok := fieldPath(f.Type(), v, prefix+"."+f.Name(), depth+1); ok {
			return path, true
		}
	}
	return "", false
}

// namedBase peels pointers and returns the named type underneath, or nil.
func namedBase(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
