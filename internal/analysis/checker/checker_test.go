package checker_test

import (
	"os"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/checker"
	"repro/internal/analysis/floatcmp"
)

// TestLoadAndRunCleanPackage loads a real in-module package through the
// go-list/export-data pipeline and runs one analyzer over it: the
// predicates layer is exempt from floatcmp, so the run must be clean.
func TestLoadAndRunCleanPackage(t *testing.T) {
	pkgs, err := checker.Load([]string{"repro/internal/geom"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "repro/internal/geom" {
		t.Errorf("Path = %q", pkg.Path)
	}
	if pkg.Types == nil || len(pkg.Files) == 0 || pkg.Info == nil {
		t.Fatalf("package not fully loaded: types=%v files=%d", pkg.Types, len(pkg.Files))
	}
	if err := pkg.Err(); err != nil {
		t.Fatalf("load errors: %v", err)
	}
	diags, err := checker.Run([]*analysis.Analyzer{floatcmp.Analyzer}, pkgs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("floatcmp on the exempt predicates layer reported %d diagnostics: %v", len(diags), diags)
	}
}

// TestExportFile resolves standard-library export data (used by the
// analysistest harness to satisfy fixture imports) and rejects unknown
// packages.
func TestExportFile(t *testing.T) {
	f, err := checker.ExportFile("math")
	if err != nil {
		t.Fatalf("ExportFile(math): %v", err)
	}
	if _, err := os.Stat(f); err != nil {
		t.Errorf("export data file: %v", err)
	}
	if _, err := checker.ExportFile("no/such/package"); err == nil {
		t.Error("ExportFile(no/such/package) succeeded, want error")
	}
}
