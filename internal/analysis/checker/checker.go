// Package checker is the mldcslint driver: it loads Go packages with the
// go toolchain (`go list -export`), type-checks the matched packages from
// source, runs a suite of go/analysis analyzers over them, and collects
// diagnostics.
//
// It deliberately avoids golang.org/x/tools/go/packages (the repository
// vendors only the small go/analysis core): imports are resolved through
// compiler export data produced by `go list -export`, which the gc
// importer in the standard library reads directly. The repository has no
// external runtime dependencies, so every import is either in-module or
// in the standard library, and both come back from one `go list -deps`
// invocation. Analyzers that use facts are not supported — the suite's
// analyzers are all single-package.
package checker

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// A Package is a parsed and type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
	Module    *analysis.Module
	typeErrs  []types.Error
	parseErrs []error
}

// Err returns the first load error (parse or type) of the package, or nil.
func (p *Package) Err() error {
	if len(p.parseErrs) > 0 {
		return p.parseErrs[0]
	}
	if len(p.typeErrs) > 0 {
		return p.typeErrs[0]
	}
	return nil
}

// A Diagnostic is an analyzer finding resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// listedPkg mirrors the `go list -json` fields the loader requests.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ Path, GoVersion string }
	Error      *struct{ Err string }
}

func goList(extra []string, patterns ...string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Module,Error"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with all the maps analyzers expect.
func NewInfo() *types.Info {
	return &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
}

// Load resolves patterns with the go toolchain and returns the matched
// non-standard-library packages, parsed with comments and type-checked
// from source. Imports (in-module and standard library alike) are
// satisfied from the export data `go list -export` produced.
func Load(patterns []string) ([]*Package, error) {
	listed, err := goList([]string{"-deps"}, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
			exportCache.put(p.ImportPath, p.Export)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		pkg := &Package{Path: lp.ImportPath, Fset: fset, Info: NewInfo()}
		if lp.Module != nil {
			pkg.Module = &analysis.Module{Path: lp.Module.Path, GoVersion: lp.Module.GoVersion}
		}
		for _, f := range lp.GoFiles {
			file, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				pkg.parseErrs = append(pkg.parseErrs, err)
				continue
			}
			pkg.Files = append(pkg.Files, file)
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				var te types.Error
				if errors.As(err, &te) {
					pkg.typeErrs = append(pkg.typeErrs, te)
				}
			},
		}
		pkg.Types, _ = conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
		out = append(out, pkg)
	}
	return out, nil
}

// Run applies each analyzer to each package and returns all diagnostics
// sorted by position. Packages that failed to load abort the run: a lint
// verdict on a partially-typed tree is not trustworthy.
func Run(as []*analysis.Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if err := pkg.Err(); err != nil {
			return nil, fmt.Errorf("%s: %v", pkg.Path, err)
		}
		ds, err := analyzePackage(as, pkg)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// analyzePackage runs the analyzers on pkg in Requires order, threading
// results through ResultOf.
func analyzePackage(as []*analysis.Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	results := map[*analysis.Analyzer]interface{}{}
	done := map[*analysis.Analyzer]bool{}
	var exec func(a *analysis.Analyzer) error
	exec = func(a *analysis.Analyzer) error {
		if done[a] {
			return nil
		}
		done[a] = true
		for _, req := range a.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		ds, res, err := AnalyzeOne(a, pkg, results)
		if err != nil {
			return fmt.Errorf("%s: analyzer %s: %v", pkg.Path, a.Name, err)
		}
		results[a] = res
		diags = append(diags, ds...)
		return nil
	}
	for _, a := range as {
		if err := exec(a); err != nil {
			return nil, err
		}
	}
	return diags, nil
}

// AnalyzeOne applies a single analyzer to a loaded package. resultOf
// carries the results of previously-run required analyzers (may be nil
// when the analyzer has no requirements).
func AnalyzeOne(a *analysis.Analyzer, pkg *Package, resultOf map[*analysis.Analyzer]interface{}) ([]Diagnostic, interface{}, error) {
	var diags []Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		TypeErrors: pkg.typeErrs,
		Module:     pkg.Module,
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		ReadFile:   os.ReadFile,
		Report: func(d analysis.Diagnostic) {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Position: pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		},
		// The suite's analyzers are single-package; facts are inert.
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	for _, req := range a.Requires {
		pass.ResultOf[req] = resultOf[req]
	}
	res, err := a.Run(pass)
	return diags, res, err
}

// exportMemo memoizes `go list -export` lookups so the analysistest
// harness does not shell out once per fixture import.
type exportMemo struct {
	sync.Mutex
	m map[string]string
}

var exportCache = exportMemo{m: map[string]string{}}

func (c *exportMemo) put(path, file string) {
	c.Lock()
	defer c.Unlock()
	c.m[path] = file
}

func (c *exportMemo) get(path string) (string, bool) {
	c.Lock()
	defer c.Unlock()
	f, ok := c.m[path]
	return f, ok
}

// ExportFile returns the compiler export data file for a standard-library
// (or otherwise toolchain-resolvable, non-module) import path, building
// it if necessary. Used by the analysistest harness to satisfy fixture
// imports such as "math" or "fmt".
func ExportFile(path string) (string, error) {
	if f, ok := exportCache.get(path); ok {
		return f, nil
	}
	pkgs, err := goList(nil, path)
	if err != nil {
		return "", err
	}
	if len(pkgs) != 1 || pkgs[0].Export == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	if !pkgs[0].Standard && !strings.HasPrefix(path, "repro/") {
		return "", fmt.Errorf("%q is neither standard library nor in-module", path)
	}
	exportCache.put(path, pkgs[0].Export)
	return pkgs[0].Export, nil
}
