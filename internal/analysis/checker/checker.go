// Package checker is the mldcslint driver: it loads and type-checks each
// matched package exactly once (`go list -export` + the gc importer for
// dependencies), fans the whole analyzer suite out over every package —
// in dependency order, packages analyzed concurrently once their
// dependencies are done — and collects diagnostics plus per-analyzer
// wall time.
//
// It deliberately avoids golang.org/x/tools/go/packages (the repository
// vendors only the small go/analysis core): imports are resolved through
// compiler export data produced by `go list -export`, which the gc
// importer in the standard library reads directly. The repository has no
// external runtime dependencies, so every import is either in-module or
// in the standard library, and both come back from one `go list -deps`
// invocation.
//
// Cross-package analyzer facts are supported (see FactStore): packages
// are analyzed dependees-first, so when the suite reaches a package, the
// facts its imports exported — a skyline function returns scratch-backed
// memory, an engine type is //mldcs:immutable, a struct field is accessed
// atomically — are already in the store, keyed by a stable object path
// that survives the source-view/export-data-view split.
package checker

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
)

// A Package is a parsed and type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
	Module    *analysis.Module
	deps      map[string]bool // transitive import paths, for analysis ordering
	typeErrs  []types.Error
	parseErrs []error
}

// Err returns the first load error (parse or type) of the package, or nil.
func (p *Package) Err() error {
	if len(p.parseErrs) > 0 {
		return p.parseErrs[0]
	}
	if len(p.typeErrs) > 0 {
		return p.typeErrs[0]
	}
	return nil
}

// A Diagnostic is an analyzer finding resolved to a file position.
// Allowed marks findings suppressed by an //mldcslint:allow directive on
// (or immediately above) the flagged line: they do not fail the lint, but
// -json output still carries them so CI artifacts record the allow state.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
	Allowed  bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// listedPkg mirrors the `go list -json` fields the loader requests.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Deps       []string
	DepOnly    bool
	Standard   bool
	Module     *struct{ Path, GoVersion string }
	Error      *struct{ Err string }
}

func goList(extra []string, patterns ...string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Deps,DepOnly,Standard,Module,Error"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with all the maps analyzers expect.
func NewInfo() *types.Info {
	return &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
}

// Load resolves patterns with the go toolchain and returns the matched
// non-standard-library packages, parsed with comments and type-checked
// from source. Imports (in-module and standard library alike) are
// satisfied from the export data `go list -export` produced.
func Load(patterns []string) ([]*Package, error) {
	return LoadTags(patterns, "")
}

// LoadTags is Load under additional build tags (comma-separated, as for
// `go build -tags`). The mutation-canary test uses it to lint the
// `mldcsmutate` build of the engine, which a plain Load never sees.
func LoadTags(patterns []string, tags string) ([]*Package, error) {
	extra := []string{"-deps"}
	if tags != "" {
		extra = append(extra, "-tags", tags)
	}
	listed, err := goList(extra, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
			exportCache.put(p.ImportPath, p.Export)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		pkg := &Package{Path: lp.ImportPath, Fset: fset, Info: NewInfo(), deps: map[string]bool{}}
		for _, d := range lp.Deps {
			pkg.deps[d] = true
		}
		if lp.Module != nil {
			pkg.Module = &analysis.Module{Path: lp.Module.Path, GoVersion: lp.Module.GoVersion}
		}
		for _, f := range lp.GoFiles {
			file, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				pkg.parseErrs = append(pkg.parseErrs, err)
				continue
			}
			pkg.Files = append(pkg.Files, file)
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				var te types.Error
				if errors.As(err, &te) {
					pkg.typeErrs = append(pkg.typeErrs, te)
				}
			},
		}
		pkg.Types, _ = conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
		out = append(out, pkg)
	}
	return out, nil
}

// RunStats reports how a checker run spent its time: cumulative wall
// time per analyzer across all packages (concurrent package analyses all
// contribute, so the sum can exceed the run's wall clock).
type RunStats struct {
	mu       sync.Mutex
	Analyzer map[string]time.Duration
	Packages int
}

func (st *RunStats) add(name string, d time.Duration) {
	st.mu.Lock()
	st.Analyzer[name] += d
	st.mu.Unlock()
}

// Run applies each analyzer to each package and returns all diagnostics
// sorted by position. Equivalent to RunSuite with a fresh fact store and
// discarded stats; the fixture harness and older tests use it.
func Run(as []*analysis.Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	diags, _, err := RunSuite(as, pkgs, NewFactStore())
	return diags, err
}

// RunSuite fans the analyzer suite out over the loaded packages —
// every package loaded and type-checked exactly once, all analyzers
// sharing that single load — and returns all diagnostics sorted by
// position, plus per-analyzer timing. Packages are processed in
// dependency order so cross-package facts flow from dependees to
// dependents; packages whose dependencies are settled run concurrently.
// Packages that failed to load abort the run: a lint verdict on a
// partially-typed tree is not trustworthy.
func RunSuite(as []*analysis.Analyzer, pkgs []*Package, facts *FactStore) ([]Diagnostic, *RunStats, error) {
	stats := &RunStats{Analyzer: map[string]time.Duration{}, Packages: len(pkgs)}
	for _, pkg := range pkgs {
		if err := pkg.Err(); err != nil {
			return nil, stats, fmt.Errorf("%s: %v", pkg.Path, err)
		}
	}
	var (
		mu       sync.Mutex
		diags    []Diagnostic
		firstErr error
	)
	for _, level := range dependencyLevels(pkgs) {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for _, pkg := range level {
			wg.Add(1)
			sem <- struct{}{}
			go func(pkg *Package) {
				defer func() { <-sem; wg.Done() }()
				ds, err := analyzePackage(as, pkg, facts, stats)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				diags = append(diags, ds...)
			}(pkg)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, stats, firstErr
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, stats, nil
}

// dependencyLevels partitions pkgs into waves: a package lands in the
// first wave where none of the loaded packages it (transitively) imports
// is in the same or a later wave. Facts then flow strictly forward.
func dependencyLevels(pkgs []*Package) [][]*Package {
	loaded := map[string]*Package{}
	for _, p := range pkgs {
		loaded[p.Path] = p
	}
	level := map[string]int{}
	var depth func(p *Package) int
	depth = func(p *Package) int {
		if d, ok := level[p.Path]; ok {
			return d
		}
		level[p.Path] = 0 // cycle guard; go packages cannot cycle anyway
		d := 0
		for dep := range p.deps {
			if dp, ok := loaded[dep]; ok && dp != p {
				if dd := depth(dp) + 1; dd > d {
					d = dd
				}
			}
		}
		level[p.Path] = d
		return d
	}
	maxDepth := 0
	for _, p := range pkgs {
		if d := depth(p); d > maxDepth {
			maxDepth = d
		}
	}
	out := make([][]*Package, maxDepth+1)
	for _, p := range pkgs {
		out[level[p.Path]] = append(out[level[p.Path]], p)
	}
	return out
}

// analyzePackage runs the analyzers on pkg in Requires order, threading
// results through ResultOf.
func analyzePackage(as []*analysis.Analyzer, pkg *Package, facts *FactStore, stats *RunStats) ([]Diagnostic, error) {
	var diags []Diagnostic
	results := map[*analysis.Analyzer]interface{}{}
	done := map[*analysis.Analyzer]bool{}
	var exec func(a *analysis.Analyzer) error
	exec = func(a *analysis.Analyzer) error {
		if done[a] {
			return nil
		}
		done[a] = true
		for _, req := range a.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		start := time.Now()
		ds, res, err := AnalyzeOne(a, pkg, results, facts)
		if stats != nil {
			stats.add(a.Name, time.Since(start))
		}
		if err != nil {
			return fmt.Errorf("%s: analyzer %s: %v", pkg.Path, a.Name, err)
		}
		results[a] = res
		diags = append(diags, ds...)
		return nil
	}
	for _, a := range as {
		if err := exec(a); err != nil {
			return nil, err
		}
	}
	return diags, nil
}

// AnalyzeOne applies a single analyzer to a loaded package. resultOf
// carries the results of previously-run required analyzers (may be nil
// when the analyzer has no requirements); facts carries cross-package
// analyzer facts (nil disables them). Diagnostics suppressed by an
// //mldcslint:allow directive are returned with Allowed set rather than
// dropped, so callers can surface the allow state.
func AnalyzeOne(a *analysis.Analyzer, pkg *Package, resultOf map[*analysis.Analyzer]interface{}, facts *FactStore) ([]Diagnostic, interface{}, error) {
	var diags []Diagnostic
	if facts == nil {
		facts = NewFactStore()
	}
	var factErr error
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		TypeErrors: pkg.typeErrs,
		Module:     pkg.Module,
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		ReadFile:   os.ReadFile,
		Report: func(d analysis.Diagnostic) {
			allowed := false
			if f := allowdirective.FileFor(pkg.Fset, pkg.Files, d.Pos); f != nil {
				allowed = allowdirective.Allowed(pkg.Fset, f, d.Pos, a.Name)
			}
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Position: pkg.Fset.Position(d.Pos),
				Message:  d.Message,
				Allowed:  allowed,
			})
		},
		ImportObjectFact: facts.importObjectFact,
		ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
			return facts.importPackageFact(p, fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			if err := facts.exportObjectFact(obj, fact); err != nil && factErr == nil {
				factErr = err
			}
		},
		ExportPackageFact: func(fact analysis.Fact) {
			if err := facts.exportPackageFact(pkg.Types, fact); err != nil && factErr == nil {
				factErr = err
			}
		},
		AllObjectFacts:  func() []analysis.ObjectFact { return nil },
		AllPackageFacts: func() []analysis.PackageFact { return nil },
	}
	for _, req := range a.Requires {
		pass.ResultOf[req] = resultOf[req]
	}
	res, err := a.Run(pass)
	if err == nil {
		err = factErr
	}
	return diags, res, err
}

// exportMemo memoizes `go list -export` lookups so the analysistest
// harness does not shell out once per fixture import.
type exportMemo struct {
	sync.Mutex
	m map[string]string
}

var exportCache = exportMemo{m: map[string]string{}}

func (c *exportMemo) put(path, file string) {
	c.Lock()
	defer c.Unlock()
	c.m[path] = file
}

func (c *exportMemo) get(path string) (string, bool) {
	c.Lock()
	defer c.Unlock()
	f, ok := c.m[path]
	return f, ok
}

// ExportFile returns the compiler export data file for a standard-library
// (or otherwise toolchain-resolvable, non-module) import path, building
// it if necessary. Used by the analysistest harness to satisfy fixture
// imports such as "math" or "fmt".
func ExportFile(path string) (string, error) {
	if f, ok := exportCache.get(path); ok {
		return f, nil
	}
	pkgs, err := goList(nil, path)
	if err != nil {
		return "", err
	}
	if len(pkgs) != 1 || pkgs[0].Export == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	if !pkgs[0].Standard && !strings.HasPrefix(path, "repro/") {
		return "", fmt.Errorf("%q is neither standard library nor in-module", path)
	}
	exportCache.put(path, pkgs[0].Export)
	return pkgs[0].Export, nil
}
