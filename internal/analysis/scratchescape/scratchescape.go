// Package scratchescape enforces the skyline.Scratch lifetime contract
// (docs/PERFORMANCE.md): scratch working memory is borrowed for the
// duration of one call and must not outlive it.
//
// Two kinds of values are tracked, flow-followed through local
// assignments to a fixpoint:
//
//   - *skyline.Scratch itself (type-identified, so aliased imports and
//     locals are free), and
//   - "views": slices backed by a Scratch's internal buffers — a direct
//     read of a slice field on a Scratch, or the result of calling a
//     function that returns one. Functions returning views are
//     discovered per package and exported as cross-package facts, so
//     engine code holding a view obtained from skyline is checked with
//     the same rules even though the buffer fields are unexported.
//
// A tracked value may be passed down the stack freely (arguments bound
// the borrow to the call). It must not escape the call: flagged are
// stores into struct fields, package-level variables, or maps; sends on
// channels; capture by (or being an argument to) a `go`-launched
// closure; and returns from any function that is not a method on Scratch
// itself (the Scratch's own methods are its accessor API — they
// propagate the view fact to their callers instead).
//
// This is exactly the invariant the race detector cannot establish: a
// scratch buffer stashed in a field is only a data race on the
// interleavings the scheduler happens to produce, and reads of a
// recycled arena are not races at all — just silently wrong arcs.
package scratchescape

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
)

// SkylinePath is the import path of the package owning Scratch. Fixtures
// stub the same path so analyzer logic is identical in tests.
const SkylinePath = "repro/internal/skyline"

const Name = "scratchescape"

// ViewFact marks a function whose result aliases a Scratch's internal
// buffers; callers must treat the result as scratch-borrowed.
type ViewFact struct{ Why string }

func (*ViewFact) AFact() {}

func (f *ViewFact) String() string { return "scratch view: " + f.Why }

// IntoFact marks a function in the repository's *Into convention: its
// result aliases its Param-th parameter (0-based, receiver excluded).
// A call's result is then scratch-backed exactly when that argument is —
// ComputeInto(dst, ...) borrows scratch memory only if dst did.
type IntoFact struct{ Param int }

func (*IntoFact) AFact() {}

func (f *IntoFact) String() string { return fmt.Sprintf("result aliases parameter %d", f.Param) }

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "forbid skyline.Scratch pointers and scratch-backed slices from outliving\n" +
		"their call: no stores to fields/globals/maps, no channel sends, no capture\n" +
		"by go-launched closures, no returns outside Scratch's own methods",
	Run:       run,
	FactTypes: []analysis.Fact{(*ViewFact)(nil), (*IntoFact)(nil)},
}

type checker struct {
	pass *analysis.Pass
	// viewObjs maps a local var to the reason it holds scratch-backed
	// memory ("scratch buffer sc.arena", "result of sc.view", ...).
	viewObjs map[types.Object]string
	// viewFuncs maps package-local functions to the reason their result
	// is scratch-backed.
	viewFuncs map[*types.Func]string
	// intoFuncs maps package-local functions to the parameter index their
	// result aliases (the *Into convention).
	intoFuncs map[*types.Func]int
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:      pass,
		viewObjs:  map[types.Object]string{},
		viewFuncs: map[*types.Func]string{},
		intoFuncs: map[*types.Func]int{},
	}
	// Fixpoint: view-returning functions feed tainted locals feed
	// view-returning functions (call chains within the package).
	for changed := true; changed; {
		changed = false
		if c.propagateLocals() {
			changed = true
		}
		if c.summarizeFuncs() {
			changed = true
		}
	}
	// Export facts for view-returning and result-aliases-parameter
	// functions so importing packages see them, then emit diagnostics.
	for fn, why := range c.viewFuncs {
		pass.ExportObjectFact(fn, &ViewFact{Why: why})
	}
	for fn, idx := range c.intoFuncs {
		pass.ExportObjectFact(fn, &IntoFact{Param: idx})
	}
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, c.check)
	}
	return nil, nil
}

// isScratchType reports whether t (after pointer peeling) is the
// skyline Scratch type.
func isScratchType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == SkylinePath && obj.Name() == "Scratch"
}

// isScratchPtr reports whether t is *Scratch (not the value form: a
// Scratch value embedded in a caller-owned struct is ownership, not
// aliasing).
func isScratchPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	return ok && isScratchType(p.Elem())
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// tainted reports whether e is a tracked value, with the reason.
func (c *checker) tainted(e ast.Expr) (string, bool) {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && isScratchPtr(tv.Type) {
		return "*skyline.Scratch", true
	}
	return c.view(e)
}

// view reports whether e is a scratch-backed slice, with the reason.
func (c *checker) view(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		why, ok := c.viewObjs[c.pass.TypesInfo.Uses[e]]
		return why, ok
	case *ast.ParenExpr:
		return c.view(e.X)
	case *ast.SliceExpr:
		return c.view(e.X)
	case *ast.SelectorExpr:
		// A slice field read off a Scratch value or pointer.
		sel, ok := c.pass.TypesInfo.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			break
		}
		if isScratchType(sel.Recv()) && isSliceType(sel.Obj().Type()) {
			return "scratch buffer ." + e.Sel.Name, true
		}
	case *ast.CallExpr:
		// append(view, ...) may return the same backing array.
		if id, ok := e.Fun.(*ast.Ident); ok && len(e.Args) > 0 {
			if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				if b.Name() == "append" {
					return c.view(e.Args[0])
				}
				break
			}
		}
		if fn := calleeFunc(c.pass.TypesInfo, e); fn != nil {
			if why, ok := c.viewFuncs[fn]; ok {
				return "result of " + fn.Name() + " (" + why + ")", true
			}
			var fact ViewFact
			if c.pass.ImportObjectFact(fn, &fact) {
				return "result of " + fn.Name() + " (" + fact.Why + ")", true
			}
			idx, into := c.intoFuncs[fn]
			if !into {
				var ifact IntoFact
				if c.pass.ImportObjectFact(fn, &ifact) {
					idx, into = ifact.Param, true
				}
			}
			if into && idx < len(e.Args) {
				if why, ok := c.view(e.Args[idx]); ok {
					return "result of " + fn.Name() + " over " + why, true
				}
			}
		}
	}
	return "", false
}

// calleeFunc resolves a call's static callee, or nil (builtins, function
// values, interface methods).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// propagateLocals taints locals assigned from views. Returns true when
// the tainted set grew.
func (c *checker) propagateLocals() bool {
	info := c.pass.TypesInfo
	changed := false
	taint := func(id *ast.Ident, why string) {
		if id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || !isSliceType(obj.Type()) {
			return
		}
		if _, done := c.viewObjs[obj]; done {
			return
		}
		c.viewObjs[obj] = why
		changed = true
	}
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				switch {
				case len(st.Lhs) == len(st.Rhs):
					for i, lhs := range st.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						if why, ok := c.view(st.Rhs[i]); ok {
							taint(id, why)
						}
					}
				case len(st.Rhs) == 1:
					// view, err := f() — taint every slice-typed LHS.
					if why, ok := c.view(st.Rhs[0]); ok {
						for _, lhs := range st.Lhs {
							if id, ok := lhs.(*ast.Ident); ok {
								taint(id, why)
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					var rhs ast.Expr
					switch {
					case len(st.Values) == len(st.Names):
						rhs = st.Values[i]
					case len(st.Values) == 1:
						rhs = st.Values[0]
					}
					if rhs == nil {
						continue
					}
					if why, ok := c.view(rhs); ok {
						taint(name, why)
					}
				}
			}
			return true
		})
	}
	return changed
}

// summarizeFuncs marks functions returning tracked values as view
// functions. Returns true when the summary set grew.
func (c *checker) summarizeFuncs() bool {
	changed := false
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if _, done := c.viewFuncs[fn]; done {
				continue
			}
			if why, rets := c.returnsTainted(fd); rets {
				c.viewFuncs[fn] = why
				changed = true
				continue
			}
			if _, done := c.intoFuncs[fn]; done {
				continue
			}
			if idx, ok := c.returnsParam(fd); ok {
				c.intoFuncs[fn] = idx
				changed = true
			}
		}
	}
	return changed
}

// returnsParam reports the parameter index every return statement's
// first result (transitively, through appends, reslicings, and local
// chains) derives from, implementing the *Into result-aliases-argument
// summary. All returns must agree on one parameter.
func (c *checker) returnsParam(fd *ast.FuncDecl) (int, bool) {
	params := map[types.Object]int{}
	if fd.Type.Params != nil {
		idx := 0
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil && isSliceType(obj.Type()) {
					params[obj] = idx
				}
				idx++
			}
			if len(f.Names) == 0 {
				idx++
			}
		}
	}
	if len(params) == 0 {
		return 0, false
	}
	// Locals assigned from param-derived expressions, to a fixpoint.
	local := map[types.Object]int{}
	var flow func(e ast.Expr) (int, bool)
	flow = func(e ast.Expr) (int, bool) {
		switch e := e.(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[e]
			if idx, ok := params[obj]; ok {
				return idx, true
			}
			idx, ok := local[obj]
			return idx, ok
		case *ast.ParenExpr:
			return flow(e.X)
		case *ast.SliceExpr:
			return flow(e.X)
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && len(e.Args) > 0 {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					return flow(e.Args[0])
				}
			}
		}
		return 0, false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, done := local[obj]; done {
					continue
				}
				if _, isParam := params[obj]; isParam {
					continue
				}
				if idx, ok := flow(as.Rhs[i]); ok {
					local[obj] = idx
					changed = true
				}
			}
			return true
		})
	}
	agreed, found := -1, true
	sawReturn := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		sawReturn = true
		idx, ok := flow(ret.Results[0])
		if !ok || (agreed >= 0 && agreed != idx) {
			found = false
			return false
		}
		agreed = idx
		return true
	})
	if !sawReturn || !found || agreed < 0 {
		return 0, false
	}
	return agreed, true
}

// returnsTainted reports whether fd has a return statement whose value is
// a tracked view (scratch pointers are visible to callers by type alone
// and need no summary).
func (c *checker) returnsTainted(fd *ast.FuncDecl) (string, bool) {
	var why string
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		// Do not descend into nested function literals: their returns
		// are not fd's returns.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if w, ok := c.view(res); ok {
				why, found = w, true
				return false
			}
		}
		return true
	})
	return why, found
}

// scratchMethod reports whether fd is a method whose receiver is the
// Scratch type itself.
func (c *checker) scratchMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[fd.Recv.List[0].Type]
	return ok && isScratchType(tv.Type)
}

func (c *checker) report(n ast.Node, why, how string) {
	c.pass.ReportRangef(n, "%s %s; scratch memory must not outlive the call that borrowed it (copy into a caller-owned buffer) — docs/PERFORMANCE.md", why, how)
}

func (c *checker) check(n ast.Node) bool {
	switch st := n.(type) {
	case *ast.FuncDecl:
		if st.Body == nil {
			return true
		}
		if c.scratchMethod(st) {
			// Scratch's own methods are its accessor API: returns are
			// propagated as view facts, the body is still checked.
			return true
		}
		scratchFn := st
		ast.Inspect(st.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // returns inside literals are not scratchFn's
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if why, ok := c.tainted(res); ok {
					c.report(res, why, "returned from "+scratchFn.Name.Name)
				}
			}
			return true
		})
		return true
	case *ast.AssignStmt:
		n := len(st.Rhs)
		for i, lhs := range st.Lhs {
			var rhs ast.Expr
			if n == len(st.Lhs) {
				rhs = st.Rhs[i]
			} else if n == 1 {
				rhs = st.Rhs[0]
			}
			if rhs == nil {
				continue
			}
			why, ok := c.tainted(rhs)
			if !ok {
				continue
			}
			switch l := lhs.(type) {
			case *ast.SelectorExpr:
				if sel, ok := c.pass.TypesInfo.Selections[l]; ok &&
					sel.Kind() == types.FieldVal && isScratchType(sel.Recv()) {
					continue // a Scratch updating its own buffers
				}
				c.report(st, why, "stored in field "+l.Sel.Name)
			case *ast.Ident:
				obj := c.pass.TypesInfo.Uses[l]
				if obj == nil {
					obj = c.pass.TypesInfo.Defs[l]
				}
				if v, okv := obj.(*types.Var); okv && v.Parent() == c.pass.Pkg.Scope() {
					c.report(st, why, "stored in package-level variable "+l.Name)
				}
			case *ast.IndexExpr:
				if tv, ok := c.pass.TypesInfo.Types[l.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						c.report(st, why, "stored in a map")
					}
				}
			}
		}
	case *ast.CompositeLit:
		tv, ok := c.pass.TypesInfo.Types[st]
		if !ok {
			return true
		}
		t := tv.Type
		if p, okp := t.Underlying().(*types.Pointer); okp {
			t = p.Elem()
		}
		_, isStruct := t.Underlying().(*types.Struct)
		_, isMap := t.Underlying().(*types.Map)
		if !isStruct && !isMap {
			return true
		}
		if isScratchType(t) {
			return true
		}
		for _, el := range st.Elts {
			v := el
			if kv, okkv := el.(*ast.KeyValueExpr); okkv {
				v = kv.Value
			}
			if why, okt := c.tainted(v); okt {
				if isMap {
					c.report(v, why, "stored in a map literal")
				} else {
					c.report(v, why, "stored in a struct literal field")
				}
			}
		}
	case *ast.SendStmt:
		if why, ok := c.tainted(st.Value); ok {
			c.report(st, why, "sent on a channel")
		}
	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			if why, ok := c.tainted(arg); ok {
				c.report(arg, why, "passed to a go-launched call")
			}
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.checkGoCapture(lit)
		}
	}
	return true
}

// checkGoCapture flags tracked values captured by a goroutine-launched
// closure: identifiers used inside the literal but declared outside it.
func (c *checker) checkGoCapture(lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the literal (params, locals)
		}
		var why string
		if isScratchPtr(obj.Type()) {
			why = "*skyline.Scratch"
		} else if w, okv := c.viewObjs[obj]; okv {
			why = w
		} else {
			return true
		}
		seen[obj] = true
		c.report(id, why, "captured by a go-launched closure")
		return true
	})
}
