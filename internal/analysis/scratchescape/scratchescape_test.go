package scratchescape_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/scratchescape"
)

// The skyline stub is listed first so its ViewFact/IntoFact exports are
// in the shared fact store before package a (the importer) is analyzed —
// the same dependency order the mldcslint driver guarantees.
func TestScratchEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), scratchescape.Analyzer,
		"repro/internal/skyline", "a")
}
