// Package skyline stubs repro/internal/skyline under its real import
// path so the analyzer's type-identity checks behave exactly as they do
// against the real package.
package skyline

// Arc mirrors the real arc record.
type Arc struct{ From, To float64 }

// Skyline mirrors the real named slice type.
type Skyline []Arc

// Scratch mirrors the real scratch space: arena-backed buffers reused
// across calls.
type Scratch struct {
	arena []Arc
	out   Skyline
}

// New hands out a fresh scratch; the caller owns its lifetime.
func New() *Scratch {
	//mldcslint:allow scratchescape constructor transfers ownership to the caller
	return &Scratch{}
}

// view returns the first n arena arcs (an alias, not a copy).
func (sc *Scratch) view(n int) []Arc { return sc.arena[:n] }

// Frontier returns the current frontier, aliasing sc's arena. The
// analyzer must export a ViewFact for this so importers treat the result
// as borrowed.
func (sc *Scratch) Frontier() []Arc { return sc.view(len(sc.arena)) }

// ComputeInto writes the cover into dst and returns it (the *Into
// convention: the result aliases dst, so it is borrowed only when dst
// is).
func ComputeInto(dst Skyline, sc *Scratch) Skyline {
	dst = dst[:0]
	for _, a := range sc.arena {
		dst = append(dst, a)
	}
	return dst
}
