// Package a exercises the scratch-escape rules from an importing
// package: every tracked value here is known only through cross-package
// facts (ViewFact on Frontier, IntoFact on ComputeInto) or the *Scratch
// type itself.
package a

import "repro/internal/skyline"

type cache struct {
	frontier []skyline.Arc
	sc       *skyline.Scratch
}

var global []skyline.Arc

var registry = map[string][]skyline.Arc{}

func leakField(c *cache, sc *skyline.Scratch) {
	v := sc.Frontier()
	c.frontier = v // want `stored in field frontier`
	c.sc = sc      // want `stored in field sc`
}

func leakGlobal(sc *skyline.Scratch) {
	global = sc.Frontier() // want `stored in package-level variable global`
}

func leakMap(sc *skyline.Scratch) {
	registry["cur"] = sc.Frontier() // want `stored in a map`
}

func leakReturn(sc *skyline.Scratch) []skyline.Arc {
	v := sc.Frontier()
	return v // want `returned from leakReturn`
}

func leakChan(sc *skyline.Scratch, ch chan []skyline.Arc) {
	ch <- sc.Frontier() // want `sent on a channel`
}

func leakGo(sc *skyline.Scratch) {
	v := sc.Frontier()
	done := make(chan struct{})
	go func() {
		_ = v  // want `captured by a go-launched closure`
		_ = sc // want `captured by a go-launched closure`
		close(done)
	}()
	<-done
}

// okPassDown: passing scratch down the stack bounds the borrow to the
// call — legal.
func okPassDown(sc *skyline.Scratch, dst skyline.Skyline) int {
	out := skyline.ComputeInto(dst, sc)
	return len(out)
}

// okInto: ComputeInto's result aliases dst (IntoFact), and dst is
// caller-owned here, so returning it is legal.
func okInto(sc *skyline.Scratch, dst skyline.Skyline) skyline.Skyline {
	out := skyline.ComputeInto(dst, sc)
	return out
}

// leakIntoView: the same call becomes a leak when dst itself is a
// borrowed view.
func leakIntoView(sc *skyline.Scratch) skyline.Skyline {
	borrowed := sc.Frontier()
	out := skyline.ComputeInto(borrowed, sc)
	return out // want `returned from leakIntoView`
}

// okCopy: copying into caller-owned memory launders the borrow.
func okCopy(sc *skyline.Scratch) []skyline.Arc {
	v := sc.Frontier()
	own := make([]skyline.Arc, len(v))
	copy(own, v)
	return own
}
