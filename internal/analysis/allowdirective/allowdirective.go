// Package allowdirective implements the mldcslint escape hatch.
//
// A diagnostic from analyzer <name> is suppressed when the line it points
// at, or the line immediately above it, carries a comment of the form
//
//	//mldcslint:allow <name> <reason>
//
// The <name> field may list several analyzers separated by commas
// (no spaces). The reason is free text; it is not machine-checked, but
// reviewers should reject a directive without one. See
// docs/STATIC_ANALYSIS.md.
package allowdirective

import (
	"go/ast"
	"go/token"
	"strings"
)

const prefix = "mldcslint:allow"

// Allowed reports whether a diagnostic from the named analyzer at pos is
// suppressed by an //mldcslint:allow directive in file. The file must be
// the one containing pos and must have been parsed with comments.
func Allowed(fset *token.FileSet, file *ast.File, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			// The canonical form has no space after // (a Go directive
			// comment), but tolerate one.
			text = strings.TrimLeft(text, " \t")
			if !strings.HasPrefix(text, prefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, prefix))
			if len(fields) == 0 {
				continue
			}
			match := false
			for _, n := range strings.Split(fields[0], ",") {
				if n == name {
					match = true
					break
				}
			}
			if !match {
				continue
			}
			if cl := fset.Position(c.Pos()).Line; cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// FileFor returns the *ast.File among files that contains pos, or nil.
func FileFor(fset *token.FileSet, files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file. Most mldcslint
// analyzers exempt test files: tests exercise boundary values on purpose
// and assert exact outcomes the library must approximate.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
