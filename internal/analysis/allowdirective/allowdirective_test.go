package allowdirective_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis/allowdirective"
)

const src = `package p

func f(a, b float64) {
	_ = a == b //mldcslint:allow floatcmp same-line reason
	//mldcslint:allow floatcmp line-above reason
	_ = a == b
	_ = a == b //mldcslint:allow epspolicy wrong analyzer
	//mldcslint:allow floatcmp,epspolicy multi-name reason
	_ = a == b
	//mldcslint:allow floatcmp too far away

	_ = a == b
	_ = a == b // mldcslint:allow floatcmp tolerated leading space
}
`

// exprLines returns the line of each `a == b` expression in order.
func exprPositions(t *testing.T, fset *token.FileSet, file *ast.File) []token.Pos {
	var out []token.Pos
	ast.Inspect(file, func(n ast.Node) bool {
		if e, ok := n.(*ast.BinaryExpr); ok && e.Op == token.EQL {
			out = append(out, e.Pos())
		}
		return true
	})
	if len(out) != 6 {
		t.Fatalf("found %d comparisons, want 6", len(out))
	}
	return out
}

func TestAllowed(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pos := exprPositions(t, fset, file)
	cases := []struct {
		name string
		pos  token.Pos
		want bool
		why  string
	}{
		{"floatcmp", pos[0], true, "same-line directive"},
		{"floatcmp", pos[1], true, "directive on the line above"},
		{"floatcmp", pos[2], false, "directive names a different analyzer"},
		{"epspolicy", pos[2], true, "directive names this analyzer"},
		{"floatcmp", pos[3], true, "comma-separated multi-name directive"},
		{"epspolicy", pos[3], true, "comma-separated multi-name directive"},
		{"floatcmp", pos[4], false, "directive two lines above does not apply"},
		{"floatcmp", pos[5], true, "same-line directive with a space after //"},
	}
	for _, c := range cases {
		if got := allowdirective.Allowed(fset, file, c.pos, c.name); got != c.want {
			t.Errorf("Allowed(%s at %s) = %v, want %v (%s)",
				c.name, fset.Position(c.pos), got, c.want, c.why)
		}
	}
}

func TestInTestFile(t *testing.T) {
	fset := token.NewFileSet()
	f1, _ := parser.ParseFile(fset, "x_test.go", "package p", 0)
	f2, _ := parser.ParseFile(fset, "x.go", "package p", 0)
	if !allowdirective.InTestFile(fset, f1.Pos()) {
		t.Error("x_test.go not recognized as a test file")
	}
	if allowdirective.InTestFile(fset, f2.Pos()) {
		t.Error("x.go recognized as a test file")
	}
}
