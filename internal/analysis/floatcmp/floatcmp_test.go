package floatcmp_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatcmp"
)

// TestFloatCmp runs the mixed fixture (package a: flagged equalities, an
// allowed sentinel, an exempt _test.go file) and the exempt predicates
// layer stub.
func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), floatcmp.Analyzer,
		"a", "repro/internal/geom")
}
