// Package a holds the floatcmp fixtures: exact float equality the
// analyzer must flag, plus the sentinel/constant/integer cases it must
// leave alone.
package a

func bad(x, y float64) bool {
	return x == y // want `exact floating-point ==`
}

func bad32(x, y float32) bool {
	return x != y // want `exact floating-point !=`
}

type radius float64

func badNamed(a, b radius) bool {
	return a == b // want `exact floating-point ==`
}

// badMixed compares a variable to an untyped float constant — still an
// exact comparison of a runtime value.
func badMixed(x float64) bool {
	return x == 0.5 // want `exact floating-point ==`
}

func sentinel(rho float64) bool {
	return rho == 0 //mldcslint:allow floatcmp zero is the unset-sentinel in this fixture
}

func ints(a, b int) bool { return a == b }

func strs(a, b string) bool { return a == b }

const c1, c2 = 1.5, 2.5

// constFold compares two compile-time constants: exact by definition.
var constFold = c1 == c2
