package a

// Test files are exempt: tests assert exact outcomes on purpose
// (byte-identity regressions, golden values).
func testOnlyEquality(x, y float64) bool {
	return x == y
}
