// Package geom stubs the predicates layer: it implements the tolerant
// comparisons, so exact float comparisons here are exempt.
package geom

func exactTie(a, b float64) bool { return a == b }
