// Package floatcmp flags exact equality comparisons (== and !=) between
// floating-point expressions outside internal/geom and _test.go files.
//
// The repository's numeric discipline (docs/NUMERICS.md) routes every
// tolerance-bearing comparison through internal/geom; an exact float
// equality elsewhere is either a bug (two independently-rounded values
// will rarely be bit-identical) or an intentional sentinel check, which
// must be annotated:
//
//	if rho == 0 { //mldcslint:allow floatcmp rho==0 is the unset sentinel
//
// Comparisons where both operands are compile-time constants are exact by
// definition and are not flagged.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/allowdirective"
	"repro/internal/analysis/epspolicy"
)

const Name = "floatcmp"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "flag exact ==/!= between floating-point expressions outside internal/geom;\n" +
		"use geom predicates (LengthEq, RhoCmp, AngleEq) or annotate //mldcslint:allow floatcmp <why>",
	Run: run,
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == epspolicy.GeomPath {
		return nil, nil // geom implements the tolerant comparisons themselves
	}
	for _, file := range pass.Files {
		if allowdirective.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			e, ok := n.(*ast.BinaryExpr)
			if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
				return true
			}
			tvx := pass.TypesInfo.Types[e.X]
			tvy := pass.TypesInfo.Types[e.Y]
			if tvx.Value != nil && tvy.Value != nil {
				return true // constant folding is exact
			}
			if !isFloat(tvx.Type) && !isFloat(tvy.Type) {
				return true
			}
			if allowdirective.Allowed(pass.Fset, file, e.Pos(), Name) {
				return true
			}
			pass.ReportRangef(e, "exact floating-point %s; use a geom predicate (LengthEq, RhoCmp, AngleEq) or annotate //mldcslint:allow floatcmp <why> — docs/NUMERICS.md", e.Op)
			return true
		})
	}
	return nil, nil
}
