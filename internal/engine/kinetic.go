package engine

import (
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// This file is the engine half of kinetic repair (the skyline half lives in
// internal/skyline/kinetic.go). Update used to recompute every dirty node's
// skyline from scratch; under continuous mobility most dirty nodes did not
// move themselves — a neighbor slid a little — so their cached skyline is
// one or two arc surgeries away from correct. updateNode diffs the node's
// current neighborhood against the kinetic state computeNode saved
// (gained / lost / moved neighbors) and patches the cached skyline with
// InsertDiskInto / RemoveDiskInto / MoveDiskInto instead of rebuilding it.
//
// The repair is guarded three ways, and every guard falls back to the
// always-correct full recompute: (1) nodes that moved themselves, have no
// valid kinetic state, or whose diff is too large to plausibly beat a
// rebuild recompute up front; (2) any degenerate decision during surgery —
// an envelope tie within geom.RhoEps, a dropped sliver, a hub-tangent disk
// — sets the tie flag and abandons the repair, because the repaired
// skyline could legitimately pick a different (equally maximal)
// representative than a fresh compute, and the engine's contract is
// element-identical forwarding sets; (3) the repaired skyline must pass
// the same runtime invariant check a fresh one does. Fallbacks are counted
// in Stats.RepairFallbacks.

// repairMaxDiffFactor gates the repair: surgery runs only when
// changes * repairMaxDiffFactor ≤ |cached disks|. Each surgery touches the
// arcs its span overlaps plus a candidate scan, so past roughly a third of
// the neighborhood the O(k log k) rebuild wins.
const repairMaxDiffFactor = 3

// updateNode brings node u up to date during an Update pass: kinetic
// repair when the cached state allows it, full recompute otherwise.
// movedMark is Update's per-pass "did this node move" table.
//
//mldcs:hotpath
func (e *Engine) updateNode(u int, sc *scratch, movedMark []bool) error {
	st := &e.kin[u]
	if e.cfg.DisableRepair || !st.valid || movedMark[u] {
		return e.recomputeNode(u, sc)
	}

	// Diff the neighborhood from Update's per-node candidate list instead
	// of a grid query: for a node that did not move itself, link changes
	// can only come from this pass's movers, and Update recorded exactly
	// those movers in e.updCand[u] — the old-neighbor loop covers leavers
	// and stayers (the link relation is symmetric: dist within both
	// radii), the visit-from-new-position loop covers joiners. The direct
	// predicate below is the grid gather's, bit for bit: VisitWithin
	// filters its cell window with the same geom.LinkWithin2 call before
	// the Reaches check.
	hub := e.nodes[u]
	sc.oldIDs = append(sc.oldIDs[:0], st.ids...)
	sort.Ints(sc.oldIDs)
	sc.cands = append(sc.cands[:0], e.updCand[u]...)
	sort.Ints(sc.cands)
	sc.lost, sc.gained, sc.movedNb = sc.lost[:0], sc.gained[:0], sc.movedNb[:0]
	prev := -1
	for _, c := range sc.cands {
		if c == prev {
			continue // updCand may list a mover twice (old and new neighbor)
		}
		prev = c
		nc := e.nodes[c]
		linked := geom.LinkWithin2(nc.Pos.Dist2(hub.Pos), hub.Radius) &&
			geom.Reaches(nc.Pos, hub.Pos, nc.Radius)
		i := sort.SearchInts(sc.oldIDs, c)
		was := i < len(sc.oldIDs) && sc.oldIDs[i] == c
		switch {
		case linked && was:
			sc.movedNb = append(sc.movedNb, c)
		case linked:
			sc.gained = append(sc.gained, c)
		case was:
			sc.lost = append(sc.lost, c)
		}
	}
	// Rebuild the current neighbor list: oldIDs minus lost plus gained.
	// All three are sorted, so one linear merge keeps sc.ids sorted —
	// identical to what the grid gather plus sort produced.
	sc.ids = sc.ids[:0]
	gi, li := 0, 0
	for _, v := range sc.oldIDs {
		if li < len(sc.lost) && sc.lost[li] == v {
			li++
			continue
		}
		for gi < len(sc.gained) && sc.gained[gi] < v {
			sc.ids = append(sc.ids, sc.gained[gi])
			gi++
		}
		sc.ids = append(sc.ids, v)
	}
	sc.ids = append(sc.ids, sc.gained[gi:]...)
	changes := len(sc.lost) + len(sc.gained) + len(sc.movedNb)
	if changes == 0 {
		// Dirty but unchanged: a neighbor moved without crossing any link
		// boundary of u... which still changes u's local set only if the
		// mover is a neighbor — and then it is in movedNb. Nothing to do.
		e.nbrs[u] = keepInts(e.nbrs[u], sc.ids)
		e.repaired.Add(1)
		return nil
	}
	if changes*repairMaxDiffFactor > len(st.disks) {
		return e.recomputeNode(u, sc)
	}

	var nodeSpan obs.Span
	m := engInstr.Load()
	var t0 time.Time
	if m != nil {
		//mldcslint:allow hotpathalloc span begin runs only with instrumentation attached; sampling keeps the steady path quiet
		nodeSpan = m.spanRepair.Begin()
		t0 = time.Now()
	}

	// Arc surgery. Order matters only for bookkeeping: removals first
	// (swap-compacting the parallel ids/disks arrays), then in-place moves,
	// then insertions at the tail. Any tie abandons the repair.
	tie := false
	for _, v := range sc.lost {
		slot := findSlot(st.ids, v)
		diskIdx := slot + 1
		sc.ksl = sc.sky.RemoveDiskInto(sc.ksl, st.disks, st.sl, diskIdx, &tie)
		st.sl = append(st.sl[:0], sc.ksl...)
		last := len(st.disks) - 1
		if diskIdx != last {
			st.disks[diskIdx] = st.disks[last]
			st.ids[slot] = st.ids[last-1]
			for i := range st.sl {
				if st.sl[i].Disk == last {
					st.sl[i].Disk = diskIdx
				}
			}
		}
		st.disks = st.disks[:last]
		st.ids = st.ids[:last-1]
		if tie {
			break
		}
	}
	if !tie {
		for _, v := range sc.movedNb {
			diskIdx := findSlot(st.ids, v) + 1
			st.disks[diskIdx] = e.nodes[v].Disk().Translate(hub.Pos)
			sc.ksl = sc.sky.MoveDiskInto(sc.ksl, st.disks, st.sl, diskIdx, &tie)
			st.sl = append(st.sl[:0], sc.ksl...)
			if tie {
				break
			}
		}
	}
	if !tie {
		for _, v := range sc.gained {
			st.ids = append(st.ids, v)
			st.disks = append(st.disks, e.nodes[v].Disk().Translate(hub.Pos))
			sc.ksl = sc.sky.InsertDiskInto(sc.ksl, st.disks, st.sl, len(st.disks)-1, &tie)
			st.sl = append(st.sl[:0], sc.ksl...)
			if tie {
				break
			}
		}
	}
	if !tie {
		if ierr := checkInvariants(st.sl, len(st.disks)); ierr != nil {
			tie = true
		}
	}
	if tie {
		st.valid = false
		e.repairFB.Add(1)
		if nodeSpan.Sampled() {
			//mldcslint:allow hotpathalloc span finalization runs only for sampled spans, off the steady path
			nodeSpan.End(map[string]any{"node": u, "changes": changes, "abandoned": true})
		}
		return e.recomputeNode(u, sc)
	}

	// Publish: same output shape as computeNode, with cover positions
	// mapped through st.ids instead of the canonical tuples. The repair
	// path never consults or feeds the cache — there is no fingerprint to
	// key it by without re-canonicalizing, which is the cost being skipped.
	e.nbrs[u] = keepInts(e.nbrs[u], sc.ids)
	sc.cover = st.sl.AppendSet(sc.cover)
	hubIn := false
	sc.fwdBuf = sc.fwdBuf[:0]
	for _, i := range sc.cover {
		if i == 0 {
			hubIn = true
			continue
		}
		sc.fwdBuf = append(sc.fwdBuf, st.ids[i-1])
	}
	sort.Ints(sc.fwdBuf)
	sc.fwdBuf = mutateForwarding(sc.fwdBuf, u)
	e.fwd[u] = keepInts(e.fwd[u], sc.fwdBuf)
	e.hubIn[u] = hubIn
	e.repaired.Add(1)
	if m != nil {
		m.repairSeconds.Observe(time.Since(t0))
		if nodeSpan.Sampled() {
			//mldcslint:allow hotpathalloc span finalization runs only for sampled spans, off the steady path
			nodeSpan.End(map[string]any{"node": u, "changes": changes, "arcs": len(st.sl)})
		}
	}
	return nil
}

// recomputeNode is updateNode's slow path: the ordinary full per-node
// compute (which re-seeds the kinetic state as a side effect), counted.
//
//mldcs:hotpath
func (e *Engine) recomputeNode(u int, sc *scratch) error {
	e.recomputed.Add(1)
	return e.computeNode(u, sc)
}

// findSlot returns the position of v in ids. The caller guarantees
// presence; ids is in cache order, so this is a linear scan — bounded by
// the neighborhood size, and only run for the handful of changed
// neighbors of a repaired node.
//
//mldcs:hotpath
func findSlot(ids []int, v int) int {
	for i, id := range ids {
		if id == v {
			return i
		}
	}
	panic("engine: kinetic state lost a neighbor id")
}
