package engine

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/geom"
	"repro/internal/mldcs"
	"repro/internal/network"
)

// nodesFromBytes deterministically decodes a byte string into a valid node
// set: each 6-byte chunk becomes one node on an 8×8 region with radius in
// [1, 2]. Repeated chunks produce exactly co-located nodes, so the fuzzer
// reaches the cache's duplicate-fingerprint paths and the skyline's
// degenerate tie-breaks.
func nodesFromBytes(data []byte) []network.Node {
	var nodes []network.Node
	for len(data) >= 6 && len(nodes) < 48 {
		chunk := data[:6]
		data = data[6:]
		u := binary.LittleEndian.Uint16(chunk[0:2])
		v := binary.LittleEndian.Uint16(chunk[2:4])
		w := binary.LittleEndian.Uint16(chunk[4:6])
		nodes = append(nodes, network.Node{
			ID:     len(nodes),
			Pos:    geom.Pt(float64(u)/65535*8, float64(v)/65535*8),
			Radius: 1 + float64(w)/65535,
		})
	}
	if len(nodes) == 0 {
		nodes = []network.Node{{ID: 0, Pos: geom.Pt(0, 0), Radius: 1}}
	}
	return nodes
}

// FuzzEngineVsSequential feeds arbitrary node sets to the engine across
// worker counts and cache settings and cross-checks every output against
// the sequential per-node pipeline (network.Build + Graph.LocalSet +
// mldcs.Solve). Any divergence — neighborhoods, forwarding sets, or hub
// flags — is a bug in the sharding, the canonicalization, or the cache.
func FuzzEngineVsSequential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	seed := make([]byte, 6*12)
	for i := range seed {
		seed[i] = byte(i * 53)
	}
	f.Add(seed)
	// Two co-located triples: identical neighborhoods exercise cache hits.
	cluster := append(
		bytes.Repeat([]byte{0, 32, 0, 32, 0, 128}, 3),
		bytes.Repeat([]byte{0, 192, 0, 192, 0, 128}, 3)...)
	f.Add(cluster)
	f.Fuzz(func(t *testing.T, data []byte) {
		nodes := nodesFromBytes(data)
		g, err := network.Build(nodes, network.Bidirectional)
		if err != nil {
			t.Fatalf("valid-by-construction nodes rejected: %v", err)
		}
		fwd := make([][]int, g.Len())
		hubIn := make([]bool, g.Len())
		for u := 0; u < g.Len(); u++ {
			ls, ids, err := g.LocalSet(u)
			if err != nil {
				t.Fatal(err)
			}
			r, err := mldcs.Solve(ls)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range r.NeighborCover() {
				fwd[u] = append(fwd[u], ids[i])
			}
			hubIn[u] = r.ContainsHub()
		}
		for _, workers := range []int{1, 3} {
			for _, cache := range []bool{false, true} {
				res, err := New(Config{Workers: workers, Cache: cache}).Compute(nodes)
				if err != nil {
					t.Fatalf("workers=%d cache=%v: %v", workers, cache, err)
				}
				for u := range nodes {
					if !equalSets(res.Neighbors[u], g.Neighbors(u)) {
						t.Fatalf("workers=%d cache=%v: node %d neighbors = %v, want %v",
							workers, cache, u, res.Neighbors[u], g.Neighbors(u))
					}
					if !equalSets(res.Forwarding[u], fwd[u]) {
						t.Fatalf("workers=%d cache=%v: node %d forwarding = %v, want %v",
							workers, cache, u, res.Forwarding[u], fwd[u])
					}
					if res.HubInCover[u] != hubIn[u] {
						t.Fatalf("workers=%d cache=%v: node %d hubInCover = %v, want %v",
							workers, cache, u, res.HubInCover[u], hubIn[u])
					}
				}
			}
		}
	})
}
