//go:build mldcsmutate

package engine

import (
	"math/rand"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/checker"
	"repro/internal/analysis/snapshotmut"
	"repro/internal/geom"
	"repro/internal/network"
)

// forwardingConsistent is the forwarding ⊆ neighbors invariant from
// TestSnapshotConsistencyUnderUpdate's checkSnapshot, reduced to a
// predicate.
func forwardingConsistent(r *Result) bool {
	for u := range r.Forwarding {
		nbrs := r.Neighbors[u]
		j := 0
		for _, f := range r.Forwarding[u] {
			for j < len(nbrs) && nbrs[j] < f {
				j++
			}
			if j >= len(nbrs) || nbrs[j] != f {
				return false
			}
		}
	}
	return true
}

// TestSnapshotConsistencyUnderUpdateMutation extends the epoch-snapshot
// contract test to the mutation build: mutateSnapshot writes through a
// published *Result, and the same consistency predicate the reader
// goroutines run must observe the corruption. A pass here proves the
// runtime side of the contract test is sensitive to the write class
// snapshotmut forbids.
func TestSnapshotConsistencyUnderUpdateMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes := make([]network.Node, 60)
	for i := range nodes {
		nodes[i] = network.Node{
			ID:     i,
			Pos:    geom.Pt(rng.Float64()*4, rng.Float64()*4),
			Radius: 0.5 + rng.Float64(),
		}
	}
	e := New(Config{Cache: true})
	first, err := e.Compute(nodes)
	if err != nil {
		t.Fatal(err)
	}
	var latest atomic.Pointer[Result]
	latest.Store(first)
	if !forwardingConsistent(latest.Load()) {
		t.Fatal("fresh snapshot already inconsistent; the canary scenario is broken")
	}
	if !mutateSnapshot(&latest) {
		t.Fatal("canary found no forwarding set to corrupt; grow the scenario")
	}
	if forwardingConsistent(latest.Load()) {
		t.Fatal("canary write through the published snapshot was not observable; the consistency check would miss real snapshot mutation")
	}
}

// TestSnapshotMutFlagsCanary is the static half: linting the mldcsmutate
// build of this package with snapshotmut must flag the canary write in
// mutate_snapshot_on.go at its exact line, unsuppressed. If the analyzer
// regresses — or someone quietly allows the write — this fails.
func TestSnapshotMutFlagsCanary(t *testing.T) {
	src, err := os.ReadFile("mutate_snapshot_on.go")
	if err != nil {
		t.Fatal(err)
	}
	wantLine := 0
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "snapshotmut canary write") {
			wantLine = i + 1
			break
		}
	}
	if wantLine == 0 {
		t.Fatal("canary write marker not found in mutate_snapshot_on.go")
	}

	pkgs, err := checker.LoadTags([]string{"repro/internal/engine"}, "mldcsmutate")
	if err != nil {
		t.Fatal(err)
	}
	diags, _, err := checker.RunSuite([]*analysis.Analyzer{snapshotmut.Analyzer}, pkgs, checker.NewFactStore())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer != snapshotmut.Name || !strings.HasSuffix(d.Position.Filename, "mutate_snapshot_on.go") {
			continue
		}
		if d.Position.Line != wantLine {
			t.Errorf("snapshotmut flagged %s, want line %d", d.Position, wantLine)
			continue
		}
		if d.Allowed {
			t.Errorf("canary diagnostic is suppressed with //mldcslint:allow; the canary must stay unsuppressed: %s", d)
			continue
		}
		found = true
	}
	if !found {
		t.Fatalf("snapshotmut did not flag the canary write at mutate_snapshot_on.go:%d; got %v", wantLine, diags)
	}
}
