//go:build mldcsmutate

package engine

import "sync/atomic"

// mutateSnapshot is the snapshot-immutability canary: it loads the
// published *Result and writes through it — the exact bug class
// snapshotmut rejects statically and TestSnapshotConsistencyUnderUpdate
// observes at runtime. The write is deliberately NOT suppressed with
// //mldcslint:allow: the canary test lints this build and fails if
// snapshotmut ever stops flagging it. Never ships — the mldcsmutate tag
// exists only for mutation-sensitivity runs (see docs/TESTING.md).
func mutateSnapshot(latest *atomic.Pointer[Result]) bool {
	r := latest.Load()
	for u := range r.Forwarding {
		if len(r.Forwarding[u]) > 0 {
			r.Forwarding[u][0] = -1 // snapshotmut canary write
			return true
		}
	}
	return false
}
