package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/skyline"
)

// injectInvariantFailure swaps the engine's runtime invariant check for
// one that rejects every envelope computed over at least minDisks disks,
// simulating the degenerate configurations (cocircular centers,
// near-tangent disks) that break the skyline's assumptions under exact
// arithmetic. The original check is restored on cleanup.
func injectInvariantFailure(t *testing.T, minDisks int) {
	t.Helper()
	orig := checkInvariants
	checkInvariants = func(sl skyline.Skyline, n int) error {
		if n >= minDisks {
			return fmt.Errorf("injected degeneracy: %d disks", n)
		}
		return orig(sl, n)
	}
	t.Cleanup(func() { checkInvariants = orig })
}

// fallbackTestNodes is a 4-node clique plus one isolated node: every
// clique member's local set has 3 neighbor disks (4 disks total), the
// isolated node has just its own.
func fallbackTestNodes() []network.Node {
	return []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 2},
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 2},
		{ID: 2, Pos: geom.Pt(0, 1), Radius: 2},
		{ID: 3, Pos: geom.Pt(1, 1), Radius: 2},
		{ID: 4, Pos: geom.Pt(50, 50), Radius: 1},
	}
}

// TestFallbackOnInvariantViolation injects an invariant failure for every
// multi-disk local set and verifies the degeneracy-safe path end to end:
// the affected nodes get the full local set (all neighbors forward, hub
// disk kept), Stats counts the events, the engine_fallback_total metric
// rises, and one engine_fallback event per node lands in the JSONL trace.
func TestFallbackOnInvariantViolation(t *testing.T) {
	injectInvariantFailure(t, 2)

	reg := obs.NewRegistry()
	var trace bytes.Buffer
	sink := obs.NewEventSink(&trace)
	Instrument(reg, sink)
	defer Instrument(nil, nil)

	nodes := fallbackTestNodes()
	res, err := New(Config{Workers: 2}).Compute(nodes)
	if err != nil {
		t.Fatal(err)
	}

	if res.Stats.Fallbacks != 4 {
		t.Fatalf("Stats.Fallbacks = %d, want 4 (the clique nodes)", res.Stats.Fallbacks)
	}
	for u := 0; u < 4; u++ {
		if !equalSets(res.Forwarding[u], res.Neighbors[u]) {
			t.Errorf("node %d: fallback forwarding = %v, want full neighbor set %v",
				u, res.Forwarding[u], res.Neighbors[u])
		}
		if !res.HubInCover[u] {
			t.Errorf("node %d: fallback must keep the hub disk in the cover", u)
		}
	}
	if len(res.Forwarding[4]) != 0 {
		t.Errorf("isolated node got forwarding set %v, want empty", res.Forwarding[4])
	}

	snap := reg.Snapshot()
	if got := snap.Counters[MetricFallbacks]; got != 4 {
		t.Errorf("%s = %d, want 4", MetricFallbacks, got)
	}

	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var events int
	for _, line := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ev.Type != EventFallback {
			continue
		}
		events++
		if _, ok := ev.Fields["node"]; !ok {
			t.Errorf("fallback event missing node field: %v", ev.Fields)
		}
		cause, _ := ev.Fields["cause"].(string)
		if !strings.Contains(cause, "injected degeneracy") {
			t.Errorf("fallback event cause = %q, want the invariant error", cause)
		}
	}
	if events != 4 {
		t.Errorf("trace has %d %s events, want 4", events, EventFallback)
	}
}

// TestFallbackNotCached: a degenerate answer must never enter the skyline
// cache, or a later bit-identical healthy neighborhood would replay it.
// All four clique nodes have bit-identical canonical neighborhoods, so a
// cached fallback would surface as cache hits; none may occur.
func TestFallbackNotCached(t *testing.T) {
	injectInvariantFailure(t, 2)
	e := New(Config{Workers: 1, Cache: true})
	res, err := e.Compute([]network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 2},
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 2},
		{ID: 2, Pos: geom.Pt(2, 0), Radius: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fallbacks == 0 {
		t.Fatal("expected fallbacks, got none")
	}
	if e.CacheLen() != 0 {
		t.Fatalf("cache holds %d entries after fallback-only pass, want 0", e.CacheLen())
	}
	if res.Stats.CacheHits != 0 {
		t.Fatalf("cache hits = %d on fallback results, want 0", res.Stats.CacheHits)
	}
}

// TestFallbackCountedPerPass: Update must report its own pass's fallback
// count, not an accumulated total, and recovery (the check passing again)
// must clear the counter and restore minimal covers.
func TestFallbackCountedPerPass(t *testing.T) {
	orig := checkInvariants
	failing := true
	checkInvariants = func(sl skyline.Skyline, n int) error {
		if failing && n >= 2 {
			return fmt.Errorf("injected degeneracy")
		}
		return orig(sl, n)
	}
	t.Cleanup(func() { checkInvariants = orig })

	nodes := fallbackTestNodes()
	e := New(Config{Workers: 1})
	res, err := e.Compute(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fallbacks != 4 {
		t.Fatalf("Compute fallbacks = %d, want 4", res.Stats.Fallbacks)
	}

	// Heal the check and nudge one clique node: only the dirty
	// neighborhoods recompute, and the fresh pass must report zero
	// fallbacks while producing valid (recomputed) covers for them.
	failing = false
	moved := append([]network.Node(nil), nodes...)
	moved[0].Pos = geom.Pt(0.125, 0)
	res, err = e.Update(moved)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fallbacks != 0 {
		t.Fatalf("Update fallbacks = %d, want 0 after recovery", res.Stats.Fallbacks)
	}
	// The recomputed nodes must now agree with a from-scratch engine.
	fresh, err := New(Config{Workers: 1}).Compute(moved)
	if err != nil {
		t.Fatal(err)
	}
	for u := range moved {
		if u == 4 { // untouched isolated node
			continue
		}
		if !equalSets(res.Forwarding[u], fresh.Forwarding[u]) {
			t.Errorf("node %d: post-recovery forwarding = %v, fresh compute = %v",
				u, res.Forwarding[u], fresh.Forwarding[u])
		}
	}
}

// TestCheckInvariantsRejectsBrokenSkylines exercises the real (uninjected)
// invariant check against hand-built violations of each class: arc-count
// blowup past the Lemma 8 bound, a gap in the breakpoint partition, and an
// uncovered ray.
func TestCheckInvariantsRejectsBrokenSkylines(t *testing.T) {
	good, err := skyline.Compute([]geom.Disk{
		{C: geom.Pt(0, 0), R: 1},
		{C: geom.Pt(0.5, 0), R: 1.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := good.CheckInvariants(2); err != nil {
		t.Fatalf("healthy skyline rejected: %v", err)
	}

	// Lemma 8 violation: 5 alternating arcs over n=1 (bound 2).
	var blown skyline.Skyline
	step := geom.TwoPi / 5
	for i := 0; i < 5; i++ {
		blown = append(blown, skyline.Arc{
			Start: float64(i) * step, End: float64(i+1) * step, Disk: i % 2,
		})
	}
	blown[len(blown)-1].End = geom.TwoPi
	if err := blown.CheckInvariants(1); err == nil {
		t.Error("arc-count violation passed CheckInvariants")
	}

	// Non-partitioning breakpoints: a gap between consecutive arcs.
	gap := skyline.Skyline{
		{Start: 0, End: 2, Disk: 0},
		{Start: 3, End: geom.TwoPi, Disk: 1},
	}
	if err := gap.CheckInvariants(2); err == nil {
		t.Error("breakpoint gap passed CheckInvariants")
	}

	// Uncovered rays: the skyline stops short of 2π.
	short := skyline.Skyline{{Start: 0, End: 3, Disk: 0}}
	if err := short.CheckInvariants(1); err == nil {
		t.Error("uncovered ray passed CheckInvariants")
	}
}
