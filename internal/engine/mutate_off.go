//go:build !mldcsmutate

package engine

// Mutation testing hook. The default build compiles the hook away; the
// `mldcsmutate` build tag (mutate_on.go) swaps in a deliberate forwarding
// bug so the system-level harnesses can demonstrate they would catch one.
// See docs/TESTING.md ("Mutation sensitivity").
const mutationEnabled = false

// mutateForwarding is the identity in production builds.
func mutateForwarding(fwd []int, u int) []int { return fwd }
