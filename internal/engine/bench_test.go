package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/mldcs"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/skyline"
)

// benchDeployment builds a heterogeneous deployment of ≈ n nodes at the
// paper's density (mean degree 10) by scaling the region.
func benchDeployment(n int, seed int64) ([]network.Node, float64, error) {
	const degree = 10
	cfg := deploy.PaperConfig(deploy.Heterogeneous, degree)
	cfg.Side = math.Sqrt(float64(n) * math.Pi * cfg.ExpectedMinRadiusSq() / degree)
	nodes, err := deploy.Generate(cfg, rand.New(rand.NewSource(seed)))
	return nodes, cfg.Side, err
}

// benchSequential is the per-node baseline the engine is measured against.
func benchSequential(nodes []network.Node) error {
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		return err
	}
	for u := 0; u < g.Len(); u++ {
		ls, _, err := g.LocalSet(u)
		if err != nil {
			return err
		}
		if _, err := mldcs.Solve(ls); err != nil {
			return err
		}
	}
	return nil
}

func BenchmarkSequential(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nodes, _, err := benchDeployment(n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := benchSequential(nodes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngine(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, cache := range []bool{false, true} {
			b.Run(fmt.Sprintf("n=%d/cache=%v", n, cache), func(b *testing.B) {
				nodes, _, err := benchDeployment(n, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := New(Config{Cache: cache}).Compute(nodes); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineUpdate measures the incremental path: one random-waypoint
// step dirties a subset of the network, and Update recomputes only that.
func BenchmarkEngineUpdate(b *testing.B) {
	const n = 10000
	nodes, side, err := benchDeployment(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	model, err := mobility.NewModel(mobility.WaypointConfig{
		Side: side, SpeedMin: 0.5, SpeedMax: 1.5, PauseMax: 5,
	}, nodes, rng)
	if err != nil {
		b.Fatal(err)
	}
	e := New(Config{})
	if _, err := e.Compute(nodes); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Step(0.05)
		if _, err := e.Update(model.Nodes()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineUpdateKinetic measures one pure-mobility tick (≈1% of
// nodes drift by ≤2% of their own radius) with the kinetic repair path on
// and off — the microbenchmark behind the report's update section.
func BenchmarkEngineUpdateKinetic(b *testing.B) {
	const n = 20000
	nodes, _, err := benchDeployment(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		b.Run(fmt.Sprintf("repair=%v", !disable), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			cur := append([]network.Node(nil), nodes...)
			e := New(Config{Workers: 1, DisableRepair: disable})
			if _, err := e.Compute(cur); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				smallMoveStep(rng, cur, 1+n/100, 0.02)
				if _, err := e.Update(cur); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchReportEntry is one workload's row in BENCH_engine.json. The
// node_p* fields are the per-node skyline recompute latency distribution
// (in microseconds) observed across the workload's engine passes — the
// latency side of the story that the wall-time totals cannot show.
type benchReportEntry struct {
	Workload      string  `json:"workload"`
	Nodes         int     `json:"nodes"`
	Workers       int     `json:"workers"`
	SequentialMS  float64 `json:"sequential_ms"`
	EngineMS      float64 `json:"engine_ms"`
	Speedup       float64 `json:"speedup"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	NodeP50US     float64 `json:"node_p50_us"`
	NodeP90US     float64 `json:"node_p90_us"`
	NodeP99US     float64 `json:"node_p99_us"`
	NodeP999US    float64 `json:"node_p999_us"`
	// Worker-pool load balance of the last engine pass (see Stats).
	WorkerImbalance float64 `json:"worker_imbalance,omitempty"`
	Steals          int     `json:"steals,omitempty"`
}

// TestEngineBenchReport writes the machine-readable engine benchmark used
// by `make bench`: engine-vs-sequential wall times on a uniform random
// deployment plus a structured (zero-jitter grid) workload where the cache
// engages. Skipped unless ENGINE_BENCH_OUT names the output file; the
// network size defaults to 100000 and can be overridden with
// ENGINE_BENCH_N, the worker count defaults to GOMAXPROCS and can be
// overridden with ENGINE_BENCH_WORKERS. The ≥3× speedup acceptance
// criterion applies on ≥ 4 cores — the report records the actual core
// count and per-workload workers so single-core runs are interpretable.
func TestEngineBenchReport(t *testing.T) {
	out := os.Getenv("ENGINE_BENCH_OUT")
	if out == "" {
		t.Skip("set ENGINE_BENCH_OUT=<path> to write the engine benchmark report")
	}
	n := 100000
	if s := os.Getenv("ENGINE_BENCH_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad ENGINE_BENCH_N %q", s)
		}
		n = v
	}
	workers := runtime.GOMAXPROCS(0)
	if s := os.Getenv("ENGINE_BENCH_WORKERS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad ENGINE_BENCH_WORKERS %q", s)
		}
		workers = v
	}

	// num_cpu (the machine's core count) and gomaxprocs (the Go scheduler's
	// parallelism cap) are recorded separately: the old single "cores" field
	// conflated them, which made runs under a GOMAXPROCS clamp (cgroup
	// limits, taskset, GOMAXPROCS=n) silently comparable to full-machine
	// runs in the trajectory.
	report := struct {
		Nodes      int                 `json:"nodes"`
		NumCPU     int                 `json:"num_cpu"`
		Gomaxprocs int                 `json:"gomaxprocs"`
		Workers    int                 `json:"workers"`
		Workloads  []benchReportEntry  `json:"workloads"`
		Update     []benchUpdateEntry  `json:"update"`
		Scaling    []benchScalingEntry `json:"scaling"`
	}{Nodes: n, NumCPU: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0), Workers: workers}

	// Uniform random workload: the parallel speedup story.
	nodes, _, err := benchDeployment(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	report.Workloads = append(report.Workloads, benchWorkload(t, "uniform-random", nodes, workers))

	// Structured workload: zero-jitter grid at the same scale, where
	// bit-identical neighborhoods make the cache hit nearly always.
	gcfg := deploy.PaperConfig(deploy.Homogeneous, 10)
	gcfg.Side = math.Sqrt(float64(n) * math.Pi * gcfg.ExpectedMinRadiusSq() / 10)
	gcfg.SourceAtCenter = false
	grid, err := deploy.GeneratePerturbedGrid(gcfg, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	report.Workloads = append(report.Workloads, benchWorkload(t, "grid-homogeneous", grid, workers))

	// Update workload: a pure-mobility tick stream (≈1% of nodes drift a
	// little each tick) replayed twice from identical precomputed move
	// scripts — once with kinetic repair, once with DisableRepair — so the
	// two rows differ only in the Update strategy.
	ticks := 40
	movedPerTick := 1 + n/100
	scripts := benchUpdateScripts(nodes, ticks, movedPerTick, 3)
	repair := benchUpdateRun(t, "update-repair", nodes, scripts, workers, false)
	recomp := benchUpdateRun(t, "update-recompute", nodes, scripts, workers, true)
	if repair.TickP50MS > 0 {
		repair.SpeedupP50 = recomp.TickP50MS / repair.TickP50MS
	}
	if repair.TickP99MS > 0 {
		repair.SpeedupP99 = recomp.TickP99MS / repair.TickP99MS
	}
	report.Update = append(report.Update, repair, recomp)

	// Scaling section: uniform-random Compute plus a zipf-contended
	// Update stream at 1/2/4/8/16 workers, speedups relative to the
	// 1-worker row. Worker counts beyond GOMAXPROCS still run (the pool
	// time-slices them), so the section is populated — and honest, since
	// the machine fields record the real parallelism cap — even on a
	// single-core box.
	report.Scaling = benchScaling(t, nodes, n)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (n=%d, num_cpu=%d, gomaxprocs=%d)", out, n, report.NumCPU, report.Gomaxprocs)
}

// benchPasses is how many interleaved sequential/engine passes each
// workload runs; the report keeps the median of each side. A single pass
// on a small machine is ±5% noisy — enough to flip a near-1× speedup's
// sign run to run — while a median of three is stable.
const benchPasses = 3

func median3(v [benchPasses]float64) float64 {
	a, b, c := v[0], v[1], v[2]
	return math.Max(math.Min(a, b), math.Min(math.Max(a, b), c))
}

func benchWorkload(t *testing.T, name string, nodes []network.Node, workers int) benchReportEntry {
	t.Helper()
	var seq, eng [benchPasses]float64
	var res *Result
	// Scoped registry: skyline instrumentation is installed only around
	// the engine passes, so the per-node latency distribution covers
	// exactly the engine's recomputes (not the sequential baseline's).
	reg := obs.NewRegistry()
	for pass := 0; pass < benchPasses; pass++ {
		start := time.Now()
		if err := benchSequential(nodes); err != nil {
			t.Fatal(err)
		}
		seq[pass] = float64(time.Since(start).Microseconds()) / 1000

		skyline.Instrument(reg)
		start = time.Now()
		r, err := New(Config{Workers: workers, Cache: true}).Compute(nodes)
		elapsed := time.Since(start)
		skyline.Instrument(nil)
		if err != nil {
			t.Fatal(err)
		}
		eng[pass] = float64(elapsed.Microseconds()) / 1000
		res = r
	}
	seqMS := median3(seq)
	engMS := median3(eng)
	nodeLat := reg.Snapshot().Timers[skyline.MetricComputeSeconds]

	e := benchReportEntry{
		Workload:     name,
		Nodes:        len(nodes),
		Workers:      res.Stats.Workers,
		SequentialMS: seqMS,
		EngineMS:     engMS,
		CacheHits:    res.Stats.CacheHits,
		CacheMisses:  res.Stats.CacheMisses,
		NodeP50US:    nodeLat.P50 * 1e6,
		NodeP90US:    nodeLat.P90 * 1e6,
		NodeP99US:    nodeLat.P99 * 1e6,
		NodeP999US:   nodeLat.P999 * 1e6,

		WorkerImbalance: res.Stats.WorkerImbalance,
		Steals:          res.Stats.Steals,
	}
	if engMS > 0 {
		e.Speedup = seqMS / engMS
	}
	if total := e.CacheHits + e.CacheMisses; total > 0 {
		e.CacheHitRatio = float64(e.CacheHits) / float64(total)
	}
	return e
}

// benchUpdateEntry is one row of the report's update section: tick-latency
// quantiles for a pure-mobility Update stream under one repair strategy.
// speedup_p50/p99 are filled only on the repair row (repair vs recompute on
// the identical move script).
type benchUpdateEntry struct {
	Workload        string  `json:"workload"`
	Nodes           int     `json:"nodes"`
	Workers         int     `json:"workers"`
	MovedPerTick    int     `json:"moved_per_tick"`
	Ticks           int     `json:"ticks"`
	TickP50MS       float64 `json:"tick_p50_ms"`
	TickP99MS       float64 `json:"tick_p99_ms"`
	Repaired        int     `json:"repaired"`
	Recomputed      int     `json:"recomputed"`
	RepairFallbacks int     `json:"repair_fallbacks"`
	SpeedupP50      float64 `json:"speedup_p50,omitempty"`
	SpeedupP99      float64 `json:"speedup_p99,omitempty"`
	// Worst-tick worker imbalance (max/mean nodes) and total stolen
	// chunks across the run's Update passes.
	WorkerImbalance float64 `json:"worker_imbalance,omitempty"`
	Steals          int     `json:"steals,omitempty"`
}

// moveOp is one scripted displacement: node idx ends the tick at pos. The
// scripts carry absolute positions (the random walk is simulated once up
// front), so replaying them against two engines yields bit-identical node
// states regardless of replay order or strategy.
type moveOp struct {
	idx int
	pos geom.Point
}

// benchUpdateScripts precomputes ticks' worth of small-move mobility:
// each tick, moved random nodes drift by at most 2% of their own radius.
func benchUpdateScripts(nodes []network.Node, ticks, moved int, seed int64) [][]moveOp {
	rng := rand.New(rand.NewSource(seed))
	cur := append([]network.Node(nil), nodes...)
	scripts := make([][]moveOp, ticks)
	for t := range scripts {
		ops := make([]moveOp, moved)
		for i := range ops {
			u := rng.Intn(len(cur))
			step := 0.02 * cur[u].Radius
			cur[u].Pos.X += (rng.Float64()*2 - 1) * step
			cur[u].Pos.Y += (rng.Float64()*2 - 1) * step
			ops[i] = moveOp{idx: u, pos: cur[u].Pos}
		}
		scripts[t] = ops
	}
	return scripts
}

// benchUpdateRun replays the move scripts against one engine configuration
// and reports tick-latency quantiles plus the accumulated kinetic counters.
func benchUpdateRun(t *testing.T, name string, nodes []network.Node, scripts [][]moveOp, workers int, disableRepair bool) benchUpdateEntry {
	t.Helper()
	cur := append([]network.Node(nil), nodes...)
	e := New(Config{Workers: workers, DisableRepair: disableRepair})
	if _, err := e.Compute(cur); err != nil {
		t.Fatal(err)
	}
	entry := benchUpdateEntry{
		Workload: name,
		Nodes:    len(nodes),
		Workers:  workers,
		Ticks:    len(scripts),
	}
	ticksMS := make([]float64, 0, len(scripts))
	for _, ops := range scripts {
		if entry.MovedPerTick == 0 {
			entry.MovedPerTick = len(ops)
		}
		for _, op := range ops {
			cur[op.idx].Pos = op.pos
		}
		start := time.Now()
		res, err := e.Update(cur)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		ticksMS = append(ticksMS, float64(elapsed.Microseconds())/1000)
		entry.Repaired += res.Stats.Repaired
		entry.Recomputed += res.Stats.Recomputed
		entry.RepairFallbacks += res.Stats.RepairFallbacks
		entry.Steals += res.Stats.Steals
		if res.Stats.WorkerImbalance > entry.WorkerImbalance {
			entry.WorkerImbalance = res.Stats.WorkerImbalance
		}
	}
	sort.Float64s(ticksMS)
	entry.TickP50MS = benchQuantile(ticksMS, 0.50)
	entry.TickP99MS = benchQuantile(ticksMS, 0.99)
	return entry
}

// benchScalingEntry is one worker count's row in the report's scaling
// section: uniform-random Compute wall time (median of 3) with its
// speedup vs the 1-worker row, plus a zipf-contended Update stream's tick
// quantiles — the workload whose hot cells work-stealing exists for.
type benchScalingEntry struct {
	Workers         int     `json:"workers"`
	ComputeMS       float64 `json:"compute_ms"`
	Speedup         float64 `json:"speedup"`
	WorkerImbalance float64 `json:"worker_imbalance"`
	Steals          int     `json:"steals"`
	ZipfNodes       int     `json:"zipf_nodes"`
	ZipfTickP50MS   float64 `json:"zipf_tick_p50_ms"`
	ZipfTickP99MS   float64 `json:"zipf_tick_p99_ms"`
	ZipfImbalance   float64 `json:"zipf_worker_imbalance"`
	ZipfSteals      int     `json:"zipf_steals"`
}

// benchScalingWorkers is the worker axis of the scaling section.
var benchScalingWorkers = []int{1, 2, 4, 8, 16}

func benchScaling(t *testing.T, nodes []network.Node, n int) []benchScalingEntry {
	t.Helper()
	// The zipf workload is capped: its hotspots have fixed spread, so
	// in-cluster degree — and per-node solve cost — grows with n, and an
	// uncapped run would dwarf the rest of the report.
	zipfN := min(n, 5000)
	var out []benchScalingEntry
	for _, w := range benchScalingWorkers {
		var eng [benchPasses]float64
		var res *Result
		for pass := 0; pass < benchPasses; pass++ {
			start := time.Now()
			r, err := New(Config{Workers: w, Cache: true}).Compute(nodes)
			if err != nil {
				t.Fatal(err)
			}
			eng[pass] = float64(time.Since(start).Microseconds()) / 1000
			res = r
		}
		e := benchScalingEntry{
			Workers:         w,
			ComputeMS:       median3(eng),
			WorkerImbalance: res.Stats.WorkerImbalance,
			Steals:          res.Stats.Steals,
		}
		benchZipfUpdate(t, &e, zipfN, w)
		out = append(out, e)
	}
	base := out[0].ComputeMS
	for i := range out {
		if out[i].ComputeMS > 0 {
			out[i].Speedup = base / out[i].ComputeMS
		}
	}
	return out
}

// benchZipfUpdate runs a zipf-contended (hotspot) mobility stream against
// one worker count and fills the entry's zipf fields. The same seed drives
// every worker count, so all rows measure the identical workload.
func benchZipfUpdate(t *testing.T, e *benchScalingEntry, n, workers int) {
	t.Helper()
	const degree = 10
	dcfg := deploy.PaperConfig(deploy.Heterogeneous, degree)
	dcfg.Side = math.Sqrt(float64(n) * math.Pi * dcfg.ExpectedMinRadiusSq() / degree)
	w, err := mobility.NewHotspotWorkload(mobility.HotspotConfig{
		Deploy:     dcfg,
		Hotspots:   8,
		Contention: 1.2,
		Spread:     0.6,
		MoveFrac:   0.02,
	}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Config{Workers: workers, Cache: true})
	res, err := eng.Compute(w.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	e.ZipfNodes = res.Stats.Nodes
	const ticks = 15
	movers := 1 + e.ZipfNodes/100
	mrng := rand.New(rand.NewSource(6))
	ticksMS := make([]float64, 0, ticks)
	for i := 0; i < ticks; i++ {
		w.Step(movers, mrng)
		start := time.Now()
		res, err = eng.Update(w.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		ticksMS = append(ticksMS, float64(time.Since(start).Microseconds())/1000)
		e.ZipfSteals += res.Stats.Steals
		if res.Stats.WorkerImbalance > e.ZipfImbalance {
			e.ZipfImbalance = res.Stats.WorkerImbalance
		}
	}
	sort.Float64s(ticksMS)
	e.ZipfTickP50MS = benchQuantile(ticksMS, 0.50)
	e.ZipfTickP99MS = benchQuantile(ticksMS, 0.99)
}

// benchQuantile reads quantile q from an ascending-sorted slice
// (nearest-rank; good enough for a 40-sample tick distribution).
func benchQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
