package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/mldcs"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/skyline"
)

// benchDeployment builds a heterogeneous deployment of ≈ n nodes at the
// paper's density (mean degree 10) by scaling the region.
func benchDeployment(n int, seed int64) ([]network.Node, float64, error) {
	const degree = 10
	cfg := deploy.PaperConfig(deploy.Heterogeneous, degree)
	cfg.Side = math.Sqrt(float64(n) * math.Pi * cfg.ExpectedMinRadiusSq() / degree)
	nodes, err := deploy.Generate(cfg, rand.New(rand.NewSource(seed)))
	return nodes, cfg.Side, err
}

// benchSequential is the per-node baseline the engine is measured against.
func benchSequential(nodes []network.Node) error {
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		return err
	}
	for u := 0; u < g.Len(); u++ {
		ls, _, err := g.LocalSet(u)
		if err != nil {
			return err
		}
		if _, err := mldcs.Solve(ls); err != nil {
			return err
		}
	}
	return nil
}

func BenchmarkSequential(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nodes, _, err := benchDeployment(n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := benchSequential(nodes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngine(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, cache := range []bool{false, true} {
			b.Run(fmt.Sprintf("n=%d/cache=%v", n, cache), func(b *testing.B) {
				nodes, _, err := benchDeployment(n, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := New(Config{Cache: cache}).Compute(nodes); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineUpdate measures the incremental path: one random-waypoint
// step dirties a subset of the network, and Update recomputes only that.
func BenchmarkEngineUpdate(b *testing.B) {
	const n = 10000
	nodes, side, err := benchDeployment(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	model, err := mobility.NewModel(mobility.WaypointConfig{
		Side: side, SpeedMin: 0.5, SpeedMax: 1.5, PauseMax: 5,
	}, nodes, rng)
	if err != nil {
		b.Fatal(err)
	}
	e := New(Config{})
	if _, err := e.Compute(nodes); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Step(0.05)
		if _, err := e.Update(model.Nodes()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReportEntry is one workload's row in BENCH_engine.json. The
// node_p* fields are the per-node skyline recompute latency distribution
// (in microseconds) observed across the workload's engine passes — the
// latency side of the story that the wall-time totals cannot show.
type benchReportEntry struct {
	Workload      string  `json:"workload"`
	Nodes         int     `json:"nodes"`
	Workers       int     `json:"workers"`
	SequentialMS  float64 `json:"sequential_ms"`
	EngineMS      float64 `json:"engine_ms"`
	Speedup       float64 `json:"speedup"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	NodeP50US     float64 `json:"node_p50_us"`
	NodeP90US     float64 `json:"node_p90_us"`
	NodeP99US     float64 `json:"node_p99_us"`
	NodeP999US    float64 `json:"node_p999_us"`
}

// TestEngineBenchReport writes the machine-readable engine benchmark used
// by `make bench`: engine-vs-sequential wall times on a uniform random
// deployment plus a structured (zero-jitter grid) workload where the cache
// engages. Skipped unless ENGINE_BENCH_OUT names the output file; the
// network size defaults to 100000 and can be overridden with
// ENGINE_BENCH_N, the worker count defaults to GOMAXPROCS and can be
// overridden with ENGINE_BENCH_WORKERS. The ≥3× speedup acceptance
// criterion applies on ≥ 4 cores — the report records the actual core
// count and per-workload workers so single-core runs are interpretable.
func TestEngineBenchReport(t *testing.T) {
	out := os.Getenv("ENGINE_BENCH_OUT")
	if out == "" {
		t.Skip("set ENGINE_BENCH_OUT=<path> to write the engine benchmark report")
	}
	n := 100000
	if s := os.Getenv("ENGINE_BENCH_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad ENGINE_BENCH_N %q", s)
		}
		n = v
	}
	workers := runtime.GOMAXPROCS(0)
	if s := os.Getenv("ENGINE_BENCH_WORKERS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad ENGINE_BENCH_WORKERS %q", s)
		}
		workers = v
	}

	report := struct {
		Nodes     int                `json:"nodes"`
		Cores     int                `json:"cores"`
		Workers   int                `json:"workers"`
		Workloads []benchReportEntry `json:"workloads"`
	}{Nodes: n, Cores: runtime.NumCPU(), Workers: workers}

	// Uniform random workload: the parallel speedup story.
	nodes, _, err := benchDeployment(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	report.Workloads = append(report.Workloads, benchWorkload(t, "uniform-random", nodes, workers))

	// Structured workload: zero-jitter grid at the same scale, where
	// bit-identical neighborhoods make the cache hit nearly always.
	gcfg := deploy.PaperConfig(deploy.Homogeneous, 10)
	gcfg.Side = math.Sqrt(float64(n) * math.Pi * gcfg.ExpectedMinRadiusSq() / 10)
	gcfg.SourceAtCenter = false
	grid, err := deploy.GeneratePerturbedGrid(gcfg, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	report.Workloads = append(report.Workloads, benchWorkload(t, "grid-homogeneous", grid, workers))

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (n=%d, cores=%d)", out, n, report.Cores)
}

// benchPasses is how many interleaved sequential/engine passes each
// workload runs; the report keeps the median of each side. A single pass
// on a small machine is ±5% noisy — enough to flip a near-1× speedup's
// sign run to run — while a median of three is stable.
const benchPasses = 3

func median3(v [benchPasses]float64) float64 {
	a, b, c := v[0], v[1], v[2]
	return math.Max(math.Min(a, b), math.Min(math.Max(a, b), c))
}

func benchWorkload(t *testing.T, name string, nodes []network.Node, workers int) benchReportEntry {
	t.Helper()
	var seq, eng [benchPasses]float64
	var res *Result
	// Scoped registry: skyline instrumentation is installed only around
	// the engine passes, so the per-node latency distribution covers
	// exactly the engine's recomputes (not the sequential baseline's).
	reg := obs.NewRegistry()
	for pass := 0; pass < benchPasses; pass++ {
		start := time.Now()
		if err := benchSequential(nodes); err != nil {
			t.Fatal(err)
		}
		seq[pass] = float64(time.Since(start).Microseconds()) / 1000

		skyline.Instrument(reg)
		start = time.Now()
		r, err := New(Config{Workers: workers, Cache: true}).Compute(nodes)
		elapsed := time.Since(start)
		skyline.Instrument(nil)
		if err != nil {
			t.Fatal(err)
		}
		eng[pass] = float64(elapsed.Microseconds()) / 1000
		res = r
	}
	seqMS := median3(seq)
	engMS := median3(eng)
	nodeLat := reg.Snapshot().Timers[skyline.MetricComputeSeconds]

	e := benchReportEntry{
		Workload:     name,
		Nodes:        len(nodes),
		Workers:      res.Stats.Workers,
		SequentialMS: seqMS,
		EngineMS:     engMS,
		CacheHits:    res.Stats.CacheHits,
		CacheMisses:  res.Stats.CacheMisses,
		NodeP50US:    nodeLat.P50 * 1e6,
		NodeP90US:    nodeLat.P90 * 1e6,
		NodeP99US:    nodeLat.P99 * 1e6,
		NodeP999US:   nodeLat.P999 * 1e6,
	}
	if engMS > 0 {
		e.Speedup = seqMS / engMS
	}
	if total := e.CacheHits + e.CacheMisses; total > 0 {
		e.CacheHitRatio = float64(e.CacheHits) / float64(total)
	}
	return e
}
