package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/deploy"
	"repro/internal/mobility"
	"repro/internal/network"
)

// TestEngineIncrementalMatchesFresh drives the engine with random-waypoint
// mobility and checks, at every step, that the incremental Update produces
// exactly the state a from-scratch Compute would — forwarding sets, hub
// flags, and neighborhoods — while only recomputing the dirtied subset.
func TestEngineIncrementalMatchesFresh(t *testing.T) {
	for _, ecfg := range []Config{
		{Workers: 1, Cache: false},
		{Workers: 4, Cache: true},
	} {
		rng := rand.New(rand.NewSource(11))
		cfg := deploy.PaperConfig(deploy.Heterogeneous, 8)
		nodes, err := deploy.Generate(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		model, err := mobility.NewModel(mobility.WaypointConfig{
			Side: cfg.Side, SpeedMin: 0.5, SpeedMax: 1.5, PauseMax: 0.5,
		}, nodes, rng)
		if err != nil {
			t.Fatal(err)
		}

		inc := New(ecfg)
		if _, err := inc.Compute(nodes); err != nil {
			t.Fatal(err)
		}
		for step := 1; step <= 5; step++ {
			model.Step(0.2)
			cur := model.Nodes()
			got, err := inc.Update(cur)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			want, err := New(Config{Workers: ecfg.Workers, Cache: ecfg.Cache}).Compute(cur)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			label := fmt.Sprintf("step %d workers=%d cache=%v", step, ecfg.Workers, ecfg.Cache)
			for u := range cur {
				if !equalSets(got.Neighbors[u], want.Neighbors[u]) {
					t.Fatalf("%s: node %d neighbors = %v, want %v", label, u, got.Neighbors[u], want.Neighbors[u])
				}
				if !equalSets(got.Forwarding[u], want.Forwarding[u]) {
					t.Fatalf("%s: node %d forwarding = %v, want %v", label, u, got.Forwarding[u], want.Forwarding[u])
				}
				if got.HubInCover[u] != want.HubInCover[u] {
					t.Fatalf("%s: node %d hubInCover mismatch", label, u)
				}
			}
			if got.Stats.Moved == 0 {
				t.Fatalf("%s: expected movement under random waypoint", label)
			}
			if got.Stats.Dirty > len(cur) {
				t.Fatalf("%s: dirty %d exceeds node count %d", label, got.Stats.Dirty, len(cur))
			}
		}
	}
}

// TestEngineIncrementalNoop: handing Update the unchanged node slice
// recomputes nothing.
func TestEngineIncrementalNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Homogeneous, 6), rng)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Cache: true})
	before, err := e.Compute(nodes)
	if err != nil {
		t.Fatal(err)
	}
	after, err := e.Update(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.Moved != 0 || after.Stats.Dirty != 0 {
		t.Fatalf("no-op update: moved=%d dirty=%d, want 0/0", after.Stats.Moved, after.Stats.Dirty)
	}
	for u := range nodes {
		if !equalSets(before.Forwarding[u], after.Forwarding[u]) {
			t.Fatalf("no-op update changed node %d forwarding", u)
		}
	}
}

// TestEngineIncrementalRadiusChange: Update must also react to radius
// changes (power control), not just movement.
func TestEngineIncrementalRadiusChange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Heterogeneous, 8), rng)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 4})
	if _, err := e.Compute(nodes); err != nil {
		t.Fatal(err)
	}
	changed := append([]network.Node(nil), nodes...)
	changed[3].Radius = changed[3].Radius * 1.5
	changed[7].Radius = changed[7].Radius * 0.75
	got, err := e.Update(changed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(Config{Workers: 4}).Compute(changed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Moved != 2 {
		t.Fatalf("moved = %d, want 2", got.Stats.Moved)
	}
	for u := range changed {
		if !equalSets(got.Forwarding[u], want.Forwarding[u]) {
			t.Fatalf("node %d forwarding = %v, want %v", u, got.Forwarding[u], want.Forwarding[u])
		}
		if !equalSets(got.Neighbors[u], want.Neighbors[u]) {
			t.Fatalf("node %d neighbors = %v, want %v", u, got.Neighbors[u], want.Neighbors[u])
		}
	}
}
