package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/spatial"
)

// This file is the adversarial perturbation harness for the unified
// epsilon policy (docs/NUMERICS.md): generators that concentrate node
// configurations on the decision boundaries of geom's predicates —
// link distances within ±Eps/2 of a radius, cocircular neighbor rings
// at tie angles, neighbor disks tangent to the hub — and feed them
// through the existing differential matrix (sequential pipeline ×
// engine worker/cache variants × naive skyline oracle).

// boundaryNodes places n random nodes and then sets each radius to the
// exact distance of some other node, perturbed by one of
// {0, ±Eps/2, ±2Eps}: every node's range boundary passes through (or
// within an epsilon of) another node, so almost every link decision in
// the deployment is a boundary case for geom.LinkWithin.
func boundaryNodes(rng *rand.Rand, n int) []network.Node {
	nodes := make([]network.Node, n)
	for i := range nodes {
		nodes[i] = network.Node{
			ID:     i,
			Pos:    geom.Pt(rng.Float64()*8, rng.Float64()*8),
			Radius: 1,
		}
	}
	jitters := []float64{0, geom.Eps / 2, -geom.Eps / 2, 2 * geom.Eps, -2 * geom.Eps}
	for i := range nodes {
		j := rng.Intn(n)
		if j == i {
			j = (i + 1) % n
		}
		r := nodes[i].Pos.Dist(nodes[j].Pos) + jitters[rng.Intn(len(jitters))]
		if r < 0.25 {
			r = 0.25
		}
		nodes[i].Radius = r
	}
	return nodes
}

// nearTangentNodes builds hub-and-ring clusters engineered to stress the
// skyline layer rather than the link layer: each cluster has a hub, a
// cocircular ring of equal-radius neighbors at evenly spaced angles
// (every pairwise crossing lands on a tie angle), and one neighbor whose
// radius equals its hub distance exactly, putting the hub on that disk's
// boundary (the near-tangent case for skyline.crossingAngles).
func nearTangentNodes(rng *rand.Rand, clusters int) []network.Node {
	var nodes []network.Node
	id := 0
	add := func(p geom.Point, r float64) {
		nodes = append(nodes, network.Node{ID: id, Pos: p, Radius: r})
		id++
	}
	for c := 0; c < clusters; c++ {
		hub := geom.Pt(float64(c)*10, rng.Float64())
		add(hub, 2)
		k := 3 + rng.Intn(4)
		d := 0.5 + rng.Float64()
		for i := 0; i < k; i++ {
			theta := float64(i) / float64(k) * geom.TwoPi
			add(geom.Pt(hub.X+d*math.Cos(theta), hub.Y+d*math.Sin(theta)), 2)
		}
		// Boundary-through-hub neighbor: radius exactly its hub distance.
		p := geom.Pt(hub.X+1.25, hub.Y+0.25)
		add(p, p.Dist(hub))
	}
	return nodes
}

// TestEngineAdversarialBoundaryDeployments runs the boundary-distance
// generator through the full differential matrix and the naive skyline
// oracle. Any divergence between the epsilon handling of the grid, the
// graph builder, the engine, or the skyline shows up as a forwarding-set
// mismatch here.
func TestEngineAdversarialBoundaryDeployments(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		nodes := boundaryNodes(rng, 40)
		fwd, hubIn, g := sequentialForwarding(t, nodes)
		naive := naiveForwarding(t, g)
		for u := range fwd {
			if !equalSets(fwd[u], naive[u]) {
				t.Fatalf("seed %d: node %d sequential=%v naive=%v", seed, u, fwd[u], naive[u])
			}
		}
		for _, cfg := range engineVariants() {
			label := fmt.Sprintf("boundary seed=%d workers=%d cache=%v", seed, cfg.Workers, cfg.Cache)
			res, err := New(cfg).Compute(nodes)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			assertIdentical(t, label, res, fwd, hubIn, g)
		}
	}
}

// TestEngineAdversarialNearTangentDeployments does the same for the
// cocircular / tangent-to-hub generator, which drives the skyline merge
// through tie angles and zero-length candidate arcs.
func TestEngineAdversarialNearTangentDeployments(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		nodes := nearTangentNodes(rng, 4)
		fwd, hubIn, g := sequentialForwarding(t, nodes)
		naive := naiveForwarding(t, g)
		for u := range fwd {
			if !equalSets(fwd[u], naive[u]) {
				t.Fatalf("seed %d: node %d sequential=%v naive=%v", seed, u, fwd[u], naive[u])
			}
		}
		for _, cfg := range engineVariants() {
			label := fmt.Sprintf("tangent seed=%d workers=%d cache=%v", seed, cfg.Workers, cfg.Cache)
			res, err := New(cfg).Compute(nodes)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			assertIdentical(t, label, res, fwd, hubIn, g)
		}
	}
}

// TestBoundaryScenarioGridGraphEngineAgree pins a crafted boundary
// scenario across all three layers that apply the link predicate: the
// spatial grid (squared space), the graph builder (linear space, with
// reciprocity), and the engine (grid + reverse check). Each layer is
// checked against hand-written expectations, so a regression in any one
// of them is reported by name instead of as a generic mismatch.
func TestBoundaryScenarioGridGraphEngineAgree(t *testing.T) {
	eps := geom.Eps
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},            // exact-r link to 1
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 1},            // exact-r links to 0, 4, 5
		{ID: 2, Pos: geom.Pt(0, 1+eps/2), Radius: 1},      // r+Eps/2 from 0: within tolerance
		{ID: 3, Pos: geom.Pt(0, -(1 + 2*eps)), Radius: 1}, // r+2Eps from 0: out of range
		{ID: 4, Pos: geom.Pt(2, 0), Radius: 1},            // exact-r link to 1 only
		{ID: 5, Pos: geom.Pt(1, 1), Radius: 1},            // exact-r to 1, ~r to 2
		{ID: 6, Pos: geom.Pt(0, 5), Radius: 10},           // reaches everyone, nobody reaches back
	}

	// Layer 1: the spatial grid answers out-reach queries (no
	// reciprocity): every point within node u's own radius, u included.
	outReach := [][]int{
		0: {0, 1, 2},
		1: {0, 1, 4, 5},
		2: {0, 2, 5},
		3: {3},
		4: {1, 4},
		5: {1, 2, 5},
		6: {0, 1, 2, 3, 4, 5, 6},
	}
	pts := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = n.Pos
	}
	grid := spatial.NewGrid(pts, 1)
	for u, n := range nodes {
		got := grid.Within(n.Pos, n.Radius)
		sort.Ints(got)
		if !equalSets(got, outReach[u]) {
			t.Errorf("grid: node %d out-reach = %v, want %v", u, got, outReach[u])
		}
	}

	// Layer 2: the bidirectional graph keeps exactly the reciprocal
	// out-reach pairs. Node 6 reaches everyone but is unreachable, so it
	// must be isolated.
	neighbors := [][]int{
		0: {1, 2},
		1: {0, 4, 5},
		2: {0, 5},
		3: {},
		4: {1},
		5: {1, 2},
		6: {},
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	for u := range nodes {
		if !equalSets(g.Neighbors(u), neighbors[u]) {
			t.Errorf("graph: node %d neighbors = %v, want %v", u, g.Neighbors(u), neighbors[u])
		}
	}

	// Cross-check the hand-written tables against each other: graph
	// adjacency must be the symmetric core of the grid's out-reach sets.
	for u := range nodes {
		var sym []int
		for _, v := range outReach[u] {
			if v == u {
				continue
			}
			for _, w := range outReach[v] {
				if w == u {
					sym = append(sym, v)
					break
				}
			}
		}
		if !equalSets(sym, neighbors[u]) {
			t.Errorf("tables inconsistent at node %d: symmetric out-reach %v, neighbors %v", u, sym, neighbors[u])
		}
	}

	// Layer 3: the engine's neighborhoods (discovered through its own
	// grid + reverse-link check) must match the graph, on every variant.
	for _, cfg := range engineVariants() {
		res, err := New(cfg).Compute(nodes)
		if err != nil {
			t.Fatal(err)
		}
		for u := range nodes {
			if !equalSets(res.Neighbors[u], neighbors[u]) {
				t.Errorf("engine workers=%d cache=%v: node %d neighbors = %v, want %v",
					cfg.Workers, cfg.Cache, u, res.Neighbors[u], neighbors[u])
			}
		}
	}
}

// TestEngineUpdateBoundaryMove audits the incremental dirty-set
// discovery at the link boundary: a node is moved to exactly the link
// distance, then Eps/2 past it (still linked), then 2Eps past it (link
// must drop), then onto the boundary of a different node. After every
// step the incremental result must be element-identical to both a
// from-scratch Compute and the sequential per-node pipeline — if Update
// and the graph builder disagreed about an exact-boundary link, the
// dirty set would be wrong and stale state would leak through here.
func TestEngineUpdateBoundaryMove(t *testing.T) {
	base := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(0.5, 0), Radius: 1},
		{ID: 2, Pos: geom.Pt(3, 0), Radius: 1},
	}
	steps := []struct {
		name string
		x    float64
	}{
		{"exactly-r-of-0", 1},
		{"r-plus-half-eps", 1 + geom.Eps/2},
		{"r-plus-2eps", 1 + 2*geom.Eps}, // link to 0 drops
		{"exactly-r-of-2", 2},           // link to 2 appears, at its boundary
		{"back-inside", 0.5},
	}
	for _, cfg := range engineVariants() {
		inc := New(cfg)
		if _, err := inc.Compute(base); err != nil {
			t.Fatal(err)
		}
		cur := append([]network.Node(nil), base...)
		for _, step := range steps {
			cur[1].Pos = geom.Pt(step.x, 0)
			label := fmt.Sprintf("%s workers=%d cache=%v", step.name, cfg.Workers, cfg.Cache)
			got, err := inc.Update(cur)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			fwd, hubIn, g := sequentialForwarding(t, cur)
			assertIdentical(t, label, got, fwd, hubIn, g)
			fresh, err := New(cfg).Compute(cur)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for u := range cur {
				if !equalSets(got.Forwarding[u], fresh.Forwarding[u]) {
					t.Fatalf("%s: node %d incremental forwarding = %v, fresh = %v",
						label, u, got.Forwarding[u], fresh.Forwarding[u])
				}
			}
		}
	}
}
