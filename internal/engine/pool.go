package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the engine's parallel work-distribution layer. The original
// pool handed tasks out one at a time through a single atomic cursor, which
// has two scaling failures: every worker contends on the same cache line
// for every task, and the accounting cannot say which worker did what. The
// driver here partitions the task index space into contiguous per-worker
// ranges, lets each worker claim chunks of `grain` tasks from its own range
// through a range-local padded cursor, and — when a worker drains its range
// — steals grain-sized chunks from the most-loaded peer. Chunked claiming
// amortizes the cursor traffic; stealing keeps a skewed workload (one hot
// mega-cell, one contended hotspot) from parking the pass on one worker.
//
// Work distribution never affects results: tasks are independent per-node
// (or per-cell-batch) computations whose outputs land in per-node slots, so
// any interleaving produces bit-identical forwarding sets — the
// differential and fuzz harnesses run the full workers matrix to pin that.

const (
	// chunksPerWorker tunes the claim grain: each worker's range is split
	// into about this many chunks, so the grain adapts to tasks-per-worker
	// (large passes claim big chunks, small passes stay fine-grained for
	// balance).
	chunksPerWorker = 8
	// maxClaimGrain caps the grain so a huge pass still rebalances: a
	// stolen chunk is at most this many tasks.
	maxClaimGrain = 64
	// maxCellBatch splits a grid cell into multiple work items when it
	// holds more nodes than this, so one hot mega-cell (a zipf hotspot
	// collapsing thousands of nodes into one cell) is processed by many
	// workers instead of serializing the pass tail on one.
	maxCellBatch = 256
	// maxUpdateBatch bounds an Update cell batch the same way.
	maxUpdateBatch = 128
)

// workerLoad books one worker's share of a pass: work items (cell batches)
// and nodes processed, and chunks claimed from another worker's range.
type workerLoad struct {
	items  int
	nodes  int
	steals int
}

// taskQueue is one worker's claimable task range [lo, hi) with an atomic
// claim cursor (an offset from lo). The struct is padded to a cache line
// so the cursors of adjacent queues never false-share: thieves hammer a
// victim's cursor without disturbing its neighbors.
type taskQueue struct {
	lo, hi int64
	next   atomic.Int64
	_      [40]byte
}

// claim takes the next chunk of up to grain tasks. The cursor only grows,
// so concurrent claims (owner and thieves) partition the range exactly.
func (q *taskQueue) claim(grain int64) (lo, hi int64, ok bool) {
	n := q.hi - q.lo
	end := q.next.Add(grain)
	start := end - grain
	if start >= n {
		return 0, 0, false
	}
	if end > n {
		end = n
	}
	return q.lo + start, q.lo + end, true
}

// remaining reports how many unclaimed tasks the queue still holds.
func (q *taskQueue) remaining() int64 {
	if r := (q.hi - q.lo) - q.next.Load(); r > 0 {
		return r
	}
	return 0
}

// scratchFor returns worker w's persistent scratch, growing the pool on
// demand. Scratches persist across passes so their buffers — and the L1
// cache front — stay warm for the lifetime of the engine.
func (e *Engine) scratchFor(w int) *scratch {
	for len(e.scratches) <= w {
		e.scratches = append(e.scratches, &scratch{})
	}
	return e.scratches[w]
}

// forEachTask runs fn(i, sc) for every task index in [0, n) on the
// configured worker count, with chunked claiming and bounded work
// stealing. Each worker owns one persistent scratch; fn must add the
// nodes it processed to sc.load.nodes (the driver accounts items).
// Per-worker loads for the pass are left in e.lastLoads. Returns the
// number of workers used.
func (e *Engine) forEachTask(n int, fn func(i int, sc *scratch)) int {
	if n == 0 {
		e.lastLoads = e.lastLoads[:0]
		return 0
	}
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		sc := e.scratchFor(0)
		sc.bypass = false
		for i := 0; i < n; i++ {
			fn(i, sc)
		}
		sc.load.items += n
		e.cache.flush(sc)
		e.collectLoads(1)
		return 1
	}

	grain := int64(n / (workers * chunksPerWorker))
	if grain < 1 {
		grain = 1
	}
	if grain > maxClaimGrain {
		grain = maxClaimGrain
	}
	if cap(e.queues) < workers {
		e.queues = make([]taskQueue, workers)
	}
	queues := e.queues[:workers]
	for w := range queues {
		queues[w].lo = int64(w * n / workers)
		queues[w].hi = int64((w + 1) * n / workers)
		queues[w].next.Store(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sc := e.scratchFor(w)
		sc.bypass = false
		wg.Add(1)
		go func(w int, sc *scratch) {
			defer wg.Done()
			defer e.cache.flush(sc)
			runWorker(w, queues, grain, fn, sc)
		}(w, sc)
	}
	wg.Wait()
	e.collectLoads(workers)
	return workers
}

// runWorker drains worker w's own range in grain-sized chunks, then
// steals chunks from the most-loaded peer until no queue has work. The
// steal loop is bounded: every successful claim consumes at least one
// task and cursors only grow, so a failed claim (a race with the victim)
// means the next scan sees that queue empty.
func runWorker(w int, queues []taskQueue, grain int64, fn func(i int, sc *scratch), sc *scratch) {
	own := &queues[w]
	for {
		lo, hi, ok := own.claim(grain)
		if !ok {
			break
		}
		for i := lo; i < hi; i++ {
			fn(int(i), sc)
		}
		sc.load.items += int(hi - lo)
	}
	for {
		best, bestRem := -1, int64(0)
		for v := range queues {
			if v == w {
				continue
			}
			if r := queues[v].remaining(); r > bestRem {
				best, bestRem = v, r
			}
		}
		if best < 0 {
			return
		}
		lo, hi, ok := queues[best].claim(grain)
		if !ok {
			continue // raced with the victim; rescan
		}
		sc.load.steals++
		for i := lo; i < hi; i++ {
			fn(int(i), sc)
		}
		sc.load.items += int(hi - lo)
	}
}

// collectLoads moves the per-worker load books of this pass into
// e.lastLoads and resets them for the next pass.
func (e *Engine) collectLoads(workers int) {
	e.lastLoads = e.lastLoads[:0]
	for w := 0; w < workers; w++ {
		sc := e.scratches[w]
		e.lastLoads = append(e.lastLoads, sc.load)
		sc.load = workerLoad{}
	}
}

// recordLoads derives the pass's load-imbalance summary from the
// per-worker books: max and mean work items (cell batches) and nodes per
// worker, total stolen chunks, and the imbalance ratio max/mean nodes
// (1.0 = perfectly balanced; the quantity the engine_worker_imbalance
// gauge exports).
func (s *Stats) recordLoads(loads []workerLoad) {
	if len(loads) == 0 {
		return
	}
	var items, nodes, steals, maxItems, maxNodes int
	for _, l := range loads {
		items += l.items
		nodes += l.nodes
		steals += l.steals
		if l.items > maxItems {
			maxItems = l.items
		}
		if l.nodes > maxNodes {
			maxNodes = l.nodes
		}
	}
	s.WorkerMaxCells = maxItems
	s.WorkerMeanCells = float64(items) / float64(len(loads))
	s.WorkerMaxNodes = maxNodes
	s.WorkerMeanNodes = float64(nodes) / float64(len(loads))
	s.Steals = steals
	if s.WorkerMeanNodes > 0 {
		s.WorkerImbalance = float64(maxNodes) / s.WorkerMeanNodes
	}
}

// cellSpan is one Compute work item: nodes [lo, hi) of grid cell `cell`.
// Cells larger than maxCellBatch become several items (mega-cell
// splitting).
type cellSpan struct {
	cell   int32
	lo, hi int32
}

// buildComputeItems flattens the grid cells into bounded work items in
// e.items (reused across passes).
func (e *Engine) buildComputeItems(cells [][]int) {
	e.items = e.items[:0]
	for ci, cell := range cells {
		for lo := 0; lo < len(cell); lo += maxCellBatch {
			hi := lo + maxCellBatch
			if hi > len(cell) {
				hi = len(cell)
			}
			e.items = append(e.items, cellSpan{cell: int32(ci), lo: int32(lo), hi: int32(hi)})
		}
	}
}

// updEnt pairs a dirty node with its owning grid cell's packed
// coordinates, the sort key Update batches by.
type updEnt struct {
	key  uint64
	node int32
}

// updSpan is one Update work item: entries [lo, hi) of the sorted
// e.updEnts, all in the same grid cell (split at maxUpdateBatch).
type updSpan struct {
	lo, hi int32
}

// buildUpdateBatches groups the dirty list by owning grid cell into
// bounded batches: sort the (cell, node) pairs with the reusable
// bottom-up merge sort (stable, allocation-free once warm), then cut the
// runs. Batching by cell gives each worker spatially local nodes — their
// neighbor reads hit the same grid cells — and makes the work item
// coarse enough that claiming does not dominate a small dirty set.
func (e *Engine) buildUpdateBatches(list []int) {
	e.updEnts = e.updEnts[:0]
	for _, u := range list {
		x, y := e.grid.CellCoord(u)
		key := uint64(uint32(x))<<32 | uint64(uint32(y))
		e.updEnts = append(e.updEnts, updEnt{key: key, node: int32(u)})
	}
	sortUpdEnts(e)
	e.updSpans = e.updSpans[:0]
	for lo := 0; lo < len(e.updEnts); {
		hi := lo + 1
		for hi < len(e.updEnts) && e.updEnts[hi].key == e.updEnts[lo].key && hi-lo < maxUpdateBatch {
			hi++
		}
		e.updSpans = append(e.updSpans, updSpan{lo: int32(lo), hi: int32(hi)})
		lo = hi
	}
}

// sortUpdEnts orders e.updEnts by (cell key, node id) with a bottom-up
// merge sort through e.updEntsTmp — same zero-allocation scheme as
// sortTuples. The node-id tiebreak makes the batch layout deterministic.
func sortUpdEnts(e *Engine) {
	n := len(e.updEnts)
	if n < 2 {
		return
	}
	if cap(e.updEntsTmp) < n {
		e.updEntsTmp = make([]updEnt, n)
	}
	src, dst := e.updEnts[:n], e.updEntsTmp[:n]
	inPlace := true
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			mergeUpdEnts(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
		inPlace = !inPlace
	}
	if !inPlace {
		copy(e.updEnts, src)
	}
}

// mergeUpdEnts merges sorted runs a and b into dst, taking from a on ties.
func mergeUpdEnts(dst, a, b []updEnt) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j].key < a[i].key || (b[j].key == a[i].key && b[j].node < a[i].node) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}
