package engine

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/obs"
)

func TestEngineEmptyNetwork(t *testing.T) {
	res, err := New(Config{Cache: true}).Compute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forwarding) != 0 || len(res.Neighbors) != 0 || res.Stats.Nodes != 0 {
		t.Fatalf("empty network: got %+v", res.Stats)
	}
}

func TestEngineSingleAndIsolatedNodes(t *testing.T) {
	// Three nodes too far apart to hear each other: every forwarding set is
	// empty and every hub covers itself.
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(10, 0), Radius: 1},
		{ID: 2, Pos: geom.Pt(0, 10), Radius: 1},
	}
	for _, cache := range []bool{false, true} {
		res, err := New(Config{Cache: cache}).Compute(nodes)
		if err != nil {
			t.Fatal(err)
		}
		for u := range nodes {
			if len(res.Forwarding[u]) != 0 || len(res.Neighbors[u]) != 0 {
				t.Fatalf("isolated node %d: fwd=%v nbrs=%v", u, res.Forwarding[u], res.Neighbors[u])
			}
			if !res.HubInCover[u] {
				t.Fatalf("isolated node %d must cover itself", u)
			}
		}
		if cache {
			// Identical singleton neighborhoods: first is a miss, rest hit.
			if res.Stats.CacheHits != 2 || res.Stats.CacheMisses != 1 {
				t.Fatalf("cache stats = %d hits / %d misses, want 2/1",
					res.Stats.CacheHits, res.Stats.CacheMisses)
			}
		}
	}
}

func TestEngineValidation(t *testing.T) {
	e := New(Config{})
	if _, err := e.Compute([]network.Node{{ID: 5, Pos: geom.Pt(0, 0), Radius: 1}}); err == nil ||
		!strings.Contains(err.Error(), "dense") {
		t.Fatalf("sparse IDs: err = %v", err)
	}
	if _, err := e.Compute([]network.Node{{ID: 0, Pos: geom.Pt(0, 0), Radius: 0}}); err == nil ||
		!strings.Contains(err.Error(), "radius") {
		t.Fatalf("zero radius: err = %v", err)
	}
	if _, err := New(Config{}).Update(nil); err == nil ||
		!strings.Contains(err.Error(), "before Compute") {
		t.Fatalf("Update before Compute: err = %v", err)
	}
}

// TestEngineCacheRelabelInvariance: the fingerprint orders neighbors by
// coordinate bits, not by ID, so recomputing a relabeled copy of the same
// network through a persistent engine hits the cache for every node and
// yields the permuted forwarding sets.
func TestEngineCacheRelabelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Heterogeneous, 8), rng)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Cache: true})
	first, err := e.Compute(nodes)
	if err != nil {
		t.Fatal(err)
	}
	// perm[i] = old index now labeled i; inv maps old → new labels.
	perm := rng.Perm(len(nodes))
	inv := make([]int, len(nodes))
	for newID, oldID := range perm {
		inv[oldID] = newID
	}
	relabeled := make([]network.Node, len(nodes))
	for newID, oldID := range perm {
		relabeled[newID] = network.Node{ID: newID, Pos: nodes[oldID].Pos, Radius: nodes[oldID].Radius}
	}
	second, err := e.Compute(relabeled)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.CacheMisses != 0 || second.Stats.CacheHits != int64(len(nodes)) {
		t.Fatalf("relabeled recompute: %d hits / %d misses, want %d/0",
			second.Stats.CacheHits, second.Stats.CacheMisses, len(nodes))
	}
	for newID, oldID := range perm {
		want := make([]int, len(first.Forwarding[oldID]))
		for i, v := range first.Forwarding[oldID] {
			want[i] = inv[v]
		}
		sort.Ints(want)
		if !equalSets(second.Forwarding[newID], want) {
			t.Fatalf("node %d (was %d): forwarding = %v, want %v",
				newID, oldID, second.Forwarding[newID], want)
		}
		if first.HubInCover[oldID] != second.HubInCover[newID] {
			t.Fatalf("node %d (was %d): hubInCover changed under relabeling", newID, oldID)
		}
	}
	if e.CacheLen() == 0 {
		t.Fatal("cache is empty after two passes")
	}
}

// TestEngineSnapshotIsolation: a snapshot taken before an Update must not
// change when the engine recomputes moved nodes.
func TestEngineSnapshotIsolation(t *testing.T) {
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 2},
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 2},
		{ID: 2, Pos: geom.Pt(0, 1), Radius: 2},
	}
	e := New(Config{Cache: true})
	before, err := e.Compute(nodes)
	if err != nil {
		t.Fatal(err)
	}
	wantFwd := append([]int(nil), before.Forwarding[0]...)
	wantNbr := append([]int(nil), before.Neighbors[0]...)

	moved := append([]network.Node(nil), nodes...)
	moved[1].Pos = geom.Pt(50, 50) // leaves everyone's range
	if _, err := e.Update(moved); err != nil {
		t.Fatal(err)
	}
	if !equalSets(before.Forwarding[0], wantFwd) || !equalSets(before.Neighbors[0], wantNbr) {
		t.Fatalf("snapshot mutated by Update: fwd=%v nbrs=%v", before.Forwarding[0], before.Neighbors[0])
	}
	after := e.Result()
	if len(after.Neighbors[0]) != 1 || after.Neighbors[0][0] != 2 {
		t.Fatalf("after move, node 0 neighbors = %v, want [2]", after.Neighbors[0])
	}
}

// TestEngineInstrumentation checks the obs wiring end to end: Compute and
// Update book their passes, throughput gauges and cache metrics land in the
// registry, and uninstalling the registry stops collection.
func TestEngineInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg, nil)
	defer Instrument(nil, nil)

	rng := rand.New(rand.NewSource(3))
	nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Homogeneous, 6), rng)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Cache: true})
	if _, err := e.Compute(nodes); err != nil {
		t.Fatal(err)
	}
	moved := append([]network.Node(nil), nodes...)
	moved[1].Pos = moved[1].Pos.Add(geom.Pt(0.25, 0))
	if _, err := e.Update(moved); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[MetricComputeTotal]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricComputeTotal, got)
	}
	if got := snap.Counters[MetricUpdateTotal]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricUpdateTotal, got)
	}
	if got := snap.Counters[MetricNodesTotal]; got != int64(len(nodes)) {
		t.Fatalf("%s = %d, want %d", MetricNodesTotal, got, len(nodes))
	}
	if got := snap.Gauges[MetricNodesPerSec]; got <= 0 {
		t.Fatalf("%s = %g, want > 0", MetricNodesPerSec, got)
	}
	if frac := snap.Gauges[MetricDirtyFraction]; frac <= 0 || frac > 1 {
		t.Fatalf("%s = %g, want in (0, 1]", MetricDirtyFraction, frac)
	}
	if got := snap.Timers[MetricUpdateSeconds].Count; got != 1 {
		t.Fatalf("%s count = %d, want 1", MetricUpdateSeconds, got)
	}
}
