package engine

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metric names exported by this package (see docs/OBSERVABILITY.md).
const (
	MetricComputeTotal   = "engine_compute_total"
	MetricComputeSeconds = "engine_compute_seconds"
	MetricUpdateTotal    = "engine_update_total"
	MetricUpdateSeconds  = "engine_update_seconds"
	MetricNodesTotal     = "engine_nodes_total"
	MetricCellsTotal     = "engine_cells_total"
	MetricNodesPerSec    = "engine_nodes_per_second"
	MetricCellsPerSec    = "engine_cells_per_second"
	MetricCacheHits      = "engine_cache_hits_total"
	MetricCacheMisses    = "engine_cache_misses_total"
	MetricCacheHitRatio  = "engine_cache_hit_ratio"
	MetricCacheEntries   = "engine_cache_entries"
	MetricWorkers        = "engine_workers"
	// Per-pass load balance of the worker pool: the imbalance gauge is
	// max/mean nodes processed per worker (1.0 = perfectly balanced), and
	// the steal counter accumulates chunks claimed from another worker's
	// range by the work-stealing scheduler.
	MetricWorkerImbalance = "engine_worker_imbalance"
	MetricStealTotal      = "engine_steal_total"
	MetricDirtyNodes      = "engine_dirty_nodes"
	MetricDirtyFraction   = "engine_dirty_fraction"
	MetricFallbacks       = "engine_fallback_total"
	// Kinetic repair accounting (Update only): dirty nodes whose skyline
	// was patched in place, dirty nodes fully recomputed, repairs abandoned
	// mid-surgery (tie or invariant trip — a subset of the recomputes), and
	// the per-node latency of successful repairs.
	MetricRepairTotal         = "engine_repair_total"
	MetricRecomputeTotal      = "engine_recompute_total"
	MetricRepairFallbackTotal = "engine_repair_fallback_total"
	MetricRepairSeconds       = "engine_repair_seconds"

	// EventFallback is emitted once per node whose computed skyline failed
	// the runtime invariant check and was replaced by the full local set.
	EventFallback = "engine_fallback"

	// Span kinds emitted by this package (see obs.SpanTracer): one span per
	// whole-network Compute pass, one per incremental Update tick, one per
	// worker cell batch inside a pass, and one per per-node recompute.
	SpanCompute = "engine_compute"
	SpanUpdate  = "engine_update"
	SpanCell    = "engine_cell"
	SpanNode    = "engine_node"
	SpanRepair  = "engine_repair"
)

// engMetrics holds pre-resolved handles so the engine never touches the
// registry's name map on the hot path. Installed atomically by Instrument.
type engMetrics struct {
	computes       *obs.Counter
	computeSeconds *obs.Timer
	updates        *obs.Counter
	updateSeconds  *obs.Timer
	nodes          *obs.Counter
	cells          *obs.Counter
	nodesPerSec    *obs.Gauge
	cellsPerSec    *obs.Gauge
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheHitRatio  *obs.Gauge
	cacheEntries   *obs.Gauge
	workers        *obs.Gauge
	// Worker-pool load balance: imbalance is the last pass's max/mean
	// nodes per worker; steals accumulates work-stealing chunk claims.
	workerImbalance *obs.Gauge
	steals          *obs.Counter
	// dirtyNodes is the per-Update dirty-set size distribution;
	// dirtyFraction the last Update's dirty share of the network, the
	// quantity that makes incremental recompute worthwhile.
	dirtyNodes    *obs.Histogram
	dirtyFraction *obs.Gauge
	// fallbacks counts degeneracy fallbacks: nodes whose skyline failed
	// the runtime invariant check and got the full local set instead.
	fallbacks *obs.Counter
	// Kinetic repair accounting (see Stats.Repaired and friends).
	repairs         *obs.Counter
	recomputes      *obs.Counter
	repairFallbacks *obs.Counter
	repairSeconds   *obs.Timer
	sink            *obs.EventSink
	// Span kinds (nil when no sink is attached): pass → cell batch → node,
	// plus update ticks and per-node repairs. Per-kind sampling keeps the
	// trace bounded while the sharded totals keep counting past the budget.
	spanCompute *obs.SpanKind
	spanUpdate  *obs.SpanKind
	spanCell    *obs.SpanKind
	spanNode    *obs.SpanKind
	spanRepair  *obs.SpanKind
}

// engInstr is the installed instrumentation; nil means disabled, and the
// engine pays one atomic load per pass.
var engInstr atomic.Pointer[engMetrics]

// Instrument installs metrics collection (and, optionally, a structured
// event trace for degeneracy fallbacks) for this package. Either argument
// may be nil; passing both nil disables instrumentation entirely.
func Instrument(r *obs.Registry, sink *obs.EventSink) {
	if r == nil && sink == nil {
		engInstr.Store(nil)
		return
	}
	tracer := obs.NewSpanTracer(sink, 0)
	engInstr.Store(&engMetrics{
		computes:        r.Counter(MetricComputeTotal),
		computeSeconds:  r.Timer(MetricComputeSeconds),
		updates:         r.Counter(MetricUpdateTotal),
		updateSeconds:   r.Timer(MetricUpdateSeconds),
		nodes:           r.Counter(MetricNodesTotal),
		cells:           r.Counter(MetricCellsTotal),
		nodesPerSec:     r.Gauge(MetricNodesPerSec),
		cellsPerSec:     r.Gauge(MetricCellsPerSec),
		cacheHits:       r.Counter(MetricCacheHits),
		cacheMisses:     r.Counter(MetricCacheMisses),
		cacheHitRatio:   r.Gauge(MetricCacheHitRatio),
		cacheEntries:    r.Gauge(MetricCacheEntries),
		workers:         r.Gauge(MetricWorkers),
		workerImbalance: r.Gauge(MetricWorkerImbalance),
		steals:          r.Counter(MetricStealTotal),
		dirtyNodes:      r.Histogram(MetricDirtyNodes),
		dirtyFraction:   r.Gauge(MetricDirtyFraction),
		fallbacks:       r.Counter(MetricFallbacks),
		repairs:         r.Counter(MetricRepairTotal),
		recomputes:      r.Counter(MetricRecomputeTotal),
		repairFallbacks: r.Counter(MetricRepairFallbackTotal),
		repairSeconds:   r.Timer(MetricRepairSeconds),
		sink:            sink,
		spanCompute:     tracer.Kind(SpanCompute),
		spanUpdate:      tracer.Kind(SpanUpdate),
		spanCell:        tracer.Kind(SpanCell),
		spanNode:        tracer.Kind(SpanNode),
		spanRepair:      tracer.Kind(SpanRepair),
	})
}

// recordFallback books one degeneracy fallback and emits the trace event.
func (m *engMetrics) recordFallback(node, neighbors int, cause error) {
	m.fallbacks.Inc()
	m.sink.Emit(EventFallback, map[string]any{
		"node":      node,
		"neighbors": neighbors,
		"cause":     cause.Error(),
	})
}

// recordCompute books one finished whole-network pass.
func (m *engMetrics) recordCompute(s Stats, elapsed time.Duration, cache *skyCache) {
	m.computes.Inc()
	m.computeSeconds.Observe(elapsed)
	m.nodes.Add(int64(s.Nodes))
	m.cells.Add(int64(s.Cells))
	if sec := elapsed.Seconds(); sec > 0 {
		m.nodesPerSec.Set(float64(s.Nodes) / sec)
		m.cellsPerSec.Set(float64(s.Cells) / sec)
	}
	m.workers.Set(float64(s.Workers))
	m.recordBalance(s)
	m.recordCache(s, cache)
}

// recordUpdate books one incremental pass.
func (m *engMetrics) recordUpdate(s Stats, elapsed time.Duration, cache *skyCache) {
	m.updates.Inc()
	m.updateSeconds.Observe(elapsed)
	m.dirtyNodes.Observe(float64(s.Dirty))
	if s.Nodes > 0 {
		m.dirtyFraction.Set(float64(s.Dirty) / float64(s.Nodes))
	}
	m.repairs.Add(int64(s.Repaired))
	m.recomputes.Add(int64(s.Recomputed))
	m.repairFallbacks.Add(int64(s.RepairFallbacks))
	m.recordBalance(s)
	m.recordCache(s, cache)
}

// recordBalance books the pass's worker load-balance summary. The gauge
// only moves on multi-worker passes — an empty or single-worker pass has
// no balance to speak of and would just reset the gauge to 1.
func (m *engMetrics) recordBalance(s Stats) {
	if s.WorkerImbalance > 0 {
		m.workerImbalance.Set(s.WorkerImbalance)
	}
	if s.Steals > 0 {
		m.steals.Add(int64(s.Steals))
	}
}

func (m *engMetrics) recordCache(s Stats, cache *skyCache) {
	m.cacheHits.Add(s.CacheHits)
	m.cacheMisses.Add(s.CacheMisses)
	if total := s.CacheHits + s.CacheMisses; total > 0 {
		m.cacheHitRatio.Set(float64(s.CacheHits) / float64(total))
	}
	m.cacheEntries.Set(float64(cache.len()))
}
