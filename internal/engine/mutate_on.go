//go:build mldcsmutate

package engine

// Mutation build: a deliberately injected engine bug, used to prove the
// chaos e2e harness (internal/e2e) is sensitive to real forwarding-set
// corruption — a harness that passes with this bug compiled in is not
// checking anything. Never ships: the tag exists only for
// `go test -tags mldcsmutate` (see docs/TESTING.md).
const mutationEnabled = true

// mutateForwarding drops the largest-ID relay from the forwarding set of
// every node whose ID is ≡ 5 (mod 17) — a silent "missing relay" bug, the
// exact failure class (an under-cover forwarding set) Theorem 3 rules out
// for the correct algorithm. Only sets with ≥ 2 relays are touched so the
// network stays plausibly connected and the bug survives casual smoke
// tests.
func mutateForwarding(fwd []int, u int) []int {
	if u%17 == 5 && len(fwd) >= 2 {
		return fwd[:len(fwd)-1]
	}
	return fwd
}
