// Package engine computes MLDCS forwarding sets for an entire network in
// one batched pass. The paper solves the problem one hub at a time
// (Theorem 3: the MLDCS is the skyline set, O(n log n) per node); this
// package is the whole-network counterpart that a production deployment
// needs: neighbor discovery through a shared spatial grid, a worker pool
// sharded over grid cells with per-worker scratch buffers, a skyline cache
// keyed by a canonical neighborhood fingerprint so bit-identical local
// sets are solved once, and an incremental recompute path that only redoes
// the neighborhoods a movement step actually dirtied.
//
// The engine is observationally equivalent to the sequential per-node
// loop (network.Build + Graph.LocalSet + mldcs.Solve for every node): the
// differential test harness in this package asserts element-identical
// forwarding sets across worker counts and cache settings, against both
// the per-node solver and the naive skyline oracle.
package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/skyline"
	"repro/internal/spatial"
)

// Config parameterizes an Engine.
type Config struct {
	// Workers is the number of concurrent shard workers; ≤ 0 selects
	// GOMAXPROCS.
	Workers int
	// Cache enables the skyline cache: local sets with bit-identical
	// canonical fingerprints (see cache.go) are solved once and replayed.
	// Structured deployments (grids, co-located clusters, replayed traces)
	// hit constantly; uniform random deployments almost never do, and pay
	// only the fingerprint cost.
	Cache bool
	// CellSize overrides the spatial grid's cell size; ≤ 0 selects the
	// maximum transmission radius, which bounds every neighbor query to a
	// 3×3 cell window.
	CellSize float64
	// DisableRepair turns off the kinetic repair fast path: every dirty
	// node in Update recomputes its skyline from scratch, as the engine
	// did before repair existed. For benchmarking (the BENCH_engine.json
	// update section measures repair against exactly this baseline) and
	// for bisecting a suspected repair bug in production.
	DisableRepair bool
}

// Stats summarizes one Compute or Update pass.
type Stats struct {
	Nodes   int // nodes in the network
	Edges   int // directed neighbor entries (sum of out-degrees)
	Cells   int // occupied grid cells (the shard count)
	Workers int // workers actually used
	// Cache accounting for this pass (zero when the cache is disabled).
	CacheHits   int64
	CacheMisses int64
	// Update-only accounting: nodes whose state changed, and neighborhoods
	// recomputed (moved nodes plus their old and new neighbors). A full
	// Compute reports Dirty == Nodes.
	Moved int
	Dirty int
	// Fallbacks counts the nodes in this pass whose computed skyline
	// failed the runtime invariant check (skyline.CheckInvariants) and
	// were given the always-correct full local set instead — a degenerate
	// input degrades to a bigger forwarding set, never a wrong one.
	Fallbacks int
	// Kinetic accounting, Update-only (zero on a full Compute). Every
	// dirty node is either Repaired (its cached skyline was patched in
	// place by arc surgery) or Recomputed (full skyline recompute: the
	// node itself moved, its kinetic state was invalid, the neighborhood
	// diff was too large, or a repair was abandoned). RepairFallbacks
	// counts the abandoned repairs — an envelope tie or a tripped
	// invariant mid-surgery — which recompute and are also in Recomputed.
	// Distinct from Fallbacks: a repair fallback falls back to the normal
	// full compute, not to the degenerate full-local-set answer.
	Repaired        int
	Recomputed      int
	RepairFallbacks int
	// Per-worker load accounting for the pass's parallel section (see
	// pool.go): the heaviest and mean per-worker share of work items (cell
	// batches) and nodes, the number of chunks obtained by work-stealing,
	// and the imbalance ratio WorkerMaxNodes / WorkerMeanNodes (1.0 =
	// perfectly balanced, higher = skew; 0 when the pass ran no work).
	// Exported as the engine_worker_imbalance gauge and recorded in the
	// benchmark reports to diagnose contended (hotspot) workloads.
	WorkerMaxCells  int
	WorkerMeanCells float64
	WorkerMaxNodes  int
	WorkerMeanNodes float64
	WorkerImbalance float64
	Steals          int
}

// Result is a snapshot of the engine's per-node output. The top-level
// slices are fresh per snapshot; the per-node sub-slices are shared with
// the engine (and with later snapshots for nodes that did not change) and
// must not be modified.
//
// A Result is immutable once returned, so it may be published (e.g.
// through an atomic.Pointer) and read concurrently while the engine keeps
// computing — this is the epoch-snapshot read path mldcsd serves queries
// from. Later passes replace per-node sub-slices, never write through
// them, so an old snapshot stays internally consistent forever.
//
//mldcs:immutable
type Result struct {
	// Epoch numbers the pass that produced this snapshot: 1 for the first
	// successful Compute, incremented by every later Compute or Update.
	// Two snapshots with the same Epoch are identical; a reader holding a
	// sequence of snapshots can assert monotonicity.
	Epoch uint64
	// Forwarding[u] holds the sorted IDs of u's forwarding set: the
	// neighbors whose disks contribute arcs to u's skyline (the paper's
	// relay set, mldcs.Result.NeighborCover mapped to node IDs).
	Forwarding [][]int
	// HubInCover[u] reports whether u's own disk is part of its minimum
	// local disk cover set (mldcs.Result.ContainsHub).
	HubInCover []bool
	// Neighbors[u] holds u's sorted bidirectional 1-hop neighbor IDs,
	// exactly as network.Build would report them.
	Neighbors [][]int
	// Stats describes the pass that produced this snapshot.
	Stats Stats
}

// Engine computes and maintains forwarding sets for a whole network. An
// Engine is not safe for concurrent use; it parallelizes internally.
type Engine struct {
	cfg   Config
	nodes []network.Node
	grid  *spatial.Grid
	fwd   [][]int
	hubIn []bool
	nbrs  [][]int
	cache *skyCache
	stats Stats
	// epoch counts successful Compute/Update passes; snapshot stamps it
	// into Result.Epoch.
	epoch uint64
	// fallbacks counts degeneracy fallbacks within the current pass;
	// atomic because computeNode runs on the worker pool.
	fallbacks atomic.Int64
	// Kinetic per-pass counters, same worker-pool atomicity story.
	repaired   atomic.Int64
	recomputed atomic.Int64
	repairFB   atomic.Int64
	// kin holds each node's kinetic state — the hub-frame disk list and
	// skyline the last full compute produced — which Update's repair path
	// patches in place instead of recomputing. Entry u is only ever
	// touched by the worker that owns node u in the current pass.
	kin []kinState
	// Update's diff buffers, reused across calls so a steady mobility loop
	// does not re-allocate the moved/dirty bookkeeping every step.
	updMoved     []int
	updDirty     []bool
	updList      []int
	updMovedMark []bool
	// updCand[v] lists the moved nodes that may have changed v's link set
	// this pass (possibly with duplicates): filled alongside the dirty
	// marking, consumed by updateNode's repair gather — which therefore
	// never needs a grid query — and reset entry-wise after the pass.
	updCand [][]int
	// Parallel-driver state (pool.go): persistent per-worker scratches,
	// the reusable claim queues, the last pass's per-worker load books,
	// Compute's flattened work items, and Update's cell-batch buffers.
	scratches  []*scratch
	queues     []taskQueue
	lastLoads  []workerLoad
	items      []cellSpan
	updEnts    []updEnt
	updEntsTmp []updEnt
	updSpans   []updSpan
	// The update pass closure and its error collector persist on the
	// engine (runUpdatePass): a per-call closure would escape through the
	// worker goroutines and cost a heap allocation every tick.
	updPassFn   func(i int, sc *scratch)
	updPassMark []bool
	updPassErr  runErr
}

// kinState is one node's cached kinetic state: the neighbor IDs parallel
// to disks[1:] (disks[0] is the hub's own disk), and the skyline over
// disks. The ID order starts canonical (the compute's tuple order) and is
// scrambled by swap-compaction as neighbors depart; only the parallel
// correspondence matters. valid is false whenever the cached pair cannot
// be trusted: before the first compute, after a cache-hit replay or a
// degeneracy fallback (neither computes a skyline), or mid-abandoned
// repair.
type kinState struct {
	valid bool
	ids   []int
	disks []geom.Disk
	sl    skyline.Skyline
}

// checkInvariants is the runtime envelope check computeNode applies to
// every freshly computed skyline. A package variable so the fallback path
// can be exercised deterministically from tests; production code never
// reassigns it.
var checkInvariants = func(sl skyline.Skyline, n int) error {
	return sl.CheckInvariants(n)
}

// New returns an engine with the given configuration. The cache, when
// enabled, persists across Compute and Update calls, so recomputing a
// relabeled copy of a network hits it wholesale.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	if cfg.Cache {
		e.cache = newSkyCache()
	}
	return e
}

// Compute runs the full whole-network pass: index the nodes in a spatial
// grid, then solve every node's MLDCS, sharding the grid's cells over the
// worker pool. Node IDs must equal their slice positions and radii must be
// positive (as in network.Build). The nodes slice is copied.
func (e *Engine) Compute(nodes []network.Node) (*Result, error) {
	m := engInstr.Load()
	start := time.Now()

	maxR := 0.0
	for i, n := range nodes {
		if n.ID != i {
			return nil, fmt.Errorf("engine: node at position %d has ID %d; IDs must be dense", i, n.ID)
		}
		if !(n.Radius > 0) {
			return nil, fmt.Errorf("engine: node %d has non-positive radius %g", i, n.Radius)
		}
		if n.Radius > maxR {
			maxR = n.Radius
		}
	}
	e.nodes = append(e.nodes[:0], nodes...)
	e.fwd = make([][]int, len(nodes))
	e.hubIn = make([]bool, len(nodes))
	e.nbrs = make([][]int, len(nodes))
	e.grid = nil
	e.stats = Stats{Nodes: len(nodes)}
	e.fallbacks.Store(0)
	// Invalidate (but keep) the kinetic state: per-node buffers persist
	// across passes so a steady Compute/Update cadence stays allocation-free.
	if cap(e.kin) >= len(nodes) {
		e.kin = e.kin[:len(nodes)]
		for i := range e.kin {
			e.kin[i].valid = false
		}
	} else {
		e.kin = make([]kinState, len(nodes))
	}

	if len(nodes) == 0 {
		e.epoch++
		return e.snapshot(), nil
	}
	cell := e.cfg.CellSize
	if cell <= 0 {
		cell = maxR
	}
	pts := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = n.Pos
	}
	e.grid = spatial.NewGrid(pts, cell)
	cells := e.grid.Cells()
	e.stats.Cells = len(cells)

	hits0, misses0 := e.cache.counts()
	var passSpan obs.Span
	var spanCell *obs.SpanKind
	if m != nil {
		passSpan = m.spanCompute.Begin()
		spanCell = m.spanCell
	}
	e.buildComputeItems(cells)
	var firstErr runErr
	workers := e.forEachTask(len(e.items), func(i int, sc *scratch) {
		it := e.items[i]
		batch := cells[it.cell][it.lo:it.hi]
		batchSpan := spanCell.Begin()
		for _, u := range batch {
			if err := e.computeNode(u, sc); err != nil {
				firstErr.set(err)
				break
			}
		}
		sc.load.nodes += len(batch)
		if batchSpan.Sampled() {
			batchSpan.End(map[string]any{"cell": int(it.cell), "nodes": len(batch)})
		}
	})
	if err := firstErr.get(); err != nil {
		return nil, err
	}
	e.stats.Workers = workers
	e.stats.recordLoads(e.lastLoads)
	e.stats.Dirty = len(nodes)
	e.stats.Fallbacks = int(e.fallbacks.Load())
	hits1, misses1 := e.cache.counts()
	e.stats.CacheHits = hits1 - hits0
	e.stats.CacheMisses = misses1 - misses0
	for _, nb := range e.nbrs {
		e.stats.Edges += len(nb)
	}

	e.epoch++
	if m != nil {
		m.recordCompute(e.stats, time.Since(start), e.cache)
	}
	if passSpan.Sampled() {
		passSpan.End(map[string]any{
			"nodes":   e.stats.Nodes,
			"cells":   e.stats.Cells,
			"workers": e.stats.Workers,
		})
	}
	return e.snapshot(), nil
}

// snapshot builds a Result view of the engine's current state. Top-level
// slices are copied so later Updates do not mutate the snapshot; per-node
// slices are replaced (never written through) by Update, so shared
// sub-slices stay consistent.
func (e *Engine) snapshot() *Result {
	return &Result{
		Epoch:      e.epoch,
		Forwarding: append([][]int(nil), e.fwd...),
		HubInCover: append([]bool(nil), e.hubIn...),
		Neighbors:  append([][]int(nil), e.nbrs...),
		Stats:      e.stats,
	}
}

// Result returns a snapshot of the engine's current per-node output (the
// same view the last Compute or Update returned).
func (e *Engine) Result() *Result { return e.snapshot() }

// CacheLen returns the number of distinct neighborhood fingerprints
// currently cached (0 when the cache is disabled).
func (e *Engine) CacheLen() int { return e.cache.len() }

// scratch holds one worker's reusable buffers, including the skyline
// package's working memory. All slices are grown once and then recycled,
// and per-node outputs are compare-and-kept against the previous pass, so
// a steady-state recompute (same geometry, warm buffers) performs zero
// heap allocations per node — the allocation regression tests pin this.
type scratch struct {
	ids        []int           // gathered neighbor IDs
	tuples     []nbTuple       // canonical neighbor ordering
	tupleTmp   []nbTuple       // merge buffer for sortTuples
	disks      []geom.Disk     // hub-frame disk set handed to the skyline
	key        []byte          // fingerprint bytes
	sky        skyline.Scratch // skyline working memory (ComputeInto)
	sl         skyline.Skyline // reusable skyline output
	cover      []int           // reusable skyline set
	canon      []int32         // reusable canonical cover positions
	canonArena []int32         // chunked backing store for cache-entry canons
	fwdBuf     []int           // reusable mapped forwarding IDs
	hits       int64           // cache counters, flushed once per worker
	misses     int64
	bypass     bool // adaptive cache bypass tripped this pass
	// l1 is this worker's private front over the shared striped cache:
	// lock-free replay of fingerprints this worker has already resolved,
	// bounded by l1MaxEntries (see cache.go). Persisting with the scratch
	// across passes keeps structured steady-state workloads entirely off
	// the shared shards.
	l1 map[string]cacheEntry
	// load books this worker's share of the current pass (pool.go).
	load workerLoad
	// Kinetic repair buffers (see kinetic.go): neighborhood diff lists,
	// the sorted copy of the cached neighbor IDs the diff searches, and
	// the skyline the repair surgery ping-pongs through.
	lost    []int
	gained  []int
	movedNb []int
	oldIDs  []int
	cands   []int
	ksl     skyline.Skyline
}

// ownCanon returns a copy of sc.canon that outlives the scratch, carved
// from a chunked arena so a cache-cold pass performs a handful of block
// allocations instead of one small allocation per miss.
//
//mldcs:hotpath
func (sc *scratch) ownCanon() []int32 {
	n := len(sc.canon)
	if cap(sc.canonArena)-len(sc.canonArena) < n {
		//mldcslint:allow hotpathalloc arena block growth, one allocation amortized over thousands of entries
		sc.canonArena = make([]int32, 0, max(4096, n))
	}
	start := len(sc.canonArena)
	sc.canonArena = append(sc.canonArena, sc.canon...)
	return sc.canonArena[start : start+n : start+n]
}

// nbTuple is one neighbor disk in the hub-at-origin frame, carrying the
// raw float bits used for canonical ordering and fingerprinting.
type nbTuple struct {
	xb, yb, rb uint64
	disk       geom.Disk
	id         int
}

// computeNode recomputes node u's neighborhood and forwarding set. It
// mirrors network.Build's bidirectional link predicate exactly (same grid
// query, same tolerance), so Neighbors matches Graph.Neighbors bit for
// bit; the local set is then canonicalized and solved (or replayed from
// the cache).
//
//mldcs:hotpath
func (e *Engine) computeNode(u int, sc *scratch) error {
	var nodeSpan obs.Span
	if m := engInstr.Load(); m != nil {
		//mldcslint:allow hotpathalloc span begin runs only with instrumentation attached; TestComputeNodeInstrumentedAllocs bounds it
		nodeSpan = m.spanNode.Begin()
	}
	hub := e.nodes[u]
	sc.ids = sc.ids[:0]
	//mldcslint:allow hotpathalloc closure does not escape VisitWithin, so it stays on the stack; TestComputeNodeSteadyStateAllocs pins the pass at zero
	e.grid.VisitWithin(hub.Pos, hub.Radius, func(v int) {
		if v == u {
			return
		}
		if !geom.Reaches(e.nodes[v].Pos, hub.Pos, e.nodes[v].Radius) {
			return // v cannot reach back
		}
		sc.ids = append(sc.ids, v)
	})
	sort.Ints(sc.ids)
	e.nbrs[u] = keepInts(e.nbrs[u], sc.ids)

	// Canonical ordering: neighbors in the hub frame sorted by their raw
	// coordinate bits. The order is independent of node IDs and of the
	// node's absolute position, so two nodes anywhere in the network with
	// bit-identical relative neighborhoods produce the same disk sequence —
	// and hence the same skyline computation and the same fingerprint.
	// The sort is stable over ids already in ascending order, so exact
	// duplicate disks keep their ID order and the skyline's canonical
	// tie-break (larger radius, then lower index) picks the same
	// representative the per-node solver would.
	sc.tuples = sc.tuples[:0]
	for _, v := range sc.ids {
		d := e.nodes[v].Disk().Translate(hub.Pos)
		sc.tuples = append(sc.tuples, nbTuple{
			xb:   math.Float64bits(d.C.X),
			yb:   math.Float64bits(d.C.Y),
			rb:   math.Float64bits(d.R),
			disk: d,
			id:   v,
		})
	}
	sortTuples(sc)

	var shard *cacheShard
	if e.cache != nil && !sc.bypass {
		sc.key = appendFingerprint(sc.key[:0], hub.Radius, sc.tuples)
		// L1 front first: a fingerprint this worker has already resolved
		// replays without touching the shared shards (no hash, no lock).
		ent, ok := sc.l1[string(sc.key)]
		if !ok {
			shard = e.cache.shard(sc.key)
			if ent, ok = shard.get(sc.key); ok {
				// Promote the shared hit into the private front so this
				// worker's next encounter is lock-free.
				//mldcslint:allow hotpathalloc L1 promotion inserts at most l1MaxEntries distinct keys per worker over the engine's lifetime; steady state only reads
				sc.l1Put(sc.key, ent)
			}
		}
		if ok {
			sc.hits++
			// A replayed entry carries no skyline, so the kinetic state
			// cannot be refreshed; repair for this node resumes after its
			// next full compute.
			e.kin[u].valid = false
			sc.fwdBuf = appendMappedCover(sc.fwdBuf[:0], ent.canon, sc.tuples)
			sc.fwdBuf = mutateForwarding(sc.fwdBuf, u)
			e.fwd[u] = keepInts(e.fwd[u], sc.fwdBuf)
			e.hubIn[u] = ent.hubIn
			if nodeSpan.Sampled() {
				//mldcslint:allow hotpathalloc span finalization runs only for sampled spans, off the steady path
				nodeSpan.End(map[string]any{"node": u, "neighbors": len(sc.ids), "cached": true})
			}
			return nil
		}
		sc.misses++
		if sc.hits+sc.misses >= cacheBypassWindow && sc.hits*cacheBypassRatio < sc.misses {
			sc.bypass = true
		}
	}

	sc.disks = sc.disks[:0]
	sc.disks = append(sc.disks, geom.Disk{R: hub.Radius})
	for i := range sc.tuples {
		sc.disks = append(sc.disks, sc.tuples[i].disk)
	}
	// The local-disk-set precondition holds by construction — Compute
	// validated the hub radius and the link predicate only admits neighbors
	// that reach back over the hub — so the validation pass is skipped; a
	// degenerate result is still caught by the invariant check below.
	sc.sl = sc.sky.ComputeIntoUnchecked(sc.sl, sc.disks)
	if ierr := checkInvariants(sc.sl, len(sc.disks)); ierr != nil {
		//mldcslint:allow hotpathalloc degeneracy fallback, cold by construction (invariant violations are counted and rare)
		e.fallbackNode(u, ierr)
		if nodeSpan.Sampled() {
			//mldcslint:allow hotpathalloc span finalization runs only for sampled spans, off the steady path
			nodeSpan.End(map[string]any{"node": u, "neighbors": len(sc.ids), "fallback": true})
		}
		return nil
	}
	if !e.cfg.DisableRepair {
		// Seed the kinetic state for Update's repair path: the neighbor IDs
		// in tuple (canonical) order, parallel to disks[1:], plus the
		// freshly verified skyline. append-into keeps the steady path free
		// of allocations once the per-node buffers are warm.
		st := &e.kin[u]
		st.ids = st.ids[:0]
		for i := range sc.tuples {
			st.ids = append(st.ids, sc.tuples[i].id)
		}
		st.disks = append(st.disks[:0], sc.disks...)
		st.sl = append(st.sl[:0], sc.sl...)
		st.valid = true
	}
	sc.cover = sc.sl.AppendSet(sc.cover)
	hubIn := false
	sc.canon = sc.canon[:0]
	for _, i := range sc.cover {
		if i == 0 {
			hubIn = true
			continue
		}
		sc.canon = append(sc.canon, int32(i-1))
	}
	sc.fwdBuf = appendMappedCover(sc.fwdBuf[:0], sc.canon, sc.tuples)
	sc.fwdBuf = mutateForwarding(sc.fwdBuf, u)
	e.fwd[u] = keepInts(e.fwd[u], sc.fwdBuf)
	e.hubIn[u] = hubIn
	if shard != nil {
		// The entry outlives the scratch buffers, so it owns its canon copy
		// (arena-backed); put itself copies the key. Misses are the only
		// allocating branch of the per-node loop, and a steady-state pass
		// has none. The fresh entry also seeds this worker's L1 front so a
		// re-encounter replays without the shared shard.
		ent := cacheEntry{hubIn: hubIn, canon: sc.ownCanon()}
		shard.put(sc.key, ent)
		//mldcslint:allow hotpathalloc miss path only — bounded by l1MaxEntries distinct fingerprints per worker; steady-state passes never miss
		sc.l1Put(sc.key, ent)
	}
	if nodeSpan.Sampled() {
		//mldcslint:allow hotpathalloc span finalization runs only for sampled spans, off the steady path
		nodeSpan.End(map[string]any{"node": u, "neighbors": len(sc.ids), "cover": len(sc.fwdBuf)})
	}
	return nil
}

// keepInts returns old unchanged when it already holds exactly the values
// of cur — earlier snapshots share that slice, and reusing it keeps the
// steady-state path allocation-free — and a fresh copy of cur otherwise.
// Engine outputs are never written through, so sharing is safe.
//
//mldcs:hotpath
func keepInts(old, cur []int) []int {
	if len(old) == len(cur) {
		same := true
		for i, v := range cur {
			if old[i] != v {
				same = false
				break
			}
		}
		if same {
			return old
		}
	}
	//mldcslint:allow hotpathalloc cold branch: copies only when the value set changed; steady state returns old
	out := make([]int, len(cur))
	copy(out, cur)
	return out
}

// sortTuples orders the worker's tuple buffer by the raw (rb, xb, yb) bits
// with a bottom-up stable merge sort through sc.tupleTmp. Stability over
// the ascending-ID gather order is what lets exact duplicate disks keep
// their ID order for the canonical tie-break; sort.SliceStable provides it
// too but allocates its reflect-based swapper on every call, which is the
// kind of per-node garbage this loop must not produce.
//
//mldcs:hotpath
func sortTuples(sc *scratch) {
	n := len(sc.tuples)
	if n < 2 {
		return
	}
	if cap(sc.tupleTmp) < n {
		//mldcslint:allow hotpathalloc merge-buffer growth, amortized to zero once the scratch is warm
		sc.tupleTmp = make([]nbTuple, n)
	}
	src, dst := sc.tuples[:n], sc.tupleTmp[:n]
	inTuples := true
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			mergeTuples(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
		inTuples = !inTuples
	}
	if !inTuples {
		copy(sc.tuples, src)
	}
}

// mergeTuples merges the sorted runs a and b into dst, taking from a on
// ties (stability). len(dst) == len(a)+len(b).
func mergeTuples(dst, a, b []nbTuple) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if tupleLess(&b[j], &a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// tupleLess is the canonical neighbor order: ascending raw radius bits,
// then center x bits, then center y bits.
func tupleLess(a, b *nbTuple) bool {
	if a.rb != b.rb {
		return a.rb < b.rb
	}
	if a.xb != b.xb {
		return a.xb < b.xb
	}
	return a.yb < b.yb
}

// fallbackNode installs the degeneracy-safe answer for node u after its
// computed skyline failed the runtime invariant check: the full local set
// — every neighbor relays and the hub's own disk stays in the cover —
// which is a correct (if non-minimal) cover of any local disk set. The
// event is counted in Stats.Fallbacks and logged through internal/obs.
// The result is deliberately not cached: a fingerprint-colliding healthy
// neighborhood must not replay a degenerate answer.
func (e *Engine) fallbackNode(u int, cause error) {
	e.kin[u].valid = false
	e.fwd[u] = append([]int(nil), e.nbrs[u]...)
	e.hubIn[u] = true
	e.fallbacks.Add(1)
	if m := engInstr.Load(); m != nil {
		m.recordFallback(u, len(e.nbrs[u]), cause)
	}
}

// appendMappedCover translates canonical cover positions back to sorted
// node IDs, appending to dst (scratch-buffer friendly: pass dst[:0]).
//
//mldcs:hotpath
func appendMappedCover(dst []int, canon []int32, tuples []nbTuple) []int {
	for _, p := range canon {
		dst = append(dst, tuples[p].id)
	}
	sort.Ints(dst)
	return dst
}

// runErr collects the first error raised inside the worker pool.
type runErr struct {
	mu  sync.Mutex
	err error
}

func (f *runErr) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *runErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// reset clears the collector for reuse across passes.
func (f *runErr) reset() {
	f.mu.Lock()
	f.err = nil
	f.mu.Unlock()
}
