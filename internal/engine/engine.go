// Package engine computes MLDCS forwarding sets for an entire network in
// one batched pass. The paper solves the problem one hub at a time
// (Theorem 3: the MLDCS is the skyline set, O(n log n) per node); this
// package is the whole-network counterpart that a production deployment
// needs: neighbor discovery through a shared spatial grid, a worker pool
// sharded over grid cells with per-worker scratch buffers, a skyline cache
// keyed by a canonical neighborhood fingerprint so bit-identical local
// sets are solved once, and an incremental recompute path that only redoes
// the neighborhoods a movement step actually dirtied.
//
// The engine is observationally equivalent to the sequential per-node
// loop (network.Build + Graph.LocalSet + mldcs.Solve for every node): the
// differential test harness in this package asserts element-identical
// forwarding sets across worker counts and cache settings, against both
// the per-node solver and the naive skyline oracle.
package engine

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/skyline"
	"repro/internal/spatial"
)

// Config parameterizes an Engine.
type Config struct {
	// Workers is the number of concurrent shard workers; ≤ 0 selects
	// GOMAXPROCS.
	Workers int
	// Cache enables the skyline cache: local sets with bit-identical
	// canonical fingerprints (see cache.go) are solved once and replayed.
	// Structured deployments (grids, co-located clusters, replayed traces)
	// hit constantly; uniform random deployments almost never do, and pay
	// only the fingerprint cost.
	Cache bool
	// CellSize overrides the spatial grid's cell size; ≤ 0 selects the
	// maximum transmission radius, which bounds every neighbor query to a
	// 3×3 cell window.
	CellSize float64
}

// Stats summarizes one Compute or Update pass.
type Stats struct {
	Nodes   int // nodes in the network
	Edges   int // directed neighbor entries (sum of out-degrees)
	Cells   int // occupied grid cells (the shard count)
	Workers int // workers actually used
	// Cache accounting for this pass (zero when the cache is disabled).
	CacheHits   int64
	CacheMisses int64
	// Update-only accounting: nodes whose state changed, and neighborhoods
	// recomputed (moved nodes plus their old and new neighbors). A full
	// Compute reports Dirty == Nodes.
	Moved int
	Dirty int
	// Fallbacks counts the nodes in this pass whose computed skyline
	// failed the runtime invariant check (skyline.CheckInvariants) and
	// were given the always-correct full local set instead — a degenerate
	// input degrades to a bigger forwarding set, never a wrong one.
	Fallbacks int
}

// Result is a snapshot of the engine's per-node output. The top-level
// slices are fresh per snapshot; the per-node sub-slices are shared with
// the engine (and with later snapshots for nodes that did not change) and
// must not be modified.
type Result struct {
	// Forwarding[u] holds the sorted IDs of u's forwarding set: the
	// neighbors whose disks contribute arcs to u's skyline (the paper's
	// relay set, mldcs.Result.NeighborCover mapped to node IDs).
	Forwarding [][]int
	// HubInCover[u] reports whether u's own disk is part of its minimum
	// local disk cover set (mldcs.Result.ContainsHub).
	HubInCover []bool
	// Neighbors[u] holds u's sorted bidirectional 1-hop neighbor IDs,
	// exactly as network.Build would report them.
	Neighbors [][]int
	// Stats describes the pass that produced this snapshot.
	Stats Stats
}

// Engine computes and maintains forwarding sets for a whole network. An
// Engine is not safe for concurrent use; it parallelizes internally.
type Engine struct {
	cfg   Config
	nodes []network.Node
	grid  *spatial.Grid
	fwd   [][]int
	hubIn []bool
	nbrs  [][]int
	cache *skyCache
	stats Stats
	// fallbacks counts degeneracy fallbacks within the current pass;
	// atomic because computeNode runs on the worker pool.
	fallbacks atomic.Int64
}

// checkInvariants is the runtime envelope check computeNode applies to
// every freshly computed skyline. A package variable so the fallback path
// can be exercised deterministically from tests; production code never
// reassigns it.
var checkInvariants = func(sl skyline.Skyline, n int) error {
	return sl.CheckInvariants(n)
}

// New returns an engine with the given configuration. The cache, when
// enabled, persists across Compute and Update calls, so recomputing a
// relabeled copy of a network hits it wholesale.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	if cfg.Cache {
		e.cache = newSkyCache()
	}
	return e
}

// Compute runs the full whole-network pass: index the nodes in a spatial
// grid, then solve every node's MLDCS, sharding the grid's cells over the
// worker pool. Node IDs must equal their slice positions and radii must be
// positive (as in network.Build). The nodes slice is copied.
func (e *Engine) Compute(nodes []network.Node) (*Result, error) {
	m := engInstr.Load()
	start := time.Now()

	maxR := 0.0
	for i, n := range nodes {
		if n.ID != i {
			return nil, fmt.Errorf("engine: node at position %d has ID %d; IDs must be dense", i, n.ID)
		}
		if !(n.Radius > 0) {
			return nil, fmt.Errorf("engine: node %d has non-positive radius %g", i, n.Radius)
		}
		if n.Radius > maxR {
			maxR = n.Radius
		}
	}
	e.nodes = append(e.nodes[:0], nodes...)
	e.fwd = make([][]int, len(nodes))
	e.hubIn = make([]bool, len(nodes))
	e.nbrs = make([][]int, len(nodes))
	e.grid = nil
	e.stats = Stats{Nodes: len(nodes)}
	e.fallbacks.Store(0)

	if len(nodes) == 0 {
		return e.snapshot(), nil
	}
	cell := e.cfg.CellSize
	if cell <= 0 {
		cell = maxR
	}
	pts := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = n.Pos
	}
	e.grid = spatial.NewGrid(pts, cell)
	cells := e.grid.Cells()
	e.stats.Cells = len(cells)

	hits0, misses0 := e.cache.counts()
	var firstErr runErr
	workers := e.forEachShard(len(cells), func(i int, sc *scratch) {
		for _, u := range cells[i] {
			if err := e.computeNode(u, sc); err != nil {
				firstErr.set(err)
				return
			}
		}
	})
	if err := firstErr.get(); err != nil {
		return nil, err
	}
	e.stats.Workers = workers
	e.stats.Dirty = len(nodes)
	e.stats.Fallbacks = int(e.fallbacks.Load())
	hits1, misses1 := e.cache.counts()
	e.stats.CacheHits = hits1 - hits0
	e.stats.CacheMisses = misses1 - misses0
	for _, nb := range e.nbrs {
		e.stats.Edges += len(nb)
	}

	if m != nil {
		m.recordCompute(e.stats, time.Since(start), e.cache)
	}
	return e.snapshot(), nil
}

// snapshot builds a Result view of the engine's current state. Top-level
// slices are copied so later Updates do not mutate the snapshot; per-node
// slices are replaced (never written through) by Update, so shared
// sub-slices stay consistent.
func (e *Engine) snapshot() *Result {
	return &Result{
		Forwarding: append([][]int(nil), e.fwd...),
		HubInCover: append([]bool(nil), e.hubIn...),
		Neighbors:  append([][]int(nil), e.nbrs...),
		Stats:      e.stats,
	}
}

// Result returns a snapshot of the engine's current per-node output (the
// same view the last Compute or Update returned).
func (e *Engine) Result() *Result { return e.snapshot() }

// CacheLen returns the number of distinct neighborhood fingerprints
// currently cached (0 when the cache is disabled).
func (e *Engine) CacheLen() int { return e.cache.len() }

// forEachShard runs fn(i, scratch) for every shard index in [0, n) with
// the configured worker count. Shards are handed out through an atomic
// cursor so the pool self-balances across cells of uneven population; each
// worker owns one scratch, giving the steady path zero engine-side
// allocations. Returns the number of workers used.
func (e *Engine) forEachShard(n int, fn func(i int, sc *scratch)) int {
	if n == 0 {
		return 0
	}
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := &scratch{}
		for i := 0; i < n; i++ {
			fn(i, sc)
		}
		e.cache.flush(sc)
		return 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &scratch{}
			defer e.cache.flush(sc)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, sc)
			}
		}()
	}
	wg.Wait()
	return workers
}

// scratch holds one worker's reusable buffers. All slices are grown once
// and then recycled, so the per-node loop does not allocate beyond the
// output slices themselves.
type scratch struct {
	ids    []int       // gathered neighbor IDs
	tuples []nbTuple   // canonical neighbor ordering
	disks  []geom.Disk // hub-frame disk set handed to the skyline
	key    []byte      // fingerprint bytes
	hits   int64       // cache counters, flushed once per worker
	misses int64
}

// nbTuple is one neighbor disk in the hub-at-origin frame, carrying the
// raw float bits used for canonical ordering and fingerprinting.
type nbTuple struct {
	xb, yb, rb uint64
	disk       geom.Disk
	id         int
}

// computeNode recomputes node u's neighborhood and forwarding set. It
// mirrors network.Build's bidirectional link predicate exactly (same grid
// query, same tolerance), so Neighbors matches Graph.Neighbors bit for
// bit; the local set is then canonicalized and solved (or replayed from
// the cache).
func (e *Engine) computeNode(u int, sc *scratch) error {
	hub := e.nodes[u]
	sc.ids = sc.ids[:0]
	e.grid.VisitWithin(hub.Pos, hub.Radius, func(v int) {
		if v == u {
			return
		}
		if !geom.Reaches(e.nodes[v].Pos, hub.Pos, e.nodes[v].Radius) {
			return // v cannot reach back
		}
		sc.ids = append(sc.ids, v)
	})
	sort.Ints(sc.ids)
	e.nbrs[u] = append([]int(nil), sc.ids...)

	// Canonical ordering: neighbors in the hub frame sorted by their raw
	// coordinate bits. The order is independent of node IDs and of the
	// node's absolute position, so two nodes anywhere in the network with
	// bit-identical relative neighborhoods produce the same disk sequence —
	// and hence the same skyline computation and the same fingerprint.
	// The sort is stable over ids already in ascending order, so exact
	// duplicate disks keep their ID order and the skyline's canonical
	// tie-break (larger radius, then lower index) picks the same
	// representative the per-node solver would.
	sc.tuples = sc.tuples[:0]
	for _, v := range sc.ids {
		d := e.nodes[v].Disk().Translate(hub.Pos)
		sc.tuples = append(sc.tuples, nbTuple{
			xb:   math.Float64bits(d.C.X),
			yb:   math.Float64bits(d.C.Y),
			rb:   math.Float64bits(d.R),
			disk: d,
			id:   v,
		})
	}
	sort.SliceStable(sc.tuples, func(i, j int) bool {
		a, b := &sc.tuples[i], &sc.tuples[j]
		if a.rb != b.rb {
			return a.rb < b.rb
		}
		if a.xb != b.xb {
			return a.xb < b.xb
		}
		return a.yb < b.yb
	})

	if e.cache != nil {
		sc.key = appendFingerprint(sc.key[:0], hub.Radius, sc.tuples)
		if ent, ok := e.cache.get(sc.key); ok {
			sc.hits++
			e.fwd[u] = mapCover(ent.canon, sc.tuples)
			e.hubIn[u] = ent.hubIn
			return nil
		}
		sc.misses++
	}

	sc.disks = sc.disks[:0]
	sc.disks = append(sc.disks, geom.Disk{R: hub.Radius})
	for i := range sc.tuples {
		sc.disks = append(sc.disks, sc.tuples[i].disk)
	}
	sl, err := skyline.Compute(sc.disks)
	if err != nil {
		return fmt.Errorf("engine: node %d: %w", u, err)
	}
	if ierr := checkInvariants(sl, len(sc.disks)); ierr != nil {
		e.fallbackNode(u, ierr)
		return nil
	}
	cover := sl.Set()
	hubIn := false
	canon := make([]int32, 0, len(cover))
	for _, i := range cover {
		if i == 0 {
			hubIn = true
			continue
		}
		canon = append(canon, int32(i-1))
	}
	e.fwd[u] = mapCover(canon, sc.tuples)
	e.hubIn[u] = hubIn
	if e.cache != nil {
		e.cache.put(sc.key, cacheEntry{hubIn: hubIn, canon: canon})
	}
	return nil
}

// fallbackNode installs the degeneracy-safe answer for node u after its
// computed skyline failed the runtime invariant check: the full local set
// — every neighbor relays and the hub's own disk stays in the cover —
// which is a correct (if non-minimal) cover of any local disk set. The
// event is counted in Stats.Fallbacks and logged through internal/obs.
// The result is deliberately not cached: a fingerprint-colliding healthy
// neighborhood must not replay a degenerate answer.
func (e *Engine) fallbackNode(u int, cause error) {
	e.fwd[u] = append([]int(nil), e.nbrs[u]...)
	e.hubIn[u] = true
	e.fallbacks.Add(1)
	if m := engInstr.Load(); m != nil {
		m.recordFallback(u, len(e.nbrs[u]), cause)
	}
}

// mapCover translates canonical cover positions back to sorted node IDs.
func mapCover(canon []int32, tuples []nbTuple) []int {
	fwd := make([]int, len(canon))
	for i, p := range canon {
		fwd[i] = tuples[p].id
	}
	sort.Ints(fwd)
	return fwd
}

// runErr collects the first error raised inside the worker pool.
type runErr struct {
	mu  sync.Mutex
	err error
}

func (f *runErr) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *runErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
