package engine

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/obs"
)

// Update advances the engine to new node states without redoing the whole
// network: it diffs the node slice against the engine's current state,
// marks the dirty neighborhoods, and recomputes only those. This is the
// consumption path for internal/mobility deltas — step the model, hand the
// fresh snapshot to Update — and it implements the paper's §5.1.1 point
// that 1-hop structures are cheap to maintain under mobility: a node's
// forwarding set can only change when its own local set changes, so the
// dirty set is exactly the moved nodes plus their old and new neighbors.
//
// The node count and ID assignment must match the last Compute; positions
// and radii may change. Returns a fresh snapshot whose Stats carry the
// Moved/Dirty accounting.
func (e *Engine) Update(nodes []network.Node) (*Result, error) {
	m := engInstr.Load()
	start := time.Now()

	if e.grid == nil {
		return nil, fmt.Errorf("engine: Update called before Compute")
	}
	if len(nodes) != len(e.nodes) {
		return nil, fmt.Errorf("engine: Update with %d nodes, engine has %d", len(nodes), len(e.nodes))
	}
	moved := e.updMoved[:0]
	for i, n := range nodes {
		if n.ID != i {
			return nil, fmt.Errorf("engine: node at position %d has ID %d; IDs must be dense", i, n.ID)
		}
		if !(n.Radius > 0) {
			return nil, fmt.Errorf("engine: node %d has non-positive radius %g", i, n.Radius)
		}
		//mldcslint:allow floatcmp bitwise change detection: any bit difference marks the node dirty, which is always safe
		if n.Pos != e.nodes[i].Pos || n.Radius != e.nodes[i].Radius {
			moved = append(moved, i)
		}
	}
	e.updMoved = moved

	// Dirty = every moved node, its old neighbors (who may have lost it or
	// see it at a new relative position), and — after the grid reflects the
	// moves — its new neighbors (who may have gained it). Everyone else's
	// local set is bitwise unchanged.
	if cap(e.updDirty) < len(nodes) {
		e.updDirty = make([]bool, len(nodes))
	}
	dirty := e.updDirty[:len(nodes)]
	clear(dirty)
	if cap(e.updCand) < len(nodes) {
		e.updCand = make([][]int, len(nodes))
	}
	cand := e.updCand[:len(nodes)]
	for _, u := range moved {
		dirty[u] = true
		for _, v := range e.nbrs[u] {
			dirty[v] = true
			cand[v] = append(cand[v], u)
		}
	}
	for _, u := range moved {
		e.grid.Move(u, nodes[u].Pos)
		e.nodes[u] = nodes[u]
	}
	for _, u := range moved {
		hub := e.nodes[u]
		e.grid.VisitWithin(hub.Pos, hub.Radius, func(v int) {
			// Same reverse-link predicate as computeNode and network.Build:
			// the dirty set must include exactly the nodes that gained u as
			// a neighbor under the canonical link comparison.
			if v != u && geom.Reaches(e.nodes[v].Pos, hub.Pos, e.nodes[v].Radius) {
				dirty[v] = true
				cand[v] = append(cand[v], u)
			}
		})
	}
	list := e.updList[:0]
	for u, d := range dirty {
		if d {
			list = append(list, u)
		}
	}
	e.updList = list

	// Per-pass "did this node move" table for the repair path: a dirty
	// node that moved itself recomputes; a dirty node whose neighbor moved
	// repairs that neighbor's arcs in place. Reset entry-wise below so a
	// small move set costs O(moved), not O(n).
	if cap(e.updMovedMark) < len(nodes) {
		e.updMovedMark = make([]bool, len(nodes))
	}
	movedMark := e.updMovedMark[:len(nodes)]
	for _, u := range moved {
		movedMark[u] = true
	}

	hits0, misses0 := e.cache.counts()
	e.fallbacks.Store(0)
	e.repaired.Store(0)
	e.recomputed.Store(0)
	e.repairFB.Store(0)
	var tickSpan obs.Span
	if m != nil {
		tickSpan = m.spanUpdate.Begin()
	}
	workers, passErr := e.runUpdatePass(list, movedMark)
	for _, u := range moved {
		movedMark[u] = false
	}
	// Every cand append above was paired with a dirty mark, so resetting
	// over the dirty list clears exactly the touched entries in O(dirty).
	for _, u := range list {
		cand[u] = cand[u][:0]
	}
	if passErr != nil {
		return nil, passErr
	}
	hits1, misses1 := e.cache.counts()

	e.stats = Stats{
		Nodes:       len(nodes),
		Cells:       e.stats.Cells,
		Workers:     workers,
		CacheHits:   hits1 - hits0,
		CacheMisses: misses1 - misses0,
		Moved:       len(moved),
		Dirty:       len(list),
		Fallbacks:   int(e.fallbacks.Load()),

		Repaired:        int(e.repaired.Load()),
		Recomputed:      int(e.recomputed.Load()),
		RepairFallbacks: int(e.repairFB.Load()),
	}
	e.stats.recordLoads(e.lastLoads)
	for _, nb := range e.nbrs {
		e.stats.Edges += len(nb)
	}
	e.epoch++
	if m != nil {
		m.recordUpdate(e.stats, time.Since(start), e.cache)
	}
	if tickSpan.Sampled() {
		tickSpan.End(map[string]any{
			"moved": e.stats.Moved,
			"dirty": e.stats.Dirty,
		})
	}
	return e.snapshot(), nil
}

// runUpdatePass fans the dirty list over the worker pool as per-cell
// batches: dirty nodes are grouped by owning grid cell (buildUpdateBatches)
// and each batch is one claimable work item, so a tick's repair work runs
// in parallel with cell-level locality instead of sequentially per node.
// Work distribution cannot change results — each node's repair touches
// only that node's state — so any claiming/stealing order produces the
// same snapshot; the kinetic differential tests pin that across the
// workers matrix. Split out from Update so the allocation regression
// tests can pin the batching + claiming machinery at zero steady-state
// allocations without the snapshot copy.
func (e *Engine) runUpdatePass(list []int, movedMark []bool) (int, error) {
	e.buildUpdateBatches(list)
	e.updPassMark = movedMark
	e.updPassErr.reset()
	// The pass closure and error collector live on the engine so a
	// steady-state tick allocates nothing: a fresh closure per call would
	// escape to the heap through the worker goroutines.
	if e.updPassFn == nil {
		e.updPassFn = func(i int, sc *scratch) {
			sp := e.updSpans[i]
			batch := e.updEnts[sp.lo:sp.hi]
			for _, ent := range batch {
				if err := e.updateNode(int(ent.node), sc, e.updPassMark); err != nil {
					e.updPassErr.set(err)
					break
				}
			}
			sc.load.nodes += len(batch)
		}
	}
	workers := e.forEachTask(len(e.updSpans), e.updPassFn)
	e.updPassMark = nil
	return workers, e.updPassErr.get()
}
