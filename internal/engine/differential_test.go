package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/mldcs"
	"repro/internal/network"
	"repro/internal/skyline"
)

// sequentialForwarding is the pre-engine reference pipeline: build the
// disk graph, then solve every node's MLDCS independently with
// mldcs.Solve. It returns per-node forwarding sets as sorted node IDs,
// the hub-in-cover flags, and the graph for neighbor comparison.
func sequentialForwarding(t *testing.T, nodes []network.Node) ([][]int, []bool, *network.Graph) {
	t.Helper()
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatalf("network.Build: %v", err)
	}
	fwd := make([][]int, g.Len())
	hubIn := make([]bool, g.Len())
	for u := 0; u < g.Len(); u++ {
		ls, ids, err := g.LocalSet(u)
		if err != nil {
			t.Fatalf("LocalSet(%d): %v", u, err)
		}
		r, err := mldcs.Solve(ls)
		if err != nil {
			t.Fatalf("Solve(%d): %v", u, err)
		}
		set := make([]int, 0, len(r.Cover))
		for _, i := range r.NeighborCover() {
			set = append(set, ids[i])
		}
		fwd[u] = set
		hubIn[u] = r.ContainsHub()
	}
	return fwd, hubIn, g
}

// naiveForwarding recomputes every node's forwarding set with the
// independent O(n² log n) skyline oracle (skyline/naive.go), bypassing
// the divide-and-conquer algorithm the engine uses.
func naiveForwarding(t *testing.T, g *network.Graph) [][]int {
	t.Helper()
	fwd := make([][]int, g.Len())
	for u := 0; u < g.Len(); u++ {
		hub := g.Node(u)
		ids := g.Neighbors(u)
		disks := make([]geom.Disk, 0, len(ids)+1)
		disks = append(disks, geom.Disk{R: hub.Radius})
		for _, v := range ids {
			disks = append(disks, g.Node(v).Disk().Translate(hub.Pos))
		}
		sl, err := skyline.ComputeNaive(disks)
		if err != nil {
			t.Fatalf("ComputeNaive(%d): %v", u, err)
		}
		set := make([]int, 0, len(sl.Set()))
		for _, i := range sl.Set() {
			if i > 0 {
				set = append(set, ids[i-1])
			}
		}
		fwd[u] = set
	}
	return fwd
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertIdentical fails unless the engine result matches the reference
// forwarding sets, hub flags, and neighborhoods element for element.
func assertIdentical(t *testing.T, label string, res *Result, fwd [][]int, hubIn []bool, g *network.Graph) {
	t.Helper()
	for u := range fwd {
		if !equalSets(res.Neighbors[u], g.Neighbors(u)) {
			t.Fatalf("%s: node %d neighbors = %v, want %v", label, u, res.Neighbors[u], g.Neighbors(u))
		}
		if !equalSets(res.Forwarding[u], fwd[u]) {
			t.Fatalf("%s: node %d forwarding = %v, want %v", label, u, res.Forwarding[u], fwd[u])
		}
		if hubIn != nil && res.HubInCover[u] != hubIn[u] {
			t.Fatalf("%s: node %d hubInCover = %v, want %v", label, u, res.HubInCover[u], hubIn[u])
		}
	}
}

// engineVariants is the differential matrix: worker counts {1, 4,
// GOMAXPROCS} crossed with cache on/off.
func engineVariants() []Config {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var out []Config
	for _, w := range workerCounts {
		for _, cache := range []bool{false, true} {
			out = append(out, Config{Workers: w, Cache: cache})
		}
	}
	return out
}

// TestEngineDifferentialRandomDeployments is the core oracle test: on
// random heterogeneous (and homogeneous) deployments across densities, the
// engine's whole-network output is element-identical to the sequential
// per-node mldcs.Solve pipeline, for every worker count and cache setting.
func TestEngineDifferentialRandomDeployments(t *testing.T) {
	for _, model := range []deploy.RadiusModel{deploy.Heterogeneous, deploy.Homogeneous} {
		for _, degree := range []float64{4, 10, 18} {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				nodes, err := deploy.Generate(deploy.PaperConfig(model, degree), rng)
				if err != nil {
					t.Fatal(err)
				}
				fwd, hubIn, g := sequentialForwarding(t, nodes)
				for _, cfg := range engineVariants() {
					label := fmt.Sprintf("%v deg=%g seed=%d workers=%d cache=%v",
						model, degree, seed, cfg.Workers, cfg.Cache)
					res, err := New(cfg).Compute(nodes)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					assertIdentical(t, label, res, fwd, hubIn, g)
				}
			}
		}
	}
}

// TestEngineDifferentialNaiveOracle cross-checks the engine against the
// algorithm-independent naive skyline oracle on smaller deployments (the
// oracle is quadratic per node).
func TestEngineDifferentialNaiveOracle(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		cfg := deploy.PaperConfig(deploy.Heterogeneous, 8)
		cfg.Side = 6 // ≈ 70 nodes: small enough for the O(n² log n) oracle
		nodes, err := deploy.Generate(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		_, _, g := sequentialForwarding(t, nodes)
		fwd := naiveForwarding(t, g)
		for _, ecfg := range engineVariants() {
			label := fmt.Sprintf("naive seed=%d workers=%d cache=%v", seed, ecfg.Workers, ecfg.Cache)
			res, err := New(ecfg).Compute(nodes)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			assertIdentical(t, label, res, fwd, nil, g)
		}
	}
}

// TestEngineDifferentialStructuredDeployments exercises the cache where it
// actually hits: zero-jitter perturbed grids and co-located clusters
// produce many bit-identical neighborhoods. Output must stay identical to
// the sequential pipeline, and the cache must observably engage.
func TestEngineDifferentialStructuredDeployments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := deploy.PaperConfig(deploy.Homogeneous, 12)
	cfg.SourceAtCenter = false
	nodes, err := deploy.GeneratePerturbedGrid(cfg, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	fwd, hubIn, g := sequentialForwarding(t, nodes)
	for _, ecfg := range engineVariants() {
		label := fmt.Sprintf("grid workers=%d cache=%v", ecfg.Workers, ecfg.Cache)
		res, err := New(ecfg).Compute(nodes)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		assertIdentical(t, label, res, fwd, hubIn, g)
		if ecfg.Cache && res.Stats.CacheHits == 0 {
			t.Errorf("%s: expected cache hits on a zero-jitter grid, got none (misses=%d)",
				label, res.Stats.CacheMisses)
		}
	}
}
