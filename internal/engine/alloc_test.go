package engine

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/skyline"
)

// Steady-state per-node recompute — same geometry, warm worker scratch —
// must not allocate: the skyline runs in the worker's skyline.Scratch, the
// canonical ordering uses the in-scratch merge sort, and unchanged outputs
// are compare-and-kept instead of re-copied. Exercised with the cache off
// (every node recomputes its skyline) and on (every node replays a cached
// cover), which together cover both branches of computeNode.
func TestComputeNodeSteadyStateAllocs(t *testing.T) {
	nodes, _, err := benchDeployment(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, cache := range []bool{false, true} {
		t.Run(fmt.Sprintf("cache=%v", cache), func(t *testing.T) {
			e := New(Config{Workers: 1, Cache: cache})
			if _, err := e.Compute(nodes); err != nil {
				t.Fatal(err)
			}
			sc := &scratch{}
			// Warm-up: grow this scratch's buffers (and, with the cache on,
			// ensure every fingerprint is present) before counting.
			for u := range nodes {
				if err := e.computeNode(u, sc); err != nil {
					t.Fatal(err)
				}
			}
			var nodeErr error
			allocs := testing.AllocsPerRun(5, func() {
				for u := range nodes {
					if err := e.computeNode(u, sc); err != nil {
						nodeErr = err
						return
					}
				}
			})
			if nodeErr != nil {
				t.Fatal(nodeErr)
			}
			if allocs != 0 {
				t.Errorf("steady-state recompute of %d nodes allocated %.1f objects/run, want 0",
					len(nodes), allocs)
			}
		})
	}
}

// Instrumentation must not buy observability with hot-path garbage: with
// a live registry, an event sink, and span tracing all installed, the
// steady-state per-node recompute still runs at zero allocations. The
// warm-up deliberately runs past the span sampling budget so the measured
// iterations exercise the post-budget fast path (sharded counter add +
// closed-flag load), which is the steady state of any long run. Cache off
// and on cover both branches of computeNode, and skyline instrumentation
// is installed too, so the per-node timer (Start/Stop on sharded cells)
// and arc histogram are part of what is being pinned.
func TestComputeNodeInstrumentedAllocs(t *testing.T) {
	nodes, _, err := benchDeployment(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sink := obs.NewEventSink(io.Discard)
	Instrument(reg, sink)
	skyline.Instrument(reg)
	t.Cleanup(func() {
		Instrument(nil, nil)
		skyline.Instrument(nil)
	})
	for _, cache := range []bool{false, true} {
		t.Run(fmt.Sprintf("cache=%v", cache), func(t *testing.T) {
			e := New(Config{Workers: 1, Cache: cache})
			if _, err := e.Compute(nodes); err != nil {
				t.Fatal(err)
			}
			sc := &scratch{}
			// Warm-up: grow the scratch buffers and exhaust the per-node
			// span budget so Begin is on its no-op fast path.
			for uint64(engInstr.Load().spanNode.Total()) <= obs.DefaultSpanLimit {
				for u := range nodes {
					if err := e.computeNode(u, sc); err != nil {
						t.Fatal(err)
					}
				}
			}
			if got := engInstr.Load().spanNode.SampledCount(); got < obs.DefaultSpanLimit {
				t.Fatalf("span budget not exhausted after warm-up: %d sampled", got)
			}
			var nodeErr error
			allocs := testing.AllocsPerRun(5, func() {
				for u := range nodes {
					if err := e.computeNode(u, sc); err != nil {
						nodeErr = err
						return
					}
				}
			})
			if nodeErr != nil {
				t.Fatal(nodeErr)
			}
			if allocs != 0 {
				t.Errorf("instrumented steady-state recompute of %d nodes allocated %.1f objects/run, want 0",
					len(nodes), allocs)
			}
		})
	}
}

// loadEngineFuzzCorpus decodes the curated seed files under
// testdata/fuzz/FuzzEngineVsSequential into raw payloads.
func loadEngineFuzzCorpus(t *testing.T) map[string][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzEngineVsSequential")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus %s: %v", dir, err)
	}
	out := make(map[string][]byte, len(entries))
	for _, ent := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") {
				continue
			}
			quoted := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			payload, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s: unquoting corpus payload: %v", ent.Name(), err)
			}
			out[ent.Name()] = []byte(payload)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no corpus payloads under %s", dir)
	}
	return out
}

// TestEngineDifferentialFuzzSeeds sweeps the curated degenerate topologies
// (boundary rings, exact-radius links, co-located clusters) through the
// full workers×cache matrix against the sequential pipeline — the engine
// counterpart of the skyline merge-equivalence suite.
func TestEngineDifferentialFuzzSeeds(t *testing.T) {
	for name, data := range loadEngineFuzzCorpus(t) {
		nodes := nodesFromBytes(data)
		fwd, hubIn, g := sequentialForwarding(t, nodes)
		for _, cfg := range engineVariants() {
			res, err := New(cfg).Compute(nodes)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			label := fmt.Sprintf("%s workers=%d cache=%v", name, cfg.Workers, cfg.Cache)
			assertIdentical(t, label, res, fwd, hubIn, g)
		}
	}
}

// updatePassHarness drives runUpdatePass the way Update does — wiggle a
// fixed mover set by a tiny repairable slide, mark the dirty
// neighborhoods, run the batched pass, reset the per-pass tables —
// without the snapshot copy, so the tests below pin the cell-batching and
// chunked-claiming machinery alone.
type updatePassHarness struct {
	e         *Engine
	movers    []int
	dirty     []bool
	movedMark []bool
	list      []int
}

func newUpdatePassHarness(t *testing.T, workers, n, k int) *updatePassHarness {
	t.Helper()
	nodes, _, err := benchDeployment(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: workers})
	if _, err := e.Compute(nodes); err != nil {
		t.Fatal(err)
	}
	h := &updatePassHarness{
		e:         e,
		dirty:     make([]bool, len(nodes)),
		movedMark: make([]bool, len(nodes)),
	}
	for u := range nodes {
		if len(e.nbrs[u]) > 0 {
			h.movers = append(h.movers, u)
			if len(h.movers) == k {
				break
			}
		}
	}
	if len(h.movers) < k {
		t.Fatalf("deployment too sparse: %d connected nodes, want %d movers", len(h.movers), k)
	}
	if cap(e.updCand) < len(nodes) {
		e.updCand = make([][]int, len(nodes))
	}
	return h
}

// pass runs one batched update pass over the movers' dirty neighborhoods.
func (h *updatePassHarness) pass() error {
	e := h.e
	clear(h.dirty)
	cand := e.updCand[:len(e.nodes)]
	for _, m := range h.movers {
		e.nodes[m].Pos.X += 1e-9
		e.grid.Move(m, e.nodes[m].Pos)
		h.dirty[m] = true
		h.movedMark[m] = true
		for _, v := range e.nbrs[m] {
			h.dirty[v] = true
			cand[v] = append(cand[v], m)
		}
	}
	h.list = h.list[:0]
	for u, d := range h.dirty {
		if d {
			h.list = append(h.list, u)
		}
	}
	_, err := e.runUpdatePass(h.list, h.movedMark)
	for _, m := range h.movers {
		h.movedMark[m] = false
	}
	for _, u := range h.list {
		cand[u] = cand[u][:0]
	}
	return err
}

// A steady-state batched update pass — group the dirty list by owning
// cell, merge-sort the batches, fan them over the pool, repair or
// recompute each node — must not allocate on one worker: every buffer
// (updEnts, updEntsTmp, updSpans, the pass closure, the claim queues, the
// worker scratches) is reused across passes.
func TestUpdatePassSteadyStateAllocs(t *testing.T) {
	h := newUpdatePassHarness(t, 1, 400, 16)
	for i := 0; i < 5; i++ {
		if err := h.pass(); err != nil {
			t.Fatal(err)
		}
	}
	if h.e.repaired.Load() == 0 {
		t.Fatal("no repairs recorded; the harness is not exercising the repair path")
	}
	var passErr error
	allocs := testing.AllocsPerRun(10, func() {
		if err := h.pass(); err != nil {
			passErr = err
		}
	})
	if passErr != nil {
		t.Fatal(passErr)
	}
	if allocs != 0 {
		t.Errorf("steady-state update pass allocated %.1f objects/run, want 0", allocs)
	}
}

// Multi-worker passes pay a fixed per-pass overhead (the worker goroutine
// spawns) but nothing per mover: growing the mover set 8× must not grow
// the allocation count. An accidental per-node or per-batch allocation in
// the batching path shows up here as allocs scaling with the mover count
// (one object per extra mover would add ≥ 56 allocations per run).
func TestUpdatePassAllocsIndependentOfMovers(t *testing.T) {
	measure := func(k int) float64 {
		h := newUpdatePassHarness(t, 4, 400, k)
		for i := 0; i < 5; i++ {
			if err := h.pass(); err != nil {
				t.Fatal(err)
			}
		}
		var passErr error
		allocs := testing.AllocsPerRun(10, func() {
			if err := h.pass(); err != nil {
				passErr = err
			}
		})
		if passErr != nil {
			t.Fatal(passErr)
		}
		return allocs
	}
	small, large := measure(8), measure(64)
	if large > small+16 {
		t.Errorf("allocs grew with mover count: 8 movers → %.1f, 64 movers → %.1f", small, large)
	}
	if small > 32 {
		t.Errorf("multi-worker pass allocates %.1f objects/run; expected a small fixed overhead", small)
	}
}
