package engine

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// The skyline cache memoizes solved local sets by a canonical neighborhood
// fingerprint: the hub's radius followed by every neighbor disk's
// hub-frame center and radius, as raw little-endian float64 bits, in the
// canonical (bit-sorted) neighbor order of computeNode. The fingerprint is
// therefore invariant under node relabeling (and under translation when the
// hub-frame offsets come out bit-equal, as in regular grids — not under a
// general float translation, whose rounding perturbs the differences), and
// exact — no rounding, no quantization — so a hit replays a cover computed
// from precisely the same geometry. Combined with the uniqueness of the
// MLDCS (Theorem 3), cached and uncached passes produce element-identical
// forwarding sets; the differential tests assert exactly that.
//
// Dense or structured deployments (perturbed grids at zero jitter,
// co-located clusters, quantized replayed traces) produce many
// bit-identical local sets and hit constantly; uniform random float64
// deployments essentially never collide and pay only the fingerprint
// append plus one map probe per node.

// cacheShardCount must be a power of two (the shard index is a mask).
const cacheShardCount = 16

// Adaptive bypass: a worker that has probed cacheBypassWindow times in
// one pass with a hit rate below 1/cacheBypassRatio stops consulting the
// cache for the rest of that pass. A hit saves a full skyline solve
// (tens of µs) while a miss costs a fingerprint, a probe, and a map
// insert (~1 µs), so the break-even hit rate is a few percent; below
// 1/16 the cache is pure overhead — the regime uniform random float64
// deployments live in, where fingerprints essentially never collide.
// The decision is per worker per pass (the pass driver resets the flag
// and the counters each pass even though scratches persist), so
// structured workloads — and later passes over the same cache — are
// unaffected: their windows see near-100% hits and never trip it.
const (
	cacheBypassWindow = 1024
	cacheBypassRatio  = 16
)

// l1MaxEntries bounds each worker's private L1 front over the shared
// cache (scratch.l1): past the cap new fingerprints stay shared-only.
// 4096 entries cover every structured workload in the test and bench
// suites while keeping the per-worker footprint small.
const l1MaxEntries = 4096

// skyCache is a sharded fingerprint → cover map. Shards cut lock
// contention between shard workers; lookups take only a read lock, and
// each worker's scratch keeps a private L1 front (scratch.l1) so repeat
// hits never reach a shard at all. All methods are safe on a nil
// receiver (cache disabled).
type skyCache struct {
	shards [cacheShardCount]cacheShard
	// The cumulative hit/miss counters live on their own cache lines:
	// they are only written by per-worker flushes, but a shared line
	// would still ping-pong between the flushing workers at pass ends.
	hits   paddedCounter
	misses paddedCounter
}

// paddedCounter is an atomic counter alone on its cache line so adjacent
// counters never false-share.
type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

// cacheShard is one lock-striped slice of the map. The trailing pad
// spreads adjacent shards across cache lines so one shard's lock traffic
// does not invalidate its neighbors' (no false sharing between stripes).
type cacheShard struct {
	mu sync.RWMutex
	m  map[string]cacheEntry
	_  [64]byte
}

// cacheEntry is a solved local set in canonical coordinates: whether the
// hub belongs to its own cover, and the canonical neighbor positions that
// do, in ascending order.
type cacheEntry struct {
	hubIn bool
	canon []int32
}

func newSkyCache() *skyCache {
	c := &skyCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry)
	}
	return c
}

// appendFingerprint appends the canonical fingerprint of a local set to
// key and returns it (scratch-buffer friendly: the caller passes key[:0]).
func appendFingerprint(key []byte, hubR float64, tuples []nbTuple) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(hubR))
	key = append(key, b[:]...)
	for i := range tuples {
		binary.LittleEndian.PutUint64(b[:], tuples[i].xb)
		key = append(key, b[:]...)
		binary.LittleEndian.PutUint64(b[:], tuples[i].yb)
		key = append(key, b[:]...)
		binary.LittleEndian.PutUint64(b[:], tuples[i].rb)
		key = append(key, b[:]...)
	}
	return key
}

// fnv1a hashes the key for shard selection, folding 8 bytes per step
// (FNV-1a over little-endian words; fingerprints are always a multiple of
// 8 bytes). Only the shard choice consumes the hash — key equality goes
// through the map — so word granularity trades nothing for an 8× shorter
// loop on the per-node path.
func fnv1a(key []byte) uint32 {
	h := uint64(14695981039346656037)
	for len(key) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(key)) * 1099511628211
		key = key[8:]
	}
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return uint32(h ^ h>>32)
}

// shard selects the shard for a fingerprint. computeNode hashes once and
// reuses the shard for the get and, on a miss, the put.
func (c *skyCache) shard(key []byte) *cacheShard {
	return &c.shards[fnv1a(key)&(cacheShardCount-1)]
}

// get looks the fingerprint up. The map probe converts key with
// string(key), which Go compiles without allocating — the hit path costs
// one hash, one read lock, and one probe.
func (c *skyCache) get(key []byte) (cacheEntry, bool) {
	return c.shard(key).get(key)
}

func (s *cacheShard) get(key []byte) (cacheEntry, bool) {
	s.mu.RLock()
	e, ok := s.m[string(key)]
	s.mu.RUnlock()
	return e, ok
}

// put stores the entry under a copy of key, keeping the first writer's
// value on a race (both computed the same cover from the same bits).
func (c *skyCache) put(key []byte, e cacheEntry) {
	c.shard(key).put(key, e)
}

func (s *cacheShard) put(key []byte, e cacheEntry) {
	s.mu.Lock()
	if _, ok := s.m[string(key)]; !ok {
		s.m[string(key)] = e
	}
	s.mu.Unlock()
}

// l1Put inserts an entry into the worker's private L1 front, creating
// the map on first use and refusing inserts past l1MaxEntries. Entries
// are immutable and the shared cache never evicts, so a promoted copy
// can never go stale.
func (sc *scratch) l1Put(key []byte, ent cacheEntry) {
	if sc.l1 == nil {
		//mldcslint:allow hotpathalloc one map allocation per worker lifetime
		sc.l1 = make(map[string]cacheEntry, 256)
	}
	if len(sc.l1) >= l1MaxEntries {
		return
	}
	//mldcslint:allow hotpathalloc bounded insert: at most l1MaxEntries string copies per worker over the engine's lifetime
	sc.l1[string(key)] = ent
}

// flush folds one worker's local hit/miss counters into the cache.
func (c *skyCache) flush(sc *scratch) {
	if c == nil {
		return
	}
	if sc.hits != 0 {
		c.hits.v.Add(sc.hits)
		sc.hits = 0
	}
	if sc.misses != 0 {
		c.misses.v.Add(sc.misses)
		sc.misses = 0
	}
}

// counts returns the cumulative hit and miss counters.
func (c *skyCache) counts() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.v.Load(), c.misses.v.Load()
}

// len returns the number of distinct fingerprints stored.
func (c *skyCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
