package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
)

// smallMoveStep displaces count random nodes of cur in place by at most
// frac of their own radius — the pure-mobility regime the repair path is
// built for (no node teleports across its whole neighborhood).
func smallMoveStep(rng *rand.Rand, cur []network.Node, count int, frac float64) {
	for i := 0; i < count; i++ {
		u := rng.Intn(len(cur))
		step := frac * cur[u].Radius
		cur[u].Pos.X += (rng.Float64()*2 - 1) * step
		cur[u].Pos.Y += (rng.Float64()*2 - 1) * step
	}
}

// requireSameResult asserts Update's snapshot is element-identical to a
// from-scratch Compute of the same node slice.
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	for u := range got.Forwarding {
		if !equalSets(got.Neighbors[u], want.Neighbors[u]) {
			t.Fatalf("%s: node %d neighbors = %v, want %v", label, u, got.Neighbors[u], want.Neighbors[u])
		}
		if !equalSets(got.Forwarding[u], want.Forwarding[u]) {
			t.Fatalf("%s: node %d forwarding = %v, want %v", label, u, got.Forwarding[u], want.Forwarding[u])
		}
		if got.HubInCover[u] != want.HubInCover[u] {
			t.Fatalf("%s: node %d hubInCover = %v, want %v", label, u, got.HubInCover[u], want.HubInCover[u])
		}
	}
}

// TestEngineUpdateRepairMatchesFresh is the end-to-end differential for the
// kinetic repair path: small random subsets of nodes drift a little each
// tick, so most dirty nodes are repair candidates (they did not move, one
// neighbor did). Every tick must match a from-scratch Compute exactly, and
// the repair path must actually fire — a silent
// everything-fell-back-to-recompute regression fails the Repaired check.
func TestEngineUpdateRepairMatchesFresh(t *testing.T) {
	nodes, _, err := benchDeployment(400, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, ecfg := range engineVariants() {
		rng := rand.New(rand.NewSource(77))
		e := New(ecfg)
		if _, err := e.Compute(nodes); err != nil {
			t.Fatal(err)
		}
		cur := append([]network.Node(nil), nodes...)
		totalRepaired := 0
		for step := 1; step <= 6; step++ {
			smallMoveStep(rng, cur, 1+len(cur)/100, 0.02)
			got, err := e.Update(cur)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			want, err := New(ecfg).Compute(cur)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			label := fmt.Sprintf("step %d workers=%d cache=%v", step, ecfg.Workers, ecfg.Cache)
			requireSameResult(t, label, got, want)
			if got.Stats.Repaired+got.Stats.Recomputed != got.Stats.Dirty {
				t.Fatalf("%s: repaired %d + recomputed %d != dirty %d",
					label, got.Stats.Repaired, got.Stats.Recomputed, got.Stats.Dirty)
			}
			if got.Stats.RepairFallbacks > got.Stats.Recomputed {
				t.Fatalf("%s: repair fallbacks %d exceed recomputes %d",
					label, got.Stats.RepairFallbacks, got.Stats.Recomputed)
			}
			totalRepaired += got.Stats.Repaired
		}
		if !ecfg.Cache && totalRepaired == 0 {
			t.Errorf("workers=%d cache=%v: repair path never fired under small-move mobility", ecfg.Workers, ecfg.Cache)
		}
	}
}

// TestEngineUpdateDisableRepair: the escape hatch must recompute every
// dirty node and still agree with a fresh Compute.
func TestEngineUpdateDisableRepair(t *testing.T) {
	nodes, _, err := benchDeployment(200, 17)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	e := New(Config{Workers: 4, DisableRepair: true})
	if _, err := e.Compute(nodes); err != nil {
		t.Fatal(err)
	}
	cur := append([]network.Node(nil), nodes...)
	for step := 1; step <= 3; step++ {
		smallMoveStep(rng, cur, 3, 0.02)
		got, err := e.Update(cur)
		if err != nil {
			t.Fatal(err)
		}
		want, err := New(Config{Workers: 4}).Compute(cur)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, fmt.Sprintf("disable-repair step %d", step), got, want)
		if got.Stats.Repaired != 0 {
			t.Fatalf("step %d: DisableRepair engine repaired %d nodes", step, got.Stats.Repaired)
		}
		if got.Stats.Recomputed != got.Stats.Dirty {
			t.Fatalf("step %d: recomputed %d != dirty %d", step, got.Stats.Recomputed, got.Stats.Dirty)
		}
	}
}

// TestEngineUpdateAsymmetricRadiiSlide is the satellite regression for the
// old-neighbor dirty marking audit: a large-radius node slides away from
// (and back toward) a small-radius node. The link is bidirectional, so it
// lives and dies by the *small* node's reach; when the big node moves, the
// small node's grid query still sees it (it is far inside the big node's
// radius) but the reverse-reach flips. Every transition must leave Update
// element-identical to a fresh Compute — a dirty-marking bug that consults
// only one side of the asymmetric link diverges here.
func TestEngineUpdateAsymmetricRadiiSlide(t *testing.T) {
	base := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 10},
		{ID: 1, Pos: geom.Pt(0.9, 0), Radius: 1},
		{ID: 2, Pos: geom.Pt(0, 0.8), Radius: 1.2},
		{ID: 3, Pos: geom.Pt(6, 6), Radius: 2},
		{ID: 4, Pos: geom.Pt(6.5, 6.2), Radius: 1.5},
	}
	// The big node slides right in small steps: past x=0.1 the 0↔1 link
	// dies (node 1 can no longer reach back), later it returns. Node 1
	// never moves, so its forwarding set only stays correct if the marking
	// logic dirties it from node 0's movement — in both directions.
	slides := []float64{0, 0.05, 0.15, 0.3, 1.2, 0.3, 0.05, 0}
	for _, ecfg := range engineVariants() {
		e := New(ecfg)
		cur := append([]network.Node(nil), base...)
		if _, err := e.Compute(cur); err != nil {
			t.Fatal(err)
		}
		for step, dx := range slides {
			cur[0].Pos = geom.Pt(dx, 0)
			got, err := e.Update(cur)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			want, err := New(ecfg).Compute(cur)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			label := fmt.Sprintf("slide step %d dx=%g workers=%d cache=%v", step, dx, ecfg.Workers, ecfg.Cache)
			requireSameResult(t, label, got, want)
		}
		// Mirror image: the small node slides out of its own reach while
		// the big node stands still.
		for step, dx := range []float64{0.9, 0.99, 1.05, 2.5, 1.05, 0.9} {
			cur[1].Pos = geom.Pt(dx, 0)
			got, err := e.Update(cur)
			if err != nil {
				t.Fatalf("small-slide step %d: %v", step, err)
			}
			want, err := New(ecfg).Compute(cur)
			if err != nil {
				t.Fatalf("small-slide step %d: %v", step, err)
			}
			label := fmt.Sprintf("small-slide step %d dx=%g workers=%d cache=%v", step, dx, ecfg.Workers, ecfg.Cache)
			requireSameResult(t, label, got, want)
		}
	}
}

// Steady-state repair — warm kinetic state, warm worker scratch, a
// neighbor nudged between ticks — must not allocate: the whole point of
// the surgery is patching cached state in place.
func TestUpdateNodeRepairSteadyStateAllocs(t *testing.T) {
	nodes, _, err := benchDeployment(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 1})
	if _, err := e.Compute(nodes); err != nil {
		t.Fatal(err)
	}
	// Pick a node with neighbors and one of its neighbors to wiggle.
	hub := -1
	for u := range nodes {
		if len(e.nbrs[u]) >= 3 {
			hub = u
			break
		}
	}
	if hub < 0 {
		t.Fatal("no node with enough neighbors")
	}
	mover := e.nbrs[hub][0]
	movedMark := make([]bool, len(nodes))
	movedMark[mover] = true
	e.updCand = make([][]int, len(nodes))
	sc := &scratch{}
	wiggle := func() {
		e.nodes[mover].Pos.X += 1e-9 // tiny slide: always a repairable diff
		e.updCand[hub] = append(e.updCand[hub][:0], mover)
		if err := e.updateNode(hub, sc, movedMark); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		wiggle() // warm-up: grow kin + scratch buffers
	}
	before := e.repaired.Load()
	allocs := testing.AllocsPerRun(10, wiggle)
	if e.repaired.Load() == before {
		t.Fatal("warm repair fell back to recompute; alloc measurement is not exercising the repair path")
	}
	if allocs != 0 {
		t.Errorf("steady-state repair allocated %.1f objects/run, want 0", allocs)
	}
}
