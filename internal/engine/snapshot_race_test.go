package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
)

// TestSnapshotConsistencyUnderUpdate is the epoch-snapshot contract test:
// a single writer hammers Update while reader goroutines consume published
// *Result snapshots through an atomic pointer — exactly the publication
// pattern mldcsd serves queries with. Every snapshot a reader observes
// must be internally consistent (all per-node slices from one pass, sane
// shapes, forwarding ⊆ neighbors) and epochs must be monotonic per
// reader. Run under -race this also proves snapshots are never written
// through by later passes.
func TestSnapshotConsistencyUnderUpdate(t *testing.T) {
	const (
		n       = 120
		ticks   = 150
		readers = 4
	)
	rng := rand.New(rand.NewSource(7))
	nodes := make([]network.Node, n)
	for i := range nodes {
		nodes[i] = network.Node{
			ID:     i,
			Pos:    geom.Pt(rng.Float64()*6, rng.Float64()*6),
			Radius: 0.5 + rng.Float64(),
		}
	}
	e := New(Config{Cache: true})
	first, err := e.Compute(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if first.Epoch != 1 {
		t.Fatalf("first Compute epoch = %d, want 1", first.Epoch)
	}

	var latest atomic.Pointer[Result]
	latest.Store(first)
	var stop atomic.Bool

	checkSnapshot := func(r *Result) {
		if len(r.Forwarding) != n || len(r.Neighbors) != n || len(r.HubInCover) != n {
			t.Errorf("epoch %d: slice lengths %d/%d/%d, want %d",
				r.Epoch, len(r.Forwarding), len(r.Neighbors), len(r.HubInCover), n)
			return
		}
		if r.Stats.Nodes != n {
			t.Errorf("epoch %d: Stats.Nodes = %d, want %d", r.Epoch, r.Stats.Nodes, n)
		}
		for u := 0; u < n; u++ {
			nbrs := r.Neighbors[u]
			j := 0
			for _, f := range r.Forwarding[u] {
				for j < len(nbrs) && nbrs[j] < f {
					j++
				}
				if j >= len(nbrs) || nbrs[j] != f {
					t.Errorf("epoch %d node %d: forwarder %d not a neighbor of %v",
						r.Epoch, u, f, nbrs)
					return
				}
			}
			if len(r.Forwarding[u]) == 0 && len(nbrs) > 0 {
				// A connected neighborhood always needs at least one relay
				// or the hub covering everything itself.
				if !r.HubInCover[u] {
					t.Errorf("epoch %d node %d: no forwarders, hub not in cover, %d neighbors",
						r.Epoch, u, len(nbrs))
					return
				}
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for !stop.Load() {
				r := latest.Load()
				if r.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", r.Epoch, lastEpoch)
					return
				}
				lastEpoch = r.Epoch
				checkSnapshot(r)
			}
		}()
	}

	// Writer: random small moves plus occasional radius changes, the same
	// churn the mobility ingest path produces.
	wrng := rand.New(rand.NewSource(8))
	for tick := 0; tick < ticks; tick++ {
		moved := 1 + wrng.Intn(8)
		for k := 0; k < moved; k++ {
			u := wrng.Intn(n)
			nodes[u].Pos.X += (wrng.Float64() - 0.5) * 0.4
			nodes[u].Pos.Y += (wrng.Float64() - 0.5) * 0.4
			if wrng.Intn(4) == 0 {
				nodes[u].Radius = 0.5 + wrng.Float64()
			}
		}
		res, err := e.Update(nodes)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(tick) + 2; res.Epoch != want {
			t.Fatalf("tick %d: epoch = %d, want %d", tick, res.Epoch, want)
		}
		latest.Store(res)
	}
	stop.Store(true)
	wg.Wait()

	// The engine's own view agrees with the last published snapshot.
	if got := e.Result().Epoch; got != uint64(ticks)+1 {
		t.Fatalf("final epoch = %d, want %d", got, ticks+1)
	}
}

// TestMutationHookDisabled pins the production build: the mldcsmutate tag
// must never leak into a normal compile.
func TestMutationHookDisabled(t *testing.T) {
	if mutationEnabled {
		t.Fatal("mutationEnabled is true in a default build; the mldcsmutate tag must not be set outside mutation-sensitivity runs")
	}
	fwd := []int{1, 2, 3}
	if got := mutateForwarding(fwd, 5); len(got) != 3 {
		t.Fatalf("mutateForwarding changed a forwarding set in a default build: %v", got)
	}
}
