package viz

import (
	"strings"
	"testing"
)

func TestLineChartBasics(t *testing.T) {
	series := []ChartSeries{
		{Label: "flooding", X: []float64{4, 8, 12}, Y: []float64{4, 8, 12}},
		{Label: "skyline", X: []float64{4, 8, 12}, Y: []float64{3.5, 6.2, 7.6},
			Err: []float64{0.1, 0.15, 0.2}},
	}
	out := LineChart("Figure 5.1", "mean degree", "forward nodes", series, 720, 480)
	for _, want := range []string{
		"<svg", "</svg>", "Figure 5.1", "mean degree", "forward nodes",
		"flooding", "skyline", "<polyline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	// One polyline per multi-point series.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	// Error bars drawn only for the series that has them (3 bars).
	if got := strings.Count(out, `stroke-width="1"/>`); got != 3 {
		t.Errorf("%d error bars, want 3", got)
	}
}

func TestLineChartDegenerate(t *testing.T) {
	// Empty input still renders a document.
	out := LineChart("empty", "x", "y", nil, 0, 0)
	if !strings.HasPrefix(out, "<svg") {
		t.Error("empty chart must render")
	}
	// Single point, zero ranges.
	out = LineChart("one", "x", "y", []ChartSeries{
		{Label: "p", X: []float64{5}, Y: []float64{5}},
	}, 300, 200)
	if !strings.Contains(out, "<circle") {
		t.Error("single point must be drawn")
	}
	// Title with XML specials is escaped.
	out = LineChart("a<b&c", "x", "y", nil, 0, 0)
	if !strings.Contains(out, "a&lt;b&amp;c") {
		t.Error("title not escaped")
	}
}
