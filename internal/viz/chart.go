package viz

import (
	"fmt"
	"math"
	"strings"
)

// Line-chart rendering for experiment figures: pure-stdlib SVG with axes,
// tick labels, one polyline per series, optional error bars, and a legend.
// Kept decoupled from the experiments package by accepting plain data.

// ChartSeries is one curve of a line chart.
type ChartSeries struct {
	Label string
	X     []float64
	Y     []float64
	Err   []float64 // optional ±error bars, same length as Y when present
}

// chartPalette cycles through distinguishable stroke colors.
var chartPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f", "#bcbd22",
}

// LineChart renders the series as an SVG line chart. Width and height are
// pixel dimensions (≤ 0 selects 720×480).
func LineChart(title, xLabel, yLabel string, series []ChartSeries, width, height int) string {
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	const (
		marginL = 70
		marginR = 160
		marginT = 40
		marginB = 55
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i, x := range s.X {
			if i >= len(s.Y) {
				break
			}
			y := s.Y[i]
			e := 0.0
			if i < len(s.Err) {
				e = s.Err[i]
			}
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, y-e)
			maxY = math.Max(maxY, y+e)
		}
	}
	if math.IsInf(minX, 1) { // no data
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if minY > 0 {
		minY = 0 // anchor count/size axes at zero
	}
	if maxX == minX { //mldcslint:allow floatcmp exact sentinel: only a bitwise-degenerate range divides by zero below
		maxX = minX + 1
	}
	if maxY == minY { //mldcslint:allow floatcmp exact sentinel: only a bitwise-degenerate range divides by zero below
		maxY = minY + 1
	}

	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + (1-(y-minY)/(maxY-minY))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`,
		width, height)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16">%s</text>`+"\n", marginL, escape(title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, escape(xLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="12" transform="rotate(-90 16 %.1f)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(yLabel))

	// Ticks: 5 per axis.
	for k := 0; k <= 5; k++ {
		xv := minX + (maxX-minX)*float64(k)/5
		yv := minY + (maxY-minY)*float64(k)/5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cccccc"/>`+"\n",
			px(xv), marginT+plotH, px(xv), float64(marginT))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(xv), marginT+plotH+16, trimNum(xv))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eeeeee"/>`+"\n",
			marginL, py(yv), marginL+plotW, py(yv))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			float64(marginL)-6, py(yv)+4, trimNum(yv))
	}

	// Series.
	for si, s := range series {
		color := chartPalette[si%len(chartPalette)]
		var pts []string
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
			if i < len(s.Err) && s.Err[i] > 0 {
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
					px(s.X[i]), py(s.Y[i]-s.Err[i]), px(s.X[i]), py(s.Y[i]+s.Err[i]), color)
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		// Legend entry.
		ly := marginT + 18*si
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			marginL+plotW+12, ly+6, marginL+plotW+34, ly+6, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11">%s</text>`+"\n",
			marginL+plotW+40, ly+10, escape(s.Label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
