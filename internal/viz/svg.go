// Package viz renders deployments, local disk sets, skylines, and
// forwarding sets as standalone SVG documents using only the standard
// library. It exists for the examples and the CLI's -svg flag: seeing the
// skyline arcs hug the union boundary is the fastest way to understand the
// algorithm.
package viz

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/skyline"
)

// Canvas accumulates SVG elements in world coordinates and renders them
// with a uniform scale. Y is flipped so the output matches mathematical
// orientation.
type Canvas struct {
	minX, minY, maxX, maxY float64
	scale                  float64
	elems                  []string
	hasBounds              bool
}

// NewCanvas returns a canvas that will render at the given pixels-per-unit
// scale.
func NewCanvas(scale float64) *Canvas {
	if scale <= 0 {
		scale = 40
	}
	return &Canvas{scale: scale}
}

func (c *Canvas) grow(x, y, pad float64) {
	if !c.hasBounds {
		c.minX, c.maxX = x-pad, x+pad
		c.minY, c.maxY = y-pad, y+pad
		c.hasBounds = true
		return
	}
	c.minX = math.Min(c.minX, x-pad)
	c.maxX = math.Max(c.maxX, x+pad)
	c.minY = math.Min(c.minY, y-pad)
	c.maxY = math.Max(c.maxY, y+pad)
}

// Circle draws a circle outline.
func (c *Canvas) Circle(center geom.Point, r float64, stroke string, width float64) {
	c.grow(center.X, center.Y, r+0.1)
	c.elems = append(c.elems, fmt.Sprintf(
		`<circle cx="%.4f" cy="%.4f" r="%.4f" fill="none" stroke="%s" stroke-width="%.3f"/>`,
		center.X, -center.Y, r, stroke, width))
}

// Dot draws a filled point marker.
func (c *Canvas) Dot(p geom.Point, r float64, fill string) {
	c.grow(p.X, p.Y, r+0.1)
	c.elems = append(c.elems, fmt.Sprintf(
		`<circle cx="%.4f" cy="%.4f" r="%.4f" fill="%s"/>`, p.X, -p.Y, r, fill))
}

// Line draws a segment.
func (c *Canvas) Line(p, q geom.Point, stroke string, width float64) {
	c.grow(p.X, p.Y, 0.1)
	c.grow(q.X, q.Y, 0.1)
	c.elems = append(c.elems, fmt.Sprintf(
		`<line x1="%.4f" y1="%.4f" x2="%.4f" y2="%.4f" stroke="%s" stroke-width="%.3f"/>`,
		p.X, -p.Y, q.X, -q.Y, stroke, width))
}

// Text places a label at p.
func (c *Canvas) Text(p geom.Point, s string, size float64) {
	c.grow(p.X, p.Y, 0.3)
	c.elems = append(c.elems, fmt.Sprintf(
		`<text x="%.4f" y="%.4f" font-size="%.3f" font-family="monospace">%s</text>`,
		p.X, -p.Y, size, escape(s)))
}

// Arc draws the circular arc of disk d between the hub-frame angles
// [a1, a2] (the skyline parameterization: angles measured at the hub, not
// at the disk's center). hub is the hub position in world coordinates.
func (c *Canvas) Arc(hub geom.Point, d geom.Disk, a1, a2 float64, stroke string, width float64) {
	rel := d.Translate(hub)
	p1 := geom.Unit(a1).Scale(rel.RayDist(a1)).Add(hub)
	p2 := geom.Unit(a2).Scale(rel.RayDist(a2)).Add(hub)
	c.grow(d.C.X, d.C.Y, d.R+0.1)
	// The arc spans the angle (measured at the DISK center) from p1 to p2;
	// compute the large-arc flag from that central angle.
	ca1 := p1.Sub(d.C).Angle()
	ca2 := p2.Sub(d.C).Angle()
	delta := geom.CCWDelta(ca1, ca2)
	large := 0
	if delta > math.Pi {
		large = 1
	}
	// SVG y-axis points down, so counterclockwise in world coordinates is
	// sweep=0 in SVG coordinates.
	c.elems = append(c.elems, fmt.Sprintf(
		`<path d="M %.4f %.4f A %.4f %.4f 0 %d 0 %.4f %.4f" fill="none" stroke="%s" stroke-width="%.3f"/>`,
		p1.X, -p1.Y, d.R, d.R, large, p2.X, -p2.Y, stroke, width))
}

// String renders the SVG document.
func (c *Canvas) String() string {
	if !c.hasBounds {
		c.minX, c.minY, c.maxX, c.maxY = 0, 0, 1, 1
	}
	w := (c.maxX - c.minX) * c.scale
	h := (c.maxY - c.minY) * c.scale
	var b strings.Builder
	fmt.Fprintf(&b,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="%.4f %.4f %.4f %.4f">`,
		w, h, c.minX, -c.maxY, c.maxX-c.minX, c.maxY-c.minY)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect x="%.4f" y="%.4f" width="%.4f" height="%.4f" fill="white"/>`,
		c.minX, -c.maxY, c.maxX-c.minX, c.maxY-c.minY)
	b.WriteString("\n")
	for _, e := range c.elems {
		b.WriteString(e)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// RenderLocalSet draws a local disk set in the hub frame: every disk in
// light gray, the skyline arcs in red, the hub at the origin.
func RenderLocalSet(disks []geom.Disk, sl skyline.Skyline) string {
	c := NewCanvas(60)
	for _, d := range disks {
		c.Circle(d.C, d.R, "#cccccc", 0.02)
		c.Dot(d.C, 0.04, "#888888")
	}
	for _, a := range sl {
		c.Arc(geom.Pt(0, 0), disks[a.Disk], a.Start, a.End, "#cc2222", 0.05)
	}
	c.Dot(geom.Pt(0, 0), 0.06, "#2222cc")
	return c.String()
}

// RenderBroadcastTree draws the reverse-path tree of a broadcast: every
// delivered node is connected to the node it first received from, with
// transmitting nodes highlighted. parent[v] = −1 marks the source or an
// unreached node; transmitted may be nil.
func RenderBroadcastTree(g *network.Graph, source int, parent []int, transmitted []bool) string {
	c := NewCanvas(40)
	for v, p := range parent {
		if p >= 0 {
			c.Line(g.Node(p).Pos, g.Node(v).Pos, "#99bbee", 0.04)
		}
	}
	for v := 0; v < g.Len(); v++ {
		switch {
		case v == source:
			c.Dot(g.Node(v).Pos, 0.14, "#2222cc")
		case transmitted != nil && v < len(transmitted) && transmitted[v]:
			c.Dot(g.Node(v).Pos, 0.1, "#cc2222")
		case v < len(parent) && parent[v] >= 0:
			c.Dot(g.Node(v).Pos, 0.07, "#44aa44")
		default:
			c.Dot(g.Node(v).Pos, 0.07, "#bbbbbb") // unreached
		}
	}
	return c.String()
}

// RenderNetwork draws a deployment with its links, highlighting the source
// and a forwarding set.
func RenderNetwork(g *network.Graph, source int, fwdSet []int) string {
	c := NewCanvas(40)
	inSet := make(map[int]bool, len(fwdSet))
	for _, w := range fwdSet {
		inSet[w] = true
	}
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				c.Line(g.Node(u).Pos, g.Node(v).Pos, "#dddddd", 0.02)
			}
		}
	}
	for u := 0; u < g.Len(); u++ {
		switch {
		case u == source:
			c.Dot(g.Node(u).Pos, 0.12, "#2222cc")
			c.Circle(g.Node(u).Pos, g.Node(u).Radius, "#2222cc", 0.03)
		case inSet[u]:
			c.Dot(g.Node(u).Pos, 0.1, "#cc2222")
			c.Circle(g.Node(u).Pos, g.Node(u).Radius, "#cc2222", 0.02)
		default:
			c.Dot(g.Node(u).Pos, 0.07, "#888888")
		}
	}
	return c.String()
}
