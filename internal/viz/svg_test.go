package viz

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/deploy"
	"repro/internal/forwarding"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/skyline"
)

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(10)
	c.Circle(geom.Pt(0, 0), 1, "#000", 0.1)
	c.Dot(geom.Pt(1, 1), 0.1, "#f00")
	c.Line(geom.Pt(0, 0), geom.Pt(1, 1), "#0f0", 0.05)
	c.Text(geom.Pt(0.5, 0.5), "a<b&c>d", 0.2)
	out := c.String()
	for _, want := range []string{"<svg", "</svg>", "<circle", "<line", "<text", "a&lt;b&amp;c&gt;d"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestEmptyCanvas(t *testing.T) {
	out := NewCanvas(0).String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Errorf("empty canvas must still render a document: %q", out)
	}
}

func TestArcEndpoints(t *testing.T) {
	// The rendered arc's endpoints must lie on the disk's circle.
	hub := geom.Pt(1, 2)
	d := geom.NewDisk(1.3, 2.1, 1.5)
	c := NewCanvas(10)
	c.Arc(hub, d, 0.5, 2.0, "#f00", 0.1)
	out := c.String()
	if !strings.Contains(out, "<path") || !strings.Contains(out, "A 1.5") {
		t.Errorf("arc path missing: %q", out)
	}
}

func TestRenderLocalSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	disks := make([]geom.Disk, 8)
	for i := range disks {
		r := 1 + rng.Float64()
		disks[i] = geom.Disk{C: geom.Unit(rng.Float64() * geom.TwoPi).Scale(rng.Float64() * r * 0.9), R: r}
	}
	sl, err := skyline.Compute(disks)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderLocalSet(disks, sl)
	if strings.Count(out, "<circle") < len(disks) {
		t.Error("every disk must be drawn")
	}
	if strings.Count(out, "<path") != len(sl) {
		t.Errorf("drew %d arcs, skyline has %d", strings.Count(out, "<path"), len(sl))
	}
}

func TestRenderBroadcastTree(t *testing.T) {
	nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Homogeneous, 6),
		rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	res, err := broadcast.Run(g, 0, forwarding.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderBroadcastTree(g, 0, res.Parent, res.Transmitted)
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "<line") {
		t.Error("tree rendering missing elements")
	}
	// The number of tree edges equals the number of delivered nodes.
	if got := strings.Count(out, "<line"); got != res.Delivered {
		t.Errorf("tree has %d edges, delivered %d nodes", got, res.Delivered)
	}
	// Nil transmitted slice must not panic.
	_ = RenderBroadcastTree(g, 0, res.Parent, nil)
}

func TestRenderNetwork(t *testing.T) {
	nodes, err := deploy.Generate(deploy.PaperConfig(deploy.Heterogeneous, 6),
		rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	set, err := (forwarding.Skyline{}).Select(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderNetwork(g, 0, set)
	if !strings.Contains(out, "#2222cc") {
		t.Error("source highlight missing")
	}
	if len(set) > 0 && !strings.Contains(out, "#cc2222") {
		t.Error("forwarding-set highlight missing")
	}
}
