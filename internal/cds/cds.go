// Package cds builds connected dominating sets, the backbone-based
// alternative to per-node forwarding sets among the broadcast schemes the
// paper surveys (references [8] and [11]): once a CDS is in place, only
// backbone nodes relay broadcasts.
//
// Two classic localized constructions are provided:
//
//   - WuLi: the marking process of Wu & Li ("On calculating connected
//     dominating set for efficient routing in ad hoc wireless networks"),
//     where a node marks itself if it has two neighbors that are not
//     directly connected, followed by the degree/ID-based pruning Rules 1
//     and 2 that unmark nodes whose neighborhoods are covered by one or
//     two connected marked neighbors with higher priority.
//   - MISConnect: a maximal-independent-set dominating set (greedy by ID
//     over a BFS layering, in the spirit of Alzoubi, Wan & Frieder)
//     connected by adding bridge nodes between nearby MIS members.
//
// Both run on the bidirectional disk graph and use only 1-hop/2-hop
// information per node, like every algorithm in this repository.
package cds

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// WuLi returns the connected dominating set produced by the Wu–Li marking
// process with pruning Rules 1 and 2, as a sorted node ID list. Isolated
// nodes are never members; a graph whose every component is a clique has
// an empty CDS (any member can reach all others directly).
func WuLi(g *network.Graph) []int {
	n := g.Len()
	marked := make([]bool, n)

	// Marking process: u is marked iff it has two neighbors that are not
	// adjacent to each other.
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		for i := 0; i < len(nbrs) && !marked[u]; i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if !g.IsNeighbor(nbrs[i], nbrs[j]) {
					marked[u] = true
					break
				}
			}
		}
	}

	// Priority: higher degree first, then higher ID (any total order
	// works; degree-based pruning keeps the backbone smaller).
	higher := func(a, b int) bool {
		if g.Degree(a) != g.Degree(b) {
			return g.Degree(a) > g.Degree(b)
		}
		return a > b
	}

	// Rule 1: unmark v if some marked neighbor u with higher priority
	// satisfies N[v] ⊆ N[u].
	for v := 0; v < n; v++ {
		if !marked[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if marked[u] && higher(u, v) && closedSubset(g, v, u) {
				marked[v] = false
				break
			}
		}
	}

	// Rule 2: unmark v if two connected marked neighbors u, w, each with
	// higher priority, jointly cover N(v).
	for v := 0; v < n; v++ {
		if !marked[v] {
			continue
		}
		nbrs := g.Neighbors(v)
	rule2:
		for i := 0; i < len(nbrs); i++ {
			u := nbrs[i]
			if !marked[u] || !higher(u, v) {
				continue
			}
			for j := 0; j < len(nbrs); j++ {
				w := nbrs[j]
				if w == u || !marked[w] || !higher(w, v) || !g.IsNeighbor(u, w) {
					continue
				}
				if openCoveredByTwo(g, v, u, w) {
					marked[v] = false
					break rule2
				}
			}
		}
	}

	var out []int
	for v := 0; v < n; v++ {
		if marked[v] {
			out = append(out, v)
		}
	}
	return out
}

// closedSubset reports N[v] ⊆ N[u].
func closedSubset(g *network.Graph, v, u int) bool {
	for _, x := range g.Neighbors(v) {
		if x != u && !g.IsNeighbor(u, x) {
			return false
		}
	}
	return true
}

// openCoveredByTwo reports N(v) ⊆ N(u) ∪ N(w) ∪ {u, w}.
func openCoveredByTwo(g *network.Graph, v, u, w int) bool {
	for _, x := range g.Neighbors(v) {
		if x == u || x == w {
			continue
		}
		if !g.IsNeighbor(u, x) && !g.IsNeighbor(w, x) {
			return false
		}
	}
	return true
}

// MISConnect returns a connected dominating set built from a maximal
// independent set: BFS-layer the component of root, greedily add
// independent dominators layer by layer, then connect adjacent MIS
// members through shared neighbors. Only root's component is covered.
func MISConnect(g *network.Graph, root int) ([]int, error) {
	if root < 0 || root >= g.Len() {
		return nil, fmt.Errorf("cds: root %d out of range [0, %d)", root, g.Len())
	}
	dist := g.HopDistances(root)
	// Order candidates by (BFS layer, ID): classic layered MIS.
	var order []int
	for v, d := range dist {
		if d >= 0 {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if dist[order[a]] != dist[order[b]] {
			return dist[order[a]] < dist[order[b]]
		}
		return order[a] < order[b]
	})
	inMIS := make(map[int]bool)
	blocked := make(map[int]bool)
	for _, v := range order {
		if blocked[v] {
			continue
		}
		inMIS[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
		blocked[v] = true
	}

	// Connect: MIS members in adjacent layers are within 3 hops; for each
	// MIS member (except those in layer 0) add a neighbor that is
	// adjacent to some already-connected member closer to the root.
	cds := make(map[int]bool)
	for v := range inMIS {
		cds[v] = true
	}
	members := make([]int, 0, len(inMIS))
	for v := range inMIS {
		members = append(members, v)
	}
	sort.Slice(members, func(a, b int) bool {
		if dist[members[a]] != dist[members[b]] {
			return dist[members[a]] < dist[members[b]]
		}
		return members[a] < members[b]
	})
	for _, v := range members {
		if dist[v] == 0 {
			continue
		}
		// Find a connector: a neighbor w of v with dist[w] == dist[v]−1.
		// w is dominated by some MIS member at distance ≤ dist[w], and
		// adding the chain of such connectors links the whole set; for a
		// 2-layer gap add the second connector too.
		cur := v
		for dist[cur] > 0 {
			picked := -1
			for _, w := range g.Neighbors(cur) {
				if dist[w] == dist[cur]-1 && (picked < 0 || w < picked) {
					picked = w
				}
			}
			if picked < 0 {
				return nil, fmt.Errorf("cds: BFS layering inconsistent at node %d", cur)
			}
			if cds[picked] || inMIS[picked] {
				cds[picked] = true
				break
			}
			cds[picked] = true
			cur = picked
		}
	}

	out := make([]int, 0, len(cds))
	for v := range cds {
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}

// IsDominatingSet reports whether every node of g is in the set or
// adjacent to a member. restrict limits the check to nodes reachable from
// a given root (pass −1 to check all nodes).
func IsDominatingSet(g *network.Graph, set []int, root int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	var dist []int
	if root >= 0 {
		dist = g.HopDistances(root)
	}
	for v := 0; v < g.Len(); v++ {
		if root >= 0 && dist[v] < 0 {
			continue
		}
		if in[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if in[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			// A node with no neighbors in the considered region cannot be
			// dominated unless it is a member; isolated nodes fail here.
			if g.Degree(v) == 0 && root < 0 {
				continue // isolated nodes are conventionally exempt
			}
			return false
		}
	}
	return true
}

// IsConnectedSet reports whether the subgraph induced by the set is
// connected (trivially true for sets of size ≤ 1).
func IsConnectedSet(g *network.Graph, set []int) bool {
	if len(set) <= 1 {
		return true
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	seen := map[int]bool{set[0]: true}
	queue := []int{set[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if in[w] && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return len(seen) == len(set)
}
