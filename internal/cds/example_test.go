package cds_test

import (
	"fmt"

	"repro/internal/cds"
	"repro/internal/geom"
	"repro/internal/network"
)

// The Wu–Li marking process on a 5-node chain: the endpoints are never
// marked (their neighborhoods are cliques), the interior forms the CDS.
func ExampleWuLi() {
	nodes := make([]network.Node, 5)
	for i := range nodes {
		nodes[i] = network.Node{ID: i, Pos: geom.Pt(float64(i), 0), Radius: 1.2}
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		panic(err)
	}
	set := cds.WuLi(g)
	fmt.Println(set, cds.IsDominatingSet(g, set, -1), cds.IsConnectedSet(g, set))
	// Output: [1 2 3] true true
}
