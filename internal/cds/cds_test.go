package cds

import (
	"math/rand"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/network"
)

func chain(t *testing.T, n int) *network.Graph {
	t.Helper()
	nodes := make([]network.Node, n)
	for i := range nodes {
		nodes[i] = network.Node{ID: i, Pos: geom.Pt(float64(i), 0), Radius: 1.2}
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func paperGraph(t *testing.T, model deploy.RadiusModel, degree float64, seed int64) *network.Graph {
	t.Helper()
	nodes, err := deploy.Generate(deploy.PaperConfig(model, degree),
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWuLiChain(t *testing.T) {
	g := chain(t, 5)
	set := WuLi(g)
	// On a chain, exactly the interior nodes are marked (endpoints have a
	// single neighbor) and no rule unmarks them (their neighborhoods are
	// not covered by any single or pair of neighbors' neighborhoods...
	// node 1 has N[1] = {0,1,2} ⊆ N[2] = {1,2,3}? 0 ∉ N[2], so no).
	want := []int{1, 2, 3}
	if len(set) != len(want) {
		t.Fatalf("WuLi(chain) = %v, want %v", set, want)
	}
	for i := range want {
		if set[i] != want[i] {
			t.Fatalf("WuLi(chain) = %v, want %v", set, want)
		}
	}
}

func TestWuLiClique(t *testing.T) {
	// In a clique nobody has two unconnected neighbors: empty CDS.
	var nodes []network.Node
	for i := 0; i < 5; i++ {
		nodes = append(nodes, network.Node{ID: i, Pos: geom.Pt(float64(i)*0.1, 0), Radius: 5})
	}
	g, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if set := WuLi(g); len(set) != 0 {
		t.Errorf("WuLi(clique) = %v, want empty", set)
	}
}

// On connected random networks, the Wu–Li result must dominate the graph
// and be connected; with a clique exception (empty set) handled above.
func TestWuLiDominatingAndConnected(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		for _, model := range []deploy.RadiusModel{deploy.Homogeneous, deploy.Heterogeneous} {
			g := paperGraph(t, model, 10, 1400+seed)
			set := WuLi(g)
			// The marking process leaves complete components (including
			// isolated pairs at the region edge) unmarked, so restrict the
			// guarantees to the source's component, which at paper density
			// is the giant component.
			dist := g.HopDistances(0)
			var inComp []int
			for _, v := range set {
				if dist[v] >= 0 {
					inComp = append(inComp, v)
				}
			}
			if len(inComp) == 0 {
				continue
			}
			if !IsDominatingSet(g, inComp, 0) {
				t.Fatalf("%v seed %d: Wu–Li set not dominating on the source component", model, seed)
			}
			if !IsConnectedSet(g, inComp) {
				t.Fatalf("%v seed %d: Wu–Li set not connected on the source component", model, seed)
			}
		}
	}
}

func TestMISConnectValidity(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := paperGraph(t, deploy.Heterogeneous, 10, 1500+seed)
		set, err := MISConnect(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !IsDominatingSet(g, set, 0) {
			t.Fatalf("seed %d: MIS CDS not dominating over source component", seed)
		}
		if !IsConnectedSet(g, set) {
			t.Fatalf("seed %d: MIS CDS not connected (size %d)", seed, len(set))
		}
	}
	if _, err := MISConnect(chain(t, 3), 9); err == nil {
		t.Error("out-of-range root must fail")
	}
}

func TestBackboneBroadcastDelivers(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := paperGraph(t, deploy.Heterogeneous, 10, 1600+seed)
		for _, build := range []struct {
			name string
			set  func() []int
		}{
			{"wuli", func() []int { return WuLi(g) }},
			{"mis", func() []int { s, _ := MISConnect(g, 0); return s }},
		} {
			set := build.set()
			res, err := broadcast.RunWithBackbone(g, 0, set)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeliveryRatio() != 1 {
				t.Fatalf("%s seed %d: delivery %v with backbone of %d nodes",
					build.name, seed, res.DeliveryRatio(), len(set))
			}
			flood, err := broadcast.Run(g, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Transmissions > flood.Transmissions {
				t.Fatalf("%s seed %d: backbone uses more transmissions than flooding",
					build.name, seed)
			}
		}
	}
}

func TestIsConnectedSet(t *testing.T) {
	g := chain(t, 5)
	if !IsConnectedSet(g, []int{1, 2, 3}) {
		t.Error("contiguous chain interior is connected")
	}
	if IsConnectedSet(g, []int{0, 4}) {
		t.Error("chain endpoints alone are not connected")
	}
	if !IsConnectedSet(g, []int{2}) || !IsConnectedSet(g, nil) {
		t.Error("sets of size ≤ 1 are trivially connected")
	}
}

func TestIsDominatingSet(t *testing.T) {
	g := chain(t, 5)
	if !IsDominatingSet(g, []int{1, 3}, -1) {
		t.Error("{1,3} dominates the 5-chain")
	}
	if IsDominatingSet(g, []int{0}, -1) {
		t.Error("{0} does not dominate the 5-chain")
	}
	// Restricted to the component of node 0 on a disconnected graph.
	nodes := []network.Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1.2},
		{ID: 1, Pos: geom.Pt(1, 0), Radius: 1.2},
		{ID: 2, Pos: geom.Pt(50, 0), Radius: 1.2},
	}
	gd, err := network.Build(nodes, network.Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDominatingSet(gd, []int{0}, 0) {
		t.Error("{0} dominates node 0's component")
	}
}

func TestBackboneValidation(t *testing.T) {
	g := chain(t, 3)
	if _, err := broadcast.RunWithBackbone(g, 9, nil); err == nil {
		t.Error("bad source must fail")
	}
	if _, err := broadcast.RunWithBackbone(g, 0, []int{99}); err == nil {
		t.Error("bad backbone node must fail")
	}
}
