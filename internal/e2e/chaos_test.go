package e2e

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

// Env knobs (all optional):
//
//	E2E_SEEDS     number of fresh seeds per run (default 8; 3 under -short)
//	E2E_BASE_SEED first seed value (default 1)
//	E2E_NODES     initial network size (default 36)
//	E2E_ACTIONS   driver actions per seed (default 160)
//	E2E_LOG_DIR   keep JSONL action logs here (default: test temp dir)
//	E2E_BANK      set to 0 to disable banking failing seeds
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func runConfig(seed int64) SeedConfig {
	return SeedConfig{
		Seed:    seed,
		Nodes:   envInt("E2E_NODES", 36),
		Actions: envInt("E2E_ACTIONS", 160),
	}
}

// runAndMaybeBank executes one seed, writing its JSONL log, and banks the
// seed into testdata/regression_seeds.json on failure so CI replays it
// forever after.
func runAndMaybeBank(t *testing.T, cfg SeedConfig, logDir string, bankable bool) {
	t.Helper()
	logName := fmt.Sprintf("seed_%d.jsonl", cfg.Seed)
	if cfg.Profile != "" {
		logName = fmt.Sprintf("seed_%s_%d.jsonl", cfg.Profile, cfg.Seed)
	}
	logPath := filepath.Join(logDir, logName)
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("log file: %v", err)
	}
	defer logf.Close()

	stats, err := RunSeed(cfg, logf)
	if err != nil {
		if bankable {
			bankSeed(t, cfg, err)
		}
		t.Fatalf("seed %d failed (log: %s): %v", cfg.Seed, logPath, err)
	}
	t.Logf("seed %d: %d batches / %d deltas, %d retries, %d malformed, %d disconnects, %d restarts, %d queries (%d errs), %d nodes @ epoch %d",
		cfg.Seed, stats.Batches, stats.Deltas, stats.Retries429, stats.Malformed,
		stats.Disconnects, stats.Restarts, stats.Queries, stats.QueryErrors,
		stats.FinalNodes, stats.FinalEpoch)
}

// TestChaosSeeds is the front line: fresh seeds every knob change, each a
// full chaos run verified byte-for-byte against the oracle.
func TestChaosSeeds(t *testing.T) {
	if mutationActive {
		t.Skip("engine mutation build: only TestMutationCaught is meaningful")
	}
	seeds := envInt("E2E_SEEDS", 8)
	if testing.Short() {
		seeds = 3
	}
	base := int64(envInt("E2E_BASE_SEED", 1))
	logDir := os.Getenv("E2E_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seeds; i++ {
		cfg := runConfig(base + int64(i))
		t.Run(fmt.Sprintf("seed_%d", cfg.Seed), func(t *testing.T) {
			t.Parallel()
			runAndMaybeBank(t, cfg, logDir, true)
		})
	}
}

// TestChaosMobilitySeeds runs the pure-mobility-heavy stream shape: almost
// every delta is a small slide of an existing node, so the server's engine
// spends the run on its kinetic repair path and the byte-for-byte oracle
// comparison pins repaired skylines against the offline sequential
// recompute. Seeds are offset from the mixed-churn run's so a failure
// banks a distinct entry.
func TestChaosMobilitySeeds(t *testing.T) {
	if mutationActive {
		t.Skip("engine mutation build: only TestMutationCaught is meaningful")
	}
	seeds := envInt("E2E_SEEDS", 8)
	if testing.Short() {
		seeds = 3
	}
	base := int64(envInt("E2E_BASE_SEED", 1))
	logDir := os.Getenv("E2E_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seeds; i++ {
		cfg := runConfig(base + int64(i))
		cfg.Profile = ProfileMobility
		t.Run(fmt.Sprintf("seed_%d", cfg.Seed), func(t *testing.T) {
			t.Parallel()
			runAndMaybeBank(t, cfg, logDir, true)
		})
	}
}

// TestRegressionSeeds replays every banked seed. A seed enters the bank by
// failing once; it never leaves, so past escapes stay fixed.
func TestRegressionSeeds(t *testing.T) {
	if mutationActive {
		t.Skip("engine mutation build: only TestMutationCaught is meaningful")
	}
	bank, err := loadBank()
	if err != nil {
		t.Fatal(err)
	}
	if len(bank.Seeds) == 0 {
		t.Skip("regression bank is empty")
	}
	logDir := os.Getenv("E2E_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	}
	for _, cfg := range bank.Seeds {
		cfg := cfg
		t.Run(fmt.Sprintf("seed_%d", cfg.Seed), func(t *testing.T) {
			t.Parallel()
			// Already banked: re-banking would only duplicate the entry.
			runAndMaybeBank(t, cfg, logDir, false)
		})
	}
}

// --- seed bank ---

const bankPath = "testdata/regression_seeds.json"

type seedBank struct {
	Seeds []SeedConfig `json:"seeds"`
}

var bankMu sync.Mutex

func loadBank() (seedBank, error) {
	var bank seedBank
	raw, err := os.ReadFile(bankPath)
	if err != nil {
		if os.IsNotExist(err) {
			return bank, nil
		}
		return bank, err
	}
	if err := json.Unmarshal(raw, &bank); err != nil {
		return bank, fmt.Errorf("%s: %w", bankPath, err)
	}
	return bank, nil
}

// bankSeed appends a failing seed to the regression bank (idempotently),
// so the failure is pinned before anyone even reads the test output.
func bankSeed(t *testing.T, cfg SeedConfig, cause error) {
	t.Helper()
	if os.Getenv("E2E_BANK") == "0" {
		return
	}
	bankMu.Lock()
	defer bankMu.Unlock()
	bank, err := loadBank()
	if err != nil {
		t.Logf("bank read failed, not banking: %v", err)
		return
	}
	for _, s := range bank.Seeds {
		if s.Seed == cfg.Seed && s.Nodes == cfg.Nodes && s.Actions == cfg.Actions && s.Profile == cfg.Profile {
			return
		}
	}
	cfg.Note = fmt.Sprintf("auto-banked: %.160s", cause.Error())
	cfg.Banked = time.Now().UTC().Format("2006-01-02")
	bank.Seeds = append(bank.Seeds, cfg)
	out, err := json.MarshalIndent(bank, "", "  ")
	if err != nil {
		t.Logf("bank marshal failed: %v", err)
		return
	}
	if err := os.MkdirAll(filepath.Dir(bankPath), 0o755); err != nil {
		t.Logf("bank mkdir failed: %v", err)
		return
	}
	if err := os.WriteFile(bankPath, append(out, '\n'), 0o644); err != nil {
		t.Logf("bank write failed: %v", err)
		return
	}
	t.Logf("banked seed %d into %s", cfg.Seed, bankPath)
}
