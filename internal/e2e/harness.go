package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpserve"
	"repro/internal/mldcsd"
)

// RunStats summarizes one chaos run, for the JSONL log and for test
// assertions that the stream actually exercised every chaos class.
type RunStats struct {
	Seed        int64 `json:"seed"`
	Batches     int   `json:"batches"`      // accepted ingest batches (incl. syncs)
	Deltas      int   `json:"deltas"`       // deltas inside them
	Retries429  int   `json:"retries_429"`  // ingest retries after backpressure
	Malformed   int   `json:"malformed"`    // hostile bodies sent (all must 400)
	Disconnects int   `json:"disconnects"`  // mid-body client aborts
	Restarts    int   `json:"restarts"`     // server kills + full re-syncs
	Queries     int64 `json:"queries"`      // concurrent reads during the stream
	QueryErrors int64 `json:"query_errors"` // transport errors tolerated (restart windows)
	FinalNodes  int   `json:"final_nodes"`
	FinalEpoch  uint64 `json:"final_epoch"`
}

// RunSeed drives one full chaos run: boot a live mldcsd server on an
// ephemeral port, stream the seed's action sequence at it while query
// workers hammer reads, then drain and compare the converged state
// byte-for-byte against the sequential oracle. A non-nil error means
// either divergence or a violated service contract (wrong status code,
// lost batch, inconsistent read) — every one is bankable.
//
// The log, when non-nil, receives one JSON line per driver action and a
// final verdict line; CI uploads it on failure.
func RunSeed(cfg SeedConfig, logw io.Writer) (RunStats, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 36
	}
	if cfg.Actions <= 0 {
		cfg.Actions = 160
	}
	h := &harness{
		cfg:   cfg,
		gen:   newGenerator(cfg),
		stats: RunStats{Seed: cfg.Seed},
		log:   logw,
		// Fixed ID bound for query workers: the model grows under the
		// driver's feet, so readers probe a static superset (absent IDs
		// just 404) rather than race on the model.
		idBound: int64(cfg.Nodes + cfg.Actions*32 + 8),
	}
	if err := h.start(); err != nil {
		return h.stats, err
	}
	defer h.stopServer()

	// Concurrent readers for the whole run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			h.queryLoop(worker, stop)
		}(w)
	}
	err := h.drive()
	close(stop)
	wg.Wait()
	if qe := h.queryFailure.Load(); err == nil && qe != nil {
		err = fmt.Errorf("query worker: %s", *qe)
	}
	if err == nil {
		err = h.verify()
	}
	h.logLine(map[string]any{
		"kind": "verdict", "seed": cfg.Seed, "ok": err == nil,
		"err": errString(err), "stats": h.stats,
	})
	return h.stats, err
}

type harness struct {
	cfg     SeedConfig
	gen     *generator
	stats   RunStats
	idBound int64
	log     io.Writer
	logMu   sync.Mutex

	mu      sync.Mutex // guards core/httpSrv/baseURL across restarts
	core    *mldcsd.Server
	httpSrv *httpserve.Server
	baseURL string
	// generation increments on every restart; query workers use it to
	// reset their epoch-monotonicity watermark.
	generation atomic.Int64
	// lastSeq is the newest ack the driver received from the current
	// server generation; drain waits for it.
	lastSeq uint64

	queryFailure atomic.Pointer[string]
}

func (h *harness) start() error {
	core := mldcsd.New(mldcsd.Config{
		QueueDepth:    64,
		Coalesce:      8,
		EngineWorkers: 2,
	})
	srv, err := httpserve.Start("127.0.0.1:0", core.Handler())
	if err != nil {
		core.Close()
		return fmt.Errorf("start server: %w", err)
	}
	h.mu.Lock()
	h.core, h.httpSrv, h.baseURL = core, srv, srv.URL()
	h.lastSeq = 0
	h.mu.Unlock()
	return nil
}

func (h *harness) stopServer() {
	h.mu.Lock()
	core, srv := h.core, h.httpSrv
	h.core, h.httpSrv = nil, nil
	h.mu.Unlock()
	if srv != nil {
		srv.Shutdown(2 * time.Second)
	}
	if core != nil {
		core.Close()
	}
}

func (h *harness) base() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.baseURL
}

// drive executes the action stream in order. Ingest ordering matters —
// the model applies batches in emission order, so the driver is the only
// goroutine that POSTs deltas, and restarts happen between sends.
func (h *harness) drive() error {
	// Initial join storm.
	if err := h.sendBatch(h.gen.initialBatch(h.cfg.Nodes), "init"); err != nil {
		return err
	}
	for i := 0; i < h.cfg.Actions; i++ {
		a := h.gen.next()
		switch a.kind {
		case actIngest:
			if err := h.sendBatch(a.batch, "ingest"); err != nil {
				return fmt.Errorf("action %d: %w", i, err)
			}
		case actMalformed:
			if err := h.sendMalformed(a.raw); err != nil {
				return fmt.Errorf("action %d: %w", i, err)
			}
		case actDisconnect:
			h.disconnectMidBody(a.raw)
		case actRestart:
			if err := h.restart(); err != nil {
				return fmt.Errorf("action %d: %w", i, err)
			}
		}
	}
	return nil
}

// sendBatch POSTs one batch, retrying 429 backpressure (honoring
// Retry-After, capped so tests stay fast) until accepted. Anything but
// 202/429 is a contract violation.
func (h *harness) sendBatch(b mldcsd.Batch, why string) error {
	body, err := json.Marshal(b)
	if err != nil {
		return err
	}
	for attempt := 0; attempt < 500; attempt++ {
		resp, err := http.Post(h.base()+"/v1/deltas", "application/json", bytes.NewReader(body))
		if err != nil {
			// The listener is down only inside restart(), which the driver
			// itself runs; a transport error here is real.
			return fmt.Errorf("ingest: %w", err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var ack struct {
				Seq uint64 `json:"seq"`
			}
			err := json.NewDecoder(resp.Body).Decode(&ack)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("ingest ack: %w", err)
			}
			h.mu.Lock()
			h.lastSeq = ack.Seq
			h.mu.Unlock()
			h.stats.Batches++
			h.stats.Deltas += len(b.Deltas)
			h.logLine(map[string]any{"kind": why, "seq": ack.Seq, "deltas": len(b.Deltas), "retries": attempt})
			return nil
		case http.StatusTooManyRequests:
			h.stats.Retries429++
			resp.Body.Close()
			d := 5 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				d = time.Duration(ra) * time.Second
			}
			if d > 25*time.Millisecond {
				d = 25 * time.Millisecond
			}
			time.Sleep(d)
		default:
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return fmt.Errorf("ingest (%s): status %d: %s", why, resp.StatusCode, msg)
		}
	}
	return fmt.Errorf("ingest: starved after 500 backpressure retries")
}

// sendMalformed POSTs a hostile body; the contract is 400 and no state
// change (the latter is what the final oracle comparison proves).
func (h *harness) sendMalformed(raw string) error {
	resp, err := http.Post(h.base()+"/v1/deltas", "application/json", bytes.NewReader([]byte(raw)))
	if err != nil {
		return fmt.Errorf("malformed send: %w", err)
	}
	defer resp.Body.Close()
	h.stats.Malformed++
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("malformed body %.40q answered %d, want 400", raw, resp.StatusCode)
	}
	h.logLine(map[string]any{"kind": actMalformed, "status": resp.StatusCode})
	return nil
}

// disconnectMidBody opens a raw TCP connection, sends a request whose
// Content-Length promises more than it delivers, and slams the
// connection. The server must treat it as a decode failure: nothing may
// apply (a fully-sent body could have been processed; a short one never).
func (h *harness) disconnectMidBody(partial string) {
	addr := h.base()[len("http://"):]
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return // restart window; nothing to assert
	}
	fmt.Fprintf(conn, "POST /v1/deltas HTTP/1.1\r\nHost: e2e\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(partial)+512, partial)
	conn.Close()
	h.stats.Disconnects++
	h.logLine(map[string]any{"kind": actDisconnect})
}

// restart kills the live server mid-load and boots a fresh one, then
// replays the whole intended world as a join storm — the client-side
// re-announcement a real mobility source performs when its collector
// comes back. Accepted-but-unapplied batches on the old server may be
// lost; the sync makes the new server's state exactly the model again.
func (h *harness) restart() error {
	h.stopServer()
	// Bump the generation BEFORE the new server exists: a query worker
	// that saw the same generation before and after its request is then
	// guaranteed to have hit the old server, so its epoch watermark is
	// valid — the new server restarts epochs at zero.
	h.generation.Add(1)
	if err := h.start(); err != nil {
		return err
	}
	h.stats.Restarts++
	h.logLine(map[string]any{"kind": actRestart, "generation": h.generation.Load()})
	if len(h.gen.model.Nodes) == 0 {
		return nil // empty world: a fresh empty server is already converged
	}
	sync, err := h.gen.syncBatch()
	if err != nil {
		return err
	}
	return h.sendBatch(sync, "sync")
}

// queryLoop is one concurrent reader: random forwarding/skyline/epoch
// queries against whatever server is live, checking that every 200 is
// internally consistent and epochs never move backwards within a server
// generation. Transport errors are expected in restart windows and only
// counted.
func (h *harness) queryLoop(worker int, stop <-chan struct{}) {
	rng := int64(worker)*7919 + h.cfg.Seed
	var lastEpoch uint64
	lastGen := int64(-1)
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		rng = rng*6364136223846793005 + 1442695040888963407 // LCG: no shared rand
		id := (rng >> 33) % h.idBound
		if id < 0 {
			id = -id
		}
		genBefore := h.generation.Load()
		kind := i % 8
		var err error
		switch {
		case kind < 5:
			var epoch uint64
			var ok bool
			epoch, ok, err = h.queryForwarding(id)
			if err == nil && ok {
				if genBefore == lastGen && epoch < lastEpoch && genBefore == h.generation.Load() {
					h.failQuery(fmt.Sprintf("epoch went backwards: %d after %d", epoch, lastEpoch))
					return
				}
				if genBefore == h.generation.Load() {
					lastGen, lastEpoch = genBefore, epoch
				}
			}
		case kind < 7:
			err = h.querySkyline(id)
		default:
			err = h.queryEpoch()
		}
		if err != nil {
			atomic.AddInt64(&h.stats.QueryErrors, 1)
		}
		atomic.AddInt64(&h.stats.Queries, 1)
	}
}

func (h *harness) failQuery(msg string) {
	h.queryFailure.CompareAndSwap(nil, &msg)
}

// queryForwarding GETs one node's forwarding set and verifies internal
// consistency: forwarding ⊆ neighbors, both sorted, epoch present. ok is
// true only for a 200 — a 404 (unknown node) carries no epoch to
// watermark against.
func (h *harness) queryForwarding(id int64) (uint64, bool, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/forwarding?node=%d", h.base(), id))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return 0, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		h.failQuery(fmt.Sprintf("forwarding?node=%d status %d", id, resp.StatusCode))
		return 0, false, nil
	}
	var q struct {
		Epoch      uint64  `json:"epoch"`
		Node       int64   `json:"node"`
		Neighbors  []int64 `json:"neighbors"`
		Forwarding []int64 `json:"forwarding"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		h.failQuery(fmt.Sprintf("forwarding decode: %v", err))
		return 0, false, nil
	}
	if q.Node != id {
		h.failQuery(fmt.Sprintf("asked node %d, answered %d", id, q.Node))
		return 0, false, nil
	}
	if !sortedSubset(q.Forwarding, q.Neighbors) {
		h.failQuery(fmt.Sprintf("node %d: forwarding %v ⊄ neighbors %v", id, q.Forwarding, q.Neighbors))
	}
	return q.Epoch, true, nil
}

// querySkyline GETs one node's skyline and verifies the arc list tiles
// [0, 2π] contiguously — the paper's structural invariant, end to end
// through the wire format.
func (h *harness) querySkyline(id int64) error {
	resp, err := http.Get(fmt.Sprintf("%s/v1/skyline?node=%d", h.base(), id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusNotFound {
			h.failQuery(fmt.Sprintf("skyline?node=%d status %d", id, resp.StatusCode))
		}
		return nil
	}
	var q struct {
		Arcs []struct {
			Start float64 `json:"start"`
			End   float64 `json:"end"`
		} `json:"arcs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		h.failQuery(fmt.Sprintf("skyline decode: %v", err))
		return nil
	}
	if len(q.Arcs) == 0 {
		h.failQuery(fmt.Sprintf("node %d: empty skyline", id))
		return nil
	}
	prev := 0.0
	for _, a := range q.Arcs {
		// Adjacent arcs share their breakpoint bit-exactly in the engine,
		// and JSON round-trips float64 exactly, so the tiling check is
		// exact equality — an epsilon here would mask real seams.
		//mldcslint:allow floatcmp arcs share breakpoints bit-exactly across the wire
		if a.Start != prev || a.End <= a.Start {
			h.failQuery(fmt.Sprintf("node %d: skyline gap at %v→%v", id, prev, a.Start))
			return nil
		}
		prev = a.End
	}
	if prev < 6.283 || prev > 6.284 {
		h.failQuery(fmt.Sprintf("node %d: skyline ends at %v, want 2π", id, prev))
	}
	return nil
}

func (h *harness) queryEpoch() error {
	resp, err := http.Get(h.base() + "/v1/epoch")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		h.failQuery(fmt.Sprintf("/v1/epoch status %d", resp.StatusCode))
	}
	return nil
}

// verify drains the server and compares the converged state against the
// sequential oracle byte for byte.
func (h *harness) verify() error {
	h.mu.Lock()
	want := h.lastSeq
	h.mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(h.base() + "/v1/epoch")
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		var ep struct {
			AppliedSeq  uint64 `json:"applied_seq"`
			AcceptedSeq uint64 `json:"accepted_seq"`
			QueueLen    int    `json:"queue_len"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ep)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("drain decode: %w", err)
		}
		if ep.AppliedSeq >= want && ep.QueueLen == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("drain: stuck at applied %d / accepted %d, want %d", ep.AppliedSeq, ep.AcceptedSeq, want)
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Get(h.base() + "/v1/state")
	if err != nil {
		return fmt.Errorf("state: %w", err)
	}
	defer resp.Body.Close()
	var doc mldcsd.StateDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("state decode: %w", err)
	}
	h.stats.FinalNodes = len(doc.Nodes)
	h.stats.FinalEpoch = doc.Epoch

	oracle, err := OracleNodes(h.gen.model)
	if err != nil {
		return err
	}
	if err := compareStates(doc.Nodes, oracle); err != nil {
		return fmt.Errorf("seed %d: %w", h.cfg.Seed, err)
	}
	return nil
}

func sortedSubset(sub, super []int64) bool {
	j := 0
	for _, v := range sub {
		for j < len(super) && super[j] < v {
			j++
		}
		if j >= len(super) || super[j] != v {
			return false
		}
	}
	return true
}

func (h *harness) logLine(v any) {
	if h.log == nil {
		return
	}
	h.logMu.Lock()
	defer h.logMu.Unlock()
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.log.Write(append(b, '\n'))
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
