// Package e2e is the seeded chaos harness for the mldcsd service: it
// drives random action streams — ingest bursts, concurrent queries,
// malformed requests, mid-body client disconnects, restart-under-load —
// against a live HTTP server, then drains and checks the converged state
// byte-for-byte against the offline sequential oracle (network.Build +
// Graph.LocalSet + mldcs.Solve). Failing seeds are banked into
// testdata/regression_seeds.json and replayed by CI forever after. See
// docs/TESTING.md ("Chaos e2e harness").
package e2e

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mldcsd"
)

// SeedConfig identifies one chaos run completely: the seed plus the
// stream-shape knobs. Replaying the same config replays the same action
// stream bit for bit.
type SeedConfig struct {
	Seed    int64  `json:"seed"`
	Nodes   int    `json:"nodes"`   // initial network size
	Actions int    `json:"actions"` // driver actions after the initial join storm
	Profile string `json:"profile,omitempty"`
	Note    string `json:"note,omitempty"`
	Banked  string `json:"banked,omitempty"` // date the seed was banked (regression file only)
}

// ProfileMobility is the pure-mobility-heavy stream shape: batches are
// almost all small moves of existing nodes, with joins/leaves rare. It
// keeps the server's engine on its kinetic repair path (most dirty nodes
// did not themselves move, one neighbor drifted a little), so the
// byte-for-byte oracle comparison exercises repaired skylines, not
// recomputed ones. The zero value of Profile is the original mixed
// churn.
const ProfileMobility = "mobility"

// Model is the harness's intended world: what the server must converge
// to once every accepted batch has applied. It mirrors the mldcsd apply
// semantics exactly (join upserts, move/radius/leave of absent nodes are
// ignored); internal/e2e and internal/mldcsd drifting apart here is
// precisely the bug class the final oracle comparison catches.
type Model struct {
	Nodes  map[int64]ModelNode
	NextID int64
}

// ModelNode is one intended node state.
type ModelNode struct {
	X, Y, R float64
}

func (m *Model) apply(b mldcsd.Batch) {
	for _, d := range b.Deltas {
		switch d.Op {
		case mldcsd.OpJoin:
			m.Nodes[d.Node] = ModelNode{X: *d.X, Y: *d.Y, R: *d.R}
		case mldcsd.OpMove:
			if st, ok := m.Nodes[d.Node]; ok {
				st.X, st.Y = *d.X, *d.Y
				m.Nodes[d.Node] = st
			}
		case mldcsd.OpRadius:
			if st, ok := m.Nodes[d.Node]; ok {
				st.R = *d.R
				m.Nodes[d.Node] = st
			}
		case mldcsd.OpLeave:
			delete(m.Nodes, d.Node)
		}
	}
}

// Action kinds emitted by the generator.
const (
	actIngest     = "ingest"     // valid delta batch
	actMalformed  = "malformed"  // wire-invalid POST body, must 400
	actDisconnect = "disconnect" // truncated body + close, must not apply
	actRestart    = "restart"    // kill the server, boot a fresh one, full-sync
)

type action struct {
	kind  string
	batch mldcsd.Batch // actIngest
	raw   string       // actMalformed / actDisconnect payload
}

// generator produces the deterministic action stream for one seed and
// tracks the intended model as it goes.
type generator struct {
	rng      *rand.Rand
	model    *Model
	side     float64 // deployment square side
	restarts int     // restarts remaining
	profile  string  // stream shape (ProfileMobility or "")
}

func newGenerator(cfg SeedConfig) *generator {
	g := &generator{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		model:    &Model{Nodes: make(map[int64]ModelNode)},
		restarts: 2,
		profile:  cfg.Profile,
	}
	// Size the square for a mean degree around 8 with radii ~1: the
	// regime where forwarding sets are non-trivial but networks stay
	// connected enough to be interesting.
	n := cfg.Nodes
	if n < 4 {
		n = 4
	}
	g.side = math.Sqrt(math.Pi * float64(n) / 8)
	return g
}

// initialBatch is the join storm that seeds the network.
func (g *generator) initialBatch(n int) mldcsd.Batch {
	var b mldcsd.Batch
	for i := 0; i < n; i++ {
		b.Deltas = append(b.Deltas, g.joinDelta(g.model.NextID))
		g.model.NextID++
	}
	g.model.apply(b)
	return b
}

func (g *generator) joinDelta(id int64) mldcsd.Delta {
	x := g.rng.Float64() * g.side
	y := g.rng.Float64() * g.side
	r := 0.5 + g.rng.Float64()
	return mldcsd.Delta{Op: mldcsd.OpJoin, Node: id, X: &x, Y: &y, R: &r}
}

// next emits the next action and keeps the model in sync for ingests.
func (g *generator) next() action {
	p := g.rng.Float64()
	switch {
	case p < 0.62:
		b := g.randomBatch(1 + g.rng.Intn(8))
		g.model.apply(b)
		return action{kind: actIngest, batch: b}
	case p < 0.74:
		return action{kind: actMalformed, raw: malformedPayloads[g.rng.Intn(len(malformedPayloads))]}
	case p < 0.84:
		return action{kind: actDisconnect, raw: `{"deltas":[{"op":"join","node":`}
	case p < 0.86 && g.restarts > 0:
		g.restarts--
		return action{kind: actRestart}
	default:
		// Ingest burst: one oversized batch, the coalescing stressor.
		b := g.randomBatch(8 + g.rng.Intn(24))
		g.model.apply(b)
		return action{kind: actIngest, batch: b}
	}
}

// randomBatch builds a valid wire batch of k deltas against the current
// model: moves, radius retunes, joins, leaves, and a tail of deltas
// aimed at absent nodes (the ignored path must converge too).
func (g *generator) randomBatch(k int) mldcsd.Batch {
	// Per-profile delta mix (cumulative thresholds over q) and move step.
	// The mobility profile drowns churn in small slides: almost every
	// delta nudges an existing node, so the server's engine sees ticks
	// where most dirty nodes did not move themselves — the kinetic repair
	// regime — while the rare join/leave keeps the churn paths honest.
	moveQ, radiusQ, joinQ, leaveQ, step := 0.50, 0.65, 0.80, 0.92, 0.6
	if g.profile == ProfileMobility {
		moveQ, radiusQ, joinQ, leaveQ, step = 0.88, 0.92, 0.955, 0.975, 0.2
	}
	var b mldcsd.Batch
	joinedHere := map[int64]bool{}
	for len(b.Deltas) < k {
		q := g.rng.Float64()
		switch {
		case q < moveQ: // move an existing node a step
			id, ok := g.pick()
			if !ok {
				b.Deltas = append(b.Deltas, g.joinDelta(g.model.NextID))
				joinedHere[g.model.NextID] = true
				g.model.NextID++
				continue
			}
			st := g.model.peek(id, b)
			x := st.X + (g.rng.Float64()-0.5)*step
			y := st.Y + (g.rng.Float64()-0.5)*step
			b.Deltas = append(b.Deltas, mldcsd.Delta{Op: mldcsd.OpMove, Node: id, X: &x, Y: &y})
		case q < radiusQ: // retune a radius
			id, ok := g.pick()
			if !ok {
				continue
			}
			r := 0.5 + g.rng.Float64()
			b.Deltas = append(b.Deltas, mldcsd.Delta{Op: mldcsd.OpRadius, Node: id, R: &r})
		case q < joinQ: // join a brand-new node
			id := g.model.NextID
			if joinedHere[id] {
				continue
			}
			b.Deltas = append(b.Deltas, g.joinDelta(id))
			joinedHere[id] = true
			g.model.NextID++
		case q < leaveQ: // leave
			id, ok := g.pick()
			if !ok {
				continue
			}
			b.Deltas = append(b.Deltas, mldcsd.Delta{Op: mldcsd.OpLeave, Node: id})
		default: // poke an absent node: ignored on both sides
			id := g.model.NextID + int64(g.rng.Intn(50)) + 1
			x, y := g.rng.Float64(), g.rng.Float64()
			b.Deltas = append(b.Deltas, mldcsd.Delta{Op: mldcsd.OpMove, Node: id, X: &x, Y: &y})
		}
	}
	return b
}

// peek returns the node's state as of the end of the partial batch b —
// moves in one batch chain off each other, and the generator must walk
// from the same base the server will.
func (m *Model) peek(id int64, b mldcsd.Batch) ModelNode {
	st := m.Nodes[id]
	for _, d := range b.Deltas {
		if d.Node != id {
			continue
		}
		switch d.Op {
		case mldcsd.OpJoin:
			st = ModelNode{X: *d.X, Y: *d.Y, R: *d.R}
		case mldcsd.OpMove:
			st.X, st.Y = *d.X, *d.Y
		case mldcsd.OpRadius:
			st.R = *d.R
		}
	}
	return st
}

// pick returns a uniformly random live node ID. Deterministic: it walks
// the ID space from a random probe, not map order.
func (g *generator) pick() (int64, bool) {
	if len(g.model.Nodes) == 0 {
		return 0, false
	}
	probe := int64(g.rng.Intn(int(g.model.NextID)))
	for i := int64(0); i < g.model.NextID; i++ {
		id := (probe + i) % g.model.NextID
		if _, ok := g.model.Nodes[id]; ok {
			return id, true
		}
	}
	return 0, false
}

// syncBatch renders the whole model as one join batch — the client-side
// re-announcement a fresh server gets after a restart.
func (g *generator) syncBatch() (mldcsd.Batch, error) {
	var b mldcsd.Batch
	for id, st := range g.model.Nodes {
		x, y, r := st.X, st.Y, st.R
		b.Deltas = append(b.Deltas, mldcsd.Delta{Op: mldcsd.OpJoin, Node: id, X: &x, Y: &y, R: &r})
	}
	if len(b.Deltas) == 0 {
		return b, fmt.Errorf("empty model: nothing to sync")
	}
	// Map order is random; sort for a deterministic wire batch.
	sortDeltasByNode(b.Deltas)
	return b, nil
}

func sortDeltasByNode(ds []mldcsd.Delta) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Node < ds[j-1].Node; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// malformedPayloads are the hostile bodies the harness throws at the
// ingest edge; every one must answer 400 and change nothing.
var malformedPayloads = []string{
	`{"deltas":[{"op":"join","node":1,"x":0`,
	`{"deltas":[]}`,
	`{"deltas":[{"op":"warp","node":1}]}`,
	`{"deltas":[{"op":"join","node":1,"x":1e999,"y":0,"r":1}]}`,
	`{"deltas":[{"op":"join","node":-7,"x":0,"y":0,"r":1}]}`,
	`{"deltas":[{"op":"join","node":2,"x":0,"y":0,"r":-1}]}`,
	`{"deltas":[{"op":"move","node":3}]}`,
	`{"deltas":[{"op":"leave","node":3,"x":1}]}`,
	`{"deltas":[{"op":"join","node":4,"x":0,"y":0,"r":1,"spin":9}]}`,
	`not json at all`,
	`{"deltas":[{"op":"leave","node":1}]}trailing`,
	`{"deltas":[{"op":"join","node":5,"x":0,"y":0,"r":1},{"op":"join","node":5,"x":1,"y":1,"r":1}]}`,
}
