//go:build mldcsmutate

package e2e

import (
	"io"
	"strings"
	"testing"
)

const mutationActive = true

// TestMutationCaught proves the harness has teeth: under the mldcsmutate
// build tag the engine silently drops one relay from forwarding sets of
// nodes with dense index ≡ 5 (mod 17) — a bug class (wrong-but-plausible
// forwarding set) that every shape check passes. The oracle comparison
// must flag it as divergence on at least one seed; if it cannot, the
// harness is decoration.
func TestMutationCaught(t *testing.T) {
	caught := 0
	for seed := int64(1); seed <= 4; seed++ {
		cfg := runConfig(seed)
		_, err := RunSeed(cfg, io.Discard)
		if err == nil {
			continue
		}
		if !strings.Contains(err.Error(), "diverged") {
			t.Fatalf("seed %d: failed, but not with divergence: %v", seed, err)
		}
		t.Logf("seed %d: mutation detected: %.200v", seed, err)
		caught++
	}
	if caught == 0 {
		t.Fatal("engine mutation survived 4 chaos seeds undetected — the harness is not sensitive enough")
	}
}
