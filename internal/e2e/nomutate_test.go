//go:build !mldcsmutate

package e2e

// mutationActive mirrors the engine's mutateForwarding build tag so the
// chaos tests can tell which build they are in: the normal suite must
// skip under the mutation tag (divergence is then expected), and
// TestMutationCaught only compiles with it.
const mutationActive = false
