package e2e

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/mldcs"
	"repro/internal/mldcsd"
	"repro/internal/network"
)

// OracleNodes computes the converged answer for a model with the offline
// sequential pipeline — network.Build, Graph.LocalSet, mldcs.Solve per
// node — the paper's per-hub algorithm, with none of the service's
// machinery (no engine, no cache, no incremental path, no snapshots).
// The result is rendered through the same mldcsd.CanonicalNodes the
// server's /v1/state uses, so agreement is byte equality of marshals.
func OracleNodes(m *Model) ([]mldcsd.NodeState, error) {
	ids := make([]int64, 0, len(m.Nodes))
	for id := range m.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	n := len(ids)
	dense := make([]network.Node, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	rs := make([]float64, n)
	for i, id := range ids {
		st := m.Nodes[id]
		dense[i] = network.Node{ID: i, Pos: geom.Pt(st.X, st.Y), Radius: st.R}
		xs[i], ys[i], rs[i] = st.X, st.Y, st.R
	}
	if n == 0 {
		return []mldcsd.NodeState{}, nil
	}
	g, err := network.Build(dense, network.Bidirectional)
	if err != nil {
		return nil, fmt.Errorf("oracle build: %w", err)
	}
	neighbors := make([][]int, n)
	forwarding := make([][]int, n)
	hubIn := make([]bool, n)
	for u := 0; u < n; u++ {
		ls, nbrIDs, err := g.LocalSet(u)
		if err != nil {
			return nil, fmt.Errorf("oracle local set %d: %w", u, err)
		}
		res, err := mldcs.Solve(ls)
		if err != nil {
			return nil, fmt.Errorf("oracle solve %d: %w", u, err)
		}
		neighbors[u] = nbrIDs
		fwd := make([]int, 0, len(res.Cover))
		for _, idx := range res.NeighborCover() {
			fwd = append(fwd, nbrIDs[idx])
		}
		sort.Ints(fwd)
		forwarding[u] = fwd
		hubIn[u] = res.ContainsHub()
	}
	return mldcsd.CanonicalNodes(ids, xs, ys, rs, neighbors, forwarding, hubIn), nil
}

// compareStates checks the served state against the oracle byte for byte
// and, on divergence, names the first differing node so a banked seed's
// failure is immediately readable.
func compareStates(served, oracle []mldcsd.NodeState) error {
	sb, err := json.Marshal(served)
	if err != nil {
		return err
	}
	ob, err := json.Marshal(oracle)
	if err != nil {
		return err
	}
	if string(sb) == string(ob) {
		return nil
	}
	// Byte mismatch: locate the first node-level difference.
	if len(served) != len(oracle) {
		return fmt.Errorf("diverged: server has %d nodes, oracle %d", len(served), len(oracle))
	}
	for i := range served {
		s1, _ := json.Marshal(served[i])
		o1, _ := json.Marshal(oracle[i])
		if string(s1) != string(o1) {
			return fmt.Errorf("diverged at node %d:\n  server: %s\n  oracle: %s", served[i].ID, s1, o1)
		}
	}
	return fmt.Errorf("diverged: same nodes, different document bytes:\n  server: %.200s\n  oracle: %.200s", sb, ob)
}
