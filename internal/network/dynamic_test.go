package network

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// The differential oracle: after any sequence of moves, the incrementally
// maintained graph must be identical to a fresh Build over the current
// positions.
func TestMoveNodeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(80)
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = Node{
				ID:     i,
				Pos:    geom.Pt(rng.Float64()*12.5, rng.Float64()*12.5),
				Radius: 1 + rng.Float64(),
			}
		}
		for _, model := range []LinkModel{Bidirectional, Unidirectional} {
			g, err := Build(nodes, model)
			if err != nil {
				t.Fatal(err)
			}
			current := append([]Node(nil), nodes...)
			for step := 0; step < 50; step++ {
				u := rng.Intn(n)
				pos := geom.Pt(rng.Float64()*12.5, rng.Float64()*12.5)
				if err := g.MoveNode(u, pos); err != nil {
					t.Fatal(err)
				}
				current[u].Pos = pos
			}
			fresh, err := Build(current, model)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < n; u++ {
				if !equalIntSlices(g.Neighbors(u), fresh.Neighbors(u)) {
					t.Fatalf("trial %d %v: node %d out-neighbors diverged:\n inc %v\n new %v",
						trial, model, u, g.Neighbors(u), fresh.Neighbors(u))
				}
				if !equalIntSlices(g.InNeighbors(u), fresh.InNeighbors(u)) {
					t.Fatalf("trial %d %v: node %d in-neighbors diverged:\n inc %v\n new %v",
						trial, model, u, g.InNeighbors(u), fresh.InNeighbors(u))
				}
				if g.Node(u).Pos != fresh.Node(u).Pos {
					t.Fatalf("trial %d: node %d position diverged", trial, u)
				}
			}
		}
	}
}

func TestMoveNodeValidation(t *testing.T) {
	nodes := []Node{{ID: 0, Pos: geom.Pt(0, 0), Radius: 1}}
	g, err := Build(nodes, Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.MoveNode(-1, geom.Pt(1, 1)); err == nil {
		t.Error("negative index must fail")
	}
	if err := g.MoveNode(1, geom.Pt(1, 1)); err == nil {
		t.Error("out-of-range index must fail")
	}
	if err := g.MoveNode(0, geom.Pt(1, 1)); err != nil {
		t.Errorf("valid move failed: %v", err)
	}
}

func TestMoveNodeDoesNotMutateCaller(t *testing.T) {
	nodes := []Node{
		{ID: 0, Pos: geom.Pt(0, 0), Radius: 1},
		{ID: 1, Pos: geom.Pt(0.5, 0), Radius: 1},
	}
	g, err := Build(nodes, Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.MoveNode(0, geom.Pt(5, 5)); err != nil {
		t.Fatal(err)
	}
	if nodes[0].Pos != geom.Pt(0, 0) {
		t.Error("MoveNode must not mutate the caller's node slice")
	}
	if g.Node(0).Pos != geom.Pt(5, 5) {
		t.Error("graph position must be updated")
	}
	if g.IsNeighbor(0, 1) {
		t.Error("link must be dropped after moving out of range")
	}
}

func TestSortedHelpers(t *testing.T) {
	s := []int{1, 3, 5}
	s = insertSorted(s, 4)
	s = insertSorted(s, 0)
	s = insertSorted(s, 6)
	s = insertSorted(s, 4) // duplicate: no-op
	want := []int{0, 1, 3, 4, 5, 6}
	if len(s) != len(want) {
		t.Fatalf("insertSorted = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("insertSorted = %v, want %v", s, want)
		}
	}
	s = removeSorted(s, 3)
	s = removeSorted(s, 99) // absent: no-op
	if len(s) != 5 || s[2] != 4 {
		t.Fatalf("removeSorted = %v", s)
	}
}
